// True-negative coverage: everything the library legitimately produces
// must pass the full audit. Every generator topology and every
// SnapshotSeries compute mode is swept; a false positive here would make
// the QRANK_AUDIT_LEVEL hooks abort healthy pipelines.

#include <cstdint>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "common/rng.h"
#include "core/snapshot_series.h"
#include "graph/csr_graph.h"
#include "graph/generators.h"
#include "graph/graph_delta.h"
#include "gtest/gtest.h"
#include "rank/pagerank.h"

namespace qrank {
namespace {

// Builds, forces the transpose (so graph.transpose executes), audits.
void ExpectGraphAuditClean(const EdgeList& edges, const std::string& label) {
  Result<CsrGraph> g = CsrGraph::FromEdgeList(edges);
  ASSERT_TRUE(g.ok()) << label;
  g.value().BuildTranspose();
  const AuditReport report = AuditGraph(g.value());
  EXPECT_TRUE(report.ok()) << label << ":\n" << report.ToString();
  EXPECT_TRUE(report.issues.empty()) << label << ":\n" << report.ToString();
}

TEST(GeneratorAuditTest, ErdosRenyi) {
  Rng rng(7);
  Result<EdgeList> e = GenerateErdosRenyi(60, 0.1, &rng);
  ASSERT_TRUE(e.ok());
  ExpectGraphAuditClean(e.value(), "erdos-renyi");
}

TEST(GeneratorAuditTest, BarabasiAlbert) {
  Rng rng(7);
  Result<EdgeList> e = GenerateBarabasiAlbert(80, 3, &rng);
  ASSERT_TRUE(e.ok());
  ExpectGraphAuditClean(e.value(), "barabasi-albert");
}

TEST(GeneratorAuditTest, CopyModel) {
  Rng rng(7);
  Result<EdgeList> e = GenerateCopyModel(80, 3, 0.5, &rng);
  ASSERT_TRUE(e.ok());
  ExpectGraphAuditClean(e.value(), "copy-model");
}

TEST(GeneratorAuditTest, QualitySeeded) {
  Rng rng(7);
  Result<QualitySeededGraph> q = GenerateQualitySeeded(80, 3, 2.0, 5.0, 1.5,
                                                       &rng);
  ASSERT_TRUE(q.ok());
  ExpectGraphAuditClean(q.value().edges, "quality-seeded");
}

TEST(GeneratorAuditTest, SiteClustered) {
  Rng rng(7);
  Result<EdgeList> e = GenerateSiteClustered(6, 12, 2, 3, &rng);
  ASSERT_TRUE(e.ok());
  ExpectGraphAuditClean(e.value(), "site-clustered");
}

TEST(GeneratorAuditTest, Ring) {
  Result<EdgeList> e = GenerateRing(50, 2);
  ASSERT_TRUE(e.ok());
  ExpectGraphAuditClean(e.value(), "ring");
}

TEST(GeneratorAuditTest, Star) {
  Result<EdgeList> e = GenerateStar(30);
  ASSERT_TRUE(e.ok());
  ExpectGraphAuditClean(e.value(), "star");
}

// Three growing site-clustered snapshots, the workload the incremental
// pipeline is designed for.
class SeriesAuditTest : public ::testing::TestWithParam<SeriesMode> {
 protected:
  static SnapshotSeries MakeSeries() {
    SnapshotSeries series;
    Rng rng(11);
    NodeId sites = 5;
    for (int snap = 0; snap < 3; ++snap) {
      Result<EdgeList> e = GenerateSiteClustered(sites, 10, 2, 3, &rng);
      EXPECT_TRUE(e.ok());
      Result<CsrGraph> g = CsrGraph::FromEdgeList(e.value());
      EXPECT_TRUE(g.ok());
      EXPECT_TRUE(series.AddSnapshot(snap, std::move(g).value()).ok());
      sites += 1;  // each crawl sees one more site
    }
    return series;
  }
};

TEST_P(SeriesAuditTest, EveryModePassesTheFullAudit) {
  SnapshotSeries series = MakeSeries();
  SeriesComputeOptions options;
  options.mode = GetParam();
  options.pagerank.tolerance = 1e-9;
  options.pagerank.max_iterations = 500;
  options.pagerank.require_convergence = true;
  ASSERT_TRUE(series.ComputePageRanks(options).ok());

  const NodeId m = series.CommonNodeCount();
  for (size_t i = 0; i < series.num_snapshots(); ++i) {
    CsrGraph graph = series.common_graph(i);
    graph.BuildTranspose();
    const AuditReport graph_report = AuditGraph(graph);
    EXPECT_TRUE(graph_report.ok()) << "snapshot " << i << ":\n"
                                   << graph_report.ToString();

    const AuditReport rank_report =
        AuditRankVector(series.pagerank(i), 1.0);
    EXPECT_TRUE(rank_report.ok()) << "snapshot " << i << ":\n"
                                  << rank_report.ToString();

    AuditContext ctx;
    ctx.graph = &graph;
    ctx.scores = &series.pagerank(i);
    ctx.damping = options.pagerank.damping;
    // The incremental engine renormalizes away its (budgeted) hidden
    // drift; grant it that extra headroom, exactly like the level-2
    // hook inside ComputeDeltaPageRank does.
    ctx.tolerance = options.pagerank.tolerance *
                    (1.0 + options.freeze_threshold);
    ctx.declared_converged = true;
    Result<AuditReport> engine_report =
        RunAuditValidator("engine.residual", ctx);
    ASSERT_TRUE(engine_report.ok());
    EXPECT_TRUE(engine_report.value().ok())
        << "snapshot " << i << ":\n" << engine_report.value().ToString();
  }

  // The deltas between consecutive common graphs (the artifacts the
  // incremental mode derives internally) audit clean too.
  for (size_t i = 1; i < series.num_snapshots(); ++i) {
    const CsrGraph& prev = series.common_graph(i - 1);
    const CsrGraph& cur = series.common_graph(i);
    const GraphDelta delta = GraphDelta::Between(prev, cur);
    const std::vector<uint8_t> dirty = delta.DirtyFrontier(cur);
    const AuditReport report = AuditDelta(prev, delta, &cur, &dirty);
    EXPECT_TRUE(report.ok()) << "delta " << i - 1 << " -> " << i << ":\n"
                             << report.ToString();
  }
  EXPECT_GT(m, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, SeriesAuditTest,
                         ::testing::Values(SeriesMode::kScratch,
                                           SeriesMode::kWarmStart,
                                           SeriesMode::kIncremental));

// Section 8's mass-n convention must audit clean as well.
TEST(SeriesAuditTest2, TotalMassNScaleAuditsClean) {
  SnapshotSeries series;
  Result<EdgeList> e = GenerateRing(40, 2);
  ASSERT_TRUE(e.ok());
  Result<CsrGraph> g = CsrGraph::FromEdgeList(e.value());
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(series.AddSnapshot(0.0, std::move(g).value()).ok());

  SeriesComputeOptions options;
  options.pagerank.scale = ScaleConvention::kTotalMassN;
  options.pagerank.tolerance = 1e-9;
  options.pagerank.require_convergence = true;
  ASSERT_TRUE(series.ComputePageRanks(options).ok());
  const double mass = static_cast<double>(series.CommonNodeCount());
  EXPECT_TRUE(AuditRankVector(series.pagerank(0), mass).ok());
}

}  // namespace
}  // namespace qrank
