// Test-only backdoor into CsrGraph's private arrays, used by the
// mutation tests to seed the targeted corruptions each audit validator
// is named for. Befriended by CsrGraph; never linked into library code.

#ifndef QRANK_TESTS_AUDIT_CSR_GRAPH_TEST_ACCESS_H_
#define QRANK_TESTS_AUDIT_CSR_GRAPH_TEST_ACCESS_H_

#include <vector>

#include "graph/csr_graph.h"

namespace qrank {

struct CsrGraphTestAccess {
  static std::vector<size_t>& Offsets(CsrGraph& g) { return g.offsets_; }
  static std::vector<NodeId>& Targets(CsrGraph& g) { return g.dst_; }

  /// The cached transpose's source array. Requires has_transpose().
  static std::vector<NodeId>& TransposeSources(CsrGraph& g) {
    return g.transpose_->cache.src;
  }
  static std::vector<size_t>& TransposeOffsets(CsrGraph& g) {
    return g.transpose_->cache.offsets;
  }
};

}  // namespace qrank

#endif  // QRANK_TESTS_AUDIT_CSR_GRAPH_TEST_ACCESS_H_
