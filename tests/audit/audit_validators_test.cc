// Positive-path and API tests for the invariant-audit subsystem: the
// registry, report plumbing, and each validator family on well-formed
// inputs. The negative (corruption) paths live in audit_mutation_test.cc.

#include "audit/audit.h"

#include <cmath>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "graph/csr_graph.h"
#include "graph/graph_delta.h"
#include "rank/pagerank.h"

namespace qrank {
namespace {

Result<CsrGraph> Triangle() {
  // 0 -> 1 -> 2 -> 0 plus 0 -> 2: every node linked, no dangling.
  return CsrGraph::FromEdges(3, {{0, 1}, {0, 2}, {1, 2}, {2, 0}});
}

TEST(AuditRegistryTest, CoversAllFourFamilies) {
  const std::vector<AuditValidator>& registry = AuditRegistry();
  ASSERT_GE(registry.size(), 10u);
  size_t graph = 0, delta = 0, rank = 0, engine = 0;
  for (const AuditValidator& v : registry) {
    const std::string name = v.name;
    EXPECT_NE(name.find('.'), std::string::npos) << name;
    if (name.rfind("graph.", 0) == 0) ++graph;
    if (name.rfind("delta.", 0) == 0) ++delta;
    if (name.rfind("rank.", 0) == 0) ++rank;
    if (name.rfind("engine.", 0) == 0) ++engine;
    EXPECT_NE(v.description, nullptr);
    EXPECT_NE(v.applicable, nullptr);
    EXPECT_NE(v.run, nullptr);
  }
  EXPECT_GE(graph, 3u);
  EXPECT_GE(delta, 3u);
  EXPECT_GE(rank, 2u);
  EXPECT_GE(engine, 2u);
}

TEST(AuditRegistryTest, NamesAreUnique) {
  const std::vector<AuditValidator>& registry = AuditRegistry();
  for (size_t i = 0; i < registry.size(); ++i) {
    for (size_t j = i + 1; j < registry.size(); ++j) {
      EXPECT_STRNE(registry[i].name, registry[j].name);
    }
  }
}

TEST(RunAuditValidatorTest, UnknownNameIsNotFound) {
  AuditContext ctx;
  Result<AuditReport> r = RunAuditValidator("graph.no_such_check", ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RunAuditValidatorTest, MissingInputsIsFailedPrecondition) {
  AuditContext ctx;  // no graph, no scores
  Result<AuditReport> r = RunAuditValidator("engine.residual", ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(AuditGraphTest, WellFormedGraphPasses) {
  Result<CsrGraph> g = Triangle();
  ASSERT_TRUE(g.ok());
  g.value().BuildTranspose();
  const AuditReport report = AuditGraph(g.value());
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.issues.empty()) << report.ToString();
  // With the transpose built, all four graph validators execute.
  EXPECT_GE(report.ran.size(), 4u);
}

TEST(AuditGraphTest, TransposeValidatorSkippedWhenNotBuilt) {
  Result<CsrGraph> g = Triangle();
  ASSERT_TRUE(g.ok());
  const AuditReport report = AuditGraph(g.value());
  EXPECT_TRUE(report.ok());
  for (const std::string& name : report.ran) {
    EXPECT_NE(name, "graph.transpose");
  }
}

TEST(AuditGraphTest, EdgelessGraphWarnsButDoesNotFail) {
  Result<CsrGraph> g = CsrGraph::FromEdges(4, {});
  ASSERT_TRUE(g.ok());
  const AuditReport report = AuditGraph(g.value());
  EXPECT_TRUE(report.ok()) << "warnings must not fail the audit";
  EXPECT_TRUE(report.Failed("graph.nonempty"));
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].severity, AuditSeverity::kWarning);
}

TEST(AuditDeltaTest, DerivedDeltaAndFrontierPass) {
  Result<CsrGraph> base = Triangle();
  ASSERT_TRUE(base.ok());
  Result<CsrGraph> next =
      CsrGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 0}, {3, 0}, {0, 3}});
  ASSERT_TRUE(next.ok());
  const GraphDelta delta = GraphDelta::Between(base.value(), next.value());
  const std::vector<uint8_t> dirty = delta.DirtyFrontier(next.value());
  const AuditReport report =
      AuditDelta(base.value(), delta, &next.value(), &dirty);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.issues.empty()) << report.ToString();
}

TEST(AuditRankVectorTest, ProbabilityVectorPasses) {
  const std::vector<double> scores = {0.25, 0.5, 0.25};
  const AuditReport report = AuditRankVector(scores, 1.0);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AuditRankVectorTest, RespectsExpectedMassScale) {
  // Section 8 convention: initial value 1 per page, total mass n.
  const std::vector<double> scores = {1.0, 2.0, 1.0};
  EXPECT_TRUE(AuditRankVector(scores, 4.0).ok());
  EXPECT_FALSE(AuditRankVector(scores, 1.0).ok());
}

TEST(AuditEngineTest, ConvergedPageRankSatisfiesResidualContract) {
  Result<CsrGraph> g = Triangle();
  ASSERT_TRUE(g.ok());
  PageRankOptions options;
  options.tolerance = 1e-10;
  Result<PageRankResult> pr = ComputePageRank(g.value(), options);
  ASSERT_TRUE(pr.ok());
  ASSERT_TRUE(pr.value().converged);

  AuditContext ctx;
  ctx.graph = &g.value();
  ctx.scores = &pr.value().scores;
  ctx.damping = options.damping;
  ctx.tolerance = options.tolerance;
  ctx.declared_converged = true;
  Result<AuditReport> report = RunAuditValidator("engine.residual", ctx);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok()) << report.value().ToString();
}

TEST(AuditEngineTest, DriftLedgerUnderBudgetPasses) {
  AuditContext ctx;
  ctx.drift_ledger_total = 2e-7;
  ctx.drift_budget = 2.5e-7;
  Result<AuditReport> report = RunAuditValidator("engine.drift", ctx);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok()) << report.value().ToString();
}

TEST(AuditReportTest, MergeAndToString) {
  AuditReport a;
  a.ran = {"graph.offsets"};
  AuditReport b;
  b.ran = {"rank.mass"};
  b.issues.push_back({"rank.mass", AuditSeverity::kError, "off by 0.5"});
  a.Merge(std::move(b));
  EXPECT_EQ(a.ran.size(), 2u);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(a.Failed("rank.mass"));
  EXPECT_FALSE(a.Failed("graph.offsets"));
  const std::string s = a.ToString();
  EXPECT_NE(s.find("AUDIT FAIL"), std::string::npos);
  EXPECT_NE(s.find("rank.mass"), std::string::npos);
  EXPECT_NE(s.find("off by 0.5"), std::string::npos);
}

TEST(AuditReportTest, FailedValidatorsDeduplicatesInOrder) {
  AuditReport r;
  r.issues.push_back({"graph.offsets", AuditSeverity::kError, "a"});
  r.issues.push_back({"rank.mass", AuditSeverity::kError, "b"});
  r.issues.push_back({"graph.offsets", AuditSeverity::kError, "c"});
  const std::vector<std::string> failed = r.FailedValidators();
  ASSERT_EQ(failed.size(), 2u);
  EXPECT_EQ(failed[0], "graph.offsets");
  EXPECT_EQ(failed[1], "rank.mass");
}

}  // namespace
}  // namespace qrank
