// Mutation tests: seed one targeted corruption per test and require the
// audit to flag it via exactly the intended validator — no misses, no
// collateral reports. This is what makes the validator names trustworthy
// diagnostics: when graph.transpose fires, it is a transpose problem.

#include <cmath>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "csr_graph_test_access.h"
#include "graph/csr_graph.h"
#include "graph/graph_delta.h"
#include "gtest/gtest.h"

namespace qrank {
namespace {

using Names = std::vector<std::string>;

// Hub with three spokes: 0 -> {1, 2, 3}. The smallest graph whose rows
// admit every corruption below without tripping a second validator.
CsrGraph Star() {
  Result<CsrGraph> g = CsrGraph::FromEdges(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(GraphMutationTest, OffsetSkewBreaksMonotonicity) {
  CsrGraph g = Star();
  // offsets [0,3,3,3,3] -> [0,3,2,3,3]: node 1's range runs backwards.
  // The clamped adjacency scan skips the inverted range, so only the
  // offsets validator may report.
  CsrGraphTestAccess::Offsets(g)[2] = 2;
  const AuditReport report = AuditGraph(g);
  EXPECT_EQ(report.FailedValidators(), Names{"graph.offsets"})
      << report.ToString();
}

TEST(GraphMutationTest, EdgeCountMismatch) {
  CsrGraph g = Star();
  // An orphan target beyond offsets[n]: the totals no longer reconcile,
  // but no row ever reads it.
  CsrGraphTestAccess::Targets(g).push_back(1);
  const AuditReport report = AuditGraph(g);
  EXPECT_EQ(report.FailedValidators(), Names{"graph.offsets"})
      << report.ToString();
}

TEST(GraphMutationTest, UnsortedAdjacency) {
  CsrGraph g = Star();
  std::swap(CsrGraphTestAccess::Targets(g)[0],
            CsrGraphTestAccess::Targets(g)[1]);
  const AuditReport report = AuditGraph(g);
  EXPECT_EQ(report.FailedValidators(), Names{"graph.adjacency"})
      << report.ToString();
}

TEST(GraphMutationTest, DuplicateAdjacencyEntry) {
  CsrGraph g = Star();
  CsrGraphTestAccess::Targets(g)[1] = 1;  // row 0 becomes {1, 1, 3}
  const AuditReport report = AuditGraph(g);
  EXPECT_EQ(report.FailedValidators(), Names{"graph.adjacency"})
      << report.ToString();
}

TEST(GraphMutationTest, OutOfRangeTarget) {
  CsrGraph g = Star();
  CsrGraphTestAccess::Targets(g)[2] = 9;
  const AuditReport report = AuditGraph(g);
  EXPECT_EQ(report.FailedValidators(), Names{"graph.adjacency"})
      << report.ToString();
}

TEST(GraphMutationTest, SelfLoop) {
  CsrGraph g = Star();
  CsrGraphTestAccess::Targets(g)[0] = 0;  // row 0 becomes {0, 2, 3}
  const AuditReport report = AuditGraph(g);
  EXPECT_EQ(report.FailedValidators(), Names{"graph.adjacency"})
      << report.ToString();
}

TEST(GraphMutationTest, StaleTransposeEntry) {
  Result<CsrGraph> built =
      CsrGraph::FromEdges(4, {{0, 2}, {0, 3}, {1, 2}, {1, 3}});
  ASSERT_TRUE(built.ok());
  CsrGraph g = std::move(built).value();
  g.BuildTranspose();
  // in(2) = {0, 1}; rewrite the cached 1 -> 2 entry to claim 3 -> 2,
  // an edge the forward graph never had. Row stays ascending and the
  // in-degree count stays right, so only the cross-check can notice.
  const size_t row2 = CsrGraphTestAccess::TransposeOffsets(g)[2];
  CsrGraphTestAccess::TransposeSources(g)[row2 + 1] = 3;
  const AuditReport report = AuditGraph(g);
  EXPECT_EQ(report.FailedValidators(), Names{"graph.transpose"})
      << report.ToString();
}

TEST(DeltaMutationTest, DuplicateAddedEdge) {
  const CsrGraph base = Star();
  GraphDelta delta;
  delta.old_num_nodes = 4;
  delta.new_num_nodes = 4;
  delta.added = {{1, 2}, {1, 2}};
  const AuditReport report = AuditDelta(base, delta);
  EXPECT_EQ(report.FailedValidators(), Names{"delta.shape"})
      << report.ToString();
}

TEST(DeltaMutationTest, GhostRemoval) {
  const CsrGraph base = Star();
  GraphDelta delta;
  delta.old_num_nodes = 4;
  delta.new_num_nodes = 4;
  delta.removed = {{1, 3}};  // never existed
  const AuditReport report = AuditDelta(base, delta);
  EXPECT_EQ(report.FailedValidators(), Names{"delta.apply"})
      << report.ToString();
}

TEST(DeltaMutationTest, AddedEdgeAlreadyPresent) {
  const CsrGraph base = Star();
  GraphDelta delta;
  delta.old_num_nodes = 4;
  delta.new_num_nodes = 4;
  delta.added = {{0, 2}};  // already a base edge
  const AuditReport report = AuditDelta(base, delta);
  EXPECT_EQ(report.FailedValidators(), Names{"delta.apply"})
      << report.ToString();
}

TEST(DeltaMutationTest, ShrinkingDeltaOmitsDroppedNodeEdge) {
  const CsrGraph base = Star();
  GraphDelta delta;
  delta.old_num_nodes = 4;
  delta.new_num_nodes = 3;  // drops node 3, but 0 -> 3 is not removed
  const AuditReport report = AuditDelta(base, delta);
  EXPECT_EQ(report.FailedValidators(), Names{"delta.apply"})
      << report.ToString();
}

TEST(DeltaMutationTest, FrontierHole) {
  Result<CsrGraph> base_r = CsrGraph::FromEdges(3, {{0, 1}, {1, 2}, {2, 0}});
  Result<CsrGraph> next_r =
      CsrGraph::FromEdges(3, {{0, 1}, {1, 0}, {1, 2}, {2, 0}});
  ASSERT_TRUE(base_r.ok());
  ASSERT_TRUE(next_r.ok());
  const GraphDelta delta = GraphDelta::Between(base_r.value(), next_r.value());
  std::vector<uint8_t> dirty = delta.DirtyFrontier(next_r.value());
  // Node 1 gained an out-link, rescaling the share every out-neighbor
  // pulls; dropping out-neighbor 2 from the frontier would leave its row
  // frozen on stale inputs.
  ASSERT_EQ(dirty[2], 1);
  dirty[2] = 0;
  const AuditReport report =
      AuditDelta(base_r.value(), delta, &next_r.value(), &dirty);
  EXPECT_EQ(report.FailedValidators(), Names{"delta.frontier"})
      << report.ToString();
}

TEST(RankMutationTest, NonFiniteScore) {
  const std::vector<double> scores = {0.5, std::nan(""), 0.25};
  const AuditReport report = AuditRankVector(scores, 1.0);
  EXPECT_EQ(report.FailedValidators(), Names{"rank.finite"})
      << report.ToString();
}

TEST(RankMutationTest, NegativeScoreWithHonestMass) {
  // Mass still sums to exactly 1, so only the sign check may fire.
  const std::vector<double> scores = {-0.25, 0.5, 0.75};
  const AuditReport report = AuditRankVector(scores, 1.0);
  EXPECT_EQ(report.FailedValidators(), Names{"rank.finite"})
      << report.ToString();
}

TEST(RankMutationTest, MassOffByTenPercent) {
  const std::vector<double> scores = {0.4, 0.4, 0.3};
  const AuditReport report = AuditRankVector(scores, 1.0);
  EXPECT_EQ(report.FailedValidators(), Names{"rank.mass"})
      << report.ToString();
}

TEST(EngineMutationTest, ConvergenceLie) {
  // The star's fixed point concentrates on the hub; claiming the uniform
  // vector converged at 1e-8 must fail the full-sweep re-check.
  const CsrGraph g = Star();
  const std::vector<double> scores(4, 0.25);
  AuditContext ctx;
  ctx.graph = &g;
  ctx.scores = &scores;
  ctx.tolerance = 1e-8;
  ctx.declared_converged = true;
  const AuditReport report = RunAudit(ctx);
  EXPECT_EQ(report.FailedValidators(), Names{"engine.residual"})
      << report.ToString();
}

TEST(EngineMutationTest, DriftBudgetOverdraw) {
  AuditContext ctx;
  ctx.drift_ledger_total = 1e-3;
  ctx.drift_budget = 1e-4;
  Result<AuditReport> report = RunAuditValidator("engine.drift", ctx);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().FailedValidators(), Names{"engine.drift"})
      << report.value().ToString();
}

}  // namespace
}  // namespace qrank
