#include "graph/site_graph.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "rank/pagerank.h"

namespace qrank {
namespace {

TEST(SiteGraphTest, ValidatesInput) {
  CsrGraph g = CsrGraph::FromEdges(3, {{0, 1}, {1, 2}}).value();
  // Wrong map size.
  EXPECT_FALSE(BuildSiteGraph(g, {0, 1}, 2).ok());
  // Out-of-range site.
  EXPECT_FALSE(BuildSiteGraph(g, {0, 1, 5}, 2).ok());
  // Zero sites with pages.
  EXPECT_FALSE(BuildSiteGraph(g, {0, 0, 0}, 0).ok());
}

TEST(SiteGraphTest, QuotientCollapsesParallelLinksAndIntraLinks) {
  // Pages 0,1 in site 0; pages 2,3 in site 1.
  // Links: 0->1 (intra), 0->2, 1->2, 1->3 (three cross links),
  // 2->3 (intra), 3->0 (cross back).
  CsrGraph g = CsrGraph::FromEdges(
                   4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 0}})
                   .value();
  Result<SiteGraph> sg = BuildSiteGraph(g, {0, 0, 1, 1}, 2);
  ASSERT_TRUE(sg.ok());
  EXPECT_EQ(sg->intra_site_links, 2u);
  EXPECT_EQ(sg->cross_site_links, 4u);
  // Quotient edges: 0->1 (collapsed from three links) and 1->0.
  EXPECT_EQ(sg->graph.num_nodes(), 2u);
  EXPECT_EQ(sg->graph.num_edges(), 2u);
  EXPECT_TRUE(sg->graph.HasEdge(0, 1));
  EXPECT_TRUE(sg->graph.HasEdge(1, 0));
  EXPECT_EQ(sg->site_size[0], 2u);
  EXPECT_EQ(sg->site_size[1], 2u);
}

TEST(SiteGraphTest, EmptySitesAreRepresented) {
  CsrGraph g = CsrGraph::FromEdges(2, {{0, 1}}).value();
  Result<SiteGraph> sg = BuildSiteGraph(g, {0, 0}, 3);
  ASSERT_TRUE(sg.ok());
  EXPECT_EQ(sg->graph.num_nodes(), 3u);
  EXPECT_EQ(sg->site_size[1], 0u);
  EXPECT_EQ(sg->site_size[2], 0u);
  EXPECT_EQ(sg->graph.num_edges(), 0u);
}

TEST(AggregateScoresBySiteTest, SumsPerSite) {
  std::vector<double> scores = {1.0, 2.0, 4.0, 8.0};
  Result<std::vector<double>> totals =
      AggregateScoresBySite(scores, {0, 1, 0, 1}, 2);
  ASSERT_TRUE(totals.ok());
  EXPECT_DOUBLE_EQ((*totals)[0], 5.0);
  EXPECT_DOUBLE_EQ((*totals)[1], 10.0);
}

TEST(AggregateScoresBySiteTest, Validates) {
  EXPECT_FALSE(AggregateScoresBySite({1.0}, {0, 1}, 2).ok());
  EXPECT_FALSE(AggregateScoresBySite({1.0}, {7}, 2).ok());
}

TEST(RoundRobinSiteAssignmentTest, CyclesThroughSites) {
  std::vector<SiteId> sites = RoundRobinSiteAssignment(7, 3);
  EXPECT_EQ(sites, (std::vector<SiteId>{0, 1, 2, 0, 1, 2, 0}));
}

TEST(SiteGraphTest, SitePageRankMassMatchesAggregation) {
  // Site-level PageRank on the quotient vs aggregated page PageRank:
  // both are valid site-popularity notions; check both are proper
  // distributions and positively related.
  Rng rng(3);
  CsrGraph pages = CsrGraph::FromEdgeList(
                       GenerateBarabasiAlbert(300, 3, &rng).value())
                       .value();
  std::vector<SiteId> site_of = RoundRobinSiteAssignment(300, 10);
  Result<SiteGraph> sg = BuildSiteGraph(pages, site_of, 10);
  ASSERT_TRUE(sg.ok());

  auto page_pr = ComputePageRank(pages);
  ASSERT_TRUE(page_pr.ok());
  auto aggregated = AggregateScoresBySite(page_pr->scores, site_of, 10);
  ASSERT_TRUE(aggregated.ok());
  double total = 0.0;
  for (double s : *aggregated) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);

  auto site_pr = ComputePageRank(sg->graph);
  ASSERT_TRUE(site_pr.ok());
  EXPECT_EQ(site_pr->scores.size(), 10u);
}

}  // namespace
}  // namespace qrank
