#include "graph/graph_delta.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "graph/generators.h"

namespace qrank {
namespace {

CsrGraph Graph(NodeId n, const std::vector<Edge>& edges) {
  return CsrGraph::FromEdges(n, edges).value();
}

// Random evolution step: drop ~drop_count existing edges, add
// ~add_count new ones, optionally grow the node set.
CsrGraph Evolve(const CsrGraph& g, NodeId new_nodes, int add_count,
                int drop_count, Rng* rng) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) edges.push_back({u, v});
  }
  for (int k = 0; k < drop_count && !edges.empty(); ++k) {
    size_t idx = rng->UniformUint64(edges.size());
    edges.erase(edges.begin() + static_cast<long>(idx));
  }
  const NodeId n = g.num_nodes() + new_nodes;
  for (int k = 0; k < add_count; ++k) {
    NodeId u = static_cast<NodeId>(rng->UniformUint64(n));
    NodeId v = static_cast<NodeId>(rng->UniformUint64(n));
    if (u != v) edges.push_back({u, v});
  }
  return Graph(n, edges);
}

TEST(GraphDeltaTest, BetweenFindsAddedAndRemoved) {
  CsrGraph from = Graph(4, {{0, 1}, {1, 2}, {2, 0}});
  CsrGraph to = Graph(4, {{0, 1}, {1, 3}, {2, 0}});
  GraphDelta d = GraphDelta::Between(from, to);
  ASSERT_EQ(d.added.size(), 1u);
  EXPECT_EQ(d.added[0], (Edge{1, 3}));
  ASSERT_EQ(d.removed.size(), 1u);
  EXPECT_EQ(d.removed[0], (Edge{1, 2}));
  EXPECT_TRUE(std::is_sorted(d.added.begin(), d.added.end()));
  EXPECT_TRUE(std::is_sorted(d.removed.begin(), d.removed.end()));
}

TEST(GraphDeltaTest, IdenticalGraphsGiveEmptyDelta) {
  CsrGraph g = Graph(5, {{0, 1}, {1, 2}, {3, 4}});
  GraphDelta d = GraphDelta::Between(g, g);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.num_changes(), 0u);
}

TEST(GraphDeltaTest, ShrinkingDeltaListsDroppedNodeEdges) {
  // Node 3 disappears: its out-edge and the edge pointing at it must
  // both be in `removed`.
  CsrGraph from = Graph(4, {{0, 1}, {1, 3}, {3, 0}});
  CsrGraph to = Graph(3, {{0, 1}});
  GraphDelta d = GraphDelta::Between(from, to);
  EXPECT_EQ(d.old_num_nodes, 4u);
  EXPECT_EQ(d.new_num_nodes, 3u);
  EXPECT_TRUE(d.added.empty());
  ASSERT_EQ(d.removed.size(), 2u);
  EXPECT_EQ(d.removed[0], (Edge{1, 3}));
  EXPECT_EQ(d.removed[1], (Edge{3, 0}));
}

TEST(GraphDeltaTest, OutDegreeDelta) {
  CsrGraph from = Graph(4, {{0, 1}, {0, 2}, {1, 2}});
  CsrGraph to = Graph(4, {{0, 1}, {1, 2}, {1, 3}, {2, 3}});
  GraphDelta d = GraphDelta::Between(from, to);
  std::vector<int32_t> dd = d.OutDegreeDelta();
  ASSERT_EQ(dd.size(), 4u);
  EXPECT_EQ(dd[0], -1);
  EXPECT_EQ(dd[1], 1);
  EXPECT_EQ(dd[2], 1);
  EXPECT_EQ(dd[3], 0);
}

TEST(GraphDeltaTest, DirtyFrontierMarksEndpointsNewNodesAndRescaledRows) {
  // 0->1 added: endpoints 0 and 1 dirty; 0's out-degree changed, so its
  // other out-neighbor 2 is dirty too (its pulled share changed). Node 3
  // untouched. Node 4 is newborn.
  CsrGraph from = Graph(4, {{0, 2}, {3, 2}});
  CsrGraph to = Graph(5, {{0, 1}, {0, 2}, {3, 2}});
  GraphDelta d = GraphDelta::Between(from, to);
  std::vector<uint8_t> dirty = d.DirtyFrontier(to);
  ASSERT_EQ(dirty.size(), 5u);
  EXPECT_TRUE(dirty[0]);
  EXPECT_TRUE(dirty[1]);
  EXPECT_TRUE(dirty[2]);
  EXPECT_FALSE(dirty[3]);  // links unchanged, degree unchanged
  EXPECT_TRUE(dirty[4]);   // new page
}

TEST(GraphDeltaTest, BetweenPrefixMatchesInducedDiff) {
  Rng rng(11);
  CsrGraph from_full =
      CsrGraph::FromEdgeList(GenerateBarabasiAlbert(300, 4, &rng).value())
          .value();
  CsrGraph to = Evolve(from_full, 40, 120, 30, &rng);
  const NodeId m = 300;
  CsrGraph from = CsrGraph::FromEdges(m, [&] {
                    std::vector<Edge> e;
                    for (NodeId u = 0; u < m; ++u) {
                      for (NodeId v : from_full.OutNeighbors(u)) {
                        if (v < m) e.push_back({u, v});
                      }
                    }
                    return e;
                  }()).value();
  CsrGraph induced_to = CsrGraph::FromEdges(m, [&] {
                          std::vector<Edge> e;
                          for (NodeId u = 0; u < m; ++u) {
                            for (NodeId v : to.OutNeighbors(u)) {
                              if (v < m) e.push_back({u, v});
                            }
                          }
                          return e;
                        }()).value();
  Result<GraphDelta> prefix = GraphDelta::BetweenPrefix(from, to, m);
  ASSERT_TRUE(prefix.ok());
  GraphDelta oracle = GraphDelta::Between(from, induced_to);
  EXPECT_EQ(prefix->added, oracle.added);
  EXPECT_EQ(prefix->removed, oracle.removed);
}

TEST(GraphDeltaTest, BetweenPrefixValidatesSizes) {
  CsrGraph a = Graph(4, {{0, 1}});
  CsrGraph b = Graph(6, {{0, 1}});
  EXPECT_FALSE(GraphDelta::BetweenPrefix(a, b, 5).ok());  // from != prefix
  EXPECT_FALSE(GraphDelta::BetweenPrefix(b, a, 6).ok());  // prefix > to
}

TEST(ApplyDeltaTest, MatchesFromScratchRebuildOnRandomEvolution) {
  // The correctness oracle of the incremental pipeline: patching with
  // the diff must reproduce the from-scratch CSR arrays exactly, across
  // growth, edge churn, and shrink steps.
  Rng rng(17);
  CsrGraph current =
      CsrGraph::FromEdgeList(GenerateBarabasiAlbert(200, 4, &rng).value())
          .value();
  struct Step {
    NodeId grow;
    int add, drop;
  };
  const Step steps[] = {{20, 60, 10}, {0, 0, 40}, {5, 30, 0}, {0, 15, 15}};
  for (const Step& s : steps) {
    CsrGraph next = Evolve(current, s.grow, s.add, s.drop, &rng);
    GraphDelta delta = GraphDelta::Between(current, next);
    Result<CsrGraph> patched = current.ApplyDelta(delta);
    ASSERT_TRUE(patched.ok()) << patched.status().ToString();
    EXPECT_EQ(patched->offsets(), next.offsets());
    EXPECT_EQ(patched->targets(), next.targets());
    current = std::move(next);
  }
}

TEST(ApplyDeltaTest, ShrinkingNodeSet) {
  CsrGraph from = Graph(5, {{0, 1}, {1, 4}, {4, 2}, {2, 3}});
  CsrGraph to = Graph(4, {{0, 1}, {2, 3}});
  GraphDelta d = GraphDelta::Between(from, to);
  Result<CsrGraph> patched = from.ApplyDelta(d);
  ASSERT_TRUE(patched.ok());
  EXPECT_EQ(patched->num_nodes(), 4u);
  EXPECT_EQ(patched->offsets(), to.offsets());
  EXPECT_EQ(patched->targets(), to.targets());
}

TEST(ApplyDeltaTest, PatchesTransposeInPlace) {
  Rng rng(23);
  CsrGraph current =
      CsrGraph::FromEdgeList(GenerateBarabasiAlbert(500, 5, &rng).value())
          .value();
  current.BuildTranspose();
  CsrGraph next = Evolve(current, 30, 100, 25, &rng);
  GraphDelta delta = GraphDelta::Between(current, next);
  Result<CsrGraph> patched = current.ApplyDelta(delta);
  ASSERT_TRUE(patched.ok());
  // The successor graph arrives with its transpose already built...
  EXPECT_TRUE(patched->has_transpose());
  // ...and it is identical to the scratch-built one.
  CsrGraph patched_t = patched->Transpose();
  CsrGraph scratch_t = next.Transpose();
  EXPECT_EQ(patched_t.offsets(), scratch_t.offsets());
  EXPECT_EQ(patched_t.targets(), scratch_t.targets());
}

TEST(ApplyDeltaTest, NoTransposePatchWithoutCache) {
  CsrGraph from = Graph(3, {{0, 1}});
  GraphDelta d;
  d.old_num_nodes = 3;
  d.new_num_nodes = 3;
  d.added = {{1, 2}};
  Result<CsrGraph> patched = from.ApplyDelta(d);
  ASSERT_TRUE(patched.ok());
  // Lazy build still works on demand.
  EXPECT_FALSE(patched->has_transpose());
  EXPECT_EQ(patched->InDegree(2), 1u);
}

TEST(ApplyDeltaTest, RejectsInconsistentDeltas) {
  CsrGraph g = Graph(4, {{0, 1}, {1, 2}});
  GraphDelta d;
  d.old_num_nodes = 3;  // wrong base size
  d.new_num_nodes = 4;
  EXPECT_FALSE(g.ApplyDelta(d).ok());

  d.old_num_nodes = 4;
  d.removed = {{2, 3}};  // edge does not exist
  EXPECT_FALSE(g.ApplyDelta(d).ok());

  d.removed.clear();
  d.added = {{0, 1}};  // edge already present
  EXPECT_FALSE(g.ApplyDelta(d).ok());

  d.added = {{0, 0}};  // self-loop
  EXPECT_FALSE(g.ApplyDelta(d).ok());

  d.added = {{0, 7}};  // endpoint out of range
  EXPECT_FALSE(g.ApplyDelta(d).ok());

  // Shrink that fails to remove a dropped node's edge.
  d.added.clear();
  d.new_num_nodes = 2;
  d.removed = {{1, 2}};  // but 0->1 stays and 1 is kept; 1->2 removed, ok —
                         // yet nothing removes... actually 0->1 is fine;
                         // node 3 has no edges; this delta IS consistent.
  EXPECT_TRUE(g.ApplyDelta(d).ok());
  d.removed.clear();  // now 1->2 dangles out of the shrunk node range
  EXPECT_FALSE(g.ApplyDelta(d).ok());
}

TEST(ApplyDeltaTest, EmptyDeltaReproducesGraph) {
  CsrGraph g = Graph(4, {{0, 1}, {1, 2}, {3, 1}});
  GraphDelta d;
  d.old_num_nodes = 4;
  d.new_num_nodes = 4;
  Result<CsrGraph> patched = g.ApplyDelta(d);
  ASSERT_TRUE(patched.ok());
  EXPECT_EQ(patched->offsets(), g.offsets());
  EXPECT_EQ(patched->targets(), g.targets());
}

}  // namespace
}  // namespace qrank
