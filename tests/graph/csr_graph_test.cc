#include "graph/csr_graph.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.h"
#include "graph/generators.h"

namespace qrank {
namespace {

CsrGraph Diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 (3 is dangling).
  EdgeList e(4);
  e.Add(0, 1);
  e.Add(0, 2);
  e.Add(1, 3);
  e.Add(2, 3);
  return CsrGraph::FromEdgeList(e).value();
}

TEST(CsrGraphTest, EmptyGraph) {
  CsrGraph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(CsrGraphTest, BuildsAndReportsDegrees) {
  CsrGraph g = Diamond();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(1), 1u);
  EXPECT_EQ(g.OutDegree(3), 0u);
  EXPECT_EQ(g.InDegree(0), 0u);
  EXPECT_EQ(g.InDegree(3), 2u);
}

TEST(CsrGraphTest, NeighborsSortedAscending) {
  EdgeList e(4);
  e.Add(0, 3);
  e.Add(0, 1);
  e.Add(0, 2);
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  auto nbrs = g.OutNeighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_EQ(nbrs[2], 3u);
}

TEST(CsrGraphTest, DuplicatesAndSelfLoopsDroppedAtConstruction) {
  EdgeList e(3);
  e.Add(0, 1);
  e.Add(0, 1);
  e.Add(1, 1);
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(CsrGraphTest, IsolatedNodesRepresented) {
  EdgeList e(5);
  e.Add(0, 1);
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.OutDegree(4), 0u);
  EXPECT_EQ(g.InDegree(4), 0u);
}

TEST(CsrGraphTest, FromEdgesValidatesRange) {
  std::vector<Edge> edges = {{0, 5}};
  Result<CsrGraph> r = CsrGraph::FromEdges(3, edges);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsrGraphTest, InNeighborsMatchTranspose) {
  CsrGraph g = Diamond();
  auto in3 = g.InNeighbors(3);
  ASSERT_EQ(in3.size(), 2u);
  EXPECT_EQ(in3[0], 1u);
  EXPECT_EQ(in3[1], 2u);
  EXPECT_EQ(g.InNeighbors(0).size(), 0u);
}

TEST(CsrGraphTest, ComputeInDegreesWithoutTranspose) {
  CsrGraph g = Diamond();
  std::vector<uint32_t> deg = g.ComputeInDegrees();
  EXPECT_EQ(deg, (std::vector<uint32_t>{0, 1, 1, 2}));
}

TEST(CsrGraphTest, DanglingNodes) {
  CsrGraph g = Diamond();
  EXPECT_EQ(g.DanglingNodes(), std::vector<NodeId>{3});
  EXPECT_EQ(g.CountDanglingNodes(), 1u);
}

TEST(CsrGraphTest, HasEdge) {
  CsrGraph g = Diamond();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(3, 0));
  EXPECT_FALSE(g.HasEdge(99, 0));  // out-of-range source
}

TEST(CsrGraphTest, TransposeReversesAllEdges) {
  CsrGraph g = Diamond();
  CsrGraph t = g.Transpose();
  EXPECT_EQ(t.num_nodes(), g.num_nodes());
  EXPECT_EQ(t.num_edges(), g.num_edges());
  EXPECT_TRUE(t.HasEdge(1, 0));
  EXPECT_TRUE(t.HasEdge(3, 1));
  EXPECT_TRUE(t.HasEdge(3, 2));
  EXPECT_FALSE(t.HasEdge(0, 1));
}

TEST(CsrGraphTest, DoubleTransposeIsIdentity) {
  CsrGraph g = Diamond();
  CsrGraph tt = g.Transpose().Transpose();
  ASSERT_EQ(tt.num_nodes(), g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto a = g.OutNeighbors(u);
    auto b = tt.OutNeighbors(u);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(CsrGraphTest, CopySharesTransposeCache) {
  CsrGraph g = Diamond();
  g.InNeighbors(0);  // build the cache
  CsrGraph copy = g;
  EXPECT_EQ(copy.InDegree(3), 2u);  // works on the copy
}

TEST(CsrGraphTest, ConcurrentLazyTransposeBuildsOnce) {
  // Two ranking engines may request the in-link view of a shared graph
  // at the same time; the std::call_once-guarded lazy build must be
  // race-free (this test runs under TSan in CI) and every thread must
  // observe the same complete transpose.
  Rng rng(41);
  CsrGraph g =
      CsrGraph::FromEdgeList(GenerateBarabasiAlbert(3000, 5, &rng).value())
          .value();
  const CsrGraph reference = g.Transpose();

  // Fresh graph with an unbuilt cache; hammer it from many threads.
  CsrGraph fresh =
      CsrGraph::FromEdgeList(GenerateBarabasiAlbert(3000, 5, &rng).value())
          .value();
  ASSERT_FALSE(fresh.has_transpose());
  std::vector<uint64_t> in_edge_sums(8, 0);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&fresh, &in_edge_sums, t] {
        uint64_t sum = 0;
        for (NodeId u = 0; u < fresh.num_nodes(); ++u) {
          sum += fresh.InNeighbors(u).size();
        }
        in_edge_sums[static_cast<size_t>(t)] = sum;
      });
    }
    for (std::thread& th : threads) th.join();
  }
  EXPECT_TRUE(fresh.has_transpose());
  for (uint64_t sum : in_edge_sums) EXPECT_EQ(sum, fresh.num_edges());
  (void)reference;
}

TEST(CsrGraphTest, ConcurrentTransposeSharedWithCopies) {
  // A copy made *before* the build shares the cache state: concurrent
  // builders through different copies still build exactly once.
  Rng rng(43);
  CsrGraph a =
      CsrGraph::FromEdgeList(GenerateBarabasiAlbert(2000, 4, &rng).value())
          .value();
  CsrGraph b = a;  // copy with unbuilt cache
  std::thread t1([&a] { a.BuildTranspose(); });
  std::thread t2([&b] { b.BuildTranspose(); });
  t1.join();
  t2.join();
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    ASSERT_EQ(a.InDegree(u), b.InDegree(u)) << "node " << u;
  }
}

TEST(CsrGraphTest, OffsetsAndTargetsConsistent) {
  CsrGraph g = Diamond();
  const auto& offsets = g.offsets();
  ASSERT_EQ(offsets.size(), g.num_nodes() + 1);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), g.num_edges());
  for (size_t i = 1; i < offsets.size(); ++i) {
    EXPECT_LE(offsets[i - 1], offsets[i]);
  }
}

}  // namespace
}  // namespace qrank
