#include "graph/dynamic_graph.h"

#include <gtest/gtest.h>

namespace qrank {
namespace {

TEST(DynamicGraphTest, AddNodesAssignsDenseIds) {
  DynamicGraph g;
  EXPECT_EQ(g.AddNode(0.0), 0u);
  EXPECT_EQ(g.AddNode(1.0), 1u);
  EXPECT_EQ(g.AddNodes(3, 2.0), 2u);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.NodeBirthTime(0), 0.0);
  EXPECT_EQ(g.NodeBirthTime(4), 2.0);
}

TEST(DynamicGraphTest, AddEdgeValidates) {
  DynamicGraph g;
  g.AddNodes(2, 0.0);
  EXPECT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  // Unknown endpoint.
  EXPECT_EQ(g.AddEdge(0, 9, 1.0).code(), StatusCode::kInvalidArgument);
  // Self-loop.
  EXPECT_EQ(g.AddEdge(1, 1, 1.0).code(), StatusCode::kInvalidArgument);
  // Duplicate live edge.
  EXPECT_EQ(g.AddEdge(0, 1, 2.0).code(), StatusCode::kAlreadyExists);
}

TEST(DynamicGraphTest, HasLiveEdgeTracksState) {
  DynamicGraph g;
  g.AddNodes(2, 0.0);
  EXPECT_FALSE(g.HasLiveEdge(0, 1));
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  EXPECT_TRUE(g.HasLiveEdge(0, 1));
  ASSERT_TRUE(g.RemoveEdge(0, 1, 2.0).ok());
  EXPECT_FALSE(g.HasLiveEdge(0, 1));
}

TEST(DynamicGraphTest, RemoveMissingEdgeIsNotFound) {
  DynamicGraph g;
  g.AddNodes(2, 0.0);
  EXPECT_EQ(g.RemoveEdge(0, 1, 1.0).code(), StatusCode::kNotFound);
  EXPECT_EQ(g.RemoveEdge(0, 9, 1.0).code(), StatusCode::kInvalidArgument);
}

TEST(DynamicGraphTest, EdgeCanBeRecreatedAfterRemoval) {
  DynamicGraph g;
  g.AddNodes(2, 0.0);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.RemoveEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 1, 3.0).ok());
  EXPECT_TRUE(g.HasLiveEdge(0, 1));
  EXPECT_EQ(g.num_edge_events(), 2u);
  EXPECT_EQ(g.num_live_edges(), 1u);
}

TEST(DynamicGraphTest, NumNodesAtRespectsBirthTimes) {
  DynamicGraph g;
  g.AddNodes(2, 0.0);
  g.AddNode(5.0);
  g.AddNodes(2, 10.0);
  EXPECT_EQ(g.NumNodesAt(-1.0), 0u);
  EXPECT_EQ(g.NumNodesAt(0.0), 2u);
  EXPECT_EQ(g.NumNodesAt(4.9), 2u);
  EXPECT_EQ(g.NumNodesAt(5.0), 3u);
  EXPECT_EQ(g.NumNodesAt(100.0), 5u);
}

TEST(DynamicGraphTest, SnapshotReflectsTimeWindow) {
  DynamicGraph g;
  g.AddNodes(3, 0.0);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 2.0).ok());
  ASSERT_TRUE(g.RemoveEdge(0, 1, 3.0).ok());

  CsrGraph at0 = g.SnapshotAt(0.5).value();
  EXPECT_EQ(at0.num_edges(), 0u);

  CsrGraph at1 = g.SnapshotAt(1.5).value();
  EXPECT_EQ(at1.num_edges(), 1u);
  EXPECT_TRUE(at1.HasEdge(0, 1));

  CsrGraph at2 = g.SnapshotAt(2.5).value();
  EXPECT_EQ(at2.num_edges(), 2u);

  // After removal at t=3 only 1->2 remains. Removal time is exclusive.
  CsrGraph at3 = g.SnapshotAt(3.0).value();
  EXPECT_EQ(at3.num_edges(), 1u);
  EXPECT_TRUE(at3.HasEdge(1, 2));
}

TEST(DynamicGraphTest, SnapshotExcludesUnbornNodes) {
  DynamicGraph g;
  g.AddNodes(2, 0.0);
  NodeId late = g.AddNode(10.0);
  ASSERT_TRUE(g.AddEdge(0, late, 10.0).ok());

  CsrGraph early = g.SnapshotAt(5.0).value();
  EXPECT_EQ(early.num_nodes(), 2u);
  EXPECT_EQ(early.num_edges(), 0u);

  CsrGraph full = g.SnapshotAt(10.0).value();
  EXPECT_EQ(full.num_nodes(), 3u);
  EXPECT_TRUE(full.HasEdge(0, late));
}

TEST(DynamicGraphTest, EdgeCreateTimeIsInclusive) {
  DynamicGraph g;
  g.AddNodes(2, 0.0);
  ASSERT_TRUE(g.AddEdge(0, 1, 2.0).ok());
  EXPECT_EQ(g.SnapshotAt(2.0).value().num_edges(), 1u);
  EXPECT_EQ(g.SnapshotAt(1.999).value().num_edges(), 0u);
}

TEST(DynamicGraphTest, LiveEdgeCountTracksAddAndRemove) {
  DynamicGraph g;
  g.AddNodes(4, 0.0);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 3, 1.0).ok());
  EXPECT_EQ(g.num_live_edges(), 3u);
  ASSERT_TRUE(g.RemoveEdge(0, 2, 2.0).ok());
  EXPECT_EQ(g.num_live_edges(), 2u);
}

}  // namespace
}  // namespace qrank
