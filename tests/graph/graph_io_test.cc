#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/rng.h"
#include "graph/generators.h"

namespace qrank {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

class GraphIoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }
  std::string Track(const std::string& p) {
    cleanup_.push_back(p);
    return p;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(GraphIoTest, TextRoundTrip) {
  EdgeList e(5);
  e.Add(0, 1);
  e.Add(1, 2);
  e.Add(4, 0);
  std::string path = Track(TempPath("edges.txt"));
  ASSERT_TRUE(WriteEdgeListText(e, path).ok());
  Result<EdgeList> back = ReadEdgeListText(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_nodes(), 5u);
  ASSERT_EQ(back->num_edges(), 3u);
  EXPECT_EQ(back->edges()[2], (Edge{4, 0}));
}

TEST_F(GraphIoTest, TextSkipsCommentsAndBlankLines) {
  std::string path = Track(TempPath("commented.txt"));
  std::ofstream f(path);
  f << "# header comment\n\n3\n# another\n0 1\n\n2 0\n";
  f.close();
  Result<EdgeList> e = ReadEdgeListText(path);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->num_nodes(), 3u);
  EXPECT_EQ(e->num_edges(), 2u);
}

TEST_F(GraphIoTest, TextRejectsMalformedEdge) {
  std::string path = Track(TempPath("bad_edge.txt"));
  std::ofstream f(path);
  f << "3\n0 x\n";
  f.close();
  EXPECT_EQ(ReadEdgeListText(path).status().code(), StatusCode::kCorruption);
}

TEST_F(GraphIoTest, TextRejectsOutOfRangeEndpoint) {
  std::string path = Track(TempPath("oob.txt"));
  std::ofstream f(path);
  f << "3\n0 5\n";
  f.close();
  EXPECT_EQ(ReadEdgeListText(path).status().code(), StatusCode::kCorruption);
}

TEST_F(GraphIoTest, TextRejectsNegativeId) {
  // operator>> into an unsigned type would silently wrap "-1"; the
  // reader must reject the sign outright instead.
  std::string path = Track(TempPath("negative.txt"));
  std::ofstream f(path);
  f << "3\n0 1\n-1 2\n";
  f.close();
  const Status s = ReadEdgeListText(path).status();
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("negative"), std::string::npos) << s.ToString();
}

TEST_F(GraphIoTest, TextRejectsNegativeNodeCount) {
  std::string path = Track(TempPath("negative_header.txt"));
  std::ofstream f(path);
  f << "-3\n0 1\n";
  f.close();
  EXPECT_EQ(ReadEdgeListText(path).status().code(), StatusCode::kCorruption);
}

TEST_F(GraphIoTest, TextRejectsTruncatedEdgeLine) {
  std::string path = Track(TempPath("truncated_line.txt"));
  std::ofstream f(path);
  f << "3\n0 1\n2\n";
  f.close();
  const Status s = ReadEdgeListText(path).status();
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("truncated"), std::string::npos) << s.ToString();
}

TEST_F(GraphIoTest, TextRejectsTrailingGarbage) {
  std::string path = Track(TempPath("trailing.txt"));
  std::ofstream f(path);
  f << "3\n0 1 junk\n";
  f.close();
  const Status s = ReadEdgeListText(path).status();
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("trailing"), std::string::npos) << s.ToString();
}

TEST_F(GraphIoTest, TextRejectsOverflowingId) {
  std::string path = Track(TempPath("overflow.txt"));
  std::ofstream f(path);
  f << "3\n0 99999999999999999999999999\n";
  f.close();
  EXPECT_EQ(ReadEdgeListText(path).status().code(), StatusCode::kCorruption);
}

TEST_F(GraphIoTest, TextRejectsMissingHeader) {
  std::string path = Track(TempPath("no_header.txt"));
  std::ofstream f(path);
  f << "# only comments\n";
  f.close();
  EXPECT_EQ(ReadEdgeListText(path).status().code(), StatusCode::kCorruption);
}

TEST_F(GraphIoTest, MissingFileIsIOError) {
  EXPECT_EQ(ReadEdgeListText("/nonexistent_zzz/f.txt").status().code(),
            StatusCode::kIOError);
  EXPECT_EQ(ReadGraphBinary("/nonexistent_zzz/f.bin").status().code(),
            StatusCode::kIOError);
}

TEST_F(GraphIoTest, BinaryRoundTripPreservesStructure) {
  Rng rng(42);
  EdgeList e = GenerateBarabasiAlbert(300, 3, &rng).value();
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  std::string path = Track(TempPath("graph.bin"));
  ASSERT_TRUE(WriteGraphBinary(g, path).ok());
  Result<CsrGraph> back = ReadGraphBinary(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_nodes(), g.num_nodes());
  ASSERT_EQ(back->num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto a = g.OutNeighbors(u);
    auto b = back->OutNeighbors(u);
    ASSERT_EQ(a.size(), b.size()) << "node " << u;
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST_F(GraphIoTest, BinaryRoundTripEmptyGraph) {
  CsrGraph g = CsrGraph::FromEdgeList(EdgeList(4)).value();
  std::string path = Track(TempPath("empty.bin"));
  ASSERT_TRUE(WriteGraphBinary(g, path).ok());
  Result<CsrGraph> back = ReadGraphBinary(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_nodes(), 4u);
  EXPECT_EQ(back->num_edges(), 0u);
}

TEST_F(GraphIoTest, BinaryDetectsBitFlip) {
  EdgeList e(3);
  e.Add(0, 1);
  e.Add(1, 2);
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  std::string path = Track(TempPath("flip.bin"));
  ASSERT_TRUE(WriteGraphBinary(g, path).ok());

  // Flip one byte in the middle of the payload.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(0, std::ios::end);
  auto size = f.tellg();
  f.seekp(static_cast<std::streamoff>(size) / 2);
  char byte = 0;
  f.seekg(static_cast<std::streamoff>(size) / 2);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(size) / 2);
  f.write(&byte, 1);
  f.close();

  EXPECT_EQ(ReadGraphBinary(path).status().code(), StatusCode::kCorruption);
}

TEST_F(GraphIoTest, BinaryDetectsBadMagic) {
  std::string path = Track(TempPath("magic.bin"));
  std::ofstream f(path, std::ios::binary);
  f << "NOPEjunkjunkjunk";
  f.close();
  EXPECT_EQ(ReadGraphBinary(path).status().code(), StatusCode::kCorruption);
}

TEST_F(GraphIoTest, BinaryRejectsOversizedEdgeCountWithoutAllocating) {
  // A header promising far more edges than the file holds must fail with
  // Corruption before any header-sized allocation happens.
  EdgeList e(3);
  e.Add(0, 1);
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  std::string path = Track(TempPath("oversized.bin"));
  ASSERT_TRUE(WriteGraphBinary(g, path).ok());

  // num_edges lives 12 bytes in (magic[4] version[4] num_nodes[4]).
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  const uint64_t huge = 1ULL << 60;
  f.seekp(12);
  f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  f.close();
  EXPECT_EQ(ReadGraphBinary(path).status().code(), StatusCode::kCorruption);
}

TEST_F(GraphIoTest, BinaryRejectsOvershootingMiddleOffset) {
  // A corrupt middle offset that overshoots num_edges while the final
  // offset still reconciles must fail cleanly, not index past the
  // targets array (found by ASan via BinaryDetectsBitFlip).
  EdgeList e(3);
  e.Add(0, 1);
  e.Add(1, 2);
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  std::string path = Track(TempPath("offset_overshoot.bin"));
  ASSERT_TRUE(WriteGraphBinary(g, path).ok());

  // offsets[1] lives at byte 28 (magic[4] version[4] num_nodes[4]
  // num_edges[8] offsets[0][8]).
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  const uint64_t overshoot = 1ULL << 40;
  f.seekp(28);
  f.write(reinterpret_cast<const char*>(&overshoot), sizeof(overshoot));
  f.close();
  EXPECT_EQ(ReadGraphBinary(path).status().code(), StatusCode::kCorruption);
}

TEST_F(GraphIoTest, BinaryDetectsTruncation) {
  EdgeList e(3);
  e.Add(0, 1);
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  std::string path = Track(TempPath("trunc.bin"));
  ASSERT_TRUE(WriteGraphBinary(g, path).ok());
  // Rewrite truncated to half size.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  out.close();
  EXPECT_EQ(ReadGraphBinary(path).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace qrank
