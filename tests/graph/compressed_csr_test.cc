// Delta-gap varint CSR: encode/decode round-trip against the raw
// transpose arrays, structural rejection at both factories, and the
// QRKC file format under the hardened-reader contract — every
// truncation and every single-byte flip must fail loudly with
// Corruption, never crash or return a silently-wrong matrix.

#include "graph/compressed_csr.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/csr_graph.h"
#include "graph/generators.h"
#include "graph/graph_io.h"

namespace qrank {
namespace {

CsrGraph MakeGraph(size_t seed) {
  Rng rng(seed);
  EdgeList e = GenerateBarabasiAlbert(400, 4, &rng).value();
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  g.BuildTranspose();
  return g;
}

void ExpectMatchesTranspose(const CompressedCsr& c, const CsrGraph& g) {
  ASSERT_EQ(c.num_rows(), g.num_nodes());
  ASSERT_EQ(c.num_values(), g.num_edges());
  ASSERT_EQ(c.id_bound(), g.num_nodes());
  ASSERT_TRUE(c.ValidateRows().ok());
  ASSERT_TRUE(c.CheckAgainst(g.in_offsets(), g.in_sources()).ok());
  std::vector<NodeId> row(g.num_nodes());
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    const size_t count = c.DecodeRow(i, row.data());
    const auto expect = g.InNeighbors(i);
    ASSERT_EQ(count, expect.size()) << "row " << i;
    for (size_t k = 0; k < count; ++k) EXPECT_EQ(row[k], expect[k]);
  }
}

TEST(CompressedCsrTest, RoundTripsGeneratedTransposes) {
  struct Case {
    const char* name;
    EdgeList edges;
  };
  Rng rng(7);
  std::vector<Case> cases;
  cases.push_back({"barabasi_albert",
                   GenerateBarabasiAlbert(600, 5, &rng).value()});
  cases.push_back({"erdos_renyi", GenerateErdosRenyi(500, 0.01, &rng).value()});
  cases.push_back(
      {"site_clustered", GenerateSiteClustered(12, 30, 6, 3, &rng).value()});
  cases.push_back({"ring", GenerateRing(200, 3).value()});
  for (Case& tc : cases) {
    SCOPED_TRACE(tc.name);
    CsrGraph g = CsrGraph::FromEdgeList(tc.edges).value();
    g.BuildTranspose();
    Result<CompressedCsr> c = CompressTranspose(g);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    ExpectMatchesTranspose(*c, g);
  }
}

TEST(CompressedCsrTest, EmptyRowsOccupyZeroBytes) {
  // Star transpose: the hub holds every in-edge, satellites hold none.
  CsrGraph g =
      CsrGraph::FromEdgeList(GenerateStar(50).value()).value();
  g.BuildTranspose();
  CompressedCsr c = CompressTranspose(g).value();
  ExpectMatchesTranspose(c, g);
  size_t empty = 0;
  for (NodeId i = 0; i < c.num_rows(); ++i) {
    if (g.InNeighbors(i).empty()) {
      EXPECT_EQ(c.RowBytes(i), 0u);
      NodeId sink;
      EXPECT_EQ(c.DecodeRow(i, &sink), 0u);
      ++empty;
    }
  }
  EXPECT_GE(empty, 50u);
}

TEST(CompressedCsrTest, StorageBytesIncludesOffsetArray) {
  CsrGraph g = MakeGraph(21);
  CompressedCsr c = CompressTranspose(g).value();
  EXPECT_EQ(c.StorageBytes(),
            c.bytes().size() + 8 * (static_cast<uint64_t>(c.num_rows()) + 1));
  EXPECT_GT(c.BytesPerEdge(), 0.0);
  // Gap coding must beat the raw 4-byte ids on a scale-free transpose
  // even before locality reordering.
  EXPECT_LT(static_cast<double>(c.bytes().size()) /
                static_cast<double>(c.num_values()),
            4.0);
}

TEST(CompressedCsrTest, EncodeRejectsStructuralViolations) {
  const std::vector<size_t> offsets = {0, 2};
  // Duplicate (zero gap).
  EXPECT_EQ(CompressedCsr::Encode(offsets, std::vector<NodeId>{5, 5}, 10)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Descending row.
  EXPECT_EQ(CompressedCsr::Encode(offsets, std::vector<NodeId>{5, 3}, 10)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Value at the exclusive bound.
  EXPECT_EQ(CompressedCsr::Encode(offsets, std::vector<NodeId>{3, 10}, 10)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Offsets not anchored to values.size().
  EXPECT_EQ(CompressedCsr::Encode(std::vector<size_t>{0, 3},
                                  std::vector<NodeId>{1, 2}, 10)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Decreasing offsets.
  EXPECT_EQ(CompressedCsr::Encode(std::vector<size_t>{0, 2, 1},
                                  std::vector<NodeId>{1, 2}, 10)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(CompressedCsrTest, FromPartsAcceptsEncodedParts) {
  CsrGraph g = MakeGraph(33);
  CompressedCsr c = CompressTranspose(g).value();
  Result<CompressedCsr> back = CompressedCsr::FromParts(
      c.num_rows(), c.num_values(), c.id_bound(),
      std::vector<uint64_t>(c.byte_offsets().begin(), c.byte_offsets().end()),
      std::vector<uint8_t>(c.bytes().begin(), c.bytes().end()));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectMatchesTranspose(*back, g);
}

// Hand-built single-row streams exercising each hardened-decoder
// rejection. Rows are one row wide ({0, bytes.size()} offsets) unless
// stated.
TEST(CompressedCsrTest, FromPartsRejectsMalformedStreams) {
  auto from = [](uint64_t num_values, NodeId bound,
                 std::vector<uint8_t> bytes) {
    std::vector<uint64_t> offsets = {0, bytes.size()};
    return CompressedCsr::FromParts(1, num_values, bound, std::move(offsets),
                                    std::move(bytes))
        .status()
        .code();
  };
  // Zero gap => duplicate value.
  EXPECT_EQ(from(2, 10, {3, 0}), StatusCode::kCorruption);
  // Overlong varint (0 spelled in two bytes).
  EXPECT_EQ(from(1, 10, {0x80, 0x00}), StatusCode::kCorruption);
  // Six-byte varint exceeds the 5-byte u32 maximum.
  EXPECT_EQ(from(1, 10, {0x80, 0x80, 0x80, 0x80, 0x80, 0x01}),
            StatusCode::kCorruption);
  // Value at the exclusive id bound.
  EXPECT_EQ(from(1, 5, {5}), StatusCode::kCorruption);
  // Truncated varint: continuation bit set at the row's end.
  EXPECT_EQ(from(1, 10, {0x81}), StatusCode::kCorruption);
  // Declared count disagrees with the decoded stream.
  EXPECT_EQ(from(3, 10, {1, 2}), StatusCode::kCorruption);
  // Offset array not anchored to the stream length.
  EXPECT_EQ(CompressedCsr::FromParts(1, 1, 10, {0, 3}, {1, 2})
                .status()
                .code(),
            StatusCode::kCorruption);
  // Wrong offset array size.
  EXPECT_EQ(CompressedCsr::FromParts(2, 1, 10, {0, 1}, {1})
                .status()
                .code(),
            StatusCode::kCorruption);
  // Decreasing byte offsets.
  EXPECT_EQ(CompressedCsr::FromParts(2, 2, 10, {0, 2, 1}, {1, 2})
                .status()
                .code(),
            StatusCode::kCorruption);
}

class CompressedCsrIoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }
  std::string Track(const std::string& p) {
    cleanup_.push_back(p);
    return p;
  }
  static std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }
  static std::string Slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }
  static void Dump(const std::string& path, const std::string& data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  std::vector<std::string> cleanup_;
};

TEST_F(CompressedCsrIoTest, QrkcRoundTrip) {
  CsrGraph g = MakeGraph(55);
  CompressedCsr c = CompressTranspose(g).value();
  const std::string path = Track(TempPath("matrix.qrkc"));
  ASSERT_TRUE(WriteCompressedCsr(c, path).ok());
  Result<CompressedCsr> back = ReadCompressedCsr(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectMatchesTranspose(*back, g);
}

TEST_F(CompressedCsrIoTest, MissingFileIsIOError) {
  EXPECT_EQ(ReadCompressedCsr("/nonexistent_zzz/m.qrkc").status().code(),
            StatusCode::kIOError);
}

TEST_F(CompressedCsrIoTest, EveryTruncationFailsLoudly) {
  // Small graph so the sweep over every prefix length stays cheap.
  Rng rng(9);
  CsrGraph g =
      CsrGraph::FromEdgeList(GenerateBarabasiAlbert(24, 2, &rng).value())
          .value();
  g.BuildTranspose();
  const std::string path = Track(TempPath("trunc.qrkc"));
  ASSERT_TRUE(WriteCompressedCsr(CompressTranspose(g).value(), path).ok());
  const std::string data = Slurp(path);
  ASSERT_GT(data.size(), 32u);
  const std::string cut = Track(TempPath("trunc_cut.qrkc"));
  for (size_t len = 0; len < data.size(); ++len) {
    Dump(cut, data.substr(0, len));
    EXPECT_EQ(ReadCompressedCsr(cut).status().code(), StatusCode::kCorruption)
        << "prefix of " << len << " bytes was accepted";
  }
}

TEST_F(CompressedCsrIoTest, EverySingleByteFlipFailsLoudly) {
  // The FNV-1a checksum covers the whole payload and the header fields
  // are cross-checked against the file size, so no single-byte
  // corruption may survive to a returned matrix.
  Rng rng(10);
  CsrGraph g =
      CsrGraph::FromEdgeList(GenerateBarabasiAlbert(24, 2, &rng).value())
          .value();
  g.BuildTranspose();
  const std::string path = Track(TempPath("flip.qrkc"));
  ASSERT_TRUE(WriteCompressedCsr(CompressTranspose(g).value(), path).ok());
  const std::string data = Slurp(path);
  const std::string flipped = Track(TempPath("flip_mut.qrkc"));
  for (size_t i = 0; i < data.size(); ++i) {
    std::string mut = data;
    mut[i] = static_cast<char>(mut[i] ^ 0x40);
    Dump(flipped, mut);
    const Status s = ReadCompressedCsr(flipped).status();
    EXPECT_EQ(s.code(), StatusCode::kCorruption)
        << "flip at byte " << i << " -> " << s.ToString();
  }
}

TEST_F(CompressedCsrIoTest, GraphCacheReturnsSameMatrix) {
  CsrGraph g = MakeGraph(77);
  EXPECT_FALSE(g.has_compressed_transpose());
  const CompressedCsr& c = g.BuildCompressedTranspose();
  EXPECT_TRUE(g.has_compressed_transpose());
  const CompressedCsr& again = g.BuildCompressedTranspose();
  EXPECT_EQ(&c, &again);
  ExpectMatchesTranspose(c, g);
}

}  // namespace
}  // namespace qrank
