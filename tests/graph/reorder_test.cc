#include "graph/reorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "audit/audit.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph_delta.h"

namespace qrank {
namespace {

CsrGraph Graph(NodeId n, const std::vector<Edge>& edges) {
  return CsrGraph::FromEdges(n, edges).value();
}

// A fixed medium graph with community structure for the builders.
CsrGraph SiteGraph() {
  Rng rng(7);
  return CsrGraph::FromEdgeList(
             GenerateSiteClustered(8, 16, 3, 2, &rng).value())
      .value();
}

bool SameGraph(const CsrGraph& a, const CsrGraph& b) {
  return a.num_nodes() == b.num_nodes() &&
         std::equal(a.offsets().begin(), a.offsets().end(),
                    b.offsets().begin(), b.offsets().end()) &&
         std::equal(a.targets().begin(), a.targets().end(),
                    b.targets().begin(), b.targets().end());
}

TEST(ValidatePermutationTest, AcceptsBijections) {
  EXPECT_TRUE(ValidatePermutation({}, 0).ok());
  EXPECT_TRUE(ValidatePermutation({0}, 1).ok());
  EXPECT_TRUE(ValidatePermutation({2, 0, 1}, 3).ok());
  EXPECT_TRUE(ValidatePermutation(IdentityPermutation(17), 17).ok());
}

TEST(ValidatePermutationTest, RejectsWrongSize) {
  EXPECT_FALSE(ValidatePermutation({0, 1}, 3).ok());
  EXPECT_FALSE(ValidatePermutation({0, 1, 2}, 2).ok());
}

TEST(ValidatePermutationTest, RejectsOutOfRange) {
  EXPECT_FALSE(ValidatePermutation({0, 3, 1}, 3).ok());
}

TEST(ValidatePermutationTest, RejectsDuplicates) {
  EXPECT_FALSE(ValidatePermutation({0, 1, 1}, 3).ok());
  EXPECT_FALSE(ValidatePermutation({2, 2, 0}, 3).ok());
}

TEST(PermutationAlgebraTest, InverseRoundTrips) {
  const std::vector<NodeId> perm = {3, 1, 4, 0, 2};
  const std::vector<NodeId> inv = InvertPermutation(perm);
  ASSERT_TRUE(ValidatePermutation(inv, 5).ok());
  for (NodeId u = 0; u < 5; ++u) {
    EXPECT_EQ(inv[perm[u]], u);
    EXPECT_EQ(perm[inv[u]], u);
  }
}

TEST(PermutationAlgebraTest, ComposeAppliesFirstThenSecond) {
  const std::vector<NodeId> first = {1, 2, 0};
  const std::vector<NodeId> second = {2, 0, 1};
  const std::vector<NodeId> both = ComposePermutations(first, second);
  for (NodeId u = 0; u < 3; ++u) EXPECT_EQ(both[u], second[first[u]]);
}

TEST(PermutationAlgebraTest, ComposeWithInverseIsIdentity) {
  Rng rng(11);
  std::vector<NodeId> perm = IdentityPermutation(64);
  for (NodeId i = 64; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.UniformUint64(i)]);
  }
  EXPECT_EQ(ComposePermutations(perm, InvertPermutation(perm)),
            IdentityPermutation(64));
}

TEST(BuildNodeOrderingTest, IdentityIsIdentity) {
  const CsrGraph g = SiteGraph();
  EXPECT_EQ(BuildNodeOrdering(g, NodeOrdering::kIdentity).value(),
            IdentityPermutation(g.num_nodes()));
}

TEST(BuildNodeOrderingTest, AllOrderingsAreValidPermutations) {
  const CsrGraph g = SiteGraph();
  for (NodeOrdering o :
       {NodeOrdering::kIdentity, NodeOrdering::kDegreeDescending,
        NodeOrdering::kBfsLocality}) {
    const std::vector<NodeId> perm = BuildNodeOrdering(g, o).value();
    EXPECT_TRUE(ValidatePermutation(perm, g.num_nodes()).ok())
        << NodeOrderingName(o);
  }
}

TEST(BuildNodeOrderingTest, BuildersAreDeterministic) {
  const CsrGraph g = SiteGraph();
  for (NodeOrdering o :
       {NodeOrdering::kDegreeDescending, NodeOrdering::kBfsLocality}) {
    EXPECT_EQ(BuildNodeOrdering(g, o).value(),
              BuildNodeOrdering(g, o).value())
        << NodeOrderingName(o);
  }
}

TEST(BuildNodeOrderingTest, DegreeDescendingBitIdenticalToSerialSort) {
  // The degree builder sorts with ParallelSort; its permutation must be
  // bit-identical to the serial reference the builder used before the
  // parallel rewrite: iota + stable_sort by total degree descending
  // (stability ≡ the explicit lower-old-id tie-break). Power-law graphs
  // produce heavy degree ties, the case where only the tie-break pins
  // the order.
  Rng rng(321);
  const CsrGraph g =
      CsrGraph::FromEdgeList(GenerateBarabasiAlbert(5000, 4, &rng).value())
          .value();
  const NodeId n = g.num_nodes();
  std::vector<uint64_t> degree(n, 0);
  for (NodeId u = 0; u < n; ++u) degree[u] = g.OutDegree(u);
  for (NodeId v : g.targets()) ++degree[v];
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return degree[a] > degree[b];
  });
  std::vector<NodeId> expect(n);
  for (NodeId k = 0; k < n; ++k) expect[order[k]] = k;

  EXPECT_EQ(BuildNodeOrdering(g, NodeOrdering::kDegreeDescending).value(),
            expect);
}

TEST(BuildNodeOrderingTest, DegreeDescendingPutsHubsFirst) {
  // Star: node 0 has degree 4, everything else degree 1.
  const CsrGraph g = Graph(5, {{1, 0}, {2, 0}, {3, 0}, {4, 0}});
  const std::vector<NodeId> perm =
      BuildNodeOrdering(g, NodeOrdering::kDegreeDescending).value();
  EXPECT_EQ(perm[0], 0u);  // hub keeps the first label
  // Ties (all degree 1) break by lower old id.
  EXPECT_EQ(perm, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(BuildNodeOrderingTest, BfsKeepsClustersContiguous) {
  // Two disconnected 3-cliques labeled interleaved: BFS relabeling must
  // give each clique a contiguous id range.
  const CsrGraph g = Graph(6, {{0, 2}, {2, 4}, {4, 0},    // clique A
                               {1, 3}, {3, 5}, {5, 1}});  // clique B
  const std::vector<NodeId> perm =
      BuildNodeOrdering(g, NodeOrdering::kBfsLocality).value();
  auto side = [&perm](NodeId u) { return perm[u] < 3; };
  EXPECT_EQ(side(0), side(2));
  EXPECT_EQ(side(2), side(4));
  EXPECT_EQ(side(1), side(3));
  EXPECT_EQ(side(3), side(5));
  EXPECT_NE(side(0), side(1));
}

TEST(ReorderGraphTest, PermuteThenInverseRoundTrips) {
  const CsrGraph g = SiteGraph();
  for (NodeOrdering o :
       {NodeOrdering::kDegreeDescending, NodeOrdering::kBfsLocality}) {
    const ReorderedGraph r = ReorderGraph(g, o).value();
    EXPECT_EQ(InvertPermutation(r.perm), r.inverse);
    const CsrGraph back = r.graph.Permute(r.inverse).value();
    EXPECT_TRUE(SameGraph(back, g)) << NodeOrderingName(o);
  }
}

TEST(ReorderGraphTest, PreservesEdgesUnderRelabeling) {
  const CsrGraph g = Graph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  const ReorderedGraph r =
      ReorderGraph(g, NodeOrdering::kDegreeDescending).value();
  EXPECT_EQ(r.graph.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      EXPECT_TRUE(r.graph.HasEdge(r.perm[u], r.perm[v]));
    }
  }
}

TEST(RemapTest, RoundTripsBetweenLabelSpaces) {
  const std::vector<NodeId> perm = {2, 0, 3, 1};
  const std::vector<double> original = {10.0, 11.0, 12.0, 13.0};
  const std::vector<double> permuted = RemapToPermuted(original, perm);
  for (NodeId u = 0; u < 4; ++u) EXPECT_EQ(permuted[perm[u]], original[u]);
  EXPECT_EQ(RemapToOriginal(permuted, perm), original);
}

TEST(PermuteDeltaTest, MapsEndpointsAndStaysApplicable) {
  const CsrGraph base = Graph(4, {{0, 1}, {1, 2}, {2, 3}});
  const CsrGraph next = Graph(4, {{0, 1}, {1, 3}, {2, 3}, {3, 0}});
  const GraphDelta delta = GraphDelta::Between(base, next);
  const std::vector<NodeId> perm = {3, 1, 0, 2};

  const GraphDelta mapped = PermuteDelta(delta, perm);
  EXPECT_EQ(mapped.old_num_nodes, delta.old_num_nodes);
  EXPECT_EQ(mapped.new_num_nodes, delta.new_num_nodes);
  EXPECT_EQ(mapped.num_changes(), delta.num_changes());
  // Applying the mapped delta to the permuted base must equal the
  // permuted new graph — the commuting square PermuteDelta promises.
  const CsrGraph permuted_base = base.Permute(perm).value();
  const CsrGraph patched = permuted_base.ApplyDelta(mapped).value();
  EXPECT_TRUE(SameGraph(patched, next.Permute(perm).value()));
}

TEST(PermuteDeltaTest, EdgeListsStaySorted) {
  const CsrGraph base = Graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const CsrGraph next = Graph(5, {{0, 1}, {1, 4}, {2, 3}, {4, 0}, {4, 2}});
  const GraphDelta mapped = PermuteDelta(GraphDelta::Between(base, next),
                                         {4, 2, 0, 3, 1});
  auto sorted = [](const std::vector<Edge>& edges) {
    return std::is_sorted(edges.begin(), edges.end(),
                          [](const Edge& a, const Edge& b) {
                            return a.src != b.src ? a.src < b.src
                                                  : a.dst < b.dst;
                          });
  };
  EXPECT_TRUE(sorted(mapped.added));
  EXPECT_TRUE(sorted(mapped.removed));
}

TEST(AuditPermutationTest, PassesOnValidReordering) {
  const CsrGraph g = SiteGraph();
  const ReorderedGraph r =
      ReorderGraph(g, NodeOrdering::kBfsLocality).value();
  const AuditReport report = AuditPermutation(g, r.perm);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.ran.size(), 2u);
}

TEST(AuditPermutationTest, CatchesCorruptedPermutation) {
  const CsrGraph g = SiteGraph();
  std::vector<NodeId> perm =
      BuildNodeOrdering(g, NodeOrdering::kDegreeDescending).value();
  perm[3] = perm[7];  // duplicate — no longer a bijection
  const AuditReport report = AuditPermutation(g, perm);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Failed("graph.permutation")) << report.ToString();
}

}  // namespace
}  // namespace qrank
