#include "graph/analysis.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"

namespace qrank {
namespace {

CsrGraph FromEdges(NodeId n, std::vector<Edge> edges) {
  return CsrGraph::FromEdges(n, edges).value();
}

TEST(DegreeDistributionTest, CountsNodesPerDegree) {
  // 0->1, 0->2, 1->2: in-degrees {0:0, 1:1, 2:2}, out {0:2, 1:1, 2:0}.
  CsrGraph g = FromEdges(3, {{0, 1}, {0, 2}, {1, 2}});
  auto in = InDegreeDistribution(g);
  EXPECT_EQ(in[0], 1u);
  EXPECT_EQ(in[1], 1u);
  EXPECT_EQ(in[2], 1u);
  auto out = OutDegreeDistribution(g);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 1u);
  EXPECT_EQ(out[2], 1u);
}

TEST(SccTest, SingleCycleIsOneComponent) {
  CsrGraph g = FromEdges(3, {{0, 1}, {1, 2}, {2, 0}});
  SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 1u);
  EXPECT_EQ(scc.component_size[0], 3u);
}

TEST(SccTest, DagHasSingletonComponents) {
  CsrGraph g = FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 4u);
  // All nodes in distinct components.
  EXPECT_NE(scc.component[0], scc.component[1]);
  EXPECT_NE(scc.component[1], scc.component[2]);
}

TEST(SccTest, MixedGraph) {
  // Cycle {0,1,2}, tail 2->3->4, cycle {3,4}? No: 3->4, 4->3 cycle.
  CsrGraph g =
      FromEdges(5, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 3}});
  SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[1], scc.component[2]);
  EXPECT_EQ(scc.component[3], scc.component[4]);
  EXPECT_NE(scc.component[0], scc.component[3]);
  EXPECT_EQ(scc.component_size[scc.largest_component], 3u);
}

TEST(SccTest, EmptyGraph) {
  CsrGraph g;
  SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 0u);
}

TEST(SccTest, DeepChainDoesNotOverflowStack) {
  // 50k-node path; recursive Tarjan would blow the stack.
  EdgeList e(50000);
  for (NodeId u = 0; u + 1 < 50000; ++u) e.Add(u, u + 1);
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 50000u);
}

TEST(BowTieTest, ClassifiesCanonicalRegions) {
  // IN: 0 -> core; core: {1,2}; OUT: core -> 3; tendril: 0 -> 4;
  // disconnected: 5 -> 6.
  CsrGraph g = FromEdges(
      7, {{0, 1}, {1, 2}, {2, 1}, {2, 3}, {0, 4}, {5, 6}});
  BowTieResult bt = ComputeBowTie(g);
  EXPECT_EQ(bt.region[1], BowTieRegion::kCore);
  EXPECT_EQ(bt.region[2], BowTieRegion::kCore);
  EXPECT_EQ(bt.region[0], BowTieRegion::kIn);
  EXPECT_EQ(bt.region[3], BowTieRegion::kOut);
  EXPECT_EQ(bt.region[4], BowTieRegion::kTendrils);
  EXPECT_EQ(bt.region[5], BowTieRegion::kDisconnected);
  EXPECT_EQ(bt.region[6], BowTieRegion::kDisconnected);
  EXPECT_EQ(bt.core_size, 2u);
  EXPECT_EQ(bt.in_size, 1u);
  EXPECT_EQ(bt.out_size, 1u);
  EXPECT_EQ(bt.tendrils_size, 1u);
  EXPECT_EQ(bt.disconnected_size, 2u);
}

TEST(BowTieTest, RegionSizesSumToNodes) {
  Rng rng(3);
  EdgeList e = GenerateErdosRenyi(400, 0.004, &rng).value();
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  BowTieResult bt = ComputeBowTie(g);
  EXPECT_EQ(bt.core_size + bt.in_size + bt.out_size + bt.tendrils_size +
                bt.disconnected_size,
            g.num_nodes());
}

TEST(BowTieTest, StronglyConnectedGraphIsAllCore) {
  CsrGraph g = CsrGraph::FromEdgeList(GenerateRing(20, 2).value()).value();
  BowTieResult bt = ComputeBowTie(g);
  EXPECT_EQ(bt.core_size, 20u);
}

TEST(BfsTest, DistancesOnPath) {
  CsrGraph g = FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  std::vector<uint32_t> d = BfsDistances(g, 0);
  EXPECT_EQ(d, (std::vector<uint32_t>{0, 1, 2, 3}));
  std::vector<uint32_t> d2 = BfsDistances(g, 2);
  EXPECT_EQ(d2[0], kUnreachable);
  EXPECT_EQ(d2[3], 1u);
}

TEST(BfsTest, InvalidSourceAllUnreachable) {
  CsrGraph g = FromEdges(2, {{0, 1}});
  std::vector<uint32_t> d = BfsDistances(g, 99);
  EXPECT_EQ(d[0], kUnreachable);
  EXPECT_EQ(d[1], kUnreachable);
}

TEST(BfsTest, CountReachableIncludesSource) {
  CsrGraph g = FromEdges(4, {{0, 1}, {1, 2}});
  EXPECT_EQ(CountReachable(g, 0), 3u);
  EXPECT_EQ(CountReachable(g, 3), 1u);
}

TEST(AverageDegreeTest, Basics) {
  CsrGraph empty;
  EXPECT_EQ(AverageDegree(empty), 0.0);
  CsrGraph g = FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_DOUBLE_EQ(AverageDegree(g), 0.75);
}

TEST(ReciprocityTest, Basics) {
  CsrGraph none = FromEdges(3, {{0, 1}, {1, 2}});
  EXPECT_DOUBLE_EQ(Reciprocity(none), 0.0);
  CsrGraph half = FromEdges(3, {{0, 1}, {1, 0}, {1, 2}, {2, 0}});
  EXPECT_DOUBLE_EQ(Reciprocity(half), 0.5);
  CsrGraph full = FromEdges(2, {{0, 1}, {1, 0}});
  EXPECT_DOUBLE_EQ(Reciprocity(full), 1.0);
  CsrGraph edgeless = CsrGraph::FromEdgeList(EdgeList(3)).value();
  EXPECT_DOUBLE_EQ(Reciprocity(edgeless), 0.0);
}

TEST(EstimateDiameterTest, ValidatesInput) {
  CsrGraph g = FromEdges(3, {{0, 1}});
  EXPECT_FALSE(EstimateDiameter(CsrGraph{}, 2, 1).ok());
  EXPECT_FALSE(EstimateDiameter(g, 0, 1).ok());
  EXPECT_FALSE(EstimateDiameter(g, 2, 1, 0.0).ok());
  EXPECT_FALSE(EstimateDiameter(g, 2, 1, 1.5).ok());
}

TEST(EstimateDiameterTest, ExactOnRing) {
  // Directed 10-ring with step 1: distances from any node are 1..9;
  // mean 5, 90th percentile 8 (ceil semantics: cum >= 0.9*9=8.1 -> 9?
  // target = floor(0.9*9)=8 -> distance 8).
  CsrGraph g = CsrGraph::FromEdgeList(GenerateRing(10, 1).value()).value();
  Result<DiameterEstimate> d = EstimateDiameter(g, 20, 7);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->mean_distance, 5.0, 1e-9);
  EXPECT_EQ(d->max_distance_seen, 9u);
  EXPECT_GE(d->effective_diameter, 8u);
  EXPECT_LE(d->effective_diameter, 9u);
}

TEST(EstimateDiameterTest, EdgelessGraphHasNoPairs) {
  CsrGraph g = CsrGraph::FromEdgeList(EdgeList(5)).value();
  Result<DiameterEstimate> d = EstimateDiameter(g, 3, 1);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->pairs_sampled, 0u);
  EXPECT_EQ(d->mean_distance, 0.0);
}

TEST(EstimateDiameterTest, SmallWorldOnBaGraph) {
  // The paper cites [3]: the Web's effective diameter is small despite
  // its size. BA graphs reproduce that small-world property... note the
  // directed BA graph only reaches "older" nodes; distances are short.
  Rng rng(31);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateBarabasiAlbert(3000, 4, &rng).value())
                   .value();
  Result<DiameterEstimate> d = EstimateDiameter(g, 30, 5);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(d->pairs_sampled, 0u);
  EXPECT_LT(d->mean_distance, 10.0);
  EXPECT_LT(d->effective_diameter, 15u);
}

TEST(FitDegreePowerLawTest, WorksOnBaGraph) {
  Rng rng(21);
  EdgeList e = GenerateBarabasiAlbert(5000, 2, &rng).value();
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  Result<PowerLawFit> fit = FitDegreePowerLaw(InDegreeDistribution(g));
  ASSERT_TRUE(fit.ok());
  // BA in-degree exponent is around -2..-3 in log-log count space.
  EXPECT_LT(fit->exponent, -1.0);
  EXPECT_GT(fit->exponent, -4.5);
  EXPECT_GT(fit->r_squared, 0.5);
}

}  // namespace
}  // namespace qrank
