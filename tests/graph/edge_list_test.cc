#include "graph/edge_list.h"

#include <gtest/gtest.h>

namespace qrank {
namespace {

TEST(EdgeListTest, EmptyByDefault) {
  EdgeList e;
  EXPECT_EQ(e.num_nodes(), 0u);
  EXPECT_EQ(e.num_edges(), 0u);
}

TEST(EdgeListTest, AddGrowsNodeBound) {
  EdgeList e;
  e.Add(3, 7);
  EXPECT_EQ(e.num_nodes(), 8u);
  EXPECT_EQ(e.num_edges(), 1u);
  EXPECT_EQ(e.edges()[0].src, 3u);
  EXPECT_EQ(e.edges()[0].dst, 7u);
}

TEST(EdgeListTest, ExplicitNodeCountPreserved) {
  EdgeList e(10);
  e.Add(1, 2);
  EXPECT_EQ(e.num_nodes(), 10u);
}

TEST(EdgeListTest, EnsureNodesOnlyGrows) {
  EdgeList e(5);
  e.EnsureNodes(3);
  EXPECT_EQ(e.num_nodes(), 5u);
  e.EnsureNodes(9);
  EXPECT_EQ(e.num_nodes(), 9u);
}

TEST(EdgeListTest, SortAndDedupRemovesDuplicatesAndSelfLoops) {
  EdgeList e;
  e.Add(2, 1);
  e.Add(0, 1);
  e.Add(2, 1);   // duplicate
  e.Add(1, 1);   // self-loop
  e.Add(0, 2);
  e.SortAndDedup();
  ASSERT_EQ(e.num_edges(), 3u);
  EXPECT_EQ(e.edges()[0], (Edge{0, 1}));
  EXPECT_EQ(e.edges()[1], (Edge{0, 2}));
  EXPECT_EQ(e.edges()[2], (Edge{2, 1}));
}

TEST(EdgeListTest, SortAndDedupCanKeepSelfLoops) {
  EdgeList e;
  e.Add(1, 1);
  e.SortAndDedup(/*drop_self_loops=*/false);
  EXPECT_EQ(e.num_edges(), 1u);
}

TEST(EdgeTest, OrderingIsLexicographic) {
  EXPECT_LT((Edge{0, 5}), (Edge{1, 0}));
  EXPECT_LT((Edge{1, 0}), (Edge{1, 2}));
  EXPECT_FALSE((Edge{1, 2}) < (Edge{1, 2}));
}

}  // namespace
}  // namespace qrank
