#include "graph/id_map.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace qrank {
namespace {

TEST(IdMapperTest, AssignsDenseIdsInFirstSeenOrder) {
  IdMapper m;
  EXPECT_EQ(m.AddOrGet(1000000007ull), 0u);
  EXPECT_EQ(m.AddOrGet(42ull), 1u);
  EXPECT_EQ(m.AddOrGet(1000000007ull), 0u);  // idempotent
  EXPECT_EQ(m.size(), 2u);
}

TEST(IdMapperTest, LookupDoesNotInsert) {
  IdMapper m;
  m.AddOrGet(5);
  EXPECT_TRUE(m.Lookup(5).ok());
  EXPECT_EQ(m.Lookup(6).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(m.size(), 1u);
}

TEST(IdMapperTest, ExternalInverseMapping) {
  IdMapper m;
  m.AddOrGet(77);
  m.AddOrGet(11);
  EXPECT_EQ(m.External(0).value(), 77ull);
  EXPECT_EQ(m.External(1).value(), 11ull);
  EXPECT_EQ(m.External(2).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(m.externals(), (std::vector<uint64_t>{77, 11}));
}

TEST(ReadExternalEdgeListTest, MapsArbitraryIdsDensely) {
  std::string path = ::testing::TempDir() + "/qrank_external.edges";
  {
    std::ofstream f(path);
    f << "# comment\n";
    f << "1000000007 42\n";
    f << "\n";
    f << "42 999999999999\n";
    f << "1000000007 999999999999\n";
  }
  Result<ExternalEdgeList> r = ReadExternalEdgeList(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->mapper.size(), 3u);
  EXPECT_EQ(r->edges.num_edges(), 3u);
  // First-seen order: 1000000007 -> 0, 42 -> 1, 999999999999 -> 2.
  EXPECT_EQ(r->edges.edges()[0], (Edge{0, 1}));
  EXPECT_EQ(r->edges.edges()[1], (Edge{1, 2}));
  EXPECT_EQ(r->edges.edges()[2], (Edge{0, 2}));
  std::remove(path.c_str());
}

TEST(ReadExternalEdgeListTest, RejectsMalformedLines) {
  std::string path = ::testing::TempDir() + "/qrank_bad_external.edges";
  {
    std::ofstream f(path);
    f << "1 2\n3 x\n";
  }
  EXPECT_EQ(ReadExternalEdgeList(path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(ReadExternalEdgeListTest, MissingFileIsIOError) {
  EXPECT_EQ(ReadExternalEdgeList("/nonexistent_zzz/e.txt").status().code(),
            StatusCode::kIOError);
}

TEST(ReadExternalEdgeListTest, EmptyFileYieldsEmptyGraph) {
  std::string path = ::testing::TempDir() + "/qrank_empty_external.edges";
  { std::ofstream f(path); }
  Result<ExternalEdgeList> r = ReadExternalEdgeList(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->mapper.size(), 0u);
  EXPECT_EQ(r->edges.num_edges(), 0u);
  std::remove(path.c_str());
}

TEST(ReadExternalEdgeListTest, RereadingReproducesMapping) {
  std::string path = ::testing::TempDir() + "/qrank_stable_external.edges";
  {
    std::ofstream f(path);
    f << "9 8\n7 9\n";
  }
  auto a = ReadExternalEdgeList(path);
  auto b = ReadExternalEdgeList(path);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->mapper.externals(), b->mapper.externals());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qrank
