#include "graph/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/analysis.h"

namespace qrank {
namespace {

TEST(ErdosRenyiTest, RejectsBadProbability) {
  Rng rng(1);
  EXPECT_FALSE(GenerateErdosRenyi(10, -0.1, &rng).ok());
  EXPECT_FALSE(GenerateErdosRenyi(10, 1.1, &rng).ok());
}

TEST(ErdosRenyiTest, ZeroProbabilityGivesNoEdges) {
  Rng rng(1);
  EdgeList e = GenerateErdosRenyi(50, 0.0, &rng).value();
  EXPECT_EQ(e.num_nodes(), 50u);
  EXPECT_EQ(e.num_edges(), 0u);
}

TEST(ErdosRenyiTest, FullProbabilityGivesCompleteDigraph) {
  Rng rng(1);
  EdgeList e = GenerateErdosRenyi(10, 1.0, &rng).value();
  EXPECT_EQ(e.num_edges(), 90u);  // n*(n-1), no self-loops
}

TEST(ErdosRenyiTest, EdgeCountNearExpectation) {
  Rng rng(5);
  const NodeId n = 300;
  const double p = 0.02;
  EdgeList e = GenerateErdosRenyi(n, p, &rng).value();
  double expected = p * n * (n - 1);
  EXPECT_NEAR(static_cast<double>(e.num_edges()), expected,
              5.0 * std::sqrt(expected));
  for (const Edge& edge : e.edges()) {
    EXPECT_NE(edge.src, edge.dst);
    EXPECT_LT(edge.src, n);
    EXPECT_LT(edge.dst, n);
  }
}

TEST(ErdosRenyiTest, DeterministicGivenSeed) {
  Rng a(9), b(9);
  EdgeList ea = GenerateErdosRenyi(100, 0.05, &a).value();
  EdgeList eb = GenerateErdosRenyi(100, 0.05, &b).value();
  ASSERT_EQ(ea.num_edges(), eb.num_edges());
  EXPECT_TRUE(std::equal(ea.edges().begin(), ea.edges().end(),
                         eb.edges().begin()));
}

TEST(BarabasiAlbertTest, ValidatesArguments) {
  Rng rng(1);
  EXPECT_FALSE(GenerateBarabasiAlbert(0, 2, &rng).ok());
  EXPECT_FALSE(GenerateBarabasiAlbert(10, 0, &rng).ok());
}

TEST(BarabasiAlbertTest, OutDegreeCappedByExistingNodes) {
  Rng rng(3);
  EdgeList e = GenerateBarabasiAlbert(100, 3, &rng).value();
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  EXPECT_EQ(g.OutDegree(0), 0u);  // first node has nothing to link to
  EXPECT_EQ(g.OutDegree(1), 1u);
  EXPECT_EQ(g.OutDegree(2), 2u);
  for (NodeId u = 3; u < 100; ++u) {
    EXPECT_EQ(g.OutDegree(u), 3u) << "node " << u;
  }
}

TEST(BarabasiAlbertTest, NoDuplicateTargetsPerNode) {
  Rng rng(7);
  EdgeList e = GenerateBarabasiAlbert(200, 4, &rng).value();
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  // FromEdgeList dedups; equal counts mean there were no duplicates.
  EXPECT_EQ(g.num_edges(), e.num_edges());
}

TEST(BarabasiAlbertTest, ProducesHeavyTailedInDegrees) {
  Rng rng(11);
  EdgeList e = GenerateBarabasiAlbert(3000, 3, &rng).value();
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  std::vector<uint32_t> deg = g.ComputeInDegrees();
  uint32_t max_deg = *std::max_element(deg.begin(), deg.end());
  // Mean in-degree is ~3; preferential attachment produces hubs far
  // above the mean.
  EXPECT_GT(max_deg, 30u);
  // And the log-log degree distribution slope is negative and steep.
  Result<PowerLawFit> fit = FitDegreePowerLaw(InDegreeDistribution(g));
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit->exponent, -1.0);
}

TEST(CopyModelTest, ValidatesArguments) {
  Rng rng(1);
  EXPECT_FALSE(GenerateCopyModel(0, 2, 0.5, &rng).ok());
  EXPECT_FALSE(GenerateCopyModel(10, 0, 0.5, &rng).ok());
  EXPECT_FALSE(GenerateCopyModel(10, 2, 1.5, &rng).ok());
}

TEST(CopyModelTest, RespectsOutDegreeBound) {
  Rng rng(13);
  EdgeList e = GenerateCopyModel(500, 5, 0.5, &rng).value();
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_LE(g.OutDegree(u), 5u);
  }
  EXPECT_GT(g.num_edges(), 500u);
}

TEST(CopyModelTest, CopyingConcentratesInDegree) {
  Rng rng(17);
  EdgeList e = GenerateCopyModel(2000, 4, 0.9, &rng).value();
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  std::vector<uint32_t> deg = g.ComputeInDegrees();
  uint32_t max_deg = *std::max_element(deg.begin(), deg.end());
  EXPECT_GT(max_deg, 40u);
}

TEST(QualitySeededTest, QualityBiasesInDegree) {
  Rng rng(19);
  QualitySeededGraph qg =
      GenerateQualitySeeded(800, 4, 1.0, 1.0, 3.0, &rng).value();
  CsrGraph g = CsrGraph::FromEdgeList(qg.edges).value();
  ASSERT_EQ(qg.quality.size(), 800u);
  std::vector<uint32_t> deg = g.ComputeInDegrees();
  // Split nodes at median quality; high-quality half must attract more
  // links overall.
  std::vector<double> sorted_q = qg.quality;
  std::nth_element(sorted_q.begin(), sorted_q.begin() + 400, sorted_q.end());
  double median = sorted_q[400];
  uint64_t high = 0, low = 0;
  for (NodeId u = 0; u < 800; ++u) {
    (qg.quality[u] >= median ? high : low) += deg[u];
  }
  EXPECT_GT(high, 2 * low);
}

TEST(QualitySeededTest, QualitiesAreClampedToOpenInterval) {
  Rng rng(23);
  QualitySeededGraph qg =
      GenerateQualitySeeded(100, 2, 0.2, 0.2, 1.0, &rng).value();
  for (double q : qg.quality) {
    EXPECT_GT(q, 0.0);
    EXPECT_LT(q, 1.0);
  }
}

TEST(RingTest, RegularAndStronglyConnected) {
  EdgeList e = GenerateRing(10, 2).value();
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  for (NodeId u = 0; u < 10; ++u) {
    EXPECT_EQ(g.OutDegree(u), 2u);
    EXPECT_EQ(g.InDegree(u), 2u);
  }
  SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 1u);
}

TEST(RingTest, ValidatesArguments) {
  EXPECT_FALSE(GenerateRing(1, 1).ok());
  EXPECT_FALSE(GenerateRing(5, 0).ok());
  EXPECT_FALSE(GenerateRing(5, 5).ok());
}

TEST(StarTest, HubIsDangling) {
  EdgeList e = GenerateStar(6).value();
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.OutDegree(0), 0u);
  EXPECT_EQ(g.InDegree(0), 6u);
  EXPECT_FALSE(GenerateStar(0).ok());
}

}  // namespace
}  // namespace qrank
