// hot-alloc positive fixture: three distinct ways a QRANK_HOT function
// can allocate. Line numbers are asserted exactly by qrank_lint_test.py
// — keep edits line-stable or update the test.
#include "alloc_helper.h"

#define QRANK_HOT __attribute__((hot))

namespace fixture {

struct Vec {
  void push_back(int);
  int* data();
};

int LocalHelper(Vec* v) {
  v->push_back(7);  // transitive allocation, same file
  return 0;
}

QRANK_HOT int DirectAlloc(Vec* v) {
  v->push_back(1);  // finding 1: direct member grow
  return 0;
}

QRANK_HOT int TransitiveAlloc(Vec* v) {
  return LocalHelper(v);  // finding 2: via LocalHelper -> push_back
}

QRANK_HOT int HeaderAlloc() {
  return *InlineHeaderGrow(8);  // finding 3: via inline header -> new
}

}  // namespace fixture
