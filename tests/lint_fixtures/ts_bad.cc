// Thread-safety BAD fixture: ts_good.cc with the lock REMOVED from
// Deposit and a QRANK_REQUIRES function called without the capability.
// thread_safety_build_test.sh compiles this with clang
// -Wthread-safety -Werror=thread-safety and expects FAILURE — if this
// file ever compiles, the annotation layer has rotted into decoration.
#include "common/thread_annotations.h"

namespace fixture {

class Account {
 public:
  void Deposit(long amount) QRANK_EXCLUDES(mu_) {
    balance_ += amount;  // ERROR: writing guarded field without mu_
  }

  void DepositLocked(long amount) QRANK_REQUIRES(mu_) { balance_ += amount; }

  void DepositTwice(long amount) QRANK_EXCLUDES(mu_) {
    DepositLocked(amount);  // ERROR: calling REQUIRES(mu_) lock-free
    DepositLocked(amount);
  }

 private:
  mutable qrank::Mutex mu_;
  long balance_ QRANK_GUARDED_BY(mu_) = 0;
};

void Use() {
  Account a;
  a.Deposit(10);
  a.DepositTwice(5);
}

}  // namespace fixture
