// scalar-tu negative fixture: identical marker, but the compile db
// entry has no ISA/fast-math flags — clean.

#define QRANK_SCALAR_TU_ONLY

namespace fixture {

QRANK_SCALAR_TU_ONLY double ScalarOracleSweep(const double* x, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) s = s * 0.85 + x[i];
  return s;
}

}  // namespace fixture
