// no-assert positive fixture: two raw asserts (findings); the
// static_assert stays clean.
#include <cassert>

namespace fixture {

static_assert(sizeof(int) >= 4, "ILP32+ platforms only");

int Clamp(int v, int lo, int hi) {
  assert(lo <= hi);  // finding 1
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

int Index(const int* p, int i, int n) {
  assert(i >= 0 && i < n);  // finding 2
  return p[i];
}

}  // namespace fixture
