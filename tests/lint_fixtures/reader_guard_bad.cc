// reader-guard positive fixture: FromWire trusts a length field it read
// out of the payload and resizes before any bounds check — exactly the
// "header promises 2^31 pages in a 1 KB file" failure mode.
#include <cstdint>
#include <vector>

namespace fixture {

struct Decoded {
  std::vector<uint32_t> ids;
};

bool FromWire(const uint8_t* bytes, unsigned long n, Decoded* out) {
  const uint32_t count = *reinterpret_cast<const uint32_t*>(bytes);  // finding
  out->ids.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    out->ids[i] = bytes[4 + i];
  }
  return n != 0;
}

}  // namespace fixture
