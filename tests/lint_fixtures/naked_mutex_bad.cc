// naked-mutex positive fixture: a std::mutex member and a
// std::lock_guard use — two findings. Both are invisible to
// -Wthread-safety, which is the point of banning them.
#include <mutex>

namespace fixture {

class Counter {
 public:
  void Add(int d) {
    std::lock_guard<std::mutex> lock(mu_);  // findings: lock_guard + mutex
    total_ += d;
  }

 private:
  std::mutex mu_;  // finding: naked mutex member
  int total_ = 0;
};

}  // namespace fixture
