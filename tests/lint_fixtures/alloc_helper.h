// Inline header allocator: the hot-alloc edge case. A per-file grep for
// QRANK_HOT bodies would never see this allocation; qrank_lint resolves
// quoted includes into the TU, so a hot function calling
// InlineHeaderGrow() is caught with the path "InlineHeaderGrow -> new".
#ifndef QRANK_TESTS_LINT_FIXTURES_ALLOC_HELPER_H_
#define QRANK_TESTS_LINT_FIXTURES_ALLOC_HELPER_H_

inline int* InlineHeaderGrow(int n) {
  return new int[n];
}

#endif  // QRANK_TESTS_LINT_FIXTURES_ALLOC_HELPER_H_
