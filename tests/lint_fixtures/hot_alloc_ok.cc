// hot-alloc negative fixture: hot math, cold allocation, and a
// suppressed grow-once call — all clean.

#define QRANK_HOT __attribute__((hot))

namespace fixture {

struct Vec {
  void push_back(int);
  void resize(int);
  int size() const;
};

QRANK_HOT double HotMath(const double* x, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += x[i] * x[i];
  return s;
}

// Not hot: free to allocate.
void ColdSetup(Vec* v) {
  v->push_back(1);
  v->resize(64);
}

QRANK_HOT int HotWithSuppressedGrow(Vec* v, int n) {
  if (v->size() < n) {
    // qrank-lint: allow(hot-alloc) grow-once warm-up; steady state is
    // allocation-free and covered by the counting-allocator test.
    v->resize(n);
  }
  return v->size();
}

}  // namespace fixture
