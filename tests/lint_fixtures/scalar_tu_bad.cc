// scalar-tu positive fixture: the test's compile db entry for this file
// carries -mavx2, so defining a QRANK_SCALAR_TU_ONLY function here must
// be flagged — FMA contraction would change the oracle's rounding.

#define QRANK_SCALAR_TU_ONLY

namespace fixture {

QRANK_SCALAR_TU_ONLY double ScalarOracleSweep(const double* x, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) s = s * 0.85 + x[i];
  return s;
}

}  // namespace fixture
