// naked-mutex negative fixture: the annotated wrappers (stubbed here —
// qrank_lint is token-level and only looks for std:: spellings).

namespace qrank {
class Mutex {
 public:
  void Lock();
  void Unlock();
};
class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
  ~MutexLock();
};
}  // namespace qrank

namespace fixture {

class Counter {
 public:
  void Add(int d) {
    qrank::MutexLock lock(&mu_);
    total_ += d;
  }

 private:
  qrank::Mutex mu_;
  int total_ = 0;
};

}  // namespace fixture
