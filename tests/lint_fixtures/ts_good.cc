// Thread-safety GOOD fixture: correct lock discipline over the real
// qrank::Mutex wrappers. thread_safety_build_test.sh compiles this with
// clang -Wthread-safety -Werror=thread-safety and expects SUCCESS.
// ts_bad.cc is this file with the lock removed — it must FAIL, which is
// the proof that the annotations are enforcement, not decoration.
#include "common/thread_annotations.h"

namespace fixture {

class Account {
 public:
  void Deposit(long amount) QRANK_EXCLUDES(mu_) {
    qrank::MutexLock lock(&mu_);
    balance_ += amount;
  }

  long balance() const QRANK_EXCLUDES(mu_) {
    qrank::MutexLock lock(&mu_);
    return balance_;
  }

  void DepositLocked(long amount) QRANK_REQUIRES(mu_) { balance_ += amount; }

  void DepositTwice(long amount) QRANK_EXCLUDES(mu_) {
    qrank::MutexLock lock(&mu_);
    DepositLocked(amount);
    DepositLocked(amount);
  }

 private:
  mutable qrank::Mutex mu_;
  long balance_ QRANK_GUARDED_BY(mu_) = 0;
};

void Use() {
  Account a;
  a.Deposit(10);
  a.DepositTwice(5);
  (void)a.balance();
}

}  // namespace fixture
