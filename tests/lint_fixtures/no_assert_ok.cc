// no-assert negative fixture: repo check macros and one explicitly
// suppressed assert — clean.
#include <cassert>

#define QRANK_CHECK(cond) FixtureCheck(static_cast<bool>(cond))
#define QRANK_DCHECK(cond) QRANK_CHECK(cond)

namespace fixture {

void FixtureCheck(bool);

int Clamp(int v, int lo, int hi) {
  QRANK_DCHECK(lo <= hi);
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

int Legacy(int i) {
  // qrank-lint: allow(no-assert) third-party-shaped code kept verbatim
  assert(i >= 0);
  return i;
}

}  // namespace fixture
