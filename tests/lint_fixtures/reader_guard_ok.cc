// reader-guard negative fixture: size checks precede the first copy and
// the first allocation — the shape score_bundle.cc / graph_io.cc use.
#include <cstdint>
#include <cstring>
#include <vector>

namespace fixture {

struct Header {
  uint32_t magic;
  uint32_t count;
};

struct Decoded {
  std::vector<uint32_t> ids;
};

bool FromWire(const uint8_t* bytes, unsigned long n, Decoded* out) {
  if (n < sizeof(Header)) return false;
  Header h;
  std::memcpy(&h, bytes, sizeof(Header));
  if (h.magic != 0x5152u) return false;
  if (n < sizeof(Header) + h.count * 4ul) return false;
  out->ids.resize(h.count);
  std::memcpy(out->ids.data(), bytes + sizeof(Header), h.count * 4ul);
  return true;
}

// Named like a reader but takes structured input, no raw bytes: out of
// the rule's scope even though it allocates unguarded.
std::vector<int> FromParts(const std::vector<int>& a) {
  std::vector<int> out;
  out.reserve(a.size());
  for (int v : a) out.push_back(v);
  return out;
}

}  // namespace fixture
