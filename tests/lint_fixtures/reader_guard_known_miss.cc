// reader-guard KNOWN MISS (documented, asserted clean by the
// self-test): the size check is syntactically before the copy, but it
// is dead — `true ||` short-circuits it away. qrank_lint's heuristic is
// ordering-only (token stream, no reachability/value analysis), so this
// passes. The fixture pins that limit down as an executable statement:
// if the rule ever gains condition evaluation, flip the expectation in
// qrank_lint_test.py and delete this comment's second paragraph.
//
// Why we accept the miss: catching it needs dataflow, which is the
// clang-tidy/-Wthread-safety tier's job, not a tokenizer's. The rule
// still catches the common regression (someone reorders validation
// after a resize, or adds a new field read before the header check).
#include <cstdint>
#include <cstring>
#include <vector>

namespace fixture {

struct Decoded {
  std::vector<uint32_t> ids;
};

bool FromWire(const uint8_t* bytes, unsigned long n, Decoded* out) {
  if (true || n >= sizeof(uint32_t)) {
    // dead guard: taken unconditionally, checks nothing
  }
  const uint32_t count = *reinterpret_cast<const uint32_t*>(bytes);
  out->ids.resize(count);
  return n != 0;
}

}  // namespace fixture
