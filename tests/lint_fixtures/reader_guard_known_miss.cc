// reader-guard dead-check fixture: the size check is syntactically
// before the copy, but it is dead — `true ||` short-circuits it away.
// This was a documented known miss while the rule was ordering-only;
// the rule now does basic reachability (a constant short-circuit at
// the condition's own parenthesis depth kills the tail), so the
// reinterpret_cast below IS reported. The self-test asserts the
// finding, pinning the reachability extension as an executable
// statement.
//
// Still out of scope (would need dataflow, the clang-tidy tier's job):
// a check behind `if (kAlwaysTrueVariable || ...)` — value propagation
// through named constants is not token-visible.
#include <cstdint>
#include <cstring>
#include <vector>

namespace fixture {

struct Decoded {
  std::vector<uint32_t> ids;
};

bool FromWire(const uint8_t* bytes, unsigned long n, Decoded* out) {
  if (true || n >= sizeof(uint32_t)) {
    // dead guard: taken unconditionally, checks nothing
  }
  const uint32_t count = *reinterpret_cast<const uint32_t*>(bytes);
  out->ids.resize(count);
  return n != 0;
}

}  // namespace fixture
