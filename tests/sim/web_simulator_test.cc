#include "sim/web_simulator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "model/visitation_model.h"

namespace qrank {
namespace {

WebSimulatorOptions SmallOptions() {
  WebSimulatorOptions o;
  o.num_users = 200;
  o.seed = 5;
  return o;
}

TEST(WebSimulatorTest, ValidatesOptions) {
  WebSimulatorOptions o = SmallOptions();
  o.num_users = 1;
  EXPECT_FALSE(WebSimulator::Create(o).ok());
  o = SmallOptions();
  o.time_step = 0.0;
  EXPECT_FALSE(WebSimulator::Create(o).ok());
  o = SmallOptions();
  o.visit_rate_factor = 0.0;
  EXPECT_FALSE(WebSimulator::Create(o).ok());
  o = SmallOptions();
  o.seed_likers = 0;
  EXPECT_FALSE(WebSimulator::Create(o).ok());
  o = SmallOptions();
  o.seed_likers = o.num_users;
  EXPECT_FALSE(WebSimulator::Create(o).ok());
  o = SmallOptions();
  o.forget_rate = -1.0;
  EXPECT_FALSE(WebSimulator::Create(o).ok());
  o = SmallOptions();
  o.quality_alpha = 0.0;
  EXPECT_FALSE(WebSimulator::Create(o).ok());
  o = SmallOptions();
  o.exploration_visit_rate = -0.5;
  EXPECT_FALSE(WebSimulator::Create(o).ok());
  o = SmallOptions();
  o.page_birth_rate = -2.0;
  EXPECT_FALSE(WebSimulator::Create(o).ok());
}

TEST(WebSimulatorTest, InitialStateSeedsEveryHomePage) {
  WebSimulatorOptions o = SmallOptions();
  o.seed_likers = 2;
  WebSimulator sim = WebSimulator::Create(o).value();
  EXPECT_EQ(sim.num_pages(), 200u);
  EXPECT_EQ(sim.now(), 0.0);
  for (NodeId p = 0; p < sim.num_pages(); ++p) {
    EXPECT_EQ(sim.page(p).likes, 2u) << "page " << p;
    EXPECT_EQ(sim.page(p).aware, 2u);
    EXPECT_GT(sim.TrueQuality(p), 0.0);
    EXPECT_LT(sim.TrueQuality(p), 1.0);
    EXPECT_NEAR(sim.TruePopularity(p), 2.0 / 200.0, 1e-12);
  }
  EXPECT_EQ(sim.graph().num_live_edges(), 400u);
}

TEST(WebSimulatorTest, InitialContentPagesAreCreated) {
  WebSimulatorOptions o = SmallOptions();
  o.initial_content_pages = 30;
  WebSimulator sim = WebSimulator::Create(o).value();
  EXPECT_EQ(sim.num_pages(), 230u);
}

TEST(WebSimulatorTest, DeterministicForSameSeed) {
  WebSimulatorOptions o = SmallOptions();
  WebSimulator a = WebSimulator::Create(o).value();
  WebSimulator b = WebSimulator::Create(o).value();
  ASSERT_TRUE(a.AdvanceTo(5.0).ok());
  ASSERT_TRUE(b.AdvanceTo(5.0).ok());
  EXPECT_EQ(a.total_visits(), b.total_visits());
  EXPECT_EQ(a.total_likes_created(), b.total_likes_created());
  ASSERT_EQ(a.num_pages(), b.num_pages());
  for (NodeId p = 0; p < a.num_pages(); ++p) {
    EXPECT_EQ(a.page(p).likes, b.page(p).likes);
  }
}

TEST(WebSimulatorTest, AdvanceToRejectsPast) {
  WebSimulator sim = WebSimulator::Create(SmallOptions()).value();
  ASSERT_TRUE(sim.AdvanceTo(2.0).ok());
  EXPECT_FALSE(sim.AdvanceTo(1.0).ok());
}

TEST(WebSimulatorTest, AdvanceToStopsAtStepBoundary) {
  WebSimulatorOptions o = SmallOptions();
  o.time_step = 0.5;
  WebSimulator sim = WebSimulator::Create(o).value();
  ASSERT_TRUE(sim.AdvanceTo(1.76).ok());
  EXPECT_NEAR(sim.now(), 1.5, 1e-9);
}

TEST(WebSimulatorTest, LikesNeverExceedAwareness) {
  WebSimulatorOptions o = SmallOptions();
  o.page_birth_rate = 5.0;
  WebSimulator sim = WebSimulator::Create(o).value();
  ASSERT_TRUE(sim.AdvanceTo(10.0).ok());
  for (NodeId p = 0; p < sim.num_pages(); ++p) {
    EXPECT_LE(sim.page(p).likes, sim.page(p).aware) << "page " << p;
    EXPECT_LE(sim.page(p).aware, o.num_users);
  }
}

TEST(WebSimulatorTest, LikesEqualInDegreeInSnapshot) {
  WebSimulatorOptions o = SmallOptions();
  WebSimulator sim = WebSimulator::Create(o).value();
  ASSERT_TRUE(sim.AdvanceTo(8.0).ok());
  CsrGraph g = sim.Snapshot().value();
  std::vector<uint32_t> indeg = g.ComputeInDegrees();
  ASSERT_EQ(indeg.size(), sim.num_pages());
  for (NodeId p = 0; p < sim.num_pages(); ++p) {
    EXPECT_EQ(indeg[p], sim.page(p).likes) << "page " << p;
  }
}

TEST(WebSimulatorTest, MonotonePopularityWithoutForgetting) {
  WebSimulatorOptions o = SmallOptions();
  WebSimulator sim = WebSimulator::Create(o).value();
  std::vector<uint32_t> before(sim.num_pages());
  for (NodeId p = 0; p < sim.num_pages(); ++p) before[p] = sim.page(p).likes;
  ASSERT_TRUE(sim.AdvanceTo(6.0).ok());
  for (NodeId p = 0; p < sim.num_pages(); ++p) {
    EXPECT_GE(sim.page(p).likes, before[p]);
  }
}

TEST(WebSimulatorTest, ForgettingRemovesLikesAndEdges) {
  WebSimulatorOptions o = SmallOptions();
  o.forget_rate = 5.0;  // aggressive forgetting
  o.visit_rate_factor = 0.01;  // almost no new visits
  WebSimulator sim = WebSimulator::Create(o).value();
  uint64_t live_before = sim.graph().num_live_edges();
  ASSERT_TRUE(sim.AdvanceTo(10.0).ok());
  EXPECT_GT(sim.total_forgets(), 0u);
  EXPECT_LT(sim.graph().num_live_edges(), live_before);
  // Consistency: likes still match live in-degree.
  CsrGraph g = sim.Snapshot().value();
  std::vector<uint32_t> indeg = g.ComputeInDegrees();
  for (NodeId p = 0; p < sim.num_pages(); ++p) {
    EXPECT_EQ(indeg[p], sim.page(p).likes);
  }
}

TEST(WebSimulatorTest, PageBirthsArriveOverTime) {
  WebSimulatorOptions o = SmallOptions();
  o.page_birth_rate = 10.0;
  WebSimulator sim = WebSimulator::Create(o).value();
  ASSERT_TRUE(sim.AdvanceTo(10.0).ok());
  // Poisson(100) births expected; allow wide slack.
  EXPECT_GT(sim.num_pages(), 250u);
  EXPECT_LT(sim.num_pages(), 400u);
  // Born pages have their birth time recorded after t=0.
  EXPECT_GT(sim.page(sim.num_pages() - 1).birth_time, 0.0);
}

TEST(WebSimulatorTest, AddPageWithQualityValidates) {
  WebSimulator sim = WebSimulator::Create(SmallOptions()).value();
  EXPECT_FALSE(sim.AddPageWithQuality(0.0).ok());
  EXPECT_FALSE(sim.AddPageWithQuality(1.5).ok());
  Result<NodeId> p = sim.AddPageWithQuality(0.9);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value(), 200u);
  EXPECT_DOUBLE_EQ(sim.TrueQuality(p.value()), 0.9);
  EXPECT_EQ(sim.page(p.value()).likes, 1u);
}

TEST(WebSimulatorTest, ExplorationDiscoversColdPages) {
  // With visit_rate_factor tiny and exploration on, even a page whose
  // seed likers are its only audience accumulates awareness.
  WebSimulatorOptions o = SmallOptions();
  o.visit_rate_factor = 1e-9;
  o.exploration_visit_rate = 20.0;
  WebSimulator sim = WebSimulator::Create(o).value();
  ASSERT_TRUE(sim.AdvanceTo(5.0).ok());
  uint64_t total_aware = 0;
  for (NodeId p = 0; p < sim.num_pages(); ++p) total_aware += sim.page(p).aware;
  // Seeds alone would give exactly 200; exploration must add many more.
  EXPECT_GT(total_aware, 2000u);
}

// The key agreement property: the simulator is a discrete realization of
// the paper's model, so a high-quality page's empirical popularity curve
// must track the closed-form logistic of Theorem 1.
TEST(WebSimulatorTest, PopularityTracksTheoreticalLogistic) {
  WebSimulatorOptions o;
  o.num_users = 3000;  // larger population: lower Poisson noise
  o.seed = 17;
  o.seed_likers = 3;
  o.time_step = 0.1;
  WebSimulator sim = WebSimulator::Create(o).value();
  NodeId page = sim.AddPageWithQuality(0.7).value();
  // Adding the page gave it 3 seed likers too? No: AddPageWithQuality
  // seeds seed_likers likers.
  ASSERT_EQ(sim.page(page).likes, 3u);

  VisitationParams vp;
  vp.quality = 0.7;
  vp.num_users = 3000.0;
  vp.visit_rate = 3000.0;  // factor 1
  vp.initial_popularity = 3.0 / 3000.0;
  VisitationModel model = VisitationModel::Create(vp).value();

  for (double t = 2.0; t <= 14.0; t += 2.0) {
    ASSERT_TRUE(sim.AdvanceTo(t).ok());
    double expected = model.Popularity(t);
    double actual = sim.TruePopularity(page);
    EXPECT_NEAR(actual, expected, 0.12 * 0.7 + 0.02)
        << "t=" << t << " expected=" << expected << " actual=" << actual;
  }
  // By t=14 the 0.7-quality page is far beyond its initial popularity.
  EXPECT_GT(sim.TruePopularity(page), 0.3);
}

TEST(WebSimulatorTest, HigherQualityPagesEndMorePopular) {
  WebSimulatorOptions o;
  o.num_users = 1500;
  o.seed = 23;
  WebSimulator sim = WebSimulator::Create(o).value();
  NodeId lo = sim.AddPageWithQuality(0.1).value();
  NodeId hi = sim.AddPageWithQuality(0.9).value();
  ASSERT_TRUE(sim.AdvanceTo(20.0).ok());
  EXPECT_GT(sim.TruePopularity(hi), 2.0 * sim.TruePopularity(lo));
}

TEST(WebSimulatorTest, VisitTalliesAreConsistent) {
  WebSimulator sim = WebSimulator::Create(SmallOptions()).value();
  ASSERT_TRUE(sim.AdvanceTo(5.0).ok());
  uint64_t per_page_total = 0;
  for (NodeId p = 0; p < sim.num_pages(); ++p) {
    per_page_total += sim.page(p).visits;
  }
  EXPECT_EQ(per_page_total, sim.total_visits());
  EXPECT_GT(sim.total_visits(), 0u);
}

}  // namespace
}  // namespace qrank
