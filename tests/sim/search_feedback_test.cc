// Tests for the search-engine mediation layer: option validation,
// mechanics (reranks, search-visit accounting) and the feedback-loop
// properties from Section 1 of the paper (popularity-ranked exposure
// concentrates attention; quality-ranked exposure finds newcomers).

#include <gtest/gtest.h>

#include "core/bias_metrics.h"
#include "sim/web_simulator.h"

namespace qrank {
namespace {

WebSimulatorOptions BaseOptions(RankingPolicy policy) {
  WebSimulatorOptions o;
  o.num_users = 400;
  o.seed = 9;
  o.visit_rate_factor = 2.0;
  o.search.policy = policy;
  o.search.search_traffic_fraction = 0.6;
  o.search.results_per_query = 20;
  o.search.rerank_period = 1.0;
  return o;
}

TEST(SearchEngineOptionsTest, Validation) {
  SearchEngineOptions o;
  o.policy = RankingPolicy::kPageRank;
  o.search_traffic_fraction = 1.5;
  EXPECT_FALSE(ValidateSearchEngineOptions(o).ok());
  o = SearchEngineOptions{};
  o.policy = RankingPolicy::kPageRank;
  o.results_per_query = 0;
  EXPECT_FALSE(ValidateSearchEngineOptions(o).ok());
  o = SearchEngineOptions{};
  o.policy = RankingPolicy::kPageRank;
  o.position_bias = -1.0;
  EXPECT_FALSE(ValidateSearchEngineOptions(o).ok());
  o = SearchEngineOptions{};
  o.policy = RankingPolicy::kPageRank;
  o.rerank_period = 0.0;
  EXPECT_FALSE(ValidateSearchEngineOptions(o).ok());
  o = SearchEngineOptions{};
  o.policy = RankingPolicy::kQualityEstimate;
  o.quality_constant = -0.1;
  EXPECT_FALSE(ValidateSearchEngineOptions(o).ok());
  // kNone skips validation entirely (fields ignored).
  o = SearchEngineOptions{};
  o.policy = RankingPolicy::kNone;
  o.rerank_period = 0.0;
  EXPECT_TRUE(ValidateSearchEngineOptions(o).ok());
}

TEST(SearchEngineOptionsTest, BadOptionsRejectedAtSimulatorCreate) {
  WebSimulatorOptions o = BaseOptions(RankingPolicy::kPageRank);
  o.search.search_traffic_fraction = -0.1;
  EXPECT_FALSE(WebSimulator::Create(o).ok());
}

TEST(SearchEngineOptionsTest, PolicyNames) {
  EXPECT_STREQ(RankingPolicyName(RankingPolicy::kNone), "none");
  EXPECT_STREQ(RankingPolicyName(RankingPolicy::kPageRank), "pagerank");
  EXPECT_STREQ(RankingPolicyName(RankingPolicy::kQualityEstimate),
               "quality-estimate");
  EXPECT_STREQ(RankingPolicyName(RankingPolicy::kTrueQuality),
               "true-quality");
}

TEST(SearchFeedbackTest, NoSearchMeansNoSearchVisits) {
  WebSimulator sim = WebSimulator::Create(BaseOptions(RankingPolicy::kNone))
                         .value();
  ASSERT_TRUE(sim.AdvanceTo(5.0).ok());
  EXPECT_EQ(sim.total_search_visits(), 0u);
  EXPECT_EQ(sim.rerank_count(), 0u);
  EXPECT_TRUE(sim.search_results().empty());
}

TEST(SearchFeedbackTest, SearchVisitsAndReranksHappen) {
  WebSimulator sim =
      WebSimulator::Create(BaseOptions(RankingPolicy::kPageRank)).value();
  ASSERT_TRUE(sim.AdvanceTo(5.0).ok());
  EXPECT_GT(sim.total_search_visits(), 100u);
  EXPECT_LT(sim.total_search_visits(), sim.total_visits());
  // Reranks every 1.0 time units over 5 units.
  EXPECT_GE(sim.rerank_count(), 4u);
  EXPECT_LE(sim.rerank_count(), 6u);
  EXPECT_EQ(sim.search_results().size(), 20u);
}

TEST(SearchFeedbackTest, SearchShareMatchesConfiguredFraction) {
  WebSimulatorOptions o = BaseOptions(RankingPolicy::kRandom);
  o.search.search_traffic_fraction = 0.5;
  WebSimulator sim = WebSimulator::Create(o).value();
  ASSERT_TRUE(sim.AdvanceTo(8.0).ok());
  double share = static_cast<double>(sim.total_search_visits()) /
                 static_cast<double>(sim.total_visits());
  EXPECT_NEAR(share, 0.5, 0.05);
}

TEST(SearchFeedbackTest, DeterministicAcrossRuns) {
  WebSimulatorOptions o = BaseOptions(RankingPolicy::kQualityEstimate);
  WebSimulator a = WebSimulator::Create(o).value();
  WebSimulator b = WebSimulator::Create(o).value();
  ASSERT_TRUE(a.AdvanceTo(6.0).ok());
  ASSERT_TRUE(b.AdvanceTo(6.0).ok());
  EXPECT_EQ(a.total_search_visits(), b.total_search_visits());
  EXPECT_EQ(a.total_likes_created(), b.total_likes_created());
  ASSERT_EQ(a.search_results().size(), b.search_results().size());
  for (size_t i = 0; i < a.search_results().size(); ++i) {
    EXPECT_EQ(a.search_results()[i], b.search_results()[i]);
  }
}

TEST(SearchFeedbackTest, TrueQualityPolicyRanksByQuality) {
  WebSimulatorOptions o = BaseOptions(RankingPolicy::kTrueQuality);
  WebSimulator sim = WebSimulator::Create(o).value();
  ASSERT_TRUE(sim.AdvanceTo(1.5).ok());
  const auto& results = sim.search_results();
  ASSERT_GE(results.size(), 2u);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(sim.TrueQuality(results[i - 1]),
              sim.TrueQuality(results[i]));
  }
}

// The paper's Section 1 claim, measured: popularity-ranked search
// concentrates attention more than unmediated browsing.
TEST(SearchFeedbackTest, PageRankMediationConcentratesAttention) {
  auto run = [](RankingPolicy policy) {
    WebSimulatorOptions o = BaseOptions(policy);
    o.search.search_traffic_fraction = 0.8;
    o.search.position_bias = 1.5;
    WebSimulator sim = WebSimulator::Create(o).value();
    EXPECT_TRUE(sim.AdvanceTo(10.0).ok());
    std::vector<double> visits;
    for (NodeId p = 0; p < sim.num_pages(); ++p) {
      visits.push_back(static_cast<double>(sim.page(p).visits));
    }
    return GiniCoefficient(visits).value();
  };
  double gini_organic = run(RankingPolicy::kNone);
  double gini_search = run(RankingPolicy::kPageRank);
  EXPECT_GT(gini_search, gini_organic + 0.05);
}

// The paper's conclusion, measured: under quality-ranked search a
// high-quality newcomer gets noticed faster than under
// popularity-ranked search.
TEST(SearchFeedbackTest, QualityRankingDiscoversNewcomerFaster) {
  // Averaged over seeds: a single trajectory can flip the comparison by
  // luck of the Poisson draws; the paper's claim is about the mean.
  auto awareness_at = [](RankingPolicy policy, double horizon,
                         uint64_t seed) {
    WebSimulatorOptions o = BaseOptions(policy);
    o.seed = seed;
    o.search.search_traffic_fraction = 0.8;
    WebSimulator sim = WebSimulator::Create(o).value();
    EXPECT_TRUE(sim.AdvanceTo(8.0).ok());  // incumbents mature
    NodeId newcomer = sim.AddPageWithQuality(0.95).value();
    EXPECT_TRUE(sim.AdvanceTo(8.0 + horizon).ok());
    return sim.TrueAwareness(newcomer);
  };
  double under_quality = 0.0;
  double under_pagerank = 0.0;
  for (uint64_t seed : {7u, 13u, 31u, 57u, 101u, 409u}) {
    under_quality +=
        awareness_at(RankingPolicy::kQualityEstimate, 6.0, seed);
    under_pagerank += awareness_at(RankingPolicy::kPageRank, 6.0, seed);
  }
  EXPECT_GT(under_quality, under_pagerank);
}

}  // namespace
}  // namespace qrank
