// Parameterized invariant sweep over the simulator's configuration
// space: for every combination of forgetting, exploration, births and
// search mediation, the core bookkeeping invariants must hold after a
// burn-in.

#include <gtest/gtest.h>

#include <tuple>

#include "sim/web_simulator.h"

namespace qrank {
namespace {

// (forget_rate, exploration_rate, birth_rate, search_policy_index)
using SimConfig = std::tuple<double, double, double, int>;

RankingPolicy PolicyFromIndex(int index) {
  switch (index) {
    case 1:
      return RankingPolicy::kPageRank;
    case 2:
      return RankingPolicy::kQualityEstimate;
    default:
      return RankingPolicy::kNone;
  }
}

class SimulatorInvariantTest : public ::testing::TestWithParam<SimConfig> {};

TEST_P(SimulatorInvariantTest, BookkeepingInvariantsHold) {
  auto [forget, exploration, births, policy_index] = GetParam();
  WebSimulatorOptions options;
  options.num_users = 250;
  options.seed = 424242;
  options.forget_rate = forget;
  options.exploration_visit_rate = exploration;
  options.page_birth_rate = births;
  options.search.policy = PolicyFromIndex(policy_index);
  options.search.search_traffic_fraction = 0.5;
  options.search.rerank_period = 1.0;

  Result<WebSimulator> sim_result = WebSimulator::Create(options);
  ASSERT_TRUE(sim_result.ok()) << sim_result.status().ToString();
  WebSimulator& sim = *sim_result;
  ASSERT_TRUE(sim.AdvanceTo(8.0).ok());

  // Invariant 1: per-page counters bounded and consistent.
  uint64_t total_likes = 0, total_page_visits = 0;
  for (NodeId p = 0; p < sim.num_pages(); ++p) {
    const PageState& page = sim.page(p);
    EXPECT_LE(page.likes, page.aware) << "page " << p;
    EXPECT_LE(page.aware, options.num_users) << "page " << p;
    EXPECT_GT(page.quality, 0.0);
    EXPECT_LT(page.quality, 1.0);
    EXPECT_GE(page.birth_time, 0.0);
    EXPECT_LE(page.birth_time, sim.now());
    total_likes += page.likes;
    total_page_visits += page.visits;
  }

  // Invariant 2: global tallies consistent.
  EXPECT_EQ(total_page_visits, sim.total_visits());
  EXPECT_EQ(total_likes,
            sim.total_likes_created() - sim.total_forgets());
  EXPECT_EQ(sim.graph().num_live_edges(), total_likes);
  if (options.forget_rate == 0.0) {
    EXPECT_EQ(sim.total_forgets(), 0u);
  }
  if (options.search.policy == RankingPolicy::kNone) {
    EXPECT_EQ(sim.total_search_visits(), 0u);
  } else {
    EXPECT_GT(sim.total_search_visits(), 0u);
    EXPECT_LE(sim.total_search_visits(), sim.total_visits());
  }

  // Invariant 3: snapshot in-degrees equal live likes.
  CsrGraph snapshot = sim.Snapshot().value();
  std::vector<uint32_t> indeg = snapshot.ComputeInDegrees();
  for (NodeId p = 0; p < sim.num_pages(); ++p) {
    EXPECT_EQ(indeg[p], sim.page(p).likes) << "page " << p;
  }

  // Invariant 4: birth times are non-decreasing in page id (dense,
  // monotone id assignment — required by the common-prefix logic).
  for (NodeId p = 1; p < sim.num_pages(); ++p) {
    EXPECT_LE(sim.page(p - 1).birth_time, sim.page(p).birth_time);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, SimulatorInvariantTest,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.5),
                       ::testing::Values(0.0, 2.0),
                       ::testing::Values(0.0, 15.0),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace qrank
