#include "sim/crawler.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "sim/web_simulator.h"

namespace qrank {
namespace {

CsrGraph Chain(NodeId n) {
  EdgeList e(n);
  for (NodeId u = 0; u + 1 < n; ++u) e.Add(u, u + 1);
  return CsrGraph::FromEdgeList(e).value();
}

TEST(CrawlerTest, ValidatesSeeds) {
  CsrGraph g = Chain(3);
  EXPECT_FALSE(Crawl(g, {99}).ok());
}

TEST(CrawlerTest, EmptySeedsYieldEmptyCrawl) {
  CsrGraph g = Chain(3);
  Result<CrawlResult> r = Crawl(g, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->pages_crawled, 0u);
  EXPECT_EQ(r->graph.num_edges(), 0u);
  EXPECT_FALSE(r->budget_exhausted);
}

TEST(CrawlerTest, UnboundedCrawlCoversReachableSet) {
  CsrGraph g = Chain(5);
  Result<CrawlResult> r = Crawl(g, {0});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->pages_crawled, 5u);
  EXPECT_EQ(r->links_observed, 4u);
  EXPECT_EQ(r->graph.num_edges(), 4u);
  for (NodeId p = 0; p < 5; ++p) EXPECT_TRUE(r->crawled[p]);
  EXPECT_FALSE(r->budget_exhausted);
}

TEST(CrawlerTest, UnreachablePagesStayUncrawled) {
  // Two components: 0->1 and 2->3.
  CsrGraph g = CsrGraph::FromEdges(4, {{0, 1}, {2, 3}}).value();
  Result<CrawlResult> r = Crawl(g, {0});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->pages_crawled, 2u);
  EXPECT_FALSE(r->crawled[2]);
  EXPECT_FALSE(r->crawled[3]);
  EXPECT_FALSE(r->graph.HasEdge(2, 3));
}

TEST(CrawlerTest, BudgetStopsCrawl) {
  CsrGraph g = Chain(10);
  CrawlerOptions o;
  o.page_budget = 3;
  Result<CrawlResult> r = Crawl(g, {0}, o);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->pages_crawled, 3u);
  EXPECT_TRUE(r->budget_exhausted);
  // The crawl downloaded 0, 1, 2; it observed 0->1, 1->2, 2->3 (the
  // link to the undownloaded frontier page 3 is known).
  EXPECT_EQ(r->links_observed, 3u);
  EXPECT_TRUE(r->graph.HasEdge(2, 3));
  EXPECT_FALSE(r->crawled[3]);
  EXPECT_FALSE(r->graph.HasEdge(3, 4));
}

TEST(CrawlerTest, DepthLimitStopsExpansion) {
  CsrGraph g = Chain(10);
  CrawlerOptions o;
  o.max_depth = 2;
  Result<CrawlResult> r = Crawl(g, {0}, o);
  ASSERT_TRUE(r.ok());
  // Depth 0: page 0; depth 1: page 1; depth 2: page 2. Page 3 is seen
  // as a link target but never enqueued.
  EXPECT_EQ(r->pages_crawled, 3u);
  EXPECT_FALSE(r->crawled[3]);
  EXPECT_FALSE(r->budget_exhausted);
}

TEST(CrawlerTest, DuplicateSeedsCrawledOnce) {
  CsrGraph g = Chain(3);
  Result<CrawlResult> r = Crawl(g, {0, 0, 0, 1});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->pages_crawled, 3u);
}

TEST(CrawlerTest, BfsOrderRespectsBudgetBreadthFirst) {
  // Star out of node 0 to 1..6, then 1->7. Budget 4 downloads 0 and
  // then 1, 2, 3 (FIFO), never reaching 7.
  EdgeList e(8);
  for (NodeId t = 1; t <= 6; ++t) e.Add(0, t);
  e.Add(1, 7);
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  CrawlerOptions o;
  o.page_budget = 4;
  Result<CrawlResult> r = Crawl(g, {0}, o);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->crawled[0]);
  EXPECT_TRUE(r->crawled[1]);
  EXPECT_TRUE(r->crawled[2]);
  EXPECT_TRUE(r->crawled[3]);
  EXPECT_FALSE(r->crawled[7]);
}

TEST(CrawlerTest, CrawlOfSimulatedWebPreservesIdAlignment) {
  WebSimulatorOptions sim_options;
  sim_options.num_users = 300;
  sim_options.seed = 3;
  WebSimulator sim = WebSimulator::Create(sim_options).value();
  ASSERT_TRUE(sim.AdvanceTo(8.0).ok());
  CsrGraph truth = sim.Snapshot().value();

  // Seed with the 10 most-liked pages (a crawler's seed list).
  std::vector<NodeId> seeds;
  for (NodeId p = 0; p < 10; ++p) seeds.push_back(p);
  CrawlerOptions o;
  o.page_budget = 150;
  Result<CrawlResult> r = Crawl(truth, seeds, o);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->graph.num_nodes(), truth.num_nodes());
  EXPECT_LE(r->pages_crawled, 150u);
  EXPECT_LE(r->graph.num_edges(), truth.num_edges());
  // Every crawled page's out-links match the truth exactly.
  for (NodeId p = 0; p < truth.num_nodes(); ++p) {
    if (!r->crawled[p]) {
      EXPECT_EQ(r->graph.OutDegree(p), 0u);
      continue;
    }
    auto a = truth.OutNeighbors(p);
    auto b = r->graph.OutNeighbors(p);
    ASSERT_EQ(a.size(), b.size()) << "page " << p;
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

}  // namespace
}  // namespace qrank
