// Steady-state allocation behavior of the distributed query path.
//
// The coordinator's contract mirrors QueryEngine::TopK's: once its
// per-query scratch, the channel frame buffers, and the workers'
// thread-local scratches have warmed up to the deployment's k, a
// steady stream of identical-shape queries allocates NOTHING — on
// either side of the sockets. The global counting allocator sees every
// thread in this process, so the assertion covers the coordinator's
// encode/fan-out/merge/exploration path AND the in-process workers'
// decode/query/translate/encode path at once.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "dist/coordinator.h"
#include "dist/shard_map.h"
#include "dist/worker.h"
#include "serve/query_engine.h"
#include "serve/score_bundle.h"

namespace {

std::atomic<size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace qrank {
namespace {

constexpr NodeId kPages = 2000;
constexpr SiteId kSites = 32;
constexpr uint32_t kShards = 3;

size_t AllocationsDuring(const std::function<void()>& fn) {
  const size_t before = g_allocations.load(std::memory_order_relaxed);
  fn();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(DistAllocTest, SteadyStateQueriesAllocationFreeAfterWarmup) {
  Rng rng(29);
  ScoreBundleSource src;
  src.quality.resize(kPages);
  src.pagerank.resize(kPages);
  src.site_ids.resize(kPages);
  for (NodeId i = 0; i < kPages; ++i) {
    src.quality[i] = rng.Pareto(1.0, 1.2);
    src.pagerank[i] = rng.Pareto(1.0, 1.2);
    src.site_ids[i] = static_cast<SiteId>(rng.UniformUint64(kSites));
  }
  src.num_sites = kSites;
  const LoadedBundle bundle =
      LoadedBundle::FromBuffer(
          ScoreBundleWriter::Create(std::move(src)).value().Serialize())
          .value();

  const std::string dir = ::testing::TempDir() + "/alloc_shards";
  ::mkdir(dir.c_str(), 0755);
  const Result<ShardSplit> split = SplitBundleBySite(bundle, kShards, dir);
  ASSERT_TRUE(split.ok()) << split.status().ToString();

  std::vector<std::unique_ptr<WorkerServer>> workers;
  std::vector<ShardAddress> addresses(kShards);
  for (uint32_t s = 0; s < kShards; ++s) {
    auto worker = std::make_unique<WorkerServer>(WorkerServer::Options{});
    ASSERT_TRUE(worker
                    ->Init(split.value().bundle_paths[s],
                           split.value().meta_paths[s])
                    .ok());
    ASSERT_TRUE(worker->Start().ok());
    addresses[s].primary.port = worker->port();
    workers.push_back(std::move(worker));
  }
  // Hedging disabled (hedge_delay >= deadline): a hedge fired by a
  // scheduler hiccup would lazily connect its channel, which allocates
  // and has nothing to do with the steady-state contract under test.
  CoordinatorOptions options;
  options.query_deadline = std::chrono::seconds(30);
  options.hedge_delay = std::chrono::seconds(30);
  Coordinator coord(split.value().map, addresses, options);
  ASSERT_TRUE(coord.Start().ok());

  TopKQuery query;
  query.k = 20;
  query.blend_alpha = 0.5;
  DistTopKResult result;

  // Warm-up: connections, frame buffers, scratch growth, thread-local
  // worker state — queries of every shape this test later measures.
  for (int i = 0; i < 30; ++i) {
    query.exploration_seed = static_cast<uint64_t>(i);
    for (const double eps : {0.0, 0.4}) {
      query.exploration_epsilon = eps;
      ASSERT_TRUE(coord.TopK(query, &result).ok());
      ASSERT_FALSE(result.degraded);
    }
  }

  // Response frames rotate through a three-buffer swap cycle per
  // channel (recv -> result -> scratch), so a few same-shape queries
  // are needed before every rotating buffer has held that shape's
  // largest frame; only then is the cycle capacity-stable.
  query.exploration_epsilon = 0.0;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(coord.TopK(query, &result).ok());
  }

  // Steady state: the full distributed round trip — encode, fan-out,
  // worker decode + engine + translate + encode, coordinator merge —
  // must not allocate on either side.
  const size_t deterministic = AllocationsDuring([&] {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(coord.TopK(query, &result).ok());
      ASSERT_FALSE(result.degraded);
    }
  });
  EXPECT_EQ(deterministic, 0u)
      << "deterministic distributed TopK allocated in steady state";

  // Exploration adds the RNG replay and the resolve wave; both reuse
  // per-query scratch and must also be allocation-free once warm.
  query.exploration_epsilon = 0.4;
  for (int i = 0; i < 6; ++i) {
    query.exploration_seed = static_cast<uint64_t>(i);
    ASSERT_TRUE(coord.TopK(query, &result).ok());
  }
  const size_t exploring = AllocationsDuring([&] {
    for (int i = 0; i < 50; ++i) {
      query.exploration_seed = static_cast<uint64_t>(i % 30);
      ASSERT_TRUE(coord.TopK(query, &result).ok());
      ASSERT_FALSE(result.degraded);
    }
  });
  EXPECT_EQ(exploring, 0u)
      << "exploring distributed TopK allocated in steady state";

  coord.Stop();
  for (auto& w : workers) w->Stop();
}

}  // namespace
}  // namespace qrank
