// Distributed-vs-single-process oracle: a coordinator fanning out to
// real WorkerServer processes-in-threads over loopback sockets must
// return results element-for-element identical (rows, page ids,
// bitwise scores, promotion flags) to QueryEngine::TopK on the
// unsharded bundle — across 2/4/8 shards, every blend alpha, site
// filters, and seeded exploration (both the site-query path, where the
// owning worker explores, and the global path, where the coordinator
// replays the engine's RNG stream and resolves promoted rows over the
// wire).

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "dist/coordinator.h"
#include "dist/shard_map.h"
#include "dist/worker.h"
#include "serve/query_engine.h"
#include "serve/score_bundle.h"

namespace qrank {
namespace {

constexpr NodeId kPages = 1200;
constexpr SiteId kSites = 57;

const LoadedBundle& Bundle() {
  static const LoadedBundle b = [] {
    Rng rng(19);
    ScoreBundleSource src;
    src.quality.resize(kPages);
    src.pagerank.resize(kPages);
    src.site_ids.resize(kPages);
    for (NodeId i = 0; i < kPages; ++i) {
      // A mix of smooth and tie-heavy scores so both the threshold
      // algorithm's common regime and its tie-break paths are on.
      src.quality[i] = (i % 3 == 0)
                           ? static_cast<double>(rng.UniformUint64(8))
                           : rng.Pareto(1.0, 1.2);
      src.pagerank[i] = rng.Pareto(1.0, 1.3);
      src.site_ids[i] = static_cast<SiteId>(rng.UniformUint64(kSites));
    }
    src.num_sites = kSites;
    return LoadedBundle::FromBuffer(
               ScoreBundleWriter::Create(std::move(src)).value().Serialize())
        .value();
  }();
  return b;
}

/// A full sharded deployment on loopback: split files in a temp dir,
/// one WorkerServer per shard, one coordinator.
class Deployment {
 public:
  explicit Deployment(uint32_t num_shards) {
    const std::string dir = ::testing::TempDir() + "/oracle_shards_" +
                            std::to_string(num_shards);
    ::mkdir(dir.c_str(), 0755);
    Result<ShardSplit> split = SplitBundleBySite(Bundle(), num_shards, dir);
    QRANK_CHECK(split.ok()) << split.status().ToString();
    std::vector<ShardAddress> addresses;
    for (uint32_t s = 0; s < num_shards; ++s) {
      auto worker = std::make_unique<WorkerServer>(WorkerServer::Options{});
      QRANK_CHECK(worker
                      ->Init(split.value().bundle_paths[s],
                             split.value().meta_paths[s])
                      .ok());
      QRANK_CHECK(worker->Start().ok());
      ShardAddress address;
      address.primary.port = worker->port();
      addresses.push_back(address);
      workers_.push_back(std::move(worker));
    }
    coordinator_ = std::make_unique<Coordinator>(
        std::move(split.value().map), std::move(addresses),
        CoordinatorOptions{});
    QRANK_CHECK(coordinator_->Start().ok());
  }

  ~Deployment() {
    coordinator_->Stop();
    for (auto& w : workers_) w->Stop();
  }

  Coordinator& coordinator() { return *coordinator_; }

 private:
  std::vector<std::unique_ptr<WorkerServer>> workers_;
  std::unique_ptr<Coordinator> coordinator_;
};

void ExpectMatchesOracle(Coordinator& coord, const TopKQuery& query) {
  TopKScratch scratch;
  ASSERT_TRUE(QueryEngine::TopKOnBundle(Bundle(), query, &scratch).ok());
  DistTopKResult dist;
  const Status st = coord.TopK(query, &dist);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_FALSE(dist.degraded);
  const std::span<const TopKEntry> want = scratch.results();
  ASSERT_EQ(dist.entries.size(), want.size())
      << "k=" << query.k << " site=" << query.site
      << " alpha=" << query.blend_alpha;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(dist.entries[i].row, want[i].row) << "rank " << i;
    EXPECT_EQ(dist.entries[i].page_id, want[i].page_id) << "rank " << i;
    // Bitwise score equality: both sides evaluate the same blend
    // expression on the same doubles (see coordinator.h).
    EXPECT_EQ(dist.entries[i].score, want[i].score) << "rank " << i;
    EXPECT_EQ(dist.entries[i].promoted, want[i].promoted) << "rank " << i;
  }
}

class DistOracleTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DistOracleTest, DeterministicGlobalQueriesMatch) {
  Deployment deployment(GetParam());
  for (const uint32_t k : {1u, 10u, 100u}) {
    for (const double alpha : {1.0, 0.0, 0.5, 0.75}) {
      TopKQuery query;
      query.k = k;
      query.blend_alpha = alpha;
      ExpectMatchesOracle(deployment.coordinator(), query);
    }
  }
}

TEST_P(DistOracleTest, SiteFilteredQueriesMatch) {
  Deployment deployment(GetParam());
  // Sites spanning every shard, including boundary sites.
  for (const SiteId site : {SiteId{0}, SiteId{1}, SiteId{kSites / 2},
                            SiteId{kSites - 1}}) {
    for (const uint32_t k : {1u, 5u, 200u}) {  // 200 > any site's pages
      TopKQuery query;
      query.k = k;
      query.site = site;
      query.blend_alpha = 0.5;
      ExpectMatchesOracle(deployment.coordinator(), query);
    }
  }
}

TEST_P(DistOracleTest, SiteExplorationMatchesEngineExactly) {
  Deployment deployment(GetParam());
  // Site queries ship epsilon/seed to the owning worker, whose engine
  // runs the same exploration loop the oracle does.
  for (const SiteId site : {SiteId{2}, SiteId{kSites - 2}}) {
    for (const uint64_t seed : {1ull, 99ull, 4096ull}) {
      TopKQuery query;
      query.k = 8;
      query.site = site;
      query.exploration_epsilon = 0.5;
      query.exploration_seed = seed;
      ExpectMatchesOracle(deployment.coordinator(), query);
    }
  }
}

TEST_P(DistOracleTest, GlobalExplorationReplayMatchesEngineExactly) {
  Deployment deployment(GetParam());
  // Global exploration goes through the coordinator's replay + resolve
  // wave; high epsilon makes nearly every slot a promotion.
  for (const double eps : {0.1, 0.5, 0.95}) {
    for (const uint64_t seed : {7ull, 31337ull, 0ull}) {
      TopKQuery query;
      query.k = 16;
      query.blend_alpha = 0.25;
      query.exploration_epsilon = eps;
      query.exploration_seed = seed;
      ExpectMatchesOracle(deployment.coordinator(), query);
    }
  }
}

TEST_P(DistOracleTest, RepeatedQueriesStayExactAndCountStats) {
  Deployment deployment(GetParam());
  TopKQuery query;
  query.k = 12;
  query.blend_alpha = 0.5;
  for (int i = 0; i < 25; ++i) {
    query.exploration_epsilon = (i % 2 == 0) ? 0.0 : 0.3;
    query.exploration_seed = static_cast<uint64_t>(i);
    ExpectMatchesOracle(deployment.coordinator(), query);
  }
  EXPECT_EQ(deployment.coordinator().degraded_queries(), 0u);
  EXPECT_GE(deployment.coordinator().queries(), 25u);
}

INSTANTIATE_TEST_SUITE_P(Shards, DistOracleTest,
                         ::testing::Values(2u, 4u, 8u),
                         [](const ::testing::TestParamInfo<uint32_t>& info) {
                           return std::to_string(info.param) + "shards";
                         });

TEST(DistOracleSingleShardTest, OneShardDeploymentMatches) {
  Deployment deployment(1);
  TopKQuery query;
  query.k = 20;
  query.blend_alpha = 0.5;
  ExpectMatchesOracle(deployment.coordinator(), query);
  query.site = 3;
  ExpectMatchesOracle(deployment.coordinator(), query);
}

TEST(DistValidationTest, CoordinatorRejectsInvalidQueries) {
  Deployment deployment(2);
  DistTopKResult result;
  TopKQuery query;
  query.k = kMaxWireTopK + 1;
  EXPECT_FALSE(deployment.coordinator().TopK(query, &result).ok());
  query.k = 10;
  query.blend_alpha = 1.5;
  EXPECT_FALSE(deployment.coordinator().TopK(query, &result).ok());
  query.blend_alpha = 1.0;
  query.site = kSites;  // out of range, not the kAllSites sentinel
  EXPECT_FALSE(deployment.coordinator().TopK(query, &result).ok());
  query.site = kAllSites;
  query.exploration_epsilon = 2.0;
  EXPECT_FALSE(deployment.coordinator().TopK(query, &result).ok());
}

}  // namespace
}  // namespace qrank
