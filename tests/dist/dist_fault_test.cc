// Failure behavior of the distributed tier: a worker killed mid-stream
// degrades the query (partial results, degraded flag) within the
// deadline instead of hanging; a worker that rejoins on the same port
// brings the deployment back to exact answers; hedged requests rescue
// a slow primary through its replica without degrading. Runs entirely
// on loopback with real sockets and threads — this suite is also the
// TSan workload for the RPC/coordinator locking (ROADMAP: tsan CI
// job).

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "dist/coordinator.h"
#include "dist/shard_map.h"
#include "dist/worker.h"
#include "serve/query_engine.h"
#include "serve/score_bundle.h"

namespace qrank {
namespace {

using std::chrono::milliseconds;
using Clock = std::chrono::steady_clock;

constexpr NodeId kPages = 600;
constexpr SiteId kSites = 24;

const LoadedBundle& Bundle() {
  static const LoadedBundle b = [] {
    Rng rng(23);
    ScoreBundleSource src;
    src.quality.resize(kPages);
    src.pagerank.resize(kPages);
    src.site_ids.resize(kPages);
    for (NodeId i = 0; i < kPages; ++i) {
      src.quality[i] = rng.Pareto(1.0, 1.2);
      src.pagerank[i] = rng.Pareto(1.0, 1.2);
      src.site_ids[i] = static_cast<SiteId>(rng.UniformUint64(kSites));
    }
    src.num_sites = kSites;
    return LoadedBundle::FromBuffer(
               ScoreBundleWriter::Create(std::move(src)).value().Serialize())
        .value();
  }();
  return b;
}

const ShardSplit& Split() {
  static const ShardSplit split = [] {
    const std::string dir = ::testing::TempDir() + "/fault_shards";
    ::mkdir(dir.c_str(), 0755);
    Result<ShardSplit> s = SplitBundleBySite(Bundle(), 2, dir);
    QRANK_CHECK(s.ok()) << s.status().ToString();
    return std::move(s).value();
  }();
  return split;
}

std::unique_ptr<WorkerServer> StartWorker(uint32_t shard, uint16_t port,
                                          milliseconds delay) {
  WorkerServer::Options options;
  options.port = port;
  options.test_response_delay = delay;
  auto worker = std::make_unique<WorkerServer>(options);
  QRANK_CHECK(
      worker->Init(Split().bundle_paths[shard], Split().meta_paths[shard])
          .ok());
  QRANK_CHECK(worker->Start().ok());
  return worker;
}

TopKQuery GlobalQuery() {
  TopKQuery query;
  query.k = 10;
  query.blend_alpha = 0.5;
  return query;
}

std::vector<TopKEntry> Oracle(const TopKQuery& query) {
  TopKScratch scratch;
  QRANK_CHECK(QueryEngine::TopKOnBundle(Bundle(), query, &scratch).ok());
  return {scratch.results().begin(), scratch.results().end()};
}

TEST(DistFaultTest, DeadWorkerDegradesWithinDeadlineAndRejoins) {
  auto w0 = StartWorker(0, 0, milliseconds(0));
  auto w1 = StartWorker(1, 0, milliseconds(0));
  const uint16_t port1 = w1->port();

  CoordinatorOptions options;
  options.query_deadline = milliseconds(400);
  options.hedge_delay = milliseconds(50);
  std::vector<ShardAddress> addresses(2);
  addresses[0].primary.port = w0->port();
  addresses[1].primary.port = port1;
  Coordinator coord(LoadShardMap(Split().map_path).value(), addresses,
                    options);
  ASSERT_TRUE(coord.Start().ok());

  DistTopKResult result;
  ASSERT_TRUE(coord.TopK(GlobalQuery(), &result).ok());
  EXPECT_FALSE(result.degraded);
  const std::vector<TopKEntry> want = Oracle(GlobalQuery());
  ASSERT_EQ(result.entries.size(), want.size());

  // Kill shard 1 and query again: the shard's channels fail fast
  // (connection refused), so the partial answer must come back well
  // inside the deadline with shard 0's rows only, ranked exactly.
  w1->Stop();
  const Clock::time_point t0 = Clock::now();
  ASSERT_TRUE(coord.TopK(GlobalQuery(), &result).ok());
  const auto elapsed = Clock::now() - t0;
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.shards_asked, 2u);
  EXPECT_EQ(result.shards_answered, 1u);
  EXPECT_LT(elapsed, options.query_deadline + milliseconds(200))
      << "degraded answer must not overshoot the deadline";
  std::vector<TopKEntry> shard0_only;
  const ShardMap map = LoadShardMap(Split().map_path).value();
  for (const TopKEntry& e : want) {
    if (map.ShardForSite(Bundle().site_ids()[e.row]) == 0) {
      shard0_only.push_back(e);
    }
  }
  // The surviving shard's rows come back in exact oracle order; the
  // partial list is a prefix-merge of one shard so it has exactly the
  // oracle entries owned by shard 0 that fit in k... which is every
  // oracle-shard0 row plus possibly deeper shard-0 rows. The first
  // |shard0_only| of them must match.
  ASSERT_GE(result.entries.size(), shard0_only.size());
  for (size_t i = 0; i < shard0_only.size(); ++i) {
    EXPECT_EQ(result.entries[i].row, shard0_only[i].row);
    EXPECT_EQ(result.entries[i].score, shard0_only[i].score);
  }
  EXPECT_GE(coord.degraded_queries(), 1u);

  // Same-port rejoin: a fresh WorkerServer takes shard 1's address and
  // the coordinator's next query reconnects and is exact again.
  w1 = StartWorker(1, port1, milliseconds(0));
  ASSERT_TRUE(coord.TopK(GlobalQuery(), &result).ok());
  EXPECT_FALSE(result.degraded) << "coordinator must recover after rejoin";
  ASSERT_EQ(result.entries.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(result.entries[i].row, want[i].row);
    EXPECT_EQ(result.entries[i].score, want[i].score);
  }

  coord.Stop();
}

TEST(DistFaultTest, FastFailingShardSettlesEarlyWithHedgingDisabled) {
  // With hedging disabled (hedge_delay >= query_deadline) a shard
  // whose primary fails fast (connection refused) can never answer;
  // the coordinator must settle it on the failure instead of waiting
  // out the whole query deadline.
  auto w0 = StartWorker(0, 0, milliseconds(0));
  auto w1 = StartWorker(1, 0, milliseconds(0));
  const uint16_t dead_port = w1->port();
  w1->Stop();  // nobody listens here now: loopback connects are refused

  CoordinatorOptions options;
  options.query_deadline = milliseconds(3000);
  options.hedge_delay = milliseconds(3000);  // >= deadline: no hedging
  std::vector<ShardAddress> addresses(2);
  addresses[0].primary.port = w0->port();
  addresses[1].primary.port = dead_port;
  Coordinator coord(LoadShardMap(Split().map_path).value(), addresses,
                    options);
  ASSERT_TRUE(coord.Start().ok());

  DistTopKResult result;
  const Clock::time_point t0 = Clock::now();
  ASSERT_TRUE(coord.TopK(GlobalQuery(), &result).ok());
  const auto elapsed = Clock::now() - t0;
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.shards_answered, 1u);
  EXPECT_EQ(result.hedges_fired, 0u);
  EXPECT_LT(elapsed, milliseconds(1000))
      << "a refused connection must settle the shard, not stall the "
         "wave until the deadline";
  coord.Stop();
}

TEST(DistFaultTest, SiteQueryOnDeadShardDegradesToEmpty) {
  auto w0 = StartWorker(0, 0, milliseconds(0));
  auto w1 = StartWorker(1, 0, milliseconds(0));
  CoordinatorOptions options;
  options.query_deadline = milliseconds(300);
  std::vector<ShardAddress> addresses(2);
  addresses[0].primary.port = w0->port();
  addresses[1].primary.port = w1->port();
  const ShardMap map = LoadShardMap(Split().map_path).value();
  Coordinator coord(map, addresses, options);
  ASSERT_TRUE(coord.Start().ok());

  // A site owned by shard 1, which is about to die.
  const SiteId site = map.site_boundaries[1];
  ASSERT_EQ(map.ShardForSite(site), 1u);
  w1->Stop();
  TopKQuery query = GlobalQuery();
  query.site = site;
  DistTopKResult result;
  ASSERT_TRUE(coord.TopK(query, &result).ok());
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.shards_asked, 1u);
  EXPECT_EQ(result.shards_answered, 0u);
  EXPECT_TRUE(result.entries.empty());

  // Shard 0 sites are untouched by shard 1's death.
  query.site = 0;
  ASSERT_TRUE(coord.TopK(query, &result).ok());
  EXPECT_FALSE(result.degraded);
  coord.Stop();
}

TEST(DistFaultTest, HedgeToReplicaRescuesSlowPrimaryWithoutDegrading) {
  // Primary for shard 1 answers after 2s (past the deadline); its
  // replica is fast. With hedging at 40ms the query must come back
  // exact, well before the slow primary would have answered, and
  // report the fired hedge.
  auto w0 = StartWorker(0, 0, milliseconds(0));
  auto slow1 = StartWorker(1, 0, milliseconds(2000));
  auto fast1 = StartWorker(1, 0, milliseconds(0));

  CoordinatorOptions options;
  options.query_deadline = milliseconds(1000);
  options.hedge_delay = milliseconds(40);
  std::vector<ShardAddress> addresses(2);
  addresses[0].primary.port = w0->port();
  addresses[1].primary.port = slow1->port();
  addresses[1].has_replica = true;
  addresses[1].replica.port = fast1->port();
  Coordinator coord(LoadShardMap(Split().map_path).value(), addresses,
                    options);
  ASSERT_TRUE(coord.Start().ok());

  DistTopKResult result;
  const Clock::time_point t0 = Clock::now();
  ASSERT_TRUE(coord.TopK(GlobalQuery(), &result).ok());
  const auto elapsed = Clock::now() - t0;
  EXPECT_FALSE(result.degraded);
  EXPECT_GE(result.hedges_fired, 1u);
  EXPECT_LT(elapsed, milliseconds(900))
      << "hedge must beat the slow primary, not wait it out";
  const std::vector<TopKEntry> want = Oracle(GlobalQuery());
  ASSERT_EQ(result.entries.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(result.entries[i].row, want[i].row);
    EXPECT_EQ(result.entries[i].score, want[i].score);
  }
  EXPECT_GE(coord.hedges_fired(), 1u);
  coord.Stop();
}

TEST(DistFaultTest, SlowShardPastDeadlineDegradesOnTime) {
  // No replica: shard 1 simply cannot answer inside the deadline. The
  // coordinator must cancel it and return shard 0's partial results
  // around the deadline mark, then the abandoned in-flight response
  // must not poison the next query (cancel-by-disconnect).
  auto w0 = StartWorker(0, 0, milliseconds(0));
  auto slow1 = StartWorker(1, 0, milliseconds(1500));

  CoordinatorOptions options;
  options.query_deadline = milliseconds(250);
  options.hedge_delay = milliseconds(60);
  std::vector<ShardAddress> addresses(2);
  addresses[0].primary.port = w0->port();
  addresses[1].primary.port = slow1->port();
  Coordinator coord(LoadShardMap(Split().map_path).value(), addresses,
                    options);
  ASSERT_TRUE(coord.Start().ok());

  DistTopKResult result;
  const Clock::time_point t0 = Clock::now();
  ASSERT_TRUE(coord.TopK(GlobalQuery(), &result).ok());
  const auto elapsed = Clock::now() - t0;
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.shards_answered, 1u);
  EXPECT_GE(elapsed, milliseconds(240));
  EXPECT_LT(elapsed, milliseconds(800));

  // Next query re-runs against a still-slow shard: stats accumulate,
  // behavior is unchanged (a stale response from the canceled stream
  // must never be delivered into this query).
  ASSERT_TRUE(coord.TopK(GlobalQuery(), &result).ok());
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(coord.degraded_queries(), 2u);
  coord.Stop();
}

TEST(DistFaultTest, GlobalExplorationRollsBackWhenResolveShardIsDead) {
  // Exploration promotes random global rows; rows owned by a dead
  // shard cannot be resolved, so the coordinator must roll those slots
  // back to the deterministic entries and mark the query degraded —
  // never serve a fabricated score.
  auto w0 = StartWorker(0, 0, milliseconds(0));
  auto w1 = StartWorker(1, 0, milliseconds(0));
  CoordinatorOptions options;
  options.query_deadline = milliseconds(400);
  std::vector<ShardAddress> addresses(2);
  addresses[0].primary.port = w0->port();
  addresses[1].primary.port = w1->port();
  Coordinator coord(LoadShardMap(Split().map_path).value(), addresses,
                    options);
  ASSERT_TRUE(coord.Start().ok());

  TopKQuery query = GlobalQuery();
  query.exploration_epsilon = 0.9;
  query.exploration_seed = 5;

  DistTopKResult result;
  ASSERT_TRUE(coord.TopK(query, &result).ok());
  EXPECT_FALSE(result.degraded);

  w1->Stop();
  ASSERT_TRUE(coord.TopK(query, &result).ok());
  EXPECT_TRUE(result.degraded);
  // Whatever came back carries real scores: every entry's score must
  // be the oracle blend of its row (promoted slots that could not be
  // resolved were rolled back to deterministic entries, which are
  // shard-0 rows here).
  for (const TopKEntry& e : result.entries) {
    const double blend = query.blend_alpha * Bundle().quality()[e.row] +
                         (1.0 - query.blend_alpha) * Bundle().pagerank()[e.row];
    EXPECT_EQ(e.score, blend);
  }
  coord.Stop();
}

TEST(DistFaultTest, WorkerCountsQueriesAndSurvivesCoordinatorRestart) {
  auto w0 = StartWorker(0, 0, milliseconds(0));
  auto w1 = StartWorker(1, 0, milliseconds(0));
  std::vector<ShardAddress> addresses(2);
  addresses[0].primary.port = w0->port();
  addresses[1].primary.port = w1->port();
  const ShardMap map = LoadShardMap(Split().map_path).value();
  for (int round = 0; round < 2; ++round) {
    Coordinator coord(map, addresses, CoordinatorOptions{});
    ASSERT_TRUE(coord.Start().ok());
    DistTopKResult result;
    ASSERT_TRUE(coord.TopK(GlobalQuery(), &result).ok());
    EXPECT_FALSE(result.degraded);
    coord.Stop();
  }
  EXPECT_GE(w0->queries_served(), 2u);
  EXPECT_GE(w1->queries_served(), 2u);
}

}  // namespace
}  // namespace qrank
