// QRKF frame codec hardening: round-trips for every frame type, then
// the two exhaustive corruption sweeps the format doc promises — every
// single-bit flip anywhere in a frame and every truncation length must
// decode to Status::Corruption, never crash, over-read, or silently
// succeed. The frame CRC covers the header prefix as well as the
// payload precisely so these sweeps can assert "always caught" (a
// payload-only CRC would let one-bit FrameType flips re-interpret a
// valid payload as the wrong message).

#include "dist/wire_format.h"

#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace qrank {
namespace {

WireTopKRequest SampleTopKRequest() {
  WireTopKRequest req;
  req.request_id = 0x1122334455667788ull;
  req.k = 25;
  req.site = 0xffffffffu;  // kAllSites sentinel
  req.blend_alpha = 0.625;
  req.exploration_epsilon = 0.125;
  req.exploration_seed = 0xdeadbeefcafef00dull;
  return req;
}

WireTopKResponse SampleTopKResponse() {
  WireTopKResponse resp;
  resp.request_id = 42;
  resp.status = 0;
  resp.shard_index = 3;
  resp.entries.push_back(WireTopKEntry{7, 1007, 0.75, 0});
  resp.entries.push_back(WireTopKEntry{123456, 999999, -1.5e-12, 1});
  resp.entries.push_back(WireTopKEntry{0, 0, 0.0, 0});
  return resp;
}

WireResolveRequest SampleResolveRequest() {
  WireResolveRequest req;
  req.request_id = 77;
  req.global_rows = {3, 99, 12345, 0};
  return req;
}

WireResolveResponse SampleResolveResponse() {
  WireResolveResponse resp;
  resp.request_id = 77;
  resp.status = 0;
  resp.entries.push_back(WireResolveEntry{3, 5003, 0.5, 0.25});
  resp.entries.push_back(WireResolveEntry{99, 5099, 1e300, 1e-300});
  return resp;
}

WireInfoResponse SampleInfoResponse() {
  WireInfoResponse resp;
  resp.request_id = 9;
  resp.shard_index = 1;
  resp.num_shards = 4;
  resp.num_local_pages = 2048;
  resp.num_sites = 655;
  resp.total_pages = 131000;
  resp.generation = 5;
  return resp;
}

std::span<const uint8_t> Payload(const std::vector<uint8_t>& frame) {
  return std::span<const uint8_t>(frame).subspan(kFrameHeaderBytes);
}

// --- Round-trips ----------------------------------------------------

TEST(WireFormatTest, TopKRequestRoundTrip) {
  const WireTopKRequest req = SampleTopKRequest();
  std::vector<uint8_t> frame;
  EncodeTopKRequest(req, &frame);
  const Result<FrameHeader> header = DecodeFrame(frame);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header.value().type, FrameType::kTopKRequest);
  WireTopKRequest out;
  ASSERT_TRUE(DecodeTopKRequest(Payload(frame), &out).ok());
  EXPECT_EQ(out.request_id, req.request_id);
  EXPECT_EQ(out.k, req.k);
  EXPECT_EQ(out.site, req.site);
  EXPECT_EQ(out.blend_alpha, req.blend_alpha);
  EXPECT_EQ(out.exploration_epsilon, req.exploration_epsilon);
  EXPECT_EQ(out.exploration_seed, req.exploration_seed);
}

TEST(WireFormatTest, TopKResponseRoundTrip) {
  const WireTopKResponse resp = SampleTopKResponse();
  std::vector<uint8_t> frame;
  EncodeTopKResponse(resp, &frame);
  const Result<FrameHeader> header = DecodeFrame(frame);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header.value().type, FrameType::kTopKResponse);
  WireTopKResponse out;
  ASSERT_TRUE(DecodeTopKResponse(Payload(frame), &out).ok());
  EXPECT_EQ(out.request_id, resp.request_id);
  EXPECT_EQ(out.status, resp.status);
  EXPECT_EQ(out.shard_index, resp.shard_index);
  ASSERT_EQ(out.entries.size(), resp.entries.size());
  for (size_t i = 0; i < resp.entries.size(); ++i) {
    EXPECT_EQ(out.entries[i].global_row, resp.entries[i].global_row);
    EXPECT_EQ(out.entries[i].page_id, resp.entries[i].page_id);
    EXPECT_EQ(out.entries[i].score, resp.entries[i].score);
    EXPECT_EQ(out.entries[i].promoted, resp.entries[i].promoted);
  }
}

TEST(WireFormatTest, ResolveRoundTrip) {
  const WireResolveRequest req = SampleResolveRequest();
  std::vector<uint8_t> frame;
  EncodeResolveRequest(req, &frame);
  ASSERT_TRUE(DecodeFrame(frame).ok());
  WireResolveRequest req_out;
  ASSERT_TRUE(DecodeResolveRequest(Payload(frame), &req_out).ok());
  EXPECT_EQ(req_out.request_id, req.request_id);
  EXPECT_EQ(req_out.global_rows, req.global_rows);

  const WireResolveResponse resp = SampleResolveResponse();
  EncodeResolveResponse(resp, &frame);
  ASSERT_TRUE(DecodeFrame(frame).ok());
  WireResolveResponse resp_out;
  ASSERT_TRUE(DecodeResolveResponse(Payload(frame), &resp_out).ok());
  EXPECT_EQ(resp_out.request_id, resp.request_id);
  ASSERT_EQ(resp_out.entries.size(), resp.entries.size());
  for (size_t i = 0; i < resp.entries.size(); ++i) {
    EXPECT_EQ(resp_out.entries[i].global_row, resp.entries[i].global_row);
    EXPECT_EQ(resp_out.entries[i].page_id, resp.entries[i].page_id);
    EXPECT_EQ(resp_out.entries[i].quality, resp.entries[i].quality);
    EXPECT_EQ(resp_out.entries[i].pagerank, resp.entries[i].pagerank);
  }
}

TEST(WireFormatTest, InfoRoundTrip) {
  std::vector<uint8_t> frame;
  EncodeInfoRequest(31337, &frame);
  ASSERT_TRUE(DecodeFrame(frame).ok());
  uint64_t request_id = 0;
  ASSERT_TRUE(DecodeInfoRequest(Payload(frame), &request_id).ok());
  EXPECT_EQ(request_id, 31337u);

  const WireInfoResponse resp = SampleInfoResponse();
  EncodeInfoResponse(resp, &frame);
  ASSERT_TRUE(DecodeFrame(frame).ok());
  WireInfoResponse out;
  ASSERT_TRUE(DecodeInfoResponse(Payload(frame), &out).ok());
  EXPECT_EQ(out.request_id, resp.request_id);
  EXPECT_EQ(out.shard_index, resp.shard_index);
  EXPECT_EQ(out.num_shards, resp.num_shards);
  EXPECT_EQ(out.num_local_pages, resp.num_local_pages);
  EXPECT_EQ(out.num_sites, resp.num_sites);
  EXPECT_EQ(out.total_pages, resp.total_pages);
  EXPECT_EQ(out.generation, resp.generation);
}

TEST(WireFormatTest, ErrorRoundTrip) {
  std::vector<uint8_t> frame;
  EncodeError(5, Status::InvalidArgument("k out of range"), &frame);
  ASSERT_TRUE(DecodeFrame(frame).ok());
  WireError out;
  ASSERT_TRUE(DecodeError(Payload(frame), &out).ok());
  EXPECT_EQ(out.request_id, 5u);
  EXPECT_NE(out.status, 0u);
  EXPECT_NE(out.message.find("k out of range"), std::string::npos);
}

TEST(WireFormatTest, EncodersReuseCapacity) {
  std::vector<uint8_t> frame;
  EncodeTopKRequest(SampleTopKRequest(), &frame);
  const size_t size = frame.size();
  frame.reserve(1024);
  const size_t cap = frame.capacity();
  const uint8_t* data = frame.data();
  for (int i = 0; i < 100; ++i) {
    EncodeTopKRequest(SampleTopKRequest(), &frame);
  }
  EXPECT_EQ(frame.size(), size);
  EXPECT_EQ(frame.capacity(), cap);
  EXPECT_EQ(frame.data(), data);
}

// --- Corruption sweeps ----------------------------------------------

std::vector<std::vector<uint8_t>> AllSampleFrames() {
  std::vector<std::vector<uint8_t>> frames(7);
  EncodeTopKRequest(SampleTopKRequest(), &frames[0]);
  EncodeTopKResponse(SampleTopKResponse(), &frames[1]);
  EncodeResolveRequest(SampleResolveRequest(), &frames[2]);
  EncodeResolveResponse(SampleResolveResponse(), &frames[3]);
  EncodeInfoRequest(8, &frames[4]);
  EncodeInfoResponse(SampleInfoResponse(), &frames[5]);
  EncodeError(6, Status::IOError("shard offline"), &frames[6]);
  return frames;
}

TEST(WireFormatTest, EveryBitFlipIsCaught) {
  for (const std::vector<uint8_t>& original : AllSampleFrames()) {
    std::vector<uint8_t> frame = original;
    for (size_t byte = 0; byte < frame.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        frame[byte] ^= static_cast<uint8_t>(1u << bit);
        const Result<FrameHeader> decoded = DecodeFrame(frame);
        EXPECT_FALSE(decoded.ok())
            << "bit " << bit << " of byte " << byte << " in a "
            << FrameTypeName(original[4]) << " frame flipped undetected";
        frame[byte] ^= static_cast<uint8_t>(1u << bit);
      }
    }
    ASSERT_TRUE(DecodeFrame(frame).ok()) << "sweep corrupted its input";
  }
}

TEST(WireFormatTest, EveryTruncationIsCaught) {
  for (const std::vector<uint8_t>& original : AllSampleFrames()) {
    for (size_t len = 0; len < original.size(); ++len) {
      const std::span<const uint8_t> cut(original.data(), len);
      EXPECT_FALSE(DecodeFrame(cut).ok())
          << FrameTypeName(original[4]) << " frame truncated to " << len
          << " bytes decoded successfully";
      // The header-only decoder must also never accept a short buffer.
      if (len < kFrameHeaderBytes) {
        EXPECT_FALSE(DecodeFrameHeader(cut).ok());
      }
    }
    // One extra trailing byte is as corrupt as one missing.
    std::vector<uint8_t> extended = original;
    extended.push_back(0);
    EXPECT_FALSE(DecodeFrame(extended).ok());
  }
}

// --- Hostile headers and payloads -----------------------------------

TEST(WireFormatTest, HeaderRejectsOversizedPayloadLengthBeforeAllocation) {
  std::vector<uint8_t> header(kFrameHeaderBytes, 0);
  std::memcpy(header.data(), kFrameMagic, 4);
  header[4] = static_cast<uint8_t>(FrameType::kTopKResponse);
  const uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(header.data() + 8, &huge, 4);
  // DecodeFrameHeader needs only these 16 bytes: a reader can (and the
  // rpc stream reader does) reject the length before sizing any buffer.
  EXPECT_FALSE(DecodeFrameHeader(header).ok());
}

TEST(WireFormatTest, HeaderRejectsUnknownType) {
  std::vector<uint8_t> frame;
  EncodeInfoRequest(1, &frame);
  for (const uint8_t type : {uint8_t{0}, uint8_t{8}, uint8_t{0x55}}) {
    std::vector<uint8_t> bad = frame;
    bad[4] = type;
    EXPECT_FALSE(FrameTypeKnown(type));
    EXPECT_FALSE(DecodeFrameHeader(bad).ok());
  }
}

TEST(WireFormatTest, TypedDecodersRejectCountPayloadMismatch) {
  // A response whose declared entry count disagrees with the payload
  // size must die in validation, not in a resize.
  WireTopKResponse resp = SampleTopKResponse();
  std::vector<uint8_t> frame;
  EncodeTopKResponse(resp, &frame);
  std::vector<uint8_t> payload(frame.begin() + kFrameHeaderBytes,
                               frame.end());
  uint32_t inflated = 100000;  // > kMaxWireTopK, payload unchanged
  std::memcpy(payload.data() + 12, &inflated, 4);
  WireTopKResponse out;
  EXPECT_FALSE(DecodeTopKResponse(payload, &out).ok());
  inflated = static_cast<uint32_t>(resp.entries.size()) + 1;
  std::memcpy(payload.data() + 12, &inflated, 4);
  EXPECT_FALSE(DecodeTopKResponse(payload, &out).ok());
}

TEST(WireFormatTest, TopKResponseRejectsNonBooleanPromotedFlag) {
  WireTopKResponse resp = SampleTopKResponse();
  std::vector<uint8_t> frame;
  EncodeTopKResponse(resp, &frame);
  std::vector<uint8_t> payload(frame.begin() + kFrameHeaderBytes,
                               frame.end());
  // entries start at fixed offset 24; promoted is u32 at entry offset 16.
  const uint32_t two = 2;
  std::memcpy(payload.data() + 24 + 16, &two, 4);
  WireTopKResponse out;
  EXPECT_FALSE(DecodeTopKResponse(payload, &out).ok());
}

TEST(WireFormatTest, ResponsesAtTheEntryCapStillRoundTrip) {
  WireTopKResponse resp;
  resp.request_id = 1;
  resp.entries.resize(kMaxWireTopK);
  for (uint32_t i = 0; i < kMaxWireTopK; ++i) {
    resp.entries[i] = WireTopKEntry{i, i, static_cast<double>(i), 0};
  }
  std::vector<uint8_t> frame;
  EncodeTopKResponse(resp, &frame);
  ASSERT_TRUE(DecodeFrame(frame).ok());
  WireTopKResponse out;
  ASSERT_TRUE(DecodeTopKResponse(Payload(frame), &out).ok());
  EXPECT_EQ(out.entries.size(), size_t{kMaxWireTopK});
  EXPECT_EQ(out.entries.back().global_row, kMaxWireTopK - 1);
}

}  // namespace
}  // namespace qrank
