// Shard partitioning + QRKM/QRKS persistence: the site-disjointness /
// monotone-row-map invariants the exact-merge argument needs, balance
// of the weight-based splitter, file round-trips, and the hardened
// reader sweeps (every bit flip and truncation of a saved file must
// fail to load — both formats chain their header prefix into the body
// CRC exactly so this is assertable).

#include "dist/shard_map.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "serve/score_bundle.h"

namespace qrank {
namespace {

constexpr NodeId kPages = 900;
constexpr SiteId kSites = 41;

const LoadedBundle& Bundle() {
  static const LoadedBundle b = [] {
    Rng rng(13);
    ScoreBundleSource src;
    src.quality.resize(kPages);
    src.pagerank.resize(kPages);
    src.site_ids.resize(kPages);
    for (NodeId i = 0; i < kPages; ++i) {
      src.quality[i] = rng.Pareto(1.0, 1.2);
      src.pagerank[i] = rng.Pareto(1.0, 1.2);
      src.site_ids[i] = static_cast<SiteId>(rng.UniformUint64(kSites));
    }
    src.num_sites = kSites;
    src.creator_tag = 777;
    return LoadedBundle::FromBuffer(
               ScoreBundleWriter::Create(std::move(src)).value().Serialize())
        .value();
  }();
  return b;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in) << path;
  std::vector<uint8_t> bytes(static_cast<size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out) << path;
}

TEST(ShardMapTest, CoversAllSitesDisjointlyAndBalanced) {
  for (const uint32_t shards : {1u, 2u, 3u, 5u, 8u, 13u}) {
    const Result<ShardMap> map = BuildShardMap(Bundle(), shards);
    ASSERT_TRUE(map.ok()) << map.status().ToString();
    const ShardMap& m = map.value();
    EXPECT_EQ(m.num_shards, shards);
    EXPECT_EQ(m.num_sites, kSites);
    EXPECT_EQ(m.total_pages, kPages);
    ASSERT_EQ(m.site_boundaries.size(), size_t{shards} + 1);
    EXPECT_EQ(m.site_boundaries.front(), 0u);
    EXPECT_EQ(m.site_boundaries.back(), kSites);
    uint64_t covered = 0;
    for (uint32_t s = 0; s < shards; ++s) {
      ASSERT_LE(m.site_boundaries[s], m.site_boundaries[s + 1]);
      const uint32_t pages =
          Bundle().site_offsets()[m.site_boundaries[s + 1]] -
          Bundle().site_offsets()[m.site_boundaries[s]];
      EXPECT_GT(pages, 0u) << "shard " << s << " owns zero pages";
      covered += pages;
      // Every site in the range routes back to this shard.
      for (SiteId site = m.site_boundaries[s]; site < m.site_boundaries[s + 1];
           ++site) {
        EXPECT_EQ(m.ShardForSite(site), s);
      }
    }
    EXPECT_EQ(covered, kPages) << "shards must partition all pages";
  }
}

TEST(ShardMapTest, RejectsImpossibleShardCounts) {
  EXPECT_FALSE(BuildShardMap(Bundle(), 0).ok());
  EXPECT_FALSE(BuildShardMap(Bundle(), kSites + 1).ok());
  EXPECT_FALSE(BuildShardMap(Bundle(), kMaxShards + 1).ok());
}

TEST(ShardMapTest, RejectsShardThatWouldOwnZeroPages) {
  // 6 sites declared, pages only on sites 0..2: splitting into 5
  // contiguous site ranges strands at least two shards on empty sites
  // (only 3 ranges can contain a nonempty site), so the builder must
  // refuse rather than emit a shard no query could ever hit.
  ScoreBundleSource src;
  for (NodeId i = 0; i < 30; ++i) {
    src.quality.push_back(1.0 + i);
    src.pagerank.push_back(1.0);
    src.site_ids.push_back(static_cast<SiteId>(i % 3));
  }
  src.num_sites = 6;
  const LoadedBundle bundle =
      LoadedBundle::FromBuffer(
          ScoreBundleWriter::Create(std::move(src)).value().Serialize())
          .value();
  EXPECT_TRUE(BuildShardMap(bundle, 1).ok());
  EXPECT_FALSE(BuildShardMap(bundle, 5).ok());
}

TEST(ShardMapTest, MapFileRoundTrip) {
  const ShardMap map = BuildShardMap(Bundle(), 5).value();
  const std::string path = TempPath("roundtrip.qrkm");
  ASSERT_TRUE(SaveShardMap(map, path).ok());
  const Result<ShardMap> loaded = LoadShardMap(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_shards, map.num_shards);
  EXPECT_EQ(loaded.value().num_sites, map.num_sites);
  EXPECT_EQ(loaded.value().total_pages, map.total_pages);
  EXPECT_EQ(loaded.value().site_boundaries, map.site_boundaries);
  std::remove(path.c_str());
}

TEST(ShardMapTest, MetaFileRoundTrip) {
  ShardMeta meta;
  meta.shard_index = 2;
  meta.num_shards = 4;
  meta.num_sites = kSites;
  meta.total_pages = kPages;
  meta.global_rows = {0, 5, 6, 80, 899};
  const std::string path = TempPath("roundtrip.qrks");
  ASSERT_TRUE(SaveShardMeta(meta, path).ok());
  const Result<ShardMeta> loaded = LoadShardMeta(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().shard_index, meta.shard_index);
  EXPECT_EQ(loaded.value().num_shards, meta.num_shards);
  EXPECT_EQ(loaded.value().num_sites, meta.num_sites);
  EXPECT_EQ(loaded.value().total_pages, meta.total_pages);
  EXPECT_EQ(loaded.value().global_rows, meta.global_rows);
  std::remove(path.c_str());
}

TEST(ShardMapTest, MetaRejectsNonAscendingRows) {
  ShardMeta meta;
  meta.shard_index = 0;
  meta.num_shards = 1;
  meta.num_sites = 3;
  meta.total_pages = 100;
  meta.global_rows = {4, 4, 9};  // duplicate
  const std::string path = TempPath("dup_rows.qrks");
  ASSERT_TRUE(SaveShardMeta(meta, path).ok());
  EXPECT_FALSE(LoadShardMeta(path).ok());
  meta.global_rows = {4, 100};  // out of range
  ASSERT_TRUE(SaveShardMeta(meta, path).ok());
  EXPECT_FALSE(LoadShardMeta(path).ok());
  std::remove(path.c_str());
}

TEST(ShardMapTest, EveryMapFileBitFlipIsCaught) {
  const ShardMap map = BuildShardMap(Bundle(), 4).value();
  const std::string path = TempPath("flip.qrkm");
  const std::string mutated = TempPath("flip_mut.qrkm");
  ASSERT_TRUE(SaveShardMap(map, path).ok());
  std::vector<uint8_t> bytes = ReadAll(path);
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes[byte] ^= static_cast<uint8_t>(1u << bit);
      WriteAll(mutated, bytes);
      EXPECT_FALSE(LoadShardMap(mutated).ok())
          << "bit " << bit << " of byte " << byte << " flipped undetected";
      bytes[byte] ^= static_cast<uint8_t>(1u << bit);
    }
  }
  std::remove(path.c_str());
  std::remove(mutated.c_str());
}

TEST(ShardMapTest, EveryMetaFileBitFlipAndTruncationIsCaught) {
  ShardMeta meta;
  meta.shard_index = 1;
  meta.num_shards = 3;
  meta.num_sites = 9;
  meta.total_pages = 500;
  meta.global_rows = {1, 2, 3, 250, 499};
  const std::string path = TempPath("flip.qrks");
  const std::string mutated = TempPath("flip_mut.qrks");
  ASSERT_TRUE(SaveShardMeta(meta, path).ok());
  const std::vector<uint8_t> original = ReadAll(path);
  std::vector<uint8_t> bytes = original;
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes[byte] ^= static_cast<uint8_t>(1u << bit);
      WriteAll(mutated, bytes);
      EXPECT_FALSE(LoadShardMeta(mutated).ok())
          << "bit " << bit << " of byte " << byte << " flipped undetected";
      bytes[byte] ^= static_cast<uint8_t>(1u << bit);
    }
  }
  for (size_t len = 0; len < original.size(); ++len) {
    WriteAll(mutated,
             std::vector<uint8_t>(original.begin(), original.begin() + len));
    EXPECT_FALSE(LoadShardMeta(mutated).ok())
        << "truncation to " << len << " bytes loaded successfully";
  }
  std::remove(path.c_str());
  std::remove(mutated.c_str());
}

TEST(ShardMapTest, SplitPartitionsRowsWithMonotoneLocalToGlobalMap) {
  const std::string out_dir = TempPath("split_out");
  ASSERT_TRUE(::mkdir(out_dir.c_str(), 0755) == 0 || errno == EEXIST);
  const Result<ShardSplit> split = SplitBundleBySite(Bundle(), 4, out_dir);
  ASSERT_TRUE(split.ok()) << split.status().ToString();

  std::vector<bool> row_seen(kPages, false);
  for (uint32_t s = 0; s < 4; ++s) {
    const Result<ShardMeta> meta = LoadShardMeta(split.value().meta_paths[s]);
    ASSERT_TRUE(meta.ok()) << meta.status().ToString();
    const Result<LoadedBundle> shard =
        LoadedBundle::Load(split.value().bundle_paths[s], /*prefer_mmap=*/
                           false);
    ASSERT_TRUE(shard.ok()) << shard.status().ToString();
    ASSERT_EQ(shard.value().num_pages(), meta.value().global_rows.size());
    // Shard bundles keep the global site universe.
    EXPECT_EQ(shard.value().num_sites(), kSites);
    EXPECT_EQ(shard.value().creator_tag(), Bundle().creator_tag());
    const SiteId site_lo = split.value().map.site_boundaries[s];
    const SiteId site_hi = split.value().map.site_boundaries[s + 1];
    uint32_t prev_row = 0;
    for (size_t local = 0; local < meta.value().global_rows.size(); ++local) {
      const uint32_t global = meta.value().global_rows[local];
      if (local > 0) {
        EXPECT_GT(global, prev_row) << "row map not monotone";
      }
      prev_row = global;
      EXPECT_FALSE(row_seen[global]) << "row " << global << " in two shards";
      row_seen[global] = true;
      // Shard-local scores and metadata are the global row's verbatim.
      EXPECT_EQ(shard.value().quality()[local], Bundle().quality()[global]);
      EXPECT_EQ(shard.value().pagerank()[local], Bundle().pagerank()[global]);
      EXPECT_EQ(shard.value().page_ids()[local], Bundle().page_ids()[global]);
      EXPECT_EQ(shard.value().site_ids()[local], Bundle().site_ids()[global]);
      EXPECT_GE(shard.value().site_ids()[local], site_lo);
      EXPECT_LT(shard.value().site_ids()[local], site_hi);
    }
  }
  for (NodeId r = 0; r < kPages; ++r) {
    EXPECT_TRUE(row_seen[r]) << "row " << r << " lost by the split";
  }

  // Determinism: a second split writes byte-identical files.
  const std::string out_dir2 = TempPath("split_out2");
  ASSERT_TRUE(::mkdir(out_dir2.c_str(), 0755) == 0 || errno == EEXIST);
  const Result<ShardSplit> again = SplitBundleBySite(Bundle(), 4, out_dir2);
  ASSERT_TRUE(again.ok());
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(ReadAll(split.value().bundle_paths[s]),
              ReadAll(again.value().bundle_paths[s]));
    EXPECT_EQ(ReadAll(split.value().meta_paths[s]),
              ReadAll(again.value().meta_paths[s]));
  }
  EXPECT_EQ(ReadAll(split.value().map_path),
            ReadAll(again.value().map_path));
}

}  // namespace
}  // namespace qrank
