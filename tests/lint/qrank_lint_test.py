#!/usr/bin/env python3
"""Self-test for tools/qrank_lint.py: exact-findings assertions.

Synthesizes a compile_commands.json over tests/lint_fixtures/ (they are
never part of the CMake build) and asserts the exact (file, line, rule)
multiset the linter must report — locations are computed by searching
the fixture sources for their distinctive lines, so the expectations are
exact without being brittle to comment edits above them.

Also asserts the contract edges:
  * exit code is 1 with findings, 0 on a clean subset;
  * the hot-alloc transitive walk crosses into an included header
    (alloc_helper.h) — the case a per-file grep cannot see;
  * suppression comments remove findings AND stop the transitive walk;
  * the reader-guard dead-check fixture (`true ||` short-circuiting
    the size check away) is CAUGHT — the rule's basic-reachability
    extension sees through constant short-circuits;
  * --report writes the same findings to a file.

Usage: qrank_lint_test.py <repo_root>
"""

import json
import os
import re
import subprocess
import sys
import tempfile

FINDING_RE = re.compile(r"^(.*?):(\d+): error: \[([a-z-]+)\]")


def line_of(root, rel, needle, occurrence=1):
    path = os.path.join(root, rel)
    hits = []
    with open(path, "r", encoding="utf-8") as f:
        for i, line in enumerate(f, 1):
            if needle in line:
                hits.append(i)
    if len(hits) < occurrence:
        raise AssertionError("%s: %r not found (x%d)" % (rel, needle,
                                                         occurrence))
    return hits[occurrence - 1]


def run_lint(root, db_entries, extra_args=()):
    tmpdir = tempfile.mkdtemp(prefix="qrank_lint_test_")
    db_path = os.path.join(tmpdir, "compile_commands.json")
    with open(db_path, "w", encoding="utf-8") as f:
        json.dump(db_entries, f)
    proc = subprocess.run(
        [sys.executable, os.path.join(root, "tools", "qrank_lint.py"),
         "-p", db_path, "--select", "lint_fixtures", "--root", root,
         *extra_args],
        capture_output=True, text=True)
    findings = set()
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.add((m.group(1), int(m.group(2)), m.group(3)))
    return proc, findings


def main():
    if len(sys.argv) != 2:
        print("usage: qrank_lint_test.py <repo_root>", file=sys.stderr)
        return 2
    root = os.path.realpath(sys.argv[1])
    fx = os.path.join(root, "tests", "lint_fixtures")

    def entry(name, flags=""):
        return {"directory": fx,
                "command": "c++ -std=c++20 %s -c %s" % (flags, name),
                "file": os.path.join(fx, name)}

    db = [
        entry("hot_alloc_bad.cc"),
        entry("hot_alloc_ok.cc"),
        entry("scalar_tu_bad.cc", "-mavx2"),
        entry("scalar_tu_ok.cc"),
        entry("reader_guard_bad.cc"),
        entry("reader_guard_ok.cc"),
        entry("reader_guard_known_miss.cc"),
        entry("no_assert_bad.cc"),
        entry("no_assert_ok.cc"),
        entry("naked_mutex_bad.cc"),
        entry("naked_mutex_ok.cc"),
    ]

    F = "tests/lint_fixtures/"
    expected = {
        # hot-alloc: direct, transitive-in-file, transitive-into-header.
        (F + "hot_alloc_bad.cc",
         line_of(root, F + "hot_alloc_bad.cc", "v->push_back(1);"),
         "hot-alloc"),
        (F + "hot_alloc_bad.cc",
         line_of(root, F + "hot_alloc_bad.cc", "v->push_back(7);"),
         "hot-alloc"),
        (F + "alloc_helper.h",
         line_of(root, F + "alloc_helper.h", "return new int[n];"),
         "hot-alloc"),
        # scalar-tu: only the -mavx2 TU.
        (F + "scalar_tu_bad.cc",
         line_of(root, F + "scalar_tu_bad.cc",
                 "QRANK_SCALAR_TU_ONLY double ScalarOracleSweep"),
         "scalar-tu"),
        # reader-guard: unguarded reinterpret_cast in the bad fixture,
        # and the dead-check fixture whose only size check is behind a
        # constant `true ||` short-circuit; the ok fixture is clean.
        (F + "reader_guard_bad.cc",
         line_of(root, F + "reader_guard_bad.cc", "reinterpret_cast"),
         "reader-guard"),
        (F + "reader_guard_known_miss.cc",
         line_of(root, F + "reader_guard_known_miss.cc",
                 "*reinterpret_cast<const uint32_t*>"),
         "reader-guard"),
        # no-assert: both raw asserts, not the static_assert.
        (F + "no_assert_bad.cc",
         line_of(root, F + "no_assert_bad.cc", "assert(lo <= hi);"),
         "no-assert"),
        (F + "no_assert_bad.cc",
         line_of(root, F + "no_assert_bad.cc", "assert(i >= 0 && i < n);"),
         "no-assert"),
        # naked-mutex: the member, plus lock_guard AND mutex on the use
        # line (two findings, one line).
        (F + "naked_mutex_bad.cc",
         line_of(root, F + "naked_mutex_bad.cc", "std::mutex mu_;"),
         "naked-mutex"),
        (F + "naked_mutex_bad.cc",
         line_of(root, F + "naked_mutex_bad.cc",
                 "std::lock_guard<std::mutex> lock(mu_);"),
         "naked-mutex"),
    }

    proc, findings = run_lint(root, db)
    if proc.returncode != 1:
        print("FAIL: expected exit 1 with findings, got %d\n%s%s" %
              (proc.returncode, proc.stdout, proc.stderr), file=sys.stderr)
        return 1
    if findings != expected:
        print("FAIL: findings mismatch", file=sys.stderr)
        for f in sorted(expected - findings):
            print("  missing:    %s:%d [%s]" % f, file=sys.stderr)
        for f in sorted(findings - expected):
            print("  unexpected: %s:%d [%s]" % f, file=sys.stderr)
        print(proc.stdout, file=sys.stderr)
        return 1

    # Clean subset must exit 0 (negative fixtures truly negative).
    clean_db = [e for e in db if "_ok" in e["file"]]
    proc2, findings2 = run_lint(root, clean_db)
    if proc2.returncode != 0 or findings2:
        print("FAIL: negative fixtures produced findings:\n%s" %
              proc2.stdout, file=sys.stderr)
        return 1

    # --report mirrors stdout findings.
    report = os.path.join(tempfile.mkdtemp(prefix="qrank_lint_rep_"),
                          "lint.txt")
    proc3, _ = run_lint(root, db, extra_args=("--report", report))
    with open(report, "r", encoding="utf-8") as f:
        rep_lines = {tuple([m.group(1), int(m.group(2)), m.group(3)])
                     for m in (FINDING_RE.match(l) for l in f)
                     if m}
    if rep_lines != expected:
        print("FAIL: --report content differs from stdout findings",
              file=sys.stderr)
        return 1

    print("PASS: %d exact findings, negatives clean, dead-check "
          "caught, report matches" % len(expected))
    return 0


if __name__ == "__main__":
    sys.exit(main())
