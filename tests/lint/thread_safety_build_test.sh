#!/bin/sh
# Compile-fixture test for the thread-safety annotation layer.
#
#   1. ts_good.cc (correct lock discipline) must COMPILE under
#      -Wthread-safety -Werror=thread-safety.
#   2. ts_bad.cc (same code, lock removed) must FAIL — proving the
#      annotations break the build when discipline is violated, which is
#      the whole point of QRANK_THREAD_SAFETY=ON.
#
# Requires clang (the analysis does not exist in GCC). Exits 77 (ctest
# SKIP_RETURN_CODE) when no clang is on PATH — the containerized local
# build is GCC-only; CI's static-analysis job provides clang and runs
# this for real.
#
# Usage: thread_safety_build_test.sh <repo_root>
set -u

ROOT="${1:?usage: thread_safety_build_test.sh <repo_root>}"
FIXTURES="$ROOT/tests/lint_fixtures"

CLANG=""
for c in clang++ clang++-20 clang++-19 clang++-18 clang++-17 clang++-16 \
         clang++-15 clang++-14; do
  if command -v "$c" >/dev/null 2>&1; then
    CLANG="$c"
    break
  fi
done
if [ -z "$CLANG" ]; then
  echo "SKIP: no clang++ on PATH; -Wthread-safety needs clang" >&2
  exit 77
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

FLAGS="-std=c++20 -fsyntax-only -I$ROOT/src -Wthread-safety -Werror=thread-safety"

echo "== ts_good.cc must compile =="
if ! "$CLANG" $FLAGS "$FIXTURES/ts_good.cc" 2>"$TMP/good.err"; then
  echo "FAIL: ts_good.cc rejected under -Werror=thread-safety:" >&2
  cat "$TMP/good.err" >&2
  exit 1
fi

echo "== ts_bad.cc must NOT compile =="
if "$CLANG" $FLAGS "$FIXTURES/ts_bad.cc" 2>"$TMP/bad.err"; then
  echo "FAIL: ts_bad.cc compiled — removing the lock no longer breaks" \
       "the build; the annotation layer is decoration" >&2
  exit 1
fi
if ! grep -q "thread-safety" "$TMP/bad.err"; then
  echo "FAIL: ts_bad.cc failed for a reason other than thread-safety:" >&2
  cat "$TMP/bad.err" >&2
  exit 1
fi

echo "PASS: annotations compile clean and catch the removed lock"
exit 0
