#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace qrank {
namespace {

TEST(ThreadPoolTest, StartupAndShutdownAreClean) {
  for (unsigned n : {0u, 1u, 4u}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), n);
  }  // destructor joins with no submitted work
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  std::thread::id submitter = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Submit([&] { ran_on = std::this_thread::get_id(); }).get();
  EXPECT_EQ(ran_on, submitter);
}

TEST(ThreadPoolTest, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  std::mutex mu;
  std::set<std::thread::id> ids;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(ids.size(), 1u);
  EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool survives a throwing task.
  std::atomic<bool> ran{false};
  pool.Submit([&] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Post([&] { counter.fetch_add(1); });
    }
  }  // ~ThreadPool must run all 20, not drop the queue
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1u);
}

}  // namespace
}  // namespace qrank
