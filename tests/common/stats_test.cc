#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace qrank {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, NegativeValues) {
  RunningStat s;
  s.Add(-5.0);
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(QuantileTest, RejectsEmptyAndBadQ) {
  EXPECT_FALSE(Quantile({}, 0.5).ok());
  EXPECT_FALSE(Quantile({1.0}, -0.1).ok());
  EXPECT_FALSE(Quantile({1.0}, 1.1).ok());
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v = {3.0, 1.0, 2.0, 5.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5).value(), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0).value(), 5.0);
}

TEST(QuantileTest, InterpolatesBetweenOrderStats) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25).value(), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5).value(), 5.0);
}

TEST(MeanTest, Basic) {
  EXPECT_FALSE(Mean({}).ok());
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}).value(), 2.0);
}

TEST(HistogramTest, BinsAndOverflowMatchFigure5Shape) {
  Histogram h(10, 0.0, 1.0);
  EXPECT_EQ(h.num_bins(), 10u);
  h.Add(0.05);   // bin 0
  h.Add(0.15);   // bin 1
  h.Add(0.95);   // bin 9
  h.Add(1.0);    // overflow ("larger than 1 goes to the last bin")
  h.Add(2.7);    // overflow
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[9], 1u);
  EXPECT_EQ(h.counts()[10], 2u);
}

TEST(HistogramTest, ValuesBelowRangeClampIntoFirstBin) {
  Histogram h(4, 0.0, 1.0);
  h.Add(-0.5);
  EXPECT_EQ(h.counts()[0], 1u);
}

TEST(HistogramTest, FractionAndEdges) {
  Histogram h(2, 0.0, 1.0);
  h.Add(0.25);
  h.Add(0.25);
  h.Add(0.75);
  h.Add(5.0);
  EXPECT_DOUBLE_EQ(h.Fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.Fraction(1), 0.25);
  EXPECT_DOUBLE_EQ(h.Fraction(2), 0.25);
  EXPECT_DOUBLE_EQ(h.BinLower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BinUpper(0), 0.5);
  EXPECT_DOUBLE_EQ(h.BinLower(2), 1.0);
  EXPECT_TRUE(std::isinf(h.BinUpper(2)));
}

TEST(HistogramTest, CumulativeFraction) {
  Histogram h(10, 0.0, 1.0);
  for (double v : {0.05, 0.05, 0.15, 0.55, 2.0}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.CumulativeFractionBelow(0.1), 0.4);
  EXPECT_DOUBLE_EQ(h.CumulativeFractionBelow(0.2), 0.6);
  EXPECT_DOUBLE_EQ(h.CumulativeFractionBelow(1.0), 0.8);
}

TEST(HistogramTest, EmptyHistogramRenders) {
  Histogram h(3, 0.0, 1.0);
  std::string s = h.ToAscii("empty");
  EXPECT_NE(s.find("empty"), std::string::npos);
  EXPECT_NE(s.find("n=0"), std::string::npos);
}

TEST(HistogramTest, AsciiShowsProportionalBars) {
  Histogram h(2, 0.0, 1.0);
  for (int i = 0; i < 9; ++i) h.Add(0.1);
  h.Add(0.7);
  std::string s = h.ToAscii("bars", 10);
  // The dominant bin gets the full bar width.
  EXPECT_NE(s.find("##########"), std::string::npos);
}

TEST(FractionalRanksTest, SimpleOrdering) {
  std::vector<double> ranks = FractionalRanks({30.0, 10.0, 20.0});
  EXPECT_DOUBLE_EQ(ranks[0], 3.0);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(FractionalRanksTest, TiesGetAverageRank) {
  std::vector<double> ranks = FractionalRanks({1.0, 2.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(CorrelationTest, PerfectMonotoneGivesOne) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> b = {10.0, 20.0, 25.0, 100.0};  // monotone, nonlinear
  EXPECT_NEAR(SpearmanCorrelation(a, b).value(), 1.0, 1e-12);
  EXPECT_NEAR(KendallTau(a, b).value(), 1.0, 1e-12);
}

TEST(CorrelationTest, PerfectAntitoneGivesMinusOne) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> b = {4.0, 3.0, 2.0, 1.0};
  EXPECT_NEAR(SpearmanCorrelation(a, b).value(), -1.0, 1e-12);
  EXPECT_NEAR(KendallTau(a, b).value(), -1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(a, b).value(), -1.0, 1e-12);
}

TEST(CorrelationTest, RejectsMismatchedAndTiny) {
  EXPECT_FALSE(SpearmanCorrelation({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(SpearmanCorrelation({1.0}, {2.0}).ok());
  EXPECT_FALSE(KendallTau({1.0, 2.0}, {1.0}).ok());
  EXPECT_FALSE(PearsonCorrelation({}, {}).ok());
}

TEST(CorrelationTest, ConstantInputFails) {
  std::vector<double> a = {1.0, 1.0, 1.0};
  std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_EQ(SpearmanCorrelation(a, b).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(KendallTau(a, b).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CorrelationTest, KendallHandlesPartialTies) {
  std::vector<double> a = {1.0, 2.0, 2.0, 3.0};
  std::vector<double> b = {1.0, 2.0, 3.0, 4.0};
  Result<double> tau = KendallTau(a, b);
  ASSERT_TRUE(tau.ok());
  EXPECT_GT(tau.value(), 0.8);
  EXPECT_LE(tau.value(), 1.0);
}

TEST(PowerLawFitTest, RecoversExactExponent) {
  // y = 5 * x^-2.5
  std::vector<double> x, y;
  for (double xi : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    x.push_back(xi);
    y.push_back(5.0 * std::pow(xi, -2.5));
  }
  Result<PowerLawFit> fit = FitPowerLaw(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->exponent, -2.5, 1e-9);
  EXPECT_NEAR(fit->intercept, std::log(5.0), 1e-9);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-9);
  EXPECT_EQ(fit->points_used, 5u);
}

TEST(PowerLawFitTest, IgnoresNonPositivePoints) {
  std::vector<double> x = {0.0, -1.0, 1.0, 2.0};
  std::vector<double> y = {5.0, 5.0, 8.0, 2.0};
  Result<PowerLawFit> fit = FitPowerLaw(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit->points_used, 2u);
}

TEST(PowerLawFitTest, RejectsDegenerateInput) {
  EXPECT_FALSE(FitPowerLaw({1.0}, {1.0}).ok());
  EXPECT_FALSE(FitPowerLaw({1.0, 2.0}, {1.0}).ok());
  // All x equal -> degenerate.
  EXPECT_EQ(FitPowerLaw({2.0, 2.0}, {1.0, 3.0}).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace qrank
