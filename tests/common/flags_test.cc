#include "common/flags.h"

#include <gtest/gtest.h>

namespace qrank {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "binary");
  return FlagParser(static_cast<int>(args.size()), args.data());
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser p = Parse({"--seed=42", "--rate=0.5", "--name=hello"});
  EXPECT_TRUE(p.status().ok());
  EXPECT_EQ(p.GetInt("seed", 0), 42);
  EXPECT_DOUBLE_EQ(p.GetDouble("rate", 0.0), 0.5);
  EXPECT_EQ(p.GetString("name", ""), "hello");
}

TEST(FlagParserTest, SpaceSyntax) {
  FlagParser p = Parse({"--seed", "7", "--verbose"});
  EXPECT_EQ(p.GetInt("seed", 0), 7);
  EXPECT_TRUE(p.GetBool("verbose", false));
}

TEST(FlagParserTest, FallbacksWhenAbsent) {
  FlagParser p = Parse({});
  EXPECT_EQ(p.GetInt("seed", 99), 99);
  EXPECT_DOUBLE_EQ(p.GetDouble("rate", 1.5), 1.5);
  EXPECT_EQ(p.GetString("name", "dflt"), "dflt");
  EXPECT_FALSE(p.GetBool("verbose", false));
  EXPECT_FALSE(p.Has("seed"));
}

TEST(FlagParserTest, TypeErrorsAreSticky) {
  FlagParser p = Parse({"--seed=abc"});
  EXPECT_EQ(p.GetInt("seed", 5), 5);
  EXPECT_FALSE(p.status().ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, BadDoubleAndBool) {
  FlagParser p = Parse({"--rate=fast"});
  EXPECT_DOUBLE_EQ(p.GetDouble("rate", 2.0), 2.0);
  EXPECT_FALSE(p.status().ok());

  FlagParser q = Parse({"--flag=banana"});
  EXPECT_TRUE(q.GetBool("flag", true));
  EXPECT_FALSE(q.status().ok());
}

TEST(FlagParserTest, BoolAccepts01YesNo) {
  FlagParser p = Parse({"--a=1", "--b=0", "--c=yes", "--d=no"});
  EXPECT_TRUE(p.GetBool("a", false));
  EXPECT_FALSE(p.GetBool("b", true));
  EXPECT_TRUE(p.GetBool("c", false));
  EXPECT_FALSE(p.GetBool("d", true));
}

TEST(FlagParserTest, PositionalArgumentsCollected) {
  FlagParser p = Parse({"input.txt", "--seed=1", "output.txt"});
  EXPECT_EQ(p.positional(),
            (std::vector<std::string>{"input.txt", "output.txt"}));
}

TEST(FlagParserTest, FlagFollowedByFlagIsBoolean) {
  FlagParser p = Parse({"--verbose", "--seed", "3"});
  EXPECT_TRUE(p.GetBool("verbose", false));
  EXPECT_EQ(p.GetInt("seed", 0), 3);
}

TEST(FlagParserTest, MalformedFlagSetsError) {
  FlagParser p = Parse({"---x=1"});
  EXPECT_FALSE(p.status().ok());
}

TEST(FlagParserTest, UnusedFlagsDetected) {
  FlagParser p = Parse({"--seed=1", "--typo=2"});
  EXPECT_EQ(p.GetInt("seed", 0), 1);
  std::vector<std::string> unused = p.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

}  // namespace
}  // namespace qrank
