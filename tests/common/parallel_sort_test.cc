// ParallelSort contract tests: the sorted output must be BIT-IDENTICAL
// to std::sort under the same (strict total order) comparator for every
// thread count and grain — the property the bundle writer and the
// degree-ordering builder rely on.

#include "common/parallel_sort.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace qrank {
namespace {

std::vector<uint64_t> RandomValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> v(n);
  for (uint64_t& x : v) x = rng.NextUint64();
  return v;
}

TEST(CoRankTest, SplitsMergeAtEveryOutputPosition) {
  // Two interleaved runs; for every k, the co-rank split must reproduce
  // the first k outputs of a full merge.
  const std::vector<int> a = {1, 4, 4, 7, 9};
  const std::vector<int> b = {2, 3, 4, 8};
  // Strict total order over distinct elements only — disambiguate the
  // equal 4s by address-free value pairs instead: use (value, side, idx)
  // encoded into ints so no two compare equal.
  std::vector<int> ea, eb;
  for (size_t i = 0; i < a.size(); ++i) ea.push_back(a[i] * 100 + static_cast<int>(i));
  for (size_t i = 0; i < b.size(); ++i) eb.push_back(b[i] * 100 + 50 + static_cast<int>(i));
  auto less = [](int x, int y) { return x < y; };
  std::vector<int> merged(ea.size() + eb.size());
  std::merge(ea.begin(), ea.end(), eb.begin(), eb.end(), merged.begin(), less);
  for (size_t k = 0; k <= merged.size(); ++k) {
    const size_t ia = sort_internal::CoRank(ea.data(), ea.size(), eb.data(),
                                            eb.size(), k, less);
    const size_t ib = k - ia;
    ASSERT_LE(ia, ea.size());
    ASSERT_LE(ib, eb.size());
    // The first k merge outputs are exactly ea[0,ia) ∪ eb[0,ib).
    std::vector<int> head(merged.begin(), merged.begin() + k);
    std::vector<int> expect(ea.begin(), ea.begin() + ia);
    expect.insert(expect.end(), eb.begin(), eb.begin() + ib);
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(head, expect) << "k = " << k;
  }
}

TEST(CoRankTest, DegenerateRuns) {
  const std::vector<int> a = {1, 2, 3};
  const std::vector<int> empty;
  auto less = [](int x, int y) { return x < y; };
  EXPECT_EQ(sort_internal::CoRank(a.data(), a.size(), empty.data(), 0, 2, less),
            2u);
  EXPECT_EQ(sort_internal::CoRank(empty.data(), 0, a.data(), a.size(), 2, less),
            0u);
  EXPECT_EQ(sort_internal::CoRank(a.data(), a.size(), a.data(), 0, 0, less),
            0u);
}

TEST(ParallelSortTest, BitIdenticalToSerialAcrossThreadCounts) {
  for (const size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{1000},
                         size_t{4097}, size_t{50000}}) {
    const std::vector<uint64_t> input = RandomValues(n, 0x5eed + n);
    std::vector<uint64_t> expect = input;
    std::sort(expect.begin(), expect.end());
    for (const int threads : {1, 2, 4, 8}) {
      for (const size_t grain : {size_t{64}, size_t{1024}, size_t{16384}}) {
        std::vector<uint64_t> v = input;
        ParallelOptions opts;
        opts.num_threads = threads;
        opts.grain = grain;
        ParallelSort(
            &v, [](uint64_t a, uint64_t b) { return a < b; }, opts);
        ASSERT_EQ(v, expect)
            << "n=" << n << " threads=" << threads << " grain=" << grain;
      }
    }
  }
}

TEST(ParallelSortTest, IndexSortWithTieBreakMatchesSerial) {
  // The bundle-writer shape: sort row indices by a key vector with
  // heavy ties, broken by index. 64 distinct keys over 20000 rows.
  const size_t n = 20000;
  Rng rng(99);
  std::vector<double> key(n);
  for (double& k : key) k = static_cast<double>(rng.NextUint64() % 64);
  std::vector<uint32_t> expect(n);
  for (uint32_t i = 0; i < n; ++i) expect[i] = i;
  auto less = [&key](uint32_t a, uint32_t b) {
    if (key[a] != key[b]) return key[a] > key[b];
    return a < b;
  };
  std::sort(expect.begin(), expect.end(), less);
  for (const int threads : {1, 2, 4, 8}) {
    std::vector<uint32_t> v(n);
    for (uint32_t i = 0; i < n; ++i) v[i] = i;
    ParallelOptions opts;
    opts.num_threads = threads;
    opts.grain = 512;
    ParallelSort(&v, less, opts);
    ASSERT_EQ(v, expect) << "threads=" << threads;
  }
}

TEST(ParallelSortTest, AlreadySortedAndReversedInputs) {
  const size_t n = 10000;
  std::vector<uint64_t> asc(n), desc(n);
  for (size_t i = 0; i < n; ++i) {
    asc[i] = i;
    desc[i] = n - i;
  }
  for (std::vector<uint64_t> input : {asc, desc}) {
    std::vector<uint64_t> expect = input;
    std::sort(expect.begin(), expect.end());
    ParallelOptions opts;
    opts.num_threads = 4;
    opts.grain = 777;  // non-power-of-two grain exercises ragged blocks
    ParallelSort(
        &input, [](uint64_t a, uint64_t b) { return a < b; }, opts);
    EXPECT_EQ(input, expect);
  }
}

TEST(ParallelSortTest, OddRunCountExercisesPassThrough) {
  // 5 blocks -> levels with odd run counts, covering the copy-through
  // chunk path.
  const size_t n = 5 * 1000;
  const std::vector<uint64_t> input = RandomValues(n, 1234);
  std::vector<uint64_t> expect = input;
  std::sort(expect.begin(), expect.end());
  std::vector<uint64_t> v = input;
  ParallelOptions opts;
  opts.num_threads = 3;
  opts.grain = 1000;
  ParallelSort(&v, [](uint64_t a, uint64_t b) { return a < b; }, opts);
  EXPECT_EQ(v, expect);
}

}  // namespace
}  // namespace qrank
