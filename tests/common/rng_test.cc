#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace qrank {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  uint64_t x = rng.NextUint64();
  uint64_t y = rng.NextUint64();
  EXPECT_NE(x, y);  // not stuck
}

TEST(RngTest, UniformUint64RespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformUint64(bound), bound);
    }
  }
}

TEST(RngTest, UniformUint64CoversSupport) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformUint64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  // Degenerate single-point range.
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(19);
  int hits = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(23);
  const int kN = 100000;
  double sum = 0.0, ss = 0.0;
  for (int i = 0; i < kN; ++i) {
    double v = rng.Normal(2.0, 3.0);
    sum += v;
    ss += v * v;
  }
  double mean = sum / kN;
  double var = ss / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.25);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(29);
  const int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    double v = rng.Exponential(2.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, ParetoRespectsMinimumAndTail) {
  Rng rng(31);
  const int kN = 50000;
  int above2 = 0;
  for (int i = 0; i < kN; ++i) {
    double v = rng.Pareto(1.0, 2.0);
    EXPECT_GE(v, 1.0);
    if (v > 2.0) ++above2;
  }
  // P(X > 2) = (1/2)^2 = 0.25.
  EXPECT_NEAR(static_cast<double>(above2) / kN, 0.25, 0.02);
}

TEST(RngTest, BetaStaysInUnitIntervalWithCorrectMean) {
  Rng rng(37);
  const int kN = 50000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    double v = rng.Beta(2.0, 5.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 2.0 / 7.0, 0.01);
}

TEST(RngTest, GammaMeanMatches) {
  Rng rng(41);
  const int kN = 50000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.Gamma(3.0, 2.0);
  EXPECT_NEAR(sum / kN, 6.0, 0.15);
}

TEST(RngTest, GammaShapeBelowOne) {
  Rng rng(43);
  const int kN = 50000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    double v = rng.Gamma(0.5, 1.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.05);
}

class RngPoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonTest, MeanAndVarianceMatchLambda) {
  const double lambda = GetParam();
  Rng rng(47);
  const int kN = 50000;
  double sum = 0.0, ss = 0.0;
  for (int i = 0; i < kN; ++i) {
    double v = static_cast<double>(rng.Poisson(lambda));
    sum += v;
    ss += v * v;
  }
  double mean = sum / kN;
  double var = ss / kN - mean * mean;
  double tol = std::max(0.05, 4.0 * std::sqrt(lambda / kN) + 0.02 * lambda);
  EXPECT_NEAR(mean, lambda, tol);
  EXPECT_NEAR(var, lambda, std::max(0.1, 0.1 * lambda));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, RngPoissonTest,
                         ::testing::Values(0.1, 1.0, 5.0, 29.0, 50.0, 400.0));

TEST(RngTest, PoissonZeroLambdaIsZero) {
  Rng rng(53);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Poisson(0.0), 0u);
}

TEST(RngTest, DiscreteFollowsWeights) {
  Rng rng(59);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.75, 0.02);
}

TEST(RngTest, DiscreteAllZeroReturnsZero) {
  Rng rng(61);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.Discrete(weights), 0u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(67);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(99), parent2(99);
  Rng child1 = parent1.Split();
  Rng child2 = parent2.Split();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(child1.NextUint64(), child2.NextUint64());
  }
  // Child differs from a continuation of the parent.
  Rng parent3(99);
  Rng child3 = parent3.Split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child3.NextUint64() == parent3.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(AliasTableTest, MatchesWeights) {
  Rng rng(71);
  std::vector<double> weights = {5.0, 1.0, 0.0, 4.0};
  AliasTable table(weights);
  ASSERT_EQ(table.size(), 4u);
  std::vector<int> counts(4, 0);
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[table.Sample(&rng)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / kN, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[3]) / kN, 0.4, 0.01);
}

TEST(AliasTableTest, AllZeroWeightsFallBackToUniform) {
  Rng rng(73);
  AliasTable table(std::vector<double>{0.0, 0.0, 0.0});
  std::vector<int> counts(3, 0);
  const int kN = 30000;
  for (int i = 0; i < kN; ++i) ++counts[table.Sample(&rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 1.0 / 3.0, 0.02);
  }
}

TEST(AliasTableTest, SingleOutcome) {
  Rng rng(79);
  AliasTable table(std::vector<double>{2.5});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(table.Sample(&rng), 0u);
}

TEST(AliasTableTest, NegativeWeightsTreatedAsZero) {
  Rng rng(83);
  AliasTable table(std::vector<double>{-1.0, 1.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(&rng), 1u);
}

TEST(SplitMix64Test, KnownSequenceAdvances) {
  uint64_t state = 0;
  uint64_t a = SplitMix64Next(&state);
  uint64_t b = SplitMix64Next(&state);
  EXPECT_NE(a, b);
  EXPECT_NE(state, 0u);
}

}  // namespace
}  // namespace qrank
