#include "common/logging.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/stopwatch.h"

namespace qrank {
namespace {

// Captures std::cerr for the duration of a scope.
class CerrCapture {
 public:
  CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_); }
  std::string str() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, MessagesCarryLevelAndLocation) {
  CerrCapture capture;
  QRANK_LOG_WARN << "simulator budget " << 42 << " exceeded";
  std::string out = capture.str();
  EXPECT_NE(out.find("[WARN"), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(out.find("simulator budget 42 exceeded"), std::string::npos);
}

TEST_F(LoggingTest, LevelFiltersLowerMessages) {
  SetLogLevel(LogLevel::kError);
  CerrCapture capture;
  QRANK_LOG_INFO << "hidden";
  QRANK_LOG_WARN << "also hidden";
  QRANK_LOG_ERROR << "visible";
  std::string out = capture.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible"), std::string::npos);
}

TEST_F(LoggingTest, DebugDisabledByDefault) {
  CerrCapture capture;
  QRANK_LOG_DEBUG << "debug detail";
  EXPECT_EQ(capture.str().find("debug detail"), std::string::npos);
  SetLogLevel(LogLevel::kDebug);
  QRANK_LOG_DEBUG << "debug detail";
  EXPECT_NE(capture.str().find("debug detail"), std::string::npos);
}

TEST_F(LoggingTest, GetLogLevelRoundTrips) {
  SetLogLevel(LogLevel::kWarn);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarn);
}

TEST_F(LoggingTest, DisabledLevelDoesNotEvaluateStream) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return 1;
  };
  QRANK_LOG_DEBUG << expensive();
  EXPECT_EQ(evaluations, 0);
  QRANK_LOG_ERROR << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckTest, PassingCheckIsSilentAndEvaluatesOnce) {
  CerrCapture capture;
  int evaluations = 0;
  auto counted = [&]() {
    ++evaluations;
    return true;
  };
  QRANK_CHECK(counted()) << "never shown";
  EXPECT_EQ(evaluations, 1);
  EXPECT_TRUE(capture.str().empty());
}

TEST(CheckDeathTest, FailureReportsConditionLocationAndMessage) {
  EXPECT_DEATH(
      { QRANK_CHECK(1 + 1 == 3) << "arithmetic is broken, n = " << 42; },
      "QRANK_CHECK failed.*logging_test\\.cc.*1 \\+ 1 == 3.*"
      "arithmetic is broken, n = 42");
}

TEST(CheckDeathTest, MessageFreeFailureStillAborts) {
  EXPECT_DEATH({ QRANK_CHECK(false); }, "QRANK_CHECK failed");
}

TEST(CheckTest, DcheckMatchesBuildMode) {
  // QRANK_DCHECK compiles to a real check in debug builds and to a
  // never-evaluated (but still type-checked) expression in release.
  int evaluations = 0;
  auto counted = [&]() {
    ++evaluations;
    return true;
  };
  QRANK_DCHECK(counted()) << "never shown";
#ifndef NDEBUG
  EXPECT_EQ(evaluations, 1);
#else
  EXPECT_EQ(evaluations, 0);
#endif
}

#ifdef NDEBUG
TEST(CheckTest, ReleaseDcheckDoesNotEvaluateStreamOperands) {
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return 7;
  };
  QRANK_DCHECK(false) << "cost " << expensive();
  EXPECT_EQ(evaluations, 0);
}
#endif

TEST(AuditMacroTest, DisabledLevelsCompileOutButTypeCheck) {
  // At the default audit level 0 both macros are disabled expressions;
  // at level >= 1 (the sanitizer CI builds) the passing condition is
  // simply silent. Either way: no output, no abort, operands odr-used.
  CerrCapture capture;
  const size_t edges = 10;
  QRANK_AUDIT1(edges == 10) << "edge count " << edges;
  QRANK_AUDIT2(edges * 2 == 20) << "doubled " << edges;
  EXPECT_TRUE(capture.str().empty());
}

#if QRANK_AUDIT_LEVEL >= 1
TEST(AuditMacroDeathTest, Level1FailureAborts) {
  EXPECT_DEATH({ QRANK_AUDIT1(false) << "level-1 violation"; },
               "QRANK_CHECK failed.*level-1 violation");
}
#endif

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  double first = sw.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  // Busy-wait a tiny amount; elapsed must be monotone.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  double second = sw.ElapsedSeconds();
  EXPECT_GE(second, first);
  EXPECT_NEAR(sw.ElapsedMillis(), sw.ElapsedSeconds() * 1e3,
              sw.ElapsedMillis() * 0.5 + 1.0);
  sw.Reset();
  EXPECT_LT(sw.ElapsedSeconds(), second + 1.0);
}

}  // namespace
}  // namespace qrank
