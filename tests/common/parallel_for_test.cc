#include "common/parallel_for.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

namespace qrank {
namespace {

TEST(ParallelForTest, NumBlocksPartitionEdgeCases) {
  EXPECT_EQ(NumBlocks(0, 100), 0u);
  EXPECT_EQ(NumBlocks(1, 100), 1u);
  EXPECT_EQ(NumBlocks(100, 100), 1u);
  EXPECT_EQ(NumBlocks(101, 100), 2u);
  EXPECT_EQ(NumBlocks(250, 100), 3u);
  EXPECT_EQ(NumBlocks(7, 0), 7u);  // grain clamps to 1
}

TEST(ParallelForTest, EmptyRangeIsANoOp) {
  for (int threads : {1, 2, 8}) {
    ParallelOptions par;
    par.num_threads = threads;
    bool called = false;
    ParallelFor(0, [&](size_t) { called = true; }, par);
    EXPECT_FALSE(called);
    EXPECT_EQ(ParallelReduce(0, [](size_t, size_t) { return 1.0; }, par),
              0.0);
  }
}

TEST(ParallelForTest, SingleElementRange) {
  for (int threads : {1, 2, 8}) {
    ParallelOptions par;
    par.num_threads = threads;
    std::atomic<int> calls{0};
    std::atomic<size_t> seen{999};
    ParallelFor(1, [&](size_t i) { ++calls; seen = i; }, par);
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(seen.load(), 0u);
  }
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  // More blocks than threads, n not a multiple of grain, and the
  // n < threads case all at once.
  for (size_t n : {size_t{3}, size_t{100}, size_t{1001}}) {
    for (int threads : {1, 2, 8, 16}) {
      ParallelOptions par;
      par.num_threads = threads;
      par.grain = 16;
      std::vector<std::atomic<int>> counts(n);
      ParallelFor(n, [&](size_t i) { counts[i].fetch_add(1); }, par);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(counts[i].load(), 1) << "i=" << i << " n=" << n
                                       << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelForTest, BlockBoundsCoverRangeWithoutOverlap) {
  ParallelOptions par;
  par.num_threads = 4;
  par.grain = 7;
  const size_t n = 45;  // 7 blocks: 6 full + 1 ragged tail of 3
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> blocks;
  ParallelForBlocks(
      n,
      [&](size_t lo, size_t hi) {
        std::lock_guard<std::mutex> lock(mu);
        blocks.push_back({lo, hi});
      },
      par);
  ASSERT_EQ(blocks.size(), NumBlocks(n, par.grain));
  std::sort(blocks.begin(), blocks.end());
  size_t expect_lo = 0;
  for (auto [lo, hi] : blocks) {
    EXPECT_EQ(lo, expect_lo);
    EXPECT_GT(hi, lo);
    EXPECT_LE(hi - lo, par.grain);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, n);
}

TEST(ParallelForTest, ReduceSumMatchesSerialAcrossThreadCounts) {
  const size_t n = 100000;
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto partial = [&](size_t lo, size_t hi) {
    double s = 0.0;
    for (size_t i = lo; i < hi; ++i) s += values[i];
    return s;
  };
  ParallelOptions par1;
  par1.num_threads = 1;
  const double serial = ParallelReduce(n, partial, par1);
  EXPECT_NEAR(serial, std::accumulate(values.begin(), values.end(), 0.0),
              1e-9);
  for (int threads : {2, 3, 8, 32}) {
    ParallelOptions par;
    par.num_threads = threads;
    // Bit-identical, not just close: fixed blocks + tree combine make the
    // result independent of thread count and scheduling.
    EXPECT_EQ(ParallelReduce(n, partial, par), serial)
        << "threads=" << threads;
  }
}

TEST(ParallelForTest, ReduceDependsOnGrainNotThreads) {
  // Changing grain MAY change the floating-point result (different
  // block tree); changing threads at fixed grain MUST NOT.
  const size_t n = 4096;
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = 0.1 * static_cast<double>(i);
  auto partial = [&](size_t lo, size_t hi) {
    double s = 0.0;
    for (size_t i = lo; i < hi; ++i) s += values[i];
    return s;
  };
  for (size_t grain : {size_t{1}, size_t{64}, size_t{5000}}) {
    double reference = 0.0;
    for (int threads : {1, 2, 8}) {
      ParallelOptions par;
      par.num_threads = threads;
      par.grain = grain;
      double sum = ParallelReduce(n, partial, par);
      if (threads == 1) {
        reference = sum;
      } else {
        EXPECT_EQ(sum, reference) << "grain=" << grain
                                  << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  for (int threads : {1, 4}) {
    ParallelOptions par;
    par.num_threads = threads;
    par.grain = 8;
    EXPECT_THROW(
        ParallelFor(
            1000,
            [&](size_t i) {
              if (i == 137) throw std::runtime_error("block boom");
            },
            par),
        std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(ParallelForTest, NestedCallsDoNotDeadlock) {
  ParallelOptions outer;
  outer.num_threads = 4;
  outer.grain = 1;
  std::atomic<int> inner_total{0};
  ParallelFor(
      8,
      [&](size_t) {
        ParallelOptions inner;
        inner.num_threads = 4;
        inner.grain = 1;
        ParallelFor(8, [&](size_t) { inner_total.fetch_add(1); }, inner);
      },
      outer);
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(ParallelForTest, DefaultThreadsOverride) {
  SetDefaultThreads(3);
  EXPECT_EQ(DefaultThreads(), 3);
  SetDefaultThreads(0);  // back to hardware concurrency
  EXPECT_GE(DefaultThreads(), 1);
}

}  // namespace
}  // namespace qrank
