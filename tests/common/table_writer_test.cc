#include "common/table_writer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace qrank {
namespace {

TEST(TableWriterTest, AsciiAlignsColumns) {
  TableWriter t({"t", "P(p,t)"});
  t.AddRow({"0", "0.001"});
  t.AddRow({"10", "0.52"});
  std::string s = t.ToAscii();
  EXPECT_NE(s.find("t"), std::string::npos);
  EXPECT_NE(s.find("P(p,t)"), std::string::npos);
  EXPECT_NE(s.find("0.001"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TableWriterTest, RowsPaddedOrTruncatedToHeader) {
  TableWriter t({"a", "b"});
  t.AddRow({"1"});            // short row padded
  t.AddRow({"1", "2", "3"});  // long row truncated
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream out;
  t.RenderCsv(out);
  EXPECT_EQ(out.str(), "a,b\n1,\n1,2\n");
}

TEST(TableWriterTest, DoubleRowsFormatted) {
  TableWriter t({"x", "y"});
  t.AddNumericRow({1.5, 0.25}, 3);
  std::ostringstream out;
  t.RenderCsv(out);
  EXPECT_EQ(out.str(), "x,y\n1.5,0.25\n");
}

TEST(TableWriterTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(TableWriter::FormatDouble(1.5, 6), "1.5");
  EXPECT_EQ(TableWriter::FormatDouble(2.0, 6), "2.0");
  EXPECT_EQ(TableWriter::FormatDouble(0.123456789, 4), "0.1235");
  EXPECT_EQ(TableWriter::FormatDouble(-3.25, 2), "-3.25");
}

TEST(TableWriterTest, CsvEscapesSpecialCharacters) {
  TableWriter t({"name", "value"});
  t.AddRow({"a,b", "say \"hi\""});
  std::ostringstream out;
  t.RenderCsv(out);
  EXPECT_EQ(out.str(), "name,value\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(TableWriterTest, WriteCsvFileRoundTrips) {
  std::string path = ::testing::TempDir() + "/qrank_table_test.csv";
  TableWriter t({"col"});
  t.AddRow({"v1"});
  ASSERT_TRUE(t.WriteCsvFile(path).ok());
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "col");
  std::getline(f, line);
  EXPECT_EQ(line, "v1");
  std::remove(path.c_str());
}

TEST(TableWriterTest, WriteCsvFileFailsOnBadPath) {
  TableWriter t({"col"});
  Status s = t.WriteCsvFile("/nonexistent_dir_zzz/file.csv");
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace qrank
