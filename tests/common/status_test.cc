#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace qrank {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryOkIsOk) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing page");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing page");
  EXPECT_EQ(s.ToString(), "NotFound: missing page");
}

TEST(StatusTest, EachFactoryProducesItsCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotConverged("x").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::IOError("a"));
  EXPECT_EQ(Status(), Status::OK());
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotConverged), "NotConverged");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBackOnError) {
  Result<int> err(Status::Internal("x"));
  EXPECT_EQ(err.value_or(-1), -1);
  Result<int> ok(5);
  EXPECT_EQ(ok.value_or(-1), 5);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

namespace macros {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Outer(int x) {
  QRANK_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

Result<int> Doubler(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> Chained(int x) {
  QRANK_ASSIGN_OR_RETURN(int doubled, Doubler(x));
  QRANK_ASSIGN_OR_RETURN(int quadrupled, Doubler(doubled));
  return quadrupled;
}

}  // namespace macros

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(macros::Outer(1).ok());
  Status s = macros::Outer(-1);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacroTest, AssignOrReturnChains) {
  Result<int> r = macros::Chained(3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 12);
  EXPECT_FALSE(macros::Chained(-3).ok());
}

}  // namespace
}  // namespace qrank
