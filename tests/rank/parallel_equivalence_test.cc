// Equivalence suite for the parallel compute substrate: results must be
// independent of --threads. This is the correctness contract that lets
// the quality estimator Q(p) ≈ C·ΔPR/PR + PR — a ratio of nearly equal
// floating-point quantities — run on the parallel engines: any
// thread-count-dependent wobble in PR would masquerade as a quality
// signal.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/parallel_for.h"
#include "common/rng.h"
#include "core/snapshot_series.h"
#include "graph/generators.h"
#include "graph/graph_delta.h"
#include "rank/delta_pagerank.h"
#include "rank/pagerank.h"
#include "rank/rank_vector.h"
#include "sim/web_simulator.h"

namespace qrank {
namespace {

const int kThreadCounts[] = {1, 2, 8};

CsrGraph RandomGraph(uint64_t seed, NodeId nodes, uint32_t out_degree) {
  Rng rng(seed);
  return CsrGraph::FromEdgeList(
             GenerateBarabasiAlbert(nodes, out_degree, &rng).value())
      .value();
}

void ExpectBitIdenticalScores(const CsrGraph& graph, PageRankOptions options) {
  options.num_threads = 1;
  Result<PageRankResult> serial = ComputePageRank(graph, options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (int threads : kThreadCounts) {
    options.num_threads = threads;
    Result<PageRankResult> parallel = ComputePageRank(graph, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(parallel->iterations, serial->iterations)
        << "threads=" << threads;
    EXPECT_EQ(parallel->residual, serial->residual) << "threads=" << threads;
    ASSERT_EQ(parallel->scores.size(), serial->scores.size());
    for (size_t i = 0; i < serial->scores.size(); ++i) {
      // Bit-identical, not approximately equal: fixed block partitions
      // and tree-ordered reductions are thread-count independent.
      ASSERT_EQ(parallel->scores[i], serial->scores[i])
          << "node " << i << " threads=" << threads;
    }
  }
}

TEST(ParallelEquivalenceTest, PageRankOnRandomGraphs) {
  for (uint64_t seed : {1u, 7u, 99u}) {
    for (NodeId nodes : {NodeId{50}, NodeId{1000}, NodeId{5000}}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " nodes=" + std::to_string(nodes));
      ExpectBitIdenticalScores(RandomGraph(seed, nodes, 5), {});
    }
  }
}

TEST(ParallelEquivalenceTest, PageRankWithDanglingNodes) {
  // Erdos-Renyi at low density leaves isolated (dangling) nodes, which
  // exercise the parallel dangling-mass reduction.
  Rng rng(17);
  CsrGraph g =
      CsrGraph::FromEdgeList(GenerateErdosRenyi(800, 0.002, &rng).value())
          .value();
  ASSERT_GT(g.CountDanglingNodes(), 0u);
  ExpectBitIdenticalScores(g, {});

  // All-dangling extreme: no edges at all.
  CsrGraph empty_edges = CsrGraph::FromEdges(64, {}).value();
  ExpectBitIdenticalScores(empty_edges, {});
}

TEST(ParallelEquivalenceTest, PageRankOnSingleNodeAndEmptyGraphs) {
  CsrGraph single = CsrGraph::FromEdges(1, {}).value();
  ExpectBitIdenticalScores(single, {});

  CsrGraph empty;
  for (int threads : kThreadCounts) {
    PageRankOptions o;
    o.num_threads = threads;
    Result<PageRankResult> r = ComputePageRank(empty, o);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->scores.empty());
    EXPECT_TRUE(r->converged);
  }
}

TEST(ParallelEquivalenceTest, PageRankUnderNonDefaultOptions) {
  CsrGraph g = RandomGraph(23, 2000, 4);
  PageRankOptions o;
  o.damping = 0.95;
  o.scale = ScaleConvention::kTotalMassN;
  std::vector<double> personalization(g.num_nodes(), 1.0);
  personalization[3] = 50.0;
  o.personalization = personalization;
  ExpectBitIdenticalScores(g, o);
}

TEST(ParallelEquivalenceTest, ParallelAgreesWithSerialGaussSeidelReference) {
  // Cross-engine check: the parallel Jacobi fixed point must match the
  // deliberately-serial Gauss-Seidel reference engine to solver
  // tolerance (they share a fixed point, not an iteration sequence).
  CsrGraph g = RandomGraph(5, 1500, 6);
  PageRankOptions o;
  o.tolerance = 1e-12;
  o.max_iterations = 2000;
  o.num_threads = 8;
  Result<PageRankResult> jacobi = ComputePageRank(g, o);
  Result<PageRankResult> gs = ComputePageRankGaussSeidel(g, o);
  ASSERT_TRUE(jacobi.ok());
  ASSERT_TRUE(gs.ok());
  EXPECT_TRUE(jacobi->converged);
  EXPECT_TRUE(gs->converged);
  EXPECT_LT(L1Distance(jacobi->scores, gs->scores), 1e-9);
}

TEST(ParallelEquivalenceTest, DeltaPageRankBitIdenticalAcrossThreads) {
  // The incremental engine shares the contract: same graph, same dirty
  // frontier, same warm start => bit-identical scores, iteration counts
  // and work counters for every thread count.
  CsrGraph g0 = RandomGraph(31, 3000, 5);
  PageRankOptions base;
  base.tolerance = 1e-11;
  PageRankResult r0 = ComputePageRank(g0, base).value();

  // Perturb: add a few edges.
  std::vector<Edge> edges;
  for (NodeId u = 0; u < g0.num_nodes(); ++u) {
    for (NodeId v : g0.OutNeighbors(u)) edges.push_back({u, v});
  }
  Rng rng(37);
  for (int k = 0; k < 25; ++k) {
    NodeId u = static_cast<NodeId>(rng.UniformUint64(g0.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.UniformUint64(g0.num_nodes()));
    if (u != v) edges.push_back({u, v});
  }
  CsrGraph g1 = CsrGraph::FromEdges(g0.num_nodes(), edges).value();
  GraphDelta delta = GraphDelta::Between(g0, g1);
  std::vector<uint8_t> frontier = delta.DirtyFrontier(g1);

  DeltaPageRankOptions options;
  options.base = base;
  options.base.initial_scores = r0.scores;
  options.base.num_threads = 1;
  DeltaPageRankResult serial =
      ComputeDeltaPageRank(g1, frontier, options).value();
  for (int threads : kThreadCounts) {
    options.base.num_threads = threads;
    DeltaPageRankResult parallel =
        ComputeDeltaPageRank(g1, frontier, options).value();
    EXPECT_EQ(parallel.base.iterations, serial.base.iterations)
        << "threads=" << threads;
    EXPECT_EQ(parallel.base.residual, serial.base.residual);
    EXPECT_EQ(parallel.node_updates, serial.node_updates);
    EXPECT_EQ(parallel.frozen_at_end, serial.frozen_at_end);
    ASSERT_EQ(parallel.base.scores.size(), serial.base.scores.size());
    for (size_t i = 0; i < serial.base.scores.size(); ++i) {
      ASSERT_EQ(parallel.base.scores[i], serial.base.scores[i])
          << "node " << i << " threads=" << threads;
    }
  }
}

void FillEvolvingSeries(SnapshotSeries* s) {
  Rng rng(53);
  std::vector<Edge> edges =
      GenerateBarabasiAlbert(2000, 4, &rng).value().edges();
  for (int i = 0; i < 4; ++i) {
    const NodeId n = static_cast<NodeId>(2000 + 30 * i);
    for (int k = 0; k < 40 * i; ++k) {
      NodeId u = static_cast<NodeId>(rng.UniformUint64(n));
      NodeId v = static_cast<NodeId>(rng.UniformUint64(n));
      if (u != v) edges.push_back({u, v});
    }
    ASSERT_TRUE(
        s->AddSnapshot(i + 1.0, CsrGraph::FromEdges(n, edges).value()).ok());
  }
}

TEST(ParallelEquivalenceTest, IncrementalSeriesIndependentOfThreadCount) {
  // End-to-end: the whole incremental snapshot pipeline (delta builds,
  // transpose patches, frozen-set solves) is bit-identical across thread
  // counts, and its fixed points agree with the serial from-scratch
  // Gauss-Seidel reference.
  SeriesComputeOptions o;
  o.mode = SeriesMode::kIncremental;
  o.pagerank.tolerance = 1e-12;
  o.pagerank.max_iterations = 2000;

  o.pagerank.num_threads = 1;
  SnapshotSeries reference;
  FillEvolvingSeries(&reference);
  ASSERT_TRUE(reference.ComputePageRanks(o).ok());

  for (int threads : {2, 8}) {
    o.pagerank.num_threads = threads;
    SnapshotSeries series;
    FillEvolvingSeries(&series);
    ASSERT_TRUE(series.ComputePageRanks(o).ok());
    for (size_t i = 0; i < reference.num_snapshots(); ++i) {
      EXPECT_EQ(series.iterations_per_snapshot()[i],
                reference.iterations_per_snapshot()[i])
          << "snapshot " << i << " threads=" << threads;
      EXPECT_EQ(series.node_updates_per_snapshot()[i],
                reference.node_updates_per_snapshot()[i]);
      ASSERT_EQ(series.pagerank(i).size(), reference.pagerank(i).size());
      for (size_t p = 0; p < reference.pagerank(i).size(); ++p) {
        ASSERT_EQ(series.pagerank(i)[p], reference.pagerank(i)[p])
            << "snapshot " << i << " node " << p << " threads=" << threads;
      }
    }
  }

  // Cross-engine: each snapshot's incremental fixed point vs the serial
  // from-scratch Gauss-Seidel solve of the same induced subgraph.
  PageRankOptions gs_options = o.pagerank;
  gs_options.num_threads = 1;
  for (size_t i = 0; i < reference.num_snapshots(); ++i) {
    PageRankResult gs =
        ComputePageRankGaussSeidel(reference.common_graph(i), gs_options)
            .value();
    EXPECT_TRUE(gs.converged);
    EXPECT_LT(L1Distance(reference.pagerank(i), gs.scores), 1e-9)
        << "snapshot " << i;
  }
}

std::vector<std::pair<NodeId, NodeId>> SnapshotEdges(const WebSimulator& sim) {
  CsrGraph g = sim.Snapshot().value();
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) edges.push_back({u, v});
  }
  return edges;
}

TEST(ParallelEquivalenceTest, SimulatorTrajectoryIndependentOfThreadCount) {
  WebSimulatorOptions base;
  base.num_users = 300;
  base.seed = 1234;
  base.page_birth_rate = 4.0;
  base.forget_rate = 0.01;
  base.exploration_visit_rate = 0.05;

  base.num_threads = 1;
  WebSimulator reference = WebSimulator::Create(base).value();
  ASSERT_TRUE(reference.AdvanceTo(8.0).ok());
  const auto reference_edges = SnapshotEdges(reference);
  ASSERT_GT(reference_edges.size(), 0u);

  for (int threads : {2, 8}) {
    WebSimulatorOptions o = base;
    o.num_threads = threads;
    WebSimulator sim = WebSimulator::Create(o).value();
    ASSERT_TRUE(sim.AdvanceTo(8.0).ok());
    EXPECT_EQ(sim.total_visits(), reference.total_visits())
        << "threads=" << threads;
    EXPECT_EQ(sim.total_likes_created(), reference.total_likes_created());
    EXPECT_EQ(sim.total_forgets(), reference.total_forgets());
    ASSERT_EQ(sim.num_pages(), reference.num_pages());
    for (NodeId p = 0; p < sim.num_pages(); ++p) {
      ASSERT_EQ(sim.page(p).likes, reference.page(p).likes) << "page " << p;
      ASSERT_EQ(sim.page(p).aware, reference.page(p).aware) << "page " << p;
      ASSERT_EQ(sim.page(p).visits, reference.page(p).visits) << "page " << p;
    }
    // Identical snapshot edge lists, edge for edge.
    EXPECT_EQ(SnapshotEdges(sim), reference_edges) << "threads=" << threads;
  }
}

TEST(ParallelEquivalenceTest, SearchMediatedSimulatorIndependentOfThreads) {
  WebSimulatorOptions base;
  base.num_users = 200;
  base.seed = 77;
  base.page_birth_rate = 2.0;
  base.search.policy = RankingPolicy::kQualityEstimate;
  base.search.search_traffic_fraction = 0.4;

  base.num_threads = 1;
  WebSimulator reference = WebSimulator::Create(base).value();
  ASSERT_TRUE(reference.AdvanceTo(6.0).ok());

  for (int threads : {2, 8}) {
    WebSimulatorOptions o = base;
    o.num_threads = threads;
    WebSimulator sim = WebSimulator::Create(o).value();
    ASSERT_TRUE(sim.AdvanceTo(6.0).ok());
    EXPECT_EQ(sim.total_search_visits(), reference.total_search_visits());
    EXPECT_EQ(sim.rerank_count(), reference.rerank_count());
    EXPECT_EQ(sim.search_results(), reference.search_results());
    EXPECT_EQ(SnapshotEdges(sim), SnapshotEdges(reference));
  }
}

TEST(ParallelEquivalenceTest, CsrTransposeIndependentOfThreadCount) {
  // A graph big enough to cross the parallel threshold in csr_graph.cc
  // (2^16 edges); the transpose arrays must be identical to the serial
  // result for every default thread count.
  Rng rng(3);
  EdgeList edges = GenerateBarabasiAlbert(20000, 6, &rng).value();
  ASSERT_GT(edges.num_edges(), size_t{1} << 16);

  SetDefaultThreads(1);
  CsrGraph serial = CsrGraph::FromEdgeList(edges).value();
  CsrGraph serial_t = serial.Transpose();
  for (int threads : {2, 8}) {
    SetDefaultThreads(threads);
    CsrGraph parallel = CsrGraph::FromEdgeList(edges).value();
    CsrGraph parallel_t = parallel.Transpose();
    EXPECT_EQ(parallel.offsets(), serial.offsets()) << "threads=" << threads;
    EXPECT_EQ(parallel.targets(), serial.targets()) << "threads=" << threads;
    EXPECT_EQ(parallel_t.offsets(), serial_t.offsets());
    EXPECT_EQ(parallel_t.targets(), serial_t.targets());
  }
  SetDefaultThreads(0);
}

}  // namespace
}  // namespace qrank
