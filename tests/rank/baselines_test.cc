#include "rank/baselines.h"

#include <gtest/gtest.h>

#include <numeric>

namespace qrank {
namespace {

TEST(BaselinesTest, InDegreeScoresMatchDegrees) {
  CsrGraph g =
      CsrGraph::FromEdges(4, {{0, 3}, {1, 3}, {2, 3}, {3, 0}}).value();
  std::vector<double> s = InDegreeScores(g);
  EXPECT_EQ(s, (std::vector<double>{1.0, 0.0, 0.0, 3.0}));
}

TEST(BaselinesTest, NormalizedSumsToOne) {
  CsrGraph g =
      CsrGraph::FromEdges(4, {{0, 3}, {1, 3}, {2, 3}, {3, 0}}).value();
  std::vector<double> s = NormalizedInDegreeScores(g);
  EXPECT_NEAR(std::accumulate(s.begin(), s.end(), 0.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(s[3], 0.75);
}

TEST(BaselinesTest, EdgelessGraphStaysZero) {
  CsrGraph g = CsrGraph::FromEdgeList(EdgeList(3)).value();
  std::vector<double> s = NormalizedInDegreeScores(g);
  for (double v : s) EXPECT_EQ(v, 0.0);
}

}  // namespace
}  // namespace qrank
