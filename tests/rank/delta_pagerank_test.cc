#include "rank/delta_pagerank.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph_delta.h"
#include "rank/rank_vector.h"

namespace qrank {
namespace {

double L1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) d += std::fabs(a[i] - b[i]);
  return d;
}

CsrGraph RandomGraph(NodeId n, uint32_t deg, uint64_t seed) {
  Rng rng(seed);
  return CsrGraph::FromEdgeList(GenerateBarabasiAlbert(n, deg, &rng).value())
      .value();
}

// A successor graph with a handful of edge changes.
CsrGraph Perturb(const CsrGraph& g, int add_count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) edges.push_back({u, v});
  }
  for (int k = 0; k < add_count; ++k) {
    NodeId u = static_cast<NodeId>(rng.UniformUint64(g.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.UniformUint64(g.num_nodes()));
    if (u != v) edges.push_back({u, v});
  }
  return CsrGraph::FromEdges(g.num_nodes(), edges).value();
}

TEST(DeltaPageRankTest, ColdStartMatchesPlainPageRank) {
  CsrGraph g = RandomGraph(2000, 5, 7);
  PageRankOptions base;
  base.tolerance = 1e-11;
  PageRankResult plain = ComputePageRank(g, base).value();

  DeltaPageRankOptions options;
  options.base = base;
  // Empty frontier = everything dirty (a cold start).
  DeltaPageRankResult delta = ComputeDeltaPageRank(g, {}, options).value();
  EXPECT_TRUE(delta.base.converged);
  EXPECT_LT(L1Distance(delta.base.scores, plain.scores), 1e-9);
}

TEST(DeltaPageRankTest, WarmStartWithFrontierMatchesFromScratch) {
  // The exactness contract: after a small perturbation, the frozen-set
  // warm-started solve agrees with the from-scratch solve within the
  // engine tolerance.
  CsrGraph g0 = RandomGraph(3000, 5, 11);
  PageRankOptions base;
  base.tolerance = 1e-11;
  PageRankResult r0 = ComputePageRank(g0, base).value();

  CsrGraph g1 = Perturb(g0, 40, 13);
  GraphDelta delta = GraphDelta::Between(g0, g1);
  ASSERT_FALSE(delta.empty());

  DeltaPageRankOptions options;
  options.base = base;
  options.base.initial_scores = r0.scores;
  DeltaPageRankResult incr =
      ComputeDeltaPageRank(g1, delta.DirtyFrontier(g1), options).value();
  PageRankResult scratch = ComputePageRank(g1, base).value();

  EXPECT_TRUE(incr.base.converged);
  EXPECT_LT(L1Distance(incr.base.scores, scratch.scores), 1e-9);
}

TEST(DeltaPageRankTest, SiteLocalDeltaDoesFarFewerNodeUpdates) {
  // On a site-clustered graph (the regime the engine targets — a pure
  // preferential-attachment expander mixes any perturbation globally in
  // a few hops), churn confined to one site leaves distant sites frozen.
  Rng rng(17);
  CsrGraph g0 =
      CsrGraph::FromEdgeList(GenerateSiteClustered(50, 100, 4, 3, &rng).value())
          .value();
  PageRankOptions base;
  base.tolerance = 1e-10;
  PageRankResult r0 = ComputePageRank(g0, base).value();

  // Add 10 edges inside site 7 (pages 700..799).
  std::vector<Edge> edges;
  for (NodeId u = 0; u < g0.num_nodes(); ++u) {
    for (NodeId v : g0.OutNeighbors(u)) edges.push_back({u, v});
  }
  for (int k = 0; k < 10; ++k) {
    NodeId u = 700 + static_cast<NodeId>(rng.UniformUint64(100));
    NodeId v = 700 + static_cast<NodeId>(rng.UniformUint64(100));
    if (u != v) edges.push_back({u, v});
  }
  CsrGraph g1 = CsrGraph::FromEdges(g0.num_nodes(), edges).value();
  GraphDelta delta = GraphDelta::Between(g0, g1);
  ASSERT_FALSE(delta.empty());

  DeltaPageRankOptions options;
  options.base = base;
  options.base.initial_scores = r0.scores;
  DeltaPageRankResult incr =
      ComputeDeltaPageRank(g1, delta.DirtyFrontier(g1), options).value();
  PageRankResult scratch = ComputePageRank(g1, base).value();

  EXPECT_TRUE(incr.base.converged);
  EXPECT_LT(L1Distance(incr.base.scores, scratch.scores), 1e-8);
  const uint64_t scratch_updates =
      static_cast<uint64_t>(scratch.iterations) * g1.num_nodes();
  EXPECT_LT(incr.node_updates, scratch_updates / 3);
  EXPECT_GT(incr.frozen_at_end, 0u);
}

TEST(DeltaPageRankTest, FrontierTouchingOnlyDanglingNodes) {
  // 3 and 4 are dangling; a frontier containing only them still
  // converges to the true fixed point (dangling mass redistribution
  // makes their scores globally coupled).
  CsrGraph g =
      CsrGraph::FromEdges(5, {{0, 1}, {0, 3}, {1, 2}, {2, 0}, {2, 4}})
          .value();
  PageRankOptions base;
  base.tolerance = 1e-12;
  PageRankResult scratch = ComputePageRank(g, base).value();

  DeltaPageRankOptions options;
  options.base = base;
  options.base.initial_scores = scratch.scores;
  std::vector<uint8_t> frontier = {0, 0, 0, 1, 1};
  DeltaPageRankResult incr =
      ComputeDeltaPageRank(g, frontier, options).value();
  EXPECT_TRUE(incr.base.converged);
  EXPECT_LT(L1Distance(incr.base.scores, scratch.scores), 1e-10);
}

TEST(DeltaPageRankTest, TotalMassNScale) {
  CsrGraph g = RandomGraph(1000, 4, 23);
  PageRankOptions base;
  base.scale = ScaleConvention::kTotalMassN;
  base.tolerance = 1e-11;
  DeltaPageRankOptions options;
  options.base = base;
  DeltaPageRankResult r = ComputeDeltaPageRank(g, {}, options).value();
  double sum = 0.0;
  for (double s : r.base.scores) sum += s;
  EXPECT_NEAR(sum, static_cast<double>(g.num_nodes()), 1e-6);
}

TEST(DeltaPageRankTest, FullSweepPeriodOneIsPlainWarmJacobi) {
  CsrGraph g = RandomGraph(800, 4, 29);
  PageRankOptions base;
  base.tolerance = 1e-11;
  DeltaPageRankOptions options;
  options.base = base;
  options.full_sweep_period = 1;
  std::vector<uint8_t> frontier(g.num_nodes(), 0);  // all frozen...
  DeltaPageRankResult r = ComputeDeltaPageRank(g, frontier, options).value();
  PageRankResult plain = ComputePageRank(g, base).value();
  // ...but period 1 recomputes everything each round anyway.
  EXPECT_TRUE(r.base.converged);
  EXPECT_LT(L1Distance(r.base.scores, plain.scores), 1e-9);
}

TEST(DeltaPageRankTest, ValidatesOptions) {
  CsrGraph g = RandomGraph(100, 3, 31);
  DeltaPageRankOptions options;
  options.freeze_threshold = 0.0;
  EXPECT_FALSE(ComputeDeltaPageRank(g, {}, options).ok());

  options = {};
  options.full_sweep_period = 0;
  EXPECT_FALSE(ComputeDeltaPageRank(g, {}, options).ok());

  options = {};
  std::vector<uint8_t> wrong_size(g.num_nodes() - 1, 1);
  EXPECT_FALSE(ComputeDeltaPageRank(g, wrong_size, options).ok());

  options.base.damping = 1.5;
  EXPECT_FALSE(ComputeDeltaPageRank(g, {}, options).ok());
}

TEST(DeltaPageRankTest, EmptyGraph) {
  CsrGraph g;
  DeltaPageRankResult r = ComputeDeltaPageRank(g, {}).value();
  EXPECT_TRUE(r.base.scores.empty());
}

}  // namespace
}  // namespace qrank
