// Steady-state allocation behavior of the PageRank engines.
//
// The fused kernel's contract is that Sweep() allocates nothing: all
// scratch (iterate, out-shares, reduction partials) is owned by the
// kernel and reused every iteration. The test instruments the global
// allocator and (a) proves a sequence of sweeps performs zero
// allocations, (b) proves whole-engine allocation counts do not grow
// with the iteration count for the Jacobi and delta engines — i.e. no
// hidden per-iteration scratch.
//
// All measured runs are single-threaded so counts are deterministic.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>
#include <vector>

#include "common/rng.h"
#include "graph/generators.h"
#include "rank/delta_pagerank.h"
#include "rank/pagerank.h"
#include "rank/pagerank_kernel.h"

namespace {

std::atomic<size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace qrank {
namespace {

CsrGraph TestGraph() {
  Rng rng(1234);
  return CsrGraph::FromEdgeList(
             GenerateBarabasiAlbert(2048, 6, &rng).value())
      .value();
}

PageRankOptions UnconvergedOptions(uint32_t iterations) {
  PageRankOptions o;
  o.max_iterations = iterations;
  o.tolerance = 1e-300;  // never met: every run spends max_iterations
  o.num_threads = 1;
  return o;
}

size_t AllocationsDuring(const std::function<void()>& fn) {
  const size_t before = g_allocations.load(std::memory_order_relaxed);
  fn();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

// Constructs a kernel under `o` (construction may allocate and, for
// the compressed path, builds the cached transpose encodings), then
// proves 25 sweeps allocate nothing.
void ExpectSweepsAllocationFree(const PageRankOptions& o) {
  const CsrGraph g = TestGraph();
  const double uniform = 1.0 / static_cast<double>(g.num_nodes());
  const std::vector<double> teleport(g.num_nodes(), uniform);
  rank_internal::PageRankKernel kernel(
      g, o, teleport, std::vector<double>(g.num_nodes(), uniform));
  double residual = 0.0;
  const size_t allocs = AllocationsDuring([&kernel, &residual] {
    for (int i = 0; i < 25; ++i) residual = kernel.Sweep();
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_GT(residual, 0.0);  // the sweeps really ran
}

TEST(KernelAllocTest, SweepAllocatesNothing) {
  ExpectSweepsAllocationFree(UnconvergedOptions(50));
}

TEST(KernelAllocTest, SimdSweepAllocatesNothing) {
  // Whatever level kSimd resolves to on this host (AVX-512, AVX2, or
  // scalar fallback), the lane-parallel sweep owns all its scratch.
  PageRankOptions o = UnconvergedOptions(50);
  o.kernel = KernelVariant::kSimd;
  ExpectSweepsAllocationFree(o);
}

TEST(KernelAllocTest, CompressedSweepAllocatesNothing) {
  // Decode-on-the-fly must stream straight out of the varint bytes —
  // no per-row or per-block decode buffers on the heap.
  PageRankOptions o = UnconvergedOptions(50);
  o.use_compressed_transpose = true;
  ExpectSweepsAllocationFree(o);
}

TEST(KernelAllocTest, SimdCompressedSweepAllocatesNothing) {
  PageRankOptions o = UnconvergedOptions(50);
  o.kernel = KernelVariant::kSimd;
  o.use_compressed_transpose = true;
  ExpectSweepsAllocationFree(o);
}

TEST(KernelAllocTest, JacobiAllocationsIndependentOfIterationCount) {
  const CsrGraph g = TestGraph();
  g.BuildTranspose();  // shared cache; exclude the one-time build
  auto run = [&g](uint32_t iterations) {
    return AllocationsDuring([&g, iterations] {
      auto r = ComputePageRank(g, UnconvergedOptions(iterations));
      ASSERT_EQ(r->iterations, iterations);
    });
  };
  run(5);  // warm-up: first-call effects (locale, gtest internals)
  const size_t short_run = run(5);
  const size_t long_run = run(50);
  EXPECT_EQ(short_run, long_run);
  EXPECT_GT(short_run, 0u);  // result + kernel setup do allocate
}

TEST(KernelAllocTest, DeltaEngineAllocationsIndependentOfIterationCount) {
  const CsrGraph g = TestGraph();
  g.BuildTranspose();
  // Mark a small frontier dirty so the frozen-set machinery engages.
  std::vector<uint8_t> dirty(g.num_nodes(), 0);
  for (NodeId u = 0; u < 32; ++u) dirty[u] = 1;
  auto run = [&g, &dirty](uint32_t iterations) {
    return AllocationsDuring([&g, &dirty, iterations] {
      DeltaPageRankOptions o;
      o.base = UnconvergedOptions(iterations);
      auto r = ComputeDeltaPageRank(g, dirty, o);
      ASSERT_TRUE(r.ok());
    });
  };
  run(5);  // warm-up
  const size_t short_run = run(5);
  const size_t long_run = run(50);
  EXPECT_EQ(short_run, long_run);
}

}  // namespace
}  // namespace qrank
