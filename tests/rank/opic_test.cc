#include "rank/opic.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "common/stats.h"
#include "graph/generators.h"
#include "rank/pagerank.h"
#include "rank/rank_vector.h"

namespace qrank {
namespace {

TEST(OpicTest, ValidatesArguments) {
  EXPECT_FALSE(OpicComputer::Create(nullptr).ok());
  CsrGraph empty;
  EXPECT_FALSE(OpicComputer::Create(&empty).ok());
  CsrGraph g = CsrGraph::FromEdges(2, {{0, 1}}).value();
  OpicOptions o;
  o.damping = 1.0;
  EXPECT_FALSE(OpicComputer::Create(&g, o).ok());
}

TEST(OpicTest, ImportanceIsDistributionAtAllTimes) {
  Rng rng(3);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateBarabasiAlbert(200, 3, &rng).value())
                   .value();
  OpicComputer opic = OpicComputer::Create(&g).value();
  for (int round = 0; round < 5; ++round) {
    std::vector<double> imp = opic.Importance();
    double sum = std::accumulate(imp.begin(), imp.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "round " << round;
    for (double v : imp) EXPECT_GE(v, 0.0);
    opic.RunSweeps(2);
  }
  EXPECT_EQ(opic.steps(), 200u * 10u);
  EXPECT_GT(opic.total_history(), 0.0);
}

class OpicScheduleTest : public ::testing::TestWithParam<OpicSchedule> {};

TEST_P(OpicScheduleTest, ConvergesToPageRank) {
  Rng rng(7);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateBarabasiAlbert(300, 3, &rng).value())
                   .value();
  PageRankOptions pr_options;
  pr_options.tolerance = 1e-12;
  std::vector<double> reference = ComputePageRank(g, pr_options)->scores;

  OpicOptions o;
  o.schedule = GetParam();
  OpicComputer opic = OpicComputer::Create(&g, o).value();
  opic.RunSweeps(400);
  std::vector<double> imp = opic.Importance();
  // OPIC converges ~1/steps; after 400 sweeps the history average
  // dominates and should be close to PageRank in L1.
  EXPECT_LT(L1Distance(imp, reference), 0.05);
  // And essentially identical in rank order at the top.
  std::vector<NodeId> top_ref = TopK(reference, 10);
  std::vector<NodeId> top_opic = TopK(imp, 10);
  size_t overlap = 0;
  for (NodeId a : top_ref) {
    for (NodeId b : top_opic) {
      if (a == b) ++overlap;
    }
  }
  EXPECT_GE(overlap, 8u);
}

INSTANTIATE_TEST_SUITE_P(Schedules, OpicScheduleTest,
                         ::testing::Values(OpicSchedule::kRoundRobin,
                                           OpicSchedule::kRandom,
                                           OpicSchedule::kGreedy));

TEST(OpicTest, EstimatesUsableEarly) {
  // The online selling point: after ~5 sweeps the ranking is already
  // strongly correlated with PageRank.
  Rng rng(11);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateBarabasiAlbert(500, 3, &rng).value())
                   .value();
  std::vector<double> reference = ComputePageRank(g)->scores;
  OpicComputer opic = OpicComputer::Create(&g).value();
  opic.RunSweeps(5);
  std::vector<double> early = opic.Importance();
  Result<double> rho = SpearmanCorrelation(early, reference);
  ASSERT_TRUE(rho.ok());
  EXPECT_GT(rho.value(), 0.9);
}

TEST(OpicTest, HandlesDanglingNodes) {
  // Star: the hub has no out-links; its cash must recirculate, not leak.
  CsrGraph g = CsrGraph::FromEdgeList(GenerateStar(10).value()).value();
  OpicComputer opic = OpicComputer::Create(&g).value();
  opic.RunSweeps(200);
  std::vector<double> imp = opic.Importance();
  double sum = std::accumulate(imp.begin(), imp.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  std::vector<double> reference = ComputePageRank(g)->scores;
  EXPECT_LT(L1Distance(imp, reference), 0.05);
  // Hub dominates.
  for (NodeId s = 1; s <= 10; ++s) EXPECT_GT(imp[0], imp[s]);
}

TEST(OpicTest, GreedyDoesNotStarvePages) {
  // A source page with no in-links only receives pool cash; greedy must
  // still visit it eventually (its pool share grows without bound).
  CsrGraph g = CsrGraph::FromEdges(3, {{0, 1}, {1, 0}, {2, 0}}).value();
  OpicOptions o;
  o.schedule = OpicSchedule::kGreedy;
  OpicComputer opic = OpicComputer::Create(&g, o).value();
  opic.RunSweeps(300);
  std::vector<double> imp = opic.Importance();
  std::vector<double> reference = ComputePageRank(g)->scores;
  EXPECT_LT(L1Distance(imp, reference), 0.05);
  EXPECT_GT(imp[2], 0.0);
}

TEST(OpicTest, DeterministicRandomSchedule) {
  Rng rng(13);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateCopyModel(100, 3, 0.5, &rng).value())
                   .value();
  OpicOptions o;
  o.schedule = OpicSchedule::kRandom;
  o.seed = 42;
  OpicComputer a = OpicComputer::Create(&g, o).value();
  OpicComputer b = OpicComputer::Create(&g, o).value();
  a.RunSweeps(10);
  b.RunSweeps(10);
  EXPECT_EQ(a.Importance(), b.Importance());
}

}  // namespace
}  // namespace qrank
