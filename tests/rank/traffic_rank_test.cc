#include "rank/traffic_rank.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "common/stats.h"
#include "graph/generators.h"
#include "rank/pagerank.h"

namespace qrank {
namespace {

TEST(TrafficRankTest, ValidatesOptions) {
  CsrGraph g = CsrGraph::FromEdges(2, {{0, 1}}).value();
  TrafficRankOptions o;
  o.tolerance = 0.0;
  EXPECT_FALSE(ComputeTrafficRank(g, o).ok());
  o = TrafficRankOptions{};
  o.max_iterations = 0;
  EXPECT_FALSE(ComputeTrafficRank(g, o).ok());
  o = TrafficRankOptions{};
  o.update_damping = 0.0;
  EXPECT_FALSE(ComputeTrafficRank(g, o).ok());
  o.update_damping = 1.5;
  EXPECT_FALSE(ComputeTrafficRank(g, o).ok());
}

TEST(TrafficRankTest, EmptyGraph) {
  CsrGraph g;
  auto r = ComputeTrafficRank(g);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_TRUE(r->scores.empty());
}

TEST(TrafficRankTest, ScoresAreDistribution) {
  Rng rng(5);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateBarabasiAlbert(300, 3, &rng).value())
                   .value();
  auto r = ComputeTrafficRank(g);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  double sum = std::accumulate(r->scores.begin(), r->scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (double s : r->scores) EXPECT_GT(s, 0.0);
}

TEST(TrafficRankTest, UniformOnSymmetricRing) {
  CsrGraph g = CsrGraph::FromEdgeList(GenerateRing(12, 2).value()).value();
  auto r = ComputeTrafficRank(g);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->converged);
  for (double s : r->scores) EXPECT_NEAR(s, 1.0 / 12.0, 1e-8);
}

TEST(TrafficRankTest, EdgelessGraphIsUniform) {
  // Only the virtual world page carries flow: every real page gets the
  // same world->page->world share.
  CsrGraph g = CsrGraph::FromEdgeList(EdgeList(5)).value();
  auto r = ComputeTrafficRank(g);
  ASSERT_TRUE(r.ok());
  for (double s : r->scores) EXPECT_NEAR(s, 0.2, 1e-9);
}

TEST(TrafficRankTest, HubAttractsTraffic) {
  CsrGraph g = CsrGraph::FromEdgeList(GenerateStar(10).value()).value();
  auto r = ComputeTrafficRank(g);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->converged);
  for (NodeId s = 1; s <= 10; ++s) {
    EXPECT_GT(r->scores[0], r->scores[s]);
  }
}

TEST(TrafficRankTest, FlowConservationHolds) {
  // Verify the defining constraint: per real page, in-flow equals
  // out-flow (within tolerance), flows reconstructed from the scores'
  // underlying multipliers via the traffic vector: through-flow was
  // accumulated from in-edges, so check it against out-edges too.
  Rng rng(11);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateCopyModel(200, 3, 0.6, &rng).value())
                   .value();
  TrafficRankOptions o;
  o.tolerance = 1e-12;
  auto r = ComputeTrafficRank(g, o);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->converged);
  // Conservation is implied by convergence of the balancing fixed
  // point; spot-check via the residual.
  EXPECT_LT(r->residual, 1e-11);
}

TEST(TrafficRankTest, CorrelatesWithPageRankOnPowerLawGraphs) {
  Rng rng(13);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateBarabasiAlbert(500, 4, &rng).value())
                   .value();
  auto traffic = ComputeTrafficRank(g);
  ASSERT_TRUE(traffic.ok());
  auto pr = ComputePageRank(g);
  ASSERT_TRUE(pr.ok());
  Result<double> rho = SpearmanCorrelation(traffic->scores, pr->scores);
  ASSERT_TRUE(rho.ok());
  // Different paradigms, same broad signal: strongly positively
  // correlated but not identical.
  EXPECT_GT(rho.value(), 0.6);
}

TEST(TrafficRankTest, DampedUpdateReachesSameFixedPoint) {
  Rng rng(17);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateBarabasiAlbert(200, 3, &rng).value())
                   .value();
  TrafficRankOptions fast;
  fast.tolerance = 1e-12;
  TrafficRankOptions damped = fast;
  damped.update_damping = 0.5;
  damped.max_iterations = 2000;
  auto a = ComputeTrafficRank(g, fast);
  auto b = ComputeTrafficRank(g, damped);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->converged);
  ASSERT_TRUE(b->converged);
  for (size_t i = 0; i < a->scores.size(); ++i) {
    EXPECT_NEAR(a->scores[i], b->scores[i], 1e-8);
  }
}

TEST(TrafficRankTest, RequireConvergenceReportsFailure) {
  Rng rng(19);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateBarabasiAlbert(200, 3, &rng).value())
                   .value();
  TrafficRankOptions o;
  o.max_iterations = 1;
  o.tolerance = 1e-15;
  o.require_convergence = true;
  auto r = ComputeTrafficRank(g, o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotConverged);
}

}  // namespace
}  // namespace qrank
