// Cross-engine agreement: Gauss-Seidel, adaptive and extrapolated
// PageRank must agree with the reference Jacobi power iteration on a
// battery of graph topologies, and must beat or match its iteration
// count where the source papers claim speedups.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <string>

#include "common/rng.h"
#include "graph/generators.h"
#include "rank/adaptive_pagerank.h"
#include "rank/extrapolation.h"
#include "rank/pagerank.h"
#include "rank/rank_vector.h"

namespace qrank {
namespace {

struct GraphCase {
  std::string name;
  CsrGraph graph;
};

std::vector<GraphCase> MakeGraphCases() {
  std::vector<GraphCase> cases;
  Rng rng(1234);
  cases.push_back(
      {"ring", CsrGraph::FromEdgeList(GenerateRing(64, 2).value()).value()});
  cases.push_back(
      {"star", CsrGraph::FromEdgeList(GenerateStar(63).value()).value()});
  cases.push_back(
      {"ba", CsrGraph::FromEdgeList(
                 GenerateBarabasiAlbert(600, 3, &rng).value())
                 .value()});
  cases.push_back(
      {"er", CsrGraph::FromEdgeList(
                 GenerateErdosRenyi(400, 0.01, &rng).value())
                 .value()});
  cases.push_back(
      {"copy", CsrGraph::FromEdgeList(
                   GenerateCopyModel(500, 4, 0.7, &rng).value())
                   .value()});
  return cases;
}

class EngineAgreementTest : public ::testing::TestWithParam<size_t> {
 protected:
  static void SetUpTestSuite() {
    cases_ = new std::vector<GraphCase>(MakeGraphCases());
  }
  static void TearDownTestSuite() {
    delete cases_;
    cases_ = nullptr;
  }
  static std::vector<GraphCase>* cases_;
};

std::vector<GraphCase>* EngineAgreementTest::cases_ = nullptr;

TEST_P(EngineAgreementTest, GaussSeidelMatchesPowerIteration) {
  const GraphCase& gc = (*cases_)[GetParam()];
  PageRankOptions o;
  o.tolerance = 1e-12;
  auto ref = ComputePageRank(gc.graph, o);
  auto gs = ComputePageRankGaussSeidel(gc.graph, o);
  ASSERT_TRUE(ref.ok()) << gc.name;
  ASSERT_TRUE(gs.ok()) << gc.name;
  EXPECT_LT(L1Distance(ref->scores, gs->scores), 1e-8) << gc.name;
}

TEST_P(EngineAgreementTest, GaussSeidelNeedsNoMoreIterations) {
  const GraphCase& gc = (*cases_)[GetParam()];
  PageRankOptions o;
  o.tolerance = 1e-10;
  auto ref = ComputePageRank(gc.graph, o);
  auto gs = ComputePageRankGaussSeidel(gc.graph, o);
  ASSERT_TRUE(ref.ok() && gs.ok());
  EXPECT_LE(gs->iterations, ref->iterations) << gc.name;
}

TEST_P(EngineAgreementTest, AdaptiveMatchesPowerIterationAtTightFreeze) {
  const GraphCase& gc = (*cases_)[GetParam()];
  AdaptivePageRankOptions o;
  o.base.tolerance = 1e-12;
  o.base.max_iterations = 2000;
  o.freeze_threshold = 1e-10;
  auto ref = ComputePageRank(gc.graph, o.base);
  auto ad = ComputeAdaptivePageRank(gc.graph, o);
  ASSERT_TRUE(ref.ok()) << gc.name;
  ASSERT_TRUE(ad.ok()) << gc.name;
  EXPECT_LT(L1Distance(ref->scores, ad->base.scores), 1e-5) << gc.name;
}

TEST_P(EngineAgreementTest, AdaptiveDefaultThresholdIsApproximatelyRight) {
  const GraphCase& gc = (*cases_)[GetParam()];
  AdaptivePageRankOptions o;  // default freeze_threshold 1e-4
  auto ref = ComputePageRank(gc.graph, o.base);
  auto ad = ComputeAdaptivePageRank(gc.graph, o);
  ASSERT_TRUE(ref.ok()) << gc.name;
  ASSERT_TRUE(ad.ok()) << gc.name;
  // Approximation error bounded by ~freeze_threshold / (1 - damping).
  EXPECT_LT(L1Distance(ref->scores, ad->base.scores), 5e-3) << gc.name;
}

TEST_P(EngineAgreementTest, AdaptiveSavesNodeUpdates) {
  const GraphCase& gc = (*cases_)[GetParam()];
  AdaptivePageRankOptions o;
  o.base.tolerance = 1e-10;
  auto ad = ComputeAdaptivePageRank(gc.graph, o);
  ASSERT_TRUE(ad.ok());
  uint64_t dense_updates =
      static_cast<uint64_t>(ad->base.iterations) * gc.graph.num_nodes();
  EXPECT_LE(ad->node_updates, dense_updates) << gc.name;
}

TEST_P(EngineAgreementTest, ExtrapolatedMatchesPowerIteration) {
  const GraphCase& gc = (*cases_)[GetParam()];
  ExtrapolatedPageRankOptions o;
  o.base.tolerance = 1e-12;
  auto ref = ComputePageRank(gc.graph, o.base);
  auto ex = ComputeExtrapolatedPageRank(gc.graph, o);
  ASSERT_TRUE(ref.ok()) << gc.name;
  ASSERT_TRUE(ex.ok()) << gc.name;
  EXPECT_LT(L1Distance(ref->scores, ex->base.scores), 1e-8) << gc.name;
}

INSTANTIATE_TEST_SUITE_P(Topologies, EngineAgreementTest,
                         ::testing::Range<size_t>(0, 5));

TEST(AdaptivePageRankTest, ValidatesOptions) {
  CsrGraph g = CsrGraph::FromEdges(2, {{0, 1}}).value();
  AdaptivePageRankOptions o;
  o.freeze_threshold = 0.0;
  EXPECT_FALSE(ComputeAdaptivePageRank(g, o).ok());
  o = AdaptivePageRankOptions{};
  o.full_sweep_period = 0;
  EXPECT_FALSE(ComputeAdaptivePageRank(g, o).ok());
}

TEST(AdaptivePageRankTest, EmptyGraph) {
  CsrGraph g;
  auto r = ComputeAdaptivePageRank(g);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->base.converged);
}

TEST(AdaptivePageRankTest, FreezesMostNodesOnPowerLawGraph) {
  Rng rng(5);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateBarabasiAlbert(2000, 3, &rng).value())
                   .value();
  AdaptivePageRankOptions o;
  o.base.tolerance = 1e-10;
  auto r = ComputeAdaptivePageRank(g, o);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->base.converged);
  // The adaptive claim: most pages converge early, so total updates are
  // well below iterations * n.
  uint64_t dense = static_cast<uint64_t>(r->base.iterations) * 2000;
  EXPECT_LT(r->node_updates, dense / 2);
  EXPECT_GT(r->frozen_at_end, 1000u);
}

TEST(ExtrapolatedPageRankTest, ValidatesPeriod) {
  CsrGraph g = CsrGraph::FromEdges(2, {{0, 1}}).value();
  ExtrapolatedPageRankOptions o;
  o.period = 3;
  EXPECT_FALSE(ComputeExtrapolatedPageRank(g, o).ok());
}

TEST(ExtrapolatedPageRankTest, AppliesExtrapolationsAtTightTolerance) {
  Rng rng(6);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateBarabasiAlbert(1000, 3, &rng).value())
                   .value();
  ExtrapolatedPageRankOptions o;
  o.base.tolerance = 1e-13;
  o.base.damping = 0.95;  // slow power iteration: extrapolation shines
  o.base.max_iterations = 500;
  auto ex = ComputeExtrapolatedPageRank(g, o);
  ASSERT_TRUE(ex.ok());
  EXPECT_TRUE(ex->base.converged);
  EXPECT_GE(ex->extrapolations_applied, 1u);

  PageRankOptions plain = o.base;
  auto ref = ComputePageRank(g, plain);
  ASSERT_TRUE(ref.ok());
  EXPECT_LE(ex->base.iterations, ref->iterations);
}

TEST(ExtrapolatedPageRankTest, ScoresRemainDistribution) {
  Rng rng(7);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateCopyModel(600, 3, 0.6, &rng).value())
                   .value();
  ExtrapolatedPageRankOptions o;
  o.base.damping = 0.9;
  auto ex = ComputeExtrapolatedPageRank(g, o);
  ASSERT_TRUE(ex.ok());
  double sum =
      std::accumulate(ex->base.scores.begin(), ex->base.scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-8);
  for (double s : ex->base.scores) EXPECT_GE(s, 0.0);
}

}  // namespace
}  // namespace qrank
