// Properties of the pull-sweep partitions (rank/pagerank_kernel.h):
// both partition schemes tile [0, n) exactly, the edge-balanced scheme
// bounds per-block work skew by one row, and — the determinism contract
// — the scheme never looks at the thread count, so scores are
// bit-identical across 1/2/4/8 threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel_for.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "rank/pagerank.h"
#include "rank/pagerank_kernel.h"

namespace qrank {
namespace {

using rank_internal::PullSweepBoundaries;

// Hub-heavy: preferential attachment concentrates in-degree on early
// nodes, the worst case for node-count-balanced blocks.
CsrGraph HubGraph(NodeId n) {
  Rng rng(1234);
  return CsrGraph::FromEdgeList(GenerateBarabasiAlbert(n, 8, &rng).value())
      .value();
}

// Row weight of the edge-balanced scheme: one gather per in-edge plus
// constant row work.
size_t RowWeight(const CsrGraph& g, NodeId i) {
  return g.in_offsets()[i + 1] - g.in_offsets()[i] + 1;
}

void CheckCoversExactly(const std::vector<size_t>& bounds, size_t n) {
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), n);
  // Non-decreasing boundaries <=> every row is in exactly one block.
  // Empty blocks are legal: a mega-hub row that outweighs several ideal
  // shares absorbs them (the empty blocks contribute zero partials and
  // keep the reduction-tree shape identical across schemes).
  for (size_t b = 1; b < bounds.size(); ++b) {
    EXPECT_LE(bounds[b - 1], bounds[b]);
  }
}

TEST(PullSweepBoundariesTest, BothSchemesTileTheRowRange) {
  const CsrGraph g = HubGraph(4096);
  g.BuildTranspose();
  for (size_t grain : {size_t{1}, size_t{7}, size_t{256}, size_t{100000}}) {
    for (SweepPartition p :
         {SweepPartition::kNodeBalanced, SweepPartition::kEdgeBalanced}) {
      CheckCoversExactly(PullSweepBoundaries(g, p, grain), g.num_nodes());
    }
  }
}

TEST(PullSweepBoundariesTest, SchemesAgreeOnBlockCount) {
  // Only the boundary *positions* may differ between schemes; the block
  // count (and hence the reduction-tree shape) is shared.
  const CsrGraph g = HubGraph(4096);
  g.BuildTranspose();
  for (size_t grain : {size_t{1}, size_t{64}, size_t{1024}}) {
    EXPECT_EQ(
        PullSweepBoundaries(g, SweepPartition::kNodeBalanced, grain).size(),
        PullSweepBoundaries(g, SweepPartition::kEdgeBalanced, grain).size());
  }
}

TEST(PullSweepBoundariesTest, EdgeBalancedSkewIsAtMostOneRow) {
  const CsrGraph g = HubGraph(8192);
  g.BuildTranspose();
  const std::vector<size_t> bounds =
      PullSweepBoundaries(g, SweepPartition::kEdgeBalanced, 64);
  const size_t blocks = bounds.size() - 1;
  size_t total = 0, max_row = 0;
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    total += RowWeight(g, i);
    max_row = std::max(max_row, RowWeight(g, i));
  }
  for (size_t b = 0; b < blocks; ++b) {
    size_t weight = 0;
    for (size_t i = bounds[b]; i < bounds[b + 1]; ++i) {
      weight += RowWeight(g, static_cast<NodeId>(i));
    }
    // Each block carries at most the ideal share plus one row: the
    // binary-searched boundary overshoots its target by < one row
    // weight, and successive targets differ by <= ceil(total/blocks).
    EXPECT_LE(weight, total / blocks + max_row + 1) << "block " << b;
  }
}

TEST(PullSweepBoundariesTest, EdgeBalancedBeatsNodeBalancedOnSkew) {
  // On a hub-heavy graph the node-balanced scheme's heaviest block
  // carries a large multiple of the ideal share; edge-balancing is the
  // point of the feature, so require it to actually balance.
  const CsrGraph g = HubGraph(8192);
  g.BuildTranspose();
  auto max_block_weight = [&g](const std::vector<size_t>& bounds) {
    size_t worst = 0;
    for (size_t b = 0; b + 1 < bounds.size(); ++b) {
      size_t weight = 0;
      for (size_t i = bounds[b]; i < bounds[b + 1]; ++i) {
        weight += RowWeight(g, static_cast<NodeId>(i));
      }
      worst = std::max(worst, weight);
    }
    return worst;
  };
  const size_t node_worst = max_block_weight(
      PullSweepBoundaries(g, SweepPartition::kNodeBalanced, 64));
  const size_t edge_worst = max_block_weight(
      PullSweepBoundaries(g, SweepPartition::kEdgeBalanced, 64));
  EXPECT_LT(edge_worst, node_worst);
}

TEST(PartitionDeterminismTest, ScoresBitIdenticalAcrossThreadCounts) {
  const CsrGraph g = HubGraph(4096);
  PageRankOptions o;
  o.tolerance = 1e-12;
  o.max_iterations = 200;
  for (SweepPartition p :
       {SweepPartition::kNodeBalanced, SweepPartition::kEdgeBalanced}) {
    o.partition = p;
    o.num_threads = 1;
    const std::vector<double> reference = ComputePageRank(g, o)->scores;
    for (int threads : {2, 4, 8}) {
      o.num_threads = threads;
      const std::vector<double> scores = ComputePageRank(g, o)->scores;
      ASSERT_EQ(scores.size(), reference.size());
      for (size_t i = 0; i < scores.size(); ++i) {
        ASSERT_EQ(scores[i], reference[i])
            << "node " << i << " at " << threads << " threads";
      }
    }
  }
}

TEST(PartitionDeterminismTest, PartitionsAgreeOnTheFixedPoint) {
  // Different partitions fold the dangling/residual reductions in a
  // different block order, so bits may differ — but only through the
  // dangling redistribution, which is tolerance-bounded.
  const CsrGraph g = HubGraph(4096);
  PageRankOptions o;
  // 1e-13, not tighter: the audit-level-2 residual re-check allows one
  // recomputed sweep to move the vector by 2x tolerance, and at 1e-14
  // recomputation rounding alone exceeds that margin.
  o.tolerance = 1e-13;
  o.max_iterations = 500;
  o.partition = SweepPartition::kNodeBalanced;
  const std::vector<double> node = ComputePageRank(g, o)->scores;
  o.partition = SweepPartition::kEdgeBalanced;
  const std::vector<double> edge = ComputePageRank(g, o)->scores;
  for (size_t i = 0; i < node.size(); ++i) {
    EXPECT_NEAR(node[i], edge[i], 1e-12);
  }
}

TEST(ReorderedSolveTest, MatchesIdentityWithinTolerance) {
  // The acceptance contract: solving on a BFS-reordered graph and
  // mapping back through the permutation agrees with the untouched
  // solve to 1e-12 L-infinity.
  Rng rng(5);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateSiteClustered(24, 40, 4, 3, &rng).value())
                   .value();
  PageRankOptions o;
  o.tolerance = 1e-13;  // See PartitionsAgreeOnTheFixedPoint.
  o.max_iterations = 500;
  o.num_threads = 4;
  const std::vector<double> base = ComputePageRank(g, o)->scores;
  for (NodeOrdering ordering :
       {NodeOrdering::kDegreeDescending, NodeOrdering::kBfsLocality}) {
    const ReorderedGraph r = ReorderGraph(g, ordering).value();
    const std::vector<double> remapped =
        RemapToOriginal(ComputePageRank(r.graph, o)->scores, r.perm);
    double linf = 0.0;
    for (size_t i = 0; i < base.size(); ++i) {
      linf = std::max(linf, std::fabs(remapped[i] - base[i]));
    }
    EXPECT_LE(linf, 1e-12) << NodeOrderingName(ordering);
  }
}

}  // namespace
}  // namespace qrank
