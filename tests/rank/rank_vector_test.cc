#include "rank/rank_vector.h"

#include <gtest/gtest.h>

namespace qrank {
namespace {

TEST(L1Test, DistanceAndNorm) {
  EXPECT_DOUBLE_EQ(L1Distance({1.0, 2.0}, {0.5, 3.0}), 1.5);
  EXPECT_DOUBLE_EQ(L1Distance({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(L1Norm({-1.0, 2.0, -3.0}), 6.0);
}

TEST(NormalizeSumTest, ScalesToTarget) {
  std::vector<double> v = {1.0, 3.0};
  NormalizeSum(&v, 1.0);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
  NormalizeSum(&v, 8.0);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
  EXPECT_DOUBLE_EQ(v[1], 6.0);
}

TEST(NormalizeSumTest, ZeroSumIsNoOp) {
  std::vector<double> v = {0.0, 0.0};
  NormalizeSum(&v, 1.0);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
}

TEST(TopKTest, ReturnsDescendingByScore) {
  std::vector<double> scores = {0.1, 0.9, 0.5, 0.7};
  std::vector<NodeId> top = TopK(scores, 3);
  EXPECT_EQ(top, (std::vector<NodeId>{1, 3, 2}));
}

TEST(TopKTest, TiesBrokenByLowerId) {
  std::vector<double> scores = {0.5, 0.9, 0.5, 0.5};
  std::vector<NodeId> top = TopK(scores, 4);
  EXPECT_EQ(top, (std::vector<NodeId>{1, 0, 2, 3}));
}

TEST(TopKTest, KLargerThanSizeClamped) {
  std::vector<double> scores = {0.5, 0.9};
  EXPECT_EQ(TopK(scores, 10).size(), 2u);
  EXPECT_TRUE(TopK({}, 3).empty());
  EXPECT_TRUE(TopK(scores, 0).empty());
}

TEST(DenseRanksTest, BestGetsRankZero) {
  std::vector<double> scores = {0.1, 0.9, 0.5};
  std::vector<uint32_t> ranks = DenseRanks(scores);
  EXPECT_EQ(ranks[1], 0u);
  EXPECT_EQ(ranks[2], 1u);
  EXPECT_EQ(ranks[0], 2u);
}

TEST(DenseRanksTest, TiesDeterministicByIdOrder) {
  std::vector<double> scores = {0.5, 0.5};
  std::vector<uint32_t> ranks = DenseRanks(scores);
  EXPECT_EQ(ranks[0], 0u);
  EXPECT_EQ(ranks[1], 1u);
}

}  // namespace
}  // namespace qrank
