#include "rank/topic_sensitive.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "rank/rank_vector.h"

namespace qrank {
namespace {

// Two loosely-connected communities: pages [0, 10) and [10, 20), linked
// internally in rings with one bridge each way.
CsrGraph TwoCommunities() {
  EdgeList e(20);
  for (NodeId u = 0; u < 10; ++u) e.Add(u, (u + 1) % 10);
  for (NodeId u = 10; u < 20; ++u) e.Add(u, 10 + (u + 1 - 10) % 10);
  e.Add(0, 10);
  e.Add(10, 0);
  return CsrGraph::FromEdgeList(e).value();
}

std::vector<TopicSpec> TwoTopics() {
  TopicSpec a{"alpha", {0, 1, 2, 3, 4}};
  TopicSpec b{"beta", {10, 11, 12, 13, 14}};
  return {a, b};
}

TEST(TopicSensitiveTest, ValidatesInput) {
  CsrGraph g = TwoCommunities();
  EXPECT_FALSE(TopicSensitivePageRank::Create(g, {}).ok());
  TopicSpec empty{"empty", {}};
  EXPECT_FALSE(TopicSensitivePageRank::Create(g, {empty}).ok());
  TopicSpec oob{"oob", {99}};
  EXPECT_FALSE(TopicSensitivePageRank::Create(g, {oob}).ok());
  PageRankOptions o;
  o.personalization = std::vector<double>(20, 1.0);
  EXPECT_FALSE(TopicSensitivePageRank::Create(g, TwoTopics(), o).ok());
}

TEST(TopicSensitiveTest, BasisVectorsBiasTowardTopic) {
  CsrGraph g = TwoCommunities();
  auto tspr = TopicSensitivePageRank::Create(g, TwoTopics()).value();
  ASSERT_EQ(tspr.num_topics(), 2u);
  EXPECT_EQ(tspr.topic_name(0), "alpha");

  const std::vector<double>& alpha = tspr.BasisVector(0);
  const std::vector<double>& beta = tspr.BasisVector(1);
  // Mass concentrates in the topic's community.
  double alpha_mass_low = 0.0, beta_mass_low = 0.0;
  for (NodeId p = 0; p < 10; ++p) {
    alpha_mass_low += alpha[p];
    beta_mass_low += beta[p];
  }
  EXPECT_GT(alpha_mass_low, 0.8);
  EXPECT_LT(beta_mass_low, 0.2);
}

TEST(TopicSensitiveTest, PureBlendEqualsBasisVector) {
  CsrGraph g = TwoCommunities();
  auto tspr = TopicSensitivePageRank::Create(g, TwoTopics()).value();
  std::vector<double> blend = tspr.Blend({1.0, 0.0}).value();
  const std::vector<double>& basis = tspr.BasisVector(0);
  for (size_t i = 0; i < blend.size(); ++i) {
    EXPECT_NEAR(blend[i], basis[i], 1e-15);
  }
}

TEST(TopicSensitiveTest, BlendIsLinearInWeights) {
  // Linearity of PageRank in the teleport vector: blending basis
  // vectors equals PageRank personalized on the blended teleport set.
  CsrGraph g = TwoCommunities();
  auto tspr = TopicSensitivePageRank::Create(g, TwoTopics()).value();
  std::vector<double> blend = tspr.Blend({0.3, 0.7}).value();

  PageRankOptions direct;
  direct.personalization.assign(20, 0.0);
  for (NodeId p : {0, 1, 2, 3, 4}) {
    direct.personalization[p] = 0.3 / 5.0;
  }
  for (NodeId p : {10, 11, 12, 13, 14}) {
    direct.personalization[p] = 0.7 / 5.0;
  }
  std::vector<double> reference = ComputePageRank(g, direct)->scores;
  EXPECT_LT(L1Distance(blend, reference), 1e-7);
}

TEST(TopicSensitiveTest, BlendValidatesWeights) {
  CsrGraph g = TwoCommunities();
  auto tspr = TopicSensitivePageRank::Create(g, TwoTopics()).value();
  EXPECT_FALSE(tspr.Blend({1.0}).ok());
  EXPECT_FALSE(tspr.Blend({0.0, 0.0}).ok());
  EXPECT_FALSE(tspr.Blend({-1.0, 2.0}).ok());
}

TEST(TopicSensitiveTest, WeightsNormalizedInternally) {
  CsrGraph g = TwoCommunities();
  auto tspr = TopicSensitivePageRank::Create(g, TwoTopics()).value();
  std::vector<double> a = tspr.Blend({1.0, 3.0}).value();
  std::vector<double> b = tspr.Blend({10.0, 30.0}).value();
  EXPECT_LT(L1Distance(a, b), 1e-12);
}

TEST(TopicSensitiveTest, WorksOnGeneratedGraph) {
  Rng rng(5);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateBarabasiAlbert(200, 3, &rng).value())
                   .value();
  TopicSpec t0{"even", {}};
  TopicSpec t1{"first", {0, 1, 2}};
  for (NodeId p = 0; p < 200; p += 2) t0.seed_pages.push_back(p);
  auto tspr = TopicSensitivePageRank::Create(g, {t0, t1}).value();
  std::vector<double> blend = tspr.Blend({0.5, 0.5}).value();
  double sum = 0.0;
  for (double v : blend) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace qrank
