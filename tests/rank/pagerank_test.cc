#include "rank/pagerank.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "graph/generators.h"

namespace qrank {
namespace {

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(PageRankTest, EmptyGraphGivesEmptyScores) {
  CsrGraph g;
  Result<PageRankResult> r = ComputePageRank(g);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->scores.empty());
  EXPECT_TRUE(r->converged);
}

TEST(PageRankTest, ValidatesOptions) {
  CsrGraph g = CsrGraph::FromEdges(2, {{0, 1}}).value();
  PageRankOptions o;
  o.damping = 1.0;
  EXPECT_FALSE(ComputePageRank(g, o).ok());
  o = PageRankOptions{};
  o.damping = -0.1;
  EXPECT_FALSE(ComputePageRank(g, o).ok());
  o = PageRankOptions{};
  o.tolerance = 0.0;
  EXPECT_FALSE(ComputePageRank(g, o).ok());
  o = PageRankOptions{};
  o.max_iterations = 0;
  EXPECT_FALSE(ComputePageRank(g, o).ok());
  o = PageRankOptions{};
  o.personalization = {1.0};  // wrong size
  EXPECT_FALSE(ComputePageRank(g, o).ok());
  o.personalization = {0.0, 0.0};  // all zero
  EXPECT_FALSE(ComputePageRank(g, o).ok());
  o.personalization = {-1.0, 2.0};  // negative
  EXPECT_FALSE(ComputePageRank(g, o).ok());
}

TEST(PageRankTest, ScoresFormDistribution) {
  Rng rng(1);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateBarabasiAlbert(500, 3, &rng).value())
                   .value();
  Result<PageRankResult> r = ComputePageRank(g);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_NEAR(Sum(r->scores), 1.0, 1e-9);
  for (double s : r->scores) EXPECT_GT(s, 0.0);
}

TEST(PageRankTest, TotalMassNScaling) {
  CsrGraph g = CsrGraph::FromEdgeList(GenerateRing(10, 1).value()).value();
  PageRankOptions o;
  o.scale = ScaleConvention::kTotalMassN;
  Result<PageRankResult> r = ComputePageRank(g, o);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(Sum(r->scores), 10.0, 1e-8);
  // The ring is vertex-transitive: every page has PageRank exactly 1,
  // the paper's "initial value" fixed point.
  for (double s : r->scores) EXPECT_NEAR(s, 1.0, 1e-10);
}

TEST(PageRankTest, UniformOnRegularRing) {
  CsrGraph g = CsrGraph::FromEdgeList(GenerateRing(17, 3).value()).value();
  Result<PageRankResult> r = ComputePageRank(g);
  ASSERT_TRUE(r.ok());
  for (double s : r->scores) EXPECT_NEAR(s, 1.0 / 17.0, 1e-12);
}

TEST(PageRankTest, TwoNodeCycleAnalytic) {
  CsrGraph g = CsrGraph::FromEdges(2, {{0, 1}, {1, 0}}).value();
  Result<PageRankResult> r = ComputePageRank(g);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->scores[0], 0.5, 1e-12);
  EXPECT_NEAR(r->scores[1], 0.5, 1e-12);
}

TEST(PageRankTest, ChainAnalyticValues) {
  // 0 -> 1 with damping a: x0 = (1-a)/2 + a*x_dangling_share...
  // Use the closed form for the 2-node graph 0->1 where 1 is dangling:
  // dangling mass redistributes uniformly. Let v = 1/2.
  //   x0 = (1-a)/2 + a*x1/2
  //   x1 = (1-a)/2 + a*x0 + a*x1/2
  // Solve with a = 0.85.
  CsrGraph g = CsrGraph::FromEdges(2, {{0, 1}}).value();
  PageRankOptions o;
  o.tolerance = 1e-14;
  Result<PageRankResult> r = ComputePageRank(g, o);
  ASSERT_TRUE(r.ok());
  const double a = 0.85;
  // From the equations: x0 = (1-a)/2 + a/2 * x1; x0 + x1 = 1.
  double x0 = (1.0 - a / 2.0) / 2.0 / (1.0 - a / 2.0 + a / 2.0);
  // Direct algebra: x0 = ((1-a)/2 + a/2) / (1 + a/2)?  Verify
  // numerically instead: substitute x1 = 1 - x0 into the first equation:
  // x0 = (1-a)/2 + a(1-x0)/2  =>  x0 (1 + a/2) = 1/2  => x0 = 1/(2+a).
  x0 = 1.0 / (2.0 + a);
  EXPECT_NEAR(r->scores[0], x0, 1e-10);
  EXPECT_NEAR(r->scores[1], 1.0 - x0, 1e-10);
}

TEST(PageRankTest, StarHubDominates) {
  CsrGraph g = CsrGraph::FromEdgeList(GenerateStar(20).value()).value();
  Result<PageRankResult> r = ComputePageRank(g);
  ASSERT_TRUE(r.ok());
  for (NodeId s = 1; s <= 20; ++s) {
    EXPECT_GT(r->scores[0], 5.0 * r->scores[s]);
  }
  EXPECT_NEAR(Sum(r->scores), 1.0, 1e-9);
}

TEST(PageRankTest, DanglingMassIsConserved) {
  // Graph with many dangling nodes: star (hub dangles) plus isolated
  // dangling nodes.
  EdgeList e(10);
  e.Add(1, 0);
  e.Add(2, 0);
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  Result<PageRankResult> r = ComputePageRank(g);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(Sum(r->scores), 1.0, 1e-9);
}

TEST(PageRankTest, ZeroDampingGivesTeleportDistribution) {
  CsrGraph g = CsrGraph::FromEdges(3, {{0, 1}, {1, 2}}).value();
  PageRankOptions o;
  o.damping = 0.0;
  Result<PageRankResult> r = ComputePageRank(g, o);
  ASSERT_TRUE(r.ok());
  for (double s : r->scores) EXPECT_NEAR(s, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(r->iterations, 1u);
}

TEST(PageRankTest, PersonalizationShiftsMass) {
  CsrGraph g = CsrGraph::FromEdges(3, {{0, 1}, {1, 0}, {2, 0}}).value();
  PageRankOptions uniform;
  PageRankOptions biased;
  biased.personalization = {0.0, 0.0, 1.0};
  double uniform_s2 = ComputePageRank(g, uniform)->scores[2];
  double biased_s2 = ComputePageRank(g, biased)->scores[2];
  EXPECT_GT(biased_s2, 2.0 * uniform_s2);
}

TEST(PageRankTest, PersonalizationIsNormalizedInternally) {
  CsrGraph g = CsrGraph::FromEdges(2, {{0, 1}, {1, 0}}).value();
  PageRankOptions a, b;
  a.personalization = {1.0, 3.0};
  b.personalization = {10.0, 30.0};
  auto ra = ComputePageRank(g, a);
  auto rb = ComputePageRank(g, b);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_NEAR(ra->scores[0], rb->scores[0], 1e-12);
}

TEST(PageRankTest, RequireConvergenceReportsNotConverged) {
  Rng rng(2);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateBarabasiAlbert(200, 3, &rng).value())
                   .value();
  PageRankOptions o;
  o.max_iterations = 2;
  o.tolerance = 1e-15;
  o.require_convergence = true;
  Result<PageRankResult> r = ComputePageRank(g, o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotConverged);

  o.require_convergence = false;
  r = ComputePageRank(g, o);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->converged);
  EXPECT_EQ(r->iterations, 2u);
}

TEST(PageRankTest, HigherInDegreeHigherRank) {
  // 3 satellites point at 0; 1 satellite points at 1.
  CsrGraph g =
      CsrGraph::FromEdges(6, {{2, 0}, {3, 0}, {4, 0}, {5, 1}}).value();
  Result<PageRankResult> r = ComputePageRank(g);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->scores[0], r->scores[1]);
  EXPECT_GT(r->scores[1], r->scores[2]);
}

TEST(PageRankTest, LinkFromImportantPageWorthMore) {
  // Two receivers: node 10 is linked by a hub (itself heavily linked),
  // node 11 is linked by a leaf. Both receivers have in-degree 1.
  EdgeList e(12);
  for (NodeId s = 0; s < 8; ++s) e.Add(s, 8);  // 8 is the hub
  e.Add(8, 10);
  e.Add(9, 11);
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  Result<PageRankResult> r = ComputePageRank(g);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->scores[10], 2.0 * r->scores[11]);
}

TEST(PageRankTest, WarmStartValidation) {
  CsrGraph g = CsrGraph::FromEdges(2, {{0, 1}, {1, 0}}).value();
  PageRankOptions o;
  o.initial_scores = {1.0};  // wrong size
  EXPECT_FALSE(ComputePageRank(g, o).ok());
  o.initial_scores = {0.0, 0.0};  // all zero
  EXPECT_FALSE(ComputePageRank(g, o).ok());
  o.initial_scores = {-1.0, 2.0};  // negative
  EXPECT_FALSE(ComputePageRank(g, o).ok());
}

TEST(PageRankTest, WarmStartFromSolutionConvergesImmediately) {
  Rng rng(55);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateBarabasiAlbert(300, 3, &rng).value())
                   .value();
  PageRankOptions o;
  o.tolerance = 1e-10;
  auto cold = ComputePageRank(g, o);
  ASSERT_TRUE(cold.ok());
  o.initial_scores = cold->scores;
  auto warm = ComputePageRank(g, o);
  ASSERT_TRUE(warm.ok());
  EXPECT_LE(warm->iterations, 2u);
  // Same fixed point regardless of start.
  double dist = 0.0;
  for (size_t i = 0; i < warm->scores.size(); ++i) {
    dist += std::fabs(warm->scores[i] - cold->scores[i]);
  }
  EXPECT_LT(dist, 1e-9);
}

TEST(PageRankTest, WarmStartScaleIsIrrelevant) {
  CsrGraph g = CsrGraph::FromEdges(3, {{0, 1}, {1, 2}, {2, 0}}).value();
  PageRankOptions a, b;
  a.initial_scores = {1.0, 2.0, 3.0};
  b.initial_scores = {10.0, 20.0, 30.0};
  auto ra = ComputePageRank(g, a);
  auto rb = ComputePageRank(g, b);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->iterations, rb->iterations);
}

class PageRankDampingTest : public ::testing::TestWithParam<double> {};

TEST_P(PageRankDampingTest, DistributionInvariantAcrossDamping) {
  Rng rng(33);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateCopyModel(400, 4, 0.6, &rng).value())
                   .value();
  PageRankOptions o;
  o.damping = GetParam();
  Result<PageRankResult> r = ComputePageRank(g, o);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_NEAR(Sum(r->scores), 1.0, 1e-8);
  double min_score = *std::min_element(r->scores.begin(), r->scores.end());
  // Teleport floor: every page gets at least (1-damping)/n.
  EXPECT_GE(min_score, (1.0 - GetParam()) / 400.0 - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Damping, PageRankDampingTest,
                         ::testing::Values(0.0, 0.3, 0.5, 0.85, 0.95, 0.99));

}  // namespace
}  // namespace qrank
