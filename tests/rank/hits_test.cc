#include "rank/hits.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "graph/generators.h"

namespace qrank {
namespace {

double L2Norm(const std::vector<double>& v) {
  double ss = 0.0;
  for (double x : v) ss += x * x;
  return std::sqrt(ss);
}

TEST(HitsTest, EmptyGraph) {
  CsrGraph g;
  auto r = ComputeHits(g);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_TRUE(r->authority.empty());
}

TEST(HitsTest, EdgelessGraphAllZero) {
  CsrGraph g = CsrGraph::FromEdgeList(EdgeList(5)).value();
  auto r = ComputeHits(g);
  ASSERT_TRUE(r.ok());
  for (double a : r->authority) EXPECT_EQ(a, 0.0);
  for (double h : r->hub) EXPECT_EQ(h, 0.0);
}

TEST(HitsTest, ValidatesOptions) {
  CsrGraph g = CsrGraph::FromEdges(2, {{0, 1}}).value();
  HitsOptions o;
  o.tolerance = 0.0;
  EXPECT_FALSE(ComputeHits(g, o).ok());
  o = HitsOptions{};
  o.max_iterations = 0;
  EXPECT_FALSE(ComputeHits(g, o).ok());
}

TEST(HitsTest, StarSeparatesHubsFromAuthorities) {
  // Satellites 1..5 all point at node 0: node 0 is the pure authority,
  // satellites are pure hubs.
  CsrGraph g = CsrGraph::FromEdgeList(GenerateStar(5).value()).value();
  auto r = ComputeHits(g);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_NEAR(r->authority[0], 1.0, 1e-9);
  EXPECT_NEAR(r->hub[0], 0.0, 1e-9);
  for (NodeId s = 1; s <= 5; ++s) {
    EXPECT_NEAR(r->authority[s], 0.0, 1e-9);
    EXPECT_NEAR(r->hub[s], 1.0 / std::sqrt(5.0), 1e-9);
  }
}

TEST(HitsTest, VectorsAreL2Normalized) {
  Rng rng(3);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateBarabasiAlbert(300, 3, &rng).value())
                   .value();
  auto r = ComputeHits(g);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(L2Norm(r->authority), 1.0, 1e-9);
  EXPECT_NEAR(L2Norm(r->hub), 1.0, 1e-9);
}

TEST(HitsTest, BipartiteCommunityDominates) {
  // Dense community: hubs {0,1,2} -> authorities {3,4}; plus a weak
  // stray edge 5 -> 6.
  EdgeList e(7);
  for (NodeId h = 0; h < 3; ++h) {
    e.Add(h, 3);
    e.Add(h, 4);
  }
  e.Add(5, 6);
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  auto r = ComputeHits(g);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->authority[3], 10.0 * r->authority[6]);
  EXPECT_GT(r->hub[0], 10.0 * r->hub[5]);
}

TEST(HitsTest, MoreInLinksFromHubsMeansMoreAuthority) {
  EdgeList e(6);
  e.Add(0, 4);
  e.Add(1, 4);
  e.Add(2, 4);
  e.Add(0, 5);
  CsrGraph g = CsrGraph::FromEdgeList(e).value();
  auto r = ComputeHits(g);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->authority[4], r->authority[5]);
}

TEST(HitsTest, RequireConvergenceErrorsWhenCapped) {
  Rng rng(9);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateBarabasiAlbert(300, 3, &rng).value())
                   .value();
  HitsOptions o;
  o.max_iterations = 1;
  o.tolerance = 1e-15;
  o.require_convergence = true;
  auto r = ComputeHits(g, o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotConverged);
}

}  // namespace
}  // namespace qrank
