// Equivalence suite for the SIMD pull-sweep variants and the compressed
// (decode-on-the-fly) pull path, against the scalar oracle
// (DESIGN.md §5g):
//   - AVX2: bit-exact vs scalar — the accumulator is the scalar
//     4-accumulator fold with p0..p3 as the four lanes of one __m256d.
//   - AVX-512: a different fold association; <= 1e-14 per-element bound
//     on mass-1 scores, every generator, thread count and partition.
//   - Compressed: the shared fused decode+accumulate uses the scalar
//     fold, so compressed scores are bit-exact vs scalar raw for EVERY
//     variant.
// Variants that the host (or build, or QRANK_FORCE_SIMD_LEVEL) cannot
// dispatch resolve to a lower level; those cases degenerate to
// scalar-vs-scalar and pass trivially, so the suite is safe on any CPU
// while exercising the full matrix on AVX-capable ones.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "core/snapshot_series.h"
#include "graph/generators.h"
#include "graph/graph_delta.h"
#include "rank/delta_pagerank.h"
#include "rank/pagerank.h"
#include "rank/sweep_ops.h"

namespace qrank {
namespace {

// Per-element bound for the AVX-512 fold (DESIGN.md §5g): each pull is
// a re-association of deg(i) addends, so its error is O(deg * eps *
// pull) and the iteration contracts the accumulated drift to
// ~alpha/(1-alpha) times one sweep's worth. A hub with in-degree in
// the hundreds and a ~0.15 score lands near 2e-15; 1e-14 holds that
// with ~5x margin across every generator here.
constexpr double kAvx512Tolerance = 1e-14;

const int kThreadCounts[] = {1, 2, 4, 8};
const SweepPartition kPartitions[] = {SweepPartition::kNodeBalanced,
                                      SweepPartition::kEdgeBalanced};

struct NamedGraph {
  std::string name;
  CsrGraph graph;
};

// One instance of every generator family, sized to cross the parallel
// grain with several blocks while staying fast under sanitizers.
std::vector<NamedGraph> TestGraphs() {
  std::vector<NamedGraph> graphs;
  {
    Rng rng(11);
    graphs.push_back(
        {"barabasi_albert",
         CsrGraph::FromEdgeList(GenerateBarabasiAlbert(4000, 6, &rng).value())
             .value()});
  }
  {
    Rng rng(12);
    // Sparse enough to leave dangling nodes.
    graphs.push_back(
        {"erdos_renyi",
         CsrGraph::FromEdgeList(GenerateErdosRenyi(1500, 0.002, &rng).value())
             .value()});
  }
  {
    Rng rng(13);
    graphs.push_back(
        {"copy_model",
         CsrGraph::FromEdgeList(
             GenerateCopyModel(3000, 5, 0.5, &rng).value())
             .value()});
  }
  {
    Rng rng(14);
    graphs.push_back(
        {"site_clustered",
         CsrGraph::FromEdgeList(
             GenerateSiteClustered(40, 50, 8, 4, &rng).value())
             .value()});
  }
  {
    Rng rng(15);
    graphs.push_back(
        {"quality_seeded",
         CsrGraph::FromEdgeList(
             GenerateQualitySeeded(2500, 5, 2.0, 5.0, 2.0, &rng)
                 .value()
                 .edges)
             .value()});
  }
  graphs.push_back(
      {"ring", CsrGraph::FromEdgeList(GenerateRing(500, 3).value()).value()});
  graphs.push_back(
      {"star",
       CsrGraph::FromEdgeList(GenerateStar(400).value()).value()});
  return graphs;
}

// Fixed work for the kernel-equivalence runs: a tolerance-based stop
// would couple the comparison to the convergence test — a residual
// landing within one ulp of the threshold could legally shift the
// AVX-512 iteration count by one and smear the per-element bound into
// a residual-sized difference.
PageRankOptions FixedWorkOptions() {
  PageRankOptions o;
  o.tolerance = 1e-300;  // never met
  o.max_iterations = 60;
  return o;
}

// True when `variant` actually resolves to a different fold than the
// scalar oracle on this host/build (i.e. AVX-512 dispatched).
bool ResolvesToAvx512(KernelVariant variant) {
  return rank_internal::KernelVariantLevel(variant) == SimdLevel::kAvx512;
}

void ExpectEquivalent(const NamedGraph& g, KernelVariant variant,
                      bool compressed) {
  // Compressed rows always run the scalar fold; raw AVX-512 is the one
  // combination allowed the documented tolerance.
  const bool exact = compressed || !ResolvesToAvx512(variant);
  for (SweepPartition partition : kPartitions) {
    // The residual reduction tree follows the block boundaries, which
    // the partition mode moves — so the scalar oracle must share the
    // partition for residual/iteration equality to be meaningful.
    PageRankOptions scalar_options = FixedWorkOptions();
    scalar_options.partition = partition;
    scalar_options.num_threads = 1;
    const Result<PageRankResult> oracle =
        ComputePageRank(g.graph, scalar_options);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    for (int threads : kThreadCounts) {
      SCOPED_TRACE(g.name + " variant=" + KernelVariantName(variant) +
                   (compressed ? " compressed" : " raw") + " partition=" +
                   (partition == SweepPartition::kNodeBalanced ? "node"
                                                               : "edge") +
                   " threads=" + std::to_string(threads));
      PageRankOptions o = FixedWorkOptions();
      o.kernel = variant;
      o.use_compressed_transpose = compressed;
      o.partition = partition;
      o.num_threads = threads;
      const Result<PageRankResult> r = ComputePageRank(g.graph, o);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ASSERT_EQ(r->scores.size(), oracle->scores.size());
      if (exact) {
        EXPECT_EQ(r->iterations, oracle->iterations);
        EXPECT_EQ(r->residual, oracle->residual);
        for (size_t i = 0; i < r->scores.size(); ++i) {
          ASSERT_EQ(r->scores[i], oracle->scores[i]) << "node " << i;
        }
      } else {
        for (size_t i = 0; i < r->scores.size(); ++i) {
          ASSERT_NEAR(r->scores[i], oracle->scores[i], kAvx512Tolerance)
              << "node " << i;
        }
      }
    }
  }
}

TEST(SimdEquivalenceTest, Avx2BitExactOnAllGenerators) {
  for (const NamedGraph& g : TestGraphs()) {
    ExpectEquivalent(g, KernelVariant::kAvx2, /*compressed=*/false);
  }
}

TEST(SimdEquivalenceTest, Avx512WithinToleranceOnAllGenerators) {
  for (const NamedGraph& g : TestGraphs()) {
    ExpectEquivalent(g, KernelVariant::kAvx512, /*compressed=*/false);
  }
}

TEST(SimdEquivalenceTest, BestSimdOnAllGenerators) {
  for (const NamedGraph& g : TestGraphs()) {
    ExpectEquivalent(g, KernelVariant::kSimd, /*compressed=*/false);
  }
}

TEST(SimdEquivalenceTest, CompressedBitExactForEveryVariant) {
  for (const NamedGraph& g : TestGraphs()) {
    for (KernelVariant variant :
         {KernelVariant::kScalar, KernelVariant::kAvx2, KernelVariant::kAvx512,
          KernelVariant::kSimd}) {
      ExpectEquivalent(g, variant, /*compressed=*/true);
    }
  }
}

TEST(SimdEquivalenceTest, ScalarRequestNeverDispatchesSimd) {
  // kScalar is the default and the oracle: requesting it must resolve
  // to the scalar fold even on AVX-capable hosts.
  EXPECT_EQ(rank_internal::KernelVariantLevel(KernelVariant::kScalar),
            SimdLevel::kScalar);
}

TEST(SimdEquivalenceTest, VariantNamesRoundTrip) {
  for (KernelVariant v : {KernelVariant::kScalar, KernelVariant::kSimd,
                          KernelVariant::kAvx2, KernelVariant::kAvx512}) {
    KernelVariant parsed;
    ASSERT_TRUE(ParseKernelVariant(KernelVariantName(v), &parsed));
    EXPECT_EQ(parsed, v);
  }
  KernelVariant parsed;
  EXPECT_FALSE(ParseKernelVariant("sse2", &parsed));
}

TEST(SimdEquivalenceTest, WarmStartMatchesScalarWarmStart) {
  // SnapshotSeries warm-start mode: the second solve starts from the
  // first solve's scores. SIMD must agree with scalar along the whole
  // warm-started trajectory, not just from the uniform start.
  Rng rng(21);
  CsrGraph g =
      CsrGraph::FromEdgeList(GenerateBarabasiAlbert(3000, 5, &rng).value())
          .value();
  PageRankOptions cold_options;
  cold_options.tolerance = 1e-10;
  const PageRankResult cold = ComputePageRank(g, cold_options).value();

  PageRankOptions scalar_options = FixedWorkOptions();
  scalar_options.max_iterations = 30;
  scalar_options.initial_scores = cold.scores;
  const PageRankResult warm_scalar =
      ComputePageRank(g, scalar_options).value();

  for (bool compressed : {false, true}) {
    PageRankOptions o = scalar_options;
    o.kernel = KernelVariant::kSimd;
    o.use_compressed_transpose = compressed;
    const PageRankResult warm_simd = ComputePageRank(g, o).value();
    ASSERT_EQ(warm_simd.scores.size(), warm_scalar.scores.size());
    const bool exact = compressed || !ResolvesToAvx512(KernelVariant::kSimd);
    for (size_t i = 0; i < warm_simd.scores.size(); ++i) {
      if (exact) {
        ASSERT_EQ(warm_simd.scores[i], warm_scalar.scores[i]) << "node " << i;
      } else {
        ASSERT_NEAR(warm_simd.scores[i], warm_scalar.scores[i],
                    kAvx512Tolerance)
            << "node " << i;
      }
    }
  }
}

TEST(SimdEquivalenceTest, DeltaEngineCompressedMatchesRaw) {
  // The incremental engine routes per-row pulls through the dispatched
  // row_pull/compressed_row_pull pointers; compressed rows must
  // reproduce the raw-row solve bit-for-bit (both run the scalar fold).
  Rng rng(31);
  CsrGraph g0 =
      CsrGraph::FromEdgeList(GenerateBarabasiAlbert(2000, 5, &rng).value())
          .value();
  // Tolerance-based stop is safe here: every run below uses the scalar
  // fold, so trajectories are float-identical and stop together.
  PageRankOptions base;
  base.tolerance = 1e-11;
  const PageRankResult r0 = ComputePageRank(g0, base).value();

  std::vector<Edge> edges;
  for (NodeId u = 0; u < g0.num_nodes(); ++u) {
    for (NodeId v : g0.OutNeighbors(u)) edges.push_back({u, v});
  }
  for (int k = 0; k < 30; ++k) {
    NodeId u = static_cast<NodeId>(rng.UniformUint64(g0.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.UniformUint64(g0.num_nodes()));
    if (u != v) edges.push_back({u, v});
  }
  CsrGraph g1 = CsrGraph::FromEdges(g0.num_nodes(), edges).value();
  const GraphDelta delta = GraphDelta::Between(g0, g1);
  const std::vector<uint8_t> frontier = delta.DirtyFrontier(g1);

  DeltaPageRankOptions options;
  options.base = base;
  options.base.initial_scores = r0.scores;
  const DeltaPageRankResult raw =
      ComputeDeltaPageRank(g1, frontier, options).value();

  options.base.use_compressed_transpose = true;
  for (KernelVariant variant : {KernelVariant::kScalar, KernelVariant::kSimd}) {
    options.base.kernel = variant;
    const DeltaPageRankResult compressed =
        ComputeDeltaPageRank(g1, frontier, options).value();
    EXPECT_EQ(compressed.base.iterations, raw.base.iterations);
    EXPECT_EQ(compressed.node_updates, raw.node_updates);
    ASSERT_EQ(compressed.base.scores.size(), raw.base.scores.size());
    for (size_t i = 0; i < raw.base.scores.size(); ++i) {
      ASSERT_EQ(compressed.base.scores[i], raw.base.scores[i])
          << "node " << i << " variant=" << KernelVariantName(variant);
    }
  }
}

void FillSeries(SnapshotSeries* s) {
  Rng rng(41);
  std::vector<Edge> edges =
      GenerateBarabasiAlbert(1500, 4, &rng).value().edges();
  for (int i = 0; i < 3; ++i) {
    const NodeId n = static_cast<NodeId>(1500 + 40 * i);
    for (int k = 0; k < 50 * i; ++k) {
      NodeId u = static_cast<NodeId>(rng.UniformUint64(n));
      NodeId v = static_cast<NodeId>(rng.UniformUint64(n));
      if (u != v) edges.push_back({u, v});
    }
    ASSERT_TRUE(
        s->AddSnapshot(i + 1.0, CsrGraph::FromEdges(n, edges).value()).ok());
  }
}

TEST(SimdEquivalenceTest, SnapshotSeriesCompressedMatchesScalar) {
  // End-to-end over both series modes: warm-started from-scratch solves
  // and the incremental delta pipeline, with the compressed transpose
  // and SIMD dispatch on. Compressed rows run the scalar fold, so the
  // whole trajectory is bit-identical to the scalar baseline.
  for (SeriesMode mode : {SeriesMode::kWarmStart, SeriesMode::kIncremental}) {
    SeriesComputeOptions o;
    o.mode = mode;
    o.pagerank.tolerance = 1e-11;
    o.pagerank.max_iterations = 2000;

    SnapshotSeries reference;
    FillSeries(&reference);
    ASSERT_TRUE(reference.ComputePageRanks(o).ok());

    o.pagerank.kernel = KernelVariant::kSimd;
    o.pagerank.use_compressed_transpose = true;
    SnapshotSeries series;
    FillSeries(&series);
    ASSERT_TRUE(series.ComputePageRanks(o).ok());

    for (size_t i = 0; i < reference.num_snapshots(); ++i) {
      EXPECT_EQ(series.iterations_per_snapshot()[i],
                reference.iterations_per_snapshot()[i])
          << "snapshot " << i;
      ASSERT_EQ(series.pagerank(i).size(), reference.pagerank(i).size());
      for (size_t p = 0; p < reference.pagerank(i).size(); ++p) {
        ASSERT_EQ(series.pagerank(i)[p], reference.pagerank(i)[p])
            << "snapshot " << i << " node " << p;
      }
    }
  }
}

}  // namespace
}  // namespace qrank
