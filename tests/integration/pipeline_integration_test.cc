// Cross-module integration: the full file-based pipeline must agree
// with the in-memory pipeline, and the binary snapshot format must be
// interchangeable with the text format.
//
//   simulate -> snapshot -> (write text / write binary / keep in memory)
//   -> reload -> SnapshotSeries -> PageRank -> EstimateQuality
//
// All three paths must produce bit-identical PageRank vectors and
// quality estimates.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/quality_estimator.h"
#include "core/snapshot_series.h"
#include "graph/graph_io.h"
#include "sim/web_simulator.h"

namespace qrank {
namespace {

class PipelineIntegrationTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }
  std::string Track(const std::string& p) {
    cleanup_.push_back(p);
    return p;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(PipelineIntegrationTest, FileAndMemoryPathsAgreeExactly) {
  WebSimulatorOptions sim_options;
  sim_options.num_users = 300;
  sim_options.seed = 12;
  sim_options.page_birth_rate = 10.0;
  WebSimulator sim = WebSimulator::Create(sim_options).value();

  SnapshotSeries memory_series, text_series, binary_series;
  const std::vector<double> times = {4.0, 6.0, 8.0};
  int index = 0;
  for (double t : times) {
    ASSERT_TRUE(sim.AdvanceTo(t).ok());
    EdgeList edges = sim.graph().EdgesAt(sim.now());
    CsrGraph graph = CsrGraph::FromEdgeList(edges).value();

    // Text path.
    std::string text_path = Track(::testing::TempDir() + "/qrank_pipe_" +
                                  std::to_string(index) + ".edges");
    ASSERT_TRUE(WriteEdgeListText(edges, text_path).ok());
    Result<EdgeList> text_edges = ReadEdgeListText(text_path);
    ASSERT_TRUE(text_edges.ok());
    ASSERT_TRUE(
        text_series
            .AddSnapshot(t, CsrGraph::FromEdgeList(*text_edges).value())
            .ok());

    // Binary path.
    std::string bin_path = Track(::testing::TempDir() + "/qrank_pipe_" +
                                 std::to_string(index) + ".bin");
    ASSERT_TRUE(WriteGraphBinary(graph, bin_path).ok());
    Result<CsrGraph> bin_graph = ReadGraphBinary(bin_path);
    ASSERT_TRUE(bin_graph.ok());
    ASSERT_TRUE(
        binary_series.AddSnapshot(t, std::move(bin_graph).value()).ok());

    // In-memory path.
    ASSERT_TRUE(memory_series.AddSnapshot(t, std::move(graph)).ok());
    ++index;
  }

  PageRankOptions pr;
  pr.scale = ScaleConvention::kTotalMassN;
  ASSERT_TRUE(memory_series.ComputePageRanks(pr).ok());
  ASSERT_TRUE(text_series.ComputePageRanks(pr).ok());
  ASSERT_TRUE(binary_series.ComputePageRanks(pr).ok());

  for (size_t i = 0; i < times.size(); ++i) {
    ASSERT_EQ(memory_series.pagerank(i).size(),
              text_series.pagerank(i).size());
    ASSERT_EQ(memory_series.pagerank(i).size(),
              binary_series.pagerank(i).size());
    for (size_t p = 0; p < memory_series.pagerank(i).size(); ++p) {
      // Identical graphs and deterministic arithmetic: bit-identical.
      EXPECT_EQ(memory_series.pagerank(i)[p], text_series.pagerank(i)[p]);
      EXPECT_EQ(memory_series.pagerank(i)[p],
                binary_series.pagerank(i)[p]);
    }
  }

  auto est_memory = EstimateQuality(memory_series, 3);
  auto est_text = EstimateQuality(text_series, 3);
  ASSERT_TRUE(est_memory.ok());
  ASSERT_TRUE(est_text.ok());
  for (size_t p = 0; p < est_memory->quality.size(); ++p) {
    EXPECT_EQ(est_memory->quality[p], est_text->quality[p]);
    EXPECT_EQ(est_memory->trend[p], est_text->trend[p]);
  }
}

TEST_F(PipelineIntegrationTest, DynamicGraphSnapshotsMatchSimulatorState) {
  // The DynamicGraph's historical snapshots must reproduce the live
  // state the simulator reported at those instants.
  WebSimulatorOptions sim_options;
  sim_options.num_users = 200;
  sim_options.seed = 21;
  sim_options.forget_rate = 0.1;  // removals exercise interval logic
  WebSimulator sim = WebSimulator::Create(sim_options).value();

  std::vector<double> times = {2.0, 4.0, 6.0};
  std::vector<size_t> live_edges_at_time;
  for (double t : times) {
    ASSERT_TRUE(sim.AdvanceTo(t).ok());
    live_edges_at_time.push_back(sim.graph().num_live_edges());
  }
  // After the fact, historical snapshots must match the recorded live
  // counts exactly.
  for (size_t i = 0; i < times.size(); ++i) {
    CsrGraph snapshot = sim.graph().SnapshotAt(times[i]).value();
    EXPECT_EQ(snapshot.num_edges(), live_edges_at_time[i])
        << "t=" << times[i];
  }
}

}  // namespace
}  // namespace qrank
