// Steady-state allocation behavior of the serving hot path.
//
// QueryEngine::TopK's contract is zero heap allocations per query once
// the caller's TopKScratch has warmed up to the bundle's size: the
// bounded heap, the result slots, and the epoch-stamped dedup array are
// all reused, and the store-backed path revalidates a cached pin with
// one atomic generation load, never allocating. The
// test instruments the global allocator (the kernel_alloc_test harness)
// and proves long query sequences — every blend mode, site filters,
// exploration, and store-backed acquires — allocate nothing.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "serve/query_engine.h"
#include "serve/score_bundle.h"
#include "serve/snapshot_store.h"

namespace {

std::atomic<size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace qrank {
namespace {

constexpr NodeId kPages = 4096;
constexpr SiteId kSites = 16;

const LoadedBundle& Bundle() {
  static const LoadedBundle b = [] {
    Rng rng(11);
    ScoreBundleSource src;
    src.quality.resize(kPages);
    src.pagerank.resize(kPages);
    src.site_ids.resize(kPages);
    for (NodeId i = 0; i < kPages; ++i) {
      src.quality[i] = rng.Pareto(1.0, 1.2);
      src.pagerank[i] = rng.Pareto(1.0, 1.2);
      src.site_ids[i] = static_cast<SiteId>(rng.UniformUint64(kSites));
    }
    src.num_sites = kSites;
    return LoadedBundle::FromBuffer(
               ScoreBundleWriter::Create(std::move(src)).value().Serialize())
        .value();
  }();
  return b;
}

size_t AllocationsDuring(const std::function<void()>& fn) {
  const size_t before = g_allocations.load(std::memory_order_relaxed);
  fn();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(ServeAllocTest, TopKOnBundleAllocationFreeAfterWarmup) {
  const LoadedBundle& b = Bundle();
  TopKScratch scratch;
  TopKQuery warm;
  warm.k = 64;  // largest k any query below uses
  ASSERT_TRUE(QueryEngine::TopKOnBundle(b, warm, &scratch).ok());

  const size_t allocs = AllocationsDuring([&b, &scratch] {
    TopKQuery q;
    for (int i = 0; i < 2000; ++i) {
      q.k = 1 + static_cast<uint32_t>(i % 64);
      q.blend_alpha = (i % 3) * 0.5;            // 0, 0.5, 1
      q.site = (i % 5 == 0) ? static_cast<SiteId>(i % kSites) : kAllSites;
      q.exploration_epsilon = (i % 7 == 0) ? 0.3 : 0.0;
      q.exploration_seed = static_cast<uint64_t>(i);
      ASSERT_TRUE(QueryEngine::TopKOnBundle(b, q, &scratch).ok());
      ASSERT_FALSE(scratch.results().empty());
    }
  });
  EXPECT_EQ(allocs, 0u);
}

TEST(ServeAllocTest, StoreBackedTopKAllocationFreeAfterWarmup) {
  SnapshotStore store;
  {
    Rng rng(12);
    ScoreBundleSource src;
    src.quality.resize(kPages);
    src.pagerank.resize(kPages);
    for (NodeId i = 0; i < kPages; ++i) {
      src.quality[i] = rng.UniformDouble(0.0, 5.0);
      src.pagerank[i] = rng.UniformDouble(0.0, 5.0);
    }
    store.Publish(
        LoadedBundle::FromBuffer(
            ScoreBundleWriter::Create(std::move(src)).value().Serialize())
            .value());
  }
  const QueryEngine engine(&store);
  TopKScratch scratch;
  TopKQuery q;
  q.k = 10;
  q.blend_alpha = 0.5;
  ASSERT_TRUE(engine.TopK(q, &scratch).ok());  // warm-up

  // The scratch's cached pin is revalidated by one atomic generation
  // load — no allocation per query even through the store.
  const size_t allocs = AllocationsDuring([&engine, &scratch, &q] {
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(engine.TopK(q, &scratch).ok());
    }
  });
  EXPECT_EQ(allocs, 0u);
}

TEST(ServeAllocTest, ScratchGrowthIsAmortizedOnce) {
  const LoadedBundle& b = Bundle();
  TopKScratch scratch;
  TopKQuery q;
  q.k = 32;
  // First query on a fresh scratch allocates (heap, results, stamps)...
  const size_t first = AllocationsDuring([&b, &scratch, &q] {
    ASSERT_TRUE(QueryEngine::TopKOnBundle(b, q, &scratch).ok());
  });
  EXPECT_GT(first, 0u);
  // ...and never again at the same or smaller shape.
  const size_t rest = AllocationsDuring([&b, &scratch, &q] {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(QueryEngine::TopKOnBundle(b, q, &scratch).ok());
    }
  });
  EXPECT_EQ(rest, 0u);
}

}  // namespace
}  // namespace qrank
