// Score-bundle artifact tests: writer validation, serialize/load
// roundtrips over both backings, the precomputed serving index, and the
// hardening contract — truncated or bit-flipped images must fail with
// Corruption before the loader allocates for or dereferences the
// payload (the graph_io binary-reader contract, PR 3).

#include "serve/score_bundle.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "serve/bundle_format.h"

namespace qrank {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

class ScoreBundleTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }
  std::string Track(const std::string& p) {
    cleanup_.push_back(p);
    return p;
  }
  std::vector<std::string> cleanup_;
};

// n pages over `sites` round-robin sites, distinct deterministic scores.
ScoreBundleSource MakeSource(NodeId n, SiteId sites) {
  ScoreBundleSource src;
  Rng rng(2024);
  src.quality.resize(n);
  src.pagerank.resize(n);
  src.page_ids.resize(n);
  src.site_ids.resize(n);
  for (NodeId i = 0; i < n; ++i) {
    src.quality[i] = rng.UniformDouble(0.0, 100.0);
    src.pagerank[i] = rng.UniformDouble(0.0, 100.0);
    src.page_ids[i] = 1000 + i;
    src.site_ids[i] = i % sites;
  }
  src.num_sites = sites;
  src.creator_tag = 77;
  return src;
}

std::vector<uint8_t> MakeImage(NodeId n, SiteId sites) {
  Result<ScoreBundleWriter> writer = ScoreBundleWriter::Create(
      MakeSource(n, sites));
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();
  return writer.value().Serialize();
}

void ExpectDescendingOrder(std::span<const NodeId> order,
                           std::span<const double> score) {
  for (size_t i = 1; i < order.size(); ++i) {
    const bool ok = score[order[i - 1]] > score[order[i]] ||
                    (score[order[i - 1]] == score[order[i]] &&
                     order[i - 1] < order[i]);
    ASSERT_TRUE(ok) << "order position " << i;
  }
}

void ExpectValidBundle(const LoadedBundle& b, NodeId n, SiteId sites) {
  ASSERT_EQ(b.num_pages(), n);
  ASSERT_EQ(b.num_sites(), sites);
  EXPECT_EQ(b.creator_tag(), 77u);
  const ScoreBundleSource src = MakeSource(n, sites);
  for (NodeId i = 0; i < n; ++i) {
    ASSERT_EQ(b.quality()[i], src.quality[i]);
    ASSERT_EQ(b.pagerank()[i], src.pagerank[i]);
    ASSERT_EQ(b.page_ids()[i], src.page_ids[i]);
    ASSERT_EQ(b.site_ids()[i], src.site_ids[i]);
  }
  ExpectDescendingOrder(b.order_by_quality(), b.quality());
  ExpectDescendingOrder(b.order_by_pagerank(), b.pagerank());
  // Postings partition the rows by site, quality-descending per group.
  ASSERT_EQ(b.site_offsets().size(), size_t{sites} + 1);
  ASSERT_EQ(b.site_offsets()[0], 0u);
  ASSERT_EQ(b.site_offsets()[sites], n);
  std::vector<bool> seen(n, false);
  for (SiteId s = 0; s < sites; ++s) {
    for (uint32_t i = b.site_offsets()[s]; i < b.site_offsets()[s + 1];
         ++i) {
      const NodeId row = b.site_pages()[i];
      ASSERT_FALSE(seen[row]);
      seen[row] = true;
      ASSERT_EQ(b.site_ids()[row], s);
      if (i > b.site_offsets()[s]) {
        const NodeId prev = b.site_pages()[i - 1];
        ASSERT_TRUE(b.quality()[prev] > b.quality()[row] ||
                    (b.quality()[prev] == b.quality()[row] && prev < row));
      }
    }
  }
}

TEST_F(ScoreBundleTest, FromBufferRoundTrip) {
  Result<LoadedBundle> b = LoadedBundle::FromBuffer(MakeImage(257, 5));
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(b->backing(), LoadedBundle::Backing::kHeap);
  ExpectValidBundle(b.value(), 257, 5);
}

TEST_F(ScoreBundleTest, FileRoundTripMmapAndHeap) {
  const std::string path = Track(TempPath("bundle.qrkb"));
  Result<ScoreBundleWriter> writer =
      ScoreBundleWriter::Create(MakeSource(64, 3));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value().WriteFile(path).ok());

  Result<LoadedBundle> mapped = LoadedBundle::Load(path, true);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->backing(), LoadedBundle::Backing::kMmap);
  ExpectValidBundle(mapped.value(), 64, 3);

  Result<LoadedBundle> heap = LoadedBundle::Load(path, false);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  EXPECT_EQ(heap->backing(), LoadedBundle::Backing::kHeap);
  ExpectValidBundle(heap.value(), 64, 3);
}

TEST_F(ScoreBundleTest, MoveTransfersMapping) {
  const std::string path = Track(TempPath("bundle_move.qrkb"));
  ASSERT_TRUE(ScoreBundleWriter::Create(MakeSource(16, 2))
                  .value()
                  .WriteFile(path)
                  .ok());
  Result<LoadedBundle> loaded = LoadedBundle::Load(path, true);
  ASSERT_TRUE(loaded.ok());
  LoadedBundle moved = std::move(loaded).value();
  LoadedBundle moved_again = std::move(moved);
  ExpectValidBundle(moved_again, 16, 2);
}

TEST_F(ScoreBundleTest, WriterDerivesDefaults) {
  ScoreBundleSource src;
  src.quality = {3.0, 1.0, 2.0};
  src.pagerank = {1.0, 1.5, 0.5};
  // page_ids/site_ids/num_sites/expected_mass all derived.
  Result<ScoreBundleWriter> writer = ScoreBundleWriter::Create(src);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  Result<LoadedBundle> b =
      LoadedBundle::FromBuffer(writer.value().Serialize());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->num_sites(), 1u);
  EXPECT_DOUBLE_EQ(b->expected_mass(), 3.0);
  EXPECT_EQ(b->page_ids()[2], 2u);
  EXPECT_EQ(b->site_ids()[2], 0u);
  EXPECT_EQ(b->order_by_quality()[0], 0u);
  EXPECT_EQ(b->order_by_pagerank()[0], 1u);
}

TEST_F(ScoreBundleTest, WriterRejectsBadSources) {
  const auto create = [](ScoreBundleSource src) {
    return ScoreBundleWriter::Create(std::move(src)).status().code();
  };
  ScoreBundleSource empty;
  EXPECT_EQ(create(empty), StatusCode::kInvalidArgument);

  ScoreBundleSource mismatched;
  mismatched.quality = {1.0, 2.0};
  mismatched.pagerank = {1.0};
  EXPECT_EQ(create(mismatched), StatusCode::kInvalidArgument);

  ScoreBundleSource negative = MakeSource(4, 2);
  negative.quality[1] = -0.5;
  EXPECT_EQ(create(negative), StatusCode::kInvalidArgument);

  ScoreBundleSource nan = MakeSource(4, 2);
  nan.pagerank[3] = std::nan("");
  EXPECT_EQ(create(nan), StatusCode::kInvalidArgument);

  ScoreBundleSource bad_site = MakeSource(4, 2);
  bad_site.site_ids[0] = 2;  // == num_sites
  EXPECT_EQ(create(bad_site), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Hardening: every truncation and every header bit flip must yield
// Corruption (never a crash, OOM, or silent success).
// ---------------------------------------------------------------------------

Status LoadImageViaFile(const std::vector<uint8_t>& image,
                        const std::string& path, bool prefer_mmap) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  out.close();
  return LoadedBundle::Load(path, prefer_mmap).status();
}

TEST_F(ScoreBundleTest, TruncationSweepFailsCleanly) {
  const std::vector<uint8_t> image = MakeImage(33, 4);
  const std::string path = Track(TempPath("trunc.qrkb"));
  // Every prefix below the header, around the table, and a payload
  // sample; full-size minus one exercises the last-byte case.
  std::vector<size_t> cuts = {0,  1,  4,   63,  64,  65,
                              96, 255, 256, 300, image.size() - 1};
  for (size_t cut : cuts) {
    ASSERT_LT(cut, image.size());
    const std::vector<uint8_t> prefix(image.begin(),
                                      image.begin() + static_cast<long>(cut));
    for (bool prefer_mmap : {true, false}) {
      const Status st = LoadImageViaFile(prefix, path, prefer_mmap);
      EXPECT_EQ(st.code(), StatusCode::kCorruption)
          << "cut " << cut << " mmap " << prefer_mmap << ": "
          << st.ToString();
    }
    const Status direct = LoadedBundle::FromBuffer(prefix).status();
    EXPECT_EQ(direct.code(), StatusCode::kCorruption) << "cut " << cut;
  }
}

TEST_F(ScoreBundleTest, HeaderBitFlipSweepFailsCleanly) {
  const std::vector<uint8_t> image = MakeImage(17, 3);
  // Any single bit flip in the 64 header bytes is caught: the CRC
  // guards [0, 60), and a flip inside the stored CRC mismatches it.
  for (size_t byte = 0; byte < sizeof(BundleHeader); ++byte) {
    std::vector<uint8_t> mutant = image;
    mutant[byte] ^= 1u << (byte % 8);
    const Status st = LoadedBundle::FromBuffer(std::move(mutant)).status();
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << "byte " << byte;
  }
}

TEST_F(ScoreBundleTest, PayloadBitFlipFailsCrc) {
  const std::vector<uint8_t> image = MakeImage(17, 3);
  BundleHeader header;
  std::memcpy(&header, image.data(), sizeof(header));
  std::vector<uint8_t> mutant = image;
  mutant[BundleTableEnd(header) + 5] ^= 0x10;
  const Status st = LoadedBundle::FromBuffer(std::move(mutant)).status();
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST_F(ScoreBundleTest, HugePageCountTinyFileRejectedBeforeAllocation) {
  // A 200-byte file whose (CRC-consistent) header promises a billion
  // pages: the size cross-check must reject it from the header alone.
  std::vector<uint8_t> image = MakeImage(4, 1);
  BundleHeader header;
  std::memcpy(&header, image.data(), sizeof(header));
  header.num_pages = 1u << 30;
  header.header_crc32 = BundleCrc32(
      reinterpret_cast<const uint8_t*>(&header),
      offsetof(BundleHeader, header_crc32));
  std::memcpy(image.data(), &header, sizeof(header));
  image.resize(200);

  const std::string path = Track(TempPath("huge.qrkb"));
  for (bool prefer_mmap : {true, false}) {
    const Status st = LoadImageViaFile(image, path, prefer_mmap);
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
    EXPECT_NE(st.message().find("promises"), std::string::npos)
        << st.ToString();
  }
}

TEST_F(ScoreBundleTest, MissingFileIsIOError) {
  const Status st =
      LoadedBundle::Load(TempPath("does_not_exist.qrkb")).status();
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace qrank
