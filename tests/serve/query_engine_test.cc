// QueryEngine correctness against a brute-force oracle: for every
// blend alpha, k, and site filter the fast paths (order-prefix reads,
// posting-group scans, and Fagin's threshold algorithm) must reproduce
// the full-scan (score desc, row asc) ranking exactly — including on
// score distributions engineered to be tie-heavy, where a sloppy
// threshold-stop or heap comparator shows up immediately.

#include "serve/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "serve/score_bundle.h"
#include "serve/snapshot_store.h"

namespace qrank {
namespace {

constexpr NodeId kPages = 500;
constexpr SiteId kSites = 7;

// Tie-heavy scores: values quantized to a handful of levels so order
// sections and the blend have many exact collisions.
const LoadedBundle& TieBundle() {
  static const LoadedBundle b = [] {
    Rng rng(31);
    ScoreBundleSource src;
    src.quality.resize(kPages);
    src.pagerank.resize(kPages);
    src.site_ids.resize(kPages);
    for (NodeId i = 0; i < kPages; ++i) {
      src.quality[i] = static_cast<double>(rng.UniformUint64(8));
      src.pagerank[i] = static_cast<double>(rng.UniformUint64(8)) / 2.0;
      src.site_ids[i] = static_cast<SiteId>(rng.UniformUint64(kSites));
    }
    src.num_sites = kSites;
    return LoadedBundle::FromBuffer(
               ScoreBundleWriter::Create(std::move(src)).value().Serialize())
        .value();
  }();
  return b;
}

// Continuous scores (ties only by coincidence): the threshold
// algorithm's common regime.
const LoadedBundle& SmoothBundle() {
  static const LoadedBundle b = [] {
    Rng rng(77);
    ScoreBundleSource src;
    src.quality.resize(kPages);
    src.pagerank.resize(kPages);
    src.site_ids.resize(kPages);
    for (NodeId i = 0; i < kPages; ++i) {
      src.quality[i] = rng.Pareto(1.0, 1.2);
      src.pagerank[i] = rng.Pareto(0.5, 1.5);
      src.site_ids[i] = static_cast<SiteId>(rng.UniformUint64(kSites));
    }
    src.num_sites = kSites;
    return LoadedBundle::FromBuffer(
               ScoreBundleWriter::Create(std::move(src)).value().Serialize())
        .value();
  }();
  return b;
}

// Full-scan reference: blend every eligible row, stable (score desc,
// row asc) order, first k.
std::vector<TopKEntry> Oracle(const LoadedBundle& b, const TopKQuery& q) {
  std::vector<NodeId> rows;
  for (NodeId i = 0; i < b.num_pages(); ++i) {
    if (q.site == kAllSites || b.site_ids()[i] == q.site) rows.push_back(i);
  }
  std::vector<TopKEntry> all;
  for (NodeId row : rows) {
    const double score = q.blend_alpha * b.quality()[row] +
                         (1.0 - q.blend_alpha) * b.pagerank()[row];
    all.push_back({row, b.page_ids()[row], score, false});
  }
  std::sort(all.begin(), all.end(), [](const TopKEntry& a, const TopKEntry& c) {
    if (a.score != c.score) return a.score > c.score;
    return a.row < c.row;
  });
  if (all.size() > q.k) all.resize(q.k);
  return all;
}

void ExpectMatchesOracle(const LoadedBundle& b, const TopKQuery& q) {
  TopKScratch scratch;
  ASSERT_TRUE(QueryEngine::TopKOnBundle(b, q, &scratch).ok());
  const std::vector<TopKEntry> expect = Oracle(b, q);
  const std::span<const TopKEntry> got = scratch.results();
  ASSERT_EQ(got.size(), expect.size())
      << "alpha " << q.blend_alpha << " k " << q.k << " site " << q.site;
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(got[i].row, expect[i].row)
        << "rank " << i << " alpha " << q.blend_alpha << " k " << q.k
        << " site " << q.site;
    EXPECT_EQ(got[i].score, expect[i].score);
    EXPECT_EQ(got[i].page_id, expect[i].page_id);
    EXPECT_FALSE(got[i].promoted);
  }
}

TEST(QueryEngineTest, MatchesOracleAcrossBlendsAndSites) {
  for (const LoadedBundle* b : {&TieBundle(), &SmoothBundle()}) {
    for (double alpha : {0.0, 0.3, 0.5, 1.0}) {
      for (uint32_t k : {1u, 5u, 10u, 100u, kPages, kPages + 50}) {
        TopKQuery q;
        q.blend_alpha = alpha;
        q.k = k;
        ExpectMatchesOracle(*b, q);
        for (SiteId site = 0; site < kSites; ++site) {
          q.site = site;
          ExpectMatchesOracle(*b, q);
        }
        q.site = kAllSites;
      }
    }
  }
}

TEST(QueryEngineTest, ScratchReuseAcrossShapesStaysExact) {
  // One scratch serving wildly different queries back to back — stale
  // heap/dedup state from a previous query must never leak in.
  TopKScratch scratch;
  const LoadedBundle& b = SmoothBundle();
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    TopKQuery q;
    q.blend_alpha = rng.UniformDouble();
    q.k = static_cast<uint32_t>(rng.UniformUint64(30));
    q.site = rng.Bernoulli(0.5)
                 ? kAllSites
                 : static_cast<SiteId>(rng.UniformUint64(kSites));
    ASSERT_TRUE(QueryEngine::TopKOnBundle(b, q, &scratch).ok());
    const std::vector<TopKEntry> expect = Oracle(b, q);
    ASSERT_EQ(scratch.results().size(), expect.size());
    for (size_t j = 0; j < expect.size(); ++j) {
      ASSERT_EQ(scratch.results()[j].row, expect[j].row) << "query " << i;
    }
  }
}

TEST(QueryEngineTest, ZeroKYieldsEmpty) {
  TopKScratch scratch;
  TopKQuery q;
  q.k = 0;
  ASSERT_TRUE(QueryEngine::TopKOnBundle(TieBundle(), q, &scratch).ok());
  EXPECT_TRUE(scratch.results().empty());
}

TEST(QueryEngineTest, RejectsInvalidParameters) {
  TopKScratch scratch;
  TopKQuery q;
  q.blend_alpha = 1.5;
  EXPECT_EQ(QueryEngine::TopKOnBundle(TieBundle(), q, &scratch).code(),
            StatusCode::kInvalidArgument);
  q.blend_alpha = std::nan("");
  EXPECT_EQ(QueryEngine::TopKOnBundle(TieBundle(), q, &scratch).code(),
            StatusCode::kInvalidArgument);
  q = {};
  q.exploration_epsilon = -0.1;
  EXPECT_EQ(QueryEngine::TopKOnBundle(TieBundle(), q, &scratch).code(),
            StatusCode::kInvalidArgument);
  q = {};
  q.site = kSites;  // one past the last site
  EXPECT_EQ(QueryEngine::TopKOnBundle(TieBundle(), q, &scratch).code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryEngineTest, StoreBackedQueriesNeedAPublish) {
  SnapshotStore store;
  const QueryEngine engine(&store);
  TopKScratch scratch;
  EXPECT_EQ(engine.TopK({}, &scratch).code(),
            StatusCode::kFailedPrecondition);

  ScoreBundleSource src;
  src.quality = {2.0, 1.0, 3.0};
  src.pagerank = {1.0, 1.0, 1.0};
  store.Publish(
      LoadedBundle::FromBuffer(
          ScoreBundleWriter::Create(std::move(src)).value().Serialize())
          .value());
  TopKQuery q;
  q.k = 2;
  ASSERT_TRUE(engine.TopK(q, &scratch).ok());
  ASSERT_EQ(scratch.results().size(), 2u);
  EXPECT_EQ(scratch.results()[0].row, 2u);
  EXPECT_EQ(scratch.results()[1].row, 0u);
}

TEST(QueryEngineTest, ExplorationIsDeterministicPerSeed) {
  const LoadedBundle& b = SmoothBundle();
  TopKQuery q;
  q.k = 20;
  q.exploration_epsilon = 0.5;
  q.exploration_seed = 1234;
  TopKScratch s1, s2;
  ASSERT_TRUE(QueryEngine::TopKOnBundle(b, q, &s1).ok());
  ASSERT_TRUE(QueryEngine::TopKOnBundle(b, q, &s2).ok());
  ASSERT_EQ(s1.results().size(), s2.results().size());
  for (size_t i = 0; i < s1.results().size(); ++i) {
    EXPECT_EQ(s1.results()[i].row, s2.results()[i].row);
    EXPECT_EQ(s1.results()[i].promoted, s2.results()[i].promoted);
  }
}

TEST(QueryEngineTest, ExplorationPromotesEligiblePagesOnly) {
  const LoadedBundle& b = SmoothBundle();
  TopKQuery q;
  q.k = 10;
  q.site = 3;
  q.exploration_epsilon = 1.0;
  size_t promoted = 0;
  TopKScratch scratch;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    q.exploration_seed = seed;
    ASSERT_TRUE(QueryEngine::TopKOnBundle(b, q, &scratch).ok());
    std::vector<NodeId> rows;
    for (const TopKEntry& e : scratch.results()) {
      EXPECT_EQ(b.site_ids()[e.row], q.site);  // filter survives the mix
      EXPECT_EQ(e.page_id, b.page_ids()[e.row]);
      EXPECT_EQ(e.score, b.quality()[e.row]);  // alpha = 1
      rows.push_back(e.row);
      promoted += e.promoted ? 1 : 0;
    }
    std::sort(rows.begin(), rows.end());
    EXPECT_TRUE(std::adjacent_find(rows.begin(), rows.end()) == rows.end())
        << "duplicate result rows at seed " << seed;
  }
  EXPECT_GT(promoted, 0u);  // epsilon = 1 must actually promote
}

TEST(QueryEngineTest, ExplorationRateTracksEpsilon) {
  const LoadedBundle& b = SmoothBundle();
  TopKQuery q;
  q.k = 10;
  q.exploration_epsilon = 0.2;
  size_t promoted = 0, total = 0;
  TopKScratch scratch;
  for (uint64_t seed = 0; seed < 400; ++seed) {
    q.exploration_seed = seed;
    ASSERT_TRUE(QueryEngine::TopKOnBundle(b, q, &scratch).ok());
    for (const TopKEntry& e : scratch.results()) {
      ++total;
      promoted += e.promoted ? 1 : 0;
    }
  }
  const double rate = static_cast<double>(promoted) / total;
  EXPECT_NEAR(rate, 0.2, 0.05);
}

}  // namespace
}  // namespace qrank
