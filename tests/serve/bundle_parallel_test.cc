// Parallel-export determinism: the serialized bundle image must be
// byte-identical for every export thread count (sorts, postings,
// section copies, CRCs), and the chunked CRC combine must reproduce the
// one-pass CRC exactly — the contract that lets the pipelined ingest
// service parallelize the publish path without perturbing published
// bytes.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "serve/bundle_format.h"
#include "serve/score_bundle.h"

namespace qrank {
namespace {

ScoreBundleSource SyntheticSource(NodeId num_pages, SiteId num_sites,
                                  uint64_t seed) {
  Rng rng(seed);
  ScoreBundleSource source;
  source.quality.resize(num_pages);
  source.pagerank.resize(num_pages);
  source.site_ids.resize(num_pages);
  for (NodeId p = 0; p < num_pages; ++p) {
    // Coarse buckets produce heavy score ties — the case where only the
    // row-id tie-break keeps the order (and hence the bytes) unique.
    source.quality[p] = static_cast<double>(rng.NextUint64() % 97) / 97.0;
    source.pagerank[p] = static_cast<double>(rng.NextUint64() % 31) / 31.0;
    source.site_ids[p] = static_cast<SiteId>(rng.NextUint64() % num_sites);
  }
  source.num_sites = num_sites;
  return source;
}

TEST(BundleCrc32CombineTest, MatchesOnePassCrcAtEverySplit) {
  Rng rng(7);
  std::vector<uint8_t> data(4096 + 37);
  for (uint8_t& b : data) b = static_cast<uint8_t>(rng.NextUint64());
  const uint32_t whole = BundleCrc32(data.data(), data.size());
  for (const size_t split : {size_t{0}, size_t{1}, size_t{63}, size_t{64},
                             size_t{1000}, data.size() - 1, data.size()}) {
    const uint32_t a = BundleCrc32(data.data(), split);
    const uint32_t b = BundleCrc32(data.data() + split, data.size() - split);
    EXPECT_EQ(BundleCrc32Combine(a, b, data.size() - split), whole)
        << "split at " << split;
  }
}

TEST(BundleCrc32CombineTest, FoldsManyChunks) {
  Rng rng(11);
  std::vector<uint8_t> data(10000);
  for (uint8_t& b : data) b = static_cast<uint8_t>(rng.NextUint64());
  const uint32_t whole = BundleCrc32(data.data(), data.size());
  const size_t chunk = 333;
  uint32_t crc = 0;
  bool first = true;
  for (size_t lo = 0; lo < data.size(); lo += chunk) {
    const size_t hi = std::min(lo + chunk, data.size());
    const uint32_t part = BundleCrc32(data.data() + lo, hi - lo);
    crc = first ? part : BundleCrc32Combine(crc, part, hi - lo);
    first = false;
  }
  EXPECT_EQ(crc, whole);
}

TEST(BundleParallelTest, SerializedImageByteIdenticalAcrossThreadCounts) {
  const ScoreBundleSource source = SyntheticSource(30000, 37, 0xb0b);
  std::vector<uint8_t> serial_image;
  {
    ParallelOptions opts;
    opts.num_threads = 1;
    Result<ScoreBundleWriter> writer =
        ScoreBundleWriter::Create(source, opts);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    serial_image = writer.value().Serialize();
  }
  for (const int threads : {2, 4, 8}) {
    ParallelOptions opts;
    opts.num_threads = threads;
    Result<ScoreBundleWriter> writer =
        ScoreBundleWriter::Create(source, opts);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    const std::vector<uint8_t> image = writer.value().Serialize();
    ASSERT_EQ(image, serial_image) << "threads=" << threads;
  }
}

TEST(BundleParallelTest, SingleSiteAndTinyBundlesStayIdentical) {
  // Degenerate shapes: one site (postings = quality order), and a
  // bundle smaller than one sort block (serial fallback paths).
  for (const NodeId pages : {NodeId{1}, NodeId{5}, NodeId{100}}) {
    ScoreBundleSource source = SyntheticSource(pages, 1, pages);
    ParallelOptions serial;
    serial.num_threads = 1;
    ParallelOptions wide;
    wide.num_threads = 8;
    Result<ScoreBundleWriter> a = ScoreBundleWriter::Create(source, serial);
    Result<ScoreBundleWriter> b = ScoreBundleWriter::Create(source, wide);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value().Serialize(), b.value().Serialize())
        << "pages=" << pages;
  }
}

TEST(BundleParallelTest, ParallelValidationAcceptsAndRejectsLikeSerial) {
  const ScoreBundleSource source = SyntheticSource(30000, 37, 0xcafe);
  ParallelOptions wide;
  wide.num_threads = 4;
  Result<ScoreBundleWriter> writer = ScoreBundleWriter::Create(source, wide);
  ASSERT_TRUE(writer.ok());
  std::vector<uint8_t> image = writer.value().Serialize();

  // Clean image loads under parallel validation.
  Result<LoadedBundle> ok = LoadedBundle::FromBuffer(image, wide);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().num_pages(), 30000u);

  // Flip one payload byte: the parallel CRC must reject exactly like
  // the serial one.
  std::vector<uint8_t> corrupt = image;
  corrupt[corrupt.size() / 2] ^= 0x01;
  Result<LoadedBundle> bad = LoadedBundle::FromBuffer(std::move(corrupt), wide);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace qrank
