// Concurrent hot-swap contract (run under TSan in CI): N reader
// threads serve TopK in a tight loop while a publisher installs fresh
// generations. Readers must only ever observe fully published bundles
// — every score in one result set must come from the same generation —
// and every replaced generation must be freed once its last pin drops.
//
// Generation-consistency trick: generation g's quality is
// (row + 1) * (g + 1), so a result entry implies its generation as
// score / (row + 1); a torn or half-published bundle would mix factors
// within one result set.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "serve/query_engine.h"
#include "serve/score_bundle.h"
#include "serve/snapshot_store.h"

namespace qrank {
namespace {

constexpr NodeId kPages = 512;
constexpr uint64_t kGenerations = 40;
constexpr int kReaders = 4;

LoadedBundle MakeGeneration(uint64_t g) {
  ScoreBundleSource src;
  src.quality.resize(kPages);
  src.pagerank.resize(kPages);
  src.site_ids.resize(kPages);
  for (NodeId i = 0; i < kPages; ++i) {
    src.quality[i] = static_cast<double>(i + 1) * static_cast<double>(g + 1);
    src.pagerank[i] = static_cast<double>(kPages - i);
    src.site_ids[i] = i % 8;
  }
  src.num_sites = 8;
  src.creator_tag = static_cast<uint32_t>(g);
  return LoadedBundle::FromBuffer(
             ScoreBundleWriter::Create(std::move(src)).value().Serialize())
      .value();
}

TEST(ServeHotSwapTest, ReadersOnlyObserveFullyPublishedGenerations) {
  SnapshotStore store;
  store.Publish(MakeGeneration(0));
  const QueryEngine engine(&store);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> violations{0};
  std::atomic<uint64_t> queries{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&engine, &stop, &violations, &queries, r] {
      TopKScratch scratch;
      TopKQuery q;
      q.k = 8;
      // Mix of full and site-filtered queries per reader.
      q.site = (r % 2 == 0) ? kAllSites : static_cast<SiteId>(r);
      while (!stop.load(std::memory_order_relaxed)) {
        if (!engine.TopK(q, &scratch).ok()) {
          violations.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // All entries of one result set must share one generation
        // factor, and that factor must be a whole generation in range.
        double factor = 0.0;
        for (const TopKEntry& e : scratch.results()) {
          const double f = e.score / static_cast<double>(e.row + 1);
          if (factor == 0.0) factor = f;
          if (f != factor) {
            violations.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
        const double rounded = std::round(factor);
        if (factor != rounded || rounded < 1.0 ||
            rounded > static_cast<double>(kGenerations + 1)) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::weak_ptr<const LoadedBundle>> retired;
  for (uint64_t g = 1; g <= kGenerations; ++g) {
    auto bundle = std::make_shared<const LoadedBundle>(MakeGeneration(g));
    retired.emplace_back(bundle);
    store.Publish(std::move(bundle));
    std::this_thread::yield();
  }
  // Let the readers churn against the final generation for a moment.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(queries.load(), 0u);

  // Readers are gone and the store holds only the last publish: every
  // earlier generation must have been reclaimed.
  for (size_t i = 0; i + 1 < retired.size(); ++i) {
    EXPECT_TRUE(retired[i].expired()) << "generation " << i + 1;
  }
  EXPECT_FALSE(retired.back().expired());
  std::shared_ptr<const LoadedBundle> last = store.Acquire();
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->creator_tag(), kGenerations);
}

TEST(ServeHotSwapTest, PinSurvivesPublishStorm) {
  SnapshotStore store;
  store.Publish(MakeGeneration(0));
  std::shared_ptr<const LoadedBundle> pin = store.Acquire();
  ASSERT_NE(pin, nullptr);

  std::thread publisher([&store] {
    for (uint64_t g = 1; g <= 64; ++g) store.Publish(MakeGeneration(g));
  });
  // The pinned generation keeps answering identically during the storm.
  TopKScratch scratch;
  TopKQuery q;
  q.k = 4;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(QueryEngine::TopKOnBundle(*pin, q, &scratch).ok());
    ASSERT_EQ(scratch.results()[0].score, static_cast<double>(kPages));
  }
  publisher.join();
  EXPECT_EQ(store.generation(), 65u);
}

}  // namespace
}  // namespace qrank
