// serve.bundle.* audit family: true negatives on writer-produced
// bundles, plus mutation tests — each seeded corruption must be caught
// by exactly the validator named for it (the registry's layered
// silent-pass discipline), matching tests/audit/audit_mutation_test.cc.

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "audit/audit.h"
#include "common/rng.h"
#include "serve/bundle_format.h"
#include "serve/score_bundle.h"

namespace qrank {
namespace {

using Names = std::vector<std::string>;

constexpr NodeId kPages = 96;
constexpr SiteId kSites = 5;

std::vector<uint8_t> GoodImage() {
  Rng rng(404);
  ScoreBundleSource src;
  src.quality.resize(kPages);
  src.pagerank.resize(kPages);
  src.site_ids.resize(kPages);
  for (NodeId i = 0; i < kPages; ++i) {
    // Distinct, well-separated values: a low-bit flip can't reorder.
    src.quality[i] = 10.0 + 3.0 * rng.UniformDouble();
    src.pagerank[i] = 5.0 + 2.0 * rng.UniformDouble();
    src.site_ids[i] = i % kSites;
  }
  src.num_sites = kSites;
  return ScoreBundleWriter::Create(std::move(src)).value().Serialize();
}

BundleHeader HeaderOf(const std::vector<uint8_t>& image) {
  BundleHeader h;
  std::memcpy(&h, image.data(), sizeof(h));
  return h;
}

// Recomputes payload + header CRCs after a seeded payload mutation, so
// only the validator the mutation targets can fire.
void FixCrcs(std::vector<uint8_t>* image) {
  BundleHeader h = HeaderOf(*image);
  const uint64_t table_end = BundleTableEnd(h);
  h.payload_crc32 =
      BundleCrc32(image->data() + table_end, image->size() - table_end);
  h.header_crc32 = BundleCrc32(reinterpret_cast<const uint8_t*>(&h),
                               offsetof(BundleHeader, header_crc32));
  std::memcpy(image->data(), &h, sizeof(h));
}

// Offset of section `id`'s payload within the image.
uint64_t SectionOffset(const std::vector<uint8_t>& image, uint32_t id) {
  const BundleHeader h = HeaderOf(image);
  const auto* table = reinterpret_cast<const BundleSectionEntry*>(
      image.data() + sizeof(BundleHeader));
  for (uint32_t i = 0; i < h.section_count; ++i) {
    if (table[i].id == id) return table[i].offset;
  }
  ADD_FAILURE() << "section " << id << " missing";
  return 0;
}

AuditReport Audit(const std::vector<uint8_t>& image) {
  return AuditScoreBundle(image.data(), image.size());
}

TEST(ServeAuditTest, WriterOutputPassesEveryValidator) {
  const std::vector<uint8_t> image = GoodImage();
  const AuditReport report = Audit(image);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.ran,
            (Names{"serve.bundle.header", "serve.bundle.sections",
                   "serve.bundle.crc", "serve.bundle.scores",
                   "serve.bundle.index"}));
}

TEST(ServeAuditTest, ValidatorsSkipWithoutBundleBytes) {
  AuditContext ctx;  // no bundle fields set
  const AuditReport report = RunAudit(ctx);
  for (const std::string& name : report.ran) {
    EXPECT_EQ(name.rfind("serve.", 0), std::string::npos) << name;
  }
}

TEST(ServeAuditMutationTest, BadMagicIsAHeaderFinding) {
  std::vector<uint8_t> image = GoodImage();
  image[0] = 'X';
  EXPECT_EQ(Audit(image).FailedValidators(), Names{"serve.bundle.header"})
      << Audit(image).ToString();
}

TEST(ServeAuditMutationTest, TruncationIsAHeaderFinding) {
  std::vector<uint8_t> image = GoodImage();
  image.resize(image.size() / 2);
  EXPECT_EQ(Audit(image).FailedValidators(), Names{"serve.bundle.header"});
  image.resize(10);  // smaller than the fixed header
  EXPECT_EQ(Audit(image).FailedValidators(), Names{"serve.bundle.header"});
}

TEST(ServeAuditMutationTest, LyingPageCountIsAHeaderFinding) {
  std::vector<uint8_t> image = GoodImage();
  BundleHeader h = HeaderOf(image);
  h.num_pages = 1u << 29;  // promises ~17 GB of payload
  std::memcpy(image.data(), &h, sizeof(h));
  // Header CRC still guards the count; fix it so the size cross-check
  // itself (the pre-allocation gate) is what fires.
  h.header_crc32 = BundleCrc32(reinterpret_cast<const uint8_t*>(&h),
                               offsetof(BundleHeader, header_crc32));
  std::memcpy(image.data(), &h, sizeof(h));
  EXPECT_EQ(Audit(image).FailedValidators(), Names{"serve.bundle.header"});
}

TEST(ServeAuditMutationTest, TableCorruptionIsASectionsFinding) {
  // The section table is deliberately outside both CRCs (header CRC
  // covers [0, 60), payload CRC starts past the table), so table damage
  // is attributed to serve.bundle.sections alone.
  std::vector<uint8_t> image = GoodImage();
  auto* entry = reinterpret_cast<BundleSectionEntry*>(image.data() +
                                                      sizeof(BundleHeader));
  entry->reserved = 7;
  EXPECT_EQ(Audit(image).FailedValidators(), Names{"serve.bundle.sections"});

  std::vector<uint8_t> misaligned = GoodImage();
  auto* e2 = reinterpret_cast<BundleSectionEntry*>(misaligned.data() +
                                                   sizeof(BundleHeader));
  e2->offset += 4;  // breaks 64-alignment (and exact-extent placement)
  EXPECT_EQ(Audit(misaligned).FailedValidators(),
            Names{"serve.bundle.sections"});

  std::vector<uint8_t> duplicated = GoodImage();
  auto* e3 = reinterpret_cast<BundleSectionEntry*>(duplicated.data() +
                                                   sizeof(BundleHeader));
  e3[1].id = e3[0].id;  // duplicate id (and a missing required one)
  EXPECT_EQ(Audit(duplicated).FailedValidators(),
            Names{"serve.bundle.sections"});
}

TEST(ServeAuditMutationTest, PayloadBitFlipIsACrcFinding) {
  std::vector<uint8_t> image = GoodImage();
  // Flip the lowest mantissa bit of the globally best quality value:
  // still finite, still non-negative, still the maximum (values are
  // well separated), still first in every order — only the checksum
  // can tell.
  const uint64_t q_off = SectionOffset(image, kBundleQuality);
  const uint64_t order_off = SectionOffset(image, kBundleOrderByQuality);
  uint32_t best_row;
  std::memcpy(&best_row, image.data() + order_off, sizeof(best_row));
  image[q_off + uint64_t{best_row} * 8] ^= 1;
  EXPECT_EQ(Audit(image).FailedValidators(), Names{"serve.bundle.crc"})
      << Audit(image).ToString();
}

TEST(ServeAuditMutationTest, MassViolationIsAScoresFinding) {
  std::vector<uint8_t> image = GoodImage();
  // Scale every pagerank by 1.5: order sections stay exactly sorted,
  // values stay finite/non-negative — only the declared mass is wrong.
  const uint64_t pr_off = SectionOffset(image, kBundlePageRank);
  for (NodeId i = 0; i < kPages; ++i) {
    double v;
    std::memcpy(&v, image.data() + pr_off + uint64_t{i} * 8, sizeof(v));
    v *= 1.5;
    std::memcpy(image.data() + pr_off + uint64_t{i} * 8, &v, sizeof(v));
  }
  FixCrcs(&image);
  EXPECT_EQ(Audit(image).FailedValidators(), Names{"serve.bundle.scores"})
      << Audit(image).ToString();
}

TEST(ServeAuditMutationTest, NonFiniteTailScoreIsAScoresFinding) {
  std::vector<uint8_t> image = GoodImage();
  // NaN planted at the pagerank order's tail row: the index validator
  // skips comparisons against non-finite values (that row is the
  // scores validator's finding), so only serve.bundle.scores fires.
  const uint64_t pr_off = SectionOffset(image, kBundlePageRank);
  const uint64_t order_off = SectionOffset(image, kBundleOrderByPageRank);
  uint32_t worst_row;
  std::memcpy(&worst_row,
              image.data() + order_off + uint64_t{kPages - 1} * 4,
              sizeof(worst_row));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(image.data() + pr_off + uint64_t{worst_row} * 8, &nan,
              sizeof(nan));
  FixCrcs(&image);
  EXPECT_EQ(Audit(image).FailedValidators(), Names{"serve.bundle.scores"})
      << Audit(image).ToString();
}

TEST(ServeAuditMutationTest, ShuffledOrderSectionIsAnIndexFinding) {
  std::vector<uint8_t> image = GoodImage();
  // Swap the two best rows of the quality order: same permutation, but
  // no longer score-descending. Scores themselves are untouched.
  const uint64_t order_off = SectionOffset(image, kBundleOrderByQuality);
  uint32_t rows[2];
  std::memcpy(rows, image.data() + order_off, sizeof(rows));
  std::swap(rows[0], rows[1]);
  std::memcpy(image.data() + order_off, rows, sizeof(rows));
  FixCrcs(&image);
  EXPECT_EQ(Audit(image).FailedValidators(), Names{"serve.bundle.index"})
      << Audit(image).ToString();
}

TEST(ServeAuditMutationTest, MisgroupedSitePostingIsAnIndexFinding) {
  std::vector<uint8_t> image = GoodImage();
  // Retarget site 0's best posting at a row belonging to another site:
  // the permutation breaks (duplicate + missing row) and the group no
  // longer matches site_ids.
  const uint64_t sp_off = SectionOffset(image, kBundleSitePages);
  uint32_t row;
  std::memcpy(&row, image.data() + sp_off, sizeof(row));
  const uint32_t foreign = row + 1;  // adjacent rows alternate sites
  std::memcpy(image.data() + sp_off, &foreign, sizeof(foreign));
  FixCrcs(&image);
  EXPECT_EQ(Audit(image).FailedValidators(), Names{"serve.bundle.index"})
      << Audit(image).ToString();
}

TEST(ServeAuditTest, RunAuditValidatorByNameNeedsBundleBytes) {
  AuditContext ctx;
  EXPECT_EQ(RunAuditValidator("serve.bundle.header", ctx).status().code(),
            StatusCode::kFailedPrecondition);
  const std::vector<uint8_t> image = GoodImage();
  ctx.bundle_data = image.data();
  ctx.bundle_size = image.size();
  Result<AuditReport> report = RunAuditValidator("serve.bundle.crc", ctx);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
}

}  // namespace
}  // namespace qrank
