// SnapshotStore single-threaded contract: publish/acquire semantics,
// generation counting, and reclamation — a replaced generation lives
// exactly as long as its last pin (the concurrent half of the contract
// lives in serve_hotswap_test.cc).

#include "serve/snapshot_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "serve/score_bundle.h"

namespace qrank {
namespace {

LoadedBundle MakeBundle(double q0) {
  ScoreBundleSource src;
  src.quality = {q0, 1.0};
  src.pagerank = {1.0, 2.0};
  return LoadedBundle::FromBuffer(
             ScoreBundleWriter::Create(std::move(src)).value().Serialize())
      .value();
}

TEST(SnapshotStoreTest, EmptyStoreHasNoBundle) {
  SnapshotStore store;
  EXPECT_FALSE(store.has_bundle());
  EXPECT_EQ(store.generation(), 0u);
  EXPECT_EQ(store.Acquire(), nullptr);
}

TEST(SnapshotStoreTest, PublishInstallsAndCountsGenerations) {
  SnapshotStore store;
  EXPECT_EQ(store.Publish(MakeBundle(3.0)), 1u);
  ASSERT_TRUE(store.has_bundle());
  std::shared_ptr<const LoadedBundle> first = store.Acquire();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->quality()[0], 3.0);

  EXPECT_EQ(store.Publish(MakeBundle(7.0)), 2u);
  EXPECT_EQ(store.generation(), 2u);
  std::shared_ptr<const LoadedBundle> second = store.Acquire();
  EXPECT_EQ(second->quality()[0], 7.0);
  // The earlier pin still reads the generation it acquired.
  EXPECT_EQ(first->quality()[0], 3.0);
}

TEST(SnapshotStoreTest, ReplacedGenerationFreedAfterLastUnpin) {
  SnapshotStore store;
  auto first = std::make_shared<const LoadedBundle>(MakeBundle(3.0));
  std::weak_ptr<const LoadedBundle> watch = first;
  store.Publish(std::move(first));

  std::shared_ptr<const LoadedBundle> pin = store.Acquire();
  store.Publish(MakeBundle(7.0));
  // Replaced but still pinned: must stay alive.
  EXPECT_FALSE(watch.expired());
  EXPECT_EQ(pin->quality()[0], 3.0);

  pin.reset();
  EXPECT_TRUE(watch.expired());
}

TEST(SnapshotStoreTest, AcquirePinsIndependently) {
  SnapshotStore store;
  store.Publish(MakeBundle(5.0));
  std::vector<std::shared_ptr<const LoadedBundle>> pins;
  for (int i = 0; i < 8; ++i) pins.push_back(store.Acquire());
  for (const auto& p : pins) EXPECT_EQ(p.get(), pins[0].get());
}

}  // namespace
}  // namespace qrank
