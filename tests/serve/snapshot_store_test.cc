// SnapshotStore single-threaded contract: publish/acquire semantics,
// generation counting, and reclamation — a replaced generation lives
// exactly as long as its last pin (the concurrent half of the contract
// lives in serve_hotswap_test.cc).

#include "serve/snapshot_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "serve/score_bundle.h"

namespace qrank {
namespace {

LoadedBundle MakeBundle(double q0) {
  ScoreBundleSource src;
  src.quality = {q0, 1.0};
  src.pagerank = {1.0, 2.0};
  return LoadedBundle::FromBuffer(
             ScoreBundleWriter::Create(std::move(src)).value().Serialize())
      .value();
}

TEST(SnapshotStoreTest, EmptyStoreHasNoBundle) {
  SnapshotStore store;
  EXPECT_FALSE(store.has_bundle());
  EXPECT_EQ(store.generation(), 0u);
  EXPECT_EQ(store.Acquire(), nullptr);
}

TEST(SnapshotStoreTest, PublishInstallsAndCountsGenerations) {
  SnapshotStore store;
  EXPECT_EQ(store.Publish(MakeBundle(3.0)), 1u);
  ASSERT_TRUE(store.has_bundle());
  std::shared_ptr<const LoadedBundle> first = store.Acquire();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->quality()[0], 3.0);

  EXPECT_EQ(store.Publish(MakeBundle(7.0)), 2u);
  EXPECT_EQ(store.generation(), 2u);
  std::shared_ptr<const LoadedBundle> second = store.Acquire();
  EXPECT_EQ(second->quality()[0], 7.0);
  // The earlier pin still reads the generation it acquired.
  EXPECT_EQ(first->quality()[0], 3.0);
}

TEST(SnapshotStoreTest, ReplacedGenerationFreedAfterLastUnpin) {
  SnapshotStore store;
  auto first = std::make_shared<const LoadedBundle>(MakeBundle(3.0));
  std::weak_ptr<const LoadedBundle> watch = first;
  store.Publish(std::move(first));

  std::shared_ptr<const LoadedBundle> pin = store.Acquire();
  store.Publish(MakeBundle(7.0));
  // Replaced but still pinned: must stay alive.
  EXPECT_FALSE(watch.expired());
  EXPECT_EQ(pin->quality()[0], 3.0);

  pin.reset();
  EXPECT_TRUE(watch.expired());
}

TEST(SnapshotStoreTest, AcquirePinsIndependently) {
  SnapshotStore store;
  store.Publish(MakeBundle(5.0));
  std::vector<std::shared_ptr<const LoadedBundle>> pins;
  for (int i = 0; i < 8; ++i) pins.push_back(store.Acquire());
  for (const auto& p : pins) EXPECT_EQ(p.get(), pins[0].get());
}

// Regression for the serve_pipeline publish-ordering bug: a slow or
// replayed producer finishing late must not clobber a fresher
// generation. PublishOrdered rejects any sequence at or below the
// watermark and leaves the store untouched.
TEST(SnapshotStoreTest, PublishOrderedRejectsStaleSequence) {
  SnapshotStore store;
  auto at = [](double q) {
    return std::make_shared<const LoadedBundle>(MakeBundle(q));
  };
  // Sequence 0 is a valid first watermark (ingest's initial publish).
  Result<uint64_t> first = store.PublishOrdered(at(1.0), 0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), 1u);
  EXPECT_EQ(store.last_ordered_sequence(), 0u);

  ASSERT_TRUE(store.PublishOrdered(at(2.0), 10).ok());
  EXPECT_EQ(store.last_ordered_sequence(), 10u);

  // Equal and lower sequences are both stale.
  EXPECT_EQ(store.PublishOrdered(at(99.0), 10).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.PublishOrdered(at(99.0), 3).status().code(),
            StatusCode::kFailedPrecondition);
  // The rejected publishes changed nothing: same bundle, same counters.
  EXPECT_EQ(store.generation(), 2u);
  EXPECT_EQ(store.last_ordered_sequence(), 10u);
  EXPECT_EQ(store.Acquire()->quality()[0], 2.0);

  // Strictly greater resumes.
  ASSERT_TRUE(store.PublishOrdered(at(3.0), 11).ok());
  EXPECT_EQ(store.generation(), 3u);
  EXPECT_EQ(store.Acquire()->quality()[0], 3.0);
}

TEST(SnapshotStoreTest, PublishOrderedCoexistsWithUnorderedPublish) {
  SnapshotStore store;
  store.Publish(MakeBundle(1.0));  // unordered publishes skip the gate
  ASSERT_TRUE(store
                  .PublishOrdered(
                      std::make_shared<const LoadedBundle>(MakeBundle(2.0)),
                      5)
                  .ok());
  EXPECT_EQ(store.generation(), 2u);
  // Unordered Publish still works and does not move the watermark.
  store.Publish(MakeBundle(9.0));
  EXPECT_EQ(store.last_ordered_sequence(), 5u);
}

}  // namespace
}  // namespace qrank
