// Compute -> serve handoff (core/bundle_export.h): a SnapshotSeries
// run exports a bundle whose columns are exactly the estimator's Q̂ and
// the last observation's PageRank, ready for QueryEngine.

#include "core/bundle_export.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/generators.h"
#include "serve/query_engine.h"

namespace qrank {
namespace {

// Three snapshots of a small evolving site-clustered graph.
SnapshotSeries MakeSeries() {
  SnapshotSeries series;
  Rng rng(55);
  CsrGraph g =
      CsrGraph::FromEdgeList(GenerateSiteClustered(6, 20, 4, 2, &rng).value())
          .value();
  EXPECT_TRUE(series.AddSnapshot(0.0, g).ok());
  // Later snapshots add a few edges (monotone growth keeps the common
  // set the full first snapshot).
  for (int t = 1; t <= 2; ++t) {
    EdgeList edges(g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (NodeId v : g.OutNeighbors(u)) edges.Add(u, v);
    }
    for (int extra = 0; extra < 12 * t; ++extra) {
      const NodeId u = static_cast<NodeId>(rng.UniformUint64(g.num_nodes()));
      const NodeId v = static_cast<NodeId>(rng.UniformUint64(g.num_nodes()));
      if (u != v) edges.Add(u, v);
    }
    g = CsrGraph::FromEdgeList(edges).value();
    EXPECT_TRUE(series.AddSnapshot(static_cast<double>(t), g).ok());
  }
  PageRankOptions pr;
  pr.scale = ScaleConvention::kTotalMassN;
  EXPECT_TRUE(series.ComputePageRanks(pr).ok());
  return series;
}

TEST(BundleExportTest, ExportMatchesEstimatorAndLastObservation) {
  const SnapshotSeries series = MakeSeries();
  BundleExportOptions options;
  options.site_ids.resize(series.CommonNodeCount());
  for (NodeId i = 0; i < series.CommonNodeCount(); ++i) {
    options.site_ids[i] = i / 20;  // generator's 20 pages per site
  }
  options.creator_tag = 42;

  Result<ScoreBundleWriter> writer =
      ExportScoreBundle(series, series.num_snapshots(), options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  Result<LoadedBundle> bundle =
      LoadedBundle::FromBuffer(writer.value().Serialize());
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  ASSERT_EQ(bundle->num_pages(), series.CommonNodeCount());
  EXPECT_EQ(bundle->num_sites(), 6u);
  EXPECT_EQ(bundle->creator_tag(), 42u);

  const Result<QualityEstimate> estimate =
      EstimateQuality(series, series.num_snapshots(), options.estimator);
  ASSERT_TRUE(estimate.ok());
  const std::vector<double>& last_pr =
      series.pagerank(series.num_snapshots() - 1);
  for (NodeId i = 0; i < bundle->num_pages(); ++i) {
    ASSERT_EQ(bundle->quality()[i], estimate->quality[i]);
    ASSERT_EQ(bundle->pagerank()[i], last_pr[i]);
  }

  // The exported bundle is servable as-is.
  TopKScratch scratch;
  TopKQuery q;
  q.k = 5;
  q.blend_alpha = 0.5;
  ASSERT_TRUE(
      QueryEngine::TopKOnBundle(bundle.value(), q, &scratch).ok());
  EXPECT_EQ(scratch.results().size(), 5u);
}

TEST(BundleExportTest, RejectsBadArguments) {
  const SnapshotSeries series = MakeSeries();
  EXPECT_EQ(ExportScoreBundle(series, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ExportScoreBundle(series, series.num_snapshots() + 1).status().code(),
      StatusCode::kInvalidArgument);

  SnapshotSeries empty;
  EXPECT_EQ(ExportScoreBundle(empty, 2).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace qrank
