// SnapshotSeries under cache-aware reordering: every (mode, ordering)
// combination must produce the same per-snapshot scores as the
// identity-order scratch solve, keep the public artifacts in original
// page ids, and expose the permutation it solved under.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/snapshot_series.h"
#include "graph/generators.h"
#include "graph/reorder.h"

namespace qrank {
namespace {

// Random churn: drop `drop_count` edges, add `add_count`, same node set.
CsrGraph Evolve(const CsrGraph& g, int add_count, int drop_count, Rng* rng) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) edges.push_back({u, v});
  }
  for (int k = 0; k < drop_count && !edges.empty(); ++k) {
    const size_t idx = rng->UniformUint64(edges.size());
    edges[idx] = edges.back();
    edges.pop_back();
  }
  const NodeId n = g.num_nodes();
  for (int k = 0; k < add_count; ++k) {
    const NodeId u = static_cast<NodeId>(rng->UniformUint64(n));
    const NodeId v = static_cast<NodeId>(rng->UniformUint64(n));
    if (u != v) edges.push_back({u, v});
  }
  return CsrGraph::FromEdges(n, edges).value();
}

// Four snapshots of a site-clustered web with light churn between
// consecutive crawls (the Section 8.1 shape).
SnapshotSeries MakeSeries() {
  Rng rng(42);
  SnapshotSeries series;
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateSiteClustered(6, 12, 3, 2, &rng).value())
                   .value();
  EXPECT_TRUE(series.AddSnapshot(0.0, g).ok());
  for (int i = 1; i < 4; ++i) {
    g = Evolve(g, 6, 4, &rng);
    EXPECT_TRUE(series.AddSnapshot(static_cast<double>(i), g).ok());
  }
  return series;
}

SeriesComputeOptions Options(SeriesMode mode, NodeOrdering ordering) {
  SeriesComputeOptions o;
  o.pagerank.tolerance = 1e-12;
  o.pagerank.max_iterations = 2000;
  o.mode = mode;
  o.ordering = ordering;
  return o;
}

bool SameGraph(const CsrGraph& a, const CsrGraph& b) {
  return a.num_nodes() == b.num_nodes() &&
         std::equal(a.offsets().begin(), a.offsets().end(),
                    b.offsets().begin(), b.offsets().end()) &&
         std::equal(a.targets().begin(), a.targets().end(),
                    b.targets().begin(), b.targets().end());
}

TEST(SeriesReorderTest, AllModesAndOrderingsAgreeWithIdentityScratch) {
  SnapshotSeries reference = MakeSeries();
  ASSERT_TRUE(reference
                  .ComputePageRanks(
                      Options(SeriesMode::kScratch, NodeOrdering::kIdentity))
                  .ok());

  for (SeriesMode mode : {SeriesMode::kScratch, SeriesMode::kWarmStart,
                          SeriesMode::kIncremental}) {
    for (NodeOrdering ordering :
         {NodeOrdering::kIdentity, NodeOrdering::kDegreeDescending,
          NodeOrdering::kBfsLocality}) {
      SnapshotSeries series = MakeSeries();
      ASSERT_TRUE(series.ComputePageRanks(Options(mode, ordering)).ok())
          << NodeOrderingName(ordering);
      for (size_t i = 0; i < series.num_snapshots(); ++i) {
        const std::vector<double>& got = series.pagerank(i);
        const std::vector<double>& want = reference.pagerank(i);
        ASSERT_EQ(got.size(), want.size());
        for (size_t u = 0; u < got.size(); ++u) {
          ASSERT_NEAR(got[u], want[u], 1e-8)
              << "snapshot " << i << " node " << u << " mode "
              << static_cast<int>(mode) << " ordering "
              << NodeOrderingName(ordering);
        }
      }
    }
  }
}

TEST(SeriesReorderTest, CommonGraphsStayInOriginalIds) {
  SnapshotSeries reference = MakeSeries();
  ASSERT_TRUE(reference
                  .ComputePageRanks(
                      Options(SeriesMode::kScratch, NodeOrdering::kIdentity))
                  .ok());
  for (SeriesMode mode : {SeriesMode::kScratch, SeriesMode::kWarmStart,
                          SeriesMode::kIncremental}) {
    SnapshotSeries series = MakeSeries();
    ASSERT_TRUE(series
                    .ComputePageRanks(
                        Options(mode, NodeOrdering::kBfsLocality))
                    .ok());
    for (size_t i = 0; i < series.num_snapshots(); ++i) {
      EXPECT_TRUE(SameGraph(series.common_graph(i),
                            reference.common_graph(i)))
          << "snapshot " << i;
    }
  }
}

TEST(SeriesReorderTest, PermutationExposedAndValid) {
  for (NodeOrdering ordering :
       {NodeOrdering::kDegreeDescending, NodeOrdering::kBfsLocality}) {
    SnapshotSeries series = MakeSeries();
    ASSERT_TRUE(series
                    .ComputePageRanks(
                        Options(SeriesMode::kIncremental, ordering))
                    .ok());
    EXPECT_TRUE(ValidatePermutation(series.permutation(),
                                    series.CommonNodeCount())
                    .ok())
        << NodeOrderingName(ordering);
  }
}

TEST(SeriesReorderTest, IdentityOrderingLeavesPermutationEmpty) {
  SnapshotSeries series = MakeSeries();
  ASSERT_TRUE(series
                  .ComputePageRanks(
                      Options(SeriesMode::kWarmStart, NodeOrdering::kIdentity))
                  .ok());
  EXPECT_TRUE(series.permutation().empty());
}

TEST(SeriesReorderTest, ReorderingDoesNotChangeWorkAccounting) {
  // The incremental engine's update counts are a function of the delta,
  // not of the label space it is solved in: reordering must not inflate
  // the work the series reports.
  SnapshotSeries plain = MakeSeries();
  ASSERT_TRUE(plain
                  .ComputePageRanks(Options(SeriesMode::kIncremental,
                                            NodeOrdering::kIdentity))
                  .ok());
  SnapshotSeries reordered = MakeSeries();
  ASSERT_TRUE(reordered
                  .ComputePageRanks(Options(SeriesMode::kIncremental,
                                            NodeOrdering::kBfsLocality))
                  .ok());
  ASSERT_EQ(plain.node_updates_per_snapshot().size(),
            reordered.node_updates_per_snapshot().size());
  // Same number of snapshots solved incrementally; iteration counts may
  // differ by a round due to different FP rounding, but not wildly.
  for (size_t i = 0; i < plain.iterations_per_snapshot().size(); ++i) {
    EXPECT_NEAR(
        static_cast<double>(plain.iterations_per_snapshot()[i]),
        static_cast<double>(reordered.iterations_per_snapshot()[i]), 2.0)
        << "snapshot " << i;
  }
}

}  // namespace
}  // namespace qrank
