#include "core/bias_metrics.h"

#include <gtest/gtest.h>

namespace qrank {
namespace {

TEST(GiniTest, ValidatesInput) {
  EXPECT_FALSE(GiniCoefficient({}).ok());
  EXPECT_FALSE(GiniCoefficient({1.0, -2.0}).ok());
}

TEST(GiniTest, PerfectEqualityIsZero) {
  EXPECT_NEAR(GiniCoefficient({5.0, 5.0, 5.0, 5.0}).value(), 0.0, 1e-12);
}

TEST(GiniTest, MaximalInequalityApproachesOne) {
  // All mass on one of n pages: G = (n-1)/n.
  Result<double> g = GiniCoefficient({0.0, 0.0, 0.0, 10.0});
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(g.value(), 0.75, 1e-12);
}

TEST(GiniTest, KnownValue) {
  // Classic example: {1, 2, 3, 4} -> G = 0.25.
  EXPECT_NEAR(GiniCoefficient({4.0, 1.0, 3.0, 2.0}).value(), 0.25, 1e-12);
}

TEST(GiniTest, AllZeroIsZero) {
  EXPECT_NEAR(GiniCoefficient({0.0, 0.0}).value(), 0.0, 1e-12);
}

TEST(GiniTest, ScaleInvariant) {
  double a = GiniCoefficient({1.0, 2.0, 7.0}).value();
  double b = GiniCoefficient({10.0, 20.0, 70.0}).value();
  EXPECT_NEAR(a, b, 1e-12);
}

TEST(TopShareTest, Basics) {
  EXPECT_FALSE(TopShare({}, 1).ok());
  EXPECT_FALSE(TopShare({1.0}, 0).ok());
  EXPECT_FALSE(TopShare({1.0}, 2).ok());
  EXPECT_NEAR(TopShare({1.0, 2.0, 7.0}, 1).value(), 0.7, 1e-12);
  EXPECT_NEAR(TopShare({1.0, 2.0, 7.0}, 2).value(), 0.9, 1e-12);
  EXPECT_NEAR(TopShare({1.0, 2.0, 7.0}, 3).value(), 1.0, 1e-12);
  EXPECT_NEAR(TopShare({0.0, 0.0}, 1).value(), 0.0, 1e-12);
}

TEST(LorenzCurveTest, EndpointsAndMonotonicity) {
  Result<std::vector<double>> curve =
      LorenzCurve({1.0, 2.0, 3.0, 4.0}, 4);
  ASSERT_TRUE(curve.ok());
  ASSERT_EQ(curve->size(), 5u);
  EXPECT_DOUBLE_EQ(curve->front(), 0.0);
  EXPECT_DOUBLE_EQ(curve->back(), 1.0);
  for (size_t i = 1; i < curve->size(); ++i) {
    EXPECT_GE((*curve)[i], (*curve)[i - 1]);
  }
  // Bottom half (values 1,2 of total 10) holds 30%.
  EXPECT_NEAR((*curve)[2], 0.3, 1e-12);
}

TEST(LorenzCurveTest, EqualValuesGiveDiagonal) {
  Result<std::vector<double>> curve = LorenzCurve({2.0, 2.0, 2.0, 2.0}, 4);
  ASSERT_TRUE(curve.ok());
  for (size_t i = 0; i < curve->size(); ++i) {
    EXPECT_NEAR((*curve)[i], static_cast<double>(i) / 4.0, 1e-12);
  }
}

TEST(LorenzCurveTest, ValidatesInput) {
  EXPECT_FALSE(LorenzCurve({}, 4).ok());
  EXPECT_FALSE(LorenzCurve({1.0}, 0).ok());
  EXPECT_FALSE(LorenzCurve({-1.0}, 2).ok());
}

TEST(DiscoveryTrackerTest, RecordsFirstCrossing) {
  DiscoveryTracker tracker(10.0);
  tracker.Watch(0, 5.0);
  tracker.Watch(1, 5.0);
  EXPECT_EQ(tracker.num_watched(), 2u);

  tracker.Observe(6.0, {3.0, 0.0});
  EXPECT_EQ(tracker.num_discovered(), 0u);
  tracker.Observe(8.0, {12.0, 0.0});
  EXPECT_EQ(tracker.num_discovered(), 1u);
  // Later observations do not overwrite the first crossing.
  tracker.Observe(20.0, {100.0, 0.0});
  std::vector<double> latencies = tracker.DiscoveredLatencies();
  ASSERT_EQ(latencies.size(), 1u);
  EXPECT_DOUBLE_EQ(latencies[0], 3.0);  // 8.0 - 5.0
  EXPECT_DOUBLE_EQ(tracker.DiscoveredFraction(), 0.5);
}

TEST(DiscoveryTrackerTest, MeanLatencyCensorsUndiscovered) {
  DiscoveryTracker tracker(1.0);
  tracker.Watch(0, 0.0);
  tracker.Watch(1, 0.0);
  tracker.Observe(2.0, {1.0, 0.0});
  Result<double> mean = tracker.MeanLatency(/*censored_latency=*/10.0);
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ(mean.value(), 6.0);  // (2 + 10) / 2
}

TEST(DiscoveryTrackerTest, EmptyTrackerFailsMeanLatency) {
  DiscoveryTracker tracker(1.0);
  EXPECT_FALSE(tracker.MeanLatency(1.0).ok());
  EXPECT_DOUBLE_EQ(tracker.DiscoveredFraction(), 0.0);
}

TEST(DiscoveryTrackerTest, PageBeyondAttentionVectorIsZero) {
  DiscoveryTracker tracker(1.0);
  tracker.Watch(5, 0.0);
  tracker.Observe(1.0, {9.0});  // page 5 not covered
  EXPECT_EQ(tracker.num_discovered(), 0u);
}

}  // namespace
}  // namespace qrank
