#include "core/visit_trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace qrank {
namespace {

WebSimulator MakeSim() {
  WebSimulatorOptions o;
  o.num_users = 250;
  o.seed = 8;
  o.page_birth_rate = 8.0;
  return WebSimulator::Create(o).value();
}

TEST(VisitTraceTest, SampleTimesMustIncrease) {
  WebSimulator sim = MakeSim();
  VisitTraceRecorder recorder;
  ASSERT_TRUE(sim.AdvanceTo(1.0).ok());
  EXPECT_TRUE(recorder.Sample(sim).ok());
  // Without advancing, the same time is rejected.
  EXPECT_FALSE(recorder.Sample(sim).ok());
  ASSERT_TRUE(sim.AdvanceTo(2.0).ok());
  EXPECT_TRUE(recorder.Sample(sim).ok());
  EXPECT_EQ(recorder.num_samples(), 2u);
}

TEST(VisitTraceTest, AlignedSnapshotsShareTheSmallestUniverse) {
  WebSimulator sim = MakeSim();
  VisitTraceRecorder recorder;
  ASSERT_TRUE(sim.AdvanceTo(1.0).ok());
  ASSERT_TRUE(recorder.Sample(sim).ok());
  NodeId early_pages = sim.num_pages();
  ASSERT_TRUE(sim.AdvanceTo(6.0).ok());  // births happened
  ASSERT_TRUE(recorder.Sample(sim).ok());
  ASSERT_GT(sim.num_pages(), early_pages);

  std::vector<TrafficSnapshot> aligned = recorder.AlignedSnapshots();
  ASSERT_EQ(aligned.size(), 2u);
  EXPECT_EQ(aligned[0].cumulative_visits.size(), early_pages);
  EXPECT_EQ(aligned[1].cumulative_visits.size(), early_pages);
  // Raw samples retain their original sizes.
  EXPECT_GT(recorder.snapshots()[1].cumulative_visits.size(),
            recorder.snapshots()[0].cumulative_visits.size());
}

TEST(VisitTraceTest, CountersAreMonotonePerPage) {
  WebSimulator sim = MakeSim();
  VisitTraceRecorder recorder;
  for (double t : {2.0, 4.0, 6.0}) {
    ASSERT_TRUE(sim.AdvanceTo(t).ok());
    ASSERT_TRUE(recorder.Sample(sim).ok());
  }
  std::vector<TrafficSnapshot> aligned = recorder.AlignedSnapshots();
  for (size_t i = 1; i < aligned.size(); ++i) {
    for (size_t p = 0; p < aligned[i].cumulative_visits.size(); ++p) {
      EXPECT_GE(aligned[i].cumulative_visits[p],
                aligned[i - 1].cumulative_visits[p]);
    }
  }
}

TEST(VisitTraceTest, EstimateQualityRunsOnTrace) {
  WebSimulator sim = MakeSim();
  VisitTraceRecorder recorder;
  for (double t : {3.0, 6.0, 9.0}) {
    ASSERT_TRUE(sim.AdvanceTo(t).ok());
    ASSERT_TRUE(recorder.Sample(sim).ok());
  }
  TrafficEstimatorOptions options;
  options.visit_rate_normalization = 250.0;
  Result<QualityEstimate> est = recorder.EstimateQuality(options);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->quality.size(),
            recorder.AlignedSnapshots()[0].cumulative_visits.size());
}

TEST(VisitTraceTest, EstimateNeedsThreeSamples) {
  WebSimulator sim = MakeSim();
  VisitTraceRecorder recorder;
  ASSERT_TRUE(sim.AdvanceTo(1.0).ok());
  ASSERT_TRUE(recorder.Sample(sim).ok());
  ASSERT_TRUE(sim.AdvanceTo(2.0).ok());
  ASSERT_TRUE(recorder.Sample(sim).ok());
  EXPECT_FALSE(recorder.EstimateQuality(TrafficEstimatorOptions{}).ok());
}

TEST(VisitTraceTest, CsvRoundTrip) {
  WebSimulator sim = MakeSim();
  VisitTraceRecorder recorder;
  for (double t : {1.0, 2.0}) {
    ASSERT_TRUE(sim.AdvanceTo(t).ok());
    ASSERT_TRUE(recorder.Sample(sim).ok());
  }
  std::string path = ::testing::TempDir() + "/qrank_trace.csv";
  ASSERT_TRUE(recorder.WriteCsv(path).ok());
  std::ifstream f(path);
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header.rfind("time,page0,page1", 0), 0u);
  std::string row;
  int rows = 0;
  while (std::getline(f, row)) ++rows;
  EXPECT_EQ(rows, 2);
  std::remove(path.c_str());
  EXPECT_EQ(recorder.WriteCsv("/nonexistent_zzz/x.csv").code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace qrank
