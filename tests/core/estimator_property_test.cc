// Property tests on Equation 1's algebraic structure and its
// consistency with the analytic model.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "core/quality_estimator.h"
#include "graph/generators.h"
#include "model/visitation_model.h"
#include "rank/pagerank.h"

namespace qrank {
namespace {

using Obs = std::vector<std::vector<double>>;

Obs RandomObservations(uint64_t seed, size_t pages, size_t snapshots) {
  Rng rng(seed);
  Obs obs(snapshots, std::vector<double>(pages));
  for (size_t p = 0; p < pages; ++p) {
    double value = rng.UniformDouble(0.1, 5.0);
    for (size_t i = 0; i < snapshots; ++i) {
      value *= rng.UniformDouble(0.7, 1.4);  // random walk in log space
      obs[i][p] = value;
    }
  }
  return obs;
}

class ScaleCovarianceTest : public ::testing::TestWithParam<double> {};

TEST_P(ScaleCovarianceTest, ConstantAbsorbsObservationScale) {
  // Q_C(obs) = C * rel + PR_last, with rel scale-free and PR_last
  // linear in scale. Hence the exact covariance identity
  //     Q_C(c * obs) = c * Q_{C/c}(obs),
  // i.e. rescaling the popularity units is equivalent to rescaling the
  // paper's constant — which is why the best C is unit-dependent
  // (EXPERIMENTS.md, Figure 4 discussion). Trends are scale-invariant.
  const double c = GetParam();
  Obs base = RandomObservations(7, 50, 3);
  Obs scaled = base;
  for (auto& row : scaled) {
    for (double& v : row) v *= c;
  }
  QualityEstimatorOptions scaled_options;  // weight C = 0.1
  scaled_options.clamp_negative = false;   // clamping breaks linearity
  QualityEstimatorOptions base_options = scaled_options;
  base_options.relative_increase_weight =
      scaled_options.relative_increase_weight / c;

  auto est_base = EstimateQuality(base, base_options);
  auto est_scaled = EstimateQuality(scaled, scaled_options);
  ASSERT_TRUE(est_base.ok());
  ASSERT_TRUE(est_scaled.ok());
  for (size_t p = 0; p < 50; ++p) {
    EXPECT_EQ(est_base->trend[p], est_scaled->trend[p]) << p;
    EXPECT_NEAR(est_scaled->quality[p], c * est_base->quality[p],
                1e-9 * std::max(1.0, std::fabs(c * est_base->quality[p])))
        << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, ScaleCovarianceTest,
                         ::testing::Values(0.01, 0.5, 2.0, 100.0));

TEST(EstimatorPropertyTest, PermutationEquivariance) {
  Obs obs = RandomObservations(11, 40, 3);
  // Reverse the page order.
  Obs reversed = obs;
  for (auto& row : reversed) std::reverse(row.begin(), row.end());
  auto est = EstimateQuality(obs);
  auto est_rev = EstimateQuality(reversed);
  ASSERT_TRUE(est.ok());
  ASSERT_TRUE(est_rev.ok());
  for (size_t p = 0; p < 40; ++p) {
    EXPECT_DOUBLE_EQ(est->quality[p], est_rev->quality[39 - p]);
    EXPECT_EQ(est->trend[p], est_rev->trend[39 - p]);
  }
}

TEST(EstimatorPropertyTest, EstimateIsMonotoneInFinalObservation) {
  // Raising PR(t3) (keeping the trend direction) never lowers the
  // estimate: both terms of Equation 1 are non-decreasing in PR(t3).
  for (double bump : {0.01, 0.1, 1.0}) {
    Obs lo = {{1.0}, {1.3}, {1.6}};
    Obs hi = {{1.0}, {1.3}, {1.6 + bump}};
    double q_lo = EstimateQuality(lo)->quality[0];
    double q_hi = EstimateQuality(hi)->quality[0];
    EXPECT_GT(q_hi, q_lo) << "bump " << bump;
  }
}

TEST(EstimatorPropertyTest, TrendCountsPartitionPages) {
  Obs obs = RandomObservations(13, 200, 4);
  auto est = EstimateQuality(obs);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->num_rising + est->num_falling + est->num_oscillating +
                est->num_stable,
            200u);
}

// Consistency with the model: feed exact logistic popularity series
// through the estimator; higher-quality pages must receive higher
// estimates whenever both are pre-saturation (the regime where the
// estimator is designed to discriminate).
class ModelConsistencyTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ModelConsistencyTest, HigherQualityGetsHigherEstimate) {
  auto [q_low, q_high] = GetParam();
  ASSERT_LT(q_low, q_high);
  auto popularity_series = [](double q) {
    VisitationParams params;
    params.quality = q;
    params.num_users = 1e6;
    params.visit_rate = 1e6;
    params.initial_popularity = 1e-4;
    VisitationModel m = VisitationModel::Create(params).value();
    // Observations early in the expansion phase of the slower page.
    return std::vector<double>{m.Popularity(4.0), m.Popularity(6.0),
                               m.Popularity(8.0)};
  };
  std::vector<double> low = popularity_series(q_low);
  std::vector<double> high = popularity_series(q_high);
  Obs obs = {{low[0], high[0]}, {low[1], high[1]}, {low[2], high[2]}};
  QualityEstimatorOptions options;
  options.min_relative_change = 0.0;  // no stability filter here
  auto est = EstimateQuality(obs, options);
  ASSERT_TRUE(est.ok());
  EXPECT_GT(est->quality[1], est->quality[0])
      << "q_low=" << q_low << " q_high=" << q_high;
}

INSTANTIATE_TEST_SUITE_P(
    QualityPairs, ModelConsistencyTest,
    ::testing::Values(std::make_tuple(0.1, 0.3), std::make_tuple(0.2, 0.5),
                      std::make_tuple(0.3, 0.8), std::make_tuple(0.5, 0.9),
                      std::make_tuple(0.05, 0.95)));

// --- Invariants under the parallel PageRank engines -------------------
//
// The estimator consumes PageRank observations; these properties pin
// down that the parallel substrate preserves the estimator's algebraic
// structure for randomized graph sizes and seeds.

class ParallelEngineInvariantTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, NodeId, int>> {};

TEST_P(ParallelEngineInvariantTest, RankMassConservedUnderParallelEngine) {
  auto [seed, nodes, threads] = GetParam();
  Rng rng(seed);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateBarabasiAlbert(nodes, 4, &rng).value())
                   .value();
  for (ScaleConvention scale :
       {ScaleConvention::kProbability, ScaleConvention::kTotalMassN}) {
    PageRankOptions o;
    o.num_threads = threads;
    o.scale = scale;
    auto r = ComputePageRank(g, o);
    ASSERT_TRUE(r.ok());
    double mass = 0.0;
    for (double s : r->scores) mass += s;
    const double expected = scale == ScaleConvention::kProbability
                                ? 1.0
                                : static_cast<double>(nodes);
    EXPECT_NEAR(mass, expected, 1e-8 * expected)
        << "seed=" << seed << " nodes=" << nodes << " threads=" << threads;
  }
}

TEST_P(ParallelEngineInvariantTest, EstimatorSumInvariantUnderParallelEngine) {
  // Summing Equation 1 over all pages: sum_p Q(p) = C * sum_p ΔPR/PR +
  // sum_p PR_last, and with clamping off the identity is exact. Feed two
  // PageRank observations (damping perturbed between snapshots, as a
  // stand-in for graph evolution) computed by the parallel engine and
  // check the decomposition holds to floating-point accuracy — it would
  // not if thread scheduling perturbed the observation vectors between
  // the two EstimateQuality-internal passes.
  auto [seed, nodes, threads] = GetParam();
  Rng rng(seed + 1000);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateBarabasiAlbert(nodes, 4, &rng).value())
                   .value();
  PageRankOptions o;
  o.num_threads = threads;
  auto pr1 = ComputePageRank(g, o);
  o.damping = 0.80;
  auto pr2 = ComputePageRank(g, o);
  ASSERT_TRUE(pr1.ok() && pr2.ok());

  QualityEstimatorOptions eo;
  eo.clamp_negative = false;
  eo.min_relative_change = 0.0;
  auto est = EstimateQuality({pr1->scores, pr2->scores}, eo);
  ASSERT_TRUE(est.ok());

  double q_sum = 0.0, rel_sum = 0.0, pr_sum = 0.0;
  for (size_t p = 0; p < est->quality.size(); ++p) {
    q_sum += est->quality[p];
    rel_sum += est->relative_increase[p];
    pr_sum += pr2->scores[p];
  }
  EXPECT_NEAR(q_sum, eo.relative_increase_weight * rel_sum + pr_sum,
              1e-9 * std::max(1.0, std::fabs(q_sum)))
      << "seed=" << seed << " nodes=" << nodes << " threads=" << threads;
}

TEST_P(ParallelEngineInvariantTest, EstimatesIdenticalAcrossThreadCounts) {
  // End-to-end determinism: estimator output on parallel-engine
  // observations is bit-identical to the serial run.
  auto [seed, nodes, threads] = GetParam();
  Rng rng(seed + 2000);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateBarabasiAlbert(nodes, 4, &rng).value())
                   .value();
  auto observe = [&](int num_threads) {
    PageRankOptions o;
    o.num_threads = num_threads;
    auto pr1 = ComputePageRank(g, o);
    o.damping = 0.9;
    auto pr2 = ComputePageRank(g, o);
    return EstimateQuality({pr1->scores, pr2->scores});
  };
  auto serial = observe(1);
  auto parallel = observe(threads);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  for (size_t p = 0; p < serial->quality.size(); ++p) {
    ASSERT_EQ(parallel->quality[p], serial->quality[p]) << "page " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedGraphs, ParallelEngineInvariantTest,
    ::testing::Combine(::testing::Values(3u, 41u, 271u),
                       ::testing::Values(NodeId{64}, NodeId{500},
                                         NodeId{2500}),
                       ::testing::Values(2, 8)));

TEST(EstimatorPropertyTest, ZeroChangeEqualsCurrentValueExactly) {
  Obs obs = {{2.5, 0.3}, {2.5, 0.3}, {2.5, 0.3}};
  auto est = EstimateQuality(obs);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->quality[0], 2.5);
  EXPECT_DOUBLE_EQ(est->quality[1], 0.3);
  EXPECT_EQ(est->trend[0], PageTrend::kStable);
}

}  // namespace
}  // namespace qrank
