#include "core/quality_estimator.h"

#include <gtest/gtest.h>

namespace qrank {
namespace {

using Obs = std::vector<std::vector<double>>;

TEST(QualityEstimatorTest, ValidatesInput) {
  EXPECT_FALSE(EstimateQuality(Obs{}).ok());
  EXPECT_FALSE(EstimateQuality(Obs{{1.0}}).ok());              // 1 obs
  EXPECT_FALSE(EstimateQuality(Obs{{1.0}, {1.0, 2.0}}).ok());  // sizes
  EXPECT_FALSE(EstimateQuality(Obs{{}, {}}).ok());             // empty
  EXPECT_FALSE(EstimateQuality(Obs{{0.0}, {1.0}}).ok());       // zero PR
  EXPECT_FALSE(EstimateQuality(Obs{{-1.0}, {1.0}}).ok());      // negative

  QualityEstimatorOptions o;
  o.relative_increase_weight = -0.1;
  EXPECT_FALSE(EstimateQuality(Obs{{1.0}, {2.0}}, o).ok());
  o = QualityEstimatorOptions{};
  o.min_relative_change = -0.1;
  EXPECT_FALSE(EstimateQuality(Obs{{1.0}, {2.0}}, o).ok());
}

TEST(QualityEstimatorTest, RisingPageUsesEquationOne) {
  // PR: 1.0 -> 1.5 -> 2.0. rel = (2-1)/1 = 1; Q = 0.1*1 + 2 = 2.1.
  Obs obs = {{1.0}, {1.5}, {2.0}};
  Result<QualityEstimate> est = EstimateQuality(obs);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->trend[0], PageTrend::kRising);
  EXPECT_NEAR(est->quality[0], 2.1, 1e-12);
  EXPECT_NEAR(est->relative_increase[0], 1.0, 1e-12);
  EXPECT_EQ(est->num_rising, 1u);
}

TEST(QualityEstimatorTest, FallingPageGetsNegativeCorrection) {
  // PR: 2.0 -> 1.5 -> 1.0. rel = -0.5; Q = 1.0 - 0.05 = 0.95.
  Obs obs = {{2.0}, {1.5}, {1.0}};
  Result<QualityEstimate> est = EstimateQuality(obs);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->trend[0], PageTrend::kFalling);
  EXPECT_NEAR(est->quality[0], 0.95, 1e-12);
  EXPECT_EQ(est->num_falling, 1u);
}

TEST(QualityEstimatorTest, OscillatingPageFallsBackToCurrentPageRank) {
  // Up then down: the paper sets I = 0 for these.
  Obs obs = {{1.0}, {2.0}, {1.2}};
  Result<QualityEstimate> est = EstimateQuality(obs);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->trend[0], PageTrend::kOscillating);
  EXPECT_NEAR(est->quality[0], 1.2, 1e-12);
  EXPECT_NEAR(est->relative_increase[0], 0.0, 1e-12);
  EXPECT_EQ(est->num_oscillating, 1u);
}

TEST(QualityEstimatorTest, StablePageFlaggedAndLeftAtCurrentPageRank) {
  // 2% total change, below the 5% threshold.
  Obs obs = {{1.00}, {1.01}, {1.02}};
  Result<QualityEstimate> est = EstimateQuality(obs);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->trend[0], PageTrend::kStable);
  EXPECT_NEAR(est->quality[0], 1.02, 1e-12);
  EXPECT_EQ(est->num_stable, 1u);
}

TEST(QualityEstimatorTest, StableThresholdIsConfigurable) {
  Obs obs = {{1.00}, {1.01}, {1.02}};
  QualityEstimatorOptions o;
  o.min_relative_change = 0.01;  // now 2% counts as movement
  Result<QualityEstimate> est = EstimateQuality(obs, o);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->trend[0], PageTrend::kRising);
}

TEST(QualityEstimatorTest, MiddleObservationsOnlyAffectTrend) {
  // Same endpoints, different paths: equation uses first/last only.
  Obs monotone = {{1.0}, {1.4}, {2.0}};
  Obs wiggly = {{1.0}, {2.5}, {2.0}};
  double q_monotone = EstimateQuality(monotone)->quality[0];
  double q_wiggly = EstimateQuality(wiggly)->quality[0];
  EXPECT_NEAR(q_monotone, 2.1, 1e-12);
  EXPECT_NEAR(q_wiggly, 2.0, 1e-12);  // oscillating -> current PR
}

TEST(QualityEstimatorTest, TwoObservationsCannotOscillate) {
  Obs obs = {{1.0, 2.0}, {2.0, 1.0}};
  Result<QualityEstimate> est = EstimateQuality(obs);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->trend[0], PageTrend::kRising);
  EXPECT_EQ(est->trend[1], PageTrend::kFalling);
}

TEST(QualityEstimatorTest, ClampNegativeEstimates) {
  // Deep fall with huge C would go negative: 0.1 + 10*(-0.9) < 0.
  Obs obs = {{1.0}, {0.5}, {0.1}};
  QualityEstimatorOptions o;
  o.relative_increase_weight = 10.0;
  Result<QualityEstimate> est = EstimateQuality(obs, o);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->quality[0], 0.0);

  o.clamp_negative = false;
  est = EstimateQuality(obs, o);
  ASSERT_TRUE(est.ok());
  EXPECT_LT(est->quality[0], 0.0);
}

TEST(QualityEstimatorTest, CustomWeightScalesCorrection) {
  Obs obs = {{1.0}, {1.5}, {2.0}};
  QualityEstimatorOptions o;
  o.relative_increase_weight = 0.5;
  Result<QualityEstimate> est = EstimateQuality(obs, o);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->quality[0], 2.5, 1e-12);
}

TEST(QualityEstimatorTest, ZeroWeightReducesToCurrentPageRank) {
  Obs obs = {{1.0, 3.0}, {2.0, 2.0}, {4.0, 1.0}};
  QualityEstimatorOptions o;
  o.relative_increase_weight = 0.0;
  Result<QualityEstimate> est = EstimateQuality(obs, o);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->quality[0], 4.0, 1e-12);
  EXPECT_NEAR(est->quality[1], 1.0, 1e-12);
}

TEST(QualityEstimatorTest, MixedPopulationCountsAreConsistent) {
  Obs obs = {{1.0, 2.0, 1.0, 1.00}, {1.5, 1.5, 2.0, 1.01},
             {2.0, 1.0, 1.5, 1.02}};
  Result<QualityEstimate> est = EstimateQuality(obs);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->num_rising, 1u);
  EXPECT_EQ(est->num_falling, 1u);
  EXPECT_EQ(est->num_oscillating, 1u);
  EXPECT_EQ(est->num_stable, 1u);
  EXPECT_EQ(est->num_rising + est->num_falling + est->num_oscillating +
                est->num_stable,
            est->quality.size());
}

TEST(QualityEstimatorTest, SeriesOverloadUsesObservationPrefix) {
  SnapshotSeries series;
  // Three rings of growing size; PageRank on the common 4-node prefix.
  ASSERT_TRUE(
      series
          .AddSnapshot(1.0, CsrGraph::FromEdges(
                                4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}})
                                .value())
          .ok());
  ASSERT_TRUE(
      series
          .AddSnapshot(2.0, CsrGraph::FromEdges(
                                4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}})
                                .value())
          .ok());
  // Without ComputePageRanks the overload fails.
  EXPECT_EQ(EstimateQuality(series, 2).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(series.ComputePageRanks(PageRankOptions{}).ok());
  EXPECT_FALSE(EstimateQuality(series, 1).ok());
  EXPECT_FALSE(EstimateQuality(series, 3).ok());
  Result<QualityEstimate> est = EstimateQuality(series, 2);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->quality.size(), 4u);
}

}  // namespace
}  // namespace qrank
