// Integration test: the full Section 8 pipeline on a reduced-scale
// simulated crawl, asserting the paper's qualitative results.

#include "core/experiment.h"

#include <gtest/gtest.h>

namespace qrank {
namespace {

CrawlExperimentOptions SmallOptions() {
  CrawlExperimentOptions o;
  o.simulator.num_users = 400;
  o.simulator.page_birth_rate = 12.0;
  o.simulator.seed = 101;
  o.truth_top_k = 40;
  return o;
}

TEST(CrawlExperimentTest, ValidatesSnapshotTimes) {
  CrawlExperimentOptions o = SmallOptions();
  o.snapshot_times = {1.0, 2.0, 3.0};  // too few
  EXPECT_FALSE(RunCrawlExperiment(o).ok());
  o.snapshot_times = {1.0, 2.0, 2.0, 3.0};  // duplicate
  EXPECT_FALSE(RunCrawlExperiment(o).ok());
  o.snapshot_times = {3.0, 2.0, 4.0, 5.0};  // unsorted
  EXPECT_FALSE(RunCrawlExperiment(o).ok());
  o.snapshot_times = {-1.0, 2.0, 4.0, 5.0};  // negative
  EXPECT_FALSE(RunCrawlExperiment(o).ok());
}

TEST(CrawlExperimentTest, PropagatesSimulatorErrors) {
  CrawlExperimentOptions o = SmallOptions();
  o.simulator.num_users = 0;
  EXPECT_FALSE(RunCrawlExperiment(o).ok());
}

class CrawlExperimentFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    result_ = new CrawlExperimentResult(
        RunCrawlExperiment(SmallOptions()).value());
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static CrawlExperimentResult* result_;
};

CrawlExperimentResult* CrawlExperimentFixture::result_ = nullptr;

TEST_F(CrawlExperimentFixture, SnapshotStructureMatchesConfig) {
  EXPECT_EQ(result_->series.num_snapshots(), 4u);
  EXPECT_DOUBLE_EQ(result_->series.time(0), 16.0);
  EXPECT_DOUBLE_EQ(result_->series.time(3), 32.0);
  // Common pages = pages alive at t1 (page births only add pages).
  EXPECT_EQ(result_->common_pages, result_->series.CommonNodeCount());
  EXPECT_GE(result_->common_pages, 400u);
  // Estimate covers every common page.
  EXPECT_EQ(result_->estimate.quality.size(), result_->common_pages);
  EXPECT_EQ(result_->true_quality.size(), result_->common_pages);
}

TEST_F(CrawlExperimentFixture, SimulatorActivityRecorded) {
  EXPECT_GT(result_->total_visits, 1000u);
  EXPECT_GT(result_->total_likes, 400u);
}

TEST_F(CrawlExperimentFixture, PaperShapeEstimatorBeatsCurrentPageRank) {
  // The headline qualitative result of Section 8.2.
  EXPECT_GT(result_->comparison.improvement_factor, 1.0);
  EXPECT_LT(result_->comparison.quality.mean_error,
            result_->comparison.pagerank.mean_error);
  // And the Figure 5 lowest-bin relation: Q has at least as much mass
  // below 0.1 error.
  EXPECT_GE(result_->comparison.quality.fraction_below_0_1,
            result_->comparison.pagerank.fraction_below_0_1);
}

TEST_F(CrawlExperimentFixture, TrendPopulationIsMixed) {
  // The paper reports rising, falling and oscillating pages all exist.
  EXPECT_GT(result_->estimate.num_rising, 0u);
  EXPECT_GT(result_->estimate.num_falling, 0u);
  EXPECT_GT(result_->estimate.num_oscillating, 0u);
}

TEST_F(CrawlExperimentFixture, QualityEstimateTracksGroundTruth) {
  // Only the simulator makes this check possible: the estimator should
  // correlate positively (and substantially) with latent quality.
  EXPECT_GT(result_->truth.spearman_quality_estimate, 0.5);
}

TEST(CrawlExperimentTest, DeterministicAcrossRuns) {
  CrawlExperimentOptions o = SmallOptions();
  CrawlExperimentResult a = RunCrawlExperiment(o).value();
  CrawlExperimentResult b = RunCrawlExperiment(o).value();
  EXPECT_EQ(a.total_visits, b.total_visits);
  EXPECT_DOUBLE_EQ(a.comparison.quality.mean_error,
                   b.comparison.quality.mean_error);
  EXPECT_DOUBLE_EQ(a.truth.spearman_quality_estimate,
                   b.truth.spearman_quality_estimate);
}

TEST(CrawlExperimentTest, MoreSnapshotsThanFourAreAccepted) {
  CrawlExperimentOptions o = SmallOptions();
  o.snapshot_times = {12.0, 16.0, 20.0, 24.0, 32.0};  // 4 obs + future
  Result<CrawlExperimentResult> r = RunCrawlExperiment(o);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->series.num_snapshots(), 5u);
  EXPECT_GT(r->comparison.pages_evaluated, 0u);
}

}  // namespace
}  // namespace qrank
