#include "core/traffic_estimator.h"

#include <gtest/gtest.h>

namespace qrank {
namespace {

TrafficSnapshot Snap(double t, std::vector<uint64_t> visits) {
  TrafficSnapshot s;
  s.time = t;
  s.cumulative_visits = std::move(visits);
  return s;
}

TEST(TrafficEstimatorTest, ValidatesInput) {
  // Too few snapshots.
  EXPECT_FALSE(
      EstimateQualityFromTraffic({Snap(0, {1}), Snap(1, {2})}).ok());
  // Size mismatch.
  EXPECT_FALSE(EstimateQualityFromTraffic(
                   {Snap(0, {1}), Snap(1, {2, 3}), Snap(2, {3})})
                   .ok());
  // Non-increasing time.
  EXPECT_FALSE(EstimateQualityFromTraffic(
                   {Snap(0, {1}), Snap(0, {2}), Snap(1, {3})})
                   .ok());
  // Decreasing counter.
  EXPECT_EQ(EstimateQualityFromTraffic(
                {Snap(0, {5}), Snap(1, {3}), Snap(2, {6})})
                .status()
                .code(),
            StatusCode::kCorruption);
  // No pages.
  EXPECT_FALSE(
      EstimateQualityFromTraffic({Snap(0, {}), Snap(1, {}), Snap(2, {})})
          .ok());
  // Bad options.
  TrafficEstimatorOptions o;
  o.visit_rate_normalization = 0.0;
  EXPECT_FALSE(EstimateQualityFromTraffic(
                   {Snap(0, {1}), Snap(1, {2}), Snap(2, {3})}, o)
                   .ok());
  o = TrafficEstimatorOptions{};
  o.zero_rate_floor_fraction = 0.0;
  EXPECT_FALSE(EstimateQualityFromTraffic(
                   {Snap(0, {1}), Snap(1, {2}), Snap(2, {3})}, o)
                   .ok());
}

TEST(TrafficEstimatorTest, ObservationsAreIntervalRates) {
  // Page visits: 0 -> 100 -> 300 over unit intervals; r = 1000.
  // Popularity observations: 100/1000 = 0.1, then 200/1000 = 0.2.
  TrafficEstimatorOptions o;
  o.visit_rate_normalization = 1000.0;
  Result<std::vector<std::vector<double>>> obs =
      TrafficPopularityObservations(
          {Snap(0, {0}), Snap(1, {100}), Snap(2, {300})}, o);
  ASSERT_TRUE(obs.ok());
  ASSERT_EQ(obs->size(), 2u);
  EXPECT_NEAR((*obs)[0][0], 0.1, 1e-12);
  EXPECT_NEAR((*obs)[1][0], 0.2, 1e-12);
}

TEST(TrafficEstimatorTest, RatesUseIntervalLengths) {
  TrafficEstimatorOptions o;
  o.visit_rate_normalization = 100.0;
  // 40 visits over 2 time units = rate 20 -> popularity 0.2.
  Result<std::vector<std::vector<double>>> obs =
      TrafficPopularityObservations(
          {Snap(0, {0}), Snap(2, {40}), Snap(3, {60})}, o);
  ASSERT_TRUE(obs.ok());
  EXPECT_NEAR((*obs)[0][0], 0.2, 1e-12);
  EXPECT_NEAR((*obs)[1][0], 0.2, 1e-12);
}

TEST(TrafficEstimatorTest, ZeroRatePagesGetFloor) {
  TrafficEstimatorOptions o;
  o.visit_rate_normalization = 100.0;
  o.zero_rate_floor_fraction = 0.5;
  // Page 0 has traffic, page 1 has none in the first interval.
  Result<std::vector<std::vector<double>>> obs =
      TrafficPopularityObservations(
          {Snap(0, {0, 0}), Snap(1, {10, 0}), Snap(2, {30, 5})}, o);
  ASSERT_TRUE(obs.ok());
  // Smallest positive popularity is 5/100 = 0.05; floor = 0.025.
  EXPECT_NEAR((*obs)[0][1], 0.025, 1e-12);
  EXPECT_GT((*obs)[1][1], 0.0);
}

TEST(TrafficEstimatorTest, GrowingTrafficYieldsRisingQualityEstimate) {
  TrafficEstimatorOptions o;
  o.visit_rate_normalization = 1000.0;
  // Rates: 100, 200, 400 (relative increase 3 across the window).
  Result<QualityEstimate> est = EstimateQualityFromTraffic(
      {Snap(0, {0}), Snap(1, {100}), Snap(2, {300}), Snap(3, {700})}, o);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->trend[0], PageTrend::kRising);
  // Observations 0.1, 0.2, 0.4: Q = 0.1 * (0.4-0.1)/0.1 + 0.4 = 0.7.
  EXPECT_NEAR(est->quality[0], 0.7, 1e-12);
}

TEST(TrafficEstimatorTest, FlatTrafficIsStable) {
  TrafficEstimatorOptions o;
  o.visit_rate_normalization = 100.0;
  Result<QualityEstimate> est = EstimateQualityFromTraffic(
      {Snap(0, {0}), Snap(1, {50}), Snap(2, {100}), Snap(3, {150})}, o);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->trend[0], PageTrend::kStable);
  EXPECT_NEAR(est->quality[0], 0.5, 1e-12);
}

}  // namespace
}  // namespace qrank
