#include "core/experiment_report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace qrank {
namespace {

class ExperimentReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CrawlExperimentOptions options;
    options.simulator.num_users = 300;
    options.simulator.page_birth_rate = 10.0;
    options.simulator.seed = 5;
    options.truth_top_k = 30;
    result_ = new CrawlExperimentResult(
        RunCrawlExperiment(options).value());
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static CrawlExperimentResult* result_;
};

CrawlExperimentResult* ExperimentReportTest::result_ = nullptr;

TEST_F(ExperimentReportTest, MarkdownContainsAllSections) {
  std::string report = RenderExperimentReport(*result_);
  EXPECT_NE(report.find("# qrank crawl experiment"), std::string::npos);
  EXPECT_NE(report.find("## Setup"), std::string::npos);
  EXPECT_NE(report.find("## Page trends"), std::string::npos);
  EXPECT_NE(report.find("Figure 5"), std::string::npos);
  EXPECT_NE(report.find("## Error histograms"), std::string::npos);
  EXPECT_NE(report.find("## Ground truth"), std::string::npos);
  EXPECT_NE(report.find("| error bin |"), std::string::npos);
  EXPECT_NE(report.find("improvement"), std::string::npos);
}

TEST_F(ExperimentReportTest, PlainTextHasNoMarkdownHeadings) {
  ReportOptions options;
  options.markdown = false;
  std::string report = RenderExperimentReport(*result_, options);
  // No line is a markdown heading (ASCII histogram bars contain '#'
  // mid-line, but never at line start).
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report[0], '#');
  EXPECT_EQ(report.find("\n#"), std::string::npos);
  EXPECT_EQ(report.find("| error bin |"), std::string::npos);
  EXPECT_NE(report.find("Setup"), std::string::npos);
}

TEST_F(ExperimentReportTest, SectionsCanBeDisabled) {
  ReportOptions options;
  options.include_histograms = false;
  options.include_ground_truth = false;
  options.title = "custom title";
  std::string report = RenderExperimentReport(*result_, options);
  EXPECT_NE(report.find("# custom title"), std::string::npos);
  EXPECT_EQ(report.find("Error histograms"), std::string::npos);
  EXPECT_EQ(report.find("Ground truth"), std::string::npos);
}

TEST_F(ExperimentReportTest, ReportReflectsResultNumbers) {
  std::string report = RenderExperimentReport(*result_);
  EXPECT_NE(report.find("common pages: " +
                        std::to_string(result_->common_pages)),
            std::string::npos);
  EXPECT_NE(report.find("visit events: " +
                        std::to_string(result_->total_visits)),
            std::string::npos);
}

TEST_F(ExperimentReportTest, WriteToFile) {
  std::string path = ::testing::TempDir() + "/qrank_report.md";
  ASSERT_TRUE(WriteExperimentReport(*result_, path).ok());
  std::ifstream f(path);
  std::string first;
  std::getline(f, first);
  EXPECT_EQ(first, "# qrank crawl experiment");
  std::remove(path.c_str());
  EXPECT_EQ(WriteExperimentReport(*result_, "/nonexistent_zzz/r.md").code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace qrank
