#include "core/adaptive_window_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace qrank {
namespace {

using Obs = std::vector<std::vector<double>>;

TEST(AdaptiveWindowTest, ValidatesInput) {
  AdaptiveWindowOptions o;
  EXPECT_FALSE(EstimateQualityAdaptiveWindow(Obs{}, o).ok());
  EXPECT_FALSE(EstimateQualityAdaptiveWindow(Obs{{1.0}}, o).ok());
  EXPECT_FALSE(
      EstimateQualityAdaptiveWindow(Obs{{1.0}, {1.0, 2.0}}, o).ok());
  EXPECT_FALSE(EstimateQualityAdaptiveWindow(Obs{{0.0}, {1.0}}, o).ok());
  o.min_window = 0;
  EXPECT_FALSE(EstimateQualityAdaptiveWindow(Obs{{1.0}, {2.0}}, o).ok());
  o = AdaptiveWindowOptions{};
  o.min_window = 4;
  o.max_window = 2;
  EXPECT_FALSE(EstimateQualityAdaptiveWindow(Obs{{1.0}, {2.0}}, o).ok());
}

TEST(AdaptiveWindowTest, EqualWindowsReduceToFixedEstimator) {
  Obs obs = {{1.0, 4.0}, {1.5, 3.0}, {2.0, 2.0}};
  AdaptiveWindowOptions o;
  o.min_window = 2;
  o.max_window = 2;
  auto adaptive = EstimateQualityAdaptiveWindow(obs, o);
  auto fixed = EstimateQuality(obs, o.base);
  ASSERT_TRUE(adaptive.ok());
  ASSERT_TRUE(fixed.ok());
  for (size_t p = 0; p < 2; ++p) {
    EXPECT_DOUBLE_EQ(adaptive->base.quality[p], fixed->quality[p]);
    EXPECT_EQ(adaptive->base.trend[p], fixed->trend[p]);
    EXPECT_EQ(adaptive->window[p], 2u);
  }
}

TEST(AdaptiveWindowTest, MaxWindowCappedByObservations) {
  Obs obs = {{1.0}, {1.5}, {2.0}};  // only 2 intervals available
  AdaptiveWindowOptions o;
  o.min_window = 1;
  o.max_window = 50;
  auto est = EstimateQualityAdaptiveWindow(obs, o);
  ASSERT_TRUE(est.ok());
  EXPECT_LE(est->window[0], 2u);
}

TEST(AdaptiveWindowTest, LowPageRankPagesGetLongerWindows) {
  // Page 0: tiny PageRank. Page 1: huge. Both rising.
  Obs obs = {{0.1, 50.0}, {0.12, 55.0}, {0.14, 60.0}, {0.16, 65.0},
             {0.18, 70.0}};
  AdaptiveWindowOptions o;
  o.min_window = 1;
  o.max_window = 4;
  auto est = EstimateQualityAdaptiveWindow(obs, o);
  ASSERT_TRUE(est.ok());
  EXPECT_GT(est->window[0], est->window[1]);
  EXPECT_EQ(est->window[0], 4u);
  EXPECT_EQ(est->window[1], 1u);
}

TEST(AdaptiveWindowTest, TrendClassifiedWithinChosenWindow) {
  // Page oscillated early but rose monotonically over the last two
  // observations; a high-PR page (short window) sees only the rise.
  Obs obs = {{5.0, 0.005}, {9.0, 0.01}, {6.0, 0.02}, {7.0, 0.03},
             {8.0, 0.04}};
  AdaptiveWindowOptions o;
  o.min_window = 2;
  o.max_window = 4;
  auto est = EstimateQualityAdaptiveWindow(obs, o);
  ASSERT_TRUE(est.ok());
  ASSERT_EQ(est->window[0], 2u);
  ASSERT_EQ(est->window[1], 4u);
  // Page 0's short window sees only the monotone tail (6, 7, 8), so the
  // early oscillation (5 -> 9 -> 6) is invisible to it.
  EXPECT_EQ(est->base.trend[0], PageTrend::kRising);
  EXPECT_NEAR(est->base.relative_increase[0], (8.0 - 6.0) / 6.0, 1e-12);
  // Page 1's long window spans all five observations, all rising.
  EXPECT_EQ(est->base.trend[1], PageTrend::kRising);
  EXPECT_NEAR(est->base.relative_increase[1], (0.04 - 0.005) / 0.005, 1e-9);
}

// The Section 9.1 claim, property-tested: with Poisson-like noise whose
// relative magnitude scales as 1/sqrt(PR), the adaptive window tracks
// the true quality of *low*-PageRank pages better than the short fixed
// window, without giving up the high-PageRank pages.
TEST(AdaptiveWindowTest, BeatsShortFixedWindowUnderNoise) {
  Rng rng(2024);
  const size_t kPages = 400;
  const size_t kObs = 9;
  // True multiplicative growth per step is 5% for every page; low-PR
  // pages carry heavy relative noise.
  Obs obs(kObs, std::vector<double>(kPages));
  std::vector<double> base(kPages);
  for (size_t p = 0; p < kPages; ++p) {
    base[p] = rng.Pareto(0.2, 1.2);  // wide PageRank range
  }
  for (size_t i = 0; i < kObs; ++i) {
    for (size_t p = 0; p < kPages; ++p) {
      double clean = base[p] * std::pow(1.05, static_cast<double>(i));
      double noise_scale = 0.25 / std::sqrt(base[p]);
      double noisy = clean * (1.0 + noise_scale * rng.Normal());
      obs[i][p] = std::max(noisy, 1e-3);
    }
  }
  // Truth: the clean relative increase over one step horizon is 5%, so
  // the "true" Equation 1 estimate uses the clean series.
  AdaptiveWindowOptions adaptive_options;
  adaptive_options.min_window = 1;
  adaptive_options.max_window = 8;
  auto adaptive = EstimateQualityAdaptiveWindow(obs, adaptive_options);
  ASSERT_TRUE(adaptive.ok());

  AdaptiveWindowOptions short_options;
  short_options.min_window = 1;
  short_options.max_window = 1;
  auto short_fixed = EstimateQualityAdaptiveWindow(obs, short_options);
  ASSERT_TRUE(short_fixed.ok());

  // Compare the *relative increase* estimates against the clean 5%/step
  // growth rate, per window length: error in rel-increase per step.
  auto mean_rate_error = [&](const AdaptiveWindowEstimate& est) {
    double sum = 0.0;
    size_t count = 0;
    for (size_t p = 0; p < kPages; ++p) {
      if (base[p] > 1.0) continue;  // focus on the noisy low-PR pages
      double w = static_cast<double>(est.window[p]);
      double true_rel = std::pow(1.05, w) - 1.0;
      // Normalize per step so different windows are comparable.
      double measured = est.base.relative_increase[p] / w;
      sum += std::fabs(measured - true_rel / w);
      ++count;
    }
    return sum / static_cast<double>(count);
  };
  double adaptive_error = mean_rate_error(*adaptive);
  double short_error = mean_rate_error(*short_fixed);
  EXPECT_LT(adaptive_error, 0.8 * short_error);
}

TEST(AdaptiveWindowTest, CountsSumToPages) {
  Obs obs = {{1.0, 2.0, 3.0}, {1.2, 1.8, 3.0}, {1.4, 1.6, 3.01}};
  auto est = EstimateQualityAdaptiveWindow(obs);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->base.num_rising + est->base.num_falling +
                est->base.num_oscillating + est->base.num_stable,
            3u);
}

}  // namespace
}  // namespace qrank
