#include "core/evaluation.h"

#include <gtest/gtest.h>

namespace qrank {
namespace {

QualityEstimate MakeEstimate(std::vector<double> quality,
                             std::vector<PageTrend> trend) {
  QualityEstimate est;
  est.quality = std::move(quality);
  est.trend = std::move(trend);
  est.relative_increase.assign(est.quality.size(), 0.0);
  return est;
}

TEST(CompareFuturePredictionTest, ValidatesSizes) {
  QualityEstimate est = MakeEstimate({1.0}, {PageTrend::kRising});
  EXPECT_FALSE(
      CompareFuturePrediction(est, {1.0, 2.0}, {1.0}).ok());
  EXPECT_FALSE(CompareFuturePrediction(est, {1.0}, {}).ok());
}

TEST(CompareFuturePredictionTest, ValidatesOptions) {
  QualityEstimate est = MakeEstimate({1.0}, {PageTrend::kRising});
  EvaluationOptions o;
  o.histogram_bins = 0;
  EXPECT_FALSE(CompareFuturePrediction(est, {1.0}, {1.0}, o).ok());
  o = EvaluationOptions{};
  o.histogram_max = 0.0;
  EXPECT_FALSE(CompareFuturePrediction(est, {1.0}, {1.0}, o).ok());
}

TEST(CompareFuturePredictionTest, ComputesRelativeErrors) {
  // One page: estimate 1.8, current 1.0, future 2.0.
  // err(Q) = |2-1.8|/2 = 0.1; err(PR) = |2-1|/2 = 0.5.
  QualityEstimate est = MakeEstimate({1.8}, {PageTrend::kRising});
  Result<PredictionComparison> cmp =
      CompareFuturePrediction(est, {1.0}, {2.0});
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(cmp->pages_evaluated, 1u);
  EXPECT_NEAR(cmp->quality.mean_error, 0.1, 1e-12);
  EXPECT_NEAR(cmp->pagerank.mean_error, 0.5, 1e-12);
  EXPECT_NEAR(cmp->improvement_factor, 5.0, 1e-9);
}

TEST(CompareFuturePredictionTest, ExcludesStablePagesByDefault) {
  QualityEstimate est = MakeEstimate(
      {1.8, 1.0}, {PageTrend::kRising, PageTrend::kStable});
  Result<PredictionComparison> cmp =
      CompareFuturePrediction(est, {1.0, 1.0}, {2.0, 1.0});
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(cmp->pages_evaluated, 1u);
  EXPECT_EQ(cmp->pages_excluded_stable, 1u);

  EvaluationOptions include;
  include.exclude_stable_pages = false;
  cmp = CompareFuturePrediction(est, {1.0, 1.0}, {2.0, 1.0}, include);
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(cmp->pages_evaluated, 2u);
}

TEST(CompareFuturePredictionTest, ExcludesZeroFuturePages) {
  QualityEstimate est = MakeEstimate(
      {1.0, 1.0}, {PageTrend::kRising, PageTrend::kRising});
  Result<PredictionComparison> cmp =
      CompareFuturePrediction(est, {1.0, 1.0}, {2.0, 0.0});
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(cmp->pages_evaluated, 1u);
  EXPECT_EQ(cmp->pages_excluded_zero_future, 1u);
}

TEST(CompareFuturePredictionTest, AllExcludedIsError) {
  QualityEstimate est = MakeEstimate({1.0}, {PageTrend::kStable});
  Result<PredictionComparison> cmp =
      CompareFuturePrediction(est, {1.0}, {1.0});
  EXPECT_EQ(cmp.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CompareFuturePredictionTest, HistogramFractionsMatchFigure5Bins) {
  // Errors for Q: 0.05 (bin 0), 0.5 (bin 5), 2.0 (overflow).
  QualityEstimate est = MakeEstimate(
      {0.95, 0.5, 3.0},
      {PageTrend::kRising, PageTrend::kRising, PageTrend::kRising});
  Result<PredictionComparison> cmp = CompareFuturePrediction(
      est, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0});
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(cmp->quality.error_histogram.counts()[0], 1u);
  EXPECT_EQ(cmp->quality.error_histogram.counts()[5], 1u);
  EXPECT_EQ(cmp->quality.error_histogram.counts()[10], 1u);
  EXPECT_NEAR(cmp->quality.fraction_below_0_1, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(cmp->quality.fraction_above_1, 1.0 / 3.0, 1e-12);
  // PageRank predictor is exactly right here: mean error 0.
  EXPECT_NEAR(cmp->pagerank.mean_error, 0.0, 1e-12);
}

TEST(CompareFuturePredictionTest, MedianErrorReported) {
  QualityEstimate est = MakeEstimate(
      {1.0, 1.2, 2.0},
      {PageTrend::kRising, PageTrend::kRising, PageTrend::kRising});
  Result<PredictionComparison> cmp = CompareFuturePrediction(
      est, {1.0, 1.0, 1.0}, {2.0, 2.0, 2.0});
  ASSERT_TRUE(cmp.ok());
  // Errors: 0.5, 0.4, 0.0 -> median 0.4.
  EXPECT_NEAR(cmp->quality.median_error, 0.4, 1e-12);
}

TEST(EvaluateAgainstTruthTest, ValidatesArguments) {
  EXPECT_FALSE(EvaluateAgainstTruth({1.0}, {1.0}, {1.0}, 1).ok());  // n<2
  EXPECT_FALSE(
      EvaluateAgainstTruth({1.0, 2.0}, {1.0}, {1.0, 2.0}, 1).ok());
  EXPECT_FALSE(
      EvaluateAgainstTruth({1.0, 2.0}, {1.0, 2.0}, {1.0, 2.0}, 0).ok());
  EXPECT_FALSE(
      EvaluateAgainstTruth({1.0, 2.0}, {1.0, 2.0}, {1.0, 2.0}, 3).ok());
}

TEST(EvaluateAgainstTruthTest, PerfectEstimatorScoresHigher) {
  std::vector<double> truth = {0.1, 0.9, 0.5, 0.7};
  std::vector<double> perfect = truth;
  std::vector<double> inverted = {0.9, 0.1, 0.5, 0.3};
  Result<TruthEvaluation> eval =
      EvaluateAgainstTruth(perfect, inverted, truth, 2);
  ASSERT_TRUE(eval.ok());
  EXPECT_NEAR(eval->spearman_quality_estimate, 1.0, 1e-12);
  EXPECT_LT(eval->spearman_current_pagerank, 0.0);
  EXPECT_NEAR(eval->precision_at_k_quality_estimate, 1.0, 1e-12);
  EXPECT_LT(eval->precision_at_k_current_pagerank, 1.0);
  EXPECT_EQ(eval->pages_evaluated, 4u);
  EXPECT_EQ(eval->top_k, 2u);
}

TEST(RenderComparisonTest, MentionsHeadlineNumbers) {
  QualityEstimate est = MakeEstimate({1.8}, {PageTrend::kRising});
  PredictionComparison cmp =
      CompareFuturePrediction(est, {1.0}, {2.0}).value();
  std::string text = RenderComparison(cmp);
  EXPECT_NE(text.find("mean relative error"), std::string::npos);
  EXPECT_NE(text.find("paper: 0.32 vs 0.78"), std::string::npos);
  EXPECT_NE(text.find("white bars"), std::string::npos);
  EXPECT_NE(text.find("grey bars"), std::string::npos);
}

}  // namespace
}  // namespace qrank
