#include "core/snapshot_series.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "graph/generators.h"

namespace qrank {
namespace {

CsrGraph Ring(NodeId n) {
  return CsrGraph::FromEdgeList(GenerateRing(n, 1).value()).value();
}

TEST(InducePrefixSubgraphTest, KeepsOnlyInternalEdges) {
  // 0->1, 1->2, 2->0, 0->3: prefix of 3 keeps the triangle only.
  CsrGraph g =
      CsrGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 0}, {0, 3}}).value();
  Result<CsrGraph> sub = InducePrefixSubgraph(g, 3);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->num_nodes(), 3u);
  EXPECT_EQ(sub->num_edges(), 3u);
  EXPECT_FALSE(sub->HasEdge(0, 3));
}

TEST(InducePrefixSubgraphTest, RejectsOversizedPrefix) {
  CsrGraph g = Ring(4);
  EXPECT_FALSE(InducePrefixSubgraph(g, 5).ok());
}

TEST(InducePrefixSubgraphTest, ZeroPrefixIsEmpty) {
  CsrGraph g = Ring(4);
  Result<CsrGraph> sub = InducePrefixSubgraph(g, 0);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->num_nodes(), 0u);
}

TEST(SnapshotSeriesTest, TimesMustStrictlyIncrease) {
  SnapshotSeries s;
  EXPECT_TRUE(s.AddSnapshot(1.0, Ring(4)).ok());
  EXPECT_FALSE(s.AddSnapshot(1.0, Ring(4)).ok());
  EXPECT_FALSE(s.AddSnapshot(0.5, Ring(4)).ok());
  EXPECT_TRUE(s.AddSnapshot(2.0, Ring(4)).ok());
  EXPECT_EQ(s.num_snapshots(), 2u);
}

TEST(SnapshotSeriesTest, CommonNodeCountIsMinimum) {
  SnapshotSeries s;
  ASSERT_TRUE(s.AddSnapshot(1.0, Ring(4)).ok());
  ASSERT_TRUE(s.AddSnapshot(2.0, Ring(6)).ok());
  ASSERT_TRUE(s.AddSnapshot(3.0, Ring(5)).ok());
  EXPECT_EQ(s.CommonNodeCount(), 4u);
}

TEST(SnapshotSeriesTest, EmptySeriesHasNoCommonNodes) {
  SnapshotSeries s;
  EXPECT_EQ(s.CommonNodeCount(), 0u);
  EXPECT_EQ(s.ComputePageRanks(PageRankOptions{}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SnapshotSeriesTest, ComputesPageRankPerSnapshotOnCommonSet) {
  SnapshotSeries s;
  ASSERT_TRUE(s.AddSnapshot(1.0, Ring(5)).ok());
  ASSERT_TRUE(s.AddSnapshot(2.0, Ring(8)).ok());
  PageRankOptions o;
  ASSERT_TRUE(s.ComputePageRanks(o).ok());
  ASSERT_TRUE(s.has_pageranks());
  ASSERT_EQ(s.pagerank(0).size(), 5u);
  ASSERT_EQ(s.pagerank(1).size(), 5u);
  // Snapshot 0 is a clean 5-ring: uniform PageRank.
  for (double v : s.pagerank(0)) EXPECT_NEAR(v, 0.2, 1e-10);
  EXPECT_EQ(s.common_graph(1).num_nodes(), 5u);
}

TEST(SnapshotSeriesTest, MassNScaleSumsToCommonCount) {
  SnapshotSeries s;
  Rng rng(3);
  ASSERT_TRUE(
      s.AddSnapshot(
           1.0, CsrGraph::FromEdgeList(
                    GenerateBarabasiAlbert(100, 3, &rng).value())
                    .value())
          .ok());
  ASSERT_TRUE(
      s.AddSnapshot(
           2.0, CsrGraph::FromEdgeList(
                    GenerateBarabasiAlbert(120, 3, &rng).value())
                    .value())
          .ok());
  PageRankOptions o;
  o.scale = ScaleConvention::kTotalMassN;
  ASSERT_TRUE(s.ComputePageRanks(o).ok());
  for (size_t i = 0; i < 2; ++i) {
    double sum = std::accumulate(s.pagerank(i).begin(), s.pagerank(i).end(),
                                 0.0);
    EXPECT_NEAR(sum, 100.0, 1e-6) << "snapshot " << i;
  }
}

TEST(SnapshotSeriesTest, CannotAddAfterCompute) {
  SnapshotSeries s;
  ASSERT_TRUE(s.AddSnapshot(1.0, Ring(4)).ok());
  ASSERT_TRUE(s.ComputePageRanks(PageRankOptions{}).ok());
  EXPECT_EQ(s.AddSnapshot(2.0, Ring(4)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SnapshotSeriesTest, WarmStartMatchesColdStartScores) {
  Rng rng(7);
  SnapshotSeries cold, warm;
  for (double t : {1.0, 2.0, 3.0}) {
    CsrGraph g = CsrGraph::FromEdgeList(
                     GenerateBarabasiAlbert(
                         static_cast<NodeId>(150 + 10 * t), 3, &rng)
                         .value())
                     .value();
    ASSERT_TRUE(cold.AddSnapshot(t, g).ok());
    ASSERT_TRUE(warm.AddSnapshot(t, std::move(g)).ok());
  }
  PageRankOptions o;
  o.tolerance = 1e-12;
  ASSERT_TRUE(cold.ComputePageRanks(o, /*warm_start=*/false).ok());
  ASSERT_TRUE(warm.ComputePageRanks(o, /*warm_start=*/true).ok());
  for (size_t i = 0; i < 3; ++i) {
    const auto& a = cold.pagerank(i);
    const auto& b = warm.pagerank(i);
    double dist = 0.0;
    for (size_t p = 0; p < a.size(); ++p) dist += std::fabs(a[p] - b[p]);
    EXPECT_LT(dist, 1e-8) << "snapshot " << i;
  }
}

TEST(SnapshotSeriesTest, WarmStartSavesIterationsOnSimilarSnapshots) {
  // Consecutive snapshots that barely differ: warm start should converge
  // in far fewer iterations from snapshot 1 on.
  Rng rng(9);
  EdgeList base = GenerateBarabasiAlbert(400, 3, &rng).value();
  SnapshotSeries cold, warm;
  for (int i = 0; i < 3; ++i) {
    EdgeList evolved = base;
    // Add a few extra edges per snapshot.
    for (int k = 0; k < 5 * i; ++k) {
      NodeId u = static_cast<NodeId>(rng.UniformUint64(400));
      NodeId v = static_cast<NodeId>(rng.UniformUint64(400));
      if (u != v) evolved.Add(u, v);
    }
    CsrGraph g = CsrGraph::FromEdgeList(evolved).value();
    ASSERT_TRUE(cold.AddSnapshot(i + 1.0, g).ok());
    ASSERT_TRUE(warm.AddSnapshot(i + 1.0, std::move(g)).ok());
  }
  PageRankOptions o;
  o.tolerance = 1e-10;
  ASSERT_TRUE(cold.ComputePageRanks(o, false).ok());
  ASSERT_TRUE(warm.ComputePageRanks(o, true).ok());
  // First snapshot identical; later ones start near the fixed point.
  // Convergence is geometric, so a warm start saves the iterations that
  // would re-cover the already-closed distance — a solid constant, not
  // a ratio (log(initial_distance / tolerance) shrinks additively).
  EXPECT_EQ(cold.iterations_per_snapshot()[0],
            warm.iterations_per_snapshot()[0]);
  EXPECT_LE(warm.iterations_per_snapshot()[1] + 4,
            cold.iterations_per_snapshot()[1]);
  EXPECT_LE(warm.iterations_per_snapshot()[2] + 4,
            cold.iterations_per_snapshot()[2]);
}

TEST(SnapshotSeriesTest, PropagatesEngineErrors) {
  SnapshotSeries s;
  ASSERT_TRUE(s.AddSnapshot(1.0, Ring(4)).ok());
  PageRankOptions o;
  o.damping = 2.0;  // invalid
  EXPECT_EQ(s.ComputePageRanks(o).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace qrank
