#include "core/snapshot_series.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "graph/generators.h"

namespace qrank {
namespace {

CsrGraph Ring(NodeId n) {
  return CsrGraph::FromEdgeList(GenerateRing(n, 1).value()).value();
}

TEST(InducePrefixSubgraphTest, KeepsOnlyInternalEdges) {
  // 0->1, 1->2, 2->0, 0->3: prefix of 3 keeps the triangle only.
  CsrGraph g =
      CsrGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 0}, {0, 3}}).value();
  Result<CsrGraph> sub = InducePrefixSubgraph(g, 3);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->num_nodes(), 3u);
  EXPECT_EQ(sub->num_edges(), 3u);
  EXPECT_FALSE(sub->HasEdge(0, 3));
}

TEST(InducePrefixSubgraphTest, RejectsOversizedPrefix) {
  CsrGraph g = Ring(4);
  EXPECT_FALSE(InducePrefixSubgraph(g, 5).ok());
}

TEST(InducePrefixSubgraphTest, ZeroPrefixIsEmpty) {
  CsrGraph g = Ring(4);
  Result<CsrGraph> sub = InducePrefixSubgraph(g, 0);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->num_nodes(), 0u);
}

TEST(SnapshotSeriesTest, TimesMustStrictlyIncrease) {
  SnapshotSeries s;
  EXPECT_TRUE(s.AddSnapshot(1.0, Ring(4)).ok());
  EXPECT_FALSE(s.AddSnapshot(1.0, Ring(4)).ok());
  EXPECT_FALSE(s.AddSnapshot(0.5, Ring(4)).ok());
  EXPECT_TRUE(s.AddSnapshot(2.0, Ring(4)).ok());
  EXPECT_EQ(s.num_snapshots(), 2u);
}

TEST(SnapshotSeriesTest, CommonNodeCountIsMinimum) {
  SnapshotSeries s;
  ASSERT_TRUE(s.AddSnapshot(1.0, Ring(4)).ok());
  ASSERT_TRUE(s.AddSnapshot(2.0, Ring(6)).ok());
  ASSERT_TRUE(s.AddSnapshot(3.0, Ring(5)).ok());
  EXPECT_EQ(s.CommonNodeCount(), 4u);
}

TEST(SnapshotSeriesTest, EmptySeriesHasNoCommonNodes) {
  SnapshotSeries s;
  EXPECT_EQ(s.CommonNodeCount(), 0u);
  EXPECT_EQ(s.ComputePageRanks(PageRankOptions{}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SnapshotSeriesTest, ComputesPageRankPerSnapshotOnCommonSet) {
  SnapshotSeries s;
  ASSERT_TRUE(s.AddSnapshot(1.0, Ring(5)).ok());
  ASSERT_TRUE(s.AddSnapshot(2.0, Ring(8)).ok());
  PageRankOptions o;
  ASSERT_TRUE(s.ComputePageRanks(o).ok());
  ASSERT_TRUE(s.has_pageranks());
  ASSERT_EQ(s.pagerank(0).size(), 5u);
  ASSERT_EQ(s.pagerank(1).size(), 5u);
  // Snapshot 0 is a clean 5-ring: uniform PageRank.
  for (double v : s.pagerank(0)) EXPECT_NEAR(v, 0.2, 1e-10);
  EXPECT_EQ(s.common_graph(1).num_nodes(), 5u);
}

TEST(SnapshotSeriesTest, MassNScaleSumsToCommonCount) {
  SnapshotSeries s;
  Rng rng(3);
  ASSERT_TRUE(
      s.AddSnapshot(
           1.0, CsrGraph::FromEdgeList(
                    GenerateBarabasiAlbert(100, 3, &rng).value())
                    .value())
          .ok());
  ASSERT_TRUE(
      s.AddSnapshot(
           2.0, CsrGraph::FromEdgeList(
                    GenerateBarabasiAlbert(120, 3, &rng).value())
                    .value())
          .ok());
  PageRankOptions o;
  o.scale = ScaleConvention::kTotalMassN;
  ASSERT_TRUE(s.ComputePageRanks(o).ok());
  for (size_t i = 0; i < 2; ++i) {
    double sum = std::accumulate(s.pagerank(i).begin(), s.pagerank(i).end(),
                                 0.0);
    EXPECT_NEAR(sum, 100.0, 1e-6) << "snapshot " << i;
  }
}

TEST(SnapshotSeriesTest, CannotAddAfterCompute) {
  SnapshotSeries s;
  ASSERT_TRUE(s.AddSnapshot(1.0, Ring(4)).ok());
  ASSERT_TRUE(s.ComputePageRanks(PageRankOptions{}).ok());
  EXPECT_EQ(s.AddSnapshot(2.0, Ring(4)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SnapshotSeriesTest, WarmStartMatchesColdStartScores) {
  Rng rng(7);
  SnapshotSeries cold, warm;
  for (double t : {1.0, 2.0, 3.0}) {
    CsrGraph g = CsrGraph::FromEdgeList(
                     GenerateBarabasiAlbert(
                         static_cast<NodeId>(150 + 10 * t), 3, &rng)
                         .value())
                     .value();
    ASSERT_TRUE(cold.AddSnapshot(t, g).ok());
    ASSERT_TRUE(warm.AddSnapshot(t, std::move(g)).ok());
  }
  PageRankOptions o;
  o.tolerance = 1e-12;
  ASSERT_TRUE(cold.ComputePageRanks(o, /*warm_start=*/false).ok());
  ASSERT_TRUE(warm.ComputePageRanks(o, /*warm_start=*/true).ok());
  for (size_t i = 0; i < 3; ++i) {
    const auto& a = cold.pagerank(i);
    const auto& b = warm.pagerank(i);
    double dist = 0.0;
    for (size_t p = 0; p < a.size(); ++p) dist += std::fabs(a[p] - b[p]);
    EXPECT_LT(dist, 1e-8) << "snapshot " << i;
  }
}

TEST(SnapshotSeriesTest, WarmStartSavesIterationsOnSimilarSnapshots) {
  // Consecutive snapshots that barely differ: warm start should converge
  // in far fewer iterations from snapshot 1 on.
  Rng rng(9);
  EdgeList base = GenerateBarabasiAlbert(400, 3, &rng).value();
  SnapshotSeries cold, warm;
  for (int i = 0; i < 3; ++i) {
    EdgeList evolved = base;
    // Add a few extra edges per snapshot.
    for (int k = 0; k < 5 * i; ++k) {
      NodeId u = static_cast<NodeId>(rng.UniformUint64(400));
      NodeId v = static_cast<NodeId>(rng.UniformUint64(400));
      if (u != v) evolved.Add(u, v);
    }
    CsrGraph g = CsrGraph::FromEdgeList(evolved).value();
    ASSERT_TRUE(cold.AddSnapshot(i + 1.0, g).ok());
    ASSERT_TRUE(warm.AddSnapshot(i + 1.0, std::move(g)).ok());
  }
  PageRankOptions o;
  o.tolerance = 1e-10;
  ASSERT_TRUE(cold.ComputePageRanks(o, false).ok());
  ASSERT_TRUE(warm.ComputePageRanks(o, true).ok());
  // First snapshot identical; later ones start near the fixed point.
  // Convergence is geometric, so a warm start saves the iterations that
  // would re-cover the already-closed distance — a solid constant, not
  // a ratio (log(initial_distance / tolerance) shrinks additively).
  EXPECT_EQ(cold.iterations_per_snapshot()[0],
            warm.iterations_per_snapshot()[0]);
  EXPECT_LE(warm.iterations_per_snapshot()[1] + 4,
            cold.iterations_per_snapshot()[1]);
  EXPECT_LE(warm.iterations_per_snapshot()[2] + 4,
            cold.iterations_per_snapshot()[2]);
}

double L1(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) d += std::fabs(a[i] - b[i]);
  return d;
}

// A small evolving series: BA base graph, each snapshot adds edges and
// optionally nodes (and one snapshot can shrink).
void FillSeries(SnapshotSeries* s, const std::vector<NodeId>& sizes,
                uint64_t seed) {
  Rng rng(seed);
  EdgeList base = GenerateBarabasiAlbert(sizes[0], 3, &rng).value();
  std::vector<Edge> edges = base.edges();
  for (size_t i = 0; i < sizes.size(); ++i) {
    const NodeId n = sizes[i];
    if (i > 0) {
      for (int k = 0; k < 12; ++k) {
        NodeId u = static_cast<NodeId>(rng.UniformUint64(n));
        NodeId v = static_cast<NodeId>(rng.UniformUint64(n));
        if (u != v) edges.push_back({u, v});
      }
    }
    std::vector<Edge> in_range;
    for (const Edge& e : edges) {
      if (e.src < n && e.dst < n) in_range.push_back(e);
    }
    ASSERT_TRUE(
        s->AddSnapshot(i + 1.0, CsrGraph::FromEdges(n, in_range).value())
            .ok());
  }
}

TEST(SnapshotSeriesTest, IncrementalMatchesScratchScores) {
  SnapshotSeries scratch, incremental;
  FillSeries(&scratch, {300, 320, 340, 360}, 21);
  FillSeries(&incremental, {300, 320, 340, 360}, 21);
  SeriesComputeOptions o;
  o.pagerank.tolerance = 1e-11;
  o.mode = SeriesMode::kScratch;
  ASSERT_TRUE(scratch.ComputePageRanks(o).ok());
  o.mode = SeriesMode::kIncremental;
  ASSERT_TRUE(incremental.ComputePageRanks(o).ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_LT(L1(scratch.pagerank(i), incremental.pagerank(i)), 1e-8)
        << "snapshot " << i;
    // The incremental path must also reproduce the induced subgraphs.
    EXPECT_EQ(incremental.common_graph(i).offsets(),
              scratch.common_graph(i).offsets())
        << "snapshot " << i;
    EXPECT_EQ(incremental.common_graph(i).targets(),
              scratch.common_graph(i).targets())
        << "snapshot " << i;
  }
}

TEST(SnapshotSeriesTest, IncrementalHandlesShrinkingCommonSetMidSeries) {
  // Snapshot 2 shrinks below the earlier sizes: the common prefix is
  // decided up front (CommonNodeCount), so every snapshot is induced on
  // the smallest size; the incremental path must deliver the same.
  SnapshotSeries scratch, incremental;
  FillSeries(&scratch, {300, 340, 260, 320}, 33);
  FillSeries(&incremental, {300, 340, 260, 320}, 33);
  ASSERT_EQ(scratch.CommonNodeCount(), 260u);
  SeriesComputeOptions o;
  o.pagerank.tolerance = 1e-11;
  o.mode = SeriesMode::kScratch;
  ASSERT_TRUE(scratch.ComputePageRanks(o).ok());
  o.mode = SeriesMode::kIncremental;
  ASSERT_TRUE(incremental.ComputePageRanks(o).ok());
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(incremental.pagerank(i).size(), 260u);
    EXPECT_LT(L1(scratch.pagerank(i), incremental.pagerank(i)), 1e-8)
        << "snapshot " << i;
  }
}

TEST(SnapshotSeriesTest, EmptyDeltaShortCircuitsToZeroIterations) {
  // Identical consecutive snapshots: the incremental mode spends zero
  // PageRank iterations beyond the previous solve's convergence check.
  Rng rng(5);
  CsrGraph g = CsrGraph::FromEdgeList(
                   GenerateBarabasiAlbert(200, 3, &rng).value())
                   .value();
  SnapshotSeries s;
  ASSERT_TRUE(s.AddSnapshot(1.0, g).ok());
  ASSERT_TRUE(s.AddSnapshot(2.0, g).ok());
  ASSERT_TRUE(s.AddSnapshot(3.0, g).ok());
  SeriesComputeOptions o;
  o.mode = SeriesMode::kIncremental;
  ASSERT_TRUE(s.ComputePageRanks(o).ok());
  EXPECT_GT(s.iterations_per_snapshot()[0], 0u);
  EXPECT_EQ(s.iterations_per_snapshot()[1], 0u);
  EXPECT_EQ(s.iterations_per_snapshot()[2], 0u);
  EXPECT_EQ(s.node_updates_per_snapshot()[1], 0u);
  EXPECT_EQ(s.pagerank(1), s.pagerank(0));
  EXPECT_EQ(s.pagerank(2), s.pagerank(0));
}

TEST(SnapshotSeriesTest, IncrementalDeltaTouchingOnlyDanglingNodes) {
  // The only change between snapshots is an edge into a dangling page
  // (and the loss of one): the dirty frontier is tiny and touches the
  // dangling-mass machinery. Scores must still match scratch.
  std::vector<Edge> e0 = {{0, 1}, {1, 2}, {2, 0}, {2, 3}};          // 3, 4 dangle
  std::vector<Edge> e1 = {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {1, 4}};  // 4 gains an in-link
  SnapshotSeries scratch, incremental;
  for (SnapshotSeries* s : {&scratch, &incremental}) {
    ASSERT_TRUE(
        s->AddSnapshot(1.0, CsrGraph::FromEdges(5, e0).value()).ok());
    ASSERT_TRUE(
        s->AddSnapshot(2.0, CsrGraph::FromEdges(5, e1).value()).ok());
  }
  SeriesComputeOptions o;
  o.pagerank.tolerance = 1e-12;
  o.mode = SeriesMode::kScratch;
  ASSERT_TRUE(scratch.ComputePageRanks(o).ok());
  o.mode = SeriesMode::kIncremental;
  ASSERT_TRUE(incremental.ComputePageRanks(o).ok());
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_LT(L1(scratch.pagerank(i), incremental.pagerank(i)), 1e-9)
        << "snapshot " << i;
  }
}

TEST(SnapshotSeriesTest, IncrementalDoesFewerNodeUpdates) {
  // Site-clustered snapshots whose churn is confined to a few sites:
  // the incremental path leaves the untouched sites frozen.
  Rng rng(41);
  std::vector<Edge> edges =
      GenerateSiteClustered(40, 100, 4, 3, &rng).value().edges();
  const NodeId n = 4000;
  SnapshotSeries scratch, incremental;
  for (int i = 0; i < 5; ++i) {
    if (i > 0) {
      // Churn inside two sites per step.
      for (int site : {3 * i, 3 * i + 5}) {
        const NodeId base = static_cast<NodeId>(site) * 100;
        for (int k = 0; k < 8; ++k) {
          NodeId u = base + static_cast<NodeId>(rng.UniformUint64(100));
          NodeId v = base + static_cast<NodeId>(rng.UniformUint64(100));
          if (u != v) edges.push_back({u, v});
        }
      }
    }
    CsrGraph g = CsrGraph::FromEdges(n, edges).value();
    ASSERT_TRUE(scratch.AddSnapshot(i + 1.0, g).ok());
    ASSERT_TRUE(incremental.AddSnapshot(i + 1.0, std::move(g)).ok());
  }
  SeriesComputeOptions o;
  o.mode = SeriesMode::kScratch;
  ASSERT_TRUE(scratch.ComputePageRanks(o).ok());
  o.mode = SeriesMode::kIncremental;
  ASSERT_TRUE(incremental.ComputePageRanks(o).ok());
  uint64_t scratch_total = 0, incremental_total = 0;
  for (size_t i = 1; i < 5; ++i) {
    scratch_total += scratch.node_updates_per_snapshot()[i];
    incremental_total += incremental.node_updates_per_snapshot()[i];
    // And the scores still agree with the from-scratch solve.
    double dist = 0.0;
    for (size_t p = 0; p < scratch.pagerank(i).size(); ++p) {
      dist += std::fabs(scratch.pagerank(i)[p] - incremental.pagerank(i)[p]);
    }
    EXPECT_LT(dist, 1e-8) << "snapshot " << i;
  }
  EXPECT_LT(incremental_total, scratch_total / 2);
}

TEST(SnapshotSeriesTest, PropagatesEngineErrors) {
  SnapshotSeries s;
  ASSERT_TRUE(s.AddSnapshot(1.0, Ring(4)).ok());
  PageRankOptions o;
  o.damping = 2.0;  // invalid
  EXPECT_EQ(s.ComputePageRanks(o).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace qrank
