#include "core/quality_tracker.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/snapshot_series.h"
#include "sim/web_simulator.h"

namespace qrank {
namespace {

TEST(QualityTrackerTest, ValidatesOptions) {
  QualityTrackerOptions o;
  o.history_limit = 1;
  EXPECT_FALSE(OnlineQualityTracker::Create(o).ok());
  o = QualityTrackerOptions{};
  o.pagerank.initial_scores = {1.0};
  EXPECT_FALSE(OnlineQualityTracker::Create(o).ok());
}

TEST(QualityTrackerTest, RequiresIncreasingTimesAndMonotonePages) {
  OnlineQualityTracker tracker = OnlineQualityTracker::Create().value();
  CsrGraph g3 = CsrGraph::FromEdges(3, {{0, 1}, {1, 2}, {2, 0}}).value();
  CsrGraph g2 = CsrGraph::FromEdges(2, {{0, 1}, {1, 0}}).value();
  ASSERT_TRUE(tracker.AddSnapshot(1.0, g3).ok());
  EXPECT_FALSE(tracker.AddSnapshot(1.0, g3).ok());   // same time
  EXPECT_FALSE(tracker.AddSnapshot(2.0, g2).ok());   // shrinking pages
  EXPECT_TRUE(tracker.AddSnapshot(2.0, g3).ok());
}

TEST(QualityTrackerTest, EstimateNeedsTwoSnapshots) {
  OnlineQualityTracker tracker = OnlineQualityTracker::Create().value();
  EXPECT_FALSE(tracker.CurrentEstimate().ok());
  EXPECT_FALSE(tracker.LatestPageRank().ok());
  CsrGraph g = CsrGraph::FromEdges(3, {{0, 1}, {1, 2}, {2, 0}}).value();
  ASSERT_TRUE(tracker.AddSnapshot(1.0, g).ok());
  EXPECT_FALSE(tracker.CurrentEstimate().ok());
  EXPECT_TRUE(tracker.LatestPageRank().ok());
  ASSERT_TRUE(tracker.AddSnapshot(2.0, g).ok());
  EXPECT_TRUE(tracker.CurrentEstimate().ok());
}

TEST(QualityTrackerTest, HistoryIsBounded) {
  QualityTrackerOptions o;
  o.history_limit = 3;
  OnlineQualityTracker tracker = OnlineQualityTracker::Create(o).value();
  CsrGraph g = CsrGraph::FromEdges(3, {{0, 1}, {1, 2}, {2, 0}}).value();
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(tracker.AddSnapshot(static_cast<double>(i), g).ok());
  }
  EXPECT_EQ(tracker.num_observations(), 3u);
  EXPECT_DOUBLE_EQ(tracker.latest_time(), 10.0);
}

TEST(QualityTrackerTest, TrackedPagesIsOldestUniverse) {
  OnlineQualityTracker tracker = OnlineQualityTracker::Create().value();
  CsrGraph small = CsrGraph::FromEdges(3, {{0, 1}, {1, 2}, {2, 0}}).value();
  CsrGraph big =
      CsrGraph::FromEdges(5, {{0, 1}, {1, 2}, {2, 0}, {3, 0}, {4, 1}})
          .value();
  ASSERT_TRUE(tracker.AddSnapshot(1.0, small).ok());
  ASSERT_TRUE(tracker.AddSnapshot(2.0, big).ok());
  EXPECT_EQ(tracker.TrackedPages(), 3u);
  auto est = tracker.CurrentEstimate();
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->quality.size(), 3u);
  // Latest PageRank covers the full latest crawl.
  EXPECT_EQ(tracker.LatestPageRank()->size(), 5u);
}

TEST(QualityTrackerTest, MatchesBatchSnapshotSeries) {
  // Streaming over the same snapshots must reproduce the batch result.
  WebSimulatorOptions sim_options;
  sim_options.num_users = 300;
  sim_options.seed = 77;
  WebSimulator sim = WebSimulator::Create(sim_options).value();

  QualityTrackerOptions tracker_options;
  tracker_options.history_limit = 3;
  OnlineQualityTracker tracker =
      OnlineQualityTracker::Create(tracker_options).value();
  SnapshotSeries series;
  for (double t : {4.0, 6.0, 8.0}) {
    ASSERT_TRUE(sim.AdvanceTo(t).ok());
    CsrGraph g = sim.Snapshot().value();
    ASSERT_TRUE(tracker.AddSnapshot(t, g).ok());
    ASSERT_TRUE(series.AddSnapshot(t, std::move(g)).ok());
  }
  PageRankOptions pr;
  pr.scale = ScaleConvention::kTotalMassN;
  ASSERT_TRUE(series.ComputePageRanks(pr).ok());
  auto batch = EstimateQuality(series, 3);
  auto streaming = tracker.CurrentEstimate();
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(streaming.ok());
  ASSERT_EQ(batch->quality.size(), streaming->quality.size());
  for (size_t p = 0; p < batch->quality.size(); ++p) {
    EXPECT_NEAR(batch->quality[p], streaming->quality[p], 1e-6);
    EXPECT_EQ(batch->trend[p], streaming->trend[p]);
  }
}

TEST(QualityTrackerTest, WarmStartReducesIterations) {
  WebSimulatorOptions sim_options;
  sim_options.num_users = 400;
  sim_options.seed = 13;
  WebSimulator sim = WebSimulator::Create(sim_options).value();

  QualityTrackerOptions warm_options;
  warm_options.pagerank.tolerance = 1e-10;
  OnlineQualityTracker warm =
      OnlineQualityTracker::Create(warm_options).value();
  QualityTrackerOptions cold_options = warm_options;
  cold_options.warm_start = false;
  OnlineQualityTracker cold =
      OnlineQualityTracker::Create(cold_options).value();

  // Two crawls close in time: the second differs only slightly.
  ASSERT_TRUE(sim.AdvanceTo(6.0).ok());
  CsrGraph first = sim.Snapshot().value();
  ASSERT_TRUE(sim.AdvanceTo(6.5).ok());
  CsrGraph second = sim.Snapshot().value();

  ASSERT_TRUE(warm.AddSnapshot(6.0, first).ok());
  ASSERT_TRUE(cold.AddSnapshot(6.0, first).ok());
  ASSERT_TRUE(warm.AddSnapshot(6.5, second).ok());
  ASSERT_TRUE(cold.AddSnapshot(6.5, second).ok());
  EXPECT_LT(warm.last_iterations(), cold.last_iterations());

  // And the scores agree despite the different starts.
  auto a = warm.LatestPageRank();
  auto b = cold.LatestPageRank();
  double dist = 0.0;
  for (size_t i = 0; i < a->size(); ++i) {
    dist += std::fabs((*a)[i] - (*b)[i]);
  }
  EXPECT_LT(dist, 1e-6);
}

}  // namespace
}  // namespace qrank
