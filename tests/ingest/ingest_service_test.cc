// IngestService end to end: the streaming oracle (a live event stream
// must converge to the same graph AND the same PageRank as an offline
// from-scratch rebuild, within the documented drift budget), the
// no-lost-updates contract (published generations cover the accepted
// sequence range gap-free), freshness bookkeeping, and the
// concurrent-readers-during-publish stress the TSan job runs.

#include "ingest/ingest_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "audit/audit.h"
#include "common/rng.h"
#include "graph/csr_graph.h"
#include "graph/generators.h"
#include "rank/pagerank.h"
#include "serve/query_engine.h"
#include "serve/snapshot_store.h"

namespace qrank {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

// Drift budget of the streaming-vs-rebuild oracle. Both the streaming
// solve (warm-started DeltaPageRank, full-sweep stopping rule) and the
// scratch solve land within O(tolerance / (1 - damping)) of the true
// fixed point on the probability scale; the kTotalMassN export scale
// multiplies that by n. For tolerance 1e-10, damping 0.85 and the few
// hundred pages used here, 1e-6 holds with orders of magnitude to
// spare (see DESIGN.md §5f).
constexpr double kOracleDriftBudget = 1e-6;

CsrGraph SeedGraph() {
  Rng rng(2026);
  return CsrGraph::FromEdgeList(GenerateBarabasiAlbert(150, 3, &rng).value())
      .value();
}

std::set<std::pair<NodeId, NodeId>> EdgeSet(const CsrGraph& g) {
  std::set<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) edges.insert({u, v});
  }
  return edges;
}

// Generation-log coverage check: batches must tile the accepted
// sequence range [1, total] with no gap and no overlap — the
// no-lost-updates contract, proven from provenance rather than trust.
void ExpectContiguousCoverage(const std::vector<IngestGenerationInfo>& log,
                              uint64_t total_accepted) {
  uint64_t next = 1;
  for (const IngestGenerationInfo& info : log) {
    if (info.num_events == 0) continue;  // initial generation: no batch
    EXPECT_EQ(info.first_sequence, next)
        << "coverage gap before generation " << info.generation;
    EXPECT_GE(info.last_sequence, info.first_sequence);
    next = info.last_sequence + 1;
  }
  EXPECT_EQ(next, total_accepted + 1)
      << "accepted events past the last published batch";
}

TEST(IngestServiceTest, CreateValidatesOptions) {
  SnapshotStore store;
  EXPECT_EQ(IngestService::Create(SeedGraph(), nullptr, {}).status().code(),
            StatusCode::kInvalidArgument);
  IngestOptions bad_window;
  bad_window.observation_window = 1;
  EXPECT_EQ(
      IngestService::Create(SeedGraph(), &store, bad_window).status().code(),
      StatusCode::kInvalidArgument);
  IngestOptions bad_queue;
  bad_queue.queue.capacity = 0;
  EXPECT_EQ(
      IngestService::Create(SeedGraph(), &store, bad_queue).status().code(),
      StatusCode::kInvalidArgument);
  IngestOptions bad_batch;
  bad_batch.batch.max_events = 0;
  EXPECT_EQ(
      IngestService::Create(SeedGraph(), &store, bad_batch).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(IngestServiceTest, StartPublishesInitialGenerationBeforeAnyEvent) {
  SnapshotStore store;
  auto service = IngestService::Create(SeedGraph(), &store, {}).value();
  ASSERT_FALSE(store.has_bundle());
  ASSERT_TRUE(service->Start().ok());
  // Queries never see an empty store once the service is up.
  EXPECT_TRUE(store.has_bundle());
  EXPECT_EQ(store.generation(), 1u);
  std::shared_ptr<const LoadedBundle> bundle = store.Acquire();
  ASSERT_NE(bundle, nullptr);
  EXPECT_EQ(bundle->quality().size(), SeedGraph().num_nodes());
  ASSERT_TRUE(service->Stop().ok());
  EXPECT_TRUE(service->status().ok());
}

TEST(IngestServiceTest, DoubleStartFailsAndStopIsIdempotent) {
  SnapshotStore store;
  auto service = IngestService::Create(SeedGraph(), &store, {}).value();
  ASSERT_TRUE(service->Start().ok());
  EXPECT_EQ(service->Start().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(service->Stop().ok());
  EXPECT_TRUE(service->Stop().ok());
}

// Regression for the started_/stopped_ lock-discipline fix: many threads
// calling Stop() concurrently with the destructor's implicit Stop must
// elect exactly ONE joiner. Before the fix, started_/stopped_ were
// unguarded, so two racing Stop() calls could both pass the
// `started_ && !stopped_` gate and double-join (or one could read a
// torn flag and skip the drain). With -fsanitize=thread this test is
// the canary; without it the double-join aborts in terminate().
TEST(IngestServiceTest, ConcurrentStopElectsOneJoinerAndDrains) {
  using std::chrono::seconds;
  for (int round = 0; round < 20; ++round) {
    SnapshotStore store;
    IngestOptions options;
    options.batch.max_events = 4;
    options.batch.max_age = milliseconds(1);
    auto created = IngestService::Create(SeedGraph(), &store, options);
    ASSERT_TRUE(created.ok());
    std::unique_ptr<IngestService> service = std::move(created).value();
    ASSERT_TRUE(service->Start().ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(service->EnqueueEdgeAdd(0, 1 + (i % 3)).ok());
    }
    std::vector<std::thread> stoppers;
    std::atomic<int> ok_count{0};
    for (int t = 0; t < 4; ++t) {
      stoppers.emplace_back([&]() {
        if (service->Stop().ok()) ok_count.fetch_add(1);
      });
    }
    for (std::thread& t : stoppers) t.join();
    // Every Stop() reports the same terminal status; the backlog was
    // drained exactly once by the winning joiner.
    EXPECT_EQ(ok_count.load(), 4);
    EXPECT_TRUE(service->status().ok());
    EXPECT_EQ(service->Stats().events_processed, 8u);
    ExpectContiguousCoverage(service->GenerationLog(), 8);
    // A second explicit Stop after the race stays idempotent, and the
    // destructor's Stop (end of scope) must be a no-op.
    EXPECT_TRUE(service->Stop().ok());
  }
}

TEST(IngestServiceTest, UpdateBecomesServableAndVisibleToTopK) {
  SnapshotStore store;
  IngestOptions options;
  options.batch.max_events = 8;
  options.batch.max_age = milliseconds(5);
  auto service = IngestService::Create(SeedGraph(), &store, options).value();
  ASSERT_TRUE(service->Start().ok());
  const NodeId base_nodes = SeedGraph().num_nodes();

  // Link a brand-new page into the graph and wait for freshness.
  ASSERT_TRUE(service->EnqueueEdgeAdd(0, base_nodes + 4).ok());
  ASSERT_TRUE(service->EnqueueEdgeAdd(1, base_nodes + 4).ok());
  ASSERT_TRUE(service->EnqueueVisit(base_nodes + 4).ok());
  ASSERT_TRUE(service->WaitServable(3, seconds(30)));
  EXPECT_GE(service->servable_sequence(), 3u);

  // The published generation serves the grown page set.
  std::shared_ptr<const LoadedBundle> bundle = store.Acquire();
  ASSERT_NE(bundle, nullptr);
  EXPECT_EQ(bundle->quality().size(), base_nodes + 5);
  QueryEngine engine(&store);
  TopKScratch scratch;
  TopKQuery query;
  query.k = 5;
  ASSERT_TRUE(engine.TopK(query, &scratch).ok());
  EXPECT_EQ(scratch.results().size(), 5u);

  ASSERT_TRUE(service->Stop().ok());
  IngestStats stats = service->Stats();
  EXPECT_EQ(stats.events_processed, 3u);
  EXPECT_EQ(stats.edge_adds, 2u);
  EXPECT_EQ(stats.visits, 1u);
  EXPECT_EQ(stats.latency_count, 3u);
  EXPECT_GT(stats.latency_p99_ms, 0.0);
}

// THE oracle: run a 3000-event random stream (adds, removes — real and
// ghost —, visits, growth past the seed graph) through the live
// pipeline, then rebuild offline: sequential replay of the same stream
// into an edge set, from-scratch CSR build, from-scratch PageRank.
// Streaming must match batch exactly on structure and within the drift
// budget on scores — with every accepted event covered by a published
// generation. Parameterized over both execution modes: the stage-
// pipelined service (solve of batch N+1 overlapping export of batch N)
// must satisfy the exact same oracle as the serial inline path.
class IngestServiceOracleTest : public ::testing::TestWithParam<bool> {};

TEST_P(IngestServiceOracleTest, StreamingOracleMatchesFromScratchRebuild) {
  const CsrGraph seed = SeedGraph();
  SnapshotStore store;
  IngestOptions options;
  options.pipelined = GetParam();
  options.batch.max_events = 128;
  options.batch.max_age = milliseconds(2);
  options.observation_window = 3;
  options.keep_last_image = true;
  auto service = IngestService::Create(seed, &store, options).value();
  ASSERT_TRUE(service->Start().ok());

  // Sequential-replay reference, seeded with the base edges. `present`
  // mirrors the replay set as a vector for O(1) random victim picks.
  std::set<std::pair<NodeId, NodeId>> replay = EdgeSet(seed);
  std::vector<std::pair<NodeId, NodeId>> present(replay.begin(),
                                                 replay.end());
  Rng rng(77);
  const NodeId id_space = seed.num_nodes() + 30;  // room to grow
  constexpr int kEvents = 3000;
  for (int i = 0; i < kEvents; ++i) {
    const uint64_t roll = rng.NextUint64() % 100;
    if (roll < 45) {
      const NodeId u = static_cast<NodeId>(rng.NextUint64() % id_space);
      const NodeId v = static_cast<NodeId>(rng.NextUint64() % id_space);
      ASSERT_TRUE(service->EnqueueEdgeAdd(u, v).ok());
      if (u != v && replay.insert({u, v}).second) present.push_back({u, v});
    } else if (roll < 70 && !present.empty()) {
      const size_t pick = rng.NextUint64() % present.size();
      const auto [u, v] = present[pick];
      ASSERT_TRUE(service->EnqueueEdgeRemove(u, v).ok());
      replay.erase({u, v});
      present[pick] = present.back();
      present.pop_back();
    } else if (roll < 80) {
      // Ghost remove: very likely not present; must be a clean no-op.
      const NodeId u = static_cast<NodeId>(rng.NextUint64() % id_space);
      const NodeId v = static_cast<NodeId>(rng.NextUint64() % id_space);
      ASSERT_TRUE(service->EnqueueEdgeRemove(u, v).ok());
      if (replay.erase({u, v})) {
        present.erase(std::find(present.begin(), present.end(),
                                std::make_pair(u, v)));
      }
    } else {
      ASSERT_TRUE(
          service
              ->EnqueueVisit(static_cast<NodeId>(rng.NextUint64() % id_space))
              .ok());
    }
  }

  const uint64_t total = service->queue().Stats().enqueued;
  ASSERT_EQ(total, static_cast<uint64_t>(kEvents));
  ASSERT_TRUE(service->WaitServable(total, seconds(120)));
  ASSERT_TRUE(service->Stop().ok());
  ASSERT_TRUE(service->status().ok());

  // 1. Structure: streaming graph == sequential replay, edge for edge.
  const CsrGraph& streamed = service->CurrentGraph();
  EXPECT_GE(streamed.num_nodes(), seed.num_nodes());
  EXPECT_EQ(EdgeSet(streamed), replay);

  // 2. Scores: final published PageRank == from-scratch solve on the
  // rebuilt graph, within the drift budget.
  std::vector<std::pair<NodeId, NodeId>> final_edges(replay.begin(),
                                                     replay.end());
  std::vector<Edge> rebuild_edges;
  rebuild_edges.reserve(final_edges.size());
  for (const auto& [u, v] : final_edges) rebuild_edges.push_back({u, v});
  const CsrGraph rebuilt =
      CsrGraph::FromEdges(streamed.num_nodes(), rebuild_edges).value();
  PageRankOptions scratch_options = DefaultIngestRankOptions().base;
  const PageRankResult scratch =
      ComputePageRank(rebuilt, scratch_options).value();
  ASSERT_TRUE(scratch.converged);

  std::shared_ptr<const LoadedBundle> bundle = store.Acquire();
  ASSERT_NE(bundle, nullptr);
  ASSERT_EQ(bundle->pagerank().size(), scratch.scores.size());
  double l1 = 0.0;
  for (size_t i = 0; i < scratch.scores.size(); ++i) {
    l1 += std::fabs(bundle->pagerank()[i] - scratch.scores[i]);
  }
  EXPECT_LT(l1, kOracleDriftBudget)
      << "streaming solution drifted from the batch rebuild";

  // 3. No lost updates: generations tile [1, total] gap-free.
  ExpectContiguousCoverage(service->GenerationLog(), total);
  IngestStats stats = service->Stats();
  EXPECT_EQ(stats.servable_sequence, total);
  EXPECT_EQ(stats.events_processed, total);
  EXPECT_EQ(stats.edge_adds + stats.edge_removes + stats.visits, total);
  EXPECT_EQ(stats.latency_count, total);
  EXPECT_EQ(stats.queue.enqueued, stats.queue.dequeued);
  EXPECT_TRUE(AuditIngestQueue(stats.queue.capacity, stats.queue.depth,
                               stats.queue.enqueued, stats.queue.dequeued,
                               stats.queue.rejected)
                  .ok());

  // 4. The final published artifact is a valid bundle, bit for bit.
  const std::vector<uint8_t> image = service->LastImage();
  ASSERT_FALSE(image.empty());
  EXPECT_TRUE(AuditScoreBundle(image.data(), image.size()).ok());
}

INSTANTIATE_TEST_SUITE_P(SerialAndPipelined, IngestServiceOracleTest,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Pipelined" : "Serial";
                         });

// Determinism through the full service: feed the identical event stream
// to a serial service and a pipelined one (with multi-threaded export)
// and require the FINAL published bundle image to be byte-identical.
// Batch boundaries may differ between runs (age-based flushes race the
// producer), so only the final drained artifact — same graph, same
// observation window — is compared.
TEST(IngestServiceTest, PipelinedFinalImageMatchesSerialByteForByte) {
  const CsrGraph seed = SeedGraph();
  auto run = [&seed](bool pipelined) {
    SnapshotStore store;
    IngestOptions options;
    options.pipelined = pipelined;
    options.export_parallel.num_threads = pipelined ? 4 : 1;
    options.batch.max_events = 1 << 14;     // single Stop-drain batch:
    options.batch.max_age = seconds(3600);  // identical windows both runs
    options.observation_window = 3;
    options.keep_last_image = true;
    auto service = IngestService::Create(seed, &store, options).value();
    EXPECT_TRUE(service->Start().ok());
    Rng rng(4242);
    for (int i = 0; i < 600; ++i) {
      const NodeId u = static_cast<NodeId>(rng.NextUint64() % 170);
      const NodeId v = static_cast<NodeId>(rng.NextUint64() % 170);
      const uint64_t roll = rng.NextUint64() % 4;
      Status st;
      if (roll == 0) {
        st = service->EnqueueEdgeAdd(u, v);
      } else if (roll == 1) {
        st = service->EnqueueEdgeRemove(u, v);
      } else {
        st = service->EnqueueVisit(u);
      }
      EXPECT_TRUE(st.ok());
    }
    EXPECT_TRUE(service->Stop().ok());
    EXPECT_TRUE(service->status().ok());
    return service->LastImage();
  };
  const std::vector<uint8_t> serial_image = run(false);
  const std::vector<uint8_t> pipelined_image = run(true);
  ASSERT_FALSE(serial_image.empty());
  EXPECT_EQ(pipelined_image, serial_image);
}

class IngestServiceDrainTest : public ::testing::TestWithParam<bool> {};

TEST_P(IngestServiceDrainTest, ShutdownWithBacklogDrainsEverything) {
  SnapshotStore store;
  IngestOptions options;
  options.pipelined = GetParam();
  options.batch.max_events = 1 << 14;      // size flush unreachable
  options.batch.max_age = seconds(3600);   // age flush unreachable
  auto service = IngestService::Create(SeedGraph(), &store, options).value();
  ASSERT_TRUE(service->Start().ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(service->EnqueueVisit(static_cast<NodeId>(i % 50)).ok());
  }
  // Nothing has flushed yet (policies can't fire); Stop must drain the
  // backlog through the full pipeline — consumer stage, export stage —
  // rather than drop it.
  ASSERT_TRUE(service->Stop().ok());
  IngestStats stats = service->Stats();
  EXPECT_EQ(stats.servable_sequence, 500u);
  EXPECT_EQ(stats.events_processed, 500u);
  EXPECT_EQ(stats.queue.depth, 0u);
  ExpectContiguousCoverage(service->GenerationLog(), 500);
  // Per-stage histograms saw every generation (initial one included, so
  // count = batches + 1) and agree with one another.
  EXPECT_GE(stats.stage_export.count, 2u);
  EXPECT_EQ(stats.stage_apply.count, stats.stage_export.count);
  EXPECT_EQ(stats.stage_solve.count, stats.stage_export.count);
  EXPECT_EQ(stats.stage_estimate.count, stats.stage_export.count);
  EXPECT_EQ(stats.stage_publish.count, stats.stage_export.count);
}

INSTANTIATE_TEST_SUITE_P(SerialAndPipelined, IngestServiceDrainTest,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Pipelined" : "Serial";
                         });

TEST(IngestServiceTest, RejectBackpressureShedsButLosesNoAcceptedEvent) {
  SnapshotStore store;
  IngestOptions options;
  options.queue.capacity = 4;
  options.queue.backpressure = BackpressurePolicy::kReject;
  options.batch.max_events = 4;
  options.batch.max_age = milliseconds(1);
  auto service = IngestService::Create(SeedGraph(), &store, options).value();
  ASSERT_TRUE(service->Start().ok());
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  for (int i = 0; i < 400; ++i) {
    const Status st = service->EnqueueVisit(static_cast<NodeId>(i % 10));
    if (st.ok()) {
      ++accepted;
    } else {
      ASSERT_EQ(st.code(), StatusCode::kOutOfRange);
      ++rejected;
    }
  }
  ASSERT_GT(accepted, 0u);
  ASSERT_TRUE(service->WaitServable(accepted, seconds(60)));
  ASSERT_TRUE(service->Stop().ok());
  IngestStats stats = service->Stats();
  EXPECT_EQ(stats.queue.rejected, rejected);
  EXPECT_EQ(stats.events_processed, accepted);
  ExpectContiguousCoverage(service->GenerationLog(), accepted);
}

// The TSan stress: two producers mutate the graph while two readers
// hammer TopK through the hot-swap store across many publishes. The
// assertions are light — the point is the interleaving itself (RCU pin
// vs publish vs queue backpressure) under the race detector.
TEST(IngestServiceTest, ConcurrentReadersDuringContinuousPublishes) {
  const CsrGraph seed = SeedGraph();
  SnapshotStore store;
  IngestOptions options;
  options.batch.max_events = 64;
  options.batch.max_age = milliseconds(1);
  options.queue.capacity = 512;
  auto service = IngestService::Create(seed, &store, options).value();
  ASSERT_TRUE(service->Start().ok());

  constexpr int kPerProducer = 2000;
  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&service, p] {
      Rng rng(1000 + p);
      for (int i = 0; i < kPerProducer; ++i) {
        const NodeId u = static_cast<NodeId>(rng.NextUint64() % 160);
        const NodeId v = static_cast<NodeId>(rng.NextUint64() % 160);
        const uint64_t roll = rng.NextUint64() % 3;
        Status st;
        if (roll == 0) {
          st = service->EnqueueEdgeAdd(u, v);
        } else if (roll == 1) {
          st = service->EnqueueEdgeRemove(u, v);
        } else {
          st = service->EnqueueVisit(u);
        }
        ASSERT_TRUE(st.ok());
      }
    });
  }
  QueryEngine engine(&store);
  std::vector<std::thread> readers;
  std::atomic<uint64_t> queries{0};
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      TopKScratch scratch;
      TopKQuery query;
      query.k = 10;
      while (!done.load(std::memory_order_acquire)) {
        ASSERT_TRUE(engine.TopK(query, &scratch).ok());
        ASSERT_GT(scratch.results().size(), 0u);
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  ASSERT_TRUE(service->WaitServable(2 * kPerProducer, seconds(120)));
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  ASSERT_TRUE(service->Stop().ok());
  ASSERT_TRUE(service->status().ok());
  EXPECT_GT(queries.load(), 0u);
  EXPECT_GT(service->Stats().generations, 1u);
  ExpectContiguousCoverage(service->GenerationLog(), 2 * kPerProducer);
}

}  // namespace
}  // namespace qrank
