// BatchAccumulator contract: last-writer-wins coalescing reconciled
// against the base graph (dedup, add-then-remove cancellation, ghost
// removes, duplicate adds), exact size/age flush boundaries, visit
// coalescing — and the property the streaming oracle rests on: the
// emitted delta is invariant under every permutation of Absorb calls
// and equals the net of sequential replay.

#include "ingest/batch_accumulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <utility>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/edge_list.h"

namespace qrank {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

CsrGraph MakeGraph(NodeId n, std::vector<Edge> edges) {
  return CsrGraph::FromEdges(n, edges).value();
}

// Events in tests bypass the queue, so stamp sequence/time by hand.
UpdateEvent At(UpdateEvent event, uint64_t sequence,
               steady_clock::time_point when = steady_clock::now()) {
  event.sequence = sequence;
  event.enqueue_time = when;
  return event;
}

TEST(BatchAccumulatorTest, DuplicateAddsCoalesceToOneDelta) {
  BatchAccumulator acc;
  acc.Absorb(At(UpdateEvent::AddEdge(0, 1), 1));
  acc.Absorb(At(UpdateEvent::AddEdge(0, 1), 2));
  acc.Absorb(At(UpdateEvent::AddEdge(0, 1), 3));
  FlushedBatch batch = acc.Flush(MakeGraph(2, {})).value();
  ASSERT_EQ(batch.delta.added.size(), 1u);
  EXPECT_EQ(batch.delta.added[0], (Edge{0, 1}));
  EXPECT_TRUE(batch.delta.removed.empty());
  EXPECT_EQ(batch.num_events, 3u);
  EXPECT_EQ(batch.num_adds, 3u);
  EXPECT_EQ(batch.first_sequence, 1u);
  EXPECT_EQ(batch.last_sequence, 3u);
}

TEST(BatchAccumulatorTest, AddThenRemoveOfNewEdgeCancels) {
  BatchAccumulator acc;
  acc.Absorb(At(UpdateEvent::AddEdge(0, 1), 1));
  acc.Absorb(At(UpdateEvent::RemoveEdge(0, 1), 2));
  FlushedBatch batch = acc.Flush(MakeGraph(2, {})).value();
  // Edge never existed and the last word was "remove": net nothing.
  EXPECT_TRUE(batch.delta.empty());
  EXPECT_EQ(batch.num_events, 2u);
}

TEST(BatchAccumulatorTest, RemoveThenAddOfExistingEdgeCancels) {
  BatchAccumulator acc;
  acc.Absorb(At(UpdateEvent::RemoveEdge(0, 1), 1));
  acc.Absorb(At(UpdateEvent::AddEdge(0, 1), 2));
  // Last word is "add" and the base already has the edge: no-op.
  FlushedBatch batch = acc.Flush(MakeGraph(2, {{0, 1}})).value();
  EXPECT_TRUE(batch.delta.empty());
}

TEST(BatchAccumulatorTest, GhostRemoveAndDuplicateAddAreNoOps) {
  BatchAccumulator acc;
  acc.Absorb(At(UpdateEvent::RemoveEdge(3, 4), 1));  // never existed
  acc.Absorb(At(UpdateEvent::AddEdge(0, 1), 2));     // already in base
  FlushedBatch batch = acc.Flush(MakeGraph(5, {{0, 1}})).value();
  // Neither survives reconciliation, so ApplyDelta's exactness contract
  // (removals exist, additions absent) holds by construction.
  EXPECT_TRUE(batch.delta.empty());
  EXPECT_EQ(batch.delta.old_num_nodes, 5u);
  EXPECT_EQ(batch.delta.new_num_nodes, 5u);
}

TEST(BatchAccumulatorTest, SelfLoopsCountButProduceNoIntent) {
  BatchAccumulator acc;
  acc.Absorb(At(UpdateEvent::AddEdge(2, 2), 1));
  FlushedBatch batch = acc.Flush(MakeGraph(3, {})).value();
  EXPECT_TRUE(batch.delta.empty());
  EXPECT_EQ(batch.num_events, 1u);  // still covered + latency-measured
  EXPECT_EQ(batch.last_sequence, 1u);
}

TEST(BatchAccumulatorTest, AddedEdgeBeyondBaseGrowsNodeCount) {
  BatchAccumulator acc;
  acc.Absorb(At(UpdateEvent::AddEdge(1, 6), 1));
  FlushedBatch batch = acc.Flush(MakeGraph(3, {{0, 1}})).value();
  EXPECT_EQ(batch.delta.old_num_nodes, 3u);
  EXPECT_EQ(batch.delta.new_num_nodes, 7u);
  ASSERT_EQ(batch.delta.added.size(), 1u);
  EXPECT_EQ(batch.delta.added[0], (Edge{1, 6}));
}

TEST(BatchAccumulatorTest, VisitsCoalesceIntoSortedCounts) {
  BatchAccumulator acc;
  acc.Absorb(At(UpdateEvent::Visit(5), 1));
  acc.Absorb(At(UpdateEvent::Visit(2), 2));
  acc.Absorb(At(UpdateEvent::Visit(5), 3));
  FlushedBatch batch = acc.Flush(MakeGraph(6, {})).value();
  ASSERT_EQ(batch.visits.size(), 2u);
  EXPECT_EQ(batch.visits[0], (std::pair<NodeId, uint64_t>{2, 1}));
  EXPECT_EQ(batch.visits[1], (std::pair<NodeId, uint64_t>{5, 2}));
  EXPECT_EQ(batch.num_visits, 3u);
}

TEST(BatchAccumulatorTest, SizeFlushBoundaryIsExact) {
  BatchPolicy policy;
  policy.max_events = 3;
  policy.max_age = std::chrono::hours(1);  // age can never trigger here
  BatchAccumulator acc(policy);
  const steady_clock::time_point now = steady_clock::now();
  EXPECT_FALSE(acc.ShouldFlush(now));  // empty never flushes
  acc.Absorb(At(UpdateEvent::Visit(0), 1, now));
  acc.Absorb(At(UpdateEvent::Visit(1), 2, now));
  EXPECT_FALSE(acc.ShouldFlush(now));  // 2 < 3
  acc.Absorb(At(UpdateEvent::Visit(2), 3, now));
  EXPECT_TRUE(acc.ShouldFlush(now));  // exactly max_events
}

TEST(BatchAccumulatorTest, AgeFlushBoundaryTracksOldestEvent) {
  BatchPolicy policy;
  policy.max_events = 1000;
  policy.max_age = milliseconds(50);
  BatchAccumulator acc(policy);
  const steady_clock::time_point t0 = steady_clock::now();
  acc.Absorb(At(UpdateEvent::Visit(0), 1, t0));
  // A newer event must not reset the staleness clock of the oldest.
  acc.Absorb(At(UpdateEvent::Visit(1), 2, t0 + milliseconds(40)));
  EXPECT_FALSE(acc.ShouldFlush(t0 + milliseconds(49)));
  EXPECT_TRUE(acc.ShouldFlush(t0 + milliseconds(50)));  // inclusive edge
  FlushedBatch batch = acc.Flush(MakeGraph(2, {})).value();
  EXPECT_EQ(batch.num_events, 2u);
  // Flush resets the age clock along with everything else.
  acc.Absorb(At(UpdateEvent::Visit(2), 3, t0 + milliseconds(60)));
  EXPECT_FALSE(acc.ShouldFlush(t0 + milliseconds(100)));
}

TEST(BatchAccumulatorTest, FlushOfEmptyBatchFails) {
  BatchAccumulator acc;
  EXPECT_EQ(acc.Flush(MakeGraph(2, {})).status().code(),
            StatusCode::kFailedPrecondition);
}

// The property everything downstream leans on: the flushed delta
// depends only on the event *set* (sequences fix a total order), not on
// the order Absorb saw them — and it equals the net of replaying the
// events one at a time in sequence order. Sweeps all 720 permutations
// of a 6-event stream that exercises every reconciliation rule at once.
TEST(BatchAccumulatorTest, DeltaInvariantUnderAbsorbPermutations) {
  // Base: 4 nodes, edges 0->1 and 2->3 present.
  const CsrGraph base = MakeGraph(4, {{0, 1}, {2, 3}});
  const std::vector<UpdateEvent> stream = {
      At(UpdateEvent::RemoveEdge(0, 1), 1),  // remove existing ...
      At(UpdateEvent::AddEdge(0, 1), 2),     // ... then re-add: no-op
      At(UpdateEvent::AddEdge(1, 2), 3),     // plain new edge
      At(UpdateEvent::AddEdge(3, 0), 4),     // ...
      At(UpdateEvent::RemoveEdge(3, 0), 5),  // ... cancelled again
      At(UpdateEvent::RemoveEdge(2, 3), 6),  // remove existing, survives
  };

  // Reference: sequential replay over an explicit edge set.
  std::set<std::pair<NodeId, NodeId>> replay = {{0, 1}, {2, 3}};
  for (const UpdateEvent& e : stream) {
    if (e.kind == UpdateKind::kAddEdge) {
      replay.insert({e.src, e.dst});
    } else if (e.kind == UpdateKind::kRemoveEdge) {
      replay.erase({e.src, e.dst});
    }
  }

  std::vector<size_t> order = {0, 1, 2, 3, 4, 5};
  size_t permutations = 0;
  do {
    BatchAccumulator acc;
    for (size_t i : order) acc.Absorb(stream[i]);
    FlushedBatch batch = acc.Flush(base).value();
    ASSERT_EQ(batch.delta.added, (std::vector<Edge>{{1, 2}}))
        << "permutation " << permutations;
    ASSERT_EQ(batch.delta.removed, (std::vector<Edge>{{2, 3}}))
        << "permutation " << permutations;
    ASSERT_EQ(batch.first_sequence, 1u);
    ASSERT_EQ(batch.last_sequence, 6u);
    // Streaming net == sequential replay net.
    const CsrGraph applied = base.ApplyDelta(batch.delta).value();
    std::set<std::pair<NodeId, NodeId>> streamed;
    for (NodeId u = 0; u < applied.num_nodes(); ++u) {
      for (NodeId v : applied.OutNeighbors(u)) streamed.insert({u, v});
    }
    ASSERT_EQ(streamed, replay) << "permutation " << permutations;
    ++permutations;
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_EQ(permutations, 720u);
}

}  // namespace
}  // namespace qrank
