// UpdateQueue contract: sequence stamping, FIFO batch pops, both
// backpressure policies, drain-on-close, and the MPSC stress the TSan
// job runs — 4 producers x 10k events against a batching consumer with
// full counter-conservation accounting at the end.

#include "ingest/update_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "audit/audit.h"

namespace qrank {
namespace {

using std::chrono::milliseconds;

TEST(UpdateQueueTest, PushStampsStrictlyIncreasingSequences) {
  UpdateQueue queue;
  std::vector<UpdateEvent> out;
  ASSERT_TRUE(queue.Push(UpdateEvent::AddEdge(1, 2)).ok());
  ASSERT_TRUE(queue.Push(UpdateEvent::Visit(7)).ok());
  ASSERT_TRUE(queue.Push(UpdateEvent::RemoveEdge(1, 2)).ok());
  EXPECT_EQ(queue.depth(), 3u);
  EXPECT_EQ(queue.PopBatch(10, milliseconds(0), &out), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].sequence, 1u);
  EXPECT_EQ(out[1].sequence, 2u);
  EXPECT_EQ(out[2].sequence, 3u);
  EXPECT_EQ(out[0].kind, UpdateKind::kAddEdge);
  EXPECT_EQ(out[1].kind, UpdateKind::kVisit);
  EXPECT_EQ(out[1].src, 7u);
  EXPECT_EQ(out[2].kind, UpdateKind::kRemoveEdge);
  // The latency clock was started on every accepted event.
  for (const UpdateEvent& e : out) {
    EXPECT_NE(e.enqueue_time, std::chrono::steady_clock::time_point{});
  }
}

TEST(UpdateQueueTest, PopBatchRespectsMaxEventsAndKeepsOrder) {
  UpdateQueue queue;
  for (NodeId i = 0; i < 10; ++i) {
    ASSERT_TRUE(queue.Push(UpdateEvent::Visit(i)).ok());
  }
  std::vector<UpdateEvent> out;
  EXPECT_EQ(queue.PopBatch(4, milliseconds(0), &out), 4u);
  EXPECT_EQ(queue.PopBatch(4, milliseconds(0), &out), 4u);
  EXPECT_EQ(queue.PopBatch(4, milliseconds(0), &out), 2u);
  ASSERT_EQ(out.size(), 10u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].sequence, i + 1);
    EXPECT_EQ(out[i].src, static_cast<NodeId>(i));
  }
}

TEST(UpdateQueueTest, PopBatchTimesOutOnEmptyQueue) {
  UpdateQueue queue;
  std::vector<UpdateEvent> out;
  EXPECT_EQ(queue.PopBatch(4, milliseconds(5), &out), 0u);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(queue.closed());
}

TEST(UpdateQueueTest, RejectPolicyFailsAtCapacityAndCounts) {
  UpdateQueueOptions options;
  options.capacity = 2;
  options.backpressure = BackpressurePolicy::kReject;
  UpdateQueue queue(options);
  ASSERT_TRUE(queue.Push(UpdateEvent::Visit(0)).ok());
  ASSERT_TRUE(queue.Push(UpdateEvent::Visit(1)).ok());
  const Status full = queue.Push(UpdateEvent::Visit(2));
  EXPECT_EQ(full.code(), StatusCode::kOutOfRange);
  UpdateQueueStats stats = queue.Stats();
  EXPECT_EQ(stats.enqueued, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.depth, 2u);
  // Rejected pushes consume no sequence number: the next accepted event
  // continues the gap-free numbering the coverage contract needs.
  std::vector<UpdateEvent> out;
  ASSERT_EQ(queue.PopBatch(1, milliseconds(0), &out), 1u);
  ASSERT_TRUE(queue.Push(UpdateEvent::Visit(3)).ok());
  out.clear();
  ASSERT_EQ(queue.PopBatch(2, milliseconds(0), &out), 2u);
  EXPECT_EQ(out.back().sequence, 3u);
}

TEST(UpdateQueueTest, BlockPolicyWaitsForConsumerSpace) {
  UpdateQueueOptions options;
  options.capacity = 1;
  options.backpressure = BackpressurePolicy::kBlock;
  UpdateQueue queue(options);
  ASSERT_TRUE(queue.Push(UpdateEvent::Visit(0)).ok());

  std::atomic<bool> second_done{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(UpdateEvent::Visit(1)).ok());
    second_done.store(true);
  });
  // The producer is parked at capacity until the consumer makes room.
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(second_done.load());

  std::vector<UpdateEvent> out;
  EXPECT_EQ(queue.PopBatch(1, milliseconds(100), &out), 1u);
  producer.join();
  EXPECT_TRUE(second_done.load());
  EXPECT_EQ(queue.depth(), 1u);
}

TEST(UpdateQueueTest, CloseWakesBlockedProducerWithFailedPrecondition) {
  UpdateQueueOptions options;
  options.capacity = 1;
  UpdateQueue queue(options);
  ASSERT_TRUE(queue.Push(UpdateEvent::Visit(0)).ok());
  Status blocked_status;
  std::thread producer([&] {
    blocked_status = queue.Push(UpdateEvent::Visit(1));
  });
  std::this_thread::sleep_for(milliseconds(10));
  queue.Close();
  producer.join();
  EXPECT_EQ(blocked_status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(queue.Push(UpdateEvent::Visit(2)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(UpdateQueueTest, CloseWithBacklogDrainsEverything) {
  UpdateQueue queue;
  for (NodeId i = 0; i < 100; ++i) {
    ASSERT_TRUE(queue.Push(UpdateEvent::Visit(i)).ok());
  }
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.depth(), 100u);
  // A shutdown with a non-empty queue loses nothing: pops keep working.
  std::vector<UpdateEvent> out;
  size_t total = 0;
  while (size_t n = queue.PopBatch(7, milliseconds(0), &out)) total += n;
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(queue.depth(), 0u);
  UpdateQueueStats stats = queue.Stats();
  EXPECT_EQ(stats.enqueued, stats.dequeued);
  EXPECT_TRUE(AuditIngestQueue(stats.capacity, stats.depth, stats.enqueued,
                               stats.dequeued, stats.rejected)
                  .ok());
}

// The stress the TSan job is for: 4 producers x 10k events racing a
// batching consumer through a deliberately tight (256-slot) queue, so
// blocking backpressure actually engages. Asserts per-producer FIFO,
// global sequence uniqueness, and counter conservation after drain.
TEST(UpdateQueueTest, MultiProducerStressKeepsEveryEvent) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 10000;
  UpdateQueueOptions options;
  options.capacity = 256;
  options.backpressure = BackpressurePolicy::kBlock;
  UpdateQueue queue(options);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // src encodes the producer, dst the per-producer index, so the
        // consumer can check per-producer order end to end.
        ASSERT_TRUE(queue
                        .Push(UpdateEvent::AddEdge(
                            static_cast<NodeId>(p), static_cast<NodeId>(i)))
                        .ok());
      }
    });
  }

  std::vector<UpdateEvent> drained;
  drained.reserve(kProducers * kPerProducer);
  std::thread consumer([&] {
    std::vector<UpdateEvent> out;
    while (drained.size() <
           static_cast<size_t>(kProducers) * kPerProducer) {
      out.clear();
      queue.PopBatch(128, milliseconds(2), &out);
      drained.insert(drained.end(), out.begin(), out.end());
    }
  });
  for (std::thread& t : producers) t.join();
  consumer.join();

  ASSERT_EQ(drained.size(), static_cast<size_t>(kProducers) * kPerProducer);
  std::vector<uint8_t> seen(drained.size() + 1, 0);
  std::vector<int> next_index(kProducers, 0);
  uint64_t last_sequence = 0;
  for (const UpdateEvent& e : drained) {
    // Sequences: unique, in [1, N], and pops preserve queue order.
    ASSERT_GE(e.sequence, 1u);
    ASSERT_LE(e.sequence, drained.size());
    ASSERT_FALSE(seen[e.sequence]) << "duplicate sequence " << e.sequence;
    seen[e.sequence] = 1;
    ASSERT_GT(e.sequence, last_sequence);
    last_sequence = e.sequence;
    // Per-producer FIFO: producer p's events surface in push order.
    ASSERT_LT(e.src, static_cast<NodeId>(kProducers));
    ASSERT_EQ(e.dst, static_cast<NodeId>(next_index[e.src]));
    ++next_index[e.src];
  }
  UpdateQueueStats stats = queue.Stats();
  EXPECT_EQ(stats.enqueued, drained.size());
  EXPECT_EQ(stats.dequeued, drained.size());
  EXPECT_EQ(stats.depth, 0u);
  EXPECT_LE(stats.max_depth, options.capacity);
  EXPECT_TRUE(AuditIngestQueue(stats.capacity, stats.depth, stats.enqueued,
                               stats.dequeued, stats.rejected)
                  .ok());
}

}  // namespace
}  // namespace qrank
