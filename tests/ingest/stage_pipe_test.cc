// StagePipe contract tests: FIFO handoff, capacity backpressure, the
// Close-drains vs Break-drops shutdown split, and a producer/consumer
// stress run (the shape the pipelined IngestService drives it in; also
// part of the TSan CI job).

#include "ingest/stage_pipe.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace qrank {
namespace {

TEST(StagePipeTest, FifoOrderThroughCapacityOneWindow) {
  StagePipe<int> pipe(1);
  std::vector<int> got;
  std::thread consumer([&] {
    int item = 0;
    while (pipe.Pop(&item)) got.push_back(item);
  });
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(pipe.Push(i));
  pipe.Close();
  consumer.join();
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[i], i);
}

TEST(StagePipeTest, PushBlocksAtCapacityUntilPop) {
  StagePipe<int> pipe(1);
  ASSERT_TRUE(pipe.Push(1));  // fills the single slot
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(pipe.Push(2));  // must block until the consumer pops
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());  // still blocked: slot occupied
  int item = 0;
  ASSERT_TRUE(pipe.Pop(&item));
  EXPECT_EQ(item, 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  ASSERT_TRUE(pipe.Pop(&item));
  EXPECT_EQ(item, 2);
}

TEST(StagePipeTest, CloseDrainsQueuedItemsThenEndsPop) {
  StagePipe<int> pipe(4);
  ASSERT_TRUE(pipe.Push(7));
  ASSERT_TRUE(pipe.Push(8));
  pipe.Close();
  EXPECT_FALSE(pipe.Push(9));  // no pushes after close
  int item = 0;
  EXPECT_TRUE(pipe.Pop(&item));
  EXPECT_EQ(item, 7);
  EXPECT_TRUE(pipe.Pop(&item));
  EXPECT_EQ(item, 8);
  EXPECT_FALSE(pipe.Pop(&item));  // closed and drained
}

TEST(StagePipeTest, BreakDropsQueuedItemsAndWakesBothEnds) {
  StagePipe<int> pipe(1);
  ASSERT_TRUE(pipe.Push(1));
  std::thread producer([&] {
    // Blocked at capacity; the Break below must refuse, not deliver.
    EXPECT_FALSE(pipe.Push(2));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  pipe.Break(Status::IOError("publisher died"));
  producer.join();
  int item = 0;
  EXPECT_FALSE(pipe.Pop(&item));  // queued item 1 was dropped
  EXPECT_TRUE(pipe.broken());
  EXPECT_EQ(pipe.status().code(), StatusCode::kIOError);
  // The first status wins; later Breaks don't overwrite it.
  pipe.Break(Status::Corruption("second failure"));
  EXPECT_EQ(pipe.status().code(), StatusCode::kIOError);
}

TEST(StagePipeTest, PopBlocksUntilPushArrives) {
  StagePipe<int> pipe(2);
  std::atomic<int> got{-1};
  std::thread consumer([&] {
    int item = 0;
    ASSERT_TRUE(pipe.Pop(&item));
    got.store(item);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(got.load(), -1);  // still waiting
  ASSERT_TRUE(pipe.Push(42));
  consumer.join();
  EXPECT_EQ(got.load(), 42);
  pipe.Close();
}

TEST(StagePipeTest, ProducerConsumerStressKeepsEveryItemInOrder) {
  // Move-only payloads through a tiny window under real concurrency —
  // the exact IngestService shape (one producer, one consumer).
  constexpr int kItems = 5000;
  StagePipe<std::unique_ptr<int>> pipe(1);
  std::vector<int> got;
  got.reserve(kItems);
  std::thread consumer([&] {
    std::unique_ptr<int> item;
    while (pipe.Pop(&item)) got.push_back(*item);
  });
  for (int i = 0; i < kItems; ++i) {
    ASSERT_TRUE(pipe.Push(std::make_unique<int>(i)));
  }
  pipe.Close();
  consumer.join();
  ASSERT_EQ(got.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) ASSERT_EQ(got[i], i);
}

}  // namespace
}  // namespace qrank
