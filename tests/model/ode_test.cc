#include "model/ode.h"

#include <gtest/gtest.h>

#include <cmath>

namespace qrank {
namespace {

TEST(OdeTest, ValidatesArguments) {
  OdeRhs f = [](double, double y) { return y; };
  EXPECT_FALSE(IntegrateRk4(f, 0.0, 1.0, 0.0, 10).ok());
  EXPECT_FALSE(IntegrateRk4(f, 1.0, 1.0, 0.5, 10).ok());
  EXPECT_FALSE(IntegrateRk4(f, 0.0, 1.0, 1.0, 0).ok());
  EXPECT_FALSE(IntegrateRk4(OdeRhs{}, 0.0, 1.0, 1.0, 10).ok());
}

TEST(OdeTest, ExponentialGrowth) {
  // dy/dt = y, y(0) = 1 -> y(1) = e.
  OdeRhs f = [](double, double y) { return y; };
  Result<OdeSolution> sol = IntegrateRk4(f, 0.0, 1.0, 1.0, 100);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->final_value, std::exp(1.0), 1e-8);
  EXPECT_EQ(sol->times.size(), 101u);
  EXPECT_EQ(sol->values.size(), 101u);
  EXPECT_DOUBLE_EQ(sol->times.front(), 0.0);
  EXPECT_DOUBLE_EQ(sol->times.back(), 1.0);
}

TEST(OdeTest, TimeDependentRhs) {
  // dy/dt = 2t, y(0) = 0 -> y(t) = t^2.
  OdeRhs f = [](double t, double) { return 2.0 * t; };
  Result<OdeSolution> sol = IntegrateRk4(f, 0.0, 0.0, 3.0, 50);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->final_value, 9.0, 1e-9);
}

TEST(OdeTest, LogisticEquationMatchesClosedForm) {
  // dy/dt = y(1-y), y(0)=0.1 -> y(t) = 1/(1 + 9 e^{-t}).
  OdeRhs f = [](double, double y) { return y * (1.0 - y); };
  Result<OdeSolution> sol = IntegrateRk4(f, 0.0, 0.1, 5.0, 500);
  ASSERT_TRUE(sol.ok());
  for (size_t i = 0; i < sol->times.size(); i += 50) {
    double t = sol->times[i];
    double expected = 1.0 / (1.0 + 9.0 * std::exp(-t));
    EXPECT_NEAR(sol->values[i], expected, 1e-9) << "t=" << t;
  }
}

TEST(OdeTest, FourthOrderConvergence) {
  // Halving the step should shrink the error by ~2^4.
  OdeRhs f = [](double, double y) { return y; };
  double exact = std::exp(1.0);
  double err_coarse =
      std::fabs(IntegrateRk4(f, 0.0, 1.0, 1.0, 10)->final_value - exact);
  double err_fine =
      std::fabs(IntegrateRk4(f, 0.0, 1.0, 1.0, 20)->final_value - exact);
  EXPECT_LT(err_fine, err_coarse / 12.0);
}

}  // namespace
}  // namespace qrank
