#include "model/forgetting_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "model/ode.h"

namespace qrank {
namespace {

ForgettingModel MakeModel(double q, double forget, double n = 1e6,
                          double r = 1e6, double p0 = 1e-4) {
  ForgettingParams params;
  params.base.quality = q;
  params.base.num_users = n;
  params.base.visit_rate = r;
  params.base.initial_popularity = p0;
  params.forget_rate = forget;
  return ForgettingModel::Create(params).value();
}

TEST(ForgettingModelTest, ValidatesParameters) {
  ForgettingParams p;
  p.forget_rate = -0.1;
  EXPECT_FALSE(ForgettingModel::Create(p).ok());
  p = ForgettingParams{};
  p.base.quality = 0.0;
  EXPECT_FALSE(ForgettingModel::Create(p).ok());
}

TEST(ForgettingModelTest, ZeroForgettingReducesToBaseModel) {
  ForgettingModel fm = MakeModel(0.5, 0.0);
  VisitationParams vp;
  vp.quality = 0.5;
  vp.num_users = 1e6;
  vp.visit_rate = 1e6;
  vp.initial_popularity = 1e-4;
  VisitationModel vm = VisitationModel::Create(vp).value();
  for (double t : {0.0, 5.0, 20.0, 100.0}) {
    EXPECT_NEAR(fm.Popularity(t), vm.Popularity(t), 1e-12);
  }
  EXPECT_DOUBLE_EQ(fm.EquilibriumPopularity(), 0.5);
  EXPECT_DOUBLE_EQ(fm.AsymptoticEstimatorBias(), 0.0);
}

TEST(ForgettingModelTest, EquilibriumBelowQuality) {
  // P* = Q - phi * n / r = 0.5 - 0.2 = 0.3.
  ForgettingModel m = MakeModel(0.5, 0.2);
  EXPECT_NEAR(m.EquilibriumPopularity(), 0.3, 1e-12);
  EXPECT_NEAR(m.Popularity(1e4), 0.3, 1e-9);
  EXPECT_NEAR(m.AsymptoticEstimatorBias(), 0.2, 1e-12);
}

TEST(ForgettingModelTest, PopularityDecreasesWhenStartingAboveEquilibrium) {
  // The paper observed pages with consistently decreasing PageRank; the
  // forgetting model produces them when P0 > P*.
  ForgettingParams p;
  p.base.quality = 0.5;
  p.base.num_users = 1e6;
  p.base.visit_rate = 1e6;
  p.base.initial_popularity = 0.5;  // starts at full quality popularity
  p.forget_rate = 0.2;              // equilibrium 0.3
  ForgettingModel m = ForgettingModel::Create(p).value();
  double prev = m.Popularity(0.0);
  EXPECT_NEAR(prev, 0.5, 1e-12);
  for (double t = 1.0; t <= 50.0; t += 1.0) {
    double cur = m.Popularity(t);
    EXPECT_LT(cur, prev) << "t=" << t;
    prev = cur;
  }
  EXPECT_NEAR(m.Popularity(1e4), 0.3, 1e-6);
}

TEST(ForgettingModelTest, PageDiesWhenForgettingDominates) {
  // P* = 0.2 - 0.5 < 0: popularity decays to zero.
  ForgettingModel m = MakeModel(0.2, 0.5);
  EXPECT_LT(m.EquilibriumPopularity(), 0.0);
  EXPECT_LT(m.Popularity(100.0), m.Popularity(1.0));
  EXPECT_NEAR(m.Popularity(1e3), 0.0, 1e-6);
  EXPECT_GE(m.Popularity(50.0), 0.0);
}

TEST(ForgettingModelTest, CriticalForgettingRate) {
  // P* exactly 0: algebraic decay P = P0 / (1 + k P0 t).
  ForgettingModel m = MakeModel(0.3, 0.3);
  EXPECT_DOUBLE_EQ(m.EquilibriumPopularity(), 0.0);
  double p0 = 1e-4;
  double k = 1.0;  // r/n
  for (double t : {0.0, 10.0, 1000.0}) {
    EXPECT_NEAR(m.Popularity(t), p0 / (1.0 + k * p0 * t), 1e-12);
  }
}

TEST(ForgettingModelTest, ClosedFormMatchesOde) {
  const double q = 0.6, phi = 0.2, n = 1e6, r = 1e6, p0 = 1e-3;
  ForgettingModel m = MakeModel(q, phi, n, r, p0);
  OdeRhs rhs = [&](double, double p) {
    return r / n * p * (q - p) - phi * p;
  };
  Result<OdeSolution> sol = IntegrateRk4(rhs, 0.0, p0, 60.0, 6000);
  ASSERT_TRUE(sol.ok());
  for (size_t i = 0; i < sol->times.size(); i += 600) {
    EXPECT_NEAR(sol->values[i], m.Popularity(sol->times[i]), 1e-8)
        << "t=" << sol->times[i];
  }
}

TEST(ForgettingModelTest, EstimatorSumConvergesToEquilibriumNotQuality) {
  // The quantified Section 9.1 bias: I + P == P* (= Q - phi n/r), so the
  // paper's estimator underestimates quality by exactly phi n/r under
  // forgetting.
  ForgettingModel m = MakeModel(0.5, 0.2);
  for (double t : {0.0, 10.0, 100.0}) {
    EXPECT_NEAR(m.EstimatorSum(t), 0.3, 1e-9) << "t=" << t;
  }
}

TEST(ForgettingModelTest, DerivativeSignMatchesApproachDirection) {
  ForgettingModel rising = MakeModel(0.5, 0.1);  // P* = 0.4 > P0
  EXPECT_GT(rising.PopularityDerivative(1.0), 0.0);

  ForgettingParams p;
  p.base.quality = 0.5;
  p.base.num_users = 1e6;
  p.base.visit_rate = 1e6;
  p.base.initial_popularity = 0.5;
  p.forget_rate = 0.1;  // P* = 0.4 < P0
  ForgettingModel falling = ForgettingModel::Create(p).value();
  EXPECT_LT(falling.PopularityDerivative(1.0), 0.0);
}

}  // namespace
}  // namespace qrank
