#include "model/population_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace qrank {
namespace {

PopulationModel Make(double alpha, double beta, double p0 = 1e-4) {
  PopulationParams params;
  params.quality_alpha = alpha;
  params.quality_beta = beta;
  params.num_users = 1e6;
  params.visit_rate = 1e6;
  params.initial_popularity = p0;
  return PopulationModel::Create(params).value();
}

TEST(BetaPdfTest, NormalizesAndMatchesKnownValues) {
  // Beta(1,1) is uniform.
  EXPECT_NEAR(BetaPdf(0.3, 1.0, 1.0), 1.0, 1e-12);
  // Beta(2,2) peaks at 1.5 in the middle.
  EXPECT_NEAR(BetaPdf(0.5, 2.0, 2.0), 1.5, 1e-12);
  // Zero outside the open interval.
  EXPECT_EQ(BetaPdf(0.0, 2.0, 2.0), 0.0);
  EXPECT_EQ(BetaPdf(1.0, 2.0, 2.0), 0.0);
  // Numeric integral is ~1.
  double sum = 0.0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double x = (i + 0.5) / kN;
    sum += BetaPdf(x, 2.5, 4.0) / kN;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PopulationModelTest, ValidatesParameters) {
  PopulationParams p;
  p.quality_alpha = 0.0;
  EXPECT_FALSE(PopulationModel::Create(p).ok());
  p = PopulationParams{};
  p.num_users = 0.0;
  EXPECT_FALSE(PopulationModel::Create(p).ok());
  p = PopulationParams{};
  p.initial_popularity = 1.0;
  EXPECT_FALSE(PopulationModel::Create(p).ok());
  p = PopulationParams{};
  EXPECT_FALSE(PopulationModel::Create(p, 4).ok());  // too few nodes
}

TEST(PopulationModelTest, MeanQualityIsBetaMean) {
  PopulationModel m = Make(2.0, 6.0);
  EXPECT_NEAR(m.MeanQuality(), 0.25, 1e-12);
}

TEST(PopulationModelTest, ExpectedPopularityStartsAtSeedAndEndsAtMeanQuality) {
  PopulationModel m = Make(1.3, 3.0, 1e-4);
  // At age 0 every page has P0 (except the tiny sliver with q < P0).
  EXPECT_NEAR(m.ExpectedPopularityAtAge(0.0), 1e-4, 5e-5);
  // At large age every page saturates at its quality; the expectation
  // approaches E[q] (quadrature error only).
  EXPECT_NEAR(m.ExpectedPopularityAtAge(1e4), m.MeanQuality(), 0.01);
}

TEST(PopulationModelTest, ExpectedPopularityMonotoneInAge) {
  PopulationModel m = Make(1.3, 3.0);
  double prev = -1.0;
  for (double age : {0.0, 5.0, 15.0, 30.0, 60.0, 120.0}) {
    double p = m.ExpectedPopularityAtAge(age);
    EXPECT_GT(p, prev) << "age " << age;
    prev = p;
  }
}

TEST(PopulationModelTest, StageMixSumsToOneAndShiftsWithAge) {
  PopulationModel m = Make(1.3, 3.0);
  StageMix young = m.StageMixAtAge(1.0);
  StageMix old = m.StageMixAtAge(200.0);
  EXPECT_NEAR(young.infant + young.expansion + young.maturity, 1.0, 1e-9);
  EXPECT_NEAR(old.infant + old.expansion + old.maturity, 1.0, 1e-9);
  EXPECT_GT(young.infant, 0.9);
  EXPECT_GT(old.maturity, 0.9);
  EXPECT_LT(old.infant, young.infant);
}

TEST(PopulationModelTest, NarrowBetaApproachesSinglePageModel) {
  // Beta(500, 500) concentrates at q = 0.5: population behaves like one
  // page of quality 0.5.
  PopulationModel m = Make(500.0, 500.0, 1e-4);
  VisitationParams vp;
  vp.quality = 0.5;
  vp.num_users = 1e6;
  vp.visit_rate = 1e6;
  vp.initial_popularity = 1e-4;
  VisitationModel single = VisitationModel::Create(vp).value();
  for (double age : {5.0, 15.0, 25.0}) {
    EXPECT_NEAR(m.ExpectedPopularityAtAge(age), single.Popularity(age),
                0.05 * single.Popularity(age) + 1e-4)
        << "age " << age;
  }
}

TEST(PopulationModelTest, MixedAgesAverageOverCohorts) {
  PopulationModel m = Make(1.3, 3.0);
  double mixed = m.ExpectedPopularityMixedAges(40.0);
  double youngest = m.ExpectedPopularityAtAge(0.0);
  double oldest = m.ExpectedPopularityAtAge(40.0);
  EXPECT_GT(mixed, youngest);
  EXPECT_LT(mixed, oldest);

  StageMix mix = m.StageMixMixedAges(40.0);
  EXPECT_NEAR(mix.infant + mix.expansion + mix.maturity, 1.0, 1e-9);
  // A mixed-age population has all three stages present.
  EXPECT_GT(mix.infant, 0.01);
  EXPECT_GT(mix.expansion, 0.01);
  EXPECT_GT(mix.maturity, 0.01);
}

TEST(PopulationModelTest, DegenerateAgeInputsFallBack) {
  PopulationModel m = Make(1.3, 3.0);
  EXPECT_NEAR(m.ExpectedPopularityMixedAges(0.0),
              m.ExpectedPopularityAtAge(0.0), 1e-12);
}

}  // namespace
}  // namespace qrank
