// Validates the closed-form user-visitation model against the paper's
// claims: Theorem 1 (logistic popularity evolution, checked against RK4
// integration of the underlying ODE), Lemma 1 (P = A * Q), Corollary 1
// (P -> Q), Theorem 2 (I + P == Q identically), and the Figure 1/2/3
// qualitative shapes.

#include "model/visitation_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "model/ode.h"

namespace qrank {
namespace {

VisitationModel MakeModel(double q, double n, double r, double p0) {
  VisitationParams params;
  params.quality = q;
  params.num_users = n;
  params.visit_rate = r;
  params.initial_popularity = p0;
  return VisitationModel::Create(params).value();
}

TEST(VisitationModelTest, ValidatesParameters) {
  VisitationParams p;
  p.quality = 0.0;
  EXPECT_FALSE(VisitationModel::Create(p).ok());
  p = VisitationParams{};
  p.quality = 1.5;
  EXPECT_FALSE(VisitationModel::Create(p).ok());
  p = VisitationParams{};
  p.num_users = 0.0;
  EXPECT_FALSE(VisitationModel::Create(p).ok());
  p = VisitationParams{};
  p.visit_rate = -1.0;
  EXPECT_FALSE(VisitationModel::Create(p).ok());
  p = VisitationParams{};
  p.initial_popularity = 0.0;
  EXPECT_FALSE(VisitationModel::Create(p).ok());
  p = VisitationParams{};
  p.quality = 0.3;
  p.initial_popularity = 0.4;  // above quality
  EXPECT_FALSE(VisitationModel::Create(p).ok());
}

TEST(VisitationModelTest, InitialConditionHolds) {
  VisitationModel m = MakeModel(0.8, 1e8, 1e8, 1e-8);
  EXPECT_NEAR(m.Popularity(0.0), 1e-8, 1e-20);
}

TEST(VisitationModelTest, Figure1ParametersShowThreeStages) {
  // Paper Figure 1: Q=0.8, n=r=1e8, P0=1e-8; infant until ~15,
  // expansion 15..30, maturity after.
  VisitationModel m = MakeModel(0.8, 1e8, 1e8, 1e-8);
  EXPECT_EQ(m.StageAt(5.0), LifeStage::kInfant);
  EXPECT_EQ(m.StageAt(10.0), LifeStage::kInfant);
  EXPECT_EQ(m.StageAt(23.0), LifeStage::kExpansion);
  EXPECT_EQ(m.StageAt(40.0), LifeStage::kMaturity);
  // Popularity is tiny in infancy and ~Q at maturity.
  EXPECT_LT(m.Popularity(10.0), 0.08);
  EXPECT_GT(m.Popularity(40.0), 0.75);
}

TEST(VisitationModelTest, PopularityIsMonotoneIncreasing) {
  VisitationModel m = MakeModel(0.5, 1e6, 2e6, 1e-5);
  double prev = 0.0;
  for (double t = 0.0; t <= 60.0; t += 1.0) {
    double p = m.Popularity(t);
    // Strictly increasing until it saturates at Q within double
    // precision, never decreasing.
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_GT(m.Popularity(20.0), m.Popularity(5.0));
}

TEST(VisitationModelTest, Corollary1PopularityConvergesToQuality) {
  for (double q : {0.1, 0.5, 0.9}) {
    VisitationModel m = MakeModel(q, 1e8, 1e8, 1e-8);
    EXPECT_NEAR(m.Popularity(1e4), q, 1e-9) << "q=" << q;
  }
}

TEST(VisitationModelTest, Lemma1AwarenessTimesQualityIsPopularity) {
  VisitationModel m = MakeModel(0.4, 1e7, 5e6, 1e-6);
  for (double t : {0.0, 10.0, 50.0, 200.0}) {
    EXPECT_NEAR(m.Awareness(t) * 0.4, m.Popularity(t), 1e-15);
  }
}

TEST(VisitationModelTest, VisitRateIsProportionalToPopularity) {
  VisitationModel m = MakeModel(0.4, 1e7, 5e6, 1e-6);
  for (double t : {0.0, 20.0, 100.0}) {
    EXPECT_NEAR(m.VisitRate(t), 5e6 * m.Popularity(t), 1e-6);
  }
}

TEST(VisitationModelTest, DerivativeMatchesFiniteDifference) {
  VisitationModel m = MakeModel(0.6, 1e6, 1e6, 1e-4);
  const double h = 1e-5;
  for (double t : {1.0, 10.0, 20.0, 40.0}) {
    double fd = (m.Popularity(t + h) - m.Popularity(t - h)) / (2.0 * h);
    EXPECT_NEAR(m.PopularityDerivative(t), fd,
                1e-6 * std::max(1.0, std::fabs(fd)));
  }
}

// ---- Theorem 2 property sweep: Q == I(p,t) + P(p,t) for all t and all
// parameter combinations (the paper's central identity).
class Theorem2Test
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(Theorem2Test, EstimatorSumEqualsQualityEverywhere) {
  auto [q, rn_ratio, p0_frac] = GetParam();
  double n = 1e7;
  VisitationModel m = MakeModel(q, n, rn_ratio * n, p0_frac * q);
  for (double t = 0.0; t <= 300.0; t += 3.0) {
    EXPECT_NEAR(m.EstimatorSum(t), q, 1e-12)
        << "q=" << q << " r/n=" << rn_ratio << " p0=" << p0_frac * q
        << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterSweep, Theorem2Test,
    ::testing::Combine(::testing::Values(0.05, 0.2, 0.5, 0.8, 1.0),
                       ::testing::Values(0.1, 1.0, 10.0),
                       ::testing::Values(1e-6, 1e-3, 0.5)));

// ---- Theorem 1 cross-validation: closed form vs RK4 on the raw ODE
// dP/dt = (r/n) P (Q - P).
class Theorem1OdeTest : public ::testing::TestWithParam<double> {};

TEST_P(Theorem1OdeTest, ClosedFormMatchesNumericalIntegration) {
  const double q = GetParam();
  const double n = 1e6, r = 2e6, p0 = 1e-5;
  VisitationModel m = MakeModel(q, n, r, p0);
  OdeRhs rhs = [&](double, double p) { return r / n * p * (q - p); };
  Result<OdeSolution> sol = IntegrateRk4(rhs, 0.0, p0, 40.0, 4000);
  ASSERT_TRUE(sol.ok());
  for (size_t i = 0; i < sol->times.size(); i += 400) {
    EXPECT_NEAR(sol->values[i], m.Popularity(sol->times[i]), 1e-8)
        << "t=" << sol->times[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Qualities, Theorem1OdeTest,
                         ::testing::Values(0.1, 0.3, 0.6, 0.9));

TEST(VisitationModelTest, Figure2RelativeIncreaseShape) {
  // Paper Figure 2: Q=0.2, n=r=1e8, P0=1e-9. I ~ Q early, decays late;
  // P poor early, ~ Q late.
  VisitationModel m = MakeModel(0.2, 1e8, 1e8, 1e-9);
  EXPECT_NEAR(m.RelativeIncrease(10.0), 0.2, 0.005);
  EXPECT_LT(m.Popularity(10.0), 0.005);
  EXPECT_LT(m.RelativeIncrease(150.0), 0.02);
  EXPECT_NEAR(m.Popularity(150.0), 0.2, 0.02);
}

TEST(VisitationModelTest, Figure3SumIsFlatLineAtQuality) {
  VisitationModel m = MakeModel(0.2, 1e8, 1e8, 1e-9);
  for (double t = 0.0; t <= 150.0; t += 5.0) {
    EXPECT_NEAR(m.EstimatorSum(t), 0.2, 1e-12);
  }
}

TEST(VisitationModelTest, FiniteDifferenceEstimateApproachesQuality) {
  VisitationModel m = MakeModel(0.5, 1e6, 1e6, 1e-4);
  // Short interval mid-expansion: estimate close to Q.
  Result<double> est = m.FiniteDifferenceEstimate(10.0, 10.5);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.value(), 0.5, 0.1);
  // Tighter interval converges further.
  Result<double> tight = m.FiniteDifferenceEstimate(10.0, 10.01);
  ASSERT_TRUE(tight.ok());
  EXPECT_NEAR(tight.value(), 0.5, 0.01);
}

TEST(VisitationModelTest, FiniteDifferenceValidatesInterval) {
  VisitationModel m = MakeModel(0.5, 1e6, 1e6, 1e-4);
  EXPECT_FALSE(m.FiniteDifferenceEstimate(5.0, 5.0).ok());
  EXPECT_FALSE(m.FiniteDifferenceEstimate(-1.0, 5.0).ok());
  EXPECT_FALSE(m.FiniteDifferenceEstimate(5.0, 4.0).ok());
}

TEST(VisitationModelTest, TimeToReachFractionInvertsPopularity) {
  VisitationModel m = MakeModel(0.8, 1e8, 1e8, 1e-8);
  Result<double> t_half = m.TimeToReachFraction(0.5);
  ASSERT_TRUE(t_half.ok());
  EXPECT_NEAR(m.Popularity(t_half.value()), 0.4, 1e-9);
  // Out-of-range fractions rejected.
  EXPECT_FALSE(m.TimeToReachFraction(1.0).ok());
  EXPECT_FALSE(m.TimeToReachFraction(1e-12).ok());
}

TEST(VisitationModelTest, SamplePopularityGridIsInclusive) {
  VisitationModel m = MakeModel(0.8, 1e8, 1e8, 1e-8);
  std::vector<double> samples = m.SamplePopularity(0.0, 40.0, 5);
  ASSERT_EQ(samples.size(), 5u);
  EXPECT_NEAR(samples.front(), m.Popularity(0.0), 1e-15);
  EXPECT_NEAR(samples.back(), m.Popularity(40.0), 1e-15);
  EXPECT_TRUE(m.SamplePopularity(0.0, 1.0, 0).empty());
  EXPECT_EQ(m.SamplePopularity(3.0, 9.0, 1).size(), 1u);
}

TEST(VisitationModelTest, HigherQualityGrowsFaster) {
  VisitationModel lo = MakeModel(0.2, 1e8, 1e8, 1e-8);
  VisitationModel hi = MakeModel(0.8, 1e8, 1e8, 1e-8);
  for (double t : {10.0, 20.0, 30.0}) {
    EXPECT_GT(hi.Popularity(t), lo.Popularity(t));
  }
}

TEST(VisitationModelTest, StageThresholdsAreConfigurable) {
  VisitationModel m = MakeModel(0.8, 1e8, 1e8, 1e-8);
  // With an extreme infant threshold everything early is expansion.
  EXPECT_EQ(m.StageAt(5.0, /*infant=*/1e-12, /*maturity=*/0.999999),
            LifeStage::kExpansion);
}

}  // namespace
}  // namespace qrank
