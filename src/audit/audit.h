// Invariant-audit subsystem: a registry of named validators over the
// artifacts the incremental snapshot pipeline produces and consumes.
//
// PR 2 made the hot path fast but fragile-by-construction: in-place CSR
// patching, cached-transpose sharing, and a drift-budget DeltaPageRank
// whose exactness contract rests on structural invariants holding at
// every step. The validators here make those invariants explicit,
// checkable and *named*, in four families:
//
//   graph.*   CSR well-formedness: monotone offsets, in-bounds sorted
//             adjacency, edge/node-count consistency, and agreement
//             between the cached transpose and the forward arrays.
//   delta.*   GraphDelta applicability: sorted duplicate-free edge
//             lists, no ghost removals or already-present additions,
//             dropped-node edges fully listed, and a dirty frontier
//             that covers every touched row.
//   rank.*    Rank-vector invariants: finite non-negative entries, L1
//             mass within tolerance of the declared scale.
//   engine.*  Engine-contract checks: a declared-converged vector
//             really is a fixed point to tolerance under the full
//             PageRank operator (dangling mass included), and the
//             DeltaPageRank drift ledger stayed under its budget.
//   serve.*   Score-bundle artifact checks (serve/bundle_format.h):
//             header magic/version/CRC against the real image size,
//             section-table geometry, payload CRC, score finiteness
//             and declared mass, and serving-index consistency —
//             a corrupt bundle must be rejected before it is served.
//   ingest.*  Continuous-ingest bookkeeping: queue counter conservation
//             (accepted events are queued or drained, never dropped)
//             and the coalescing contract of a flushed batch (the net
//             delta never exceeds its raw edge events; the page set
//             only grows).
//
// Three consumers: the compile-time QRANK_AUDIT_LEVEL hooks inside
// src/graph/ and src/rank/ (cheap Status-based self-checks; see
// CsrGraph::CheckConsistency), the `qrank_audit` CLI (tools/), and the
// mutation tests in tests/audit/ that prove each validator catches the
// corruption it is named for.

#ifndef QRANK_AUDIT_AUDIT_H_
#define QRANK_AUDIT_AUDIT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"
#include "graph/graph_delta.h"

namespace qrank {

enum class AuditSeverity { kWarning = 0, kError = 1 };

/// Stable name ("warning" / "error") for machine-readable output.
const char* AuditSeverityName(AuditSeverity severity);

/// One violated (or suspicious) invariant.
struct AuditIssue {
  std::string validator;  // registry name, e.g. "graph.offsets"
  AuditSeverity severity = AuditSeverity::kError;
  std::string detail;
};

/// Outcome of running one or more validators.
struct AuditReport {
  /// Names of the validators that executed (pass or fail).
  std::vector<std::string> ran;
  std::vector<AuditIssue> issues;

  /// True when no kError issue was recorded (warnings do not fail).
  bool ok() const;
  /// True when `validator` recorded at least one issue of any severity.
  bool Failed(std::string_view validator) const;
  /// Distinct validators with >= 1 issue, in first-seen order.
  std::vector<std::string> FailedValidators() const;

  void Merge(AuditReport other);
  /// Human-readable multi-line summary.
  std::string ToString() const;
};

/// Everything a validator may inspect. All pointers are optional: a
/// validator runs only when the fields it needs are present (see
/// AuditValidator::applicable). Callers fill in what they have.
struct AuditContext {
  /// The graph under audit (for delta checks: the *new* graph the delta
  /// produced; for rank/engine checks: the graph the scores rank).
  const CsrGraph* graph = nullptr;

  /// Delta checks: the graph the delta applies to, and the delta.
  const CsrGraph* base = nullptr;
  const GraphDelta* delta = nullptr;
  /// Claimed dirty frontier over `graph` (size graph->num_nodes()).
  const std::vector<uint8_t>* dirty_frontier = nullptr;

  /// Reordering checks (graph.permutation*): a claimed node relabeling.
  /// graph.permutation validates bijectivity against `graph`;
  /// graph.permutation_roundtrip additionally proves
  /// Permute(perm) ∘ Permute(inverse) reproduces `graph` edge-for-edge.
  const std::vector<NodeId>* permutation = nullptr;

  /// Rank-vector checks.
  const std::vector<double>* scores = nullptr;
  double expected_mass = 1.0;
  double mass_tolerance = 1e-6;

  /// Engine-contract checks (uniform teleport assumed). `tolerance` is
  /// the engine's declared stopping tolerance; <= 0 disables
  /// engine.residual.
  double damping = 0.85;
  double tolerance = 0.0;
  bool declared_converged = false;

  /// DeltaPageRank drift ledger (DeltaPageRankResult::drift_ledger_total
  /// / drift_budget). A negative ledger disables engine.drift.
  double drift_ledger_total = -1.0;
  double drift_budget = 0.0;

  /// Serve-bundle checks (serve.bundle.*): a raw score-bundle image
  /// ("QRKB", see serve/bundle_format.h). The validators read only
  /// these bytes — the audit library never links qrank_serve.
  const uint8_t* bundle_data = nullptr;
  size_t bundle_size = 0;

  /// Ingest-queue checks (ingest.queue): a consistent snapshot of the
  /// UpdateQueue counters (raw integers — the audit library never links
  /// qrank_ingest). `has_ingest_queue` gates applicability, since an
  /// all-zero snapshot is itself valid.
  bool has_ingest_queue = false;
  uint64_t queue_capacity = 0;
  uint64_t queue_depth = 0;
  uint64_t queue_enqueued = 0;
  uint64_t queue_dequeued = 0;
  uint64_t queue_rejected = 0;

  /// Ingest-batch checks (ingest.batch): the raw event counts a
  /// coalesced batch absorbed to produce `delta`. Negative disables.
  int64_t ingest_batch_events = -1;
  int64_t ingest_batch_edge_events = -1;
};

/// A named validator. `applicable` inspects only which context fields
/// are present; `run` appends to the report (recording nothing = pass).
struct AuditValidator {
  const char* name;  // "<family>.<check>"
  AuditSeverity severity;
  const char* description;
  bool (*applicable)(const AuditContext&);
  void (*run)(const AuditContext&, AuditReport*);
};

/// All registered validators, registration order (stable across runs).
const std::vector<AuditValidator>& AuditRegistry();

/// Runs every validator applicable to `ctx`.
AuditReport RunAudit(const AuditContext& ctx);

/// Runs one validator by registry name. NotFound for an unknown name,
/// FailedPrecondition when `ctx` lacks the fields it needs.
Result<AuditReport> RunAuditValidator(std::string_view name,
                                      const AuditContext& ctx);

/// Convenience: the graph.* family (structure + transpose agreement).
AuditReport AuditGraph(const CsrGraph& graph);

/// Convenience: the delta.* family against a base graph (frontier check
/// included when `dirty_frontier` is non-null; `applied` is the graph
/// the delta produced, needed to expand out-degree-change wakeups).
AuditReport AuditDelta(const CsrGraph& base, const GraphDelta& delta,
                       const CsrGraph* applied = nullptr,
                       const std::vector<uint8_t>* dirty_frontier = nullptr);

/// Convenience: the graph.permutation* pair on a (graph, perm) claim.
AuditReport AuditPermutation(const CsrGraph& graph,
                             const std::vector<NodeId>& perm);

/// Convenience: the rank.* family on a bare score vector.
AuditReport AuditRankVector(const std::vector<double>& scores,
                            double expected_mass,
                            double mass_tolerance = 1e-6);

/// Convenience: the serve.bundle.* family on a raw bundle image
/// (header/magic/CRC, section-table geometry, payload CRC, score
/// finiteness/mass, serving-index consistency).
AuditReport AuditScoreBundle(const uint8_t* data, size_t size,
                             double mass_tolerance = 1e-6);

/// Convenience: ingest.queue on a counter snapshot (conservation:
/// accepted events are either queued or drained, never dropped).
AuditReport AuditIngestQueue(uint64_t capacity, uint64_t depth,
                             uint64_t enqueued, uint64_t dequeued,
                             uint64_t rejected);

/// Convenience: ingest.batch alone — the coalescing contract of one
/// flushed batch (delta no larger than its edge events, growth-only
/// node count) — without re-running the delta.* family (the ingest loop
/// runs AuditDelta separately).
AuditReport AuditIngestBatch(const CsrGraph& base, const GraphDelta& delta,
                             uint64_t num_events, uint64_t num_edge_events);

}  // namespace qrank

#endif  // QRANK_AUDIT_AUDIT_H_
