#include "audit/audit.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "graph/reorder.h"
#include "serve/bundle_format.h"

namespace qrank {

namespace {

void Fail(AuditReport* report, const AuditValidator& v, std::string detail) {
  report->issues.push_back({v.name, v.severity, std::move(detail)});
}

// Finds a validator by name in the registry, nullptr if absent.
const AuditValidator* FindValidator(std::string_view name) {
  for (const AuditValidator& v : AuditRegistry()) {
    if (name == v.name) return &v;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// graph.* — CSR well-formedness
// ---------------------------------------------------------------------------

bool NeedsGraph(const AuditContext& ctx) { return ctx.graph != nullptr; }

void RunGraphOffsets(const AuditContext& ctx, AuditReport* report) {
  const AuditValidator& self = *FindValidator("graph.offsets");
  const CsrGraph& g = *ctx.graph;
  const std::vector<size_t>& off = g.offsets();
  const size_t n = g.num_nodes();
  if (n == 0) {
    // A default-constructed graph has no offset array at all; a built
    // empty graph has the single leading zero. Both are well-formed.
    if (!off.empty() && !(off.size() == 1 && off[0] == 0)) {
      Fail(report, self, "empty graph carries a non-trivial offset array");
    }
    if (g.num_edges() != 0) {
      Fail(report, self, "zero nodes but " +
                             std::to_string(g.num_edges()) + " edges");
    }
    return;
  }
  if (off.size() != n + 1) {
    Fail(report, self,
         "offset array has " + std::to_string(off.size()) +
             " entries, want num_nodes + 1 = " + std::to_string(n + 1));
    return;
  }
  if (off[0] != 0) {
    Fail(report, self, "offsets[0] = " + std::to_string(off[0]) + ", want 0");
  }
  for (size_t u = 0; u < n; ++u) {
    if (off[u + 1] < off[u]) {
      Fail(report, self,
           "offsets not monotone at node " + std::to_string(u) + ": " +
               std::to_string(off[u]) + " -> " + std::to_string(off[u + 1]));
      return;  // one skew usually cascades; report the first
    }
  }
  if (off[n] != g.num_edges()) {
    Fail(report, self,
         "offsets[num_nodes] = " + std::to_string(off[n]) +
             " does not equal num_edges = " + std::to_string(g.num_edges()));
  }
}

void RunGraphAdjacency(const AuditContext& ctx, AuditReport* report) {
  const AuditValidator& self = *FindValidator("graph.adjacency");
  const CsrGraph& g = *ctx.graph;
  const std::vector<size_t>& off = g.offsets();
  const std::vector<NodeId>& dst = g.targets();
  const size_t n = g.num_nodes();
  if (off.size() != n + 1) return;  // graph.offsets owns that failure
  for (size_t u = 0; u < n; ++u) {
    // Clamped bounds: stay in-range even when the offset array is
    // corrupt, so this validator never crashes and never double-reports
    // a pure offset skew.
    const size_t lo = std::min(off[u], dst.size());
    const size_t hi = std::min(off[u + 1], dst.size());
    for (size_t i = lo; i < hi; ++i) {
      if (dst[i] >= n) {
        Fail(report, self,
             "edge " + std::to_string(u) + "->" + std::to_string(dst[i]) +
                 " targets a node outside [0, " + std::to_string(n) + ")");
        return;
      }
      if (dst[i] == u) {
        Fail(report, self,
             "self-loop at node " + std::to_string(u) +
                 " (removed at construction by contract)");
        return;
      }
      if (i > lo && dst[i] <= dst[i - 1]) {
        Fail(report, self,
             "adjacency of node " + std::to_string(u) +
                 " not strictly ascending at position " + std::to_string(i) +
                 ": " + std::to_string(dst[i - 1]) + " then " +
                 std::to_string(dst[i]));
        return;
      }
    }
  }
}

void RunGraphTranspose(const AuditContext& ctx, AuditReport* report) {
  const AuditValidator& self = *FindValidator("graph.transpose");
  const CsrGraph& g = *ctx.graph;
  const size_t n = g.num_nodes();
  // Out-of-range forward targets belong to graph.adjacency; recomputing
  // in-degrees over them would be out-of-bounds, so bail out quietly.
  for (NodeId v : g.targets()) {
    if (v >= n) return;
  }
  // In-degree counts recomputed from the forward arrays are the
  // reference; the cached transpose must agree row by row.
  std::vector<uint32_t> want_indeg = g.ComputeInDegrees();
  size_t transpose_edges = 0;
  for (NodeId v = 0; v < n; ++v) {
    std::span<const NodeId> in = g.InNeighbors(v);
    transpose_edges += in.size();
    if (in.size() != want_indeg[v]) {
      Fail(report, self,
           "node " + std::to_string(v) + " has " + std::to_string(in.size()) +
               " cached in-neighbors but forward arrays imply " +
               std::to_string(want_indeg[v]));
      return;
    }
    for (size_t i = 0; i < in.size(); ++i) {
      if (i > 0 && in[i] <= in[i - 1]) {
        Fail(report, self,
             "in-adjacency of node " + std::to_string(v) +
                 " not strictly ascending");
        return;
      }
      if (in[i] >= n || !g.HasEdge(in[i], v)) {
        Fail(report, self,
             "cached in-edge " + std::to_string(in[i]) + "->" +
                 std::to_string(v) + " absent from the forward graph");
        return;
      }
    }
  }
  if (transpose_edges != g.num_edges()) {
    Fail(report, self,
         "transpose holds " + std::to_string(transpose_edges) +
             " edges, forward graph " + std::to_string(g.num_edges()));
  }
}

void RunGraphCompressedTranspose(const AuditContext& ctx,
                                 AuditReport* report) {
  const AuditValidator& self = *FindValidator("graph.compressed_transpose");
  const CsrGraph& g = *ctx.graph;
  const CompressedCsr& c = g.BuildCompressedTranspose();
  // Structural invariants of the varint stream first (cheap), then the
  // edge-for-edge comparison against the raw transpose arrays, which are
  // themselves audited by graph.transpose.
  Status st = c.ValidateRows();
  if (st.ok()) st = c.CheckAgainst(g.in_offsets(), g.in_sources());
  if (!st.ok()) Fail(report, self, st.message());
}

void RunGraphNonEmpty(const AuditContext& ctx, AuditReport* report) {
  const AuditValidator& self = *FindValidator("graph.nonempty");
  const CsrGraph& g = *ctx.graph;
  if (g.num_nodes() > 0 && g.num_edges() == 0) {
    Fail(report, self,
         std::to_string(g.num_nodes()) +
             " nodes but zero edges; PageRank degenerates to the teleport "
             "distribution");
  }
}

bool NeedsPermutation(const AuditContext& ctx) {
  return ctx.graph != nullptr && ctx.permutation != nullptr;
}

void RunGraphPermutation(const AuditContext& ctx, AuditReport* report) {
  const AuditValidator& self = *FindValidator("graph.permutation");
  const Status st =
      ValidatePermutation(*ctx.permutation, ctx.graph->num_nodes());
  if (!st.ok()) Fail(report, self, st.ToString());
}

void RunGraphPermutationRoundtrip(const AuditContext& ctx,
                                  AuditReport* report) {
  const AuditValidator& self = *FindValidator("graph.permutation_roundtrip");
  const CsrGraph& g = *ctx.graph;
  const std::vector<NodeId>& perm = *ctx.permutation;
  // graph.permutation owns bijectivity failures; the round trip below
  // would index out of bounds on a broken map, so bail out quietly.
  if (!ValidatePermutation(perm, g.num_nodes()).ok()) return;
  Result<CsrGraph> forward = g.Permute(perm);
  if (!forward.ok()) {
    Fail(report, self, "Permute(perm) failed: " + forward.status().ToString());
    return;
  }
  Result<CsrGraph> back = forward.value().Permute(InvertPermutation(perm));
  if (!back.ok()) {
    Fail(report, self,
         "Permute(inverse) failed: " + back.status().ToString());
    return;
  }
  if (back.value().offsets() != g.offsets() ||
      back.value().targets() != g.targets()) {
    Fail(report, self,
         "Permute(perm) followed by Permute(inverse) does not reproduce "
         "the original graph edge-for-edge");
  }
}

// ---------------------------------------------------------------------------
// delta.* — GraphDelta applicability
// ---------------------------------------------------------------------------

bool NeedsDelta(const AuditContext& ctx) { return ctx.delta != nullptr; }
bool NeedsBaseAndDelta(const AuditContext& ctx) {
  return ctx.base != nullptr && ctx.delta != nullptr;
}
bool NeedsFrontier(const AuditContext& ctx) {
  return ctx.delta != nullptr && ctx.graph != nullptr &&
         ctx.dirty_frontier != nullptr;
}

std::string EdgeStr(const Edge& e) {
  return std::to_string(e.src) + "->" + std::to_string(e.dst);
}

// Sorted + strictly increasing (so duplicate-free); endpoint bounds.
bool CheckEdgeList(const std::vector<Edge>& edges, NodeId bound,
                   const char* which, const AuditValidator& self,
                   AuditReport* report) {
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i > 0 && !(edges[i - 1] < edges[i])) {
      Fail(report, self,
           std::string(which) + " list not strictly (src, dst)-sorted at " +
               EdgeStr(edges[i]) +
               (edges[i] == edges[i - 1] ? " (duplicate edge)" : ""));
      return false;
    }
    if (edges[i].src >= bound || edges[i].dst >= bound) {
      Fail(report, self, std::string(which) + " edge " + EdgeStr(edges[i]) +
                             " has an endpoint outside [0, " +
                             std::to_string(bound) + ")");
      return false;
    }
  }
  return true;
}

void RunDeltaShape(const AuditContext& ctx, AuditReport* report) {
  const AuditValidator& self = *FindValidator("delta.shape");
  const GraphDelta& d = *ctx.delta;
  if (!CheckEdgeList(d.added, d.new_num_nodes, "added", self, report)) return;
  if (!CheckEdgeList(d.removed, std::max(d.old_num_nodes, d.new_num_nodes),
                     "removed", self, report)) {
    return;
  }
  for (const Edge& e : d.added) {
    if (e.src == e.dst) {
      Fail(report, self, "added edge " + EdgeStr(e) + " is a self-loop");
      return;
    }
  }
  // An edge in both lists would add and remove the same link in one
  // step; both sorted, so one merge pass finds any intersection.
  size_t i = 0, j = 0;
  while (i < d.added.size() && j < d.removed.size()) {
    if (d.added[i] == d.removed[j]) {
      Fail(report, self,
           "edge " + EdgeStr(d.added[i]) + " listed as both added and removed");
      return;
    }
    if (d.added[i] < d.removed[j]) {
      ++i;
    } else {
      ++j;
    }
  }
}

void RunDeltaApply(const AuditContext& ctx, AuditReport* report) {
  const AuditValidator& self = *FindValidator("delta.apply");
  const CsrGraph& base = *ctx.base;
  const GraphDelta& d = *ctx.delta;
  if (d.old_num_nodes != base.num_nodes()) {
    Fail(report, self,
         "delta.old_num_nodes = " + std::to_string(d.old_num_nodes) +
             " but base graph has " + std::to_string(base.num_nodes()) +
             " nodes");
    return;
  }
  for (const Edge& e : d.removed) {
    if (e.src >= base.num_nodes() || !base.HasEdge(e.src, e.dst)) {
      Fail(report, self,
           "removed edge " + EdgeStr(e) + " does not exist in the base graph");
      return;
    }
  }
  for (const Edge& e : d.added) {
    if (e.src < base.num_nodes() && base.HasEdge(e.src, e.dst)) {
      Fail(report, self,
           "added edge " + EdgeStr(e) + " already present in the base graph");
      return;
    }
  }
  if (d.new_num_nodes < d.old_num_nodes) {
    // Shrinking delta: every base edge incident to a dropped node must
    // be listed in `removed`, or ApplyDelta would leave ghost edges.
    for (NodeId u = 0; u < base.num_nodes(); ++u) {
      for (NodeId v : base.OutNeighbors(u)) {
        if (u < d.new_num_nodes && v < d.new_num_nodes) continue;
        if (!std::binary_search(d.removed.begin(), d.removed.end(),
                                Edge{u, v})) {
          Fail(report, self,
               "edge " + EdgeStr(Edge{u, v}) +
                   " touches a dropped node but is not listed as removed");
          return;
        }
      }
    }
  }
}

void RunDeltaFrontier(const AuditContext& ctx, AuditReport* report) {
  const AuditValidator& self = *FindValidator("delta.frontier");
  const GraphDelta& d = *ctx.delta;
  const CsrGraph& to = *ctx.graph;
  const std::vector<uint8_t>& frontier = *ctx.dirty_frontier;
  if (frontier.size() != d.new_num_nodes ||
      to.num_nodes() != d.new_num_nodes) {
    Fail(report, self,
         "frontier has " + std::to_string(frontier.size()) +
             " entries over a graph of " + std::to_string(to.num_nodes()) +
             " nodes; delta says new_num_nodes = " +
             std::to_string(d.new_num_nodes));
    return;
  }
  // Recompute the minimal required frontier independently of
  // GraphDelta::DirtyFrontier (which is itself code under audit).
  std::vector<uint8_t> required(d.new_num_nodes, 0);
  for (NodeId u = d.old_num_nodes; u < d.new_num_nodes; ++u) required[u] = 1;
  std::vector<int64_t> outdeg_change(d.new_num_nodes, 0);
  auto touch = [&](const Edge& e, int64_t sign) {
    if (e.src < d.new_num_nodes) {
      required[e.src] = 1;
      outdeg_change[e.src] += sign;
    }
    if (e.dst < d.new_num_nodes) required[e.dst] = 1;
  };
  for (const Edge& e : d.added) touch(e, +1);
  for (const Edge& e : d.removed) touch(e, -1);
  for (NodeId u = 0; u < d.new_num_nodes; ++u) {
    if (outdeg_change[u] == 0) continue;
    // The share x/c this node pushes changed for *every* out-neighbor.
    for (NodeId v : to.OutNeighbors(u)) required[v] = 1;
  }
  for (NodeId u = 0; u < d.new_num_nodes; ++u) {
    if (required[u] && !frontier[u]) {
      Fail(report, self,
           "node " + std::to_string(u) +
               " is touched by the delta but missing from the dirty "
               "frontier (its row would start frozen on stale inputs)");
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// rank.* — rank-vector invariants
// ---------------------------------------------------------------------------

bool NeedsScores(const AuditContext& ctx) { return ctx.scores != nullptr; }

void RunRankFinite(const AuditContext& ctx, AuditReport* report) {
  const AuditValidator& self = *FindValidator("rank.finite");
  const std::vector<double>& x = *ctx.scores;
  for (size_t i = 0; i < x.size(); ++i) {
    if (!std::isfinite(x[i])) {
      Fail(report, self, "score[" + std::to_string(i) + "] is not finite");
      return;
    }
    if (x[i] < 0.0) {
      Fail(report, self, "score[" + std::to_string(i) + "] = " +
                             std::to_string(x[i]) + " is negative");
      return;
    }
  }
}

void RunRankMass(const AuditContext& ctx, AuditReport* report) {
  const AuditValidator& self = *FindValidator("rank.mass");
  const std::vector<double>& x = *ctx.scores;
  if (x.empty()) return;
  double sum = 0.0;
  for (double s : x) sum += s;
  if (!std::isfinite(sum)) return;  // rank.finite owns that failure
  const double slack =
      ctx.mass_tolerance * std::max(1.0, std::fabs(ctx.expected_mass));
  if (std::fabs(sum - ctx.expected_mass) > slack) {
    std::ostringstream os;
    os << "scores sum to " << sum << ", want " << ctx.expected_mass
       << " within " << slack;
    Fail(report, self, os.str());
  }
}

// ---------------------------------------------------------------------------
// engine.* — engine-contract checks
// ---------------------------------------------------------------------------

bool NeedsResidualContract(const AuditContext& ctx) {
  return ctx.graph != nullptr && ctx.scores != nullptr &&
         ctx.tolerance > 0.0 && ctx.declared_converged &&
         ctx.scores->size() == ctx.graph->num_nodes() &&
         ctx.graph->num_nodes() > 0;
}

void RunEngineResidual(const AuditContext& ctx, AuditReport* report) {
  const AuditValidator& self = *FindValidator("engine.residual");
  const CsrGraph& g = *ctx.graph;
  const size_t n = g.num_nodes();
  // Probability-normalize a copy: the declared tolerance is defined on
  // the probability scale regardless of the output ScaleConvention.
  std::vector<double> x = *ctx.scores;
  double sum = 0.0;
  for (double s : x) sum += s;
  if (!(sum > 0.0) || !std::isfinite(sum)) return;  // rank.* owns this
  for (double& s : x) s /= sum;

  const double alpha = ctx.damping;
  double dangling = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    if (g.OutDegree(u) == 0) dangling += x[u];
  }
  // One application of the full operator F (uniform teleport, dangling
  // mass redistributed — footnote 2): a vector declared converged at
  // tolerance t satisfies ||F(x) - x||_1 <= alpha * t; renormalization
  // after a drift-budget solve adds at most freeze_threshold * t < t.
  // 2t is therefore a sound and tight acceptance bound.
  const double base_mass = (1.0 - alpha + alpha * dangling) / n;
  double residual = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    double pull = 0.0;
    for (NodeId u : g.InNeighbors(i)) {
      pull += x[u] / g.OutDegree(u);
    }
    residual += std::fabs(base_mass + alpha * pull - x[i]);
  }
  const double bound = 2.0 * ctx.tolerance;
  if (residual > bound) {
    std::ostringstream os;
    os << "vector declared converged at tolerance " << ctx.tolerance
       << " but one full sweep moves it by " << residual << " (allowed "
       << bound << ")";
    Fail(report, self, os.str());
  }
}

bool NeedsDriftLedger(const AuditContext& ctx) {
  return ctx.drift_ledger_total >= 0.0;
}

void RunEngineDrift(const AuditContext& ctx, AuditReport* report) {
  const AuditValidator& self = *FindValidator("engine.drift");
  // The frozen-set engine banks un-announced movement per row, each
  // account strictly below budget/n at sweep end; the ledger total must
  // therefore stay under the budget (tiny fp headroom allowed).
  const double bound = ctx.drift_budget * (1.0 + 1e-9);
  if (ctx.drift_ledger_total > bound) {
    std::ostringstream os;
    os << "drift ledger holds " << ctx.drift_ledger_total
       << " of hidden movement, over the declared budget "
       << ctx.drift_budget;
    Fail(report, self, os.str());
  }
}

// ---------------------------------------------------------------------------
// serve.bundle.* — score-bundle artifact checks (serve/bundle_format.h)
// ---------------------------------------------------------------------------

bool NeedsBundle(const AuditContext& ctx) {
  return ctx.bundle_data != nullptr;
}

// Layered parse shared by the bundle validators. Each validator silently
// passes when the layer below the one it owns is already broken —
// header corruption is serve.bundle.header's alone, table corruption
// serve.bundle.sections', and so on — preserving the registry's
// exactly-one-validator diagnostic property.
struct BundleView {
  BundleHeader header = {};
  const BundleSectionEntry* table = nullptr;
  bool header_ok = false;
  bool sections_ok = false;
};

BundleView ParseBundle(const AuditContext& ctx) {
  BundleView v;
  if (ctx.bundle_size < sizeof(BundleHeader)) return v;
  std::memcpy(&v.header, ctx.bundle_data, sizeof(BundleHeader));
  if (!ValidateBundleHeader(v.header, ctx.bundle_size).ok()) return v;
  v.header_ok = true;
  v.table = reinterpret_cast<const BundleSectionEntry*>(
      ctx.bundle_data + sizeof(BundleHeader));
  v.sections_ok =
      ValidateBundleSections(v.header, v.table, ctx.bundle_size).ok();
  return v;
}

const uint8_t* BundleSection(const BundleView& v, const AuditContext& ctx,
                             uint32_t id) {
  for (uint32_t i = 0; i < v.header.section_count; ++i) {
    if (v.table[i].id == id) return ctx.bundle_data + v.table[i].offset;
  }
  return nullptr;
}

void RunServeBundleHeader(const AuditContext& ctx, AuditReport* report) {
  const AuditValidator& self = *FindValidator("serve.bundle.header");
  if (ctx.bundle_size < sizeof(BundleHeader)) {
    Fail(report, self,
         "image of " + std::to_string(ctx.bundle_size) +
             " bytes is smaller than the fixed header");
    return;
  }
  BundleHeader header;
  std::memcpy(&header, ctx.bundle_data, sizeof(BundleHeader));
  const Status st = ValidateBundleHeader(header, ctx.bundle_size);
  if (!st.ok()) Fail(report, self, st.message());
}

void RunServeBundleSections(const AuditContext& ctx, AuditReport* report) {
  const AuditValidator& self = *FindValidator("serve.bundle.sections");
  const BundleView v = ParseBundle(ctx);
  if (!v.header_ok) return;  // serve.bundle.header owns that failure
  const Status st = ValidateBundleSections(v.header, v.table, ctx.bundle_size);
  if (!st.ok()) Fail(report, self, st.message());
}

void RunServeBundleCrc(const AuditContext& ctx, AuditReport* report) {
  const AuditValidator& self = *FindValidator("serve.bundle.crc");
  const BundleView v = ParseBundle(ctx);
  if (!v.header_ok) return;
  const uint64_t table_end = BundleTableEnd(v.header);
  const uint32_t crc = BundleCrc32(ctx.bundle_data + table_end,
                                   ctx.bundle_size - table_end);
  if (crc != v.header.payload_crc32) {
    std::ostringstream os;
    os << "payload CRC " << std::hex << crc << " != declared "
       << v.header.payload_crc32;
    Fail(report, self, os.str());
  }
}

void RunServeBundleScores(const AuditContext& ctx, AuditReport* report) {
  const AuditValidator& self = *FindValidator("serve.bundle.scores");
  const BundleView v = ParseBundle(ctx);
  if (!v.sections_ok) return;  // header/sections validators own those
  const size_t n = v.header.num_pages;
  const double* quality = reinterpret_cast<const double*>(
      BundleSection(v, ctx, kBundleQuality));
  const double* pagerank = reinterpret_cast<const double*>(
      BundleSection(v, ctx, kBundlePageRank));
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(quality[i]) || quality[i] < 0.0) {
      Fail(report, self,
           "quality[" + std::to_string(i) + "] is not finite non-negative");
      return;
    }
    if (!std::isfinite(pagerank[i]) || pagerank[i] < 0.0) {
      Fail(report, self,
           "pagerank[" + std::to_string(i) + "] is not finite non-negative");
      return;
    }
  }
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += pagerank[i];
  const double slack =
      ctx.mass_tolerance * std::max(1.0, std::fabs(v.header.expected_mass));
  if (std::fabs(sum - v.header.expected_mass) > slack) {
    std::ostringstream os;
    os << "pagerank sums to " << sum << ", header declares "
       << v.header.expected_mass << " (slack " << slack << ")";
    Fail(report, self, os.str());
  }
}

void RunServeBundleIndex(const AuditContext& ctx, AuditReport* report) {
  const AuditValidator& self = *FindValidator("serve.bundle.index");
  const BundleView v = ParseBundle(ctx);
  if (!v.sections_ok) return;
  const size_t n = v.header.num_pages;
  const uint32_t num_sites = v.header.num_sites;
  const double* quality = reinterpret_cast<const double*>(
      BundleSection(v, ctx, kBundleQuality));
  const double* pagerank = reinterpret_cast<const double*>(
      BundleSection(v, ctx, kBundlePageRank));
  const uint32_t* site_ids = reinterpret_cast<const uint32_t*>(
      BundleSection(v, ctx, kBundleSiteIds));
  const uint32_t* site_offsets = reinterpret_cast<const uint32_t*>(
      BundleSection(v, ctx, kBundleSiteOffsets));
  const uint32_t* site_pages = reinterpret_cast<const uint32_t*>(
      BundleSection(v, ctx, kBundleSitePages));

  // Comparisons with a non-finite score are skipped: those rows are
  // serve.bundle.scores' finding, not an ordering defect.
  const auto check_order = [&](const char* name, const uint32_t* order,
                               const double* score) {
    std::vector<uint8_t> seen(n, 0);
    for (size_t i = 0; i < n; ++i) {
      if (order[i] >= n) {
        Fail(report, self,
             std::string(name) + "[" + std::to_string(i) + "] = " +
                 std::to_string(order[i]) + " out of row range");
        return false;
      }
      if (seen[order[i]]++) {
        Fail(report, self,
             std::string(name) + " repeats row " + std::to_string(order[i]));
        return false;
      }
      if (i > 0 && std::isfinite(score[order[i - 1]]) &&
          std::isfinite(score[order[i]]) &&
          score[order[i]] > score[order[i - 1]]) {
        Fail(report, self,
             std::string(name) + " not score-descending at position " +
                 std::to_string(i));
        return false;
      }
    }
    return true;
  };
  if (!check_order("order_by_quality",
                   reinterpret_cast<const uint32_t*>(
                       BundleSection(v, ctx, kBundleOrderByQuality)),
                   quality)) {
    return;
  }
  if (!check_order("order_by_pagerank",
                   reinterpret_cast<const uint32_t*>(
                       BundleSection(v, ctx, kBundleOrderByPageRank)),
                   pagerank)) {
    return;
  }

  for (size_t i = 0; i < n; ++i) {
    if (site_ids[i] >= num_sites) {
      Fail(report, self,
           "site_ids[" + std::to_string(i) + "] = " +
               std::to_string(site_ids[i]) + " >= num_sites " +
               std::to_string(num_sites));
      return;
    }
  }
  if (site_offsets[0] != 0 || site_offsets[num_sites] != n) {
    Fail(report, self, "site_offsets do not span [0, num_pages]");
    return;
  }
  for (uint32_t s = 0; s < num_sites; ++s) {
    if (site_offsets[s + 1] < site_offsets[s]) {
      Fail(report, self,
           "site_offsets not monotone at site " + std::to_string(s));
      return;
    }
  }
  std::vector<uint8_t> seen(n, 0);
  for (uint32_t s = 0; s < num_sites; ++s) {
    for (uint32_t i = site_offsets[s]; i < site_offsets[s + 1]; ++i) {
      const uint32_t row = site_pages[i];
      if (row >= n) {
        Fail(report, self,
             "site_pages[" + std::to_string(i) + "] out of row range");
        return;
      }
      if (seen[row]++) {
        Fail(report, self,
             "site_pages repeats row " + std::to_string(row));
        return;
      }
      if (site_ids[row] != s) {
        Fail(report, self,
             "site_pages[" + std::to_string(i) + "] = row " +
                 std::to_string(row) + " listed under site " +
                 std::to_string(s) + " but carries site " +
                 std::to_string(site_ids[row]));
        return;
      }
      if (i > site_offsets[s] && std::isfinite(quality[site_pages[i - 1]]) &&
          std::isfinite(quality[row]) &&
          quality[row] > quality[site_pages[i - 1]]) {
        Fail(report, self,
             "site " + std::to_string(s) +
                 " postings not quality-descending at position " +
                 std::to_string(i));
        return;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ingest.* — continuous-ingest bookkeeping
// ---------------------------------------------------------------------------

bool NeedsIngestQueue(const AuditContext& ctx) { return ctx.has_ingest_queue; }

void RunIngestQueue(const AuditContext& ctx, AuditReport* report) {
  const AuditValidator& self = *FindValidator("ingest.queue");
  // Conservation: every accepted event is either still queued or was
  // handed to the consumer. Rejected pushes never enter the ledger, so
  // they appear on neither side.
  if (ctx.queue_enqueued != ctx.queue_dequeued + ctx.queue_depth) {
    Fail(report, self,
         "counter conservation broken: enqueued " +
             std::to_string(ctx.queue_enqueued) + " != dequeued " +
             std::to_string(ctx.queue_dequeued) + " + depth " +
             std::to_string(ctx.queue_depth) + " (events were lost)");
    return;
  }
  if (ctx.queue_depth > ctx.queue_capacity) {
    Fail(report, self,
         "depth " + std::to_string(ctx.queue_depth) +
             " exceeds the bounded capacity " +
             std::to_string(ctx.queue_capacity));
  }
}

bool NeedsIngestBatch(const AuditContext& ctx) {
  return ctx.delta != nullptr && ctx.ingest_batch_events >= 0;
}

void RunIngestBatch(const AuditContext& ctx, AuditReport* report) {
  const AuditValidator& self = *FindValidator("ingest.batch");
  const GraphDelta& d = *ctx.delta;
  const int64_t events = ctx.ingest_batch_events;
  const int64_t edge_events = ctx.ingest_batch_edge_events;
  if (edge_events < 0 || edge_events > events) {
    Fail(report, self,
         "batch claims " + std::to_string(edge_events) +
             " edge events out of " + std::to_string(events) + " total");
    return;
  }
  // Last-writer-wins coalescing can only cancel events, never invent
  // structural change: at most one net change per raw edge event.
  const int64_t net = static_cast<int64_t>(d.num_changes());
  if (net > edge_events) {
    Fail(report, self,
         "delta carries " + std::to_string(net) +
             " net changes from only " + std::to_string(edge_events) +
             " raw edge events (coalescing invented changes)");
    return;
  }
  // Streaming deltas are growth-only: pages are born when an edge first
  // names them; nothing in the event vocabulary deletes a page.
  if (d.new_num_nodes < d.old_num_nodes) {
    Fail(report, self,
         "batch shrinks the page set from " +
             std::to_string(d.old_num_nodes) + " to " +
             std::to_string(d.new_num_nodes) +
             " nodes (ingest deltas are growth-only)");
  }
}

}  // namespace

const char* AuditSeverityName(AuditSeverity severity) {
  return severity == AuditSeverity::kError ? "error" : "warning";
}

bool AuditReport::ok() const {
  for (const AuditIssue& issue : issues) {
    if (issue.severity == AuditSeverity::kError) return false;
  }
  return true;
}

bool AuditReport::Failed(std::string_view validator) const {
  for (const AuditIssue& issue : issues) {
    if (issue.validator == validator) return true;
  }
  return false;
}

std::vector<std::string> AuditReport::FailedValidators() const {
  std::vector<std::string> out;
  for (const AuditIssue& issue : issues) {
    if (std::find(out.begin(), out.end(), issue.validator) == out.end()) {
      out.push_back(issue.validator);
    }
  }
  return out;
}

void AuditReport::Merge(AuditReport other) {
  ran.insert(ran.end(), std::make_move_iterator(other.ran.begin()),
             std::make_move_iterator(other.ran.end()));
  issues.insert(issues.end(), std::make_move_iterator(other.issues.begin()),
                std::make_move_iterator(other.issues.end()));
}

std::string AuditReport::ToString() const {
  std::ostringstream os;
  os << (ok() ? "AUDIT PASS" : "AUDIT FAIL") << " (" << ran.size()
     << " validators, " << issues.size() << " issues)\n";
  for (const AuditIssue& issue : issues) {
    os << "  [" << AuditSeverityName(issue.severity) << "] "
       << issue.validator << ": " << issue.detail << "\n";
  }
  return os.str();
}

const std::vector<AuditValidator>& AuditRegistry() {
  static const std::vector<AuditValidator> kRegistry = {
      {"graph.offsets", AuditSeverity::kError,
       "CSR offset array: size num_nodes + 1, leading zero, monotone, "
       "total equals num_edges",
       NeedsGraph, RunGraphOffsets},
      {"graph.adjacency", AuditSeverity::kError,
       "per-row adjacency strictly ascending, in node range, self-loop "
       "free",
       NeedsGraph, RunGraphAdjacency},
      {"graph.transpose", AuditSeverity::kError,
       "cached transpose agrees edge-for-edge with the forward arrays",
       [](const AuditContext& ctx) {
         return ctx.graph != nullptr && ctx.graph->has_transpose();
       },
       RunGraphTranspose},
      {"graph.compressed_transpose", AuditSeverity::kError,
       "delta-gap varint transpose decodes to exactly the raw transpose "
       "arrays",
       [](const AuditContext& ctx) {
         return ctx.graph != nullptr &&
                ctx.graph->has_compressed_transpose();
       },
       RunGraphCompressedTranspose},
      {"graph.nonempty", AuditSeverity::kWarning,
       "graphs with nodes but no edges are suspicious inputs for the "
       "ranking pipeline",
       NeedsGraph, RunGraphNonEmpty},
      {"graph.permutation", AuditSeverity::kError,
       "claimed node relabeling is a bijection on [0, num_nodes)",
       NeedsPermutation, RunGraphPermutation},
      {"graph.permutation_roundtrip", AuditSeverity::kError,
       "Permute(perm) then Permute(inverse) reproduces the graph "
       "edge-for-edge",
       NeedsPermutation, RunGraphPermutationRoundtrip},
      {"delta.shape", AuditSeverity::kError,
       "added/removed lists sorted, duplicate-free, disjoint, in range, "
       "self-loop free",
       NeedsDelta, RunDeltaShape},
      {"delta.apply", AuditSeverity::kError,
       "delta applies exactly to the base graph: removals exist, "
       "additions are absent, dropped-node edges fully listed",
       NeedsBaseAndDelta, RunDeltaApply},
      {"delta.frontier", AuditSeverity::kError,
       "dirty frontier covers every row the delta touches (new pages, "
       "changed endpoints, out-neighbors of rescaled rows)",
       NeedsFrontier, RunDeltaFrontier},
      {"rank.finite", AuditSeverity::kError,
       "every score finite and non-negative", NeedsScores, RunRankFinite},
      {"rank.mass", AuditSeverity::kError,
       "L1 mass within tolerance of the declared scale convention",
       NeedsScores, RunRankMass},
      {"engine.residual", AuditSeverity::kError,
       "a vector declared converged is a fixed point of the full "
       "PageRank operator (dangling mass included) to ~tolerance",
       NeedsResidualContract, RunEngineResidual},
      {"engine.drift", AuditSeverity::kError,
       "DeltaPageRank's hidden-movement ledger stayed under its "
       "freeze_threshold * tolerance budget",
       NeedsDriftLedger, RunEngineDrift},
      {"serve.bundle.header", AuditSeverity::kError,
       "bundle magic, version, declared geometry and header CRC agree "
       "with the real image size",
       NeedsBundle, RunServeBundleHeader},
      {"serve.bundle.sections", AuditSeverity::kError,
       "section table lists each v1 section exactly once, aligned, "
       "exactly sized, in bounds and non-overlapping",
       NeedsBundle, RunServeBundleSections},
      {"serve.bundle.crc", AuditSeverity::kError,
       "payload CRC-32 over the section bytes matches the header",
       NeedsBundle, RunServeBundleCrc},
      {"serve.bundle.scores", AuditSeverity::kError,
       "quality/pagerank columns finite and non-negative, pagerank mass "
       "matches the header's declared scale",
       NeedsBundle, RunServeBundleScores},
      {"serve.bundle.index", AuditSeverity::kError,
       "order sections are score-descending row permutations and site "
       "postings partition the pages by their site ids",
       NeedsBundle, RunServeBundleIndex},
      {"ingest.queue", AuditSeverity::kError,
       "update-queue counter conservation: accepted events are either "
       "queued or drained, and depth stays within capacity",
       NeedsIngestQueue, RunIngestQueue},
      {"ingest.batch", AuditSeverity::kError,
       "coalesced batch contract: net delta no larger than its raw edge "
       "events, page set growth-only",
       NeedsIngestBatch, RunIngestBatch},
  };
  return kRegistry;
}

AuditReport RunAudit(const AuditContext& ctx) {
  AuditReport report;
  for (const AuditValidator& v : AuditRegistry()) {
    if (!v.applicable(ctx)) continue;
    report.ran.emplace_back(v.name);
    v.run(ctx, &report);
  }
  return report;
}

Result<AuditReport> RunAuditValidator(std::string_view name,
                                      const AuditContext& ctx) {
  const AuditValidator* v = FindValidator(name);
  if (v == nullptr) {
    return Status::NotFound("no audit validator named '" + std::string(name) +
                            "'");
  }
  if (!v->applicable(ctx)) {
    return Status::FailedPrecondition(
        "audit context lacks the inputs validator '" + std::string(name) +
        "' needs");
  }
  AuditReport report;
  report.ran.emplace_back(v->name);
  v->run(ctx, &report);
  return report;
}

AuditReport AuditGraph(const CsrGraph& graph) {
  AuditContext ctx;
  ctx.graph = &graph;
  return RunAudit(ctx);
}

AuditReport AuditDelta(const CsrGraph& base, const GraphDelta& delta,
                       const CsrGraph* applied,
                       const std::vector<uint8_t>* dirty_frontier) {
  AuditContext ctx;
  ctx.base = &base;
  ctx.delta = &delta;
  ctx.graph = applied;
  ctx.dirty_frontier = dirty_frontier;
  return RunAudit(ctx);
}

AuditReport AuditPermutation(const CsrGraph& graph,
                             const std::vector<NodeId>& perm) {
  AuditContext ctx;
  ctx.graph = &graph;
  ctx.permutation = &perm;
  AuditReport report;
  for (const char* name : {"graph.permutation", "graph.permutation_roundtrip"}) {
    const AuditValidator* v = FindValidator(name);
    report.ran.emplace_back(v->name);
    v->run(ctx, &report);
  }
  return report;
}

AuditReport AuditRankVector(const std::vector<double>& scores,
                            double expected_mass, double mass_tolerance) {
  AuditContext ctx;
  ctx.scores = &scores;
  ctx.expected_mass = expected_mass;
  ctx.mass_tolerance = mass_tolerance;
  return RunAudit(ctx);
}

AuditReport AuditScoreBundle(const uint8_t* data, size_t size,
                             double mass_tolerance) {
  AuditContext ctx;
  ctx.bundle_data = data;
  ctx.bundle_size = size;
  ctx.mass_tolerance = mass_tolerance;
  return RunAudit(ctx);
}

AuditReport AuditIngestQueue(uint64_t capacity, uint64_t depth,
                             uint64_t enqueued, uint64_t dequeued,
                             uint64_t rejected) {
  AuditContext ctx;
  ctx.has_ingest_queue = true;
  ctx.queue_capacity = capacity;
  ctx.queue_depth = depth;
  ctx.queue_enqueued = enqueued;
  ctx.queue_dequeued = dequeued;
  ctx.queue_rejected = rejected;
  return RunAudit(ctx);
}

AuditReport AuditIngestBatch(const CsrGraph& base, const GraphDelta& delta,
                             uint64_t num_events, uint64_t num_edge_events) {
  AuditContext ctx;
  ctx.base = &base;
  ctx.delta = &delta;
  ctx.ingest_batch_events = static_cast<int64_t>(num_events);
  ctx.ingest_batch_edge_events = static_cast<int64_t>(num_edge_events);
  // Run only the ingest.batch contract; the delta.* family is the
  // caller's separate AuditDelta pass (avoids double-reporting).
  const AuditValidator* v = FindValidator("ingest.batch");
  AuditReport report;
  report.ran.emplace_back(v->name);
  v->run(ctx, &report);
  return report;
}

}  // namespace qrank
