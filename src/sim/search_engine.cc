#include "sim/search_engine.h"

namespace qrank {

const char* RankingPolicyName(RankingPolicy policy) {
  switch (policy) {
    case RankingPolicy::kNone:
      return "none";
    case RankingPolicy::kPageRank:
      return "pagerank";
    case RankingPolicy::kInDegree:
      return "indegree";
    case RankingPolicy::kQualityEstimate:
      return "quality-estimate";
    case RankingPolicy::kRandom:
      return "random";
    case RankingPolicy::kTrueQuality:
      return "true-quality";
  }
  return "?";
}

Status ValidateSearchEngineOptions(const SearchEngineOptions& options) {
  if (options.policy == RankingPolicy::kNone) return Status::OK();
  if (options.search_traffic_fraction < 0.0 ||
      options.search_traffic_fraction > 1.0) {
    return Status::InvalidArgument(
        "search_traffic_fraction must be in [0, 1]");
  }
  if (options.results_per_query < 1) {
    return Status::InvalidArgument("results_per_query must be >= 1");
  }
  if (options.position_bias < 0.0) {
    return Status::InvalidArgument("position_bias must be >= 0");
  }
  if (!(options.rerank_period > 0.0)) {
    return Status::InvalidArgument("rerank_period must be positive");
  }
  if (options.quality_constant < 0.0) {
    return Status::InvalidArgument("quality_constant must be >= 0");
  }
  return Status::OK();
}

}  // namespace qrank
