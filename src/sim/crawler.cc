#include "sim/crawler.h"

#include <deque>

namespace qrank {

Result<CrawlResult> Crawl(const CsrGraph& truth,
                          const std::vector<NodeId>& seeds,
                          const CrawlerOptions& options) {
  for (NodeId s : seeds) {
    if (s >= truth.num_nodes()) {
      return Status::InvalidArgument("seed page out of range");
    }
  }

  CrawlResult result;
  result.crawled.assign(truth.num_nodes(), false);

  // BFS frontier of discovered-but-not-downloaded pages.
  std::vector<bool> discovered(truth.num_nodes(), false);
  std::deque<std::pair<NodeId, uint32_t>> frontier;  // (page, depth)
  for (NodeId s : seeds) {
    if (!discovered[s]) {
      discovered[s] = true;
      frontier.emplace_back(s, 0);
    }
  }

  EdgeList observed(truth.num_nodes());
  while (!frontier.empty()) {
    if (options.page_budget > 0 &&
        result.pages_crawled >= options.page_budget) {
      result.budget_exhausted = true;
      break;
    }
    auto [page, depth] = frontier.front();
    frontier.pop_front();

    result.crawled[page] = true;
    ++result.pages_crawled;
    for (NodeId target : truth.OutNeighbors(page)) {
      observed.Add(page, target);
      ++result.links_observed;
      bool depth_ok = options.max_depth == 0 || depth < options.max_depth;
      if (!discovered[target] && depth_ok) {
        discovered[target] = true;
        frontier.emplace_back(target, depth + 1);
      }
    }
  }

  observed.EnsureNodes(truth.num_nodes());
  QRANK_ASSIGN_OR_RETURN(result.graph, CsrGraph::FromEdgeList(observed));
  return result;
}

}  // namespace qrank
