// Search-engine mediation for the web simulator: the feedback loop the
// paper's introduction describes.
//
// "Since currently-popular pages are repeatedly returned by search
// engines as the top results, they are also the easiest for users to
// discover, which increases their popularity further" (Section 1). To
// study that loop — and the paper's conclusion that a quality-based
// ranking "can identify high-quality pages much earlier … and shorten
// the time it takes for new pages to get noticed" — the simulator can
// route a fraction of all visits through a search engine that exposes
// pages according to a pluggable ranking policy and a position-bias
// click model.
//
// Exposure model: a search-mediated visit lands on the page at result
// position k (0-based) with probability proportional to
// (k + 1)^-position_bias, truncated to the top `results_per_query`
// positions — the standard discrete power-law click model.

#ifndef QRANK_SIM_SEARCH_ENGINE_H_
#define QRANK_SIM_SEARCH_ENGINE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace qrank {

/// What the simulated search engine ranks by.
enum class RankingPolicy {
  /// No search mediation (pure user-visitation model).
  kNone,
  /// Current PageRank of the live link graph — the PageRank-era status
  /// quo the paper critiques.
  kPageRank,
  /// Raw in-link count (first-generation link popularity).
  kInDegree,
  /// The paper's quality estimator computed from the engine's own
  /// periodic PageRank history (Equation 1 with the configured C).
  kQualityEstimate,
  /// Uniformly random ranking (exposure control).
  kRandom,
  /// Oracle: the latent true quality (upper bound, simulation-only).
  kTrueQuality,
};

const char* RankingPolicyName(RankingPolicy policy);

struct SearchEngineOptions {
  RankingPolicy policy = RankingPolicy::kNone;

  /// Fraction of all visit traffic routed through the search engine
  /// (the paper cites 75% of searches handled by Google); the remaining
  /// traffic follows the organic popularity-proportional process.
  double search_traffic_fraction = 0.5;

  /// Result-list depth users ever click through to.
  uint32_t results_per_query = 50;

  /// Exponent of the position-bias click model; larger = clicks
  /// concentrate harder on the top results. 1.0 is Zipf.
  double position_bias = 1.0;

  /// The engine recrawls and reranks every this many time units
  /// (simulates periodic index rebuilds).
  double rerank_period = 1.0;

  /// Equation 1 constant used by the kQualityEstimate policy.
  double quality_constant = 0.1;
};

/// Validates a SearchEngineOptions block.
Status ValidateSearchEngineOptions(const SearchEngineOptions& options);

}  // namespace qrank

#endif  // QRANK_SIM_SEARCH_ENGINE_H_
