// Agent-level web-evolution simulator.
//
// This is the substitute for the paper's experimental substrate (four
// crawl snapshots of 154 real Web sites): it *implements the paper's own
// user-visitation model* as a discrete-event process and exposes the
// evolving link structure, so the Section 8 evaluation can run against
// snapshots whose ground-truth page quality is known.
//
// World:
//   * n users; user u owns a "home page" (page id u, born at t = 0).
//   * Pages carry a latent quality Q(p) ~ Beta(alpha, beta), fixed at
//     birth (the paper's assumption: quality is inherent and constant).
//   * Per step dt, page p receives Poisson((r * P(p) + e) * dt) visits
//     (Proposition 1: V = r * P; `e` is an optional exploration rate),
//     each by a uniformly random user (Proposition 2).
//   * A visitor who was unaware of p becomes aware; with probability
//     Q(p) they like it and create the link home(u) -> p (Definition 1:
//     quality is the like-given-first-discovery probability).
//   * Popularity P(p) = likes(p) / n (Definition 2), so in-links from
//     home pages are exactly the paper's popularity-by-link-count.
//   * Optional page births (content pages authored by existing users,
//     seeded with `seed_likers` initial likers — "one user liked the
//     page at its creation") and optional forgetting (Section 9.1): a
//     liker forgets at rate `forget_rate`, dropping the link and their
//     awareness.
//
// The link structure lives in a DynamicGraph, so any instant can be
// snapshotted to an immutable CsrGraph — the in-memory equivalent of
// "downloading the Web multiple times".

#ifndef QRANK_SIM_WEB_SIMULATOR_H_
#define QRANK_SIM_WEB_SIMULATOR_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/dynamic_graph.h"
#include "sim/search_engine.h"

namespace qrank {

struct WebSimulatorOptions {
  /// Number of Web users n; also the number of home pages born at t=0.
  uint32_t num_users = 2000;

  /// Extra authorless-content pages born at t=0 (beyond the home pages).
  uint32_t initial_content_pages = 0;

  /// Simulation step. Visit counts are Poisson-sampled per step, so dt
  /// only trades resolution for speed (must be > 0).
  double time_step = 0.25;

  /// Visit-rate normalization as a multiple of n: r = visit_rate_factor
  /// * n. The paper's Figures use r = n (factor 1).
  double visit_rate_factor = 1.0;

  /// Baseline exploration visits per page per unit time, independent of
  /// popularity (0 reproduces the pure model, where an unliked page is
  /// never discovered).
  double exploration_visit_rate = 0.0;

  /// Users who like each page unconditionally at its birth (P(p,0) =
  /// seed_likers / n > 0, required by the model). Must be >= 1 and
  /// < num_users.
  uint32_t seed_likers = 1;

  /// New content pages per unit time (Poisson).
  double page_birth_rate = 0.0;

  /// Rate at which an individual liker forgets a page (Section 9.1
  /// extension); 0 disables forgetting.
  double forget_rate = 0.0;

  /// Latent quality distribution Beta(quality_alpha, quality_beta),
  /// clamped to [0.01, 0.99].
  double quality_alpha = 1.3;
  double quality_beta = 3.0;

  /// Optional search-engine mediation (Section 1's feedback loop):
  /// when search.policy != kNone, search.search_traffic_fraction of the
  /// visit volume is steered by a ranking instead of raw popularity.
  SearchEngineOptions search;

  uint64_t seed = 42;

  /// Executors for the per-page visit-sampling pass: 0 = process default
  /// (SetDefaultThreads / hardware concurrency), 1 = serial. Each page
  /// draws from a private RNG stream split from (seed, step, page), and
  /// draws are applied serially in page order, so the trajectory is
  /// identical for every value of num_threads.
  int num_threads = 0;
};

/// Per-page observable state.
struct PageState {
  double quality = 0.0;     // latent ground truth Q(p)
  double birth_time = 0.0;
  uint32_t likes = 0;       // |users who currently like p| = n * P(p)
  uint32_t aware = 0;       // |users aware of p| = n * A(p)
  uint64_t visits = 0;      // cumulative visit count
};

class WebSimulator {
 public:
  static Result<WebSimulator> Create(const WebSimulatorOptions& options);

  const WebSimulatorOptions& options() const { return options_; }
  double now() const { return now_; }
  NodeId num_pages() const { return static_cast<NodeId>(pages_.size()); }

  /// Advances in whole steps until now() + time_step would exceed `t`.
  Status AdvanceTo(double t);

  /// Runs exactly one step.
  void Step();

  /// The evolving link structure (home(u) -> p like-links).
  const DynamicGraph& graph() const { return graph_; }

  /// CSR snapshot of the current instant.
  Result<CsrGraph> Snapshot() const { return graph_.SnapshotAt(now_); }

  const PageState& page(NodeId p) const { return pages_[p]; }
  const std::vector<PageState>& pages() const { return pages_; }

  /// Ground-truth popularity P(p) = likes / n (Definition 2).
  double TruePopularity(NodeId p) const {
    return static_cast<double>(pages_[p].likes) /
           static_cast<double>(options_.num_users);
  }

  /// Ground-truth awareness A(p) = aware / n (Definition 4).
  double TrueAwareness(NodeId p) const {
    return static_cast<double>(pages_[p].aware) /
           static_cast<double>(options_.num_users);
  }

  double TrueQuality(NodeId p) const { return pages_[p].quality; }

  /// Injects a brand-new content page with an explicit quality (used by
  /// the new-page-discovery example and tests). Returns the page id.
  Result<NodeId> AddPageWithQuality(double quality);

  /// Total visit events processed so far.
  uint64_t total_visits() const { return total_visits_; }
  /// Total like (link-creation) events so far.
  uint64_t total_likes_created() const { return total_likes_created_; }
  /// Total forget (link-removal) events so far.
  uint64_t total_forgets() const { return total_forgets_; }
  /// Visits that arrived through the search engine.
  uint64_t total_search_visits() const { return total_search_visits_; }
  /// Number of index rebuilds the simulated search engine performed.
  uint64_t rerank_count() const { return rerank_count_; }

  /// The search engine's current result list (top pages in rank order);
  /// empty when search is off or before the first rerank.
  const std::vector<NodeId>& search_results() const {
    return search_results_;
  }

 private:
  WebSimulator(const WebSimulatorOptions& options, Rng rng);

  Status Initialize();

  /// Creates one content page at time `t` with quality `q`; seeds
  /// awareness and likes.
  Result<NodeId> BirthPage(double t, double quality);

  /// One visit by user `u` to page `p` at time `t`; the like decision
  /// draws from the simulator's main RNG stream.
  void VisitPage(uint32_t u, NodeId p, double t);

  /// Visit with a pre-drawn like variate (the parallel sampling pass
  /// draws it from the page's stream): the user likes the page iff
  /// like_draw < quality and they just became aware of it.
  void ApplyVisit(uint32_t u, NodeId p, double t, double like_draw);

  /// One liker of `p` forgets it.
  void ForgetOne(NodeId p, double t);

  double DrawQuality();

  /// Rebuilds the search result list per the configured policy.
  Status Rerank();

  /// Dispatches `count` search-mediated visits through the click model.
  void ServeSearchVisits(uint64_t count, double t);

  WebSimulatorOptions options_;
  Rng rng_;
  double now_ = 0.0;
  uint64_t steps_taken_ = 0;  // seeds the per-step per-page RNG streams
  DynamicGraph graph_;
  std::vector<PageState> pages_;
  /// aware_[u] = set of page ids user u has visited (and not forgotten).
  std::vector<std::unordered_set<NodeId>> aware_;
  /// likers_[p] = users currently liking p (swap-remove on forget).
  std::vector<std::vector<uint32_t>> likers_;

  uint64_t total_visits_ = 0;
  uint64_t total_likes_created_ = 0;
  uint64_t total_forgets_ = 0;

  // --- Search-engine state (active when options_.search.policy != kNone).
  std::vector<NodeId> search_results_;  // rank order, truncated
  AliasTable position_sampler_;         // position-bias click model
  double next_rerank_time_ = 0.0;
  uint64_t total_search_visits_ = 0;
  uint64_t rerank_count_ = 0;
  /// PageRank of the previous index build (kQualityEstimate policy).
  std::vector<double> previous_pagerank_;
};

}  // namespace qrank

#endif  // QRANK_SIM_WEB_SIMULATOR_H_
