#include "sim/web_simulator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/parallel_for.h"
#include "rank/baselines.h"
#include "rank/pagerank.h"
#include "rank/rank_vector.h"

namespace qrank {

namespace {

ParallelOptions SimParallel(const WebSimulatorOptions& options) {
  ParallelOptions par;
  par.num_threads = options.num_threads;
  par.grain = 256;  // pages per block; fixed so draws never depend on threads
  return par;
}

}  // namespace

Result<WebSimulator> WebSimulator::Create(const WebSimulatorOptions& options) {
  if (options.num_users < 2) {
    return Status::InvalidArgument("need at least 2 users");
  }
  if (!(options.time_step > 0.0)) {
    return Status::InvalidArgument("time_step must be positive");
  }
  if (!(options.visit_rate_factor > 0.0)) {
    return Status::InvalidArgument("visit_rate_factor must be positive");
  }
  if (options.exploration_visit_rate < 0.0) {
    return Status::InvalidArgument("exploration_visit_rate must be >= 0");
  }
  if (options.seed_likers < 1 || options.seed_likers >= options.num_users) {
    return Status::InvalidArgument("seed_likers must be in [1, num_users)");
  }
  if (options.page_birth_rate < 0.0) {
    return Status::InvalidArgument("page_birth_rate must be >= 0");
  }
  if (options.forget_rate < 0.0) {
    return Status::InvalidArgument("forget_rate must be >= 0");
  }
  if (options.quality_alpha <= 0.0 || options.quality_beta <= 0.0) {
    return Status::InvalidArgument("quality Beta parameters must be positive");
  }
  QRANK_RETURN_NOT_OK(ValidateSearchEngineOptions(options.search));
  WebSimulator sim(options, Rng(options.seed));
  QRANK_RETURN_NOT_OK(sim.Initialize());
  return sim;
}

WebSimulator::WebSimulator(const WebSimulatorOptions& options, Rng rng)
    : options_(options), rng_(rng) {}

double WebSimulator::DrawQuality() {
  double q = rng_.Beta(options_.quality_alpha, options_.quality_beta);
  return std::clamp(q, 0.01, 0.99);
}

Status WebSimulator::Initialize() {
  const uint32_t n = options_.num_users;
  aware_.resize(n);

  // Home pages: ids [0, n), born at t = 0. Reserve the node slots first,
  // then seed likes (seed likers need existing home pages to link from).
  graph_.AddNodes(n, 0.0);
  pages_.resize(n);
  likers_.resize(n);
  for (NodeId p = 0; p < n; ++p) {
    pages_[p].quality = DrawQuality();
    pages_[p].birth_time = 0.0;
  }
  for (NodeId p = 0; p < n; ++p) {
    // The author is aware of (and likes) their own page implicitly; that
    // self-endorsement carries no link. Seed external likers instead.
    uint32_t seeded = 0;
    while (seeded < options_.seed_likers) {
      uint32_t u = static_cast<uint32_t>(rng_.UniformUint64(n));
      if (u == p) continue;  // would be a self-link
      if (!aware_[u].insert(p).second) continue;  // already aware
      Status st = graph_.AddEdge(u, p, 0.0);
      if (!st.ok()) return st;
      likers_[p].push_back(u);
      ++pages_[p].likes;
      ++pages_[p].aware;
      ++total_likes_created_;
      ++seeded;
    }
  }

  for (uint32_t i = 0; i < options_.initial_content_pages; ++i) {
    QRANK_ASSIGN_OR_RETURN(NodeId ignored, BirthPage(0.0, DrawQuality()));
    (void)ignored;
  }
  return Status::OK();
}

Result<NodeId> WebSimulator::BirthPage(double t, double quality) {
  if (!(quality > 0.0) || quality > 1.0) {
    return Status::InvalidArgument("quality must be in (0, 1]");
  }
  const uint32_t n = options_.num_users;
  NodeId p = graph_.AddNode(t);
  pages_.push_back(PageState{});
  likers_.emplace_back();
  PageState& page = pages_.back();
  page.quality = quality;
  page.birth_time = t;

  uint32_t seeded = 0;
  while (seeded < options_.seed_likers) {
    uint32_t u = static_cast<uint32_t>(rng_.UniformUint64(n));
    if (!aware_[u].insert(p).second) continue;
    Status st = graph_.AddEdge(u, p, t);
    if (!st.ok()) return st;
    likers_[p].push_back(u);
    ++page.likes;
    ++page.aware;
    ++total_likes_created_;
    ++seeded;
  }
  return p;
}

Result<NodeId> WebSimulator::AddPageWithQuality(double quality) {
  return BirthPage(now_, quality);
}

void WebSimulator::VisitPage(uint32_t u, NodeId p, double t) {
  ApplyVisit(u, p, t, rng_.UniformDouble());
}

void WebSimulator::ApplyVisit(uint32_t u, NodeId p, double t,
                              double like_draw) {
  ++total_visits_;
  ++pages_[p].visits;
  if (!aware_[u].insert(p).second) {
    return;  // repeat visit by an already-aware user: no new signal
  }
  ++pages_[p].aware;
  if (like_draw < pages_[p].quality && u != p) {
    Status st = graph_.AddEdge(u, p, t);
    if (st.ok()) {
      likers_[p].push_back(u);
      ++pages_[p].likes;
      ++total_likes_created_;
    }
  }
}

void WebSimulator::ForgetOne(NodeId p, double t) {
  auto& likers = likers_[p];
  if (likers.empty()) return;
  size_t idx = static_cast<size_t>(rng_.UniformUint64(likers.size()));
  uint32_t u = likers[idx];
  likers[idx] = likers.back();
  likers.pop_back();
  Status st = graph_.RemoveEdge(u, p, t);
  QRANK_CHECK(st.ok());
  aware_[u].erase(p);
  --pages_[p].likes;
  --pages_[p].aware;
  ++total_forgets_;
}

Status WebSimulator::Rerank() {
  QRANK_ASSIGN_OR_RETURN(CsrGraph snapshot, Snapshot());
  const NodeId n_pages = snapshot.num_nodes();
  std::vector<double> scores;

  switch (options_.search.policy) {
    case RankingPolicy::kNone:
      return Status::OK();
    case RankingPolicy::kInDegree:
      scores = InDegreeScores(snapshot);
      break;
    case RankingPolicy::kRandom:
      scores.resize(n_pages);
      for (double& s : scores) s = rng_.UniformDouble();
      break;
    case RankingPolicy::kTrueQuality:
      scores.resize(n_pages);
      for (NodeId p = 0; p < n_pages; ++p) scores[p] = pages_[p].quality;
      break;
    case RankingPolicy::kPageRank:
    case RankingPolicy::kQualityEstimate: {
      QRANK_ASSIGN_OR_RETURN(PageRankResult pr,
                             ComputePageRank(snapshot, PageRankOptions{}));
      if (options_.search.policy == RankingPolicy::kPageRank) {
        scores = std::move(pr.scores);
      } else {
        // Equation 1 from the engine's own index history: pages with a
        // previous index entry get the C * dPR/PR correction; pages new
        // to the index fall back to current PageRank.
        scores = pr.scores;
        const double c = options_.search.quality_constant;
        for (size_t p = 0; p < previous_pagerank_.size() && p < scores.size();
             ++p) {
          double prev = previous_pagerank_[p];
          if (prev > 0.0) {
            scores[p] = c * (pr.scores[p] - prev) / prev + pr.scores[p];
            if (scores[p] < 0.0) scores[p] = 0.0;
          }
        }
        previous_pagerank_ = std::move(pr.scores);
      }
      break;
    }
  }

  const uint32_t depth = std::min<uint32_t>(
      options_.search.results_per_query, n_pages);
  search_results_ = TopK(scores, depth);
  std::vector<double> position_weights(search_results_.size());
  for (size_t k = 0; k < position_weights.size(); ++k) {
    position_weights[k] =
        std::pow(static_cast<double>(k + 1), -options_.search.position_bias);
  }
  position_sampler_ = AliasTable(position_weights);
  ++rerank_count_;
  return Status::OK();
}

void WebSimulator::ServeSearchVisits(uint64_t count, double t) {
  if (search_results_.empty()) return;
  const uint32_t n = options_.num_users;
  for (uint64_t i = 0; i < count; ++i) {
    NodeId p = search_results_[position_sampler_.Sample(&rng_)];
    uint32_t u = static_cast<uint32_t>(rng_.UniformUint64(n));
    ++total_search_visits_;
    VisitPage(u, p, t);
  }
}

void WebSimulator::Step() {
  const double dt = options_.time_step;
  const double t_end = now_ + dt;
  const uint32_t n = options_.num_users;
  const double r = options_.visit_rate_factor * static_cast<double>(n);
  const bool search_on = options_.search.policy != RankingPolicy::kNone;
  const double organic_share =
      search_on ? 1.0 - options_.search.search_traffic_fraction : 1.0;

  // Page births first (they participate in this step's visits).
  if (options_.page_birth_rate > 0.0) {
    uint64_t births = rng_.Poisson(options_.page_birth_rate * dt);
    for (uint64_t i = 0; i < births; ++i) {
      Result<NodeId> res = BirthPage(t_end, DrawQuality());
      QRANK_CHECK(res.ok());
    }
  }

  // Periodic index rebuild.
  if (search_on && now_ >= next_rerank_time_) {
    Status st = Rerank();
    QRANK_CHECK(st.ok());
    next_rerank_time_ = now_ + options_.search.rerank_period;
  }

  // Organic visits: page p draws Poisson((r * P(p) + e) * dt) uniformly
  // random visitors (Propositions 1 + 2), scaled down by the share of
  // traffic the search engine captures. Rates are frozen at the step
  // start (standard tau-leaping).
  //
  // Two phases so the hot sampling loop can run on the parallel
  // substrate without perturbing the trajectory: (1) every page draws
  // its visit count, visitors, and like variates from a private stream
  // split from (seed, step, page) — embarrassingly parallel over fixed
  // page blocks, and independent of thread count by construction;
  // (2) the draws are applied serially in ascending page order (awareness
  // sets, the like graph, and counters are shared mutable state).
  const NodeId num_pages_now = num_pages();
  const double total_popularity = ParallelReduce(
      num_pages_now,
      [&](size_t lo, size_t hi) {
        double sum = 0.0;
        for (size_t p = lo; p < hi; ++p) {
          sum += static_cast<double>(pages_[p].likes) /
                 static_cast<double>(n);
        }
        return sum;
      },
      SimParallel(options_));

  struct PendingVisit {
    uint32_t user;
    double like_draw;
  };
  std::vector<std::vector<PendingVisit>> pending(num_pages_now);
  uint64_t stream_base = options_.seed;
  (void)SplitMix64Next(&stream_base);
  stream_base ^= steps_taken_ * 0x9E3779B97F4A7C15ULL;
  ParallelFor(
      num_pages_now,
      [&](size_t p) {
        double popularity =
            static_cast<double>(pages_[p].likes) / static_cast<double>(n);
        double lambda = (organic_share * r * popularity +
                         options_.exploration_visit_rate) *
                        dt;
        if (lambda <= 0.0) return;
        uint64_t stream = stream_base + p;
        Rng page_rng(SplitMix64Next(&stream));
        uint64_t visits = page_rng.Poisson(lambda);
        if (visits == 0) return;
        auto& buf = pending[p];
        buf.reserve(visits);
        for (uint64_t k = 0; k < visits; ++k) {
          buf.push_back({static_cast<uint32_t>(page_rng.UniformUint64(n)),
                         page_rng.UniformDouble()});
        }
      },
      SimParallel(options_));
  for (NodeId p = 0; p < num_pages_now; ++p) {
    for (const PendingVisit& visit : pending[p]) {
      ApplyVisit(visit.user, p, t_end, visit.like_draw);
    }
  }

  // Search-mediated visits: the captured share of the same total visit
  // volume, steered by the ranking + click model instead of popularity.
  if (search_on) {
    double lambda = options_.search.search_traffic_fraction * r *
                    total_popularity * dt;
    if (lambda > 0.0) {
      ServeSearchVisits(rng_.Poisson(lambda), t_end);
    }
  }

  // Forgetting (Section 9.1 extension).
  if (options_.forget_rate > 0.0) {
    for (NodeId p = 0; p < num_pages_now; ++p) {
      if (pages_[p].likes == 0) continue;
      uint64_t forgets = rng_.Poisson(options_.forget_rate *
                                      static_cast<double>(pages_[p].likes) *
                                      dt);
      forgets = std::min<uint64_t>(forgets, pages_[p].likes);
      for (uint64_t k = 0; k < forgets; ++k) ForgetOne(p, t_end);
    }
  }

  now_ = t_end;
  ++steps_taken_;
}

Status WebSimulator::AdvanceTo(double t) {
  if (t < now_) {
    return Status::InvalidArgument("cannot advance backwards in time");
  }
  // Tolerate floating-point accumulation at the boundary.
  while (now_ + options_.time_step <= t + 1e-12) {
    Step();
  }
  return Status::OK();
}

}  // namespace qrank
