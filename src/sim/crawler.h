// Simulated Web crawler: the paper's snapshot-acquisition methodology.
//
// Section 8.1: "We downloaded pages from each site until we could not
// reach any more pages from the site or we downloaded the maximum of
// 200,000 pages." A crawl is therefore a *partial observation* of the
// true link structure: BFS from seed pages, bounded by a page budget,
// seeing only links of downloaded pages.
//
// Crawler turns a true graph (e.g. a WebSimulator snapshot) into what a
// crawl would capture, so experiments can measure how robust the
// quality estimator is to crawl incompleteness — a confounder the
// paper's real dataset certainly contained.

#ifndef QRANK_SIM_CRAWLER_H_
#define QRANK_SIM_CRAWLER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"

namespace qrank {

struct CrawlerOptions {
  /// Maximum pages downloaded (0 = unlimited). The paper used 200,000
  /// per site.
  uint64_t page_budget = 0;

  /// Maximum BFS depth from the seeds (0 = unlimited).
  uint32_t max_depth = 0;

  /// If true, edges into crawled pages FROM uncrawled pages are
  /// unknown (a crawler only sees out-links of pages it downloaded);
  /// always the case — flag reserved for symmetric experiments where
  /// the transpose is also available (e.g. a backlink API).
  bool observe_backlinks = false;
};

struct CrawlResult {
  /// Crawled subgraph over the ORIGINAL page ids (uncrawled pages keep
  /// their ids but have no edges and are not marked crawled). This
  /// preserves id alignment across snapshots, as the paper's common-page
  /// matching requires.
  CsrGraph graph;
  /// crawled[p] is true iff p was downloaded.
  std::vector<bool> crawled;
  uint64_t pages_crawled = 0;
  /// Links seen from crawled pages (including links to uncrawled
  /// frontier pages, which a crawler knows exist).
  uint64_t links_observed = 0;
  /// True iff the crawl stopped because of the budget rather than
  /// frontier exhaustion.
  bool budget_exhausted = false;
};

/// Crawls `truth` by BFS from `seeds`. Seeds out of range are rejected;
/// duplicate seeds are fine. An empty seed list yields an empty crawl.
Result<CrawlResult> Crawl(const CsrGraph& truth,
                          const std::vector<NodeId>& seeds,
                          const CrawlerOptions& options = {});

}  // namespace qrank

#endif  // QRANK_SIM_CRAWLER_H_
