// Classic fixed-step RK4 integrator.
//
// Used to cross-validate the closed-form solutions of visitation_model.h
// against direct integration of the underlying ODEs, and to evaluate
// model extensions (forgetting_model.h) that have no closed form.

#ifndef QRANK_MODEL_ODE_H_
#define QRANK_MODEL_ODE_H_

#include <functional>
#include <vector>

#include "common/status.h"

namespace qrank {

/// dy/dt = f(t, y), scalar state.
using OdeRhs = std::function<double(double t, double y)>;

struct OdeSolution {
  std::vector<double> times;
  std::vector<double> values;
  /// values.back(), for convenience.
  double final_value = 0.0;
};

/// Integrates from (t0, y0) to t1 with `steps` RK4 steps, recording every
/// state. Requires t1 > t0 and steps >= 1.
Result<OdeSolution> IntegrateRk4(const OdeRhs& f, double t0, double y0,
                                 double t1, size_t steps);

}  // namespace qrank

#endif  // QRANK_MODEL_ODE_H_
