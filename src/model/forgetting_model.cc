#include "model/forgetting_model.h"

#include <cmath>

namespace qrank {

Result<ForgettingModel> ForgettingModel::Create(
    const ForgettingParams& params) {
  // Reuse the base validation for quality/n/r/P0.
  Result<VisitationModel> base = VisitationModel::Create(params.base);
  if (!base.ok()) return base.status();
  if (params.forget_rate < 0.0) {
    return Status::InvalidArgument("forget_rate must be >= 0");
  }
  return ForgettingModel(params);
}

ForgettingModel::ForgettingModel(const ForgettingParams& params)
    : params_(params),
      equilibrium_(params.base.quality -
                   params.forget_rate * params.base.num_users /
                       params.base.visit_rate),
      rate_(params.base.visit_rate / params.base.num_users) {}

double ForgettingModel::Popularity(double t) const {
  const double p0 = params_.base.initial_popularity;
  if (equilibrium_ == 0.0) {
    // dP/dt = -k P^2  =>  P = P0 / (1 + k P0 t).
    return p0 / (1.0 + rate_ * p0 * t);
  }
  // Logistic toward the (possibly negative) equilibrium:
  //   P(t) = P* / (1 + (P*/P0 - 1) e^{-k P* t}).
  double c = equilibrium_ / p0 - 1.0;
  return equilibrium_ / (1.0 + c * std::exp(-rate_ * equilibrium_ * t));
}

double ForgettingModel::PopularityDerivative(double t) const {
  double p = Popularity(t);
  return rate_ * p * (equilibrium_ - p);
}

double ForgettingModel::EstimatorSum(double t) const {
  double p = Popularity(t);
  if (p <= 0.0) return equilibrium_;
  // I + P with I = (n/r)(dP/dt)/P = (P* - P); the sum is exactly P* for
  // all t — the estimator's asymptotic target under forgetting.
  return PopularityDerivative(t) / (rate_ * p) + p;
}

double ForgettingModel::AsymptoticEstimatorBias() const {
  return params_.base.quality - equilibrium_;
}

}  // namespace qrank
