// Population-level aggregates of the user-visitation model.
//
// The per-page model (visitation_model.h) describes one page with known
// quality. A real Web is a *population* of pages with quality drawn
// from a distribution (the simulator uses Beta(alpha, beta)). This
// module integrates the closed-form model over that distribution to
// answer population questions analytically:
//
//   * the expected popularity of a random page at age a,
//   * the life-stage mix (infant/expansion/maturity) of an age cohort,
//   * the same quantities for a population with uniformly mixed ages
//     (the stationary regime under a constant page-birth rate),
//
// which predict aggregate simulator statistics and calibrate experiment
// configurations (e.g. how long until X% of pages mature).

#ifndef QRANK_MODEL_POPULATION_MODEL_H_
#define QRANK_MODEL_POPULATION_MODEL_H_

#include <cstddef>

#include "common/status.h"
#include "model/visitation_model.h"

namespace qrank {

struct PopulationParams {
  /// Quality ~ Beta(quality_alpha, quality_beta) (both > 0).
  double quality_alpha = 1.3;
  double quality_beta = 3.0;
  /// Shared visitation-model parameters (see VisitationParams).
  double num_users = 1e6;
  double visit_rate = 1e6;
  double initial_popularity = 1e-4;
};

/// Fractions of a cohort in each life stage; sums to 1.
struct StageMix {
  double infant = 0.0;
  double expansion = 0.0;
  double maturity = 0.0;
};

class PopulationModel {
 public:
  static Result<PopulationModel> Create(const PopulationParams& params,
                                        size_t quadrature_points = 256);

  const PopulationParams& params() const { return params_; }

  /// Mean quality of the population, alpha / (alpha + beta).
  double MeanQuality() const;

  /// E_q[ P(q, age) ]: expected popularity of a random page at age
  /// `age` (>= 0).
  double ExpectedPopularityAtAge(double age) const;

  /// Life-stage fractions of the cohort of age `age`, with the given
  /// awareness thresholds (defaults as in VisitationModel::StageAt).
  StageMix StageMixAtAge(double age, double infant_threshold = 0.1,
                         double maturity_threshold = 0.9) const;

  /// Expected popularity of a random page in a population whose ages
  /// are uniform on [0, max_age] (constant birth rate, observed at
  /// max_age). Integrates ExpectedPopularityAtAge over age with
  /// `age_steps` Simpson panels.
  double ExpectedPopularityMixedAges(double max_age,
                                     size_t age_steps = 64) const;

  /// Stage mix of the uniform-age population.
  StageMix StageMixMixedAges(double max_age, size_t age_steps = 64,
                             double infant_threshold = 0.1,
                             double maturity_threshold = 0.9) const;

 private:
  PopulationModel(const PopulationParams& params, size_t quadrature_points);

  /// Gauss-Legendre-free: midpoint quadrature over quality with Beta
  /// pdf weights, nodes fixed at construction.
  template <typename F>
  double IntegrateOverQuality(F&& f) const {
    double sum = 0.0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      sum += weights_[i] * f(nodes_[i]);
    }
    return sum;
  }

  PopulationParams params_;
  std::vector<double> nodes_;    // quality abscissae in (0, 1)
  std::vector<double> weights_;  // Beta pdf * panel width, normalized
};

/// Beta(a, b) probability density at x in (0, 1) (lgamma-based).
double BetaPdf(double x, double a, double b);

}  // namespace qrank

#endif  // QRANK_MODEL_POPULATION_MODEL_H_
