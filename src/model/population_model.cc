#include "model/population_model.h"

#include <cmath>

namespace qrank {

double BetaPdf(double x, double a, double b) {
  if (x <= 0.0 || x >= 1.0) return 0.0;
  double log_norm = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  return std::exp(log_norm + (a - 1.0) * std::log(x) +
                  (b - 1.0) * std::log(1.0 - x));
}

Result<PopulationModel> PopulationModel::Create(
    const PopulationParams& params, size_t quadrature_points) {
  if (params.quality_alpha <= 0.0 || params.quality_beta <= 0.0) {
    return Status::InvalidArgument("Beta parameters must be positive");
  }
  if (!(params.num_users > 0.0) || !(params.visit_rate > 0.0)) {
    return Status::InvalidArgument("num_users and visit_rate must be > 0");
  }
  if (!(params.initial_popularity > 0.0) || params.initial_popularity >= 1.0) {
    return Status::InvalidArgument("initial_popularity must be in (0, 1)");
  }
  if (quadrature_points < 8) {
    return Status::InvalidArgument("need >= 8 quadrature points");
  }
  return PopulationModel(params, quadrature_points);
}

PopulationModel::PopulationModel(const PopulationParams& params,
                                 size_t quadrature_points)
    : params_(params) {
  // Midpoint rule over (eps, 1 - eps); the model requires P0 <= q, so
  // qualities below initial_popularity are clamped up (those pages start
  // saturated). Weights carry the Beta pdf and are renormalized so the
  // discrete measure is exactly a distribution.
  const double lo = 1e-4;
  const double hi = 1.0 - 1e-4;
  const double h = (hi - lo) / static_cast<double>(quadrature_points);
  nodes_.reserve(quadrature_points);
  weights_.reserve(quadrature_points);
  double total = 0.0;
  for (size_t i = 0; i < quadrature_points; ++i) {
    double q = lo + h * (static_cast<double>(i) + 0.5);
    double w = BetaPdf(q, params.quality_alpha, params.quality_beta) * h;
    nodes_.push_back(q);
    weights_.push_back(w);
    total += w;
  }
  for (double& w : weights_) w /= total;
}

double PopulationModel::MeanQuality() const {
  return params_.quality_alpha /
         (params_.quality_alpha + params_.quality_beta);
}

namespace {

// Popularity of a quality-q page at `age`, honoring the P0 <= q
// constraint by clamping (a page whose quality is below the seed
// popularity starts — and stays — at its quality).
double PopularityAtAge(const PopulationParams& params, double q,
                       double age) {
  double p0 = params.initial_popularity;
  if (q <= p0) return q;
  VisitationParams vp;
  vp.quality = q;
  vp.num_users = params.num_users;
  vp.visit_rate = params.visit_rate;
  vp.initial_popularity = p0;
  // Inline Theorem 1 (cheaper than constructing a model per node).
  double growth = params.visit_rate / params.num_users * q;
  double c = q / p0 - 1.0;
  return q / (1.0 + c * std::exp(-growth * age));
}

}  // namespace

double PopulationModel::ExpectedPopularityAtAge(double age) const {
  return IntegrateOverQuality(
      [&](double q) { return PopularityAtAge(params_, q, age); });
}

StageMix PopulationModel::StageMixAtAge(double age, double infant_threshold,
                                        double maturity_threshold) const {
  StageMix mix;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    double q = nodes_[i];
    double awareness = PopularityAtAge(params_, q, age) / q;
    if (awareness < infant_threshold) {
      mix.infant += weights_[i];
    } else if (awareness > maturity_threshold) {
      mix.maturity += weights_[i];
    } else {
      mix.expansion += weights_[i];
    }
  }
  return mix;
}

double PopulationModel::ExpectedPopularityMixedAges(double max_age,
                                                    size_t age_steps) const {
  if (max_age <= 0.0 || age_steps < 1) return ExpectedPopularityAtAge(0.0);
  double h = max_age / static_cast<double>(age_steps);
  double sum = 0.0;
  for (size_t i = 0; i < age_steps; ++i) {
    double age = h * (static_cast<double>(i) + 0.5);
    sum += ExpectedPopularityAtAge(age);
  }
  return sum / static_cast<double>(age_steps);
}

StageMix PopulationModel::StageMixMixedAges(double max_age, size_t age_steps,
                                            double infant_threshold,
                                            double maturity_threshold) const {
  StageMix total;
  if (max_age <= 0.0 || age_steps < 1) {
    return StageMixAtAge(0.0, infant_threshold, maturity_threshold);
  }
  double h = max_age / static_cast<double>(age_steps);
  for (size_t i = 0; i < age_steps; ++i) {
    double age = h * (static_cast<double>(i) + 0.5);
    StageMix mix = StageMixAtAge(age, infant_threshold, maturity_threshold);
    total.infant += mix.infant;
    total.expansion += mix.expansion;
    total.maturity += mix.maturity;
  }
  double inv = 1.0 / static_cast<double>(age_steps);
  total.infant *= inv;
  total.expansion *= inv;
  total.maturity *= inv;
  return total;
}

}  // namespace qrank
