#include "model/visitation_model.h"

#include <cmath>

namespace qrank {

Result<VisitationModel> VisitationModel::Create(
    const VisitationParams& params) {
  if (!(params.quality > 0.0) || params.quality > 1.0) {
    return Status::InvalidArgument("quality must be in (0, 1]");
  }
  if (!(params.num_users > 0.0)) {
    return Status::InvalidArgument("num_users must be positive");
  }
  if (!(params.visit_rate > 0.0)) {
    return Status::InvalidArgument("visit_rate must be positive");
  }
  if (!(params.initial_popularity > 0.0) ||
      params.initial_popularity > params.quality) {
    return Status::InvalidArgument(
        "initial_popularity must be in (0, quality]");
  }
  return VisitationModel(params);
}

VisitationModel::VisitationModel(const VisitationParams& params)
    : params_(params),
      growth_(params.visit_rate / params.num_users * params.quality),
      c_(params.quality / params.initial_popularity - 1.0) {}

double VisitationModel::Popularity(double t) const {
  // Theorem 1. For large growth_*t the exp underflows to 0, giving Q.
  return params_.quality / (1.0 + c_ * std::exp(-growth_ * t));
}

double VisitationModel::Awareness(double t) const {
  return Popularity(t) / params_.quality;
}

double VisitationModel::PopularityDerivative(double t) const {
  double p = Popularity(t);
  return params_.visit_rate / params_.num_users * p * (params_.quality - p);
}

double VisitationModel::VisitRate(double t) const {
  return params_.visit_rate * Popularity(t);
}

double VisitationModel::RelativeIncrease(double t) const {
  // (n/r) (dP/dt)/P simplifies to Q - P under the logistic law.
  return params_.quality - Popularity(t);
}

double VisitationModel::EstimatorSum(double t) const {
  return RelativeIncrease(t) + Popularity(t);
}

Result<double> VisitationModel::FiniteDifferenceEstimate(double t1,
                                                         double t2) const {
  if (t1 < 0.0 || t2 <= t1) {
    return Status::InvalidArgument("need 0 <= t1 < t2");
  }
  double p1 = Popularity(t1);
  double p2 = Popularity(t2);
  double i_fd = params_.num_users / params_.visit_rate * ((p2 - p1) /
                (t2 - t1)) / p1;
  return i_fd + p2;
}

Result<double> VisitationModel::TimeToReachFraction(double fraction) const {
  double initial_fraction = params_.initial_popularity / params_.quality;
  if (fraction <= initial_fraction || fraction >= 1.0) {
    return Status::OutOfRange("fraction must be in (P0/Q, 1)");
  }
  // Invert P(t) = f*Q:  t = ln(c * f / (1-f)) / growth.
  return std::log(c_ * fraction / (1.0 - fraction)) / growth_;
}

LifeStage VisitationModel::StageAt(double t, double infant_threshold,
                                   double maturity_threshold) const {
  double frac = Awareness(t);  // == P/Q
  if (frac < infant_threshold) return LifeStage::kInfant;
  if (frac > maturity_threshold) return LifeStage::kMaturity;
  return LifeStage::kExpansion;
}

std::vector<double> VisitationModel::SamplePopularity(double t_begin,
                                                      double t_end,
                                                      size_t num_points) const {
  std::vector<double> out;
  if (num_points == 0) return out;
  out.reserve(num_points);
  if (num_points == 1) {
    out.push_back(Popularity(t_begin));
    return out;
  }
  double step = (t_end - t_begin) / static_cast<double>(num_points - 1);
  for (size_t i = 0; i < num_points; ++i) {
    out.push_back(Popularity(t_begin + step * static_cast<double>(i)));
  }
  return out;
}

}  // namespace qrank
