// The paper's user-visitation model in closed form (Sections 6-7).
//
// Model assumptions:
//   * Popularity-equivalence hypothesis (Prop. 1): visit rate
//     V(p,t) = r * P(p,t).
//   * Random-visit hypothesis (Prop. 2): each visit is by a uniformly
//     random one of the n Web users.
//
// Consequences implemented here:
//   * Lemma 1:    P(p,t) = A(p,t) * Q(p)
//   * Lemma 2:    A(p,t) = 1 - exp(-(r/n) * integral_0^t P dt)
//   * Theorem 1:  P(p,t) = Q / (1 + [Q/P0 - 1] * exp(-(r/n) Q t))
//                 (logistic / Verhulst growth)
//   * Lemma 3:    Q = (n/r) * (dP/dt) / (P * (1 - A))
//   * Theorem 2:  Q = I(p,t) + P(p,t), with the relative popularity
//                 increase I(p,t) = (n/r) * (dP/dt) / P.
//
// All functions are exact closed forms; tests/model cross-validate them
// against RK4 integration of the underlying ODE (ode.h).

#ifndef QRANK_MODEL_VISITATION_MODEL_H_
#define QRANK_MODEL_VISITATION_MODEL_H_

#include <vector>

#include "common/status.h"

namespace qrank {

/// Parameters of one page's popularity evolution.
struct VisitationParams {
  /// Intrinsic quality Q(p) in (0, 1].
  double quality = 0.5;
  /// Total number of Web users n (> 0).
  double num_users = 1e8;
  /// Visit-rate normalization r (> 0): visits per unit time = r * P.
  double visit_rate = 1e8;
  /// Initial popularity P(p, 0) in (0, quality].
  double initial_popularity = 1e-8;
};

/// Life stage of a page (Figure 1 of the paper).
enum class LifeStage {
  kInfant,     // P < infant_threshold * Q: barely noticed
  kExpansion,  // rapid growth
  kMaturity,   // P > maturity_threshold * Q: popularity saturated
};

class VisitationModel {
 public:
  /// Validates parameters (see VisitationParams field contracts).
  static Result<VisitationModel> Create(const VisitationParams& params);

  const VisitationParams& params() const { return params_; }

  /// P(p,t) by Theorem 1. Requires t >= 0.
  double Popularity(double t) const;

  /// A(p,t) = P(p,t) / Q (Lemma 1).
  double Awareness(double t) const;

  /// dP/dt = (r/n) * P * (Q - P) (the logistic ODE).
  double PopularityDerivative(double t) const;

  /// Visit rate V(p,t) = r * P(p,t) (Proposition 1).
  double VisitRate(double t) const;

  /// Relative popularity increase I(p,t) = (n/r) * (dP/dt) / P.
  /// Analytically equals Q - P (Theorem 2); computed as such.
  double RelativeIncrease(double t) const;

  /// The exact estimator I(p,t) + P(p,t); constant at Q for all t
  /// (Theorem 2). Kept as an explicit sum for tests and figures.
  double EstimatorSum(double t) const;

  /// Finite-difference estimator from two popularity observations, as a
  /// practical system would measure it:
  ///   I_fd = (n/r) * ((P(t2)-P(t1)) / (t2-t1)) / P(t1)
  /// Returns I_fd + P(t2) (the snapshot analogue of Theorem 2; converges
  /// to Q as t2 -> t1). Requires 0 <= t1 < t2.
  Result<double> FiniteDifferenceEstimate(double t1, double t2) const;

  /// Time at which P first reaches `fraction` * Q (inverse logistic).
  /// Requires fraction in (P0/Q, 1). Returns OutOfRange otherwise.
  Result<double> TimeToReachFraction(double fraction) const;

  /// Stage classification with the given thresholds (defaults follow the
  /// qualitative bands of Figure 1).
  LifeStage StageAt(double t, double infant_threshold = 0.1,
                    double maturity_threshold = 0.9) const;

  /// Convenience: P sampled at num_points evenly spaced times in
  /// [t_begin, t_end] inclusive.
  std::vector<double> SamplePopularity(double t_begin, double t_end,
                                       size_t num_points) const;

 private:
  explicit VisitationModel(const VisitationParams& params);

  VisitationParams params_;
  double growth_;  // (r/n) * Q, the logistic rate constant
  double c_;       // Q/P0 - 1
};

}  // namespace qrank

#endif  // QRANK_MODEL_VISITATION_MODEL_H_
