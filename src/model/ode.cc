#include "model/ode.h"

namespace qrank {

Result<OdeSolution> IntegrateRk4(const OdeRhs& f, double t0, double y0,
                                 double t1, size_t steps) {
  if (!(t1 > t0)) return Status::InvalidArgument("need t1 > t0");
  if (steps < 1) return Status::InvalidArgument("need steps >= 1");
  if (!f) return Status::InvalidArgument("missing ODE right-hand side");

  OdeSolution sol;
  sol.times.reserve(steps + 1);
  sol.values.reserve(steps + 1);
  double h = (t1 - t0) / static_cast<double>(steps);
  double t = t0;
  double y = y0;
  sol.times.push_back(t);
  sol.values.push_back(y);
  for (size_t i = 0; i < steps; ++i) {
    double k1 = f(t, y);
    double k2 = f(t + 0.5 * h, y + 0.5 * h * k1);
    double k3 = f(t + 0.5 * h, y + 0.5 * h * k2);
    double k4 = f(t + h, y + h * k3);
    y += h / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    t = t0 + h * static_cast<double>(i + 1);
    sol.times.push_back(t);
    sol.values.push_back(y);
  }
  sol.final_value = y;
  return sol;
}

}  // namespace qrank
