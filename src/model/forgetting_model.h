// Forgetting extension of the user-visitation model (Section 9.1).
//
// The base model predicts popularity can only increase, but the paper's
// crawl contained many pages with consistently *decreasing* PageRank; the
// authors suggest modeling users who "forget" pages they visited. Here a
// user who likes page p forgets it (and drops the link) at rate
// `forget_rate`, turning the logistic law into
//
//   dP/dt = (r/n) * P * (Q - P) - forget_rate * P
//
// whose equilibrium P* = Q - forget_rate * n / r is *below* quality (and
// the page dies out entirely when forget_rate >= (r/n) * Q). The
// closed-form solution is again logistic with effective quality P*:
//
//   dP/dt = (r/n) * P * (P* - P).
//
// A key consequence (tested in tests/model): the paper's estimator
// I + P now converges to Q - forget_rate*n/r instead of Q — i.e., it
// *underestimates* quality by exactly the forgetting margin, which
// quantifies the bias the paper flags as future work.

#ifndef QRANK_MODEL_FORGETTING_MODEL_H_
#define QRANK_MODEL_FORGETTING_MODEL_H_

#include "common/status.h"
#include "model/visitation_model.h"

namespace qrank {

struct ForgettingParams {
  VisitationParams base;
  /// Rate at which a user who likes the page forgets it (>= 0).
  double forget_rate = 0.0;
};

class ForgettingModel {
 public:
  /// Validates parameters. Also requires initial popularity strictly
  /// below the equilibrium when the equilibrium is positive, or any
  /// positive initial popularity when the page is doomed to die out.
  static Result<ForgettingModel> Create(const ForgettingParams& params);

  const ForgettingParams& params() const { return params_; }

  /// Equilibrium popularity P* = Q - forget_rate * n / r (may be <= 0,
  /// meaning the page's popularity decays to zero).
  double EquilibriumPopularity() const { return equilibrium_; }

  /// P(p,t), exact solution of the forgetting ODE.
  double Popularity(double t) const;

  /// dP/dt at time t.
  double PopularityDerivative(double t) const;

  /// The paper's estimator I + P evaluated under this model; converges to
  /// EquilibriumPopularity(), not Q — the forgetting bias.
  double EstimatorSum(double t) const;

  /// The asymptotic error Q - lim_{t->inf} (I + P) = forget_rate * n / r.
  double AsymptoticEstimatorBias() const;

 private:
  explicit ForgettingModel(const ForgettingParams& params);

  ForgettingParams params_;
  double equilibrium_;
  double rate_;  // r/n
};

}  // namespace qrank

#endif  // QRANK_MODEL_FORGETTING_MODEL_H_
