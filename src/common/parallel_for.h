// Deterministic data-parallel helpers: ParallelFor / ParallelReduce.
//
// Determinism contract (the load-bearing design decision of the whole
// concurrency substrate): every helper partitions its index range into
// FIXED blocks whose boundaries depend only on (n, grain) — never on the
// thread count or on scheduling order. Blocks write disjoint state
// (ParallelFor) or produce per-block partials that are combined by a
// fixed pairwise tree in block-index order (ParallelReduce). Hence for
// any functor whose block results depend only on the block bounds, the
// result is BIT-IDENTICAL for --threads=1 and --threads=1000. This is
// what lets the quality estimator Q(p) ≈ C·ΔPR/PR + PR — a ratio of two
// nearly equal floating-point quantities — run on parallel PageRank
// without thread count perturbing the estimates.
//
// Scheduling: blocks are claimed from an atomic counter by up to
// (num_threads - 1) pool workers plus the calling thread, which always
// participates (so a zero-worker pool or a busy pool still makes
// progress and nested use cannot deadlock). num_threads == 1 runs all
// blocks inline on the calling thread without touching the pool: the
// exact serial path.
//
// Exceptions thrown by a block functor are captured (first one wins) and
// rethrown on the calling thread after all blocks finish.

#ifndef QRANK_COMMON_PARALLEL_FOR_H_
#define QRANK_COMMON_PARALLEL_FOR_H_

#include <array>
#include <cstddef>
#include <functional>
#include <vector>

namespace qrank {

struct ParallelOptions {
  /// Total executor count for this call: the calling thread plus
  /// (num_threads - 1) pool workers. 0 means DefaultThreads();
  /// 1 means run serially on the calling thread.
  int num_threads = 0;

  /// Fixed block size. Block boundaries are (i*grain, min(n,(i+1)*grain))
  /// regardless of thread count — changing `grain` changes floating-point
  /// reduction results, changing `num_threads` never does.
  size_t grain = 2048;
};

/// Process-wide default for ParallelOptions::num_threads == 0.
/// Set from the --threads flag in binaries; <= 0 restores the hardware
/// concurrency default.
void SetDefaultThreads(int n);
int DefaultThreads();

/// The executor count a request resolves to: `requested` when positive,
/// DefaultThreads() otherwise.
int ResolveThreads(int requested);

/// Number of fixed blocks [0,n) splits into at the given grain
/// (0 for n == 0; grain is clamped to >= 1).
size_t NumBlocks(size_t n, size_t grain);

/// Fixed uniform partition boundaries of [0, n): {0, grain, 2*grain,
/// ..., n}. The explicit-boundary twin of the implicit blocks
/// ParallelForBlocks uses.
std::vector<size_t> UniformBoundaries(size_t n, size_t grain);

/// Weight-balanced partition boundaries from a monotone prefix-weight
/// array (`prefix` has n + 1 entries, prefix[0] == 0, prefix[i] = total
/// weight of items [0, i)). Returns num_blocks + 1 boundaries with
/// bounds[0] == 0 and bounds[num_blocks] == n; boundary b is the first
/// item index whose prefix weight reaches ceil(b * total / num_blocks)
/// (binary search, O(num_blocks * log n)). Blocks may be empty when a
/// single item outweighs the per-block target; every non-empty block
/// carries at most target + max-item-weight total weight. Boundaries
/// depend only on (prefix, num_blocks) — never on the thread count —
/// so reductions over them keep the determinism contract.
std::vector<size_t> WeightBalancedBoundaries(const std::vector<size_t>& prefix,
                                             size_t num_blocks);

namespace parallel_internal {

/// Runs run_block(b) for every b in [0, num_blocks) using the calling
/// thread plus up to (num_threads - 1) global-pool workers. Rethrows the
/// first exception after all blocks complete.
void RunBlocks(size_t num_blocks, const std::function<void(size_t)>& run_block,
               int num_threads);

/// In-place pairwise tree fold of per-block partials, in block order:
/// width-1 neighbors first, then width-2, ... Returns partials[0]
/// (0.0 for an empty vector). Independent of how partials were produced.
double TreeReduce(std::vector<double>* partials);

/// Same fold over a raw range (the scratch-buffer reduce variants fold
/// one component row at a time without owning a vector).
double TreeReduceRange(double* partials, size_t count);

}  // namespace parallel_internal

/// Calls fn(lo, hi) for each fixed block [lo, hi) of [0, n).
/// fn must only write state disjoint across blocks.
template <typename BlockFn>
void ParallelForBlocks(size_t n, BlockFn&& fn, ParallelOptions opts = {}) {
  const size_t grain = opts.grain > 0 ? opts.grain : 1;
  const size_t blocks = NumBlocks(n, grain);
  if (ResolveThreads(opts.num_threads) <= 1 || blocks <= 1) {
    // Inline serial path: same blocks, same order, and no std::function
    // materialization — sweep loops built on this stay allocation-free.
    for (size_t b = 0; b < blocks; ++b) {
      size_t lo = b * grain;
      size_t hi = lo + grain < n ? lo + grain : n;
      fn(lo, hi);
    }
    return;
  }
  parallel_internal::RunBlocks(
      blocks,
      [&](size_t b) {
        size_t lo = b * grain;
        size_t hi = lo + grain < n ? lo + grain : n;
        fn(lo, hi);
      },
      opts.num_threads);
}

/// Calls fn(lo, hi) for each block [bounds[b], bounds[b + 1]) of an
/// explicit fixed partition (e.g. WeightBalancedBoundaries). Blocks are
/// claimed dynamically but the partition itself never depends on the
/// thread count, so disjoint-write functors keep the determinism
/// contract.
template <typename BlockFn>
void ParallelForPartition(const std::vector<size_t>& bounds, BlockFn&& fn,
                          ParallelOptions opts = {}) {
  const size_t blocks = bounds.empty() ? 0 : bounds.size() - 1;
  if (ResolveThreads(opts.num_threads) <= 1 || blocks <= 1) {
    for (size_t b = 0; b < blocks; ++b) fn(bounds[b], bounds[b + 1]);
    return;
  }
  parallel_internal::RunBlocks(
      blocks, [&](size_t b) { fn(bounds[b], bounds[b + 1]); },
      opts.num_threads);
}

/// Calls fn(i) for each i in [0, n), blockwise.
template <typename Fn>
void ParallelFor(size_t n, Fn&& fn, ParallelOptions opts = {}) {
  ParallelForBlocks(
      n,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) fn(i);
      },
      opts);
}

/// Sums partial(lo, hi) over the fixed blocks of [0, n), combining the
/// per-block partials with a pairwise tree in block order. `partial`
/// must be a pure function of its bounds (plus read-only shared state).
template <typename PartialFn>
double ParallelReduce(size_t n, PartialFn&& partial, ParallelOptions opts = {}) {
  const size_t grain = opts.grain > 0 ? opts.grain : 1;
  const size_t blocks = NumBlocks(n, grain);
  std::vector<double> partials(blocks, 0.0);
  auto run = [&](size_t b) {
    size_t lo = b * grain;
    size_t hi = lo + grain < n ? lo + grain : n;
    partials[b] = partial(lo, hi);
  };
  if (ResolveThreads(opts.num_threads) <= 1 || blocks <= 1) {
    for (size_t b = 0; b < blocks; ++b) run(b);
  } else {
    parallel_internal::RunBlocks(blocks, run, opts.num_threads);
  }
  return parallel_internal::TreeReduce(&partials);
}

/// K simultaneous sums over one pass of an explicit fixed partition:
/// partial(lo, hi) returns K per-block components, each reduced by the
/// same fixed pairwise tree in block order. The per-block partials live
/// in caller-owned `scratch` (grown to K * num_blocks once, then
/// reused), so steady-state calls perform no allocation — this is the
/// reduction the fused PageRank sweep folds its residual and dangling
/// mass into. Serial calls (resolved thread count 1) run inline without
/// touching the pool and produce bit-identical results.
template <size_t K, typename PartialFn>
std::array<double, K> ParallelReducePartition(const std::vector<size_t>& bounds,
                                              PartialFn&& partial,
                                              std::vector<double>* scratch,
                                              ParallelOptions opts = {}) {
  const size_t blocks = bounds.empty() ? 0 : bounds.size() - 1;
  std::array<double, K> result{};
  if (blocks == 0) return result;
  // qrank-lint: allow(hot-alloc) grow-once reduce scratch; hot callers
  // pre-size it in their constructors (kernel_alloc_test enforces the
  // steady-state zero-allocation contract dynamically).
  if (scratch->size() < K * blocks) scratch->resize(K * blocks);
  double* partials = scratch->data();
  auto run = [&](size_t b) {
    const std::array<double, K> p = partial(bounds[b], bounds[b + 1]);
    for (size_t k = 0; k < K; ++k) partials[k * blocks + b] = p[k];
  };
  if (ResolveThreads(opts.num_threads) <= 1 || blocks == 1) {
    for (size_t b = 0; b < blocks; ++b) run(b);
  } else {
    parallel_internal::RunBlocks(blocks, run, opts.num_threads);
  }
  for (size_t k = 0; k < K; ++k) {
    result[k] =
        parallel_internal::TreeReduceRange(partials + k * blocks, blocks);
  }
  return result;
}

}  // namespace qrank

#endif  // QRANK_COMMON_PARALLEL_FOR_H_
