#include "common/thread_pool.h"

#include <utility>

namespace qrank {

ThreadPool::ThreadPool(unsigned num_threads) {
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

unsigned ThreadPool::HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? n : 1;
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> result = packaged->get_future();
  Post([packaged] { (*packaged)(); });
  return result;
}

void ThreadPool::Post(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(&mu_);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace qrank
