// Source-level contract markers consumed by tools/qrank_lint.py.
//
// These macros mostly compile to nothing (QRANK_HOT doubles as a real
// optimizer hint where supported); their job is to be visible tokens
// the linter can anchor repo-specific rules to, so the contracts they
// name are machine-checked instead of comment-enforced:
//
//  * QRANK_HOT — this function is on a serve/sweep/decode hot path and
//    must not allocate, directly or through anything else defined in
//    its translation unit (lint rule `hot-alloc`; the dynamic
//    counterpart is the counting-allocator kernel_alloc/serve_alloc
//    tests, which only see the paths they exercise).
//
//  * QRANK_SCALAR_TU_ONLY — this definition is on the bit-exactness
//    list: it may only live in a translation unit compiled without
//    -mavx*/-ffast-math, because implied FMA contraction would re-round
//    its arithmetic (lint rule `scalar-tu`; see sweep_ops.h on why
//    ScalarCompressedBlockSweep must come from the scalar TU). The rule
//    also rejects the marker in headers — a header definition could be
//    instantiated under any TU's flags.

#ifndef QRANK_COMMON_ANNOTATIONS_H_
#define QRANK_COMMON_ANNOTATIONS_H_

#if defined(__GNUC__) || defined(__clang__)
#define QRANK_HOT __attribute__((hot))
#else
#define QRANK_HOT
#endif

#define QRANK_SCALAR_TU_ONLY  // lint marker only

#endif  // QRANK_COMMON_ANNOTATIONS_H_
