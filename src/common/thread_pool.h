// Fixed-size worker pool for the parallel compute substrate.
//
// ThreadPool owns N OS threads that drain a FIFO task queue. It is the
// execution backend of ParallelFor/ParallelReduce (parallel_for.h); user
// code normally goes through those helpers rather than the pool itself.
//
// Determinism contract: the pool only decides *which thread* runs a
// task, never *what* the task computes. All qrank parallel algorithms
// are written so their results depend only on the fixed block structure
// (see parallel_for.h), making every result independent of the number
// of workers and of scheduling order.
//
// Lock discipline (compile-time checked under QRANK_THREAD_SAFETY):
// mu_ guards the task queue and the stop flag; workers_ is written only
// by the constructor and joined by the destructor, so it needs no lock.

#ifndef QRANK_COMMON_THREAD_POOL_H_
#define QRANK_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace qrank {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (0 is allowed: every Submit() then
  /// runs inline on the submitting thread, which keeps single-core and
  /// test configurations deadlock-free).
  explicit ThreadPool(unsigned num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task; the returned future rethrows any exception the
  /// task raised (std::packaged_task semantics).
  std::future<void> Submit(std::function<void()> task);

  /// Fire-and-forget enqueue. The task must not throw; helpers that need
  /// exception propagation (ParallelFor) catch internally and rethrow on
  /// the calling thread.
  void Post(std::function<void()> task) QRANK_EXCLUDES(mu_);

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned HardwareConcurrency();

 private:
  void WorkerLoop() QRANK_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ QRANK_GUARDED_BY(mu_);
  bool stop_ QRANK_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // ctor-written, dtor-joined only
};

}  // namespace qrank

#endif  // QRANK_COMMON_THREAD_POOL_H_
