// Monotonic wall-clock stopwatch for coarse timing in examples and logs.
// (google-benchmark owns all reported performance numbers.)

#ifndef QRANK_COMMON_STOPWATCH_H_
#define QRANK_COMMON_STOPWATCH_H_

#include <chrono>

namespace qrank {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qrank

#endif  // QRANK_COMMON_STOPWATCH_H_
