// Aligned console tables and CSV emission for benchmark/experiment output.
//
// Every bench binary reports its figure/table through a TableWriter so the
// regenerated rows and series are uniform and machine-parseable.

#ifndef QRANK_COMMON_TABLE_WRITER_H_
#define QRANK_COMMON_TABLE_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace qrank {

/// Collects rows of stringly-typed cells and renders them either as an
/// aligned ASCII table (for the console) or as CSV (for plotting).
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  /// Extra cells are dropped and missing cells filled with "" (with a
  /// warning-free best effort — callers should pass matching widths).
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` significant decimals.
  void AddNumericRow(const std::vector<double>& row, int precision = 6);

  size_t num_rows() const { return rows_.size(); }
  size_t num_cols() const { return header_.size(); }

  /// Renders an aligned table with a header rule.
  void RenderAscii(std::ostream& out) const;
  std::string ToAscii() const;

  /// RFC-4180-ish CSV (cells containing comma/quote/newline are quoted).
  void RenderCsv(std::ostream& out) const;
  Status WriteCsvFile(const std::string& path) const;

  /// Formats a double like the paper's figures (fixed, trimmed zeros).
  static std::string FormatDouble(double v, int precision = 6);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qrank

#endif  // QRANK_COMMON_TABLE_WRITER_H_
