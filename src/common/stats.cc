#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

namespace qrank {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Result<double> Quantile(std::vector<double> values, double q) {
  if (values.empty()) {
    return Status::InvalidArgument("Quantile of empty sample");
  }
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("quantile must be in [0, 1]");
  }
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double pos = q * static_cast<double>(values.size() - 1);
  size_t i = static_cast<size_t>(pos);
  if (i >= values.size() - 1) return values.back();
  double frac = pos - static_cast<double>(i);
  return values[i] + frac * (values[i + 1] - values[i]);
}

Result<double> Mean(const std::vector<double>& values) {
  if (values.empty()) return Status::InvalidArgument("Mean of empty sample");
  double sum = std::accumulate(values.begin(), values.end(), 0.0);
  return sum / static_cast<double>(values.size());
}

Histogram::Histogram(size_t num_bins, double lo, double hi) : lo_(lo) {
  if (num_bins < 1) num_bins = 1;
  if (hi <= lo) hi = lo + 1.0;
  width_ = (hi - lo) / static_cast<double>(num_bins);
  counts_.assign(num_bins + 1, 0);
}

size_t Histogram::BinIndex(double x) const {
  if (x < lo_) return 0;
  double offset = (x - lo_) / width_;
  size_t num_regular = counts_.size() - 1;
  if (offset >= static_cast<double>(num_regular)) return num_regular;
  return static_cast<size_t>(offset);
}

void Histogram::Add(double x) {
  ++counts_[BinIndex(x)];
  ++total_;
}

void Histogram::AddAll(const std::vector<double>& xs) {
  for (double x : xs) Add(x);
}

double Histogram::Fraction(size_t i) const {
  if (total_ == 0 || i >= counts_.size()) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

double Histogram::BinLower(size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::BinUpper(size_t i) const {
  if (i >= num_bins()) return std::numeric_limits<double>::infinity();
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::CumulativeFractionBelow(double x) const {
  if (total_ == 0) return 0.0;
  uint64_t below = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (BinUpper(i) <= x) below += counts_[i];
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

std::string Histogram::ToAscii(const std::string& label,
                               size_t bar_width) const {
  std::ostringstream out;
  out << label << " (n=" << total_ << ")\n";
  double max_frac = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    max_frac = std::max(max_frac, Fraction(i));
  }
  char buf[96];
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (i < num_bins()) {
      std::snprintf(buf, sizeof(buf), "[%5.2f,%5.2f) ", BinLower(i),
                    BinUpper(i));
    } else {
      std::snprintf(buf, sizeof(buf), "[%5.2f,  inf) ", BinLower(i));
    }
    out << buf;
    double frac = Fraction(i);
    size_t bars =
        max_frac > 0.0
            ? static_cast<size_t>(frac / max_frac *
                                  static_cast<double>(bar_width) + 0.5)
            : 0;
    out << std::string(bars, '#');
    std::snprintf(buf, sizeof(buf), " %6.2f%%\n", frac * 100.0);
    out << buf;
  }
  return out.str();
}

std::vector<double> FractionalRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // 1-based average rank for the tie group [i, j].
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

Result<double> PearsonCorrelation(const std::vector<double>& a,
                                  const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("correlation inputs differ in size");
  }
  if (a.size() < 2) {
    return Status::InvalidArgument("correlation needs >= 2 pairs");
  }
  const double n = static_cast<double>(a.size());
  double ma = std::accumulate(a.begin(), a.end(), 0.0) / n;
  double mb = std::accumulate(b.begin(), b.end(), 0.0) / n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double da = a[i] - ma;
    double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) {
    return Status::FailedPrecondition("constant input to correlation");
  }
  return cov / std::sqrt(va * vb);
}

Result<double> SpearmanCorrelation(const std::vector<double>& a,
                                   const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("correlation inputs differ in size");
  }
  if (a.size() < 2) {
    return Status::InvalidArgument("correlation needs >= 2 pairs");
  }
  return PearsonCorrelation(FractionalRanks(a), FractionalRanks(b));
}

Result<double> KendallTau(const std::vector<double>& a,
                          const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("correlation inputs differ in size");
  }
  const size_t n = a.size();
  if (n < 2) return Status::InvalidArgument("correlation needs >= 2 pairs");
  int64_t concordant = 0, discordant = 0, ties_a = 0, ties_b = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double da = a[i] - a[j];
      double db = b[i] - b[j];
      if (da == 0.0 && db == 0.0) {
        ++ties_a;
        ++ties_b;
      } else if (da == 0.0) {
        ++ties_a;
      } else if (db == 0.0) {
        ++ties_b;
      } else if ((da > 0.0) == (db > 0.0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  double n0 = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  double denom = std::sqrt((n0 - static_cast<double>(ties_a)) *
                           (n0 - static_cast<double>(ties_b)));
  if (denom <= 0.0) {
    return Status::FailedPrecondition("constant input to correlation");
  }
  return static_cast<double>(concordant - discordant) / denom;
}

Result<PowerLawFit> FitPowerLaw(const std::vector<double>& x,
                                const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("power-law fit inputs differ in size");
  }
  std::vector<double> lx, ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0.0 && y[i] > 0.0) {
      lx.push_back(std::log(x[i]));
      ly.push_back(std::log(y[i]));
    }
  }
  if (lx.size() < 2) {
    return Status::InvalidArgument("power-law fit needs >= 2 positive pairs");
  }
  const double n = static_cast<double>(lx.size());
  double mx = std::accumulate(lx.begin(), lx.end(), 0.0) / n;
  double my = std::accumulate(ly.begin(), ly.end(), 0.0) / n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < lx.size(); ++i) {
    double dx = lx[i] - mx;
    double dy = ly[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0) {
    return Status::FailedPrecondition("degenerate x in power-law fit");
  }
  PowerLawFit fit;
  fit.exponent = sxy / sxx;
  fit.intercept = my - fit.exponent * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  fit.points_used = lx.size();
  return fit;
}

}  // namespace qrank
