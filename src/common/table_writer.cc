#include "common/table_writer.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace qrank {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TableWriter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TableWriter::AddNumericRow(const std::vector<double>& row,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

std::string TableWriter::FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string s(buf);
  // Trim trailing zeros but keep at least one digit after the point.
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') ++last;
    s.erase(last + 1);
  }
  return s;
}

void TableWriter::RenderAscii(std::ostream& out) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << "\n";
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
}

std::string TableWriter::ToAscii() const {
  std::ostringstream out;
  RenderAscii(out);
  return out.str();
}

namespace {
void EmitCsvCell(std::ostream& out, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    out << cell;
    return;
  }
  out << '"';
  for (char ch : cell) {
    if (ch == '"') out << '"';
    out << ch;
  }
  out << '"';
}

void EmitCsvRow(std::ostream& out, const std::vector<std::string>& row) {
  for (size_t c = 0; c < row.size(); ++c) {
    if (c > 0) out << ',';
    EmitCsvCell(out, row[c]);
  }
  out << "\n";
}
}  // namespace

void TableWriter::RenderCsv(std::ostream& out) const {
  EmitCsvRow(out, header_);
  for (const auto& row : rows_) EmitCsvRow(out, row);
}

Status TableWriter::WriteCsvFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open for write: " + path);
  RenderCsv(f);
  f.flush();
  if (!f) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace qrank
