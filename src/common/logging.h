// Minimal leveled logger plus invariant-check macros.
//
// Logging is for operational visibility (benchmark progress, warnings about
// degenerate inputs); it never replaces Status-based error returns.
// QRANK_CHECK aborts on violated internal invariants (programmer error),
// never on bad user input.
//
// Check-macro family (all accept streamed context after the condition,
// e.g. `QRANK_CHECK(i < n) << "row " << i;`):
//  * QRANK_CHECK   — always on, also in Release.
//  * QRANK_DCHECK  — on when NDEBUG is unset; in Release the condition
//    and streamed operands compile out (short-circuited, so operands are
//    still odr-used: no unused-variable warnings, no side effects).
//  * QRANK_AUDIT1 / QRANK_AUDIT2 — on when the build sets
//    QRANK_AUDIT_LEVEL (see CMake option of the same name) at or above
//    1 resp. 2; off like Release QRANK_DCHECK otherwise. Level 1 guards
//    cheap pre/postconditions on mutation and engine entry points;
//    level 2 guards full structural re-validation (see src/audit/).

#ifndef QRANK_COMMON_LOGGING_H_
#define QRANK_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace qrank {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

bool LogLevelEnabled(LogLevel level);

// Collects the streamed context of a failed check and aborts with the
// file/line/condition banner when destroyed (end of the full check
// expression).
class CheckFailure {
 public:
  CheckFailure(const char* condition, const char* file, int line);
  [[noreturn]] ~CheckFailure();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Gives the check macros expression (not statement) form: `&` binds
// looser than `<<`, so the streamed message lands in the CheckFailure
// before the whole thing collapses to void — no dangling-else hazard.
struct Voidifier {
  void operator&(std::ostream&) const {}
};

}  // namespace internal

#define QRANK_LOG_AT(level)                                     \
  if (!::qrank::internal::LogLevelEnabled(level)) {             \
  } else                                                        \
    ::qrank::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define QRANK_LOG_DEBUG QRANK_LOG_AT(::qrank::LogLevel::kDebug)
#define QRANK_LOG_INFO QRANK_LOG_AT(::qrank::LogLevel::kInfo)
#define QRANK_LOG_WARN QRANK_LOG_AT(::qrank::LogLevel::kWarn)
#define QRANK_LOG_ERROR QRANK_LOG_AT(::qrank::LogLevel::kError)

// Invariant check: always on (also in release), aborts with location.
// Accepts streamed context: QRANK_CHECK(cond) << "detail " << value;
#define QRANK_CHECK(cond)                                         \
  (cond) ? (void)0                                                \
         : ::qrank::internal::Voidifier() &                       \
               ::qrank::internal::CheckFailure(#cond, __FILE__,   \
                                               __LINE__)          \
                   .stream()

// Internal: a check that is compiled out. `true || (cond)` constant-folds
// to a taken branch, so neither the condition nor any streamed operand is
// evaluated, while everything stays odr-used (no -Wunused warnings for
// variables that only appear in disabled checks).
#define QRANK_CHECK_DISABLED_(cond) QRANK_CHECK(true || (cond))

// Debug check: QRANK_CHECK when NDEBUG is unset, otherwise compiled out.
#ifndef NDEBUG
#define QRANK_DCHECK(cond) QRANK_CHECK(cond)
#else
#define QRANK_DCHECK(cond) QRANK_CHECK_DISABLED_(cond)
#endif

// Audit checks: enabled by -DQRANK_AUDIT_LEVEL=1|2 (CMake option of the
// same name); level 0 (the default) compiles them out like Release
// QRANK_DCHECK. Level 1 is for cheap O(1)/O(n) pre- and postconditions
// on mutation and engine entry points; level 2 additionally turns on
// full structural re-validation after each mutation (O(E) or worse).
#ifndef QRANK_AUDIT_LEVEL
#define QRANK_AUDIT_LEVEL 0
#endif

#if QRANK_AUDIT_LEVEL >= 1
#define QRANK_AUDIT1(cond) QRANK_CHECK(cond)
#else
#define QRANK_AUDIT1(cond) QRANK_CHECK_DISABLED_(cond)
#endif

#if QRANK_AUDIT_LEVEL >= 2
#define QRANK_AUDIT2(cond) QRANK_CHECK(cond)
#else
#define QRANK_AUDIT2(cond) QRANK_CHECK_DISABLED_(cond)
#endif

}  // namespace qrank

#endif  // QRANK_COMMON_LOGGING_H_
