// Minimal leveled logger plus invariant-check macros.
//
// Logging is for operational visibility (benchmark progress, warnings about
// degenerate inputs); it never replaces Status-based error returns.
// QRANK_CHECK aborts on violated internal invariants (programmer error),
// never on bad user input.

#ifndef QRANK_COMMON_LOGGING_H_
#define QRANK_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace qrank {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

bool LogLevelEnabled(LogLevel level);

}  // namespace internal

#define QRANK_LOG_AT(level)                                     \
  if (!::qrank::internal::LogLevelEnabled(level)) {             \
  } else                                                        \
    ::qrank::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define QRANK_LOG_DEBUG QRANK_LOG_AT(::qrank::LogLevel::kDebug)
#define QRANK_LOG_INFO QRANK_LOG_AT(::qrank::LogLevel::kInfo)
#define QRANK_LOG_WARN QRANK_LOG_AT(::qrank::LogLevel::kWarn)
#define QRANK_LOG_ERROR QRANK_LOG_AT(::qrank::LogLevel::kError)

// Invariant check: always on (also in release), aborts with location.
#define QRANK_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::cerr << "QRANK_CHECK failed at " << __FILE__ << ":" << __LINE__ \
                << ": " #cond << std::endl;                                \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define QRANK_DCHECK(cond) assert(cond)

}  // namespace qrank

#endif  // QRANK_COMMON_LOGGING_H_
