// Deterministic parallel merge sort over the ParallelFor substrate.
//
// ParallelSort extends the determinism contract of parallel_for.h to
// full-array sorting: the input is split into FIXED blocks whose
// boundaries depend only on (n, grain) — never on the thread count —
// each block is sorted independently, and the sorted runs are combined
// by a fixed pairwise merge tree. Every merge is itself chunked into
// fixed output ranges (the classic merge-path / co-rank split), so all
// chunks of all pairs at one tree level run in parallel while the
// output stays a pure function of (input, grain).
//
// REQUIREMENT: `less` must be a strict TOTAL order (no two elements
// may compare equivalent — break ties explicitly, e.g. by index). With
// a total order the sorted sequence is unique, so the result is
// BIT-IDENTICAL to a serial std::sort for every thread count — the
// property the serving-bundle writer relies on to keep published
// bundles byte-identical regardless of export parallelism. With ties,
// the merge tree and std::sort may order equivalent elements
// differently, breaking the serial-vs-parallel identity; a debug check
// rejects such comparators.
//
// Complexity: O(n log n) work, O(n) extra memory (one ping-pong
// buffer), and a critical path of O(n / num_threads) per merge level —
// the final whole-array merge is chunked too, so no level serializes.

#ifndef QRANK_COMMON_PARALLEL_SORT_H_
#define QRANK_COMMON_PARALLEL_SORT_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/logging.h"
#include "common/parallel_for.h"

namespace qrank {

namespace sort_internal {

/// Co-rank: how many of the first `k` outputs of merging the sorted
/// runs [a, a+na) and [b, b+nb) come from `a` (std::merge semantics).
/// Under a strict total order the answer is unique; binary search on
/// the smallest i with !less(a[i], b[k-i-1]).
template <typename T, typename Less>
size_t CoRank(const T* a, size_t na, const T* b, size_t nb, size_t k,
              const Less& less) {
  size_t lo = k > nb ? k - nb : 0;
  size_t hi = k < na ? k : na;
  while (lo < hi) {
    const size_t i = lo + (hi - lo) / 2;  // i in [lo, hi) => k - i >= 1
    if (less(a[i], b[k - i - 1])) {
      lo = i + 1;
    } else {
      hi = i;
    }
  }
  return lo;
}

/// One fixed output chunk of one pairwise merge: merge run A
/// [a_lo, a_hi) with run B [a_hi, b_hi), output positions
/// [out_lo, out_hi). b_hi == a_hi marks a pass-through copy of the odd
/// leftover run.
struct MergeChunk {
  size_t a_lo, a_hi, b_hi;
  size_t out_lo, out_hi;
};

/// Debug-build contract check: in a sequence sorted under a strict
/// TOTAL order, every adjacent pair compares strictly — an equivalent
/// pair means the caller's comparator has ties and the
/// serial-vs-parallel bit-identity does not hold.
template <typename T, typename Less>
void DebugCheckTotalOrder([[maybe_unused]] const std::vector<T>& v,
                          [[maybe_unused]] const Less& less) {
#ifndef NDEBUG
  for (size_t i = 0; i + 1 < v.size(); ++i) {
    QRANK_DCHECK(less(v[i], v[i + 1]))
        << "ParallelSort comparator is not a strict total order: sorted "
           "elements "
        << i << " and " << i + 1 << " compare equivalent";
  }
#endif
}

}  // namespace sort_internal

/// Sorts `v` by `less` (a strict TOTAL order — see file comment).
/// Result is bit-identical to std::sort(v->begin(), v->end(), less)
/// for every opts.num_threads value.
template <typename T, typename Less>
void ParallelSort(std::vector<T>* v, Less less, ParallelOptions opts = {}) {
  const size_t n = v->size();
  const size_t grain = opts.grain > 0 ? opts.grain : 1;
  const size_t blocks = NumBlocks(n, grain);
  if (ResolveThreads(opts.num_threads) <= 1 || blocks <= 1) {
    std::sort(v->begin(), v->end(), less);
    sort_internal::DebugCheckTotalOrder(*v, less);
    return;
  }

  // Level 0: sort each fixed block in place, in parallel.
  std::vector<size_t> runs = UniformBoundaries(n, grain);
  parallel_internal::RunBlocks(
      blocks,
      [&](size_t b) { std::sort(v->data() + runs[b], v->data() + runs[b + 1], less); },
      opts.num_threads);

  // Merge levels: ping-pong between v and a scratch buffer. All chunk
  // boundaries derive from (runs, grain) only.
  std::vector<T> scratch(n);
  T* src = v->data();
  T* dst = scratch.data();
  std::vector<sort_internal::MergeChunk> chunks;
  std::vector<size_t> next_runs;
  while (runs.size() > 2) {
    const size_t num_runs = runs.size() - 1;
    chunks.clear();
    next_runs.clear();
    next_runs.push_back(0);
    for (size_t r = 0; r + 1 < num_runs; r += 2) {
      const size_t a_lo = runs[r];
      const size_t a_hi = runs[r + 1];
      const size_t b_hi = runs[r + 2];
      const size_t m = b_hi - a_lo;
      const size_t parts = NumBlocks(m, grain);
      for (size_t c = 0; c < parts; ++c) {
        const size_t k_lo = c * grain;
        const size_t k_hi = k_lo + grain < m ? k_lo + grain : m;
        chunks.push_back({a_lo, a_hi, b_hi, a_lo + k_lo, a_lo + k_hi});
      }
      next_runs.push_back(b_hi);
    }
    if (num_runs % 2 != 0) {  // odd leftover run: copy through
      chunks.push_back(
          {runs[num_runs - 1], runs[num_runs], runs[num_runs],
           runs[num_runs - 1], runs[num_runs]});
      next_runs.push_back(runs[num_runs]);
    }
    parallel_internal::RunBlocks(
        chunks.size(),
        [&](size_t t) {
          const sort_internal::MergeChunk& c = chunks[t];
          if (c.b_hi == c.a_hi) {  // pass-through
            std::copy(src + c.out_lo, src + c.out_hi, dst + c.out_lo);
            return;
          }
          const T* a = src + c.a_lo;
          const size_t na = c.a_hi - c.a_lo;
          const T* b = src + c.a_hi;
          const size_t nb = c.b_hi - c.a_hi;
          const size_t k_lo = c.out_lo - c.a_lo;
          const size_t k_hi = c.out_hi - c.a_lo;
          const size_t ia_lo = sort_internal::CoRank(a, na, b, nb, k_lo, less);
          const size_t ia_hi = sort_internal::CoRank(a, na, b, nb, k_hi, less);
          std::merge(a + ia_lo, a + ia_hi, b + (k_lo - ia_lo),
                     b + (k_hi - ia_hi), dst + c.out_lo, less);
        },
        opts.num_threads);
    std::swap(src, dst);
    runs.swap(next_runs);
  }
  if (src != v->data()) {
    std::copy(src, src + n, v->data());
  }
  sort_internal::DebugCheckTotalOrder(*v, less);
}

}  // namespace qrank

#endif  // QRANK_COMMON_PARALLEL_SORT_H_
