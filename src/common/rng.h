// Deterministic, splittable pseudo-random number generation.
//
// All stochastic components of qrank (graph generators, the web-evolution
// simulator, noise injection) draw from Rng instances created from an
// explicit 64-bit seed, so every experiment is exactly reproducible.
//
// Rng is xoshiro256**; seeds are expanded with SplitMix64 as recommended
// by its authors. Rng::Split() derives an independent stream, which lets
// each simulated entity (user, page, process) own a private generator:
// adding a new consumer of randomness does not perturb the draws seen by
// existing ones.

#ifndef QRANK_COMMON_RNG_H_
#define QRANK_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qrank {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used for seed expansion and stream derivation.
uint64_t SplitMix64Next(uint64_t* state);

/// Deterministic xoshiro256** generator with helper distributions.
class Rng {
 public:
  /// Seeds the generator; any seed (including 0) is valid.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (no state caching; two uniforms/draw).
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with rate `lambda` > 0.
  double Exponential(double lambda);

  /// Pareto (power-law) with scale xmin > 0 and shape alpha > 0:
  /// P(X > x) = (xmin/x)^alpha for x >= xmin.
  double Pareto(double xmin, double alpha);

  /// Beta(a, b) via Johnk/gamma method. Requires a > 0, b > 0.
  double Beta(double a, double b);

  /// Gamma(shape k > 0, scale theta > 0), Marsaglia-Tsang method.
  double Gamma(double k, double theta);

  /// Poisson with mean `lambda` >= 0 (Knuth for small, PTRS-style normal
  /// approximation with rounding for large lambda).
  uint64_t Poisson(double lambda);

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  /// Non-positive weights are treated as zero. Returns 0 if all weights
  /// are zero. Linear scan; use AliasTable for hot loops.
  size_t Discrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent generator. Deterministic: the i-th Split()
  /// of an Rng seeded with s always yields the same stream.
  Rng Split();

 private:
  uint64_t s_[4];
};

/// O(1) sampling from a fixed discrete distribution (Vose alias method).
///
/// Build once from weights, then Sample() costs one uniform draw and one
/// table lookup. Used on the simulator's per-visit hot path.
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table. Non-positive weights are treated as zero; if all
  /// weights are zero the distribution is uniform over all indices.
  explicit AliasTable(const std::vector<double>& weights);

  /// Number of outcomes (0 for a default-constructed table).
  size_t size() const { return prob_.size(); }

  /// Draws an index in [0, size()). Requires size() > 0.
  size_t Sample(Rng* rng) const;

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace qrank

#endif  // QRANK_COMMON_RNG_H_
