#include "common/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace qrank {

namespace {

Mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool QRANK_GUARDED_BY(g_pool_mu);
std::atomic<int> g_default_threads{0};

/// Returns a pool with at least `workers` threads. The pool is grown by
/// replacement, which is safe because every ParallelFor call blocks until
/// its blocks finish — there is never outstanding work across calls.
ThreadPool& PoolWithAtLeast(unsigned workers) {
  MutexLock lock(&g_pool_mu);
  if (!g_pool || g_pool->num_threads() < workers) {
    g_pool = std::make_unique<ThreadPool>(workers);
  }
  return *g_pool;
}

}  // namespace

void SetDefaultThreads(int n) { g_default_threads.store(n); }

int DefaultThreads() {
  int n = g_default_threads.load();
  return n > 0 ? n : static_cast<int>(ThreadPool::HardwareConcurrency());
}

int ResolveThreads(int requested) {
  return requested > 0 ? requested : DefaultThreads();
}

size_t NumBlocks(size_t n, size_t grain) {
  if (grain == 0) grain = 1;
  return (n + grain - 1) / grain;
}

std::vector<size_t> UniformBoundaries(size_t n, size_t grain) {
  if (grain == 0) grain = 1;
  const size_t blocks = NumBlocks(n, grain);
  std::vector<size_t> bounds(blocks + 1, n);
  for (size_t b = 0; b < blocks; ++b) bounds[b] = b * grain;
  bounds[blocks] = n;
  return bounds;
}

std::vector<size_t> WeightBalancedBoundaries(const std::vector<size_t>& prefix,
                                             size_t num_blocks) {
  const size_t n = prefix.empty() ? 0 : prefix.size() - 1;
  if (num_blocks == 0) num_blocks = 1;
  std::vector<size_t> bounds(num_blocks + 1, n);
  bounds[0] = 0;
  const size_t total = n == 0 ? 0 : prefix[n];
  for (size_t b = 1; b < num_blocks; ++b) {
    const size_t target = (b * total + num_blocks - 1) / num_blocks;
    const auto it =
        std::lower_bound(prefix.begin(), prefix.end(), target);
    const size_t i = static_cast<size_t>(it - prefix.begin());
    // lower_bound over a monotone prefix with increasing targets is
    // already monotone; the max guards degenerate (all-zero) weights.
    bounds[b] = std::max(std::min(i, n), bounds[b - 1]);
  }
  bounds[num_blocks] = n;
  return bounds;
}

namespace parallel_internal {

namespace {

/// Shared state of one blocking fan-out: helpers and the caller claim
/// block indices from `next`; `finished` counts completed blocks so the
/// caller can wait for stragglers still running on pool workers.
struct BlockRun {
  const std::function<void(size_t)>* run_block = nullptr;
  size_t num_blocks = 0;
  std::atomic<size_t> next{0};
  std::atomic<size_t> finished{0};
  Mutex mu;
  CondVar done_cv;
  std::exception_ptr error QRANK_GUARDED_BY(mu);  // first exception

  void Work() {
    for (;;) {
      size_t b = next.fetch_add(1);
      if (b >= num_blocks) return;
      try {
        (*run_block)(b);
      } catch (...) {
        MutexLock lock(&mu);
        if (!error) error = std::current_exception();
      }
      if (finished.fetch_add(1) + 1 == num_blocks) {
        MutexLock lock(&mu);
        done_cv.NotifyAll();
      }
    }
  }
};

}  // namespace

void RunBlocks(size_t num_blocks, const std::function<void(size_t)>& run_block,
               int num_threads) {
  if (num_blocks == 0) return;
  int threads = num_threads > 0 ? num_threads : DefaultThreads();
  if (threads <= 1 || num_blocks == 1) {
    for (size_t b = 0; b < num_blocks; ++b) run_block(b);
    return;
  }

  auto run = std::make_shared<BlockRun>();
  run->run_block = &run_block;
  run->num_blocks = num_blocks;

  size_t helpers = static_cast<size_t>(threads - 1);
  if (helpers > num_blocks - 1) helpers = num_blocks - 1;
  ThreadPool& pool = PoolWithAtLeast(static_cast<unsigned>(helpers));
  for (size_t i = 0; i < helpers; ++i) {
    // Each helper holds a shared_ptr so a task that outlives the caller's
    // wait (it never does, but the pool queue may outlive claim attempts)
    // stays memory-safe.
    pool.Post([run] { run->Work(); });
  }

  run->Work();  // the calling thread always participates

  {
    MutexLock lock(&run->mu);
    while (run->finished.load() != run->num_blocks) {
      run->done_cv.Wait(&run->mu);
    }
    if (run->error) std::rethrow_exception(run->error);
  }
}

double TreeReduce(std::vector<double>* partials) {
  return TreeReduceRange(partials->data(), partials->size());
}

double TreeReduceRange(double* partials, size_t count) {
  if (count == 0) return 0.0;
  for (size_t width = 1; width < count; width *= 2) {
    for (size_t i = 0; i + width < count; i += 2 * width) {
      partials[i] += partials[i + width];
    }
  }
  return partials[0];
}

}  // namespace parallel_internal
}  // namespace qrank
