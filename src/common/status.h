// Status and Result<T>: exception-free error propagation for qrank.
//
// Every fallible public API in qrank returns either a Status (no payload)
// or a Result<T> (payload or error), following the RocksDB/Arrow idiom.
// Exceptions never cross a qrank library boundary.

#ifndef QRANK_COMMON_STATUS_H_
#define QRANK_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"

namespace qrank {

/// Machine-inspectable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kIOError = 6,
  kCorruption = 7,
  kNotConverged = 8,
  kNotSupported = 9,
  kInternal = 10,
};

/// Returns a stable human-readable name for a StatusCode (e.g. "NotFound").
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the
/// message is only allocated on the error path).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T or the Status explaining why it is absent.
///
/// Usage:
///   Result<CsrGraph> r = CsrGraph::FromEdges(...);
///   if (!r.ok()) return r.status();
///   CsrGraph g = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit from value: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::NotFound(...);`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    QRANK_DCHECK(!status_.ok())
        << "Result constructed from OK status without value";
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Asserts in debug builds.
  const T& value() const& {
    QRANK_DCHECK(ok());
    return *value_;
  }
  T& value() & {
    QRANK_DCHECK(ok());
    return *value_;
  }
  T&& value() && {
    QRANK_DCHECK(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds.
};

// Propagate a non-OK Status from an expression to the caller.
#define QRANK_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::qrank::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

// Bind `lhs` to the value of a Result expression, or propagate its error.
#define QRANK_ASSIGN_OR_RETURN(lhs, rexpr)          \
  QRANK_ASSIGN_OR_RETURN_IMPL_(                     \
      QRANK_STATUS_CONCAT_(_qrank_result_, __LINE__), lhs, rexpr)

#define QRANK_STATUS_CONCAT_INNER_(x, y) x##y
#define QRANK_STATUS_CONCAT_(x, y) QRANK_STATUS_CONCAT_INNER_(x, y)
#define QRANK_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                 \
  if (!result.ok()) return result.status();              \
  lhs = std::move(result).value()

}  // namespace qrank

#endif  // QRANK_COMMON_STATUS_H_
