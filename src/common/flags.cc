#include "common/flags.h"

#include <cstdlib>

namespace qrank {

FlagParser::FlagParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty() || body[0] == '-') {
      status_ = Status::InvalidArgument("malformed flag: " + arg);
      continue;
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // --name value, unless the next token is itself a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  std::string fallback) {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  used_[name] = true;
  return it->second;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t fallback) {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  used_[name] = true;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    status_ = Status::InvalidArgument("flag --" + name +
                                      " expects an integer, got '" +
                                      it->second + "'");
    return fallback;
  }
  return static_cast<int64_t>(v);
}

double FlagParser::GetDouble(const std::string& name, double fallback) {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  used_[name] = true;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    status_ = Status::InvalidArgument("flag --" + name +
                                      " expects a number, got '" +
                                      it->second + "'");
    return fallback;
  }
  return v;
}

bool FlagParser::GetBool(const std::string& name, bool fallback) {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  used_[name] = true;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  status_ = Status::InvalidArgument("flag --" + name +
                                    " expects a boolean, got '" + v + "'");
  return fallback;
}

std::vector<std::string> FlagParser::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (used_.count(name) == 0) unused.push_back(name);
  }
  return unused;
}

}  // namespace qrank
