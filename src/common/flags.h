// Minimal command-line flag parsing for the bench and example binaries
// (--name=value or --name value). Deliberately tiny: typed getters with
// defaults, unknown-flag detection, no registration step.

#ifndef QRANK_COMMON_FLAGS_H_
#define QRANK_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace qrank {

class FlagParser {
 public:
  /// Parses argv. Flags look like --name=value or --name value; a flag
  /// without a value is treated as boolean "true". Non-flag arguments
  /// are collected as positional. Malformed input (e.g. "---x") sets a
  /// parse error retrievable via status().
  FlagParser(int argc, const char* const* argv);

  const Status& status() const { return status_; }

  bool Has(const std::string& name) const;

  /// Typed getters; return `fallback` when the flag is absent, and set
  /// a sticky error status when present but unparsable.
  std::string GetString(const std::string& name, std::string fallback);
  int64_t GetInt(const std::string& name, int64_t fallback);
  double GetDouble(const std::string& name, double fallback);
  bool GetBool(const std::string& name, bool fallback);

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags present on the command line that were never queried by any
  /// getter — typically typos. Call after all getters.
  std::vector<std::string> UnusedFlags() const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
  Status status_;
};

}  // namespace qrank

#endif  // QRANK_COMMON_FLAGS_H_
