#include "common/rng.h"

#include "common/logging.h"

#include <cmath>

namespace qrank {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

constexpr double kTwoPi = 6.283185307179586476925286766559;

}  // namespace

uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64Next(&sm);
  // xoshiro must not start in the all-zero state; SplitMix64 cannot emit
  // four consecutive zeros, so this is already guaranteed, but be safe.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  QRANK_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  QRANK_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  return mean + stddev * z;
}

double Rng::Exponential(double lambda) {
  QRANK_DCHECK(lambda > 0.0);
  return -std::log(1.0 - UniformDouble()) / lambda;
}

double Rng::Pareto(double xmin, double alpha) {
  QRANK_DCHECK(xmin > 0.0 && alpha > 0.0);
  return xmin / std::pow(1.0 - UniformDouble(), 1.0 / alpha);
}

double Rng::Gamma(double k, double theta) {
  QRANK_DCHECK(k > 0.0 && theta > 0.0);
  // Marsaglia-Tsang; boost k < 1 via the U^(1/k) trick.
  if (k < 1.0) {
    double u = 1.0 - UniformDouble();  // (0, 1]
    return Gamma(k + 1.0, theta) * std::pow(u, 1.0 / k);
  }
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = 1.0 - UniformDouble();  // (0, 1]
    if (std::log(u) < 0.5 * x * x + d - d * v + d * std::log(v)) {
      return d * v * theta;
    }
  }
}

double Rng::Beta(double a, double b) {
  QRANK_DCHECK(a > 0.0 && b > 0.0);
  double x = Gamma(a, 1.0);
  double y = Gamma(b, 1.0);
  double sum = x + y;
  if (sum <= 0.0) return 0.5;  // numerically degenerate; both ~0
  return x / sum;
}

uint64_t Rng::Poisson(double lambda) {
  QRANK_DCHECK(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-lambda);
    uint64_t k = 0;
    double prod = UniformDouble();
    while (prod > limit) {
      ++k;
      prod *= UniformDouble();
    }
    return k;
  }
  // Normal approximation with continuity correction; adequate for the
  // simulator's aggregate arrival counts (error O(1/sqrt(lambda))).
  double x = Normal(lambda, std::sqrt(lambda));
  if (x < 0.0) return 0;
  return static_cast<uint64_t>(x + 0.5);
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return 0;
  double target = UniformDouble() * total;
  double cum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0.0) {
      cum += weights[i];
      if (target < cum) return i;
    }
  }
  return weights.size() - 1;  // floating-point slack on the last bucket
}

Rng Rng::Split() {
  // Derive a child seed from two outputs; streams are independent for
  // practical purposes (distinct SplitMix64 expansions).
  uint64_t a = NextUint64();
  uint64_t b = NextUint64();
  return Rng(a ^ Rotl(b, 32) ^ 0x6a09e667f3bcc909ULL);
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t n = weights.size();
  prob_.assign(n, 1.0);
  alias_.assign(n, 0);
  if (n == 0) return;

  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }

  std::vector<double> scaled(n, 1.0);
  if (total > 0.0) {
    for (size_t i = 0; i < n; ++i) {
      scaled[i] = (weights[i] > 0.0 ? weights[i] : 0.0) * n / total;
    }
  }

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Remaining entries have probability 1 (already initialized).
  for (uint32_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (uint32_t i : small) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

size_t AliasTable::Sample(Rng* rng) const {
  QRANK_DCHECK(!prob_.empty());
  size_t i = static_cast<size_t>(rng->UniformUint64(prob_.size()));
  return rng->UniformDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace qrank
