// Runtime SIMD capability detection.
//
// The repo builds ISA-specific translation units (see src/rank/
// pagerank_kernel_avx2.cc / _avx512.cc) only when the compiler supports
// the flags and the target is x86_64; whether those units actually run
// is decided per process by this shim. Detection is a one-time CPUID
// probe (GCC/Clang __builtin_cpu_supports) cached in a static, so the
// hot paths pay one predictable load. Non-x86 builds and compilers
// without the builtin report kScalar.
//
// QRANK_FORCE_SIMD_LEVEL (env var: "scalar" | "avx2" | "avx512") caps
// the detected level below the hardware's — never above — so the
// equivalence tests and benches can pin a variant on any machine.

#ifndef QRANK_COMMON_SIMD_H_
#define QRANK_COMMON_SIMD_H_

#include <cstdint>
#include <string>

namespace qrank {

/// The dispatch tiers the pull-sweep kernel knows about. Order is
/// meaningful: higher enumerators strictly include the lower ISAs.
enum class SimdLevel : uint8_t {
  kScalar = 0,
  kAvx2 = 1,    // AVX2 (4x double gather lanes)
  kAvx512 = 2,  // AVX-512F + VL (8x double gather lanes, masked tails)
};

/// Highest level this process may use: min(hardware support, compiled
/// support, QRANK_FORCE_SIMD_LEVEL cap). Cached after the first call;
/// thread-safe.
SimdLevel DetectSimdLevel();

/// Raw hardware capability, ignoring the env cap and what this binary
/// was compiled with. For reporting (bench host context), not dispatch.
SimdLevel HardwareSimdLevel();

/// "scalar" | "avx2" | "avx512".
const char* SimdLevelName(SimdLevel level);

/// Parses the names above. Returns false on unknown input.
bool ParseSimdLevel(const std::string& text, SimdLevel* out);

/// Human-readable ISA feature summary for bench JSON host stamping,
/// e.g. "avx2+avx512f+avx512vl" or "none". Reports hardware features,
/// independent of build flags.
std::string SimdFeatureString();

/// True when this binary carries the code path for `level` (compile-time
/// QRANK_HAVE_AVX2 / QRANK_HAVE_AVX512 gating in src/rank).
bool SimdLevelCompiled(SimdLevel level);

}  // namespace qrank

#endif  // QRANK_COMMON_SIMD_H_
