// Summary statistics, histograms and rank-correlation measures used by
// the evaluation harness (Section 8 of the paper) and the benchmarks.

#ifndef QRANK_COMMON_STATS_H_
#define QRANK_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace qrank {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when count < 2).
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile of `values` (linear interpolation between order
/// statistics). `q` in [0, 1]. Copies and sorts; fine for evaluation-size
/// data. Returns InvalidArgument for empty input or q outside [0, 1].
Result<double> Quantile(std::vector<double> values, double q);

/// Arithmetic mean; InvalidArgument on empty input.
Result<double> Mean(const std::vector<double>& values);

/// Fixed-width histogram over [lo, hi) with an overflow bin, mirroring
/// Figure 5 of the paper ("when the error was larger than 1, we put them
/// into the last bin").
///
/// With num_bins = 10, lo = 0, hi = 1: bins are [0,0.1), [0.1,0.2), ...,
/// [0.9,1.0), plus the final bin holding everything >= 1.0. Values below
/// `lo` clamp into the first bin.
class Histogram {
 public:
  /// Requires num_bins >= 1 and lo < hi.
  Histogram(size_t num_bins, double lo, double hi);

  void Add(double x);
  void AddAll(const std::vector<double>& xs);

  /// Number of regular bins (excludes the overflow bin).
  size_t num_bins() const { return counts_.size() - 1; }
  /// counts()[num_bins()] is the overflow bin.
  const std::vector<uint64_t>& counts() const { return counts_; }
  uint64_t total() const { return total_; }

  /// Fraction of samples in bin `i` (0 when empty). `i` may address the
  /// overflow bin (i == num_bins()).
  double Fraction(size_t i) const;

  /// Inclusive lower edge of bin `i`.
  double BinLower(size_t i) const;
  /// Exclusive upper edge of bin `i` (infinity for the overflow bin).
  double BinUpper(size_t i) const;

  /// Fraction of samples with value < x (bin-resolution, not interpolated).
  double CumulativeFractionBelow(double x) const;

  /// Multi-line ASCII rendering with one row per bin and a bar whose
  /// length is proportional to the bin fraction. `label` titles the chart.
  std::string ToAscii(const std::string& label, size_t bar_width = 50) const;

 private:
  size_t BinIndex(double x) const;

  double lo_;
  double width_;
  std::vector<uint64_t> counts_;  // num_bins + 1 (overflow)
  uint64_t total_ = 0;
};

/// Spearman rank correlation of paired samples. Tied values receive the
/// average of their rank range. Returns InvalidArgument when sizes differ
/// or fewer than 2 pairs, FailedPrecondition when either side is constant.
Result<double> SpearmanCorrelation(const std::vector<double>& a,
                                   const std::vector<double>& b);

/// Kendall tau-b of paired samples (O(n^2); evaluation-size inputs only).
Result<double> KendallTau(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Pearson linear correlation.
Result<double> PearsonCorrelation(const std::vector<double>& a,
                                  const std::vector<double>& b);

/// Fractional ranks of `values` (1-based, ties averaged), as used by
/// SpearmanCorrelation.
std::vector<double> FractionalRanks(const std::vector<double>& values);

/// Least-squares fit of log(y) = intercept + slope * log(x) over pairs with
/// x > 0 and y > 0; used for power-law degree-distribution fits
/// (the paper cites [3, 6] for in/out-degree power laws).
struct PowerLawFit {
  double exponent = 0.0;   // slope of the log-log fit
  double intercept = 0.0;  // log-space intercept
  double r_squared = 0.0;
  size_t points_used = 0;
};
Result<PowerLawFit> FitPowerLaw(const std::vector<double>& x,
                                const std::vector<double>& y);

}  // namespace qrank

#endif  // QRANK_COMMON_STATS_H_
