#include "common/logging.h"

#include <atomic>

namespace qrank {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

bool LogLevelEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_log_level.load(std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename to keep lines short.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
}

CheckFailure::CheckFailure(const char* condition, const char* file,
                           int line) {
  stream_ << "QRANK_CHECK failed at " << file << ":" << line << ": "
          << condition;
}

CheckFailure::~CheckFailure() {
  // Streamed context (if any) was appended after the banner; flush the
  // whole line atomically before aborting.
  stream_ << "\n";
  std::cerr << stream_.str() << std::flush;
  std::abort();
}

}  // namespace internal
}  // namespace qrank
