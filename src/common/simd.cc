#include "common/simd.h"

#include <cstdlib>

namespace qrank {
namespace {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define QRANK_SIMD_CAN_PROBE 1
#else
#define QRANK_SIMD_CAN_PROBE 0
#endif

SimdLevel ProbeHardware() {
#if QRANK_SIMD_CAN_PROBE
  // avx512vl is required alongside avx512f: the kernel's masked tail
  // loads use 256-bit VL forms.
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512vl")) {
    return SimdLevel::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

SimdLevel EnvCap() {
  const char* force = std::getenv("QRANK_FORCE_SIMD_LEVEL");
  if (force == nullptr) return SimdLevel::kAvx512;  // no cap
  SimdLevel parsed;
  if (ParseSimdLevel(force, &parsed)) return parsed;
  return SimdLevel::kAvx512;  // unknown value: ignore, never escalate
}

SimdLevel ComputeDetected() {
  SimdLevel level = ProbeHardware();
  const SimdLevel cap = EnvCap();
  if (cap < level) level = cap;
  while (level != SimdLevel::kScalar && !SimdLevelCompiled(level)) {
    level = static_cast<SimdLevel>(static_cast<uint8_t>(level) - 1);
  }
  return level;
}

}  // namespace

SimdLevel HardwareSimdLevel() {
  static const SimdLevel level = ProbeHardware();
  return level;
}

SimdLevel DetectSimdLevel() {
  static const SimdLevel level = ComputeDetected();
  return level;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "scalar";
}

bool ParseSimdLevel(const std::string& text, SimdLevel* out) {
  if (text == "scalar") {
    *out = SimdLevel::kScalar;
  } else if (text == "avx2") {
    *out = SimdLevel::kAvx2;
  } else if (text == "avx512") {
    *out = SimdLevel::kAvx512;
  } else {
    return false;
  }
  return true;
}

std::string SimdFeatureString() {
  std::string features;
#if QRANK_SIMD_CAN_PROBE
  const auto append = [&features](const char* name) {
    if (!features.empty()) features += '+';
    features += name;
  };
  if (__builtin_cpu_supports("avx2")) append("avx2");
  if (__builtin_cpu_supports("avx512f")) append("avx512f");
  if (__builtin_cpu_supports("avx512vl")) append("avx512vl");
  if (__builtin_cpu_supports("avx512dq")) append("avx512dq");
  if (__builtin_cpu_supports("avx512bw")) append("avx512bw");
#endif
  if (features.empty()) features = "none";
  return features;
}

bool SimdLevelCompiled(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
#if defined(QRANK_HAVE_AVX2)
      return true;
#else
      return false;
#endif
    case SimdLevel::kAvx512:
#if defined(QRANK_HAVE_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

}  // namespace qrank
