// Compile-time lock-discipline contracts: Clang thread-safety
// annotations plus the annotated mutex/condvar wrappers the rest of the
// tree is required to use.
//
// The concurrency files (thread_pool, parallel_for, update_queue,
// ingest_service, snapshot_store) carry mutex disciplines that used to
// live in comments and TSan runs. TSan only catches a violation on an
// interleaving a test actually exercises; Clang's -Wthread-safety
// analysis proves the discipline on every path at compile time. This
// header supplies the vocabulary:
//
//  * QRANK_GUARDED_BY(mu)   — field may only be touched with mu held.
//  * QRANK_REQUIRES(mu)     — function may only be called with mu held.
//  * QRANK_EXCLUDES(mu)     — function must NOT be called with mu held
//                             (it takes mu itself).
//  * QRANK_ACQUIRE/RELEASE  — function acquires / releases mu.
//
// Under GCC (the default toolchain) every macro expands to nothing and
// qrank::Mutex compiles to exactly a std::mutex — zero size or runtime
// cost. Under Clang with -DQRANK_THREAD_SAFETY=ON (the CI
// static-analysis job) the annotations become attributes and a
// discipline violation is a hard build error via -Werror=thread-safety.
//
// std::mutex / std::lock_guard / std::condition_variable carry no
// attributes in libstdc++, so the analysis cannot see through them;
// hence the wrappers below. qrank_lint rule `naked-mutex` bans the raw
// std types outside this header so new code cannot silently opt out.

#ifndef QRANK_COMMON_THREAD_ANNOTATIONS_H_
#define QRANK_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define QRANK_TS_ATTRIBUTE__(x) __attribute__((x))
#else
#define QRANK_TS_ATTRIBUTE__(x)  // no-op under GCC/MSVC
#endif

#define QRANK_CAPABILITY(x) QRANK_TS_ATTRIBUTE__(capability(x))
#define QRANK_SCOPED_CAPABILITY QRANK_TS_ATTRIBUTE__(scoped_lockable)
#define QRANK_GUARDED_BY(x) QRANK_TS_ATTRIBUTE__(guarded_by(x))
#define QRANK_PT_GUARDED_BY(x) QRANK_TS_ATTRIBUTE__(pt_guarded_by(x))
#define QRANK_REQUIRES(...) \
  QRANK_TS_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define QRANK_ACQUIRE(...) \
  QRANK_TS_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define QRANK_RELEASE(...) \
  QRANK_TS_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define QRANK_TRY_ACQUIRE(...) \
  QRANK_TS_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define QRANK_EXCLUDES(...) QRANK_TS_ATTRIBUTE__(locks_excluded(__VA_ARGS__))
#define QRANK_ASSERT_CAPABILITY(x) \
  QRANK_TS_ATTRIBUTE__(assert_capability(x))
#define QRANK_RETURN_CAPABILITY(x) QRANK_TS_ATTRIBUTE__(lock_returned(x))
#define QRANK_NO_THREAD_SAFETY_ANALYSIS \
  QRANK_TS_ATTRIBUTE__(no_thread_safety_analysis)

namespace qrank {

/// Annotated exclusive mutex: a std::mutex the thread-safety analysis
/// can reason about. Same size, same cost — the capability attribute is
/// compile-time only.
class QRANK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() QRANK_ACQUIRE() { mu_.lock(); }
  void Unlock() QRANK_RELEASE() { mu_.unlock(); }
  bool TryLock() QRANK_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for the scope-shaped 95% of call sites.
///
///   MutexLock lock(&mu_);   // acquires; releases at end of scope
class QRANK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) QRANK_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() QRANK_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII lock with an early-release escape hatch, for the
/// "mutate-under-lock, notify-outside-lock" condvar idiom:
///
///   ReleasableMutexLock lock(&mu_);
///   events_.push_back(event);
///   lock.Release();
///   not_empty_.NotifyOne();
class QRANK_SCOPED_CAPABILITY ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex* mu) QRANK_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~ReleasableMutexLock() QRANK_RELEASE() {
    if (held_) mu_->Unlock();
  }

  /// Releases the mutex now instead of at scope end. Must be held.
  void Release() QRANK_RELEASE() {
    held_ = false;
    mu_->Unlock();
  }

  ReleasableMutexLock(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock& operator=(const ReleasableMutexLock&) = delete;

 private:
  Mutex* const mu_;
  bool held_ = true;
};

/// Condition variable bound to qrank::Mutex. Thin shim over
/// std::condition_variable (NOT condition_variable_any: the adopt/
/// release dance below keeps the fast native futex path), with the
/// "caller must hold the mutex" precondition expressed as
/// QRANK_REQUIRES so the analysis enforces it at every wait site.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu and blocks; reacquires before returning.
  /// Spurious wakeups happen — wait sites loop on their condition:
  ///
  ///   MutexLock lock(&mu_);
  ///   while (!ready_) cv_.Wait(&mu_);
  ///
  /// (Explicit loops instead of predicate-lambda overloads: a lambda
  /// body that touches guarded fields would itself need a thread-safety
  /// attribute, and the loop form keeps every guarded access inside the
  /// analyzed function.)
  void Wait(Mutex* mu) QRANK_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scope
  }

  /// Wait with a deadline; returns true iff the deadline passed (the
  /// condition may still have become true — re-check it either way).
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex* mu, std::chrono::time_point<Clock, Duration> deadline)
      QRANK_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const bool timed_out =
        cv_.wait_until(lock, deadline) == std::cv_status::timeout;
    lock.release();
    return timed_out;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace qrank

#endif  // QRANK_COMMON_THREAD_ANNOTATIONS_H_
