// Bounded multi-producer update queue: the front door of the continuous
// ingest pipeline.
//
// The paper's central complaint is that rankings are computed from stale
// snapshots; the ingest subsystem (src/ingest/) closes the gap by
// turning edge and visit events into servable score-bundle generations
// continuously. UpdateQueue is the arrival edge of that loop: crawler /
// frontend threads Push edge-add, edge-remove and visit events; the
// IngestService consumer drains them in batches. Every accepted event is
// stamped with a strictly increasing sequence number and its enqueue
// time — the sequence is what the no-lost-updates contract is audited
// against, and the timestamp is where the update-to-servable latency
// measurement starts.
//
// The queue is bounded. When full, the configured BackpressurePolicy
// decides: kBlock parks the producer until the consumer frees space
// (ingest cannot silently fall behind), kReject fails the Push with
// OutOfRange and counts it (callers that prefer load-shedding). Close()
// wakes every parked producer and consumer; pushes after Close fail
// FailedPrecondition while pops keep draining whatever is queued, so a
// shutdown with a non-empty queue loses nothing.
//
// Thread model: any number of producers and consumers (mutex + two
// condition variables; MPMC-safe, used MPSC by IngestService). Counter
// conservation (depth == enqueued - dequeued <= capacity) is checkable
// with the ingest.queue audit validator.

#ifndef QRANK_INGEST_UPDATE_QUEUE_H_
#define QRANK_INGEST_UPDATE_QUEUE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "graph/edge_list.h"

namespace qrank {

/// What happened out there on the web.
enum class UpdateKind : uint8_t {
  kAddEdge = 0,     // page src gained a link to page dst
  kRemoveEdge = 1,  // page src lost its link to page dst
  kVisit = 2,       // a user visited page src (dst unused)
};

const char* UpdateKindName(UpdateKind kind);

struct UpdateEvent {
  UpdateKind kind = UpdateKind::kAddEdge;
  NodeId src = 0;
  NodeId dst = 0;

  /// Assigned by the queue when the push is accepted: 1-based, strictly
  /// increasing across all producers. 0 = not yet enqueued.
  uint64_t sequence = 0;
  /// Assigned by the queue when the push is accepted; the update-to-
  /// servable latency clock starts here.
  std::chrono::steady_clock::time_point enqueue_time{};

  static UpdateEvent AddEdge(NodeId src, NodeId dst) {
    return {UpdateKind::kAddEdge, src, dst, 0, {}};
  }
  static UpdateEvent RemoveEdge(NodeId src, NodeId dst) {
    return {UpdateKind::kRemoveEdge, src, dst, 0, {}};
  }
  static UpdateEvent Visit(NodeId page) {
    return {UpdateKind::kVisit, page, 0, 0, {}};
  }
};

/// What Push does when the queue is at capacity.
enum class BackpressurePolicy {
  kBlock,   // wait for space (or for Close)
  kReject,  // fail with OutOfRange and count the rejection
};

struct UpdateQueueOptions {
  size_t capacity = 1 << 16;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
};

/// Monotonic counters; conservation (depth == enqueued - dequeued,
/// depth <= capacity) is what the ingest.queue audit validator checks.
struct UpdateQueueStats {
  uint64_t capacity = 0;
  uint64_t depth = 0;      // events currently queued
  uint64_t enqueued = 0;   // accepted pushes
  uint64_t dequeued = 0;   // events handed to consumers
  uint64_t rejected = 0;   // kReject pushes refused at capacity
  uint64_t max_depth = 0;  // high-water mark
  bool closed = false;
};

class UpdateQueue {
 public:
  explicit UpdateQueue(UpdateQueueOptions options = {});
  UpdateQueue(const UpdateQueue&) = delete;
  UpdateQueue& operator=(const UpdateQueue&) = delete;

  /// Enqueues `event`, assigning its sequence and enqueue_time. At
  /// capacity: blocks (kBlock) or returns OutOfRange (kReject). After
  /// Close — including producers woken from a blocked Push by Close —
  /// returns FailedPrecondition.
  Status Push(UpdateEvent event);

  /// Pops up to `max_events` events, appending to `*out` in sequence
  /// order. Blocks up to `wait` for the first event; returns the number
  /// popped (0 on timeout, or when the queue is closed and drained —
  /// distinguish via closed()/depth()).
  size_t PopBatch(size_t max_events, std::chrono::nanoseconds wait,
                  std::vector<UpdateEvent>* out);

  /// Closes the queue: wakes every blocked producer (their Push fails)
  /// and consumer. Queued events remain poppable; a shutdown with a
  /// non-empty queue is drained, not dropped. Idempotent.
  void Close();

  bool closed() const;
  size_t depth() const;
  UpdateQueueStats Stats() const;

 private:
  const UpdateQueueOptions options_;

  mutable Mutex mu_;
  CondVar not_full_;   // producers park here (kBlock)
  CondVar not_empty_;  // consumers park here
  std::deque<UpdateEvent> events_ QRANK_GUARDED_BY(mu_);
  uint64_t enqueued_ QRANK_GUARDED_BY(mu_) = 0;
  uint64_t dequeued_ QRANK_GUARDED_BY(mu_) = 0;
  uint64_t rejected_ QRANK_GUARDED_BY(mu_) = 0;
  uint64_t max_depth_ QRANK_GUARDED_BY(mu_) = 0;
  bool closed_ QRANK_GUARDED_BY(mu_) = false;
};

}  // namespace qrank

#endif  // QRANK_INGEST_UPDATE_QUEUE_H_
