// StagePipe: the bounded, closeable handoff between pipeline stages of
// the ingest loop.
//
// The pipelined IngestService splits each generation into an apply/solve
// stage (consumer thread) and an estimate/export/publish stage (exporter
// thread). StagePipe is the double buffer between them: a FIFO of at
// most `capacity` queued items (capacity 1 = classic double buffering —
// one item queued while the downstream stage works on the previous one,
// so two generations are in flight). Push blocks while full, which is
// the backpressure that bounds how far the solve stage can run ahead of
// what is servable.
//
// Shutdown is two-sided:
//  * Close() — upstream is done. Queued items still drain; Pop returns
//    false only once the pipe is both closed and empty.
//  * Break(status) — downstream failed. Queued items are dropped, the
//    first non-OK status is kept, and both ends unblock immediately
//    (Push returns false so the producer can stop solving for a
//    publisher that is gone).
//
// Thread-safety: any number of pushers/poppers (the ingest pipeline uses
// one of each); all state is guarded by one annotated mutex.

#ifndef QRANK_INGEST_STAGE_PIPE_H_
#define QRANK_INGEST_STAGE_PIPE_H_

#include <deque>
#include <utility>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace qrank {

template <typename T>
class StagePipe {
 public:
  /// `capacity` >= 1: max items queued inside the pipe (clamped to 1).
  explicit StagePipe(size_t capacity) : capacity_(capacity < 1 ? 1 : capacity) {}
  StagePipe(const StagePipe&) = delete;
  StagePipe& operator=(const StagePipe&) = delete;

  /// Blocks while the pipe is full. True iff the item was accepted;
  /// false once the pipe is closed or broken (the item is dropped —
  /// nothing downstream would consume it).
  bool Push(T item) QRANK_EXCLUDES(mu_) {
    ReleasableMutexLock lock(&mu_);
    while (items_.size() >= capacity_ && !closed_ && !broken_) {
      not_full_.Wait(&mu_);
    }
    if (closed_ || broken_) return false;
    items_.push_back(std::move(item));
    lock.Release();
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks while empty and open. True iff an item was produced; false
  /// once the pipe is broken, or closed with nothing left to drain.
  bool Pop(T* out) QRANK_EXCLUDES(mu_) {
    ReleasableMutexLock lock(&mu_);
    while (items_.empty() && !closed_ && !broken_) {
      not_empty_.Wait(&mu_);
    }
    if (broken_ || items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.Release();
    not_full_.NotifyOne();
    return true;
  }

  /// Upstream is done: no more pushes; queued items still drain.
  void Close() QRANK_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  /// Downstream failed: record the first non-OK status, drop queued
  /// items, and unblock both ends.
  void Break(Status status) QRANK_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      broken_ = true;
      if (status_.ok() && !status.ok()) status_ = std::move(status);
      items_.clear();
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  /// The Break status (OK while unbroken).
  Status status() const QRANK_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return status_;
  }

  size_t depth() const QRANK_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return items_.size();
  }
  bool closed() const QRANK_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return closed_;
  }
  bool broken() const QRANK_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return broken_;
  }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_full_;   // signaled on pop/close/break
  CondVar not_empty_;  // signaled on push/close/break
  std::deque<T> items_ QRANK_GUARDED_BY(mu_);
  bool closed_ QRANK_GUARDED_BY(mu_) = false;
  bool broken_ QRANK_GUARDED_BY(mu_) = false;
  Status status_ QRANK_GUARDED_BY(mu_);
};

}  // namespace qrank

#endif  // QRANK_INGEST_STAGE_PIPE_H_
