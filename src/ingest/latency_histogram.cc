#include "ingest/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace qrank {

int LatencyHistogram::BucketIndex(uint64_t nanos) {
  if (nanos < kSubBuckets) return static_cast<int>(nanos);
  // Group g holds [2^(g+kSubBits-1), 2^(g+kSubBits)); the top kSubBits
  // bits below the leading bit pick the linear sub-bucket.
  const int msb = 63 - std::countl_zero(nanos);  // nanos >= 16 here
  const int group = msb - kSubBits + 1;
  const int sub =
      static_cast<int>((nanos >> (msb - kSubBits)) & (kSubBuckets - 1));
  const int index = group * kSubBuckets + sub;
  return std::min(index, kNumBuckets - 1);
}

double LatencyHistogram::BucketUpper(int index) {
  const int group = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  if (group == 0) return static_cast<double>(sub + 1);
  const double base = std::ldexp(1.0, group + kSubBits - 1);  // 2^(g+3)
  const double width = base / kSubBuckets;
  return base + width * (sub + 1);
}

void LatencyHistogram::AddNanos(uint64_t nanos) {
  ++counts_[BucketIndex(nanos)];
  ++count_;
  sum_nanos_ += static_cast<double>(nanos);
  max_nanos_ = std::max(max_nanos_, static_cast<double>(nanos));
}

double LatencyHistogram::PercentileNanos(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th order statistic (1-based, nearest-rank method).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(count_) + 0.5));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      return std::min(BucketUpper(i), max_nanos_);
    }
  }
  return max_nanos_;
}

std::string LatencyHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu p50=%.3fms p90=%.3fms p99=%.3fms max=%.3fms",
                static_cast<unsigned long long>(count_),
                PercentileNanos(0.50) * 1e-6, PercentileNanos(0.90) * 1e-6,
                PercentileNanos(0.99) * 1e-6, max_nanos_ * 1e-6);
  return std::string(buf);
}

}  // namespace qrank
