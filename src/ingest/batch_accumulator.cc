#include "ingest/batch_accumulator.h"

#include <algorithm>

namespace qrank {

namespace {

uint64_t EdgeKey(NodeId src, NodeId dst) {
  return (static_cast<uint64_t>(src) << 32) | static_cast<uint64_t>(dst);
}

}  // namespace

BatchAccumulator::BatchAccumulator(BatchPolicy policy) : policy_(policy) {}

void BatchAccumulator::Absorb(const UpdateEvent& event) {
  if (num_events_ == 0 || event.sequence < first_sequence_) {
    first_sequence_ = event.sequence;
  }
  last_sequence_ = std::max(last_sequence_, event.sequence);
  if (num_events_ == 0 || event.enqueue_time < oldest_enqueue_) {
    oldest_enqueue_ = event.enqueue_time;
  }
  ++num_events_;
  enqueue_times_.push_back(event.enqueue_time);

  switch (event.kind) {
    case UpdateKind::kVisit:
      ++num_visits_;
      visit_counts_[event.src] += 1;
      return;
    case UpdateKind::kAddEdge:
      ++num_adds_;
      break;
    case UpdateKind::kRemoveEdge:
      ++num_removes_;
      break;
  }
  // Self-loops carry no endorsement and are never stored in a CsrGraph;
  // the event still counts toward the batch (it is covered and its
  // latency measured) but produces no intent.
  if (event.src == event.dst) return;
  EdgeIntent& intent = edge_intents_[EdgeKey(event.src, event.dst)];
  if (intent.sequence <= event.sequence) {
    intent.sequence = event.sequence;
    intent.kind = event.kind;
  }
}

bool BatchAccumulator::ShouldFlush(
    std::chrono::steady_clock::time_point now) const {
  if (num_events_ == 0) return false;
  if (num_events_ >= policy_.max_events) return true;
  return now - oldest_enqueue_ >= policy_.max_age;
}

Result<FlushedBatch> BatchAccumulator::Flush(const CsrGraph& base) {
  if (num_events_ == 0) {
    return Status::FailedPrecondition("flush of an empty batch");
  }
  FlushedBatch batch;
  const NodeId base_nodes = base.num_nodes();
  NodeId new_nodes = base_nodes;
  for (const auto& [key, intent] : edge_intents_) {
    const NodeId src = static_cast<NodeId>(key >> 32);
    const NodeId dst = static_cast<NodeId>(key & 0xffffffffu);
    const bool in_base =
        src < base_nodes && dst < base_nodes && base.HasEdge(src, dst);
    if (intent.kind == UpdateKind::kAddEdge && !in_base) {
      batch.delta.added.push_back({src, dst});
      new_nodes = std::max(new_nodes, std::max(src, dst) + 1);
    } else if (intent.kind == UpdateKind::kRemoveEdge && in_base) {
      batch.delta.removed.push_back({src, dst});
    }
  }
  std::sort(batch.delta.added.begin(), batch.delta.added.end());
  std::sort(batch.delta.removed.begin(), batch.delta.removed.end());
  batch.delta.old_num_nodes = base_nodes;
  batch.delta.new_num_nodes = new_nodes;

  batch.visits.assign(visit_counts_.begin(), visit_counts_.end());
  std::sort(batch.visits.begin(), batch.visits.end());

  batch.first_sequence = first_sequence_;
  batch.last_sequence = last_sequence_;
  batch.num_events = num_events_;
  batch.num_adds = num_adds_;
  batch.num_removes = num_removes_;
  batch.num_visits = num_visits_;
  batch.enqueue_times = std::move(enqueue_times_);

  edge_intents_.clear();
  visit_counts_.clear();
  enqueue_times_.clear();
  first_sequence_ = last_sequence_ = 0;
  num_events_ = num_adds_ = num_removes_ = num_visits_ = 0;
  oldest_enqueue_ = {};
  return batch;
}

}  // namespace qrank
