// IngestService: the always-on freshness loop from edge arrival to
// servable TopK.
//
// The paper's estimator exists because rankings lag reality; PR 2 built
// the incremental machinery (GraphDelta + warm-started DeltaPageRank)
// and PR 5 the hot-swap serving store, but until now they only met in
// offline examples. IngestService wires them into one continuously
// running pipeline:
//
//   producers --> UpdateQueue --> BatchAccumulator --(flush)-->
//     ApplyDelta --> DeltaPageRank (warm start + dirty frontier) -->
//     quality-estimator update --> score-bundle export -->
//     SnapshotStore::PublishOrdered
//
// A background consumer thread drains the queue, coalesces events under
// the BatchPolicy's size/age bounds, and runs each flushed batch through
// the chain as ONE generation while queries keep flowing against the
// previous generation (RCU hot-swap; readers are never blocked). With
// `pipelined` (the default) the chain is split across TWO stage threads
// double-buffered through a StagePipe: the consumer runs apply + solve
// for batch N+1 while a dedicated exporter runs estimate + export +
// publish for batch N — the solve and export halves of consecutive
// generations overlap, and PublishOrdered's sequence watermark keeps
// publishes in order. Shutdown drains: Stop() closes the queue, flushes
// the backlog through the same path (the consumer then closes the pipe
// and the exporter drains it), and joins both threads — no accepted
// event is ever dropped, which the generation log proves (batches cover
// contiguous sequence ranges).
//
// Freshness bookkeeping: every event carries its enqueue timestamp;
// when the generation reflecting a batch is published, the service
// records publish_time - enqueue_time for each of its events in a
// log-linear histogram. That distribution's p99 is the update-to-
// servable latency — the bounded-staleness SLO that
// bench_perf_ingest --check_ingest_regression gates in CI.
//
// Estimator semantics: the service keeps a sliding window of the last
// `observation_window` published PageRank vectors and runs the paper's
// Equation-1 estimator over their common-page prefix (the id prefix of
// the oldest observation — ingest only grows the page set, mirroring
// SnapshotSeries' common-set convention). Pages younger than the window
// get Q̂ = PR until history accumulates. Scores inherit PR 2's
// exactness contract: DeltaPageRank converges with the same full-sweep
// stopping rule as a from-scratch solve, so the streaming scores match
// an offline rebuild of the same event stream within the documented
// drift budget (see DESIGN.md §5f and the ingest oracle test).
//
// Thread model: producers call Enqueue from any thread; Stats(),
// GenerationLog() and WaitServable() are safe from any thread; the
// compute state (graph, score window) is owned by the consumer thread —
// export jobs carry shared_ptr snapshots of the immutable observation
// vectors, never references into it — and only exposed once the service
// is stopped (CurrentGraph). Each generation's stage durations (apply,
// solve, estimate, export, publish) feed per-stage histograms surfaced
// through IngestStats.

#ifndef QRANK_INGEST_INGEST_SERVICE_H_
#define QRANK_INGEST_INGEST_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

#include "common/parallel_for.h"
#include "common/status.h"
#include "core/bundle_export.h"
#include "core/quality_estimator.h"
#include "graph/csr_graph.h"
#include "graph/site_graph.h"
#include "ingest/batch_accumulator.h"
#include "ingest/latency_histogram.h"
#include "ingest/stage_pipe.h"
#include "ingest/update_queue.h"
#include "rank/delta_pagerank.h"
#include "serve/snapshot_store.h"

namespace qrank {

/// DeltaPageRank defaults for serving: the paper's Section 8 mass-n
/// convention (what the bundle pipeline elsewhere uses).
DeltaPageRankOptions DefaultIngestRankOptions();

struct IngestOptions {
  UpdateQueueOptions queue;
  BatchPolicy batch;
  DeltaPageRankOptions rank = DefaultIngestRankOptions();
  QualityEstimatorOptions estimator;

  /// PageRank observations kept for the estimator window (>= 2). The
  /// estimator sees the newest `observation_window` generations.
  size_t observation_window = 4;

  /// Site layout of exported bundles: page p belongs to site_of(p)
  /// (< num_sites). Defaults: everything in one site 0.
  SiteId num_sites = 1;
  std::function<SiteId(NodeId)> site_of;

  /// Consumer poll granularity while idle; bounds how late an age-based
  /// flush can fire.
  std::chrono::nanoseconds poll_interval = std::chrono::milliseconds(2);

  /// Publish a generation from the initial graph during Start() (so
  /// queries never see an empty store). Skipped when the initial graph
  /// has no pages (bundles need >= 1 page).
  bool publish_initial = true;

  /// Keep a copy of the most recently published bundle image (for the
  /// qrank_ingest CLI's audit mode and tests; off for production loops).
  bool keep_last_image = false;

  /// Run the generation chain as a two-stage pipeline: apply + solve on
  /// the consumer thread, estimate + export + publish on a dedicated
  /// exporter thread, double-buffered through a StagePipe so batch
  /// N+1's solve overlaps batch N's export. false runs the whole chain
  /// on the consumer thread (the pre-pipeline behavior). Published
  /// scores are identical either way — the pipeline only reorders WHEN
  /// each stage runs, never what it computes — which the streaming-vs-
  /// scratch oracle checks in both modes.
  bool pipelined = true;

  /// Executor width for the export stage's parallel sort / postings /
  /// CRC work (ScoreBundleWriter) and the publish-side revalidation.
  /// Bundle bytes are identical for every value.
  ParallelOptions export_parallel;
};

/// One published generation's provenance — the audit trail of the
/// no-lost-updates contract.
struct IngestGenerationInfo {
  uint64_t generation = 0;      // SnapshotStore generation number
  uint64_t first_sequence = 0;  // event range this batch covered
  uint64_t last_sequence = 0;
  uint64_t num_events = 0;      // raw events absorbed
  uint64_t delta_added = 0;     // net structural change after coalescing
  uint64_t delta_removed = 0;
  NodeId num_pages = 0;
  uint32_t rank_iterations = 0;
  uint64_t rank_node_updates = 0;
  /// Worst update-to-servable latency inside this batch.
  double max_update_to_servable_ms = 0.0;
};

/// Per-generation latency distribution of one pipeline stage.
struct IngestStageStats {
  uint64_t count = 0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double mean_ms = 0.0;
};

struct IngestStats {
  UpdateQueueStats queue;
  uint64_t batches = 0;
  uint64_t generations = 0;        // published into the store
  uint64_t events_processed = 0;   // absorbed into flushed batches
  uint64_t edge_adds = 0;
  uint64_t edge_removes = 0;
  uint64_t visits = 0;
  uint64_t delta_edges_applied = 0;  // net changes after coalescing
  uint64_t rank_node_updates = 0;
  uint64_t servable_sequence = 0;  // every event <= this is servable
  /// Update-to-servable latency distribution over all events so far.
  uint64_t latency_count = 0;
  double latency_p50_ms = 0.0;
  double latency_p90_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
  double latency_mean_ms = 0.0;
  /// Per-stage breakdown of each generation's wall time: where an
  /// update spends its life between flush and servable.
  IngestStageStats stage_apply;     // audit + ApplyDelta + visit credit
  IngestStageStats stage_solve;     // warm DeltaPageRank + window append
  IngestStageStats stage_estimate;  // Eq-1 estimator over the window
  IngestStageStats stage_export;    // writer build + serialize + revalidate
  IngestStageStats stage_publish;   // PublishOrdered + accounting
};

class IngestService {
 public:
  /// Validates options (store non-null, capacity/window/batch bounds)
  /// and seeds the service with `initial_graph`. Does not start the
  /// consumer thread.
  static Result<std::unique_ptr<IngestService>> Create(
      CsrGraph initial_graph, SnapshotStore* store, IngestOptions options);

  ~IngestService();
  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  /// Computes + publishes the initial generation (unless disabled or
  /// the graph is empty) and starts the consumer thread.
  /// FailedPrecondition if already started.
  Status Start();

  /// Closes the queue, drains the backlog through the full pipeline
  /// (everything accepted becomes servable), joins the consumer, and
  /// returns the loop's terminal status. Idempotent.
  Status Stop();

  /// Producer-side entry points (any thread). Backpressure follows the
  /// queue's policy.
  Status Enqueue(const UpdateEvent& event) { return queue_.Push(event); }
  Status EnqueueEdgeAdd(NodeId src, NodeId dst) {
    return queue_.Push(UpdateEvent::AddEdge(src, dst));
  }
  Status EnqueueEdgeRemove(NodeId src, NodeId dst) {
    return queue_.Push(UpdateEvent::RemoveEdge(src, dst));
  }
  Status EnqueueVisit(NodeId page) {
    return queue_.Push(UpdateEvent::Visit(page));
  }

  UpdateQueue& queue() { return queue_; }

  /// Blocks until every event with sequence <= `sequence` is servable
  /// (its generation published), the service stops, or `timeout`
  /// elapses. True iff servable.
  bool WaitServable(uint64_t sequence, std::chrono::nanoseconds timeout) const;

  uint64_t servable_sequence() const;
  IngestStats Stats() const;
  std::vector<IngestGenerationInfo> GenerationLog() const;

  /// Terminal/loop status: OK while healthy; the first pipeline error
  /// (which also stops the loop) afterwards.
  Status status() const;

  /// The graph the pipeline has applied all batches onto. Only valid
  /// once the consumer is stopped (checked).
  const CsrGraph& CurrentGraph() const;

  /// Copy of the most recently published bundle image (empty unless
  /// options.keep_last_image).
  std::vector<uint8_t> LastImage() const;

 private:
  IngestService(CsrGraph initial_graph, SnapshotStore* store,
                IngestOptions options);

  /// Everything the export stage needs from one solved generation:
  /// shared snapshots of the immutable observation vectors, batch
  /// provenance for the accounting it performs at publish time, and
  /// the upstream stage durations for the breakdown histograms. Jobs
  /// cross the StagePipe by move; nothing in here aliases mutable
  /// consumer-thread state.
  struct ExportJob {
    uint64_t sequence = 0;  // publish watermark (batch last_sequence)
    NodeId num_pages = 0;
    uint32_t iterations = 0;
    uint64_t node_updates = 0;
    std::vector<SharedObservation> window;
    bool has_batch = false;  // false for the Start()-time initial publish
    uint64_t first_sequence = 0;
    uint64_t last_sequence = 0;
    uint64_t num_events = 0;
    uint64_t num_adds = 0;
    uint64_t num_removes = 0;
    uint64_t num_visits = 0;
    uint64_t delta_changes = 0;
    uint64_t delta_added = 0;
    uint64_t delta_removed = 0;
    std::vector<std::chrono::steady_clock::time_point> enqueue_times;
    double apply_ms = 0.0;
    double solve_ms = 0.0;
  };

  void RunLoop() QRANK_EXCLUDES(mu_);
  /// Exporter-thread loop: drain the pipe, run each job, Break on the
  /// first failure.
  void ExportLoop() QRANK_EXCLUDES(mu_);
  /// Solve half of one generation: delta apply -> rank -> job build;
  /// hands the job to the exporter (pipelined) or runs it inline.
  /// Non-OK return stops the loop.
  Status ProcessBatch(FlushedBatch batch) QRANK_EXCLUDES(mu_);
  /// Snapshot of the post-solve state as an export job (consumer thread
  /// only; `batch` may be null for the initial publish and is consumed).
  ExportJob MakeExportJob(FlushedBatch* batch, uint32_t iterations,
                          uint64_t node_updates, double apply_ms,
                          double solve_ms);
  /// Export half of one generation: estimate -> export -> publish ->
  /// latency + stage accounting.
  Status RunExportJob(ExportJob job) QRANK_EXCLUDES(mu_);
  Status RecomputeScores(const std::vector<uint8_t>& dirty_frontier,
                         uint32_t* iterations, uint64_t* node_updates);
  /// Stage-thread epilogue: record the first error, and let the LAST
  /// stage to exit clear running_ (publishes from a draining exporter
  /// must finish before WaitServable callers see the service stop).
  void StageExit(Status st) QRANK_EXCLUDES(mu_);

  const IngestOptions options_;
  SnapshotStore* const store_;
  UpdateQueue queue_;
  BatchAccumulator accumulator_;

  // Consumer-thread-owned compute state (no lock: single writer, and
  // CurrentGraph() is gated on the thread being joined). The window
  // holds immutable vectors behind shared_ptr so export jobs snapshot
  // it without copying scores.
  CsrGraph graph_;
  std::vector<double> prev_probability_;        // warm-start iterate
  bool prev_converged_ = false;
  std::deque<SharedObservation> observations_;  // export-scale window
  std::vector<uint64_t> visit_counts_;

  // The solve -> export handoff (pipelined mode). Capacity 1: one job
  // queued while the exporter works on the previous one, so at most two
  // generations are in flight (depth-2 double buffering).
  StagePipe<ExportJob> pipe_{1};

  // Shared bookkeeping.
  mutable Mutex mu_;
  mutable CondVar servable_cv_;
  bool running_ QRANK_GUARDED_BY(mu_) = false;
  int active_stages_ QRANK_GUARDED_BY(mu_) = 0;
  Status loop_status_ QRANK_GUARDED_BY(mu_);
  uint64_t servable_sequence_ QRANK_GUARDED_BY(mu_) = 0;
  IngestStats counters_ QRANK_GUARDED_BY(mu_);  // queue field on read
  LatencyHistogram latency_ QRANK_GUARDED_BY(mu_);
  LatencyHistogram stage_apply_ QRANK_GUARDED_BY(mu_);
  LatencyHistogram stage_solve_ QRANK_GUARDED_BY(mu_);
  LatencyHistogram stage_estimate_ QRANK_GUARDED_BY(mu_);
  LatencyHistogram stage_export_ QRANK_GUARDED_BY(mu_);
  LatencyHistogram stage_publish_ QRANK_GUARDED_BY(mu_);
  std::vector<IngestGenerationInfo> generation_log_ QRANK_GUARDED_BY(mu_);
  std::vector<uint8_t> last_image_ QRANK_GUARDED_BY(mu_);

  // Lifecycle. started_/stopped_ are mu_-guarded so concurrent Stop()
  // calls (an explicit Stop racing the destructor's, or two
  // controllers) elect exactly one joiner; the thread handles are
  // written by Start() and joined only by that winner, so they need no
  // lock of their own. Start() must complete before Stop() may be
  // called.
  std::thread consumer_;
  std::thread exporter_;  // pipelined mode only
  bool started_ QRANK_GUARDED_BY(mu_) = false;
  bool stopped_ QRANK_GUARDED_BY(mu_) = false;
};

}  // namespace qrank

#endif  // QRANK_INGEST_INGEST_SERVICE_H_
