#include "ingest/update_queue.h"

#include <algorithm>
#include <utility>

namespace qrank {

const char* UpdateKindName(UpdateKind kind) {
  switch (kind) {
    case UpdateKind::kAddEdge:
      return "add";
    case UpdateKind::kRemoveEdge:
      return "remove";
    case UpdateKind::kVisit:
      return "visit";
  }
  return "unknown";
}

UpdateQueue::UpdateQueue(UpdateQueueOptions options)
    : options_(options) {}

Status UpdateQueue::Push(UpdateEvent event) {
  ReleasableMutexLock lock(&mu_);
  if (closed_) {
    return Status::FailedPrecondition("update queue is closed");
  }
  if (events_.size() >= options_.capacity) {
    if (options_.backpressure == BackpressurePolicy::kReject) {
      ++rejected_;
      return Status::OutOfRange("update queue at capacity");
    }
    while (!closed_ && events_.size() >= options_.capacity) {
      not_full_.Wait(&mu_);
    }
    if (closed_) {
      return Status::FailedPrecondition("update queue closed while blocked");
    }
  }
  event.sequence = ++enqueued_;
  event.enqueue_time = std::chrono::steady_clock::now();
  events_.push_back(event);
  max_depth_ = std::max<uint64_t>(max_depth_, events_.size());
  lock.Release();
  not_empty_.NotifyOne();
  return Status::OK();
}

size_t UpdateQueue::PopBatch(size_t max_events, std::chrono::nanoseconds wait,
                             std::vector<UpdateEvent>* out) {
  ReleasableMutexLock lock(&mu_);
  if (events_.empty()) {
    const auto deadline = std::chrono::steady_clock::now() + wait;
    while (!closed_ && events_.empty()) {
      if (not_empty_.WaitUntil(&mu_, deadline)) break;
    }
  }
  const size_t n = std::min(max_events, events_.size());
  for (size_t i = 0; i < n; ++i) {
    out->push_back(events_.front());
    events_.pop_front();
  }
  dequeued_ += n;
  lock.Release();
  if (n > 0) {
    // Several producers can be parked on one drain; wake them all.
    not_full_.NotifyAll();
  }
  return n;
}

void UpdateQueue::Close() {
  {
    MutexLock lock(&mu_);
    closed_ = true;
  }
  not_full_.NotifyAll();
  not_empty_.NotifyAll();
}

bool UpdateQueue::closed() const {
  MutexLock lock(&mu_);
  return closed_;
}

size_t UpdateQueue::depth() const {
  MutexLock lock(&mu_);
  return events_.size();
}

UpdateQueueStats UpdateQueue::Stats() const {
  MutexLock lock(&mu_);
  UpdateQueueStats stats;
  stats.capacity = options_.capacity;
  stats.depth = events_.size();
  stats.enqueued = enqueued_;
  stats.dequeued = dequeued_;
  stats.rejected = rejected_;
  stats.max_depth = max_depth_;
  stats.closed = closed_;
  return stats;
}

}  // namespace qrank
