// BatchAccumulator: coalesces a run of update events into one exact
// GraphDelta batch under size/age flush policies.
//
// The ingest loop amortizes the per-generation cost (CSR patch,
// incremental PageRank, bundle export, publish) over many events by
// batching. The accumulator absorbs events one at a time and, at flush,
// emits the *net* structural change as a GraphDelta that satisfies
// CsrGraph::ApplyDelta's exactness contract against the base graph.
//
// Coalescing is last-writer-wins per edge key, ordered by the queue's
// sequence numbers: for each (src, dst) the event with the highest
// sequence decides the batch's intent, which is then reconciled against
// the base graph —
//   * intent add,    edge absent in base  -> delta.added
//   * intent add,    edge present in base -> no-op (duplicate add)
//   * intent remove, edge present in base -> delta.removed
//   * intent remove, edge absent in base  -> no-op (ghost remove)
// so an add-then-remove of a new edge cancels to nothing inside the
// batch, duplicates dedup, and self-loops are dropped (CsrGraph never
// stores them). Because the winner is chosen by sequence — not by
// absorption order — the emitted delta is invariant under any
// permutation of Absorb calls (the property the batch_accumulator test
// sweeps), and the net of a batch equals the net of replaying its
// events sequentially, whatever the batch boundaries: the streaming
// pipeline converges to the same graph as an offline rebuild.
//
// Visit events coalesce into per-page counts. Node growth comes from
// surviving added edges only (max endpoint + 1); continuous ingest
// never shrinks the page set.
//
// Flush policy: ShouldFlush fires when max_events events have been
// absorbed (size bound) or the oldest absorbed event has waited
// max_age (staleness bound) — the two knobs that trade batching
// efficiency against the update-to-servable SLO.
//
// Not thread-safe: owned and driven by the single IngestService
// consumer thread.

#ifndef QRANK_INGEST_BATCH_ACCUMULATOR_H_
#define QRANK_INGEST_BATCH_ACCUMULATOR_H_

#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"
#include "graph/graph_delta.h"
#include "ingest/update_queue.h"

namespace qrank {

struct BatchPolicy {
  /// Flush once this many events have been absorbed.
  size_t max_events = 4096;
  /// Flush once the oldest absorbed event has waited this long — the
  /// batching half of the bounded-staleness SLO (the other half is the
  /// compute+publish time itself).
  std::chrono::nanoseconds max_age = std::chrono::milliseconds(50);
};

/// One coalesced batch, ready for the apply -> rank -> export -> publish
/// generation step.
struct FlushedBatch {
  /// Net structural change vs the flush-time base graph. Satisfies
  /// ApplyDelta's contract by construction.
  GraphDelta delta;
  /// Coalesced visit counts, sorted by page id.
  std::vector<std::pair<NodeId, uint64_t>> visits;

  /// Sequence range covered by this batch (inclusive). Batches cover
  /// contiguous, gap-free ranges; publishing the batch makes every
  /// event with sequence <= last_sequence servable.
  uint64_t first_sequence = 0;
  uint64_t last_sequence = 0;

  /// Raw events absorbed (before coalescing), by kind.
  uint64_t num_events = 0;
  uint64_t num_adds = 0;
  uint64_t num_removes = 0;
  uint64_t num_visits = 0;

  /// Enqueue timestamp of every absorbed event — the per-event start
  /// points of the update-to-servable latency measurement.
  std::vector<std::chrono::steady_clock::time_point> enqueue_times;
};

class BatchAccumulator {
 public:
  explicit BatchAccumulator(BatchPolicy policy = {});

  /// Absorbs one event (last-writer-wins by event.sequence).
  void Absorb(const UpdateEvent& event);

  bool empty() const { return num_events_ == 0; }
  size_t num_events() const { return num_events_; }
  size_t num_edge_events() const { return num_adds_ + num_removes_; }
  const BatchPolicy& policy() const { return policy_; }

  /// True when the size or age policy says the pending batch should be
  /// emitted now. Always false while empty.
  bool ShouldFlush(std::chrono::steady_clock::time_point now) const;

  /// Emits the pending batch as a net delta against `base` and resets
  /// the accumulator. FailedPrecondition when empty.
  Result<FlushedBatch> Flush(const CsrGraph& base);

 private:
  struct EdgeIntent {
    uint64_t sequence = 0;
    UpdateKind kind = UpdateKind::kAddEdge;
  };

  BatchPolicy policy_;
  // Keyed by (src << 32) | dst; NodeId is 32-bit so the key is exact.
  std::unordered_map<uint64_t, EdgeIntent> edge_intents_;
  std::unordered_map<NodeId, uint64_t> visit_counts_;
  uint64_t first_sequence_ = 0;
  uint64_t last_sequence_ = 0;
  uint64_t num_events_ = 0;
  uint64_t num_adds_ = 0;
  uint64_t num_removes_ = 0;
  uint64_t num_visits_ = 0;
  std::chrono::steady_clock::time_point oldest_enqueue_{};
  std::vector<std::chrono::steady_clock::time_point> enqueue_times_;
};

}  // namespace qrank

#endif  // QRANK_INGEST_BATCH_ACCUMULATOR_H_
