// Log-linear latency histogram for the update-to-servable measurement.
//
// The ingest loop records, for every event, the time from its queue
// arrival (UpdateEvent::enqueue_time) to the moment the generation that
// reflects it is published into the SnapshotStore — i.e. the first
// instant a TopK query can see the update. Latencies span five orders
// of magnitude (microseconds for a burst-flushed batch on a tiny graph,
// hundreds of milliseconds for an age-flushed batch on the 131k-page
// workload), so the histogram uses HDR-style log-linear buckets: one
// power-of-two range per "decade", 16 linear sub-buckets inside each,
// giving a worst-case quantile error of ~6% at O(1) memory and O(1)
// Add. Percentile() answers from the conservative (upper) edge of the
// selected bucket so the p99 SLO gate never under-reports; max is
// tracked exactly.
//
// Not thread-safe: the IngestService owns one instance behind its
// stats mutex.

#ifndef QRANK_INGEST_LATENCY_HISTOGRAM_H_
#define QRANK_INGEST_LATENCY_HISTOGRAM_H_

#include <cstdint>
#include <string>

namespace qrank {

class LatencyHistogram {
 public:
  void AddNanos(uint64_t nanos);

  uint64_t count() const { return count_; }
  double max_nanos() const { return max_nanos_; }
  double mean_nanos() const {
    return count_ > 0 ? sum_nanos_ / static_cast<double>(count_) : 0.0;
  }

  /// Value (ns) at quantile `q` in [0, 1]; 0 when empty. Bucket-
  /// resolution: the upper edge of the bucket holding the q-th sample,
  /// clamped to the exact max.
  double PercentileNanos(double q) const;

  /// "n=1234 p50=1.2ms p90=3.4ms p99=5.6ms max=7.8ms".
  std::string Summary() const;

 private:
  // 16 linear sub-buckets per power of two of nanoseconds. Values
  // < 2^kSubBits land in the first group verbatim.
  static constexpr int kSubBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBits;       // 16
  static constexpr int kGroups = 64 - kSubBits;           // 60
  static constexpr int kNumBuckets = kGroups * kSubBuckets;

  static int BucketIndex(uint64_t nanos);
  /// Exclusive upper edge of bucket `index` in ns.
  static double BucketUpper(int index);

  uint64_t counts_[kNumBuckets] = {};
  uint64_t count_ = 0;
  double sum_nanos_ = 0.0;
  double max_nanos_ = 0.0;
};

}  // namespace qrank

#endif  // QRANK_INGEST_LATENCY_HISTOGRAM_H_
