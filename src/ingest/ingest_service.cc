#include "ingest/ingest_service.h"

#include <algorithm>
#include <utility>

#include "audit/audit.h"
#include "common/logging.h"
#include "core/bundle_export.h"
#include "rank/rank_vector.h"
#include "serve/score_bundle.h"

namespace qrank {

namespace {

// Compile-time audit level (src/audit/): level 1 re-checks queue
// counter conservation per batch; level 2 additionally re-validates
// every coalesced delta + frontier before ranking on it — the exact
// artifacts the incremental fast path trusts blindly.
constexpr int kAuditLevel = QRANK_AUDIT_LEVEL;

double ToMillis(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

uint64_t MillisToNanos(double ms) {
  return ms <= 0.0 ? 0 : static_cast<uint64_t>(ms * 1e6);
}

IngestStageStats SummarizeStage(const LatencyHistogram& h) {
  IngestStageStats s;
  s.count = h.count();
  s.p50_ms = h.PercentileNanos(0.50) * 1e-6;
  s.p90_ms = h.PercentileNanos(0.90) * 1e-6;
  s.p99_ms = h.PercentileNanos(0.99) * 1e-6;
  s.max_ms = h.max_nanos() * 1e-6;
  s.mean_ms = h.mean_nanos() * 1e-6;
  return s;
}

}  // namespace

DeltaPageRankOptions DefaultIngestRankOptions() {
  DeltaPageRankOptions options;
  options.base.scale = ScaleConvention::kTotalMassN;
  return options;
}

IngestService::IngestService(CsrGraph initial_graph, SnapshotStore* store,
                             IngestOptions options)
    : options_(std::move(options)),
      store_(store),
      queue_(options_.queue),
      accumulator_(options_.batch),
      graph_(std::move(initial_graph)),
      visit_counts_(graph_.num_nodes(), 0) {}

Result<std::unique_ptr<IngestService>> IngestService::Create(
    CsrGraph initial_graph, SnapshotStore* store, IngestOptions options) {
  if (store == nullptr) {
    return Status::InvalidArgument("IngestService needs a SnapshotStore");
  }
  if (options.queue.capacity == 0) {
    return Status::InvalidArgument("queue capacity must be >= 1");
  }
  if (options.batch.max_events == 0) {
    return Status::InvalidArgument("batch max_events must be >= 1");
  }
  if (options.batch.max_age <= std::chrono::nanoseconds::zero()) {
    return Status::InvalidArgument("batch max_age must be positive");
  }
  if (options.observation_window < 2) {
    return Status::InvalidArgument("observation window must be >= 2");
  }
  if (options.num_sites == 0) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  return std::unique_ptr<IngestService>(new IngestService(
      std::move(initial_graph), store, std::move(options)));
}

IngestService::~IngestService() {
  const Status ignored = Stop();
  (void)ignored;
}

Status IngestService::Start() {
  {
    MutexLock lock(&mu_);
    if (started_) {
      return Status::FailedPrecondition("ingest service already started");
    }
    started_ = true;
  }
  if (options_.publish_initial && graph_.num_nodes() > 0) {
    uint32_t iterations = 0;
    uint64_t node_updates = 0;
    // Cold start: empty frontier = every page dirty (delta_pagerank.h).
    const auto t0 = std::chrono::steady_clock::now();
    QRANK_RETURN_NOT_OK(RecomputeScores({}, &iterations, &node_updates));
    const double solve_ms = ToMillis(std::chrono::steady_clock::now() - t0);
    // The initial generation runs inline — the stage threads don't
    // exist yet, and callers expect Start() to return with generation 1
    // servable.
    QRANK_RETURN_NOT_OK(RunExportJob(
        MakeExportJob(nullptr, iterations, node_updates, 0.0, solve_ms)));
  }
  {
    MutexLock lock(&mu_);
    running_ = true;
    active_stages_ = options_.pipelined ? 2 : 1;
  }
  consumer_ = std::thread([this] { RunLoop(); });
  if (options_.pipelined) {
    exporter_ = std::thread([this] { ExportLoop(); });
  }
  return Status::OK();
}

Status IngestService::Stop() {
  // Elect exactly one joiner under the lock; everyone else returns the
  // loop status. The joins happen outside mu_ — the stage threads take
  // mu_ on their way out, so joining under the lock would deadlock.
  bool winner = false;
  {
    MutexLock lock(&mu_);
    if (started_ && !stopped_) {
      stopped_ = true;
      winner = true;
    }
  }
  if (winner) {
    queue_.Close();
    // Join order matters: the consumer drains the queue then closes the
    // pipe; the exporter drains the pipe then exits.
    if (consumer_.joinable()) consumer_.join();
    if (exporter_.joinable()) exporter_.join();
  }
  return status();
}

void IngestService::RunLoop() {
  std::vector<UpdateEvent> events;
  Status st;
  for (;;) {
    events.clear();
    const size_t pending = accumulator_.num_events();
    const size_t room = options_.batch.max_events > pending
                            ? options_.batch.max_events - pending
                            : size_t{1};
    const size_t popped =
        queue_.PopBatch(room, options_.poll_interval, &events);
    for (const UpdateEvent& event : events) accumulator_.Absorb(event);
    const bool draining = queue_.closed() && queue_.depth() == 0;
    if (!accumulator_.empty() &&
        (accumulator_.ShouldFlush(std::chrono::steady_clock::now()) ||
         draining)) {
      Result<FlushedBatch> flushed = accumulator_.Flush(graph_);
      if (!flushed.ok()) {
        st = flushed.status();
        break;
      }
      st = ProcessBatch(std::move(flushed).value());
      if (!st.ok()) break;
    }
    if (draining && popped == 0 && accumulator_.empty()) break;
  }
  // Upstream done (or failed): let queued jobs drain, then the exporter
  // exits on its own. A clean loop may still have inherited a pipe
  // Break the last Push raced past — surface it.
  pipe_.Close();
  if (st.ok()) st = pipe_.status();
  StageExit(st);
}

void IngestService::ExportLoop() {
  Status st;
  ExportJob job;
  while (pipe_.Pop(&job)) {
    st = RunExportJob(std::move(job));
    job = ExportJob{};
    if (!st.ok()) {
      // Tell the solve stage to stop producing for a dead publisher.
      pipe_.Break(st);
      break;
    }
  }
  StageExit(st);
}

void IngestService::StageExit(Status st) {
  MutexLock lock(&mu_);
  if (!st.ok() && loop_status_.ok()) loop_status_ = st;
  if (--active_stages_ <= 0) running_ = false;
  servable_cv_.NotifyAll();
}

Status IngestService::ProcessBatch(FlushedBatch batch) {
  const auto t_start = std::chrono::steady_clock::now();
  if constexpr (kAuditLevel >= 1) {
    const UpdateQueueStats qs = queue_.Stats();
    const AuditReport queue_audit = AuditIngestQueue(
        qs.capacity, qs.depth, qs.enqueued, qs.dequeued, qs.rejected);
    QRANK_CHECK(queue_audit.ok())
        << "update queue broke counter conservation: "
        << queue_audit.ToString();
  }
  std::vector<uint8_t> dirty;
  if (!batch.delta.empty()) {
    QRANK_ASSIGN_OR_RETURN(CsrGraph next, graph_.ApplyDelta(batch.delta));
    dirty = batch.delta.DirtyFrontier(next);
    if constexpr (kAuditLevel >= 2) {
      AuditReport delta_audit =
          AuditDelta(graph_, batch.delta, &next, &dirty);
      delta_audit.Merge(AuditIngestBatch(graph_, batch.delta,
                                         batch.num_events,
                                         batch.num_adds + batch.num_removes));
      QRANK_CHECK(delta_audit.ok())
          << "coalesced batch [" << batch.first_sequence << ", "
          << batch.last_sequence
          << "] emitted an inconsistent delta: " << delta_audit.ToString();
    }
    graph_ = std::move(next);
  }

  if (visit_counts_.size() < graph_.num_nodes()) {
    visit_counts_.resize(graph_.num_nodes(), 0);
  }
  for (const auto& [page, count] : batch.visits) {
    // Visits to pages the graph has never seen have no row to credit.
    if (page < visit_counts_.size()) visit_counts_[page] += count;
  }
  const auto t_apply = std::chrono::steady_clock::now();

  uint32_t iterations = 0;
  uint64_t node_updates = 0;
  if (graph_.num_nodes() > 0) {
    const bool reuse =
        batch.delta.empty() && prev_converged_ && !observations_.empty();
    if (reuse) {
      // Unchanged graph: the previous vector is already this
      // generation's converged solution; append it as a fresh
      // observation (the estimator correctly reads the page as stable).
      observations_.push_back(observations_.back());
      if (observations_.size() > options_.observation_window) {
        observations_.pop_front();
      }
    } else {
      QRANK_RETURN_NOT_OK(RecomputeScores(dirty, &iterations, &node_updates));
    }
  }
  const auto t_solve = std::chrono::steady_clock::now();

  ExportJob job =
      MakeExportJob(&batch, iterations, node_updates,
                    ToMillis(t_apply - t_start), ToMillis(t_solve - t_apply));
  if (!options_.pipelined) return RunExportJob(std::move(job));
  if (!pipe_.Push(std::move(job))) {
    // Only a Break can refuse the push (the consumer is the sole
    // closer); surface the exporter's failure as the loop status.
    const Status st = pipe_.status();
    return st.ok() ? Status::FailedPrecondition("export pipe closed") : st;
  }
  return Status::OK();
}

IngestService::ExportJob IngestService::MakeExportJob(FlushedBatch* batch,
                                                      uint32_t iterations,
                                                      uint64_t node_updates,
                                                      double apply_ms,
                                                      double solve_ms) {
  ExportJob job;
  job.num_pages = graph_.num_nodes();
  job.iterations = iterations;
  job.node_updates = node_updates;
  job.window.assign(observations_.begin(), observations_.end());
  job.apply_ms = apply_ms;
  job.solve_ms = solve_ms;
  if (batch != nullptr) {
    job.has_batch = true;
    job.sequence = batch->last_sequence;
    job.first_sequence = batch->first_sequence;
    job.last_sequence = batch->last_sequence;
    job.num_events = batch->num_events;
    job.num_adds = batch->num_adds;
    job.num_removes = batch->num_removes;
    job.num_visits = batch->num_visits;
    job.delta_changes = batch->delta.num_changes();
    job.delta_added = batch->delta.added.size();
    job.delta_removed = batch->delta.removed.size();
    job.enqueue_times = std::move(batch->enqueue_times);
  }
  return job;
}

Status IngestService::RecomputeScores(
    const std::vector<uint8_t>& dirty_frontier, uint32_t* iterations,
    uint64_t* node_updates) {
  const NodeId n = graph_.num_nodes();
  DeltaPageRankOptions rank = options_.rank;
  if (!prev_probability_.empty()) {
    rank.base.initial_scores = ProjectToSize(prev_probability_, n);
  }
  QRANK_ASSIGN_OR_RETURN(DeltaPageRankResult result,
                         ComputeDeltaPageRank(graph_, dirty_frontier, rank));
  *iterations = result.base.iterations;
  *node_updates = result.node_updates;
  prev_converged_ = result.base.converged;
  prev_probability_ = result.base.scores;
  if (rank.base.scale == ScaleConvention::kTotalMassN && n > 0) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (double& s : prev_probability_) s *= inv_n;
  }
  observations_.push_back(
      std::make_shared<const std::vector<double>>(std::move(result.base.scores)));
  if (observations_.size() > options_.observation_window) {
    observations_.pop_front();
  }
  return Status::OK();
}

Status IngestService::RunExportJob(ExportJob job) {
  uint64_t generation = 0;
  std::vector<uint8_t> kept_image;
  const NodeId n = job.num_pages;
  const auto t_start = std::chrono::steady_clock::now();
  auto t_estimate = t_start;
  auto t_export = t_start;
  if (n > 0 && !job.window.empty()) {
    // Estimate stage: the Eq-1 quality column over the window snapshot.
    QRANK_ASSIGN_OR_RETURN(
        std::vector<double> quality,
        ComputeWindowQuality(job.window, options_.estimator));
    t_estimate = std::chrono::steady_clock::now();

    // Export stage: writer build (parallel sorts/postings), serialize
    // (parallel section copy + CRC), publish-side revalidation.
    ScoreBundleSource source;
    source.quality = std::move(quality);
    source.pagerank = *job.window.back();
    source.num_sites = options_.num_sites;
    if (options_.site_of) {
      source.site_ids.resize(n);
      for (NodeId p = 0; p < n; ++p) {
        source.site_ids[p] = options_.site_of(p);
      }
    }
    {
      MutexLock lock(&mu_);
      source.creator_tag = static_cast<uint32_t>(counters_.generations + 1);
    }
    QRANK_ASSIGN_OR_RETURN(
        ScoreBundleWriter writer,
        ScoreBundleWriter::Create(std::move(source), options_.export_parallel));
    std::vector<uint8_t> image = writer.Serialize();
    if (options_.keep_last_image) kept_image = image;
    QRANK_ASSIGN_OR_RETURN(
        LoadedBundle bundle,
        LoadedBundle::FromBuffer(std::move(image), options_.export_parallel));
    t_export = std::chrono::steady_clock::now();

    // Publish stage: the ordered hot-swap.
    QRANK_ASSIGN_OR_RETURN(
        generation,
        store_->PublishOrdered(
            std::make_shared<const LoadedBundle>(std::move(bundle)),
            job.sequence));
  }
  const std::chrono::steady_clock::time_point publish_time =
      std::chrono::steady_clock::now();

  MutexLock lock(&mu_);
  if (generation > 0) {
    ++counters_.generations;
    if (options_.keep_last_image) last_image_ = std::move(kept_image);
  }
  stage_apply_.AddNanos(MillisToNanos(job.apply_ms));
  stage_solve_.AddNanos(MillisToNanos(job.solve_ms));
  stage_estimate_.AddNanos(MillisToNanos(ToMillis(t_estimate - t_start)));
  stage_export_.AddNanos(MillisToNanos(ToMillis(t_export - t_estimate)));
  stage_publish_.AddNanos(MillisToNanos(ToMillis(publish_time - t_export)));
  IngestGenerationInfo info;
  info.generation = generation;
  info.num_pages = n;
  info.rank_iterations = job.iterations;
  info.rank_node_updates = job.node_updates;
  counters_.rank_node_updates += job.node_updates;
  if (job.has_batch) {
    ++counters_.batches;
    counters_.events_processed += job.num_events;
    counters_.edge_adds += job.num_adds;
    counters_.edge_removes += job.num_removes;
    counters_.visits += job.num_visits;
    counters_.delta_edges_applied += job.delta_changes;
    servable_sequence_ = std::max(servable_sequence_, job.last_sequence);
    info.first_sequence = job.first_sequence;
    info.last_sequence = job.last_sequence;
    info.num_events = job.num_events;
    info.delta_added = job.delta_added;
    info.delta_removed = job.delta_removed;
    double max_ms = 0.0;
    for (const auto& enqueue_time : job.enqueue_times) {
      const auto lag = publish_time - enqueue_time;
      latency_.AddNanos(static_cast<uint64_t>(std::max<int64_t>(
          0, std::chrono::duration_cast<std::chrono::nanoseconds>(lag)
                 .count())));
      max_ms = std::max(max_ms, ToMillis(lag));
    }
    info.max_update_to_servable_ms = max_ms;
  }
  generation_log_.push_back(info);
  servable_cv_.NotifyAll();
  return Status::OK();
}

bool IngestService::WaitServable(uint64_t sequence,
                                 std::chrono::nanoseconds timeout) const {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(&mu_);
  while (servable_sequence_ < sequence && running_) {
    if (servable_cv_.WaitUntil(&mu_, deadline)) break;
  }
  return servable_sequence_ >= sequence;
}

uint64_t IngestService::servable_sequence() const {
  MutexLock lock(&mu_);
  return servable_sequence_;
}

IngestStats IngestService::Stats() const {
  MutexLock lock(&mu_);
  IngestStats stats = counters_;
  stats.queue = queue_.Stats();
  stats.servable_sequence = servable_sequence_;
  stats.latency_count = latency_.count();
  stats.latency_p50_ms = latency_.PercentileNanos(0.50) * 1e-6;
  stats.latency_p90_ms = latency_.PercentileNanos(0.90) * 1e-6;
  stats.latency_p99_ms = latency_.PercentileNanos(0.99) * 1e-6;
  stats.latency_max_ms = latency_.max_nanos() * 1e-6;
  stats.latency_mean_ms = latency_.mean_nanos() * 1e-6;
  stats.stage_apply = SummarizeStage(stage_apply_);
  stats.stage_solve = SummarizeStage(stage_solve_);
  stats.stage_estimate = SummarizeStage(stage_estimate_);
  stats.stage_export = SummarizeStage(stage_export_);
  stats.stage_publish = SummarizeStage(stage_publish_);
  return stats;
}

std::vector<IngestGenerationInfo> IngestService::GenerationLog() const {
  MutexLock lock(&mu_);
  return generation_log_;
}

Status IngestService::status() const {
  MutexLock lock(&mu_);
  return loop_status_;
}

const CsrGraph& IngestService::CurrentGraph() const {
  {
    MutexLock lock(&mu_);
    QRANK_CHECK(!running_)
        << "CurrentGraph is only valid once the consumer is stopped";
  }
  return graph_;
}

std::vector<uint8_t> IngestService::LastImage() const {
  MutexLock lock(&mu_);
  return last_image_;
}

}  // namespace qrank
