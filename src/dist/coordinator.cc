#include "dist/coordinator.h"

#include <sys/socket.h>

#include <algorithm>

#include "common/annotations.h"
#include "common/rng.h"

namespace qrank {
namespace {

/// The engine's result order on global rows: higher blended score
/// first, ties broken toward the lower row. Must mirror
/// query_engine.cc's Worse() for the exact-merge contract.
inline bool BetterEntry(const WireTopKEntry& a, const WireTopKEntry& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.global_row < b.global_row;
}

}  // namespace

Coordinator::Coordinator(ShardMap map, std::vector<ShardAddress> shards,
                         CoordinatorOptions options)
    : map_(std::move(map)),
      shards_(std::move(shards)),
      options_(options) {}

Coordinator::~Coordinator() { Stop(); }

Status Coordinator::Start() {
  if (shards_.size() != map_.num_shards) {
    return Status::InvalidArgument(
        "coordinator needs one ShardAddress per shard: map has " +
        std::to_string(map_.num_shards) + ", got " +
        std::to_string(shards_.size()));
  }
  const uint32_t num_shards = map_.num_shards;
  scratch_.shard_frames.resize(num_shards);
  scratch_.shard_ok.assign(num_shards, 0);
  scratch_.responses.resize(num_shards);
  scratch_.cursor.assign(num_shards, 0);

  MutexLock lock(&mu_);
  if (started_) return Status::FailedPrecondition("Coordinator already started");
  channels_.reserve(size_t{num_shards} * 2);
  for (uint32_t s = 0; s < num_shards; ++s) {
    for (int role = 0; role < 2; ++role) {
      auto ch = std::make_unique<Channel>();
      ch->shard = s;
      ch->is_hedge = role == 1;
      ch->endpoint = (role == 1 && shards_[s].has_replica)
                         ? shards_[s].replica
                         : shards_[s].primary;
      Channel* raw = ch.get();
      ch->thread = std::thread([this, raw] { ChannelLoop(raw); });
      channels_.push_back(std::move(ch));
    }
  }
  started_ = true;
  return Status::OK();
}

void Coordinator::Stop() {
  std::vector<std::unique_ptr<Channel>> channels;
  {
    MutexLock lock(&mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
    ++query_epoch_;
    for (std::unique_ptr<Channel>& ch : channels_) {
      ch->work_pending = false;
      ch->request = nullptr;
      if (ch->live_fd >= 0) ::shutdown(ch->live_fd, SHUT_RDWR);
    }
    work_cv_.NotifyAll();
    channels.swap(channels_);
  }
  for (std::unique_ptr<Channel>& ch : channels) {
    if (ch->thread.joinable()) ch->thread.join();
  }
}

uint64_t Coordinator::queries() const {
  MutexLock lock(&mu_);
  return queries_;
}

uint64_t Coordinator::degraded_queries() const {
  MutexLock lock(&mu_);
  return degraded_queries_;
}

uint64_t Coordinator::hedges_fired() const {
  MutexLock lock(&mu_);
  return hedges_fired_;
}

void Coordinator::ChannelLoop(Channel* ch) {
  for (;;) {
    uint64_t epoch = 0;
    RpcDeadline io_deadline = kNoRpcDeadline;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && !ch->work_pending) work_cv_.Wait(&mu_);
      if (stopping_) break;
      ch->work_pending = false;
      epoch = ch->epoch;
      io_deadline = ch->io_deadline;
      // Copy the frame before dropping mu_: ch->request points into
      // TopK-owned scratch that the next query re-encodes as soon as
      // this wave retires, so it must never be read unlocked. Claiming
      // and copying in one critical section means that once RunWave's
      // cancel section has run, no thread still holds the pointer.
      ch->request_copy.assign(ch->request->begin(), ch->request->end());
      ch->request = nullptr;
    }

    Status status = Status::OK();
    if (!ch->socket.valid()) {
      Result<Socket> conn =
          Socket::Connect(ch->endpoint.host, ch->endpoint.port, io_deadline);
      if (conn.ok()) {
        ch->socket = std::move(conn).value();
        MutexLock lock(&mu_);
        ch->live_fd = ch->socket.fd();
      } else {
        status = conn.status();
      }
    }
    if (status.ok()) {
      status = SendFrame(ch->socket, ch->request_copy, io_deadline);
    }
    if (status.ok()) {
      Result<FrameHeader> header =
          RecvFrame(ch->socket, &ch->recv_frame, io_deadline);
      if (!header.ok()) status = header.status();
    }

    MutexLock lock(&mu_);
    if (!status.ok()) {
      // Dead, canceled, or desynced stream: drop the connection so the
      // channel's next request reconnects (the worker-rejoin path).
      ch->socket.Close();
      ch->live_fd = -1;
    }
    if (epoch == query_epoch_ && !ch->result_ready) {
      ch->result_ready = true;
      ch->result_status = status;
      ch->result_frame.swap(ch->recv_frame);
      done_cv_.NotifyAll();
    }
  }
  ch->socket.Close();
  MutexLock lock(&mu_);
  ch->live_fd = -1;
}

void Coordinator::SubmitLocked(Channel* ch, const std::vector<uint8_t>* frame,
                               uint64_t epoch, RpcDeadline io_deadline) {
  ch->work_pending = true;
  ch->epoch = epoch;
  ch->request = frame;
  ch->io_deadline = io_deadline;
  ch->result_ready = false;
  ch->result_status = Status::OK();
}

void Coordinator::CancelInFlightLocked() {
  for (std::unique_ptr<Channel>& ch : channels_) {
    if (ch->epoch != query_epoch_ || ch->result_ready) continue;
    if (ch->work_pending) {
      // Never picked up: just retract it (and the borrowed frame
      // pointer with it, before the scratch it targets is reused).
      ch->work_pending = false;
      ch->request = nullptr;
      continue;
    }
    // Mid-flight: tear the stream down (see header on why the
    // connection cannot be reused after an abandoned response).
    if (ch->live_fd >= 0) ::shutdown(ch->live_fd, SHUT_RDWR);
  }
}

uint32_t Coordinator::RunWave(const std::vector<uint8_t>& frame,
                              uint32_t shard_lo, uint32_t shard_hi,
                              RpcDeadline hedge_time, RpcDeadline deadline,
                              DistTopKResult* result) {
  const uint32_t num_targets = shard_hi - shard_lo;
  const RpcDeadline io_deadline = deadline + options_.io_grace;
  uint32_t answered = 0;

  MutexLock lock(&mu_);
  const uint64_t epoch = ++query_epoch_;
  for (uint32_t s = shard_lo; s < shard_hi; ++s) {
    SubmitLocked(channels_[size_t{s} * 2].get(), &frame, epoch, io_deadline);
  }
  work_cv_.NotifyAll();

  // A shard is settled once a channel answered OK, or once its primary
  // failed and no rescue can come — hedging is off for this query, or
  // the hedge was submitted and failed too. Waiting longer on a failed
  // shard cannot produce an answer, so a fast connection refusal must
  // not stall the wave until the deadline.
  bool hedged = false;
  const bool hedging_enabled = hedge_time < deadline;
  for (;;) {
    uint32_t settled = 0;
    for (uint32_t s = shard_lo; s < shard_hi; ++s) {
      const Channel& prim = *channels_[size_t{s} * 2];
      const Channel& hedge = *channels_[size_t{s} * 2 + 1];
      const bool prim_done = prim.epoch == epoch && prim.result_ready;
      const bool hedge_done = hedge.epoch == epoch && hedge.result_ready;
      const bool any_ok = (prim_done && prim.result_status.ok()) ||
                          (hedge_done && hedge.result_status.ok());
      const bool prim_failed = prim_done && !prim.result_status.ok();
      const bool hedge_failed = hedge_done && !hedge.result_status.ok();
      const bool no_rescue = hedging_enabled ? hedge_failed : true;
      if (any_ok || (prim_failed && no_rescue)) ++settled;
    }
    if (settled == num_targets) break;

    const RpcDeadline wake =
        (!hedged && hedging_enabled) ? hedge_time : deadline;
    const bool timed_out = done_cv_.WaitUntil(&mu_, wake);
    if (!timed_out) continue;
    if (!hedged && hedging_enabled &&
        std::chrono::steady_clock::now() < deadline) {
      hedged = true;
      for (uint32_t s = shard_lo; s < shard_hi; ++s) {
        const Channel& prim = *channels_[size_t{s} * 2];
        if (prim.epoch == epoch && prim.result_ready &&
            prim.result_status.ok()) {
          continue;  // already answered; no hedge needed
        }
        SubmitLocked(channels_[size_t{s} * 2 + 1].get(), &frame, epoch,
                     io_deadline);
        ++hedges_fired_;
        ++result->hedges_fired;
      }
      work_cv_.NotifyAll();
      continue;
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
  }

  for (uint32_t s = shard_lo; s < shard_hi; ++s) {
    scratch_.shard_frames[s].clear();
    Channel* prim = channels_[size_t{s} * 2].get();
    Channel* hedge = channels_[size_t{s} * 2 + 1].get();
    Channel* src = nullptr;
    if (prim->epoch == epoch && prim->result_ready &&
        prim->result_status.ok()) {
      src = prim;
    } else if (hedge->epoch == epoch && hedge->result_ready &&
               hedge->result_status.ok()) {
      src = hedge;
    }
    if (src != nullptr) {
      scratch_.shard_frames[s].swap(src->result_frame);
      ++answered;
    }
  }
  CancelInFlightLocked();
  ++query_epoch_;  // freeze: late completions are discarded
  return answered;
}

QRANK_HOT void Coordinator::MergeResponses(uint32_t k, uint32_t shard_lo,
                                           uint32_t shard_hi,
                                           DistTopKResult* result) {
  for (uint32_t s = shard_lo; s < shard_hi; ++s) scratch_.cursor[s] = 0;
  result->entries.clear();
  while (result->entries.size() < k) {
    int best = -1;
    const WireTopKEntry* best_entry = nullptr;
    for (uint32_t s = shard_lo; s < shard_hi; ++s) {
      if (scratch_.shard_ok[s] == 0) continue;
      const std::vector<WireTopKEntry>& entries =
          scratch_.responses[s].entries;
      const size_t cur = scratch_.cursor[s];
      if (cur >= entries.size()) continue;
      if (best < 0 || BetterEntry(entries[cur], *best_entry)) {
        best = static_cast<int>(s);
        best_entry = &entries[cur];
      }
    }
    if (best < 0) break;
    ++scratch_.cursor[static_cast<size_t>(best)];
    // qrank-lint: allow(hot-alloc) amortized warm-up: grows to the
    // largest k the caller's reused DistTopKResult has seen, then 0.
    result->entries.push_back(TopKEntry{best_entry->global_row,
                                        best_entry->page_id,
                                        best_entry->score,
                                        best_entry->promoted != 0});
  }
}

void Coordinator::ApplyGlobalExploration(const TopKQuery& query,
                                         RpcDeadline deadline,
                                         DistTopKResult* result) {
  // Verbatim replay of QueryEngine's exploration loop (same Rng
  // stream, same draw/dup-check/attempt structure) over the merged
  // rows. Only row numbers matter here; page ids and scores of
  // promoted rows are resolved from the owning shards afterwards.
  std::vector<TopKEntry>& out = result->entries;
  const size_t out_size = out.size();
  const uint64_t n = map_.total_pages;
  const double eps = query.exploration_epsilon;
  scratch_.promotions.clear();
  Rng rng(query.exploration_seed);
  for (size_t j = 0; j < out_size; ++j) {
    if (!rng.Bernoulli(eps)) continue;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const NodeId row = static_cast<NodeId>(rng.UniformUint64(n));
      bool duplicate = false;
      for (size_t i = 0; i < out_size; ++i) {
        if (out[i].row == row) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      Promotion promo;
      promo.slot = j;
      promo.original = out[j];
      scratch_.promotions.push_back(promo);
      out[j] = TopKEntry{row, 0, 0.0, true};
      break;
    }
  }
  if (scratch_.promotions.empty()) return;

  // Resolve wave: every shard is asked; each returns the rows it owns.
  scratch_.resolve_request.request_id = next_request_id_++;
  scratch_.resolve_request.global_rows.clear();
  for (const Promotion& promo : scratch_.promotions) {
    scratch_.resolve_request.global_rows.push_back(out[promo.slot].row);
  }
  EncodeResolveRequest(scratch_.resolve_request, &scratch_.resolve_frame);
  const uint32_t answered = RunWave(scratch_.resolve_frame, 0,
                                    map_.num_shards, deadline, deadline,
                                    result);
  if (answered < map_.num_shards) result->degraded = true;

  const double alpha = query.blend_alpha;
  for (uint32_t s = 0; s < map_.num_shards; ++s) {
    const std::vector<uint8_t>& frame = scratch_.shard_frames[s];
    if (frame.empty()) continue;
    if (static_cast<FrameType>(frame[4]) != FrameType::kResolveResponse) {
      continue;
    }
    const Status decoded = DecodeResolveResponse(
        std::span<const uint8_t>(frame).subspan(kFrameHeaderBytes),
        &scratch_.resolve_response);
    if (!decoded.ok() ||
        scratch_.resolve_response.request_id !=
            scratch_.resolve_request.request_id ||
        scratch_.resolve_response.status !=
            static_cast<uint32_t>(StatusCode::kOk)) {
      continue;
    }
    for (const WireResolveEntry& e : scratch_.resolve_response.entries) {
      for (Promotion& promo : scratch_.promotions) {
        if (promo.filled || out[promo.slot].row != e.global_row) continue;
        out[promo.slot].page_id = e.page_id;
        out[promo.slot].score =
            alpha * e.quality + (1.0 - alpha) * e.pagerank;
        promo.filled = true;
      }
    }
  }

  for (const Promotion& promo : scratch_.promotions) {
    if (promo.filled) continue;
    // Owner shard degraded away mid-query: keep the deterministic
    // entry rather than serving a promotion with fabricated scores.
    out[promo.slot] = promo.original;
    result->degraded = true;
  }
}

Status Coordinator::TopK(const TopKQuery& query, DistTopKResult* result) {
  {
    MutexLock lock(&mu_);
    if (!started_ || stopping_) {
      return Status::FailedPrecondition("Coordinator is not running");
    }
    ++queries_;
  }
  if (!(query.blend_alpha >= 0.0 && query.blend_alpha <= 1.0)) {
    return Status::InvalidArgument("blend_alpha must be in [0, 1]");
  }
  if (!(query.exploration_epsilon >= 0.0 &&
        query.exploration_epsilon <= 1.0)) {
    return Status::InvalidArgument("exploration_epsilon must be in [0, 1]");
  }
  if (query.site != kAllSites && query.site >= map_.num_sites) {
    return Status::InvalidArgument("site out of range");
  }
  if (query.k > kMaxWireTopK) {
    return Status::InvalidArgument("k exceeds the wire cap");
  }

  result->entries.clear();
  result->degraded = false;
  result->shards_asked = 0;
  result->shards_answered = 0;
  result->hedges_fired = 0;

  const auto now = std::chrono::steady_clock::now();
  const RpcDeadline deadline = now + options_.query_deadline;
  const RpcDeadline hedge_time = now + options_.hedge_delay;

  const bool site_query = query.site != kAllSites;
  WireTopKRequest request;
  request.request_id = next_request_id_++;
  request.k = query.k;
  request.site = query.site;
  request.blend_alpha = query.blend_alpha;
  // Site queries run exploration on the owning worker (exact by row
  // translation); global queries replay it here after the merge.
  request.exploration_epsilon =
      site_query ? query.exploration_epsilon : 0.0;
  request.exploration_seed = query.exploration_seed;
  EncodeTopKRequest(request, &scratch_.request_frame);

  uint32_t shard_lo = 0;
  uint32_t shard_hi = map_.num_shards;
  if (site_query) {
    shard_lo = map_.ShardForSite(query.site);
    shard_hi = shard_lo + 1;
  }
  result->shards_asked = shard_hi - shard_lo;

  RunWave(scratch_.request_frame, shard_lo, shard_hi, hedge_time, deadline,
          result);

  // Decode the collected frames; a shard only counts as answered when
  // it produced a well-formed OK TopK response for this request.
  for (uint32_t s = shard_lo; s < shard_hi; ++s) {
    scratch_.shard_ok[s] = 0;
    const std::vector<uint8_t>& frame = scratch_.shard_frames[s];
    if (frame.empty()) continue;
    if (static_cast<FrameType>(frame[4]) != FrameType::kTopKResponse) {
      continue;
    }
    const Status decoded = DecodeTopKResponse(
        std::span<const uint8_t>(frame).subspan(kFrameHeaderBytes),
        &scratch_.responses[s]);
    if (!decoded.ok()) continue;
    const WireTopKResponse& resp = scratch_.responses[s];
    if (resp.request_id != request.request_id ||
        resp.status != static_cast<uint32_t>(StatusCode::kOk)) {
      continue;
    }
    scratch_.shard_ok[s] = 1;
    ++result->shards_answered;
  }
  if (result->shards_answered < result->shards_asked) {
    result->degraded = true;
  }

  MergeResponses(query.k, shard_lo, shard_hi, result);

  if (!site_query && query.exploration_epsilon > 0.0) {
    if (result->degraded) {
      // Partial merges cannot replay the oracle's exploration stream;
      // serve the deterministic partial results instead.
    } else {
      ApplyGlobalExploration(query, deadline, result);
    }
  }

  if (result->degraded) {
    MutexLock lock(&mu_);
    ++degraded_queries_;
  }
  return Status::OK();
}

}  // namespace qrank
