// WorkerServer: one shard of the distributed query tier.
//
// A worker mmaps its shard bundle (shard_<i>.qrkb) into a
// SnapshotStore, loads the QRKS sidecar for local->global row
// translation, and answers QRKF frames over an RpcServer:
//
//   kTopKRequest    -> QueryEngine::TopK on the shard bundle, rows
//                      translated to global, scores/promotions exactly
//                      as the single-process engine computes them.
//   kResolveRequest -> (page_id, quality, pagerank) for the global
//                      rows this shard owns; rows of other shards are
//                      silently skipped (the coordinator targets every
//                      shard and unions the answers).
//   kInfoRequest    -> shard shape + current store generation.
//
// Query execution is thread-per-connection (the RpcServer's model);
// each connection thread keeps its own TopKScratch, so concurrent
// queries never share mutable engine state and stay allocation-free
// after warm-up.

#ifndef QRANK_DIST_WORKER_H_
#define QRANK_DIST_WORKER_H_

#include <chrono>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "dist/rpc.h"
#include "dist/shard_map.h"
#include "serve/query_engine.h"
#include "serve/snapshot_store.h"

namespace qrank {

class WorkerServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 picks an ephemeral port; see port().
    uint16_t port = 0;
    /// Fault-injection hook: hold every TopK response for this long
    /// before sending it, so tests can kill the worker (or trip the
    /// coordinator's hedge/deadline logic) with requests reliably
    /// mid-stream. Zero in production.
    std::chrono::milliseconds test_response_delay{0};
  };

  explicit WorkerServer(Options options) : options_(std::move(options)) {}
  ~WorkerServer() { Stop(); }

  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;

  /// Loads the shard bundle (mmap) + QRKS sidecar and cross-checks
  /// them (page counts, site counts, row range). Must be called once
  /// before Start().
  Status Init(const std::string& bundle_path, const std::string& meta_path);

  /// Starts the RPC server. Init must have succeeded.
  Status Start();

  /// Stops the RPC server and joins its threads. Idempotent. A stopped
  /// worker cannot be restarted — construct a fresh WorkerServer to
  /// simulate a rejoin.
  void Stop();

  uint16_t port() const;
  uint32_t shard_index() const { return meta_.shard_index; }
  NodeId num_local_pages() const {
    return static_cast<NodeId>(meta_.global_rows.size());
  }

  /// TopK queries answered since Start (for tests/stats).
  uint64_t queries_served() const QRANK_EXCLUDES(mu_);

 private:
  void HandleFrame(const FrameHeader& header, std::span<const uint8_t> payload,
                   std::vector<uint8_t>* response);
  void HandleTopK(std::span<const uint8_t> payload,
                  std::vector<uint8_t>* response);
  void HandleResolve(std::span<const uint8_t> payload,
                     std::vector<uint8_t>* response);
  void HandleInfo(std::span<const uint8_t> payload,
                  std::vector<uint8_t>* response);

  const Options options_;

  // Immutable after Init (worker v1 serves one generation; the ingest
  // replication follow-on will publish new generations through store_).
  ShardMeta meta_;
  SnapshotStore store_;
  std::shared_ptr<const LoadedBundle> bundle_;
  bool initialized_ = false;

  std::unique_ptr<RpcServer> server_;

  mutable Mutex mu_;
  uint64_t queries_served_ QRANK_GUARDED_BY(mu_) = 0;
};

}  // namespace qrank

#endif  // QRANK_DIST_WORKER_H_
