#include "dist/shard_map.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstddef>
#include <cstring>
#include <fstream>

#include "common/parallel_for.h"
#include "serve/bundle_format.h"

namespace qrank {
namespace {

static_assert(std::endian::native == std::endian::little,
              "QRKM/QRKS files are little-endian");

constexpr char kShardMapMagic[4] = {'Q', 'R', 'K', 'M'};
constexpr char kShardMetaMagic[4] = {'Q', 'R', 'K', 'S'};
constexpr uint32_t kShardFileVersion = 1;

struct ShardMapFileHeader {
  char magic[4];
  uint32_t version;
  uint32_t num_shards;
  uint32_t num_sites;
  uint64_t total_pages;
  /// CRC-32 over the header bytes before this field, chained into the
  /// body — any single-bit corruption anywhere in the file is caught
  /// (the reserved field and the CRC itself are checked directly).
  uint32_t body_crc32;
  uint32_t reserved;
};
static_assert(sizeof(ShardMapFileHeader) == 32, "32-byte QRKM header");

struct ShardMetaFileHeader {
  char magic[4];
  uint32_t version;
  uint32_t shard_index;
  uint32_t num_shards;
  uint32_t num_local_pages;
  uint32_t num_sites;
  uint64_t total_pages;
  uint32_t body_crc32;
  uint32_t reserved;
};
static_assert(sizeof(ShardMetaFileHeader) == 40, "40-byte QRKS header");

Status WriteFileBytes(const std::string& path, const void* header,
                      size_t header_len, const void* body, size_t body_len) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open for write: " + path);
  f.write(static_cast<const char*>(header),
          static_cast<std::streamsize>(header_len));
  if (body_len > 0) {
    f.write(static_cast<const char*>(body),
            static_cast<std::streamsize>(body_len));
  }
  f.flush();
  if (!f) return Status::IOError("write failed: " + path);
  return Status::OK();
}

/// Reads the fixed header of a QRKM/QRKS file onto the caller's stack
/// and returns the file size; nothing is allocated yet (the hardened
/// reader discipline of graph_io / score_bundle).
Result<uint64_t> ReadFileHeader(const std::string& path, void* header,
                                size_t header_len) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};
  struct stat st = {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    return Status::IOError("cannot stat " + path);
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  if (file_size < header_len) {
    return Status::Corruption(path + ": smaller than its file header");
  }
  const ssize_t got = ::pread(fd, header, header_len, 0);
  if (got != static_cast<ssize_t>(header_len)) {
    return Status::IOError("cannot read header of " + path);
  }
  return file_size;
}

Status ReadFileBody(const std::string& path, size_t offset, uint8_t* body,
                    size_t body_len) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};
  const ssize_t got =
      ::pread(fd, body, body_len, static_cast<off_t>(offset));
  if (got != static_cast<ssize_t>(body_len)) {
    return Status::IOError("cannot read body of " + path);
  }
  return Status::OK();
}

}  // namespace

uint32_t ShardMap::ShardForSite(SiteId site) const {
  QRANK_CHECK(site < num_sites) << "site " << site << " out of range";
  const auto it = std::upper_bound(site_boundaries.begin(),
                                   site_boundaries.end(), site);
  return static_cast<uint32_t>(it - site_boundaries.begin()) - 1;
}

Result<ShardMap> BuildShardMap(const LoadedBundle& bundle,
                               uint32_t num_shards) {
  if (num_shards < 1 || num_shards > kMaxShards) {
    return Status::InvalidArgument("num_shards must be in [1, " +
                                   std::to_string(kMaxShards) + "]");
  }
  const SiteId num_sites = bundle.num_sites();
  if (num_shards > num_sites) {
    return Status::InvalidArgument(
        "cannot split " + std::to_string(num_sites) + " sites across " +
        std::to_string(num_shards) + " shards");
  }
  // Balance per-site posting weight pages(site) + 1 with the pull
  // sweep's prefix partitioner: prefix[i] = site_offsets[i] + i.
  const std::span<const uint32_t> site_offsets = bundle.site_offsets();
  std::vector<size_t> prefix(size_t{num_sites} + 1);
  for (size_t i = 0; i <= num_sites; ++i) prefix[i] = site_offsets[i] + i;
  const std::vector<size_t> bounds =
      WeightBalancedBoundaries(prefix, num_shards);

  ShardMap map;
  map.num_shards = num_shards;
  map.num_sites = num_sites;
  map.total_pages = bundle.num_pages();
  map.site_boundaries.assign(bounds.begin(), bounds.end());
  for (uint32_t s = 0; s < num_shards; ++s) {
    const uint32_t lo = map.site_boundaries[s];
    const uint32_t hi = map.site_boundaries[s + 1];
    if (site_offsets[hi] == site_offsets[lo]) {
      return Status::InvalidArgument(
          "shard " + std::to_string(s) +
          " would own zero pages; use fewer shards");
    }
  }
  return map;
}

Status SaveShardMap(const ShardMap& map, const std::string& path) {
  if (map.site_boundaries.size() != size_t{map.num_shards} + 1) {
    return Status::InvalidArgument("shard map boundary count mismatch");
  }
  ShardMapFileHeader header = {};
  std::memcpy(header.magic, kShardMapMagic, sizeof header.magic);
  header.version = kShardFileVersion;
  header.num_shards = map.num_shards;
  header.num_sites = map.num_sites;
  header.total_pages = map.total_pages;
  header.body_crc32 = BundleCrc32(
      reinterpret_cast<const uint8_t*>(map.site_boundaries.data()),
      map.site_boundaries.size() * sizeof(uint32_t),
      BundleCrc32(reinterpret_cast<const uint8_t*>(&header),
                  offsetof(ShardMapFileHeader, body_crc32)));
  return WriteFileBytes(path, &header, sizeof header,
                        map.site_boundaries.data(),
                        map.site_boundaries.size() * sizeof(uint32_t));
}

Result<ShardMap> LoadShardMap(const std::string& path) {
  ShardMapFileHeader header = {};
  QRANK_ASSIGN_OR_RETURN(const uint64_t file_size,
                         ReadFileHeader(path, &header, sizeof header));
  if (std::memcmp(header.magic, kShardMapMagic, sizeof header.magic) != 0) {
    return Status::Corruption(path + ": bad QRKM magic");
  }
  if (header.version != kShardFileVersion) {
    return Status::Corruption(path + ": unsupported QRKM version " +
                              std::to_string(header.version));
  }
  if (header.reserved != 0) {
    return Status::Corruption(path + ": nonzero QRKM reserved field");
  }
  if (header.num_shards < 1 || header.num_shards > kMaxShards) {
    return Status::Corruption(path + ": shard count out of range");
  }
  const uint64_t body_len = (uint64_t{header.num_shards} + 1) * sizeof(uint32_t);
  if (file_size != sizeof header + body_len) {
    return Status::Corruption(path + ": QRKM size mismatch");
  }
  ShardMap map;
  map.num_shards = header.num_shards;
  map.num_sites = header.num_sites;
  map.total_pages = header.total_pages;
  map.site_boundaries.resize(size_t{header.num_shards} + 1);
  QRANK_RETURN_NOT_OK(ReadFileBody(
      path, sizeof header,
      reinterpret_cast<uint8_t*>(map.site_boundaries.data()), body_len));
  const uint32_t crc = BundleCrc32(
      reinterpret_cast<const uint8_t*>(map.site_boundaries.data()), body_len,
      BundleCrc32(reinterpret_cast<const uint8_t*>(&header),
                  offsetof(ShardMapFileHeader, body_crc32)));
  if (crc != header.body_crc32) {
    return Status::Corruption(path + ": QRKM CRC mismatch");
  }
  if (map.site_boundaries.front() != 0 ||
      map.site_boundaries.back() != map.num_sites) {
    return Status::Corruption(path + ": QRKM boundary endpoints invalid");
  }
  for (size_t s = 1; s < map.site_boundaries.size(); ++s) {
    if (map.site_boundaries[s] < map.site_boundaries[s - 1]) {
      return Status::Corruption(path + ": QRKM boundaries not monotone");
    }
  }
  return map;
}

Status SaveShardMeta(const ShardMeta& meta, const std::string& path) {
  ShardMetaFileHeader header = {};
  std::memcpy(header.magic, kShardMetaMagic, sizeof header.magic);
  header.version = kShardFileVersion;
  header.shard_index = meta.shard_index;
  header.num_shards = meta.num_shards;
  header.num_local_pages = static_cast<uint32_t>(meta.global_rows.size());
  header.num_sites = meta.num_sites;
  header.total_pages = meta.total_pages;
  header.body_crc32 = BundleCrc32(
      reinterpret_cast<const uint8_t*>(meta.global_rows.data()),
      meta.global_rows.size() * sizeof(uint32_t),
      BundleCrc32(reinterpret_cast<const uint8_t*>(&header),
                  offsetof(ShardMetaFileHeader, body_crc32)));
  return WriteFileBytes(path, &header, sizeof header, meta.global_rows.data(),
                        meta.global_rows.size() * sizeof(uint32_t));
}

Result<ShardMeta> LoadShardMeta(const std::string& path) {
  ShardMetaFileHeader header = {};
  QRANK_ASSIGN_OR_RETURN(const uint64_t file_size,
                         ReadFileHeader(path, &header, sizeof header));
  if (std::memcmp(header.magic, kShardMetaMagic, sizeof header.magic) != 0) {
    return Status::Corruption(path + ": bad QRKS magic");
  }
  if (header.version != kShardFileVersion) {
    return Status::Corruption(path + ": unsupported QRKS version " +
                              std::to_string(header.version));
  }
  if (header.reserved != 0) {
    return Status::Corruption(path + ": nonzero QRKS reserved field");
  }
  if (header.num_shards < 1 || header.num_shards > kMaxShards ||
      header.shard_index >= header.num_shards) {
    return Status::Corruption(path + ": QRKS shard index out of range");
  }
  if (header.num_local_pages > header.total_pages) {
    return Status::Corruption(path + ": QRKS page count exceeds total");
  }
  const uint64_t body_len = uint64_t{header.num_local_pages} * sizeof(uint32_t);
  if (file_size != sizeof header + body_len) {
    return Status::Corruption(path + ": QRKS size mismatch");
  }
  ShardMeta meta;
  meta.shard_index = header.shard_index;
  meta.num_shards = header.num_shards;
  meta.num_sites = header.num_sites;
  meta.total_pages = header.total_pages;
  meta.global_rows.resize(header.num_local_pages);
  QRANK_RETURN_NOT_OK(ReadFileBody(
      path, sizeof header, reinterpret_cast<uint8_t*>(meta.global_rows.data()),
      body_len));
  const uint32_t crc = BundleCrc32(
      reinterpret_cast<const uint8_t*>(meta.global_rows.data()), body_len,
      BundleCrc32(reinterpret_cast<const uint8_t*>(&header),
                  offsetof(ShardMetaFileHeader, body_crc32)));
  if (crc != header.body_crc32) {
    return Status::Corruption(path + ": QRKS CRC mismatch");
  }
  for (size_t i = 0; i < meta.global_rows.size(); ++i) {
    if (meta.global_rows[i] >= meta.total_pages ||
        (i > 0 && meta.global_rows[i] <= meta.global_rows[i - 1])) {
      return Status::Corruption(path + ": QRKS rows not strictly ascending");
    }
  }
  return meta;
}

Result<ShardSplit> SplitBundleBySite(const LoadedBundle& bundle,
                                     uint32_t num_shards,
                                     const std::string& out_dir,
                                     ParallelOptions parallel) {
  QRANK_ASSIGN_OR_RETURN(ShardMap map, BuildShardMap(bundle, num_shards));

  const std::span<const double> quality = bundle.quality();
  const std::span<const double> pagerank = bundle.pagerank();
  const std::span<const NodeId> page_ids = bundle.page_ids();
  const std::span<const SiteId> site_ids = bundle.site_ids();
  const NodeId n = bundle.num_pages();

  ShardSplit split;
  split.map = map;
  for (uint32_t s = 0; s < num_shards; ++s) {
    const SiteId site_lo = map.site_boundaries[s];
    const SiteId site_hi = map.site_boundaries[s + 1];

    ShardMeta meta;
    meta.shard_index = s;
    meta.num_shards = num_shards;
    meta.num_sites = map.num_sites;
    meta.total_pages = map.total_pages;
    // Ascending global-row scan: local rows preserve global relative
    // order, keeping the local->global map monotone (see header).
    for (NodeId r = 0; r < n; ++r) {
      if (site_ids[r] >= site_lo && site_ids[r] < site_hi) {
        meta.global_rows.push_back(r);
      }
    }

    ScoreBundleSource source;
    source.quality.reserve(meta.global_rows.size());
    source.pagerank.reserve(meta.global_rows.size());
    source.page_ids.reserve(meta.global_rows.size());
    source.site_ids.reserve(meta.global_rows.size());
    for (const uint32_t gr : meta.global_rows) {
      source.quality.push_back(quality[gr]);
      source.pagerank.push_back(pagerank[gr]);
      source.page_ids.push_back(page_ids[gr]);
      source.site_ids.push_back(site_ids[gr]);
    }
    source.num_sites = bundle.num_sites();
    source.creator_tag = bundle.creator_tag();

    QRANK_ASSIGN_OR_RETURN(
        const ScoreBundleWriter writer,
        ScoreBundleWriter::Create(std::move(source), parallel));
    const std::string bundle_path =
        out_dir + "/shard_" + std::to_string(s) + ".qrkb";
    const std::string meta_path =
        out_dir + "/shard_" + std::to_string(s) + ".qrks";
    QRANK_RETURN_NOT_OK(writer.WriteFile(bundle_path));
    QRANK_RETURN_NOT_OK(SaveShardMeta(meta, meta_path));
    split.bundle_paths.push_back(bundle_path);
    split.meta_paths.push_back(meta_path);
  }
  split.map_path = out_dir + "/shard_map.qrkm";
  QRANK_RETURN_NOT_OK(SaveShardMap(map, split.map_path));
  return split;
}

}  // namespace qrank
