#include "dist/worker.h"

#include <algorithm>
#include <thread>

namespace qrank {

Status WorkerServer::Init(const std::string& bundle_path,
                          const std::string& meta_path) {
  if (initialized_) {
    return Status::FailedPrecondition("WorkerServer already initialized");
  }
  QRANK_ASSIGN_OR_RETURN(ShardMeta meta, LoadShardMeta(meta_path));
  QRANK_ASSIGN_OR_RETURN(LoadedBundle bundle,
                         LoadedBundle::Load(bundle_path, /*prefer_mmap=*/true));
  if (bundle.num_pages() != meta.global_rows.size()) {
    return Status::FailedPrecondition(
        "shard bundle has " + std::to_string(bundle.num_pages()) +
        " pages but QRKS sidecar maps " +
        std::to_string(meta.global_rows.size()));
  }
  if (bundle.num_sites() != meta.num_sites) {
    return Status::FailedPrecondition(
        "shard bundle/sidecar site count mismatch (bundles keep the "
        "global site space)");
  }
  meta_ = std::move(meta);
  store_.Publish(std::move(bundle));
  bundle_ = store_.Acquire();
  initialized_ = true;
  return Status::OK();
}

Status WorkerServer::Start() {
  if (!initialized_) {
    return Status::FailedPrecondition("WorkerServer::Init must succeed first");
  }
  if (server_ != nullptr) {
    return Status::FailedPrecondition("WorkerServer already started");
  }
  RpcServer::Options options;
  options.host = options_.host;
  options.port = options_.port;
  server_ = std::make_unique<RpcServer>(
      options, [this](const FrameHeader& header,
                      std::span<const uint8_t> payload,
                      std::vector<uint8_t>* response) {
        HandleFrame(header, payload, response);
      });
  Status started = server_->Start();
  if (!started.ok()) server_.reset();
  return started;
}

void WorkerServer::Stop() {
  if (server_ != nullptr) server_->Stop();
}

uint16_t WorkerServer::port() const {
  return server_ != nullptr ? server_->port() : 0;
}

uint64_t WorkerServer::queries_served() const {
  MutexLock lock(&mu_);
  return queries_served_;
}

void WorkerServer::HandleFrame(const FrameHeader& header,
                               std::span<const uint8_t> payload,
                               std::vector<uint8_t>* response) {
  switch (header.type) {
    case FrameType::kTopKRequest:
      HandleTopK(payload, response);
      return;
    case FrameType::kResolveRequest:
      HandleResolve(payload, response);
      return;
    case FrameType::kInfoRequest:
      HandleInfo(payload, response);
      return;
    default:
      // Response-typed or error frames make no sense inbound; answer
      // with an error frame and let the client decide.
      EncodeError(0,
                  Status::InvalidArgument(
                      std::string("worker cannot serve frame type ") +
                      FrameTypeName(static_cast<uint8_t>(header.type))),
                  response);
      return;
  }
}

void WorkerServer::HandleTopK(std::span<const uint8_t> payload,
                              std::vector<uint8_t>* response) {
  // One scratch per connection thread: queries on a connection reuse
  // it, so the engine stays allocation-free after warm-up and no
  // engine state is shared across threads.
  thread_local TopKScratch scratch;
  thread_local WireTopKRequest request;
  thread_local WireTopKResponse reply;

  const Status decoded = DecodeTopKRequest(payload, &request);
  if (!decoded.ok()) {
    EncodeError(0, decoded, response);
    return;
  }

  TopKQuery query;
  query.k = request.k;
  query.blend_alpha = request.blend_alpha;
  query.site = request.site;
  query.exploration_epsilon = request.exploration_epsilon;
  query.exploration_seed = request.exploration_seed;

  reply.request_id = request.request_id;
  reply.shard_index = meta_.shard_index;
  reply.entries.clear();

  Status served = Status::OK();
  // A site query for a site this shard does not own has an empty
  // posting group and legitimately returns zero entries; the
  // coordinator routes site queries to the owner, so this only
  // happens to misrouted or hand-written clients.
  if (query.site != kAllSites && query.site >= meta_.num_sites) {
    served = Status::InvalidArgument("site out of range");
  } else {
    served = QueryEngine::TopKOnBundle(*bundle_, query, &scratch);
  }
  reply.status = static_cast<uint32_t>(served.code());
  if (served.ok()) {
    for (const TopKEntry& e : scratch.results()) {
      WireTopKEntry entry;
      entry.global_row = meta_.global_rows[e.row];
      entry.page_id = e.page_id;
      entry.score = e.score;
      entry.promoted = e.promoted ? 1 : 0;
      reply.entries.push_back(entry);
    }
  }

  if (options_.test_response_delay.count() > 0) {
    std::this_thread::sleep_for(options_.test_response_delay);
  }
  EncodeTopKResponse(reply, response);
  MutexLock lock(&mu_);
  ++queries_served_;
}

void WorkerServer::HandleResolve(std::span<const uint8_t> payload,
                                 std::vector<uint8_t>* response) {
  thread_local WireResolveRequest request;
  thread_local WireResolveResponse reply;

  const Status decoded = DecodeResolveRequest(payload, &request);
  if (!decoded.ok()) {
    EncodeError(0, decoded, response);
    return;
  }

  reply.request_id = request.request_id;
  reply.status = static_cast<uint32_t>(StatusCode::kOk);
  reply.entries.clear();
  const std::span<const double> quality = bundle_->quality();
  const std::span<const double> pagerank = bundle_->pagerank();
  const std::span<const NodeId> page_ids = bundle_->page_ids();
  for (const uint32_t global_row : request.global_rows) {
    // global_rows is strictly ascending: binary-search the local row.
    const auto it = std::lower_bound(meta_.global_rows.begin(),
                                     meta_.global_rows.end(), global_row);
    if (it == meta_.global_rows.end() || *it != global_row) continue;
    const auto local =
        static_cast<size_t>(it - meta_.global_rows.begin());
    WireResolveEntry entry;
    entry.global_row = global_row;
    entry.page_id = page_ids[local];
    entry.quality = quality[local];
    entry.pagerank = pagerank[local];
    reply.entries.push_back(entry);
  }
  EncodeResolveResponse(reply, response);
}

void WorkerServer::HandleInfo(std::span<const uint8_t> payload,
                              std::vector<uint8_t>* response) {
  uint64_t request_id = 0;
  const Status decoded = DecodeInfoRequest(payload, &request_id);
  if (!decoded.ok()) {
    EncodeError(0, decoded, response);
    return;
  }
  WireInfoResponse info;
  info.request_id = request_id;
  info.shard_index = meta_.shard_index;
  info.num_shards = meta_.num_shards;
  info.num_local_pages = static_cast<uint32_t>(meta_.global_rows.size());
  info.num_sites = meta_.num_sites;
  info.total_pages = meta_.total_pages;
  info.generation = store_.generation();
  EncodeInfoResponse(info, response);
}

}  // namespace qrank
