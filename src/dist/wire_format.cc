#include "dist/wire_format.h"

#include <cstring>
#include <string_view>

namespace qrank {
namespace {

// Fixed payload sizes (bytes). Trailing-array messages list the fixed
// prefix only; see the layout table in wire_format.h.
constexpr size_t kTopKRequestBytes = 40;
constexpr size_t kTopKResponseFixedBytes = 24;
constexpr size_t kTopKEntryBytes = 24;
constexpr size_t kResolveRequestFixedBytes = 16;
constexpr size_t kResolveResponseFixedBytes = 16;
constexpr size_t kResolveEntryBytes = 24;
constexpr size_t kInfoRequestBytes = 8;
constexpr size_t kInfoResponseBytes = 40;
constexpr size_t kErrorFixedBytes = 16;
constexpr size_t kMaxErrorMessageBytes = 4096;

void WriteU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof v); }
void WriteU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof v); }
void WriteF64(uint8_t* p, double v) { std::memcpy(p, &v, sizeof v); }

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
uint64_t ReadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
double ReadF64(const uint8_t* p) {
  double v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

// Lays out the frame header for a payload of `payload_len` bytes and
// returns a pointer to the payload region. The CRC slot is filled by
// SealFrame once the payload bytes are in place.
uint8_t* BeginFrame(FrameType type, size_t payload_len,
                    std::vector<uint8_t>* frame) {
  QRANK_CHECK(payload_len <= kMaxFramePayload)
      << "encoder produced oversized frame payload: " << payload_len;
  frame->clear();
  frame->resize(kFrameHeaderBytes + payload_len);
  uint8_t* p = frame->data();
  std::memcpy(p, kFrameMagic, sizeof kFrameMagic);
  p[4] = static_cast<uint8_t>(type);
  p[5] = 0;  // flags
  p[6] = 0;  // reserved
  p[7] = 0;
  WriteU32(p + 8, static_cast<uint32_t>(payload_len));
  WriteU32(p + 12, 0);  // CRC placeholder
  return p + kFrameHeaderBytes;
}

void SealFrame(std::vector<uint8_t>* frame) {
  uint8_t* p = frame->data();
  const uint32_t crc =
      BundleCrc32(p + kFrameHeaderBytes, frame->size() - kFrameHeaderBytes,
                  BundleCrc32(p, 12));
  WriteU32(p + 12, crc);
}

}  // namespace

bool FrameTypeKnown(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kTopKRequest) &&
         t <= static_cast<uint8_t>(FrameType::kError);
}

const char* FrameTypeName(uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kTopKRequest:
      return "topk_request";
    case FrameType::kTopKResponse:
      return "topk_response";
    case FrameType::kResolveRequest:
      return "resolve_request";
    case FrameType::kResolveResponse:
      return "resolve_response";
    case FrameType::kInfoRequest:
      return "info_request";
    case FrameType::kInfoResponse:
      return "info_response";
    case FrameType::kError:
      return "error";
  }
  return "unknown";
}

void EncodeTopKRequest(const WireTopKRequest& req,
                       std::vector<uint8_t>* frame) {
  uint8_t* p = BeginFrame(FrameType::kTopKRequest, kTopKRequestBytes, frame);
  WriteU64(p + 0, req.request_id);
  WriteU32(p + 8, req.k);
  WriteU32(p + 12, req.site);
  WriteF64(p + 16, req.blend_alpha);
  WriteF64(p + 24, req.exploration_epsilon);
  WriteU64(p + 32, req.exploration_seed);
  SealFrame(frame);
}

void EncodeTopKResponse(const WireTopKResponse& resp,
                        std::vector<uint8_t>* frame) {
  QRANK_CHECK(resp.entries.size() <= kMaxWireTopK)
      << "oversized topk response: " << resp.entries.size();
  const size_t payload_len =
      kTopKResponseFixedBytes + resp.entries.size() * kTopKEntryBytes;
  uint8_t* p = BeginFrame(FrameType::kTopKResponse, payload_len, frame);
  WriteU64(p + 0, resp.request_id);
  WriteU32(p + 8, resp.status);
  WriteU32(p + 12, static_cast<uint32_t>(resp.entries.size()));
  WriteU32(p + 16, resp.shard_index);
  WriteU32(p + 20, 0);  // reserved
  uint8_t* e = p + kTopKResponseFixedBytes;
  for (const WireTopKEntry& entry : resp.entries) {
    WriteU32(e + 0, entry.global_row);
    WriteU32(e + 4, entry.page_id);
    WriteF64(e + 8, entry.score);
    WriteU32(e + 16, entry.promoted);
    WriteU32(e + 20, 0);  // reserved
    e += kTopKEntryBytes;
  }
  SealFrame(frame);
}

void EncodeResolveRequest(const WireResolveRequest& req,
                          std::vector<uint8_t>* frame) {
  QRANK_CHECK(req.global_rows.size() <= kMaxWireResolveRows)
      << "oversized resolve request: " << req.global_rows.size();
  const size_t payload_len =
      kResolveRequestFixedBytes + req.global_rows.size() * sizeof(uint32_t);
  uint8_t* p = BeginFrame(FrameType::kResolveRequest, payload_len, frame);
  WriteU64(p + 0, req.request_id);
  WriteU32(p + 8, static_cast<uint32_t>(req.global_rows.size()));
  WriteU32(p + 12, 0);  // reserved
  uint8_t* e = p + kResolveRequestFixedBytes;
  for (const uint32_t row : req.global_rows) {
    WriteU32(e, row);
    e += sizeof(uint32_t);
  }
  SealFrame(frame);
}

void EncodeResolveResponse(const WireResolveResponse& resp,
                           std::vector<uint8_t>* frame) {
  QRANK_CHECK(resp.entries.size() <= kMaxWireResolveRows)
      << "oversized resolve response: " << resp.entries.size();
  const size_t payload_len =
      kResolveResponseFixedBytes + resp.entries.size() * kResolveEntryBytes;
  uint8_t* p = BeginFrame(FrameType::kResolveResponse, payload_len, frame);
  WriteU64(p + 0, resp.request_id);
  WriteU32(p + 8, resp.status);
  WriteU32(p + 12, static_cast<uint32_t>(resp.entries.size()));
  uint8_t* e = p + kResolveResponseFixedBytes;
  for (const WireResolveEntry& entry : resp.entries) {
    WriteU32(e + 0, entry.global_row);
    WriteU32(e + 4, entry.page_id);
    WriteF64(e + 8, entry.quality);
    WriteF64(e + 16, entry.pagerank);
    e += kResolveEntryBytes;
  }
  SealFrame(frame);
}

void EncodeInfoRequest(uint64_t request_id, std::vector<uint8_t>* frame) {
  uint8_t* p = BeginFrame(FrameType::kInfoRequest, kInfoRequestBytes, frame);
  WriteU64(p, request_id);
  SealFrame(frame);
}

void EncodeInfoResponse(const WireInfoResponse& resp,
                        std::vector<uint8_t>* frame) {
  uint8_t* p = BeginFrame(FrameType::kInfoResponse, kInfoResponseBytes, frame);
  WriteU64(p + 0, resp.request_id);
  WriteU32(p + 8, resp.shard_index);
  WriteU32(p + 12, resp.num_shards);
  WriteU32(p + 16, resp.num_local_pages);
  WriteU32(p + 20, resp.num_sites);
  WriteU64(p + 24, resp.total_pages);
  WriteU64(p + 32, resp.generation);
  SealFrame(frame);
}

void EncodeError(uint64_t request_id, const Status& error,
                 std::vector<uint8_t>* frame) {
  std::string_view msg = error.message();
  if (msg.size() > kMaxErrorMessageBytes) msg = msg.substr(0, kMaxErrorMessageBytes);
  const size_t payload_len = kErrorFixedBytes + msg.size();
  uint8_t* p = BeginFrame(FrameType::kError, payload_len, frame);
  WriteU64(p + 0, request_id);
  WriteU32(p + 8, static_cast<uint32_t>(error.code()));
  WriteU32(p + 12, static_cast<uint32_t>(msg.size()));
  std::memcpy(p + kErrorFixedBytes, msg.data(), msg.size());
  SealFrame(frame);
}

Result<FrameHeader> DecodeFrameHeader(std::span<const uint8_t> bytes) {
  if (bytes.size() < kFrameHeaderBytes) {
    return Status::Corruption("frame header truncated: " +
                              std::to_string(bytes.size()) + " bytes");
  }
  const uint8_t* p = bytes.data();
  if (std::memcmp(p, kFrameMagic, sizeof kFrameMagic) != 0) {
    return Status::Corruption("bad frame magic");
  }
  if (!FrameTypeKnown(p[4])) {
    return Status::Corruption("unknown frame type " + std::to_string(p[4]));
  }
  if (p[5] != 0 || p[6] != 0 || p[7] != 0) {
    return Status::Corruption("nonzero frame flags/reserved bytes");
  }
  FrameHeader header;
  header.type = static_cast<FrameType>(p[4]);
  header.payload_len = ReadU32(p + 8);
  header.frame_crc32 = ReadU32(p + 12);
  if (header.payload_len > kMaxFramePayload) {
    return Status::Corruption("frame payload length " +
                              std::to_string(header.payload_len) +
                              " exceeds cap");
  }
  return header;
}

Result<FrameHeader> DecodeFrame(std::span<const uint8_t> frame) {
  Result<FrameHeader> header = DecodeFrameHeader(frame);
  if (!header.ok()) return header;
  const size_t want = kFrameHeaderBytes + size_t{header.value().payload_len};
  if (frame.size() != want) {
    return Status::Corruption(
        "frame size mismatch: have " + std::to_string(frame.size()) +
        " bytes, header declares " + std::to_string(want));
  }
  const uint32_t crc =
      BundleCrc32(frame.data() + kFrameHeaderBytes,
                  header.value().payload_len, BundleCrc32(frame.data(), 12));
  if (crc != header.value().frame_crc32) {
    return Status::Corruption("frame CRC mismatch");
  }
  return header;
}

Status DecodeTopKRequest(std::span<const uint8_t> payload,
                         WireTopKRequest* out) {
  if (payload.size() != kTopKRequestBytes) {
    return Status::Corruption("topk request payload size " +
                              std::to_string(payload.size()));
  }
  const uint8_t* p = payload.data();
  out->request_id = ReadU64(p + 0);
  out->k = ReadU32(p + 8);
  out->site = ReadU32(p + 12);
  out->blend_alpha = ReadF64(p + 16);
  out->exploration_epsilon = ReadF64(p + 24);
  out->exploration_seed = ReadU64(p + 32);
  if (out->k > kMaxWireTopK) {
    return Status::Corruption("topk request k " + std::to_string(out->k) +
                              " exceeds cap");
  }
  return Status::OK();
}

Status DecodeTopKResponse(std::span<const uint8_t> payload,
                          WireTopKResponse* out) {
  if (payload.size() < kTopKResponseFixedBytes) {
    return Status::Corruption("topk response payload truncated");
  }
  const uint8_t* p = payload.data();
  const uint32_t entry_count = ReadU32(p + 12);
  if (entry_count > kMaxWireTopK) {
    return Status::Corruption("topk response entry count " +
                              std::to_string(entry_count) + " exceeds cap");
  }
  if (payload.size() !=
      kTopKResponseFixedBytes + size_t{entry_count} * kTopKEntryBytes) {
    return Status::Corruption("topk response payload size mismatch");
  }
  out->request_id = ReadU64(p + 0);
  out->status = ReadU32(p + 8);
  out->shard_index = ReadU32(p + 16);
  out->entries.resize(entry_count);
  const uint8_t* e = p + kTopKResponseFixedBytes;
  for (uint32_t i = 0; i < entry_count; ++i) {
    WireTopKEntry& entry = out->entries[i];
    entry.global_row = ReadU32(e + 0);
    entry.page_id = ReadU32(e + 4);
    entry.score = ReadF64(e + 8);
    const uint32_t promoted = ReadU32(e + 16);
    if (promoted > 1) {
      return Status::Corruption("topk response promoted flag out of range");
    }
    entry.promoted = static_cast<uint8_t>(promoted);
    e += kTopKEntryBytes;
  }
  return Status::OK();
}

Status DecodeResolveRequest(std::span<const uint8_t> payload,
                            WireResolveRequest* out) {
  if (payload.size() < kResolveRequestFixedBytes) {
    return Status::Corruption("resolve request payload truncated");
  }
  const uint8_t* p = payload.data();
  const uint32_t row_count = ReadU32(p + 8);
  if (row_count > kMaxWireResolveRows) {
    return Status::Corruption("resolve request row count " +
                              std::to_string(row_count) + " exceeds cap");
  }
  if (payload.size() !=
      kResolveRequestFixedBytes + size_t{row_count} * sizeof(uint32_t)) {
    return Status::Corruption("resolve request payload size mismatch");
  }
  out->request_id = ReadU64(p + 0);
  out->global_rows.resize(row_count);
  const uint8_t* e = p + kResolveRequestFixedBytes;
  for (uint32_t i = 0; i < row_count; ++i) {
    out->global_rows[i] = ReadU32(e);
    e += sizeof(uint32_t);
  }
  return Status::OK();
}

Status DecodeResolveResponse(std::span<const uint8_t> payload,
                             WireResolveResponse* out) {
  if (payload.size() < kResolveResponseFixedBytes) {
    return Status::Corruption("resolve response payload truncated");
  }
  const uint8_t* p = payload.data();
  const uint32_t entry_count = ReadU32(p + 12);
  if (entry_count > kMaxWireResolveRows) {
    return Status::Corruption("resolve response entry count " +
                              std::to_string(entry_count) + " exceeds cap");
  }
  if (payload.size() !=
      kResolveResponseFixedBytes + size_t{entry_count} * kResolveEntryBytes) {
    return Status::Corruption("resolve response payload size mismatch");
  }
  out->request_id = ReadU64(p + 0);
  out->status = ReadU32(p + 8);
  out->entries.resize(entry_count);
  const uint8_t* e = p + kResolveResponseFixedBytes;
  for (uint32_t i = 0; i < entry_count; ++i) {
    WireResolveEntry& entry = out->entries[i];
    entry.global_row = ReadU32(e + 0);
    entry.page_id = ReadU32(e + 4);
    entry.quality = ReadF64(e + 8);
    entry.pagerank = ReadF64(e + 16);
    e += kResolveEntryBytes;
  }
  return Status::OK();
}

Status DecodeInfoRequest(std::span<const uint8_t> payload,
                         uint64_t* request_id) {
  if (payload.size() != kInfoRequestBytes) {
    return Status::Corruption("info request payload size " +
                              std::to_string(payload.size()));
  }
  *request_id = ReadU64(payload.data());
  return Status::OK();
}

Status DecodeInfoResponse(std::span<const uint8_t> payload,
                          WireInfoResponse* out) {
  if (payload.size() != kInfoResponseBytes) {
    return Status::Corruption("info response payload size " +
                              std::to_string(payload.size()));
  }
  const uint8_t* p = payload.data();
  out->request_id = ReadU64(p + 0);
  out->shard_index = ReadU32(p + 8);
  out->num_shards = ReadU32(p + 12);
  out->num_local_pages = ReadU32(p + 16);
  out->num_sites = ReadU32(p + 20);
  out->total_pages = ReadU64(p + 24);
  out->generation = ReadU64(p + 32);
  return Status::OK();
}

Status DecodeError(std::span<const uint8_t> payload, WireError* out) {
  if (payload.size() < kErrorFixedBytes) {
    return Status::Corruption("error payload truncated");
  }
  const uint8_t* p = payload.data();
  const uint32_t message_len = ReadU32(p + 12);
  if (message_len > kMaxErrorMessageBytes) {
    return Status::Corruption("error message length " +
                              std::to_string(message_len) + " exceeds cap");
  }
  if (payload.size() != kErrorFixedBytes + size_t{message_len}) {
    return Status::Corruption("error payload size mismatch");
  }
  out->request_id = ReadU64(p + 0);
  out->status = ReadU32(p + 8);
  out->message.assign(reinterpret_cast<const char*>(p + kErrorFixedBytes),
                      message_len);
  return Status::OK();
}

}  // namespace qrank
