// Wire format of the distributed query tier ("QRKF" frames), shared by
// the worker server and the coordinator client (src/dist/rpc.*).
//
// Every message on a coordinator<->worker connection is one frame:
//
//   offset  size  field
//   0       4     magic "QRKF"
//   4       1     type (FrameType)
//   5       1     flags (zero in v1)
//   6       2     reserved (zero)
//   8       4     payload_len, little-endian, <= kMaxFramePayload
//   12      4     frame_crc32 (bundle_format.h's reflected CRC-32 over
//                 header bytes [0, 12) then the payload)
//   16      --    payload (type-specific layout below)
//
// The frame header carries everything a reader needs to bound its work
// BEFORE touching the payload: magic + type reject desynchronized or
// foreign streams, payload_len is capped so a corrupt length can never
// drive an allocation (the PR-3/QRKB hardened reader contract), and the
// frame CRC turns any in-flight corruption into Status::Corruption
// instead of a misparsed query. The CRC deliberately covers the header
// prefix too: several FrameType values are one bit apart, so a
// payload-only CRC would let a flipped type byte re-interpret a valid
// payload as the wrong message. The per-byte bit-flip and truncation
// sweeps in tests/dist/wire_format_test.cc pin this down: every
// corrupted or truncated frame must decode to an error, never crash,
// over-read, or silently succeed.
//
// Payload layouts (all integers and doubles little-endian; fixed part
// first, then trailing arrays):
//
//   kTopKRequest    request_id u64, k u32, site u32, blend_alpha f64,
//                   exploration_epsilon f64, exploration_seed u64
//   kTopKResponse   request_id u64, status u32, entry_count u32,
//                   shard_index u32, reserved u32,
//                   entries[entry_count]: global_row u32, page_id u32,
//                   score f64, promoted u32, reserved u32   (24 B each)
//   kResolveRequest request_id u64, row_count u32, reserved u32,
//                   global_rows u32[row_count]
//   kResolveResponse request_id u64, status u32, entry_count u32,
//                   entries[entry_count]: global_row u32, page_id u32,
//                   quality f64, pagerank f64               (24 B each)
//   kInfoRequest    request_id u64
//   kInfoResponse   request_id u64, shard_index u32, num_shards u32,
//                   num_local_pages u32, num_sites u32, total_pages u64,
//                   generation u64
//   kError          request_id u64, status u32, message_len u32,
//                   message bytes (not NUL-terminated)
//
// Rows on the wire are GLOBAL rows of the unsharded bundle: the worker
// translates its local bundle rows through the shard meta
// (shard_map.h), which is what lets the coordinator merge per-shard
// answers with the exact (score desc, row asc) tie-break of the
// single-process oracle.

#ifndef QRANK_DIST_WIRE_FORMAT_H_
#define QRANK_DIST_WIRE_FORMAT_H_

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/bundle_format.h"

namespace qrank {

static_assert(std::endian::native == std::endian::little,
              "QRKF frames are little-endian; big-endian hosts would "
              "need byte-swapping codec paths");

inline constexpr char kFrameMagic[4] = {'Q', 'R', 'K', 'F'};
inline constexpr uint32_t kFrameHeaderBytes = 16;
/// Hard payload cap: bounds every allocation a decoder can be driven
/// into by a corrupt or hostile length field. Generous enough for a
/// 64k-entry response (64k * 24 B = 1.5 MiB) with headroom.
inline constexpr uint32_t kMaxFramePayload = 8u << 20;
/// Hard cap on k in a request and entries in a response.
inline constexpr uint32_t kMaxWireTopK = 65536;
/// Hard cap on rows in one resolve request.
inline constexpr uint32_t kMaxWireResolveRows = 65536;

enum class FrameType : uint8_t {
  kTopKRequest = 1,
  kTopKResponse = 2,
  kResolveRequest = 3,
  kResolveResponse = 4,
  kInfoRequest = 5,
  kInfoResponse = 6,
  kError = 7,
};

/// True iff `t` is a v1 frame type.
bool FrameTypeKnown(uint8_t t);

/// Stable name for logs ("topk_request", ...; "unknown" otherwise).
const char* FrameTypeName(uint8_t t);

struct FrameHeader {
  FrameType type = FrameType::kError;
  uint32_t payload_len = 0;
  /// CRC-32 over header bytes [0, 12) chained into the payload.
  uint32_t frame_crc32 = 0;
};

struct WireTopKRequest {
  uint64_t request_id = 0;
  uint32_t k = 0;
  uint32_t site = 0;  // kAllSites sentinel = 0xffffffff
  double blend_alpha = 1.0;
  double exploration_epsilon = 0.0;
  uint64_t exploration_seed = 0;
};

struct WireTopKEntry {
  uint32_t global_row = 0;
  uint32_t page_id = 0;
  double score = 0.0;
  uint8_t promoted = 0;
};

struct WireTopKResponse {
  uint64_t request_id = 0;
  uint32_t status = 0;  // StatusCode as u32; entries valid only when kOk
  uint32_t shard_index = 0;
  std::vector<WireTopKEntry> entries;  // reused across decodes
};

struct WireResolveRequest {
  uint64_t request_id = 0;
  std::vector<uint32_t> global_rows;  // reused across decodes
};

struct WireResolveEntry {
  uint32_t global_row = 0;
  uint32_t page_id = 0;
  double quality = 0.0;
  double pagerank = 0.0;
};

struct WireResolveResponse {
  uint64_t request_id = 0;
  uint32_t status = 0;
  std::vector<WireResolveEntry> entries;  // reused across decodes
};

struct WireInfoResponse {
  uint64_t request_id = 0;
  uint32_t shard_index = 0;
  uint32_t num_shards = 0;
  uint32_t num_local_pages = 0;
  uint32_t num_sites = 0;
  uint64_t total_pages = 0;
  uint64_t generation = 0;
};

struct WireError {
  uint64_t request_id = 0;
  uint32_t status = 0;
  std::string message;
};

// --- Encoding -------------------------------------------------------
//
// Every encoder clears `frame` and writes one complete frame (header +
// payload) into it; capacity is reused, so a warmed caller encodes
// without allocating.

void EncodeTopKRequest(const WireTopKRequest& req, std::vector<uint8_t>* frame);
void EncodeTopKResponse(const WireTopKResponse& resp,
                        std::vector<uint8_t>* frame);
void EncodeResolveRequest(const WireResolveRequest& req,
                          std::vector<uint8_t>* frame);
void EncodeResolveResponse(const WireResolveResponse& resp,
                           std::vector<uint8_t>* frame);
void EncodeInfoRequest(uint64_t request_id, std::vector<uint8_t>* frame);
void EncodeInfoResponse(const WireInfoResponse& resp,
                        std::vector<uint8_t>* frame);
void EncodeError(uint64_t request_id, const Status& error,
                 std::vector<uint8_t>* frame);

// --- Decoding -------------------------------------------------------

/// Validates the 16 fixed header bytes: magic, known type, zero
/// flags/reserved, payload_len <= kMaxFramePayload. Needs only
/// kFrameHeaderBytes input — safe to run before any payload read or
/// allocation. Corruption on any violation.
Result<FrameHeader> DecodeFrameHeader(std::span<const uint8_t> bytes);

/// Full-frame decode entry: header validation, then length and CRC
/// checks of the payload slice. Returns the validated header; the
/// payload is frame.subspan(kFrameHeaderBytes). Used by the stream
/// reader after it has read exactly header.payload_len payload bytes,
/// and by the fuzz-style sweeps on whole captured frames.
Result<FrameHeader> DecodeFrame(std::span<const uint8_t> frame);

/// Typed payload decoders. Each validates the payload length against
/// the declared counts BEFORE resizing any output vector, so a corrupt
/// count dies in validation, not in operator new. Output containers are
/// reused (resize within capacity after warm-up).
Status DecodeTopKRequest(std::span<const uint8_t> payload,
                         WireTopKRequest* out);
Status DecodeTopKResponse(std::span<const uint8_t> payload,
                          WireTopKResponse* out);
Status DecodeResolveRequest(std::span<const uint8_t> payload,
                            WireResolveRequest* out);
Status DecodeResolveResponse(std::span<const uint8_t> payload,
                             WireResolveResponse* out);
Status DecodeInfoRequest(std::span<const uint8_t> payload,
                         uint64_t* request_id);
Status DecodeInfoResponse(std::span<const uint8_t> payload,
                          WireInfoResponse* out);
Status DecodeError(std::span<const uint8_t> payload, WireError* out);

}  // namespace qrank

#endif  // QRANK_DIST_WIRE_FORMAT_H_
