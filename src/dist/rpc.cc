#include "dist/rpc.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstring>

namespace qrank {
namespace {

Status ErrnoStatus(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

/// Milliseconds until `deadline` for poll(2): -1 = block forever,
/// 0 = already expired (callers treat as timeout before polling).
int RemainingMs(RpcDeadline deadline) {
  if (deadline == kNoRpcDeadline) return -1;
  const auto now = std::chrono::steady_clock::now();
  if (now >= deadline) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
          .count() +
      1;  // round up so we never poll(0) while time remains
  return ms > INT_MAX ? INT_MAX : static_cast<int>(ms);
}

/// Blocks until fd is ready for `events` or the deadline passes.
/// POLLERR/POLLHUP also count as ready: the subsequent send/recv
/// reports the precise error.
Status WaitReady(int fd, short events, RpcDeadline deadline,
                 const char* what) {
  for (;;) {
    const int ms = RemainingMs(deadline);
    if (ms == 0) {
      return Status::IOError(std::string(what) + ": deadline exceeded");
    }
    struct pollfd p = {fd, events, 0};
    const int rc = ::poll(&p, 1, ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) {
      return Status::IOError(std::string(what) + ": deadline exceeded");
    }
    if (errno != EINTR) return ErrnoStatus("poll");
  }
}

Status SetNonBlocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  const int want = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) < 0) return ErrnoStatus("fcntl(F_SETFL)");
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port,
                               RpcDeadline deadline) {
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return ErrnoStatus("socket");
  // Non-blocking connect so the deadline bounds the handshake too.
  QRANK_RETURN_NOT_OK(SetNonBlocking(sock.fd(), true));
  const int rc = ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                           sizeof addr);
  if (rc < 0) {
    if (errno != EINPROGRESS) return ErrnoStatus("connect");
    QRANK_RETURN_NOT_OK(WaitReady(sock.fd(), POLLOUT, deadline, "connect"));
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return ErrnoStatus("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return Status::IOError(std::string("connect: ") + std::strerror(err));
    }
  }
  // The socket stays non-blocking for its lifetime: SendAll/RecvAll
  // pace every syscall with poll(2), so a single send/recv can never
  // block past the remaining deadline (a blocking send of a frame
  // larger than the socket buffer would stall until the peer drains
  // it, unbounded by the poll-side deadline).
  SetNoDelay(sock.fd());
  return sock;
}

Status Socket::SendAll(const uint8_t* data, size_t len, RpcDeadline deadline) {
  if (!valid()) return Status::FailedPrecondition("send on closed socket");
  size_t sent = 0;
  while (sent < len) {
    QRANK_RETURN_NOT_OK(WaitReady(fd_, POLLOUT, deadline, "send"));
    const ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    return ErrnoStatus("send");
  }
  return Status::OK();
}

Status Socket::RecvAll(uint8_t* data, size_t len, RpcDeadline deadline) {
  if (!valid()) return Status::FailedPrecondition("recv on closed socket");
  size_t got = 0;
  while (got < len) {
    QRANK_RETURN_NOT_OK(WaitReady(fd_, POLLIN, deadline, "recv"));
    const ssize_t n = ::recv(fd_, data + got, len - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return Status::IOError("connection closed by peer");
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return ErrnoStatus("recv");
  }
  return Status::OK();
}

void Socket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SendFrame(Socket& sock, std::span<const uint8_t> frame,
                 RpcDeadline deadline) {
  QRANK_CHECK(frame.size() >= kFrameHeaderBytes)
      << "SendFrame given a non-frame buffer";
  return sock.SendAll(frame.data(), frame.size(), deadline);
}

Result<FrameHeader> RecvFrame(Socket& sock, std::vector<uint8_t>* frame,
                              RpcDeadline deadline) {
  frame->clear();
  frame->resize(kFrameHeaderBytes);
  QRANK_RETURN_NOT_OK(
      sock.RecvAll(frame->data(), kFrameHeaderBytes, deadline));
  Result<FrameHeader> header = DecodeFrameHeader(*frame);
  if (!header.ok()) return header;
  // payload_len is validated against kMaxFramePayload by
  // DecodeFrameHeader before this resize can run.
  frame->resize(kFrameHeaderBytes + header.value().payload_len);
  QRANK_RETURN_NOT_OK(sock.RecvAll(frame->data() + kFrameHeaderBytes,
                                   header.value().payload_len, deadline));
  return DecodeFrame(*frame);
}

RpcServer::RpcServer(Options options, FrameHandler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

RpcServer::~RpcServer() { Stop(); }

Status RpcServer::Start() {
  MutexLock lock(&mu_);
  if (started_) return Status::FailedPrecondition("RpcServer already started");
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " +
                                   options_.host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const Status st = ErrnoStatus("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) < 0) {
    const Status st = ErrnoStatus("listen");
    ::close(fd);
    return st;
  }
  struct sockaddr_in bound = {};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const Status st = ErrnoStatus("getsockname");
    ::close(fd);
    return st;
  }
  listen_fd_ = fd;
  bound_port_ = ntohs(bound.sin_port);
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void RpcServer::Stop() {
  {
    MutexLock lock(&mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Connection>> conns;
  {
    MutexLock lock(&mu_);
    for (std::unique_ptr<Connection>& c : connections_) c->socket.Shutdown();
    conns.swap(connections_);
  }
  for (std::unique_ptr<Connection>& c : conns) {
    if (c->thread.joinable()) c->thread.join();
  }
  MutexLock lock(&mu_);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

uint16_t RpcServer::port() const {
  MutexLock lock(&mu_);
  return bound_port_;
}

size_t RpcServer::active_connections() const {
  MutexLock lock(&mu_);
  size_t live = 0;
  for (const std::unique_ptr<Connection>& c : connections_) {
    if (!c->finished) ++live;
  }
  return live;
}

uint64_t RpcServer::frames_handled() const {
  MutexLock lock(&mu_);
  return frames_handled_;
}

void RpcServer::AcceptLoop() {
  for (;;) {
    int lfd = -1;
    {
      MutexLock lock(&mu_);
      if (stopping_) return;
      lfd = listen_fd_;
    }
    struct sockaddr_in peer = {};
    socklen_t len = sizeof peer;
    const int cfd = ::accept(lfd, reinterpret_cast<sockaddr*>(&peer), &len);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      {
        MutexLock lock(&mu_);
        if (stopping_) return;
      }
      // Persistent accept failure (e.g. EMFILE/ENFILE): with a
      // connection still pending, accept fails again immediately, so
      // back off briefly instead of busy-spinning a core until fds
      // free up. Stop() is delayed by at most one sleep.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    if (!SetNonBlocking(cfd, true).ok()) {
      ::close(cfd);
      continue;
    }
    SetNoDelay(cfd);
    MutexLock lock(&mu_);
    if (stopping_) {
      ::close(cfd);
      return;
    }
    ReapFinishedLocked();
    auto conn = std::make_unique<Connection>();
    conn->socket = Socket(cfd);
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] { ConnectionLoop(raw); });
    connections_.push_back(std::move(conn));
  }
}

void RpcServer::ConnectionLoop(Connection* conn) {
  std::vector<uint8_t> frame;
  std::vector<uint8_t> response;
  for (;;) {
    Result<FrameHeader> header =
        RecvFrame(conn->socket, &frame, kNoRpcDeadline);
    if (!header.ok()) break;  // disconnect, cancel, or corrupt stream
    response.clear();
    handler_(header.value(),
             std::span<const uint8_t>(frame).subspan(kFrameHeaderBytes),
             &response);
    {
      MutexLock lock(&mu_);
      ++frames_handled_;
    }
    if (response.empty()) break;  // handler declared the stream dead
    const RpcDeadline deadline =
        std::chrono::steady_clock::now() + options_.send_timeout;
    if (!SendFrame(conn->socket, response, deadline).ok()) break;
  }
  conn->socket.Shutdown();
  MutexLock lock(&mu_);
  conn->finished = true;
}

void RpcServer::ReapFinishedLocked() {
  for (size_t i = 0; i < connections_.size();) {
    if (connections_[i]->finished) {
      if (connections_[i]->thread.joinable()) connections_[i]->thread.join();
      connections_.erase(connections_.begin() +
                         static_cast<ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

}  // namespace qrank
