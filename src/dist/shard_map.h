// Site-sharded partitioning of a score bundle: the shard map ("QRKM")
// the coordinator routes with, the per-shard sidecar ("QRKS") a worker
// uses to translate local bundle rows back to global rows, and the
// splitter that turns one QRKB bundle into per-shard QRKB bundles.
//
// Partitioning contract (the exact-merge argument leans on all three):
//
//  1. Sites are never split: shard s owns the contiguous site range
//     [site_boundaries[s], site_boundaries[s+1]), balanced over
//     per-site page counts with WeightBalancedBoundaries — the same
//     edge-balanced prefix partitioner the PageRank pull sweep uses,
//     with "posting weight" = pages(site) + 1 standing in for
//     in-degree + 1. Site-filtered queries therefore route to exactly
//     one worker, whose posting group is identical (under row
//     translation) to the unsharded bundle's, so engine-side
//     exploration stays bit-exact.
//
//  2. A shard bundle keeps GLOBAL site ids and the GLOBAL site count,
//     so site numbering needs no translation anywhere; foreign sites
//     simply have empty posting groups.
//
//  3. Shard-local rows are the shard's global rows in ascending order
//     (ShardMeta::global_rows is strictly increasing). The local->
//     global map is monotone, so every (score desc, row asc) order the
//     engine produces locally translates to the same order globally,
//     and the coordinator's merge comparator can work on global rows
//     alone.

#ifndef QRANK_DIST_SHARD_MAP_H_
#define QRANK_DIST_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/score_bundle.h"

namespace qrank {

/// Sanity cap on shard counts (a corrupt QRKM header cannot drive a
/// larger allocation).
inline constexpr uint32_t kMaxShards = 1024;

/// Coordinator-side routing table, serialized as a QRKM file.
struct ShardMap {
  uint32_t num_shards = 0;
  SiteId num_sites = 0;
  uint64_t total_pages = 0;
  /// num_shards + 1 monotone boundaries over site ids; shard s owns
  /// sites [site_boundaries[s], site_boundaries[s+1]).
  std::vector<uint32_t> site_boundaries;

  /// Shard owning `site` (site must be < num_sites).
  uint32_t ShardForSite(SiteId site) const;
};

/// Worker-side sidecar for one shard bundle, serialized as a QRKS
/// file next to the shard's QRKB.
struct ShardMeta {
  uint32_t shard_index = 0;
  uint32_t num_shards = 0;
  SiteId num_sites = 0;
  uint64_t total_pages = 0;
  /// Strictly ascending; local row i of the shard bundle is global row
  /// global_rows[i] of the unsharded bundle.
  std::vector<uint32_t> global_rows;
};

/// Builds the balanced site partition for `bundle` (num_shards >= 1,
/// <= kMaxShards; every shard must end up owning at least one page).
Result<ShardMap> BuildShardMap(const LoadedBundle& bundle,
                               uint32_t num_shards);

Status SaveShardMap(const ShardMap& map, const std::string& path);
Result<ShardMap> LoadShardMap(const std::string& path);

Status SaveShardMeta(const ShardMeta& meta, const std::string& path);
Result<ShardMeta> LoadShardMeta(const std::string& path);

/// Everything SplitBundleBySite wrote: the map plus per-shard file
/// paths (index == shard index).
struct ShardSplit {
  ShardMap map;
  std::vector<std::string> bundle_paths;  // <out_dir>/shard_<i>.qrkb
  std::vector<std::string> meta_paths;    // <out_dir>/shard_<i>.qrks
  std::string map_path;                   // <out_dir>/shard_map.qrkm
};

/// Partitions `bundle` into num_shards per-shard bundles under
/// `out_dir` (which must exist), writing shard_<i>.qrkb +
/// shard_<i>.qrks per shard and shard_map.qrkm. Shard bundle images
/// are deterministic in (bundle, num_shards) — `parallel` only sets
/// the writer's executor width.
Result<ShardSplit> SplitBundleBySite(const LoadedBundle& bundle,
                                     uint32_t num_shards,
                                     const std::string& out_dir,
                                     ParallelOptions parallel = {});

}  // namespace qrank

#endif  // QRANK_DIST_SHARD_MAP_H_
