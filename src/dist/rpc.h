// Socket transport of the distributed query tier: an RAII TCP socket
// with deadline-bounded I/O, framed send/receive over the QRKF wire
// format, and a thread-per-connection RPC server.
//
// Threading model (deliberately simple, mirroring mithril's
// BasicServer): the server runs one accept thread plus one thread per
// live connection; sockets are O_NONBLOCK for their whole lifetime and
// every operation loops poll(2)+syscall, so each individual send/recv
// — not just the wait for readiness — is bounded by the remaining
// deadline. Cancellation is by disconnect — a
// caller that gives up on a request shuts the socket down, which makes
// the peer's blocked read fail and tears the stream down instead of
// leaving it desynchronized (a QRKF stream has no request framing to
// resynchronize on after an abandoned response).
//
// All shared state is annotated (QRANK_GUARDED_BY) and uses
// qrank::Mutex; the loopback suites run under TSan in CI.

#ifndef QRANK_DIST_RPC_H_
#define QRANK_DIST_RPC_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "dist/wire_format.h"

namespace qrank {

/// Absolute deadline for a socket operation. kNoRpcDeadline blocks
/// until the peer acts or the connection dies.
using RpcDeadline = std::chrono::steady_clock::time_point;
inline constexpr RpcDeadline kNoRpcDeadline = RpcDeadline::max();

/// Move-only RAII wrapper over a connected TCP socket fd.
///
/// A Socket is owned and used by ONE thread at a time; the only
/// cross-thread operation is Shutdown(), which is async-safe against a
/// concurrent blocked Send/Recv on the same object (it calls
/// ::shutdown, never ::close, so the fd cannot be recycled under the
/// blocked thread).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1"),
  /// honoring the deadline for the connect itself.
  static Result<Socket> Connect(const std::string& host, uint16_t port,
                                RpcDeadline deadline);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends exactly len bytes or fails (IOError on disconnect or
  /// deadline).
  Status SendAll(const uint8_t* data, size_t len, RpcDeadline deadline);

  /// Receives exactly len bytes or fails. A clean EOF before any byte
  /// of this read maps to IOError("connection closed").
  Status RecvAll(uint8_t* data, size_t len, RpcDeadline deadline);

  /// Half-closes both directions, failing any blocked or future I/O on
  /// this socket. Safe to call from another thread; idempotent.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
};

/// Sends one already-encoded QRKF frame.
Status SendFrame(Socket& sock, std::span<const uint8_t> frame,
                 RpcDeadline deadline);

/// Receives one frame into *frame (header + payload, buffer reused
/// across calls) and fully validates it — header sanity before the
/// payload read is sized (hardened reader contract), then payload CRC.
/// Any corruption fails the call; callers treat that as a dead stream.
Result<FrameHeader> RecvFrame(Socket& sock, std::vector<uint8_t>* frame,
                              RpcDeadline deadline);

/// Thread-per-connection RPC server over QRKF frames.
///
/// The handler is invoked on a connection thread for every received
/// frame and must encode exactly one response frame into
/// *response_frame (an empty response closes the connection, used for
/// unrecoverable protocol errors). Handlers run concurrently across
/// connections and must be thread-safe.
class RpcServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 picks an ephemeral port; see port().
    uint16_t port = 0;
    /// Deadline for writing a response back to a client.
    std::chrono::milliseconds send_timeout{5000};
  };

  using FrameHandler =
      std::function<void(const FrameHeader& header,
                         std::span<const uint8_t> payload,
                         std::vector<uint8_t>* response_frame)>;

  RpcServer(Options options, FrameHandler handler);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds, listens and spawns the accept thread. FailedPrecondition
  /// if already started.
  Status Start() QRANK_EXCLUDES(mu_);

  /// Shuts the listener and every live connection down and joins all
  /// threads. Idempotent; also run by the destructor.
  void Stop() QRANK_EXCLUDES(mu_);

  /// Bound port (useful with Options::port == 0). 0 before Start().
  uint16_t port() const QRANK_EXCLUDES(mu_);

  /// Connections currently being served.
  size_t active_connections() const QRANK_EXCLUDES(mu_);

  /// Total frames dispatched to the handler since Start().
  uint64_t frames_handled() const QRANK_EXCLUDES(mu_);

 private:
  struct Connection;

  void AcceptLoop();
  void ConnectionLoop(Connection* conn);

  /// Joins finished connection threads. Called with mu_ held.
  void ReapFinishedLocked() QRANK_REQUIRES(mu_);

  struct Connection {
    std::thread thread;
    Socket socket;
    bool finished = false;
  };

  const Options options_;
  const FrameHandler handler_;

  mutable Mutex mu_;
  bool started_ QRANK_GUARDED_BY(mu_) = false;
  bool stopping_ QRANK_GUARDED_BY(mu_) = false;
  uint16_t bound_port_ QRANK_GUARDED_BY(mu_) = 0;
  /// Listener fd lives here (not in a Socket) so AcceptLoop can block
  /// in accept() while Stop() shuts it down under the lock.
  int listen_fd_ QRANK_GUARDED_BY(mu_) = -1;
  std::vector<std::unique_ptr<Connection>> connections_ QRANK_GUARDED_BY(mu_);
  uint64_t frames_handled_ QRANK_GUARDED_BY(mu_) = 0;

  /// Accept thread; joined by Stop. Only touched by Start/Stop, which
  /// serialize through started_/stopping_.
  std::thread accept_thread_;
};

}  // namespace qrank

#endif  // QRANK_DIST_RPC_H_
