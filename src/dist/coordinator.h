// Coordinator: fans a TopK query out to every shard worker, merges the
// per-shard exact top-k lists into the exact global top-k, and bounds
// tail latency with per-query deadlines + hedged requests.
//
// ## Exact-merge argument (the dist_oracle_test contract)
//
// Shards partition the bundle's rows (by site, shard_map.h), each
// worker returns its exact shard-local top-k under the same blended
// score and the same (score desc, global row asc) tie-break as the
// single-process engine, and the global top-k is contained in the
// union of shard top-k's (a page in the global top-k beats every page
// outside it, in particular all pages of its own shard outside the
// shard's top-k). The coordinator's k-way merge uses the identical
// comparator on global rows, so the merged list is element-for-element
// identical to QueryEngine::TopK on the unsharded bundle. Scores agree
// bitwise because both sides evaluate the same double expression
// alpha*q + (1-alpha)*pr on the same doubles.
//
// Exploration (Pandey per-slot promotion) survives distribution in two
// different ways:
//   * site queries route to the single owning shard with epsilon/seed
//     intact — the worker's posting group is identical (under the
//     monotone row translation) to the unsharded one, so the engine's
//     own exploration already matches the oracle.
//   * global queries are fanned out with epsilon forced to 0; after
//     the exact merge the coordinator replays the engine's exploration
//     loop verbatim (same Rng stream: one Bernoulli per slot, up to 8
//     uniform row draws checked against the evolving result rows),
//     then resolves the promoted rows' (page_id, quality, pagerank)
//     from the owning shards and computes the same blend. The replay
//     needs only row numbers, which the merge already has.
//
// ## Deadline / hedging state machine (per query)
//
//     submit primaries ──▶ wait ──▶ all done? ──▶ merge (exact)
//          │ hedge_delay passes with shard(s) silent
//          ▼
//     submit hedges (replica, or 2nd connection) ──▶ wait
//          │ deadline passes with shard(s) still silent
//          ▼
//     cancel stragglers (epoch bump + socket shutdown),
//     return partial results with degraded = true
//
// A canceled request's connection is torn down rather than reused —
// the QRKF stream has no way to skip an abandoned response, so
// cancel-by-disconnect is what keeps request/response framing in sync.
// Late answers that raced the cancel are discarded by the epoch check;
// a channel whose connection died reconnects on its next request,
// which is also the worker-rejoin path.
//
// Thread model: Start() spawns two persistent channel threads per
// shard (primary + hedge), all sharing one coordinator mutex for
// state handoff; socket I/O runs unlocked. A Coordinator instance
// serves ONE query at a time (TopK is externally synchronized) — run
// one Coordinator per client thread, mirroring TopKScratch.

#ifndef QRANK_DIST_COORDINATOR_H_
#define QRANK_DIST_COORDINATOR_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "dist/rpc.h"
#include "dist/shard_map.h"
#include "serve/query_engine.h"

namespace qrank {

struct ShardEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// Where shard s lives. With a replica, hedged requests go there;
/// without one they open a second connection to the primary (which
/// rescues a wedged connection, not a dead worker).
struct ShardAddress {
  ShardEndpoint primary;
  bool has_replica = false;
  ShardEndpoint replica;
};

struct CoordinatorOptions {
  /// Per-query budget; a shard that has not answered by then is
  /// canceled and the query returns degraded partial results.
  std::chrono::milliseconds query_deadline{250};
  /// How long a shard may stay silent before its hedge request fires.
  /// >= query_deadline disables hedging.
  std::chrono::milliseconds hedge_delay{60};
  /// Slack past the query deadline granted to channel socket I/O as a
  /// backstop — explicit cancellation is the primary mechanism.
  std::chrono::milliseconds io_grace{1000};
};

/// One distributed TopK answer. Reuse the instance across queries:
/// entries allocates only until it has seen the largest k.
struct DistTopKResult {
  std::vector<TopKEntry> entries;  // best first; rows are GLOBAL rows
  /// True when any target shard missed the deadline / dropped, or a
  /// global query had to skip or abandon exploration resolve.
  bool degraded = false;
  uint32_t shards_asked = 0;
  uint32_t shards_answered = 0;
  uint32_t hedges_fired = 0;
};

class Coordinator {
 public:
  /// `shards[s]` addresses shard s; shards.size() must equal
  /// map.num_shards.
  Coordinator(ShardMap map, std::vector<ShardAddress> shards,
              CoordinatorOptions options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Spawns the channel threads. No connections are opened yet —
  /// channels connect lazily on their first request and reconnect on
  /// the next request after a failure (the worker-rejoin path).
  Status Start() QRANK_EXCLUDES(mu_);

  /// Cancels any in-flight work and joins all channel threads.
  void Stop() QRANK_EXCLUDES(mu_);

  /// Distributed top-k. Exact (oracle-identical) when result->degraded
  /// is false; partial results otherwise. One call at a time per
  /// Coordinator (see header comment).
  Status TopK(const TopKQuery& query, DistTopKResult* result)
      QRANK_EXCLUDES(mu_);

  const ShardMap& shard_map() const { return map_; }

  uint64_t queries() const QRANK_EXCLUDES(mu_);
  uint64_t degraded_queries() const QRANK_EXCLUDES(mu_);
  uint64_t hedges_fired() const QRANK_EXCLUDES(mu_);

 private:
  /// One persistent request/response lane: a channel owns one socket
  /// and one thread; the coordinator hands it an encoded frame and
  /// collects the raw response frame. Two channels per shard (primary
  /// = channels_[2s], hedge = channels_[2s+1]).
  ///
  /// The handoff fields below (work_pending .. live_fd) are guarded by
  /// Coordinator::mu_ — expressed in prose because GUARDED_BY cannot
  /// name an enclosing object's member from a nested struct; the TSan
  /// loopback suite enforces it dynamically. socket/recv_frame are
  /// channel-thread-private.
  struct Channel {
    ShardEndpoint endpoint;
    uint32_t shard = 0;
    bool is_hedge = false;

    std::thread thread;

    // Guarded by Coordinator::mu_.
    bool work_pending = false;
    uint64_t epoch = 0;
    /// Borrowed pointer into TopK-owned scratch; only valid while
    /// work_pending is set. The channel thread copies the frame into
    /// request_copy in the SAME critical section that claims the work,
    /// so the pointer is never dereferenced unlocked (RunWave retracts
    /// unclaimed work before TopK may re-encode the scratch buffer).
    const std::vector<uint8_t>* request = nullptr;
    RpcDeadline io_deadline = kNoRpcDeadline;
    bool result_ready = false;
    Status result_status;
    std::vector<uint8_t> result_frame;
    int live_fd = -1;  // for cancel-by-disconnect; -1 when unconnected

    // Channel-thread-private.
    Socket socket;
    std::vector<uint8_t> request_copy;
    std::vector<uint8_t> recv_frame;
  };

  /// Tracks one exploration promotion so an unresolvable row (owner
  /// shard degraded) can be rolled back to the deterministic entry.
  struct Promotion {
    size_t slot = 0;
    TopKEntry original;
    bool filled = false;
  };

  /// Per-query scratch, preallocated by Start: the fan-out, merge and
  /// exploration-replay paths are allocation-free after warm-up.
  struct QueryScratch {
    std::vector<uint8_t> request_frame;
    std::vector<uint8_t> resolve_frame;
    std::vector<std::vector<uint8_t>> shard_frames;  // slot per shard
    std::vector<uint8_t> shard_ok;                   // slot per shard
    std::vector<WireTopKResponse> responses;         // slot per shard
    std::vector<size_t> cursor;                      // slot per shard
    WireResolveRequest resolve_request;
    WireResolveResponse resolve_response;
    std::vector<Promotion> promotions;
  };

  void ChannelLoop(Channel* ch);

  void SubmitLocked(Channel* ch, const std::vector<uint8_t>* frame,
                    uint64_t epoch, RpcDeadline io_deadline)
      QRANK_REQUIRES(mu_);

  /// Cancels every channel still working on the current epoch: clears
  /// unclaimed work, shuts down mid-flight connections. The caller
  /// bumps query_epoch_ right after, which invalidates late results.
  void CancelInFlightLocked() QRANK_REQUIRES(mu_);

  /// Fans `frame` to shards [shard_lo, shard_hi), hedging silent
  /// shards at hedge_time, and collects raw response frames into
  /// scratch_.shard_frames (empty = no transport-level answer) until
  /// every shard answered or `deadline`. Returns the number of shards
  /// that answered.
  uint32_t RunWave(const std::vector<uint8_t>& frame, uint32_t shard_lo,
                   uint32_t shard_hi, RpcDeadline hedge_time,
                   RpcDeadline deadline, DistTopKResult* result)
      QRANK_EXCLUDES(mu_);

  /// Exact k-way merge of the decoded shard responses (shard_ok slots)
  /// into result->entries. Allocation-free after warm-up.
  void MergeResponses(uint32_t k, uint32_t shard_lo, uint32_t shard_hi,
                      DistTopKResult* result);

  /// Replays the engine's exploration loop over the merged rows, then
  /// resolves promoted rows via a resolve wave. Rolls back promotions
  /// it cannot resolve and marks the result degraded.
  void ApplyGlobalExploration(const TopKQuery& query, RpcDeadline deadline,
                              DistTopKResult* result) QRANK_EXCLUDES(mu_);

  const ShardMap map_;
  const std::vector<ShardAddress> shards_;
  const CoordinatorOptions options_;

  QueryScratch scratch_;           // TopK-thread-private
  uint64_t next_request_id_ = 1;   // TopK-thread-private

  mutable Mutex mu_;
  CondVar work_cv_;  // channels wait for work
  CondVar done_cv_;  // TopK waits for completions
  bool started_ QRANK_GUARDED_BY(mu_) = false;
  bool stopping_ QRANK_GUARDED_BY(mu_) = false;
  uint64_t query_epoch_ QRANK_GUARDED_BY(mu_) = 0;
  std::vector<std::unique_ptr<Channel>> channels_ QRANK_GUARDED_BY(mu_);
  uint64_t queries_ QRANK_GUARDED_BY(mu_) = 0;
  uint64_t degraded_queries_ QRANK_GUARDED_BY(mu_) = 0;
  uint64_t hedges_fired_ QRANK_GUARDED_BY(mu_) = 0;
};

}  // namespace qrank

#endif  // QRANK_DIST_COORDINATOR_H_
