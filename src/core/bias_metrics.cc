#include "core/bias_metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace qrank {

Result<double> GiniCoefficient(std::vector<double> values) {
  if (values.empty()) {
    return Status::InvalidArgument("Gini of empty sample");
  }
  for (double v : values) {
    if (v < 0.0 || !std::isfinite(v)) {
      return Status::InvalidArgument("Gini requires non-negative values");
    }
  }
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  double total = 0.0, weighted = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    total += values[i];
    weighted += static_cast<double>(i + 1) * values[i];
  }
  if (total <= 0.0) return 0.0;
  // G = (2 * sum(i * x_i) - (n + 1) * sum(x)) / (n * sum(x)).
  return (2.0 * weighted - (n + 1.0) * total) / (n * total);
}

Result<double> TopShare(std::vector<double> values, size_t k) {
  if (values.empty() || k < 1 || k > values.size()) {
    return Status::InvalidArgument("TopShare needs 1 <= k <= size");
  }
  for (double v : values) {
    if (v < 0.0 || !std::isfinite(v)) {
      return Status::InvalidArgument("TopShare requires non-negative values");
    }
  }
  std::sort(values.begin(), values.end(), std::greater<double>());
  double total = std::accumulate(values.begin(), values.end(), 0.0);
  if (total <= 0.0) return 0.0;
  double top = std::accumulate(values.begin(),
                               values.begin() + static_cast<long>(k), 0.0);
  return top / total;
}

Result<std::vector<double>> LorenzCurve(std::vector<double> values,
                                        size_t num_points) {
  if (values.empty()) {
    return Status::InvalidArgument("Lorenz curve of empty sample");
  }
  if (num_points < 1) {
    return Status::InvalidArgument("num_points must be >= 1");
  }
  for (double v : values) {
    if (v < 0.0 || !std::isfinite(v)) {
      return Status::InvalidArgument("Lorenz requires non-negative values");
    }
  }
  std::sort(values.begin(), values.end());
  double total = std::accumulate(values.begin(), values.end(), 0.0);
  std::vector<double> curve;
  curve.reserve(num_points + 1);
  curve.push_back(0.0);
  if (total <= 0.0) {
    for (size_t i = 1; i <= num_points; ++i) {
      curve.push_back(static_cast<double>(i) / static_cast<double>(num_points));
    }
    return curve;
  }
  // Prefix sums at quantile boundaries.
  double cum = 0.0;
  size_t idx = 0;
  for (size_t i = 1; i <= num_points; ++i) {
    size_t boundary = values.size() * i / num_points;
    while (idx < boundary) cum += values[idx++];
    curve.push_back(cum / total);
  }
  return curve;
}

void DiscoveryTracker::Watch(NodeId page, double birth_time) {
  watched_.push_back(Watched{page, birth_time});
}

void DiscoveryTracker::Observe(double now,
                               const std::vector<double>& attention) {
  for (Watched& w : watched_) {
    if (!std::isnan(w.latency)) continue;
    double value = w.page < attention.size() ? attention[w.page] : 0.0;
    if (value >= threshold_) {
      w.latency = now - w.birth_time;
      ++num_discovered_;
    }
  }
}

std::vector<double> DiscoveryTracker::DiscoveredLatencies() const {
  std::vector<double> out;
  out.reserve(num_discovered_);
  for (const Watched& w : watched_) {
    if (!std::isnan(w.latency)) out.push_back(w.latency);
  }
  return out;
}

Result<double> DiscoveryTracker::MeanLatency(double censored_latency) const {
  if (watched_.empty()) {
    return Status::FailedPrecondition("no pages watched");
  }
  double sum = 0.0;
  for (const Watched& w : watched_) {
    sum += std::isnan(w.latency) ? censored_latency : w.latency;
  }
  return sum / static_cast<double>(watched_.size());
}

double DiscoveryTracker::DiscoveredFraction() const {
  if (watched_.empty()) return 0.0;
  return static_cast<double>(num_discovered_) /
         static_cast<double>(watched_.size());
}

}  // namespace qrank
