// Evaluation harness for Section 8.2 of the paper.
//
// Quantifies how well the quality estimate Q(p) "predicts" the future
// PageRank PR(p, t4) compared to the current PageRank PR(p, t3), via the
// relative error
//
//   err(p) = | (PR(p,t4) - X) / PR(p,t4) |,  X in {Q(p), PR(p,t3)}
//
// and reports the mean error for each predictor plus the Figure 5
// histogram (10 bins of width 0.1 and an overflow bin for err > 1).
// Because the simulator knows ground-truth quality, an additional
// ground-truth evaluation (unavailable to the paper) is provided.

#ifndef QRANK_CORE_EVALUATION_H_
#define QRANK_CORE_EVALUATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "core/quality_estimator.h"

namespace qrank {

struct EvaluationOptions {
  /// Exclude kStable pages, as the paper does ("we report our results
  /// only for the pages whose PageRank values changed more than 5%").
  bool exclude_stable_pages = true;

  /// Histogram shape of Figure 5.
  size_t histogram_bins = 10;
  double histogram_max = 1.0;
};

/// One predictor's accuracy against the future PageRank.
struct PredictorAccuracy {
  double mean_error = 0.0;
  double median_error = 0.0;
  Histogram error_histogram{10, 0.0, 1.0};
  /// Fraction of evaluated pages with err < 0.1 (the paper's "62% vs
  /// 46%" comparison) and with err > 1 ("5% vs over 10%").
  double fraction_below_0_1 = 0.0;
  double fraction_above_1 = 0.0;
};

struct PredictionComparison {
  PredictorAccuracy quality;    // white bars of Figure 5
  PredictorAccuracy pagerank;   // grey bars of Figure 5
  uint64_t pages_evaluated = 0;
  uint64_t pages_excluded_stable = 0;
  uint64_t pages_excluded_zero_future = 0;
  /// mean_error(pagerank) / mean_error(quality); the paper reports ~2.4
  /// (0.78 / 0.32) — "predicted the future PageRank twice as accurately".
  double improvement_factor = 0.0;
};

/// Compares the estimate and the current PageRank as predictors of the
/// future PageRank. All vectors must have the estimate's size. Pages
/// with non-positive future PageRank are excluded (the relative error is
/// undefined); with kTotalMassN-scaled PageRank this cannot happen.
Result<PredictionComparison> CompareFuturePrediction(
    const QualityEstimate& estimate, const std::vector<double>& current_pr,
    const std::vector<double>& future_pr, const EvaluationOptions& options = {});

/// Ground-truth evaluation (possible only in simulation): how well does
/// each score rank pages by their true latent quality?
struct TruthEvaluation {
  /// Spearman rank correlation of each score with true quality.
  double spearman_quality_estimate = 0.0;
  double spearman_current_pagerank = 0.0;
  /// Fraction of true top-`top_k` quality pages found in each score's
  /// top-`top_k` (precision@k).
  double precision_at_k_quality_estimate = 0.0;
  double precision_at_k_current_pagerank = 0.0;
  uint64_t top_k = 0;
  uint64_t pages_evaluated = 0;
};

Result<TruthEvaluation> EvaluateAgainstTruth(
    const std::vector<double>& quality_estimate,
    const std::vector<double>& current_pr,
    const std::vector<double>& true_quality, uint64_t top_k);

/// Renders the Figure 5 comparison as two aligned ASCII histograms plus
/// the headline numbers.
std::string RenderComparison(const PredictionComparison& comparison);

}  // namespace qrank

#endif  // QRANK_CORE_EVALUATION_H_
