// The paper's practical page-quality estimator (Equation 1, Section 8.2):
//
//   Q(p) = C * [PR(p,t3) - PR(p,t1)] / PR(p,t1) + PR(p,t3)
//
// computed from a series of PageRank observations, with the paper's edge
// rules:
//   * Pages whose PageRank moved consistently (monotone over all
//     observations) get the full formula — including consistent
//     *decreases* (negative relative increase), as in Section 8.2.
//   * Pages whose PageRank oscillated get I = 0, i.e. Q = current
//     PageRank ("when their PageRank values oscillate, it is difficult
//     to estimate this part", Section 9.1).
//   * Pages whose total relative change is below `min_relative_change`
//     are classified kStable; the estimator equals current PageRank and
//     the evaluation can exclude them (the paper reports results "only
//     for the pages whose PageRank values changed more than 5%").

#ifndef QRANK_CORE_QUALITY_ESTIMATOR_H_
#define QRANK_CORE_QUALITY_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/snapshot_series.h"

namespace qrank {

/// Trend of one page's PageRank across the observation snapshots.
enum class PageTrend : uint8_t {
  kRising = 0,       // strictly increasing across all observations
  kFalling = 1,      // strictly decreasing across all observations
  kOscillating = 2,  // mixed direction
  kStable = 3,       // |PR_last - PR_first| / PR_first < min_relative_change
};

struct QualityEstimatorOptions {
  /// The constant C of Equation 1. The paper used 0.1 ("the value 0.1
  /// showed the best result; small variations did not affect our result
  /// significantly").
  double relative_increase_weight = 0.1;

  /// Pages below this total relative PageRank change are kStable
  /// (paper: 5%).
  double min_relative_change = 0.05;

  /// Clamp estimates below at 0 (a deeply falling page can otherwise
  /// produce a negative quality, which has no meaning under
  /// Definition 1).
  bool clamp_negative = true;
};

struct QualityEstimate {
  /// Estimated quality per common page (same scale as the input
  /// PageRank vectors).
  std::vector<double> quality;
  /// Trend classification per page.
  std::vector<PageTrend> trend;
  /// Relative PageRank increase term per page ((PR_last-PR_first)/
  /// PR_first; 0 for oscillating/stable pages).
  std::vector<double> relative_increase;
  uint64_t num_rising = 0;
  uint64_t num_falling = 0;
  uint64_t num_oscillating = 0;
  uint64_t num_stable = 0;
};

/// Estimates quality from >= 2 PageRank observation vectors (the paper
/// uses the t1, t2, t3 snapshots; the first and last enter the formula,
/// the middle ones only the trend classification). All vectors must have
/// equal, non-zero size and strictly positive entries (PageRank with
/// damping < 1 is strictly positive).
Result<QualityEstimate> EstimateQuality(
    const std::vector<std::vector<double>>& pagerank_observations,
    const QualityEstimatorOptions& options = {});

/// Convenience overload running on the observation prefix
/// series.pagerank(0) .. series.pagerank(num_observations - 1) of a
/// SnapshotSeries with computed PageRanks (the remaining snapshots are
/// typically held out as the "future" to predict).
Result<QualityEstimate> EstimateQuality(
    const SnapshotSeries& series, size_t num_observations,
    const QualityEstimatorOptions& options = {});

}  // namespace qrank

#endif  // QRANK_CORE_QUALITY_ESTIMATOR_H_
