// End-to-end Section 8 experiment pipeline:
//
//   simulate an evolving Web  ->  take 4 snapshots (Figure 4 timeline)
//   ->  PageRank per snapshot over common pages (Section 8.1)
//   ->  quality estimate from the first 3 snapshots (Equation 1)
//   ->  compare Q(p) vs PR(p,t3) as predictors of PR(p,t4) (Figure 5)
//   ->  plus the ground-truth evaluation only simulation makes possible.
//
// This is the single entry point used by bench_fig5_error_histogram, the
// ablation benches and the integration tests.

#ifndef QRANK_CORE_EXPERIMENT_H_
#define QRANK_CORE_EXPERIMENT_H_

#include <vector>

#include "common/status.h"
#include "core/evaluation.h"
#include "core/quality_estimator.h"
#include "core/snapshot_series.h"
#include "rank/pagerank.h"
#include "sim/web_simulator.h"

namespace qrank {

struct CrawlExperimentOptions {
  /// Default simulator configuration calibrated so that the Section 8
  /// shape reproduces: pages born continuously (a mix of life stages at
  /// observation time), growth fast enough that the young cohort's
  /// PageRank moves a lot between snapshots, and mild forgetting so
  /// falling/oscillating pages exist as in the paper's crawl. Under
  /// these defaults the optimal Equation 1 constant is C = 0.1 — the
  /// value the paper found best — with small variations around it not
  /// affecting the result.
  WebSimulatorOptions simulator = [] {
    WebSimulatorOptions s;
    s.num_users = 1000;
    s.page_birth_rate = 30.0;
    s.visit_rate_factor = 2.0;
    s.forget_rate = 0.08;
    return s;
  }();

  /// Snapshot instants. The paper's Figure 4 timeline has gaps of
  /// roughly 4, 4 and 16 weeks (1 : 1 : 4); the defaults keep gaps in a
  /// 1 : 1 : 2 ratio, which under the simulator defaults puts the young
  /// cohort mid-expansion during observation and near saturation at the
  /// future snapshot. Must be strictly increasing, >= 4 entries; the
  /// last snapshot is the "future", the first (size-1) are the
  /// observations.
  std::vector<double> snapshot_times = {16.0, 20.0, 24.0, 32.0};

  PageRankOptions pagerank;
  QualityEstimatorOptions estimator;
  EvaluationOptions evaluation;

  /// top_k for the ground-truth precision@k metric.
  uint64_t truth_top_k = 100;

  CrawlExperimentOptions() {
    // The paper computes PageRank with "1 as the initial PageRank value
    // of each page" — mass-n scale.
    pagerank.scale = ScaleConvention::kTotalMassN;
  }
};

struct CrawlExperimentResult {
  /// Snapshot series with PageRank computed per snapshot.
  SnapshotSeries series;
  /// Quality estimated from the observation snapshots.
  QualityEstimate estimate;
  /// The Figure 5 comparison.
  PredictionComparison comparison;
  /// Ground-truth evaluation over the common pages.
  TruthEvaluation truth;
  /// True latent qualities of the common pages (for further analysis).
  std::vector<double> true_quality;
  /// Simulator tallies.
  uint64_t total_visits = 0;
  uint64_t total_likes = 0;
  NodeId common_pages = 0;
};

/// Runs the full pipeline. The simulator is created, advanced through
/// all snapshot instants, and evaluated.
Result<CrawlExperimentResult> RunCrawlExperiment(
    const CrawlExperimentOptions& options);

}  // namespace qrank

#endif  // QRANK_CORE_EXPERIMENT_H_
