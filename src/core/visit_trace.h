// Visit-trace recording: first-class traffic data for the Section 9.1
// traffic-based quality pipeline.
//
// The paper's future-work section proposes applying the estimator to
// "Web traffic data … if we can measure how many people visit a
// particular Web site and how quickly the number of visits increases
// over time" (the NetRatings-style measurement). VisitTraceRecorder is
// that measurement instrument for the simulator: it samples cumulative
// per-page visit counters at scheduled instants and exports them as
// TrafficSnapshots for core/traffic_estimator, or as CSV for external
// analysis.

#ifndef QRANK_CORE_VISIT_TRACE_H_
#define QRANK_CORE_VISIT_TRACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/traffic_estimator.h"
#include "sim/web_simulator.h"

namespace qrank {

class VisitTraceRecorder {
 public:
  VisitTraceRecorder() = default;

  /// Samples the simulator's cumulative visit counters now. Sample
  /// times must strictly increase (i.e. advance the simulator between
  /// calls).
  Status Sample(const WebSimulator& sim);

  size_t num_samples() const { return snapshots_.size(); }

  /// All samples so far, page-count-aligned to the smallest sampled
  /// universe (pages born after an early sample are dropped so every
  /// snapshot covers the same pages — the traffic analogue of the
  /// common-page restriction).
  std::vector<TrafficSnapshot> AlignedSnapshots() const;

  /// The raw (unaligned) samples.
  const std::vector<TrafficSnapshot>& snapshots() const {
    return snapshots_;
  }

  /// Runs the Section 9.1 traffic-based estimator over the aligned
  /// samples. Requires >= 3 samples.
  Result<QualityEstimate> EstimateQuality(
      const TrafficEstimatorOptions& options) const;

  /// Writes the aligned trace as CSV: header "time,page0,page1,...",
  /// one row per sample.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<TrafficSnapshot> snapshots_;
};

}  // namespace qrank

#endif  // QRANK_CORE_VISIT_TRACE_H_
