#include "core/experiment_report.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace qrank {

namespace {

std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

void Heading(std::ostringstream& out, bool markdown, const std::string& text,
             int level) {
  if (markdown) {
    out << std::string(static_cast<size_t>(level), '#') << " " << text
        << "\n\n";
  } else {
    out << text << "\n" << std::string(text.size(), level == 1 ? '=' : '-')
        << "\n";
  }
}

void HistogramSection(std::ostringstream& out, bool markdown,
                      const std::string& label, const Histogram& histogram) {
  if (markdown) {
    out << "| error bin | " << label << " |\n|---|---|\n";
    for (size_t i = 0; i <= histogram.num_bins(); ++i) {
      if (i < histogram.num_bins()) {
        out << "| [" << Fmt("%.2f", histogram.BinLower(i)) << ", "
            << Fmt("%.2f", histogram.BinUpper(i)) << ") ";
      } else {
        out << "| [" << Fmt("%.2f", histogram.BinLower(i)) << ", inf) ";
      }
      out << "| " << Fmt("%.2f%%", histogram.Fraction(i) * 100.0) << " |\n";
    }
    out << "\n";
  } else {
    out << histogram.ToAscii(label) << "\n";
  }
}

}  // namespace

std::string RenderExperimentReport(const CrawlExperimentResult& result,
                                   const ReportOptions& options) {
  std::ostringstream out;
  const bool md = options.markdown;
  Heading(out, md, options.title, 1);

  Heading(out, md, "Setup", 2);
  out << (md ? "- " : "* ") << "common pages: " << result.common_pages
      << "\n";
  out << (md ? "- " : "* ") << "snapshots: " << result.series.num_snapshots()
      << " at times";
  for (size_t i = 0; i < result.series.num_snapshots(); ++i) {
    out << " " << Fmt("%g", result.series.time(i));
  }
  out << "\n";
  out << (md ? "- " : "* ") << "visit events: " << result.total_visits
      << ", links created: " << result.total_likes << "\n\n";

  Heading(out, md, "Page trends over the observation window", 2);
  out << (md ? "- " : "* ") << "rising: " << result.estimate.num_rising
      << ", falling: " << result.estimate.num_falling
      << ", oscillating: " << result.estimate.num_oscillating
      << ", stable (excluded): " << result.estimate.num_stable << "\n\n";

  Heading(out, md, "Future-PageRank prediction (Figure 5)", 2);
  const PredictionComparison& cmp = result.comparison;
  out << (md ? "- " : "* ") << "pages evaluated: " << cmp.pages_evaluated
      << "\n";
  out << (md ? "- " : "* ")
      << "mean relative error: quality estimate "
      << Fmt("%.4f", cmp.quality.mean_error) << ", current PageRank "
      << Fmt("%.4f", cmp.pagerank.mean_error) << " (improvement "
      << Fmt("%.2fx", cmp.improvement_factor) << ")\n";
  out << (md ? "- " : "* ") << "error < 0.1: "
      << Fmt("%.1f%%", cmp.quality.fraction_below_0_1 * 100.0) << " vs "
      << Fmt("%.1f%%", cmp.pagerank.fraction_below_0_1 * 100.0) << "\n";
  out << (md ? "- " : "* ") << "error > 1: "
      << Fmt("%.1f%%", cmp.quality.fraction_above_1 * 100.0) << " vs "
      << Fmt("%.1f%%", cmp.pagerank.fraction_above_1 * 100.0) << "\n\n";

  if (options.include_histograms) {
    Heading(out, md, "Error histograms", 2);
    HistogramSection(out, md, "quality estimate", cmp.quality.error_histogram);
    HistogramSection(out, md, "current PageRank",
                     cmp.pagerank.error_histogram);
  }

  if (options.include_ground_truth) {
    Heading(out, md, "Ground truth (simulation only)", 2);
    out << (md ? "- " : "* ") << "Spearman vs true quality: estimate "
        << Fmt("%.3f", result.truth.spearman_quality_estimate)
        << ", PageRank "
        << Fmt("%.3f", result.truth.spearman_current_pagerank) << "\n";
    out << (md ? "- " : "* ") << "precision@" << result.truth.top_k
        << ": estimate "
        << Fmt("%.2f", result.truth.precision_at_k_quality_estimate)
        << ", PageRank "
        << Fmt("%.2f", result.truth.precision_at_k_current_pagerank)
        << "\n";
  }
  return out.str();
}

Status WriteExperimentReport(const CrawlExperimentResult& result,
                             const std::string& path,
                             const ReportOptions& options) {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open for write: " + path);
  f << RenderExperimentReport(result, options);
  f.flush();
  if (!f) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace qrank
