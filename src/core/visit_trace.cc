#include "core/visit_trace.h"

#include <algorithm>
#include <fstream>

namespace qrank {

Status VisitTraceRecorder::Sample(const WebSimulator& sim) {
  if (!snapshots_.empty() && sim.now() <= snapshots_.back().time) {
    return Status::InvalidArgument(
        "sample times must strictly increase; advance the simulator");
  }
  TrafficSnapshot snapshot;
  snapshot.time = sim.now();
  snapshot.cumulative_visits.reserve(sim.num_pages());
  for (NodeId p = 0; p < sim.num_pages(); ++p) {
    snapshot.cumulative_visits.push_back(sim.page(p).visits);
  }
  snapshots_.push_back(std::move(snapshot));
  return Status::OK();
}

std::vector<TrafficSnapshot> VisitTraceRecorder::AlignedSnapshots() const {
  std::vector<TrafficSnapshot> aligned = snapshots_;
  size_t m = aligned.empty() ? 0 : aligned.front().cumulative_visits.size();
  for (const TrafficSnapshot& s : aligned) {
    m = std::min(m, s.cumulative_visits.size());
  }
  for (TrafficSnapshot& s : aligned) {
    s.cumulative_visits.resize(m);
  }
  return aligned;
}

Result<QualityEstimate> VisitTraceRecorder::EstimateQuality(
    const TrafficEstimatorOptions& options) const {
  return EstimateQualityFromTraffic(AlignedSnapshots(), options);
}

Status VisitTraceRecorder::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open for write: " + path);
  std::vector<TrafficSnapshot> aligned = AlignedSnapshots();
  size_t pages =
      aligned.empty() ? 0 : aligned.front().cumulative_visits.size();
  f << "time";
  for (size_t p = 0; p < pages; ++p) f << ",page" << p;
  f << "\n";
  for (const TrafficSnapshot& s : aligned) {
    f << s.time;
    for (uint64_t v : s.cumulative_visits) f << "," << v;
    f << "\n";
  }
  f.flush();
  if (!f) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace qrank
