#include "core/snapshot_series.h"

#include <algorithm>

namespace qrank {

Result<CsrGraph> InducePrefixSubgraph(const CsrGraph& g, NodeId num_nodes) {
  if (num_nodes > g.num_nodes()) {
    return Status::InvalidArgument("prefix larger than graph");
  }
  EdgeList edges(num_nodes);
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      if (v < num_nodes) edges.Add(u, v);
    }
  }
  edges.EnsureNodes(num_nodes);
  return CsrGraph::FromEdgeList(edges);
}

Status SnapshotSeries::AddSnapshot(double time, CsrGraph graph) {
  if (!times_.empty() && time <= times_.back()) {
    return Status::InvalidArgument("snapshot times must strictly increase");
  }
  if (has_pageranks()) {
    return Status::FailedPrecondition(
        "cannot add snapshots after ComputePageRanks");
  }
  times_.push_back(time);
  graphs_.push_back(std::move(graph));
  return Status::OK();
}

NodeId SnapshotSeries::CommonNodeCount() const {
  if (graphs_.empty()) return 0;
  NodeId m = graphs_[0].num_nodes();
  for (const CsrGraph& g : graphs_) m = std::min(m, g.num_nodes());
  return m;
}

Status SnapshotSeries::ComputePageRanks(const PageRankOptions& options,
                                        bool warm_start) {
  if (graphs_.empty()) {
    return Status::FailedPrecondition("no snapshots added");
  }
  const NodeId m = CommonNodeCount();
  common_graphs_.clear();
  pageranks_.clear();
  iterations_.clear();
  common_graphs_.reserve(graphs_.size());
  pageranks_.reserve(graphs_.size());
  std::vector<double> previous;  // probability-scale scores of snapshot i-1
  for (const CsrGraph& g : graphs_) {
    QRANK_ASSIGN_OR_RETURN(CsrGraph induced, InducePrefixSubgraph(g, m));
    PageRankOptions per_snapshot = options;
    if (warm_start && !previous.empty()) {
      per_snapshot.initial_scores = previous;
    }
    QRANK_ASSIGN_OR_RETURN(PageRankResult pr,
                           ComputePageRank(induced, per_snapshot));
    if (warm_start) {
      // Keep the probability-scale iterate for the next snapshot.
      previous = pr.scores;
      if (options.scale == ScaleConvention::kTotalMassN) {
        double inv_n = 1.0 / static_cast<double>(m > 0 ? m : 1);
        for (double& s : previous) s *= inv_n;
      }
    }
    iterations_.push_back(pr.iterations);
    common_graphs_.push_back(std::move(induced));
    pageranks_.push_back(std::move(pr.scores));
  }
  return Status::OK();
}

}  // namespace qrank
