#include "core/snapshot_series.h"

#include <algorithm>
#include <utility>

#include "audit/audit.h"
#include "common/logging.h"
#include "graph/graph_delta.h"
#include "rank/delta_pagerank.h"
#include "rank/rank_vector.h"

namespace qrank {

namespace {

// Compile-time audit level (see common/logging.h and src/audit/): level 2
// audits every delta the incremental pipeline derives — the exact
// artifacts PR 2's fast path trusts blindly — before ranking on them.
constexpr int kAuditLevel = QRANK_AUDIT_LEVEL;

}  // namespace

Result<CsrGraph> InducePrefixSubgraph(const CsrGraph& g, NodeId num_nodes) {
  if (num_nodes > g.num_nodes()) {
    return Status::InvalidArgument("prefix larger than graph");
  }
  EdgeList edges(num_nodes);
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      if (v < num_nodes) edges.Add(u, v);
    }
  }
  edges.EnsureNodes(num_nodes);
  return CsrGraph::FromEdgeList(edges);
}

Status SnapshotSeries::AddSnapshot(double time, CsrGraph graph) {
  if (!times_.empty() && time <= times_.back()) {
    return Status::InvalidArgument("snapshot times must strictly increase");
  }
  if (has_pageranks()) {
    return Status::FailedPrecondition(
        "cannot add snapshots after ComputePageRanks");
  }
  times_.push_back(time);
  graphs_.push_back(std::move(graph));
  return Status::OK();
}

NodeId SnapshotSeries::CommonNodeCount() const {
  if (graphs_.empty()) return 0;
  NodeId m = graphs_[0].num_nodes();
  for (const CsrGraph& g : graphs_) m = std::min(m, g.num_nodes());
  return m;
}

Status SnapshotSeries::ComputePageRanks(const PageRankOptions& options,
                                        bool warm_start) {
  SeriesComputeOptions o;
  o.pagerank = options;
  o.mode = warm_start ? SeriesMode::kWarmStart : SeriesMode::kScratch;
  return ComputePageRanks(o);
}

Status SnapshotSeries::ComputePageRanks(const SeriesComputeOptions& options) {
  if (graphs_.empty()) {
    return Status::FailedPrecondition("no snapshots added");
  }
  const NodeId m = CommonNodeCount();
  const double inv_m = 1.0 / static_cast<double>(m > 0 ? m : 1);
  common_graphs_.clear();
  pageranks_.clear();
  iterations_.clear();
  node_updates_.clear();
  permutation_.clear();
  common_graphs_.reserve(graphs_.size());
  pageranks_.reserve(graphs_.size());
  // Warm-start state. When reordering, `previous` and `prev_permuted`
  // live in the permuted label space (the space the solves run in);
  // everything pushed onto the public members is remapped back first.
  std::vector<double> previous;  // probability-scale scores of snapshot i-1
  bool previous_converged = false;
  const bool reorder = options.ordering != NodeOrdering::kIdentity && m > 0;
  CsrGraph prev_permuted;  // permuted twin of common_graphs_.back()
  for (size_t i = 0; i < graphs_.size(); ++i) {
    const bool incremental_step =
        options.mode == SeriesMode::kIncremental && i > 0;
    CsrGraph induced;
    std::vector<uint8_t> dirty;
    GraphDelta delta;  // original-space; relabeled below when reordering
    if (incremental_step) {
      QRANK_ASSIGN_OR_RETURN(
          delta,
          GraphDelta::BetweenPrefix(common_graphs_.back(), graphs_[i], m));
      if (delta.empty() && previous_converged) {
        // Identical consecutive snapshots: the previous vector is already
        // the converged solution of this snapshot's subgraph (the
        // previous solve's residual check IS the convergence check), so
        // no further PageRank iterations are spent. The CsrGraph copy
        // shares the patched transpose cache.
        CsrGraph same = common_graphs_.back();
        std::vector<double> scores = pageranks_.back();
        common_graphs_.push_back(std::move(same));
        pageranks_.push_back(std::move(scores));
        iterations_.push_back(0);
        node_updates_.push_back(0);
        continue;
      }
      // Patch the previous common subgraph (and its transpose) in
      // O(E + |delta|) instead of re-inducing + re-sorting from scratch.
      QRANK_ASSIGN_OR_RETURN(induced,
                             common_graphs_.back().ApplyDelta(delta));
      dirty = delta.DirtyFrontier(induced);
      if constexpr (kAuditLevel >= 2) {
        // The delta and frontier just derived are what DeltaPageRank
        // trusts for its exactness contract; re-validate both against
        // the base and patched graphs before ranking on them.
        const AuditReport audit =
            AuditDelta(common_graphs_.back(), delta, &induced, &dirty);
        QRANK_CHECK(audit.ok())
            << "incremental step " << i
            << " derived an inconsistent delta: " << audit.ToString();
      }
    } else {
      QRANK_ASSIGN_OR_RETURN(induced, InducePrefixSubgraph(graphs_[i], m));
      if constexpr (kAuditLevel >= 2) {
        const Status audit = induced.CheckConsistency();
        QRANK_CHECK(audit.ok()) << "induced subgraph for snapshot " << i
                                << " is inconsistent: " << audit.ToString();
      }
    }

    // Derive the permuted twin the solve runs on. Built by relabeling
    // only on the first snapshot (and on non-incremental steps); the
    // incremental path instead patches the previous permuted CSR with
    // the relabeled delta, which preserves its patched transpose — the
    // locality win and the PR 2 delta-build win compose.
    CsrGraph permuted;
    if (reorder) {
      if (permutation_.empty()) {
        QRANK_ASSIGN_OR_RETURN(ReorderedGraph r,
                               ReorderGraph(induced, options.ordering));
        permutation_ = std::move(r.perm);
        permuted = std::move(r.graph);
      } else if (incremental_step) {
        QRANK_ASSIGN_OR_RETURN(
            permuted,
            prev_permuted.ApplyDelta(PermuteDelta(delta, permutation_)));
      } else {
        QRANK_ASSIGN_OR_RETURN(permuted, induced.Permute(permutation_));
      }
      if (!dirty.empty()) {
        // The frontier rides along to the solve's label space.
        std::vector<uint8_t> dirty_permuted(dirty.size(), 0);
        for (NodeId u = 0; u < m; ++u) dirty_permuted[permutation_[u]] = dirty[u];
        dirty = std::move(dirty_permuted);
      }
    }
    const CsrGraph& solve_graph = reorder ? permuted : induced;

    PageRankOptions per_snapshot = options.pagerank;
    if (options.mode != SeriesMode::kScratch && !previous.empty()) {
      // Warm-start renormalization: project the previous probability
      // vector onto the (possibly different-sized) common node set.
      // `previous` is already in the solve's label space.
      per_snapshot.initial_scores = ProjectToSize(previous, m);
    }

    PageRankResult pr;
    uint64_t updates = 0;
    if (incremental_step) {
      DeltaPageRankOptions delta_options;
      delta_options.base = per_snapshot;
      delta_options.freeze_threshold = options.freeze_threshold;
      delta_options.full_sweep_period = options.full_sweep_period;
      QRANK_ASSIGN_OR_RETURN(
          DeltaPageRankResult dr,
          ComputeDeltaPageRank(solve_graph, dirty, delta_options));
      pr = std::move(dr.base);
      updates = dr.node_updates;
    } else {
      QRANK_ASSIGN_OR_RETURN(pr, ComputePageRank(solve_graph, per_snapshot));
      updates = static_cast<uint64_t>(pr.iterations) * m;
    }

    previous_converged = pr.converged;
    if (options.mode != SeriesMode::kScratch) {
      // Keep the probability-scale iterate for the next snapshot, in
      // the solve's label space.
      previous = pr.scores;
      if (options.pagerank.scale == ScaleConvention::kTotalMassN) {
        for (double& s : previous) s *= inv_m;
      }
    }
    iterations_.push_back(pr.iterations);
    node_updates_.push_back(updates);
    if (reorder) {
      pr.scores = RemapToOriginal(pr.scores, permutation_);
      prev_permuted = std::move(permuted);
    }
    common_graphs_.push_back(std::move(induced));
    pageranks_.push_back(std::move(pr.scores));
  }
  return Status::OK();
}

}  // namespace qrank
