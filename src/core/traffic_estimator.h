// Traffic-based quality estimation (Section 9.1, "Application to Web
// traffic data").
//
// The paper notes the estimator applies unchanged to visit data: by the
// popularity-equivalence hypothesis V(p,t) = r * P(p,t), measured visit
// counts are a popularity surrogate, so
//
//   Q(p) ~= C * dV/V + V_last
//
// over per-interval visit *rates* derived from cumulative visit counters
// at snapshot instants. This module turns cumulative per-page visit
// counters (as the WebSimulator records) into popularity observations
// and reuses EstimateQuality.

#ifndef QRANK_CORE_TRAFFIC_ESTIMATOR_H_
#define QRANK_CORE_TRAFFIC_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/quality_estimator.h"

namespace qrank {

/// Cumulative visit counters for all pages at one instant.
struct TrafficSnapshot {
  double time = 0.0;
  std::vector<uint64_t> cumulative_visits;
};

struct TrafficEstimatorOptions {
  QualityEstimatorOptions estimator;
  /// Visit-rate normalization r: popularity = visit_rate / r. Must be
  /// positive.
  double visit_rate_normalization = 1.0;
  /// Pages whose rate is zero in some interval get this popularity floor
  /// (the estimator requires strictly positive observations). Expressed
  /// as a fraction of the smallest positive observed popularity.
  double zero_rate_floor_fraction = 0.5;
};

/// Derives per-interval popularity observations from >= 3 cumulative
/// traffic snapshots (k snapshots -> k-1 observations) and runs the
/// quality estimator over them.
///
/// Requires: strictly increasing times, equal vector sizes, monotone
/// non-decreasing counters per page.
Result<QualityEstimate> EstimateQualityFromTraffic(
    const std::vector<TrafficSnapshot>& snapshots,
    const TrafficEstimatorOptions& options = {});

/// The popularity observation matrix the traffic estimator feeds to
/// EstimateQuality (exposed for tests and analysis): entry [i][p] is the
/// average popularity of page p over interval (t_i, t_i+1).
Result<std::vector<std::vector<double>>> TrafficPopularityObservations(
    const std::vector<TrafficSnapshot>& snapshots,
    const TrafficEstimatorOptions& options = {});

}  // namespace qrank

#endif  // QRANK_CORE_TRAFFIC_ESTIMATOR_H_
