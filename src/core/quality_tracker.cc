#include "core/quality_tracker.h"

#include <algorithm>

namespace qrank {

Result<OnlineQualityTracker> OnlineQualityTracker::Create(
    const QualityTrackerOptions& options) {
  if (options.history_limit < 2) {
    return Status::InvalidArgument("history_limit must be >= 2");
  }
  if (!options.pagerank.initial_scores.empty()) {
    return Status::InvalidArgument(
        "pagerank.initial_scores is managed by the tracker; leave it empty");
  }
  return OnlineQualityTracker(options);
}

OnlineQualityTracker::OnlineQualityTracker(
    const QualityTrackerOptions& options)
    : options_(options) {}

Status OnlineQualityTracker::AddSnapshot(double time, const CsrGraph& graph) {
  if (!history_.empty() && time <= history_.back().time) {
    return Status::InvalidArgument("snapshot times must strictly increase");
  }
  if (!history_.empty() &&
      graph.num_nodes() < last_probability_scores_.size()) {
    return Status::InvalidArgument(
        "page count must not shrink (dense ids, monotone births)");
  }

  PageRankOptions pr_options = options_.pagerank;
  if (options_.warm_start && !last_probability_scores_.empty() &&
      graph.num_nodes() > 0) {
    // Seed existing pages with their previous scores; newborn pages get
    // the uniform teleport share so the start remains a distribution.
    std::vector<double> seed = last_probability_scores_;
    seed.resize(graph.num_nodes(),
                1.0 / static_cast<double>(graph.num_nodes()));
    pr_options.initial_scores = std::move(seed);
  }

  QRANK_ASSIGN_OR_RETURN(PageRankResult pr,
                         ComputePageRank(graph, pr_options));
  last_iterations_ = pr.iterations;

  // Retain the probability-scale iterate for the next warm start.
  last_probability_scores_ = pr.scores;
  if (options_.pagerank.scale == ScaleConvention::kTotalMassN &&
      graph.num_nodes() > 0) {
    double inv_n = 1.0 / static_cast<double>(graph.num_nodes());
    for (double& s : last_probability_scores_) s *= inv_n;
  }

  history_.push_back(Observation{time, std::move(pr.scores)});
  while (history_.size() > options_.history_limit) {
    history_.pop_front();
  }
  return Status::OK();
}

NodeId OnlineQualityTracker::TrackedPages() const {
  if (history_.empty()) return 0;
  size_t m = history_.front().pagerank.size();
  for (const Observation& obs : history_) {
    m = std::min(m, obs.pagerank.size());
  }
  return static_cast<NodeId>(m);
}

Result<QualityEstimate> OnlineQualityTracker::CurrentEstimate() const {
  if (history_.size() < 2) {
    return Status::FailedPrecondition(
        "need at least 2 snapshots for an estimate");
  }
  const NodeId m = TrackedPages();
  std::vector<std::vector<double>> observations;
  observations.reserve(history_.size());
  for (const Observation& obs : history_) {
    observations.emplace_back(obs.pagerank.begin(),
                              obs.pagerank.begin() + m);
  }
  return EstimateQuality(observations, options_.estimator);
}

Result<std::vector<double>> OnlineQualityTracker::LatestPageRank() const {
  if (history_.empty()) {
    return Status::FailedPrecondition("no snapshots ingested");
  }
  return history_.back().pagerank;
}

}  // namespace qrank
