#include "core/quality_estimator.h"

#include <algorithm>
#include <cmath>

namespace qrank {

Result<QualityEstimate> EstimateQuality(
    const std::vector<std::vector<double>>& pagerank_observations,
    const QualityEstimatorOptions& options) {
  if (pagerank_observations.size() < 2) {
    return Status::InvalidArgument("need at least 2 PageRank observations");
  }
  if (options.relative_increase_weight < 0.0) {
    return Status::InvalidArgument("relative_increase_weight must be >= 0");
  }
  if (options.min_relative_change < 0.0) {
    return Status::InvalidArgument("min_relative_change must be >= 0");
  }
  const size_t n = pagerank_observations.front().size();
  if (n == 0) {
    return Status::InvalidArgument("empty PageRank observation");
  }
  for (const auto& obs : pagerank_observations) {
    if (obs.size() != n) {
      return Status::InvalidArgument("observation sizes differ");
    }
    for (double v : obs) {
      if (!(v > 0.0) || !std::isfinite(v)) {
        return Status::InvalidArgument(
            "PageRank observations must be strictly positive and finite");
      }
    }
  }

  const auto& first = pagerank_observations.front();
  const auto& last = pagerank_observations.back();
  const size_t k = pagerank_observations.size();

  QualityEstimate est;
  est.quality.resize(n);
  est.trend.resize(n);
  est.relative_increase.assign(n, 0.0);

  for (size_t p = 0; p < n; ++p) {
    bool rising = true, falling = true;
    for (size_t i = 1; i < k; ++i) {
      double prev = pagerank_observations[i - 1][p];
      double cur = pagerank_observations[i][p];
      rising &= cur > prev;
      falling &= cur < prev;
    }
    double rel_change = (last[p] - first[p]) / first[p];

    PageTrend trend;
    if (std::fabs(rel_change) < options.min_relative_change) {
      trend = PageTrend::kStable;
    } else if (rising) {
      trend = PageTrend::kRising;
    } else if (falling) {
      trend = PageTrend::kFalling;
    } else {
      trend = PageTrend::kOscillating;
    }
    est.trend[p] = trend;

    double quality;
    switch (trend) {
      case PageTrend::kRising:
      case PageTrend::kFalling:
        // Equation 1: C * dPR/PR + PR.
        est.relative_increase[p] = rel_change;
        quality =
            options.relative_increase_weight * rel_change + last[p];
        break;
      case PageTrend::kOscillating:
      case PageTrend::kStable:
        // I = 0: the estimator degenerates to the current PageRank.
        quality = last[p];
        break;
    }
    if (options.clamp_negative && quality < 0.0) quality = 0.0;
    est.quality[p] = quality;

    switch (trend) {
      case PageTrend::kRising:
        ++est.num_rising;
        break;
      case PageTrend::kFalling:
        ++est.num_falling;
        break;
      case PageTrend::kOscillating:
        ++est.num_oscillating;
        break;
      case PageTrend::kStable:
        ++est.num_stable;
        break;
    }
  }
  return est;
}

Result<QualityEstimate> EstimateQuality(const SnapshotSeries& series,
                                        size_t num_observations,
                                        const QualityEstimatorOptions& options) {
  if (!series.has_pageranks()) {
    return Status::FailedPrecondition(
        "SnapshotSeries::ComputePageRanks has not run");
  }
  if (num_observations < 2 || num_observations > series.num_snapshots()) {
    return Status::InvalidArgument(
        "num_observations must be in [2, num_snapshots]");
  }
  std::vector<std::vector<double>> obs;
  obs.reserve(num_observations);
  for (size_t i = 0; i < num_observations; ++i) {
    obs.push_back(series.pagerank(i));
  }
  return EstimateQuality(obs, options);
}

}  // namespace qrank
