// Attention-inequality metrics for the "rich-get-richer" analysis.
//
// Section 1 of the paper argues that popularity-based ranking
// concentrates user attention on already-popular pages and starves new
// high-quality pages; Section 9 claims a quality-based ranking "can
// identify these high-quality pages much earlier … and shorten the
// time it takes for new pages to get noticed". These metrics quantify
// both halves: Gini / Lorenz / top-share measure attention
// concentration, and DiscoveryTracker measures how long newborn pages
// take to get noticed under a given ranking regime.

#ifndef QRANK_CORE_BIAS_METRICS_H_
#define QRANK_CORE_BIAS_METRICS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/status.h"
#include "graph/edge_list.h"

namespace qrank {

/// Gini coefficient of a non-negative sample (0 = perfectly equal
/// attention, 1 = all attention on one page). InvalidArgument on empty
/// input or negative values; 0 when the total is zero.
Result<double> GiniCoefficient(std::vector<double> values);

/// Fraction of the total held by the top `k` values.
/// Requires 1 <= k <= values.size().
Result<double> TopShare(std::vector<double> values, size_t k);

/// Points of the Lorenz curve at `num_points` evenly spaced population
/// quantiles (cumulative share of the total held by the bottom q
/// fraction). Returns num_points + 1 values from 0 to 1.
Result<std::vector<double>> LorenzCurve(std::vector<double> values,
                                        size_t num_points);

/// Tracks when pages cross an attention threshold ("get noticed").
///
/// Usage: register pages with Watch(page, birth_time), then call
/// Observe(now, attention_per_page) periodically; the first observation
/// at which a page's attention reaches `threshold` records its
/// discovery latency (time since birth).
class DiscoveryTracker {
 public:
  explicit DiscoveryTracker(double threshold) : threshold_(threshold) {}

  void Watch(NodeId page, double birth_time);

  /// `attention` is indexed by page id (e.g. awareness, likes or visit
  /// counts); pages beyond its size are treated as zero.
  void Observe(double now, const std::vector<double>& attention);

  size_t num_watched() const { return watched_.size(); }
  size_t num_discovered() const { return num_discovered_; }

  /// Discovery latencies (time from birth to threshold) of discovered
  /// pages only.
  std::vector<double> DiscoveredLatencies() const;

  /// Mean latency counting undiscovered pages as `censored_latency`
  /// (e.g. the observation horizon); FailedPrecondition if nothing is
  /// watched.
  Result<double> MeanLatency(double censored_latency) const;

  /// Fraction of watched pages discovered so far.
  double DiscoveredFraction() const;

 private:
  struct Watched {
    NodeId page;
    double birth_time;
    double latency = std::numeric_limits<double>::quiet_NaN();  // undiscovered
  };
  double threshold_;
  std::vector<Watched> watched_;
  size_t num_discovered_ = 0;
};

}  // namespace qrank

#endif  // QRANK_CORE_BIAS_METRICS_H_
