// SnapshotSeries: multiple timestamped snapshots of the (real or
// simulated) Web, restricted to their common page set, with per-snapshot
// PageRank — the data layout of Section 8.1 of the paper.
//
// The paper downloaded 154 sites four times, identified the 2.7 M pages
// present in all four snapshots, and computed PageRank on the subgraph
// induced by those common pages in each snapshot. SnapshotSeries does the
// same: AddSnapshot() in time order, then ComputePageRanks() determines
// the common node set, induces each snapshot's subgraph onto it, and runs
// the configured PageRank engine per snapshot.
//
// Because consecutive crawls overlap almost entirely, ComputePageRanks
// supports three modes of increasing reuse:
//  * kScratch      — every snapshot induced and solved independently;
//  * kWarmStart    — snapshot i seeds its iteration from snapshot i-1's
//                    converged vector (same fixed point, fewer rounds);
//  * kIncremental  — additionally, snapshot i's common subgraph is built
//                    by patching snapshot i-1's CSR with a GraphDelta
//                    (transpose cache patched in place, no rebuild) and
//                    solved with the DeltaPageRank frozen-set engine so
//                    pages outside the delta's dirty frontier are not
//                    recomputed until a change actually reaches them.
// All three modes converge to the same tolerance; kScratch stays the
// correctness oracle for the incremental path.

#ifndef QRANK_CORE_SNAPSHOT_SERIES_H_
#define QRANK_CORE_SNAPSHOT_SERIES_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"
#include "graph/reorder.h"
#include "rank/pagerank.h"

namespace qrank {

enum class SeriesMode {
  kScratch,      // independent per-snapshot solves
  kWarmStart,    // seed each solve from the previous snapshot's vector
  kIncremental,  // delta CSR builds + warm-started frozen-set solves
};

struct SeriesComputeOptions {
  PageRankOptions pagerank;
  SeriesMode mode = SeriesMode::kScratch;

  /// Drift-budget fraction of the DeltaPageRank engine
  /// (kIncremental only); see rank/delta_pagerank.h.
  double freeze_threshold = 0.25;
  uint32_t full_sweep_period = 8;

  /// Cache-aware node ordering for the solves (graph/reorder.h). The
  /// permutation is built ONCE, from the first snapshot's common
  /// subgraph, and reused for every snapshot — consecutive crawls
  /// overlap almost entirely, so one snapshot's locality ordering is
  /// near-optimal for all of them, and a fixed permutation is what lets
  /// kIncremental keep patching one permuted CSR (and its transpose)
  /// in place. Solves run in the permuted label space; every public
  /// artifact (pagerank(i), common_graph(i)) stays in original page
  /// ids. kIdentity (default) skips the machinery entirely.
  NodeOrdering ordering = NodeOrdering::kIdentity;
};

class SnapshotSeries {
 public:
  SnapshotSeries() = default;

  /// Adds a snapshot; times must be strictly increasing.
  Status AddSnapshot(double time, CsrGraph graph);

  size_t num_snapshots() const { return times_.size(); }
  double time(size_t i) const { return times_[i]; }
  const CsrGraph& graph(size_t i) const { return graphs_[i]; }

  /// Pages present in every snapshot. qrank snapshots use dense ids with
  /// monotone page birth, so the common set is the id prefix
  /// [0, min_i num_nodes(i)). Valid after >= 1 snapshot.
  NodeId CommonNodeCount() const;

  /// Computes PageRank for every snapshot on the common-page induced
  /// subgraph. The paper's Section 8 convention (initial value 1 per
  /// page, mass n) corresponds to options.pagerank.scale = kTotalMassN.
  /// FailedPrecondition without snapshots; propagates engine errors.
  ///
  /// Identical consecutive snapshots (an empty delta) short-circuit in
  /// kIncremental mode: the previous vector is reused with zero further
  /// PageRank iterations beyond the previous solve's convergence check.
  Status ComputePageRanks(const SeriesComputeOptions& options);

  /// Back-compat shorthand: kScratch, or kWarmStart when `warm_start`.
  Status ComputePageRanks(const PageRankOptions& options,
                          bool warm_start = false);

  /// Power-iteration rounds spent per snapshot by the last
  /// ComputePageRanks call (for measuring the warm-start saving).
  const std::vector<uint32_t>& iterations_per_snapshot() const {
    return iterations_;
  }

  /// Page-update operations per snapshot by the last ComputePageRanks
  /// call. For the non-incremental engines this is iterations * common
  /// nodes; DeltaPageRank reports the (much smaller) work it did.
  const std::vector<uint64_t>& node_updates_per_snapshot() const {
    return node_updates_;
  }

  /// PageRank vector of snapshot i over the common pages (size
  /// CommonNodeCount()). Valid after ComputePageRanks().
  const std::vector<double>& pagerank(size_t i) const {
    return pageranks_[i];
  }
  bool has_pageranks() const { return !pageranks_.empty(); }

  /// The induced common subgraph of snapshot i (kept for inspection;
  /// built by ComputePageRanks). Always labeled in ORIGINAL page ids,
  /// whatever `ordering` the solves used.
  const CsrGraph& common_graph(size_t i) const { return common_graphs_[i]; }

  /// The old -> new permutation the last ComputePageRanks solved under
  /// (size CommonNodeCount()). Empty when the ordering was kIdentity.
  const std::vector<NodeId>& permutation() const { return permutation_; }

 private:
  std::vector<double> times_;
  std::vector<uint32_t> iterations_;
  std::vector<uint64_t> node_updates_;
  std::vector<CsrGraph> graphs_;
  std::vector<CsrGraph> common_graphs_;
  std::vector<std::vector<double>> pageranks_;
  std::vector<NodeId> permutation_;
};

/// Induces the subgraph of `g` on the id prefix [0, num_nodes), keeping
/// edges with both endpoints inside. Requires num_nodes <= g.num_nodes().
Result<CsrGraph> InducePrefixSubgraph(const CsrGraph& g, NodeId num_nodes);

}  // namespace qrank

#endif  // QRANK_CORE_SNAPSHOT_SERIES_H_
