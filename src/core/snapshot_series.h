// SnapshotSeries: multiple timestamped snapshots of the (real or
// simulated) Web, restricted to their common page set, with per-snapshot
// PageRank — the data layout of Section 8.1 of the paper.
//
// The paper downloaded 154 sites four times, identified the 2.7 M pages
// present in all four snapshots, and computed PageRank on the subgraph
// induced by those common pages in each snapshot. SnapshotSeries does the
// same: AddSnapshot() in time order, then ComputePageRanks() determines
// the common node set, induces each snapshot's subgraph onto it, and runs
// the configured PageRank engine per snapshot.

#ifndef QRANK_CORE_SNAPSHOT_SERIES_H_
#define QRANK_CORE_SNAPSHOT_SERIES_H_

#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"
#include "rank/pagerank.h"

namespace qrank {

class SnapshotSeries {
 public:
  SnapshotSeries() = default;

  /// Adds a snapshot; times must be strictly increasing.
  Status AddSnapshot(double time, CsrGraph graph);

  size_t num_snapshots() const { return times_.size(); }
  double time(size_t i) const { return times_[i]; }
  const CsrGraph& graph(size_t i) const { return graphs_[i]; }

  /// Pages present in every snapshot. qrank snapshots use dense ids with
  /// monotone page birth, so the common set is the id prefix
  /// [0, min_i num_nodes(i)). Valid after >= 1 snapshot.
  NodeId CommonNodeCount() const;

  /// Computes PageRank for every snapshot on the common-page induced
  /// subgraph. The paper's Section 8 convention (initial value 1 per
  /// page, mass n) corresponds to options.scale = kTotalMassN.
  /// FailedPrecondition without snapshots; propagates engine errors.
  ///
  /// With warm_start, snapshot i > 0 starts its power iteration from
  /// snapshot i-1's converged vector instead of the teleport
  /// distribution — consecutive crawls differ little, so this typically
  /// cuts iterations substantially (same fixed point, same tolerance).
  Status ComputePageRanks(const PageRankOptions& options,
                          bool warm_start = false);

  /// Power-iteration rounds spent per snapshot by the last
  /// ComputePageRanks call (for measuring the warm-start saving).
  const std::vector<uint32_t>& iterations_per_snapshot() const {
    return iterations_;
  }

  /// PageRank vector of snapshot i over the common pages (size
  /// CommonNodeCount()). Valid after ComputePageRanks().
  const std::vector<double>& pagerank(size_t i) const {
    return pageranks_[i];
  }
  bool has_pageranks() const { return !pageranks_.empty(); }

  /// The induced common subgraph of snapshot i (kept for inspection;
  /// built by ComputePageRanks).
  const CsrGraph& common_graph(size_t i) const { return common_graphs_[i]; }

 private:
  std::vector<double> times_;
  std::vector<uint32_t> iterations_;
  std::vector<CsrGraph> graphs_;
  std::vector<CsrGraph> common_graphs_;
  std::vector<std::vector<double>> pageranks_;
};

/// Induces the subgraph of `g` on the id prefix [0, num_nodes), keeping
/// edges with both endpoints inside. Requires num_nodes <= g.num_nodes().
Result<CsrGraph> InducePrefixSubgraph(const CsrGraph& g, NodeId num_nodes);

}  // namespace qrank

#endif  // QRANK_CORE_SNAPSHOT_SERIES_H_
