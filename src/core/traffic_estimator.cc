#include "core/traffic_estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qrank {

Result<std::vector<std::vector<double>>> TrafficPopularityObservations(
    const std::vector<TrafficSnapshot>& snapshots,
    const TrafficEstimatorOptions& options) {
  if (snapshots.size() < 3) {
    return Status::InvalidArgument(
        "need >= 3 traffic snapshots (>= 2 rate intervals)");
  }
  if (!(options.visit_rate_normalization > 0.0)) {
    return Status::InvalidArgument("visit_rate_normalization must be > 0");
  }
  if (options.zero_rate_floor_fraction <= 0.0 ||
      options.zero_rate_floor_fraction > 1.0) {
    return Status::InvalidArgument(
        "zero_rate_floor_fraction must be in (0, 1]");
  }
  const size_t n = snapshots.front().cumulative_visits.size();
  if (n == 0) return Status::InvalidArgument("no pages in traffic snapshot");
  for (size_t i = 1; i < snapshots.size(); ++i) {
    if (snapshots[i].cumulative_visits.size() != n) {
      return Status::InvalidArgument("traffic snapshot sizes differ");
    }
    if (!(snapshots[i].time > snapshots[i - 1].time)) {
      return Status::InvalidArgument("snapshot times must strictly increase");
    }
    for (size_t p = 0; p < n; ++p) {
      if (snapshots[i].cumulative_visits[p] <
          snapshots[i - 1].cumulative_visits[p]) {
        return Status::Corruption("cumulative visit counter decreased");
      }
    }
  }

  std::vector<std::vector<double>> obs(snapshots.size() - 1,
                                       std::vector<double>(n, 0.0));
  double min_positive = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < snapshots.size(); ++i) {
    double dt = snapshots[i + 1].time - snapshots[i].time;
    for (size_t p = 0; p < n; ++p) {
      double rate = static_cast<double>(snapshots[i + 1].cumulative_visits[p] -
                                        snapshots[i].cumulative_visits[p]) /
                    dt;
      double popularity = rate / options.visit_rate_normalization;
      obs[i][p] = popularity;
      if (popularity > 0.0) min_positive = std::min(min_positive, popularity);
    }
  }
  // Floor zero-rate entries so the estimator's positivity contract holds.
  double floor = std::isfinite(min_positive)
                     ? min_positive * options.zero_rate_floor_fraction
                     : 1.0;
  for (auto& row : obs) {
    for (double& v : row) {
      if (!(v > 0.0)) v = floor;
    }
  }
  return obs;
}

Result<QualityEstimate> EstimateQualityFromTraffic(
    const std::vector<TrafficSnapshot>& snapshots,
    const TrafficEstimatorOptions& options) {
  QRANK_ASSIGN_OR_RETURN(std::vector<std::vector<double>> obs,
                         TrafficPopularityObservations(snapshots, options));
  return EstimateQuality(obs, options.estimator);
}

}  // namespace qrank
