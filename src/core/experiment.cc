#include "core/experiment.h"

#include <algorithm>

namespace qrank {

Result<CrawlExperimentResult> RunCrawlExperiment(
    const CrawlExperimentOptions& options) {
  if (options.snapshot_times.size() < 4) {
    return Status::InvalidArgument(
        "need >= 4 snapshots (3 observations + 1 future)");
  }
  if (!std::is_sorted(options.snapshot_times.begin(),
                      options.snapshot_times.end()) ||
      std::adjacent_find(options.snapshot_times.begin(),
                         options.snapshot_times.end()) !=
          options.snapshot_times.end()) {
    return Status::InvalidArgument("snapshot times must strictly increase");
  }
  if (!(options.snapshot_times.front() >= 0.0)) {
    return Status::InvalidArgument("snapshot times must be non-negative");
  }

  QRANK_ASSIGN_OR_RETURN(WebSimulator sim,
                         WebSimulator::Create(options.simulator));

  CrawlExperimentResult result;
  for (double t : options.snapshot_times) {
    QRANK_RETURN_NOT_OK(sim.AdvanceTo(t));
    QRANK_ASSIGN_OR_RETURN(CsrGraph snapshot, sim.Snapshot());
    QRANK_RETURN_NOT_OK(result.series.AddSnapshot(t, std::move(snapshot)));
  }
  QRANK_RETURN_NOT_OK(result.series.ComputePageRanks(options.pagerank));

  const size_t num_obs = options.snapshot_times.size() - 1;
  QRANK_ASSIGN_OR_RETURN(
      result.estimate,
      EstimateQuality(result.series, num_obs, options.estimator));

  const std::vector<double>& current = result.series.pagerank(num_obs - 1);
  const std::vector<double>& future = result.series.pagerank(num_obs);
  QRANK_ASSIGN_OR_RETURN(
      result.comparison,
      CompareFuturePrediction(result.estimate, current, future,
                              options.evaluation));

  const NodeId common = result.series.CommonNodeCount();
  result.common_pages = common;
  result.true_quality.resize(common);
  for (NodeId p = 0; p < common; ++p) {
    result.true_quality[p] = sim.TrueQuality(p);
  }
  uint64_t top_k = std::min<uint64_t>(options.truth_top_k, common);
  if (top_k == 0) top_k = 1;
  QRANK_ASSIGN_OR_RETURN(
      result.truth,
      EvaluateAgainstTruth(result.estimate.quality, current,
                           result.true_quality, top_k));

  result.total_visits = sim.total_visits();
  result.total_likes = sim.total_likes_created();
  return result;
}

}  // namespace qrank
