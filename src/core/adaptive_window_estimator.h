// Adaptive-window quality estimation — the Section 9.1 "Statistical
// Noise" remedy, implemented.
//
// "When we are measuring the rare event of a page with low popularity
// receiving a new link, there is the potential that noise could cause
// such a page to be promoted prematurely. … for low-PageRank pages, we
// may want to compute the PageRank increase over a longer period than
// high-PageRank pages in order to reduce the impact of noise."
//
// Given a series of k >= 3 PageRank observations, this estimator picks
// a per-page baseline snapshot: high-PageRank pages (strong signal) use
// a short, recent window; low-PageRank pages (Poisson noise comparable
// to their signal) use the longest available window. The window length
// interpolates log-linearly between `min_window` and `max_window`
// observations across the PageRank distribution's quantiles, then
// Equation 1 runs per page on (PR[last - w], ..., PR[last]) with the
// same trend rules as the fixed-window estimator.

#ifndef QRANK_CORE_ADAPTIVE_WINDOW_ESTIMATOR_H_
#define QRANK_CORE_ADAPTIVE_WINDOW_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "core/quality_estimator.h"

namespace qrank {

struct AdaptiveWindowOptions {
  QualityEstimatorOptions base;

  /// Window (in snapshots back from the latest) used by the
  /// highest-PageRank pages. Must be >= 1.
  uint32_t min_window = 1;

  /// Window used by the lowest-PageRank pages. Must be >= min_window;
  /// capped at (num observations - 1).
  uint32_t max_window = 8;
};

struct AdaptiveWindowEstimate {
  QualityEstimate base;
  /// Chosen window length per page (snapshots back from the latest).
  std::vector<uint32_t> window;
};

/// Same input contract as EstimateQuality (>= 2 observation vectors of
/// equal size, strictly positive), but uses a per-page window. With
/// min_window == max_window it reduces exactly to the fixed-window
/// estimator over that window.
Result<AdaptiveWindowEstimate> EstimateQualityAdaptiveWindow(
    const std::vector<std::vector<double>>& pagerank_observations,
    const AdaptiveWindowOptions& options = {});

}  // namespace qrank

#endif  // QRANK_CORE_ADAPTIVE_WINDOW_ESTIMATOR_H_
