// Human-readable report generation for crawl-experiment results:
// renders a CrawlExperimentResult as Markdown (for docs/issues) or as
// plain text (for terminals), so downstream users can archive a run's
// full evidence with one call.

#ifndef QRANK_CORE_EXPERIMENT_REPORT_H_
#define QRANK_CORE_EXPERIMENT_REPORT_H_

#include <string>

#include "common/status.h"
#include "core/experiment.h"

namespace qrank {

struct ReportOptions {
  /// Markdown (headings, tables) or plain text (ASCII tables).
  bool markdown = true;
  /// Include the per-bin histogram section.
  bool include_histograms = true;
  /// Include the simulation-only ground-truth section.
  bool include_ground_truth = true;
  /// Title of the report.
  std::string title = "qrank crawl experiment";
};

/// Renders the full report.
std::string RenderExperimentReport(const CrawlExperimentResult& result,
                                   const ReportOptions& options = {});

/// Renders and writes to `path`.
Status WriteExperimentReport(const CrawlExperimentResult& result,
                             const std::string& path,
                             const ReportOptions& options = {});

}  // namespace qrank

#endif  // QRANK_CORE_EXPERIMENT_REPORT_H_
