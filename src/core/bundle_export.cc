#include "core/bundle_export.h"

#include <algorithm>
#include <utility>

namespace qrank {

namespace {

// Shared core of ExportScoreBundleFromObservations / ComputeWindowQuality:
// validate the window shape and build the Q̂ column (estimator over the
// common prefix, newest PR as fallback).
Result<std::vector<double>> WindowQuality(
    const std::vector<const std::vector<double>*>& observations,
    const QualityEstimatorOptions& options) {
  if (observations.empty() || observations.back()->empty()) {
    return Status::InvalidArgument(
        "need at least one non-empty PageRank observation");
  }
  for (size_t i = 1; i < observations.size(); ++i) {
    if (observations[i]->size() < observations[i - 1]->size()) {
      return Status::InvalidArgument(
          "observation sizes must be non-decreasing (pages are only born)");
    }
  }
  // Newest observation is both the PR column and the Q̂ fallback for
  // pages without a full-window history.
  std::vector<double> quality = *observations.back();
  const size_t common = observations.front()->size();
  if (observations.size() >= 2 && common > 0) {
    std::vector<std::vector<double>> trimmed;
    trimmed.reserve(observations.size());
    for (const std::vector<double>* observation : observations) {
      trimmed.emplace_back(observation->begin(),
                           observation->begin() + common);
    }
    QRANK_ASSIGN_OR_RETURN(QualityEstimate estimate,
                           EstimateQuality(trimmed, options));
    std::copy(estimate.quality.begin(), estimate.quality.end(),
              quality.begin());
  }
  return quality;
}

}  // namespace

Result<ScoreBundleWriter> ExportScoreBundle(const SnapshotSeries& series,
                                            size_t num_observations,
                                            const BundleExportOptions& options) {
  if (!series.has_pageranks()) {
    return Status::FailedPrecondition(
        "ExportScoreBundle needs ComputePageRanks() to have run");
  }
  if (num_observations < 2 || num_observations > series.num_snapshots()) {
    return Status::InvalidArgument(
        "num_observations must be in [2, num_snapshots]");
  }
  QRANK_ASSIGN_OR_RETURN(
      QualityEstimate estimate,
      EstimateQuality(series, num_observations, options.estimator));

  ScoreBundleSource source;
  source.quality = std::move(estimate.quality);
  source.pagerank = series.pagerank(num_observations - 1);
  source.site_ids = options.site_ids;
  source.num_sites = options.num_sites;
  source.expected_mass = options.expected_mass;
  source.creator_tag = options.creator_tag;
  return ScoreBundleWriter::Create(std::move(source), options.parallel);
}

Result<ScoreBundleWriter> ExportScoreBundleFromObservations(
    const std::vector<std::vector<double>>& observations,
    const BundleExportOptions& options) {
  std::vector<const std::vector<double>*> window;
  window.reserve(observations.size());
  for (const std::vector<double>& observation : observations) {
    window.push_back(&observation);
  }
  QRANK_ASSIGN_OR_RETURN(std::vector<double> quality,
                         WindowQuality(window, options.estimator));

  ScoreBundleSource source;
  source.quality = std::move(quality);
  source.pagerank = observations.back();
  source.site_ids = options.site_ids;
  source.num_sites = options.num_sites;
  source.expected_mass = options.expected_mass;
  source.creator_tag = options.creator_tag;
  return ScoreBundleWriter::Create(std::move(source), options.parallel);
}

Result<std::vector<double>> ComputeWindowQuality(
    const std::vector<SharedObservation>& observations,
    const QualityEstimatorOptions& options) {
  std::vector<const std::vector<double>*> window;
  window.reserve(observations.size());
  for (const SharedObservation& observation : observations) {
    if (observation == nullptr) {
      return Status::InvalidArgument("null observation in window");
    }
    window.push_back(observation.get());
  }
  return WindowQuality(window, options);
}

}  // namespace qrank
