#include "core/bundle_export.h"

#include <utility>

namespace qrank {

Result<ScoreBundleWriter> ExportScoreBundle(const SnapshotSeries& series,
                                            size_t num_observations,
                                            const BundleExportOptions& options) {
  if (!series.has_pageranks()) {
    return Status::FailedPrecondition(
        "ExportScoreBundle needs ComputePageRanks() to have run");
  }
  if (num_observations < 2 || num_observations > series.num_snapshots()) {
    return Status::InvalidArgument(
        "num_observations must be in [2, num_snapshots]");
  }
  QRANK_ASSIGN_OR_RETURN(
      QualityEstimate estimate,
      EstimateQuality(series, num_observations, options.estimator));

  ScoreBundleSource source;
  source.quality = std::move(estimate.quality);
  source.pagerank = series.pagerank(num_observations - 1);
  source.site_ids = options.site_ids;
  source.num_sites = options.num_sites;
  source.expected_mass = options.expected_mass;
  source.creator_tag = options.creator_tag;
  return ScoreBundleWriter::Create(std::move(source));
}

}  // namespace qrank
