#include "core/evaluation.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "rank/rank_vector.h"

namespace qrank {

namespace {

PredictorAccuracy BuildAccuracy(const std::vector<double>& errors,
                                const EvaluationOptions& options) {
  PredictorAccuracy acc;
  acc.error_histogram =
      Histogram(options.histogram_bins, 0.0, options.histogram_max);
  acc.error_histogram.AddAll(errors);
  if (!errors.empty()) {
    acc.mean_error = Mean(errors).value();
    acc.median_error = Quantile(errors, 0.5).value();
    uint64_t below = 0, above = 0;
    for (double e : errors) {
      if (e < 0.1) ++below;
      if (e > 1.0) ++above;
    }
    acc.fraction_below_0_1 =
        static_cast<double>(below) / static_cast<double>(errors.size());
    acc.fraction_above_1 =
        static_cast<double>(above) / static_cast<double>(errors.size());
  }
  return acc;
}

}  // namespace

Result<PredictionComparison> CompareFuturePrediction(
    const QualityEstimate& estimate, const std::vector<double>& current_pr,
    const std::vector<double>& future_pr, const EvaluationOptions& options) {
  const size_t n = estimate.quality.size();
  if (current_pr.size() != n || future_pr.size() != n) {
    return Status::InvalidArgument("score vector sizes differ");
  }
  if (options.histogram_bins < 1) {
    return Status::InvalidArgument("histogram_bins must be >= 1");
  }
  if (!(options.histogram_max > 0.0)) {
    return Status::InvalidArgument("histogram_max must be positive");
  }

  PredictionComparison cmp;
  std::vector<double> err_quality, err_pagerank;
  err_quality.reserve(n);
  err_pagerank.reserve(n);

  for (size_t p = 0; p < n; ++p) {
    if (options.exclude_stable_pages &&
        estimate.trend[p] == PageTrend::kStable) {
      ++cmp.pages_excluded_stable;
      continue;
    }
    double future = future_pr[p];
    if (!(future > 0.0)) {
      ++cmp.pages_excluded_zero_future;
      continue;
    }
    err_quality.push_back(std::fabs((future - estimate.quality[p]) / future));
    err_pagerank.push_back(std::fabs((future - current_pr[p]) / future));
  }

  cmp.pages_evaluated = err_quality.size();
  if (cmp.pages_evaluated == 0) {
    return Status::FailedPrecondition("no pages left to evaluate");
  }
  cmp.quality = BuildAccuracy(err_quality, options);
  cmp.pagerank = BuildAccuracy(err_pagerank, options);
  cmp.improvement_factor =
      cmp.quality.mean_error > 0.0
          ? cmp.pagerank.mean_error / cmp.quality.mean_error
          : std::numeric_limits<double>::infinity();
  return cmp;
}

Result<TruthEvaluation> EvaluateAgainstTruth(
    const std::vector<double>& quality_estimate,
    const std::vector<double>& current_pr,
    const std::vector<double>& true_quality, uint64_t top_k) {
  const size_t n = quality_estimate.size();
  if (current_pr.size() != n || true_quality.size() != n) {
    return Status::InvalidArgument("score vector sizes differ");
  }
  if (n < 2) return Status::InvalidArgument("need >= 2 pages");
  if (top_k == 0 || top_k > n) {
    return Status::InvalidArgument("top_k must be in [1, num_pages]");
  }

  TruthEvaluation eval;
  eval.top_k = top_k;
  eval.pages_evaluated = n;

  QRANK_ASSIGN_OR_RETURN(eval.spearman_quality_estimate,
                         SpearmanCorrelation(quality_estimate, true_quality));
  QRANK_ASSIGN_OR_RETURN(eval.spearman_current_pagerank,
                         SpearmanCorrelation(current_pr, true_quality));

  std::vector<NodeId> truth_top = TopK(true_quality, top_k);
  std::unordered_set<NodeId> truth_set(truth_top.begin(), truth_top.end());
  auto precision = [&](const std::vector<double>& scores) {
    std::vector<NodeId> top = TopK(scores, top_k);
    uint64_t hits = 0;
    for (NodeId id : top) {
      if (truth_set.count(id) > 0) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(top_k);
  };
  eval.precision_at_k_quality_estimate = precision(quality_estimate);
  eval.precision_at_k_current_pagerank = precision(current_pr);
  return eval;
}

std::string RenderComparison(const PredictionComparison& comparison) {
  std::ostringstream out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "pages evaluated: %llu (excluded: %llu stable, %llu "
                "zero-future)\n",
                static_cast<unsigned long long>(comparison.pages_evaluated),
                static_cast<unsigned long long>(
                    comparison.pages_excluded_stable),
                static_cast<unsigned long long>(
                    comparison.pages_excluded_zero_future));
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "mean relative error:   Q(p) = %.3f   PR(p,t3) = %.3f   "
                "(improvement factor %.2fx; paper: 0.32 vs 0.78, 2.4x)\n",
                comparison.quality.mean_error, comparison.pagerank.mean_error,
                comparison.improvement_factor);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "err < 0.1 fraction:    Q(p) = %.1f%%  PR(p,t3) = %.1f%%  "
                "(paper: 62%% vs 46%%)\n",
                comparison.quality.fraction_below_0_1 * 100.0,
                comparison.pagerank.fraction_below_0_1 * 100.0);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "err > 1 fraction:      Q(p) = %.1f%%  PR(p,t3) = %.1f%%  "
                "(paper: 5%% vs >10%%)\n",
                comparison.quality.fraction_above_1 * 100.0,
                comparison.pagerank.fraction_above_1 * 100.0);
  out << buf;
  out << "\n"
      << comparison.quality.error_histogram.ToAscii(
             "relative error of Q(p) vs future PageRank (white bars)")
      << "\n"
      << comparison.pagerank.error_histogram.ToAscii(
             "relative error of PR(p,t3) vs future PageRank (grey bars)");
  return out.str();
}

}  // namespace qrank
