#include "core/adaptive_window_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace qrank {

Result<AdaptiveWindowEstimate> EstimateQualityAdaptiveWindow(
    const std::vector<std::vector<double>>& pagerank_observations,
    const AdaptiveWindowOptions& options) {
  if (pagerank_observations.size() < 2) {
    return Status::InvalidArgument("need at least 2 PageRank observations");
  }
  if (options.min_window < 1 || options.max_window < options.min_window) {
    return Status::InvalidArgument(
        "need 1 <= min_window <= max_window");
  }
  const size_t n = pagerank_observations.front().size();
  if (n == 0) return Status::InvalidArgument("empty PageRank observation");
  for (const auto& obs : pagerank_observations) {
    if (obs.size() != n) {
      return Status::InvalidArgument("observation sizes differ");
    }
    for (double v : obs) {
      if (!(v > 0.0) || !std::isfinite(v)) {
        return Status::InvalidArgument(
            "PageRank observations must be strictly positive and finite");
      }
    }
  }

  const size_t k = pagerank_observations.size();
  const uint32_t max_window =
      std::min<uint32_t>(options.max_window, static_cast<uint32_t>(k - 1));
  const uint32_t min_window = std::min(options.min_window, max_window);
  const std::vector<double>& last = pagerank_observations.back();

  // Per-page window from the PageRank percentile: low percentile (small
  // PageRank, noisy) -> long window; high percentile -> short window.
  std::vector<double> percentile = FractionalRanks(last);
  for (double& r : percentile) {
    r = (r - 1.0) / static_cast<double>(n > 1 ? n - 1 : 1);
  }

  AdaptiveWindowEstimate result;
  result.window.resize(n);
  result.base.quality.resize(n);
  result.base.trend.resize(n);
  result.base.relative_increase.assign(n, 0.0);

  for (size_t p = 0; p < n; ++p) {
    // Log-linear interpolation of the window across percentiles.
    double span = static_cast<double>(max_window) /
                  static_cast<double>(min_window);
    double w_real = static_cast<double>(max_window) /
                    std::pow(span, percentile[p]);
    uint32_t w = static_cast<uint32_t>(std::lround(w_real));
    w = std::clamp(w, min_window, max_window);
    result.window[p] = w;

    const size_t first_idx = k - 1 - w;
    double first = pagerank_observations[first_idx][p];
    bool rising = true, falling = true;
    for (size_t i = first_idx + 1; i < k; ++i) {
      double prev = pagerank_observations[i - 1][p];
      double cur = pagerank_observations[i][p];
      rising &= cur > prev;
      falling &= cur < prev;
    }
    double rel_change = (last[p] - first) / first;

    PageTrend trend;
    if (std::fabs(rel_change) < options.base.min_relative_change) {
      trend = PageTrend::kStable;
    } else if (rising) {
      trend = PageTrend::kRising;
    } else if (falling) {
      trend = PageTrend::kFalling;
    } else {
      trend = PageTrend::kOscillating;
    }
    result.base.trend[p] = trend;

    double quality;
    if (trend == PageTrend::kRising || trend == PageTrend::kFalling) {
      result.base.relative_increase[p] = rel_change;
      quality = options.base.relative_increase_weight * rel_change + last[p];
    } else {
      quality = last[p];
    }
    if (options.base.clamp_negative && quality < 0.0) quality = 0.0;
    result.base.quality[p] = quality;

    switch (trend) {
      case PageTrend::kRising:
        ++result.base.num_rising;
        break;
      case PageTrend::kFalling:
        ++result.base.num_falling;
        break;
      case PageTrend::kOscillating:
        ++result.base.num_oscillating;
        break;
      case PageTrend::kStable:
        ++result.base.num_stable;
        break;
    }
  }
  return result;
}

}  // namespace qrank
