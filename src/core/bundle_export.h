// Compute -> serve handoff: package a finished SnapshotSeries +
// QualityEstimator run into a serving score bundle (serve/score_bundle.h).
//
// This is the boundary the ROADMAP's serving north star needs: the
// pipeline side ends with per-page Q̂(p) and PR(p) vectors over the
// common page set; the serving side starts from an immutable bundle
// image. ExportScoreBundle runs the estimator over the observation
// prefix, pairs the estimates with the latest observed PageRank (the
// PR(p, t_last) term the blend alpha interpolates against), and hands
// both to ScoreBundleWriter, which precomputes the serving index.

#ifndef QRANK_CORE_BUNDLE_EXPORT_H_
#define QRANK_CORE_BUNDLE_EXPORT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/parallel_for.h"
#include "common/status.h"
#include "core/quality_estimator.h"
#include "core/snapshot_series.h"
#include "graph/site_graph.h"
#include "serve/score_bundle.h"

namespace qrank {

struct BundleExportOptions {
  QualityEstimatorOptions estimator;

  /// Per-page site assignment over the common pages (size
  /// CommonNodeCount()); empty puts every page in a single site 0.
  std::vector<SiteId> site_ids;
  /// 0 derives max(site_ids) + 1 (see ScoreBundleSource::num_sites).
  SiteId num_sites = 0;

  /// Declared PageRank L1 mass stored in the bundle header (the
  /// serve.bundle.scores audit checks against it); <= 0 derives the
  /// actual sum.
  double expected_mass = 0.0;

  /// Free-form writer tag stored in the header.
  uint32_t creator_tag = 0;

  /// Executor width for the writer's index build and serialization
  /// (forwarded to ScoreBundleWriter::Create — bundle bytes stay
  /// identical for every num_threads value).
  ParallelOptions parallel;
};

/// One immutable PageRank observation shared between the ingest window
/// and in-flight export jobs (the pipelined ingest path hands the same
/// vectors to overlapping stages without copying them).
using SharedObservation = std::shared_ptr<const std::vector<double>>;

/// Estimates quality from the first `num_observations` snapshots of a
/// series with computed PageRanks (>= 2 observations, as the estimator
/// requires) and builds the bundle writer over (Q̂, PR(t_last)).
/// Page ids are the series' common-page row ids.
Result<ScoreBundleWriter> ExportScoreBundle(
    const SnapshotSeries& series, size_t num_observations,
    const BundleExportOptions& options = {});

/// Streaming variant for the ingest pipeline: builds a bundle straight
/// from a window of PageRank observation vectors (oldest first, sizes
/// non-decreasing — ingest only ever grows the page set). The estimator
/// runs over the common id prefix (the oldest observation's size);
/// pages born inside the window — and every page when the window holds
/// a single observation — have no usable trend yet and get Q̂ = PR.
/// The bundle pairs the estimates with the newest observation, over its
/// full page set. Site options apply to the newest observation's size.
Result<ScoreBundleWriter> ExportScoreBundleFromObservations(
    const std::vector<std::vector<double>>& observations,
    const BundleExportOptions& options = {});

/// The Q̂ column ExportScoreBundleFromObservations would build for this
/// window (oldest first, sizes non-decreasing, no null entries):
/// estimator over the common id prefix, newest PR as the fallback for
/// pages born inside the window. Exposed separately so the pipelined
/// ingest path can time the estimator stage apart from the writer build
/// and reuse shared observations without copying the window.
Result<std::vector<double>> ComputeWindowQuality(
    const std::vector<SharedObservation>& observations,
    const QualityEstimatorOptions& options = {});

}  // namespace qrank

#endif  // QRANK_CORE_BUNDLE_EXPORT_H_
