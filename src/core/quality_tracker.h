// OnlineQualityTracker: streaming, bounded-memory quality estimation.
//
// SnapshotSeries is batch-oriented: it holds every snapshot and computes
// everything at the end, matching the paper's offline experiment. A
// production crawler instead *streams* snapshots — one new crawl at a
// time, indefinitely. OnlineQualityTracker keeps only the most recent
// `history_limit` PageRank observations (computed incrementally with a
// warm start from the previous crawl), and can produce an up-to-date
// Equation 1 estimate after every crawl in O(history * pages) memory.
//
// Page universe: qrank page ids are dense and births are monotone, so a
// page that exists in the oldest retained observation exists in all
// newer ones; estimates cover exactly that prefix.

#ifndef QRANK_CORE_QUALITY_TRACKER_H_
#define QRANK_CORE_QUALITY_TRACKER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "core/quality_estimator.h"
#include "graph/csr_graph.h"
#include "rank/pagerank.h"

namespace qrank {

struct QualityTrackerOptions {
  PageRankOptions pagerank;
  QualityEstimatorOptions estimator;

  /// PageRank observations retained (>= 2). Older ones are discarded.
  size_t history_limit = 4;

  /// Warm-start each crawl's PageRank from the previous one.
  bool warm_start = true;

  QualityTrackerOptions() {
    pagerank.scale = ScaleConvention::kTotalMassN;
  }
};

class OnlineQualityTracker {
 public:
  static Result<OnlineQualityTracker> Create(
      const QualityTrackerOptions& options = {});

  /// Ingests the next crawl. Times must strictly increase; the graph's
  /// page count must be >= the previous crawl's (dense ids, monotone
  /// births). Computes PageRank immediately.
  Status AddSnapshot(double time, const CsrGraph& graph);

  size_t num_observations() const { return history_.size(); }
  double latest_time() const {
    return history_.empty() ? 0.0 : history_.back().time;
  }

  /// Pages covered by every retained observation.
  NodeId TrackedPages() const;

  /// Equation 1 estimate over the tracked pages using all retained
  /// observations. FailedPrecondition with fewer than 2 observations.
  Result<QualityEstimate> CurrentEstimate() const;

  /// The latest PageRank observation (full page set of the latest
  /// crawl). FailedPrecondition before the first snapshot.
  Result<std::vector<double>> LatestPageRank() const;

  /// Iterations the most recent PageRank computation needed (for
  /// observing the warm-start saving).
  uint32_t last_iterations() const { return last_iterations_; }

 private:
  explicit OnlineQualityTracker(const QualityTrackerOptions& options);

  struct Observation {
    double time;
    std::vector<double> pagerank;  // mass per options.pagerank.scale
  };

  QualityTrackerOptions options_;
  std::deque<Observation> history_;
  /// Probability-scale scores of the latest crawl (warm-start seed).
  std::vector<double> last_probability_scores_;
  uint32_t last_iterations_ = 0;
};

}  // namespace qrank

#endif  // QRANK_CORE_QUALITY_TRACKER_H_
