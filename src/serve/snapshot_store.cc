#include "serve/snapshot_store.h"

#include <utility>

namespace qrank {

uint64_t SnapshotStore::Publish(std::shared_ptr<const LoadedBundle> bundle) {
  MutexLock lock(&mu_);
  current_ = std::move(bundle);
  // The release bump is the publish signal: a reader whose generation()
  // load observes it will take the lock and find the new bundle (the
  // mutex orders the slot write before the reader's slot read).
  return generation_.fetch_add(1, std::memory_order_release) + 1;
}

Result<uint64_t> SnapshotStore::PublishOrdered(
    std::shared_ptr<const LoadedBundle> bundle, uint64_t sequence) {
  MutexLock lock(&mu_);
  if (has_ordered_ && sequence <= last_ordered_sequence_) {
    return Status::FailedPrecondition(
        "stale ordered publish: sequence is not past the watermark");
  }
  has_ordered_ = true;
  last_ordered_sequence_ = sequence;
  current_ = std::move(bundle);
  return generation_.fetch_add(1, std::memory_order_release) + 1;
}

uint64_t SnapshotStore::last_ordered_sequence() const {
  MutexLock lock(&mu_);
  return last_ordered_sequence_;
}

std::shared_ptr<const LoadedBundle> SnapshotStore::Acquire() const {
  MutexLock lock(&mu_);
  return current_;
}

void SnapshotStore::Pin(std::shared_ptr<const LoadedBundle>* pin,
                        uint64_t* pin_generation) const {
  MutexLock lock(&mu_);
  *pin = current_;
  // Read under the lock so the pair is consistent even when a publish
  // lands between the caller's generation() check and this call.
  *pin_generation = generation_.load(std::memory_order_relaxed);
}

}  // namespace qrank
