// SnapshotStore: immutable score-bundle generations with RCU-style
// hot-swap.
//
// The serving layer sits between a background compute pipeline (which
// periodically finishes a new snapshot's bundle) and many concurrent
// query threads. The store holds the current generation as a
// shared_ptr<const LoadedBundle>; readers pin a generation (Acquire)
// and keep serving from it regardless of concurrent publishes, and a
// retired generation is destroyed exactly when its last pinned reader
// releases the shared_ptr — classic read-copy-update with the
// reclamation handled by the control-block refcount.
//
// Implementation note: the slot is a mutex-guarded shared_ptr plus an
// atomic generation counter, NOT std::atomic<std::shared_ptr>. The
// libstdc++ atomic<shared_ptr> guards its pointer with an embedded
// spinlock whose load path unlocks with relaxed ordering, which is a
// data race by the letter of the memory model and is flagged by TSan
// (observed with GCC 12); a plain mutex is unambiguously clean. The
// mutex is NOT the per-query cost: QueryEngine caches its pin in the
// per-thread TopKScratch and revalidates it with one atomic
// generation() load per query, taking the mutex only when the
// generation actually moved (see query_engine.h). Publishers never
// wait on readers.
//
// Contract (what the TSan hot-swap test asserts):
//   * Acquire never observes a partially published bundle — Publish
//     installs a fully constructed, validated bundle under the lock,
//     and the generation bump is the (release-ordered) signal.
//   * In-flight queries keep their pinned generation alive for as long
//     as they hold the shared_ptr; Publish never invalidates them.
//   * A replaced generation is freed after the store's reference and
//     every reader's pin are gone (no leaks, no early frees).

#ifndef QRANK_SERVE_SNAPSHOT_STORE_H_
#define QRANK_SERVE_SNAPSHOT_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "serve/score_bundle.h"

namespace qrank {

class SnapshotStore {
 public:
  SnapshotStore() = default;
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Installs `bundle` as the current generation. Returns the 1-based
  /// generation number of the publish.
  uint64_t Publish(std::shared_ptr<const LoadedBundle> bundle);

  /// Convenience: wrap and publish by value.
  uint64_t Publish(LoadedBundle bundle) {
    return Publish(
        std::make_shared<const LoadedBundle>(std::move(bundle)));
  }

  /// Ordered publish for streaming pipelines: installs `bundle` only if
  /// `sequence` is strictly greater than every previously accepted
  /// ordered sequence (the first ordered publish always wins). Returns
  /// the generation number, or FailedPrecondition — with the store left
  /// untouched — when `sequence` is stale. This is the guard against a
  /// slow/replayed producer clobbering a fresher generation: ingest
  /// publishes with the batch's last event sequence, so servable state
  /// can only move forward in event order.
  Result<uint64_t> PublishOrdered(std::shared_ptr<const LoadedBundle> bundle,
                                  uint64_t sequence);

  /// Highest sequence accepted by PublishOrdered (0 before the first).
  uint64_t last_ordered_sequence() const;

  /// Pins and returns the current generation (nullptr before the first
  /// Publish). The caller's shared_ptr keeps the generation alive
  /// across the hot-swap.
  std::shared_ptr<const LoadedBundle> Acquire() const;

  /// Number of Publish calls so far. A reader that cached a pin at
  /// generation g can keep serving from it, allocation- and lock-free,
  /// until this moves past g.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  bool has_bundle() const { return generation() > 0; }

 private:
  friend class QueryEngine;

  /// Atomically snapshots (bundle, generation) under the lock — the
  /// re-pin path of QueryEngine's generation-cached fast path.
  void Pin(std::shared_ptr<const LoadedBundle>* pin,
           uint64_t* pin_generation) const;

  mutable Mutex mu_;
  std::shared_ptr<const LoadedBundle> current_ QRANK_GUARDED_BY(mu_);
  std::atomic<uint64_t> generation_{0};
  // PublishOrdered watermark (0 is a valid first sequence, hence the
  // separate flag).
  bool has_ordered_ QRANK_GUARDED_BY(mu_) = false;
  uint64_t last_ordered_sequence_ QRANK_GUARDED_BY(mu_) = 0;
};

}  // namespace qrank

#endif  // QRANK_SERVE_SNAPSHOT_STORE_H_
