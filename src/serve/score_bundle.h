// Score bundles: the versioned binary artifact that carries one
// snapshot's quality estimates from the compute pipeline to the serving
// layer (see bundle_format.h for the byte layout).
//
// Write side: ScoreBundleWriter takes the per-page vectors a finished
// SnapshotSeries + QualityEstimator run produces — Q̂(p), PR(p),
// external page ids, site ids — validates them, precomputes the serving
// index (global quality/pagerank orders and per-site postings sorted by
// quality), and serializes everything into one image.
//
// Read side: LoadedBundle maps a bundle zero-copy via mmap (falling
// back to a plain read() when mapping is unavailable) and exposes each
// section as a typed span. Loading validates the header and section
// table against the real file size BEFORE anything is allocated or
// mapped, verifies the payload CRC, and range-checks every index
// section so QueryEngine can serve from the spans without per-query
// bounds checks.

#ifndef QRANK_SERVE_SCORE_BUNDLE_H_
#define QRANK_SERVE_SCORE_BUNDLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/parallel_for.h"
#include "common/status.h"
#include "graph/edge_list.h"
#include "graph/site_graph.h"
#include "serve/bundle_format.h"

namespace qrank {

/// Per-page inputs to a bundle. `quality` and `pagerank` are required
/// and equal-length; `page_ids` defaults to the identity (row i is page
/// i) and `site_ids` to a single site 0 when empty.
struct ScoreBundleSource {
  std::vector<double> quality;
  std::vector<double> pagerank;
  std::vector<NodeId> page_ids;
  std::vector<SiteId> site_ids;
  /// Number of sites; 0 means "derive": max(site_ids) + 1, or 1 when
  /// site_ids is empty.
  SiteId num_sites = 0;
  /// Declared L1 mass of `pagerank` (stored in the header for the
  /// serve.bundle.scores audit); <= 0 means "derive": the actual sum.
  double expected_mass = 0.0;
  /// Free-form writer tag stored in the header (not validated).
  uint32_t creator_tag = 0;
};

/// Builds and serializes score bundles.
class ScoreBundleWriter {
 public:
  /// Validates `source` (equal sizes, >= 1 page, finite non-negative
  /// scores, site ids < num_sites) and precomputes the index sections.
  /// `parallel` sets the executor width for the index build (score-order
  /// sorts, per-site postings) and for Serialize(); the output image is
  /// byte-identical for every num_threads value — the sorts run under
  /// ParallelSort's total-order contract (ties broken by row id), the
  /// postings counting-sort scatters into thread-independent windows,
  /// and chunked CRCs are folded with BundleCrc32Combine.
  static Result<ScoreBundleWriter> Create(ScoreBundleSource source,
                                          ParallelOptions parallel = {});

  /// The complete bundle image (header + table + sections).
  std::vector<uint8_t> Serialize() const;

  /// Serialize() to a file.
  Status WriteFile(const std::string& path) const;

  NodeId num_pages() const {
    return static_cast<NodeId>(source_.quality.size());
  }
  SiteId num_sites() const { return source_.num_sites; }

 private:
  ScoreBundleWriter() = default;

  ScoreBundleSource source_;
  ParallelOptions parallel_;
  std::vector<NodeId> order_by_quality_;
  std::vector<NodeId> order_by_pagerank_;
  std::vector<uint32_t> site_offsets_;
  std::vector<NodeId> site_pages_;
};

/// An immutable, validated, queryable bundle image. Movable, not
/// copyable; destruction unmaps / frees the backing storage.
class LoadedBundle {
 public:
  enum class Backing {
    kMmap,  // zero-copy file mapping
    kHeap,  // read() fallback or FromBuffer
  };

  /// Loads and validates a bundle file. With `prefer_mmap` the image is
  /// mapped read-only (zero-copy); on mmap failure — or with
  /// prefer_mmap = false — the file is read into memory instead.
  static Result<LoadedBundle> Load(const std::string& path,
                                   bool prefer_mmap = true);

  /// Adopts and validates an in-memory image (tests, benches, and the
  /// publish path of an in-process pipeline). `parallel` sets the
  /// executor width of the validation passes (payload CRC, index range
  /// checks) — it never changes the accept/reject outcome.
  static Result<LoadedBundle> FromBuffer(std::vector<uint8_t> image,
                                         ParallelOptions parallel = {});

  LoadedBundle(LoadedBundle&& other) noexcept;
  LoadedBundle& operator=(LoadedBundle&& other) noexcept;
  LoadedBundle(const LoadedBundle&) = delete;
  LoadedBundle& operator=(const LoadedBundle&) = delete;
  ~LoadedBundle();

  NodeId num_pages() const { return header_.num_pages; }
  SiteId num_sites() const { return header_.num_sites; }
  double expected_mass() const { return header_.expected_mass; }
  uint32_t creator_tag() const { return header_.creator_tag; }
  Backing backing() const { return backing_; }
  size_t image_size() const { return size_; }

  std::span<const double> quality() const {
    return Typed<double>(kBundleQuality, header_.num_pages);
  }
  std::span<const double> pagerank() const {
    return Typed<double>(kBundlePageRank, header_.num_pages);
  }
  std::span<const NodeId> page_ids() const {
    return Typed<NodeId>(kBundlePageIds, header_.num_pages);
  }
  std::span<const SiteId> site_ids() const {
    return Typed<SiteId>(kBundleSiteIds, header_.num_pages);
  }
  /// Rows sorted by (quality desc, row asc).
  std::span<const NodeId> order_by_quality() const {
    return Typed<NodeId>(kBundleOrderByQuality, header_.num_pages);
  }
  /// Rows sorted by (pagerank desc, row asc).
  std::span<const NodeId> order_by_pagerank() const {
    return Typed<NodeId>(kBundleOrderByPageRank, header_.num_pages);
  }
  /// Posting-list row starts per site: site s owns
  /// site_pages()[site_offsets()[s] .. site_offsets()[s+1]).
  std::span<const uint32_t> site_offsets() const {
    return Typed<uint32_t>(kBundleSiteOffsets,
                           uint64_t{header_.num_sites} + 1);
  }
  /// Rows grouped by site, each group sorted by (quality desc, row asc).
  std::span<const NodeId> site_pages() const {
    return Typed<NodeId>(kBundleSitePages, header_.num_pages);
  }

 private:
  LoadedBundle() = default;

  /// Validates an image already resident at data_/size_ and resolves
  /// section pointers. Runs payload CRC + index range checks, chunked
  /// across `parallel` executors.
  Status ValidateAndIndex(const ParallelOptions& parallel);

  template <typename T>
  std::span<const T> Typed(uint32_t id, uint64_t count) const {
    return {reinterpret_cast<const T*>(sections_[id]),
            static_cast<size_t>(count)};
  }

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  Backing backing_ = Backing::kHeap;
  std::vector<uint8_t> heap_;   // kHeap backing
  void* map_base_ = nullptr;    // kMmap backing (munmap target)
  size_t map_length_ = 0;
  BundleHeader header_ = {};
  const uint8_t* sections_[kBundleSitePages + 1] = {};
};

}  // namespace qrank

#endif  // QRANK_SERVE_SCORE_BUNDLE_H_
