// QueryEngine: concurrent quality-ranked top-k over a SnapshotStore.
//
// A query asks for the k best pages under the blended score
//
//   s(p) = alpha * Q̂(p) + (1 - alpha) * PR(p)
//
// optionally restricted to one site, optionally with the randomized
// exploration mix of Pandey et al. ("Shuffling a Stacked Deck",
// PAPERS.md): with probability `exploration_epsilon` per result slot,
// the deterministic result is replaced by a uniformly random eligible
// page — the partial randomization that gives unpopular-but-good pages
// the impressions the estimator needs, without derailing the whole
// ranking.
//
// Hot-path design (the 1M+ QPS contract, verified by bench_perf_serve
// and the counting-allocator test):
//   * alpha == 1 / alpha == 0: answer is a prefix of the bundle's
//     precomputed order section — O(k).
//   * 0 < alpha < 1: Fagin's threshold algorithm over the two order
//     sections. Both lists are walked in parallel; the scan stops as
//     soon as the k-th best blended score reaches the threshold
//     alpha * q_cursor + (1 - alpha) * pr_cursor, which no unseen page
//     can exceed (both terms are monotone down the lists). Exact, and
//     in practice terminates after O(k) .. a few hundred entries.
//   * site queries scan the site's posting group (bounded heap), which
//     the bundle keeps sorted by quality.
//   * Zero allocations per query: all scratch (bounded heap, epoch-
//     stamped dedup array, result slots) lives in a caller-owned
//     TopKScratch and is reused; TopK only allocates when a newly
//     acquired generation has more pages than the scratch has seen
//     (amortized once per growth).
//
// Thread model: QueryEngine is stateless and shared; each serving
// thread owns one TopKScratch, which also holds the thread's
// generation pin (re-validated by one atomic generation() load per
// query, re-acquired only after a publish), so a concurrent Publish
// never invalidates the spans mid-scan.

#ifndef QRANK_SERVE_QUERY_ENGINE_H_
#define QRANK_SERVE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/edge_list.h"
#include "graph/site_graph.h"
#include "serve/score_bundle.h"
#include "serve/snapshot_store.h"

namespace qrank {

/// "No site filter" sentinel.
inline constexpr SiteId kAllSites = static_cast<SiteId>(-1);

struct TopKQuery {
  uint32_t k = 10;

  /// Weight of the quality estimate in the blend (1 = pure Q̂, the
  /// paper's replace-PageRank mode; 0 = pure PageRank). Must be in
  /// [0, 1].
  double blend_alpha = 1.0;

  /// Restrict results to this site (kAllSites = no filter). Must be
  /// < num_sites when set.
  SiteId site = kAllSites;

  /// Pandey-style randomized promotion: probability per result slot of
  /// replacing the deterministic entry with a uniformly random eligible
  /// page. Must be in [0, 1]; 0 disables.
  double exploration_epsilon = 0.0;

  /// Seed of the (deterministic) exploration draws. Queries with equal
  /// seed, epsilon and bundle return identical results.
  uint64_t exploration_seed = 0;
};

struct TopKEntry {
  NodeId row = 0;       // row index within the bundle
  NodeId page_id = 0;   // external page id (bundle's page_ids section)
  double score = 0.0;   // blended score
  bool promoted = false;  // true when placed by the exploration mix
};

/// Reusable per-thread query scratch. One instance per serving thread;
/// results() is valid until the next TopK call on the same scratch.
///
/// The scratch also holds the thread's generation pin: store-backed
/// TopK caches the acquired bundle here and revalidates it with one
/// atomic SnapshotStore::generation() load per query, re-pinning (one
/// brief mutex hold) only when a publish actually happened. Dropping
/// the scratch drops the pin.
class TopKScratch {
 public:
  TopKScratch() = default;

  /// Results of the last successful TopK, best first.
  std::span<const TopKEntry> results() const {
    return {out_.data(), out_size_};
  }

 private:
  friend class QueryEngine;

  /// Grows scratch for a bundle with `n` rows and queries up to `k`
  /// results. Allocation happens here and only here.
  void Reserve(NodeId n, uint32_t k);

  /// Stamp the row visited for the current query; returns false when it
  /// already was (dedup for the threshold algorithm's two cursors).
  bool MarkVisited(NodeId row);

  std::vector<TopKEntry> heap_;   // bounded min-heap, capacity k
  std::vector<TopKEntry> out_;    // sorted results, capacity k
  std::vector<uint32_t> stamp_;   // per-row visit epoch
  uint32_t epoch_ = 0;
  size_t heap_size_ = 0;
  size_t out_size_ = 0;

  // Generation-cached pin for store-backed queries.
  std::shared_ptr<const LoadedBundle> pinned_;
  uint64_t pinned_generation_ = 0;
};

class QueryEngine {
 public:
  /// The store must outlive the engine. The engine itself is immutable
  /// and safe to share across threads.
  explicit QueryEngine(const SnapshotStore* store) : store_(store) {}

  /// Serves a top-k query from the store's current generation into
  /// `scratch->results()`. FailedPrecondition before the first publish;
  /// InvalidArgument on out-of-range query parameters. k is clamped to
  /// the eligible page count; k = 0 yields empty results.
  Status TopK(const TopKQuery& query, TopKScratch* scratch) const;

  /// Same, on an explicitly pinned bundle (tests, tools, and callers
  /// that batch many queries against one Acquire()).
  static Status TopKOnBundle(const LoadedBundle& bundle,
                             const TopKQuery& query, TopKScratch* scratch);

 private:
  const SnapshotStore* store_;
};

}  // namespace qrank

#endif  // QRANK_SERVE_QUERY_ENGINE_H_
