// On-disk layout of the score bundle ("QRKB"), shared between the
// serving library (src/serve/score_bundle.*) and the audit subsystem
// (src/audit/ registers serve.bundle.* validators over raw bundle
// images). Header-only and dependency-free beyond common/status.h, so
// the audit library can validate bundles without linking qrank_serve.
//
// A score bundle is the read side of the pipeline: one finished
// snapshot's quality estimates Q̂(p) and PageRank PR(p), plus the
// precomputed serving index (global score orders and per-site postings)
// that lets QueryEngine answer top-k queries without scanning pages.
// All integers and doubles are little-endian; the file is designed to
// be mmap'ed and consumed zero-copy.
//
//   offset   size                 field
//   0        64                   BundleHeader (fixed, CRC-guarded)
//   64       24 * section_count   section table (SectionEntry each)
//   ...      --                   zero padding to 64-byte alignment
//   s_0      --                   section payloads, each 64-aligned
//
// BundleHeader (all fields little-endian):
//   0   magic[4]        "QRKB"
//   4   version         u32, currently 1
//   8   header_bytes    u32, sizeof(BundleHeader) == 64
//   12  section_count   u32, in [1, kBundleMaxSections]
//   16  num_pages       u32
//   20  num_sites       u32
//   24  expected_mass   f64   declared L1 mass of the pagerank section
//   32  payload_crc32   u32   CRC-32 over [64 + 24*section_count, EOF)
//   36  reserved[20]          zero
//   56  creator_tag     u32   free-form writer tag (not validated)
//   60  header_crc32    u32   CRC-32 over bytes [0, 60)
//
// Validation order matters for safety: ValidateBundleHeader needs only
// the first 64 bytes and the total file size, and every quantity a
// loader might allocate or dereference (section table length, section
// offsets/sizes) is bounds-checked against the real file size *before*
// any allocation or mmap dereference — a corrupt header must fail with
// Corruption, never OOM or fault (same contract as graph_io's binary
// reader).

#ifndef QRANK_SERVE_BUNDLE_FORMAT_H_
#define QRANK_SERVE_BUNDLE_FORMAT_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/status.h"

namespace qrank {

static_assert(std::endian::native == std::endian::little,
              "score bundles are little-endian; big-endian hosts would "
              "need byte-swapping load paths");

inline constexpr char kBundleMagic[4] = {'Q', 'R', 'K', 'B'};
inline constexpr uint32_t kBundleVersion = 1;
inline constexpr uint32_t kBundleMaxSections = 16;
inline constexpr uint32_t kBundleSectionAlign = 64;

/// Section ids of format version 1. All eight are required, each
/// exactly once; ids above kBundleSitePages are reserved for future
/// versions and rejected by v1 validation.
enum BundleSectionId : uint32_t {
  kBundleQuality = 1,          // f64[num_pages]  Q̂(p) per row
  kBundlePageRank = 2,         // f64[num_pages]  PR(p) per row
  kBundlePageIds = 3,          // u32[num_pages]  external page id per row
  kBundleSiteIds = 4,          // u32[num_pages]  site id per row
  kBundleOrderByQuality = 5,   // u32[num_pages]  rows, quality descending
  kBundleOrderByPageRank = 6,  // u32[num_pages]  rows, pagerank descending
  kBundleSiteOffsets = 7,      // u32[num_sites+1] postings row starts
  kBundleSitePages = 8,        // u32[num_pages]  rows grouped by site,
                               //                 quality descending
};

inline constexpr uint32_t kBundleSectionCount = 8;

struct BundleHeader {
  char magic[4];
  uint32_t version;
  uint32_t header_bytes;
  uint32_t section_count;
  uint32_t num_pages;
  uint32_t num_sites;
  double expected_mass;
  uint32_t payload_crc32;
  uint8_t reserved[20];
  uint32_t creator_tag;
  uint32_t header_crc32;
};
static_assert(sizeof(BundleHeader) == 64, "fixed 64-byte bundle header");

struct BundleSectionEntry {
  uint32_t id;
  uint32_t reserved;  // zero in v1
  uint64_t offset;    // from file start; kBundleSectionAlign-aligned
  uint64_t size;      // exact payload bytes (no trailing padding)
};
static_assert(sizeof(BundleSectionEntry) == 24, "24-byte section entry");

/// Reflected CRC-32 (polynomial 0xEDB88320), the PKZIP/PNG variant.
inline uint32_t BundleCrc32(const uint8_t* data, size_t len,
                            uint32_t crc = 0) {
  static const auto kTable = [] {
    struct Table {
      uint32_t t[256];
    } table;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table.t[i] = c;
    }
    return table;
  }();
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = kTable.t[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

namespace crc_internal {

/// GF(2) 32x32 matrix-vector product (each matrix row is a uint32_t
/// bitmask; multiplication is AND, addition is XOR).
inline uint32_t Gf2MatrixTimes(const uint32_t* mat, uint32_t vec) {
  uint32_t sum = 0;
  while (vec != 0) {
    if (vec & 1u) sum ^= *mat;
    vec >>= 1;
    ++mat;
  }
  return sum;
}

inline void Gf2MatrixSquare(uint32_t* square, const uint32_t* mat) {
  for (int n = 0; n < 32; ++n) square[n] = Gf2MatrixTimes(mat, mat[n]);
}

}  // namespace crc_internal

/// CRC of the concatenation A||B from crc(A), crc(B) and len(B): the
/// zlib crc32_combine construction — advance crc(A) through len(B)
/// zero bytes by GF(2) matrix exponentiation of the shift operator,
/// then XOR crc(B). Lets the writer checksum fixed chunks in parallel
/// and fold them left-to-right into the exact serial BundleCrc32 value
/// (bundles stay byte-identical regardless of export thread count).
inline uint32_t BundleCrc32Combine(uint32_t crc1, uint32_t crc2,
                                   uint64_t len2) {
  if (len2 == 0) return crc1;  // empty B: crc(A||B) == crc(A)
  uint32_t even[32];  // operator for 2^(2k+1) zero bytes as loop runs
  uint32_t odd[32];
  // Operator for one zero BIT: the reflected polynomial in row 0,
  // then a one-bit shift.
  odd[0] = 0xEDB88320u;
  uint32_t row = 1;
  for (int n = 1; n < 32; ++n) {
    odd[n] = row;
    row <<= 1;
  }
  crc_internal::Gf2MatrixSquare(even, odd);  // 2 zero bits
  crc_internal::Gf2MatrixSquare(odd, even);  // 4 zero bits
  // Walk len2's bits; each squaring doubles the zero-byte count.
  do {
    crc_internal::Gf2MatrixSquare(even, odd);
    if (len2 & 1u) crc1 = crc_internal::Gf2MatrixTimes(even, crc1);
    len2 >>= 1;
    if (len2 == 0) break;
    crc_internal::Gf2MatrixSquare(odd, even);
    if (len2 & 1u) crc1 = crc_internal::Gf2MatrixTimes(odd, crc1);
    len2 >>= 1;
  } while (len2 != 0);
  return crc1 ^ crc2;
}

/// Byte count a v1 section with `id` must carry for the header's counts.
/// Returns 0 for unknown ids.
inline uint64_t BundleExpectedSectionSize(uint32_t id, uint64_t num_pages,
                                          uint64_t num_sites) {
  switch (id) {
    case kBundleQuality:
    case kBundlePageRank:
      return num_pages * 8;
    case kBundlePageIds:
    case kBundleSiteIds:
    case kBundleOrderByQuality:
    case kBundleOrderByPageRank:
    case kBundleSitePages:
      return num_pages * 4;
    case kBundleSiteOffsets:
      return (num_sites + 1) * 4;
    default:
      return 0;
  }
}

/// First byte past the section table (sections may start at the next
/// kBundleSectionAlign boundary at or after this).
inline uint64_t BundleTableEnd(const BundleHeader& header) {
  return sizeof(BundleHeader) +
         uint64_t{header.section_count} * sizeof(BundleSectionEntry);
}

/// Validates the fixed header against the real file size: magic,
/// version, declared header size, header CRC, section-table bounds and
/// a minimal-payload lower bound derived from the declared page/site
/// counts. Needs only the 64 header bytes — safe to run before any
/// allocation or mapping.
inline Status ValidateBundleHeader(const BundleHeader& header,
                                   uint64_t file_size) {
  if (file_size < sizeof(BundleHeader)) {
    return Status::Corruption("bundle smaller than its fixed header (" +
                              std::to_string(file_size) + " bytes)");
  }
  if (std::memcmp(header.magic, kBundleMagic, sizeof(kBundleMagic)) != 0) {
    return Status::Corruption("bad bundle magic");
  }
  if (header.version != kBundleVersion) {
    return Status::Corruption("unsupported bundle version " +
                              std::to_string(header.version));
  }
  if (header.header_bytes != sizeof(BundleHeader)) {
    return Status::Corruption("declared header size " +
                              std::to_string(header.header_bytes) +
                              " != " + std::to_string(sizeof(BundleHeader)));
  }
  const uint32_t crc = BundleCrc32(reinterpret_cast<const uint8_t*>(&header),
                                   offsetof(BundleHeader, header_crc32));
  if (crc != header.header_crc32) {
    return Status::Corruption("bundle header CRC mismatch");
  }
  if (header.section_count < 1 ||
      header.section_count > kBundleMaxSections) {
    return Status::Corruption("section count " +
                              std::to_string(header.section_count) +
                              " outside [1, " +
                              std::to_string(kBundleMaxSections) + "]");
  }
  // The header-declared page/site counts bound the payload from below;
  // rejecting here (before the table or any section is touched) is what
  // keeps a corrupt-but-CRC-fixed count from driving an allocation.
  uint64_t need = BundleTableEnd(header);
  for (const uint32_t id :
       {kBundleQuality, kBundlePageRank, kBundlePageIds, kBundleSiteIds,
        kBundleOrderByQuality, kBundleOrderByPageRank, kBundleSiteOffsets,
        kBundleSitePages}) {
    need += BundleExpectedSectionSize(id, header.num_pages, header.num_sites);
  }
  if (need > file_size) {
    return Status::Corruption(
        "header promises " + std::to_string(need) + "+ bytes (" +
        std::to_string(header.num_pages) + " pages, " +
        std::to_string(header.num_sites) + " sites) but the bundle holds " +
        std::to_string(file_size));
  }
  return Status::OK();
}

/// Validates the section table (entries[header.section_count]) against
/// the header and the real file size: v1's eight sections present
/// exactly once, aligned, in bounds, exactly the expected size, zero
/// reserved fields, and pairwise non-overlapping. Requires
/// ValidateBundleHeader to have passed.
inline Status ValidateBundleSections(const BundleHeader& header,
                                     const BundleSectionEntry* entries,
                                     uint64_t file_size) {
  const uint64_t table_end = BundleTableEnd(header);
  uint32_t seen_mask = 0;
  for (uint32_t i = 0; i < header.section_count; ++i) {
    const BundleSectionEntry& e = entries[i];
    const std::string tag = "section[" + std::to_string(i) + "] (id " +
                            std::to_string(e.id) + ")";
    if (e.id < kBundleQuality || e.id > kBundleSitePages) {
      return Status::Corruption(tag + ": unknown v1 section id");
    }
    if (e.reserved != 0) {
      return Status::Corruption(tag + ": nonzero reserved field");
    }
    const uint32_t bit = 1u << e.id;
    if (seen_mask & bit) {
      return Status::Corruption(tag + ": duplicate section");
    }
    seen_mask |= bit;
    if (e.offset % kBundleSectionAlign != 0) {
      return Status::Corruption(tag + ": offset " + std::to_string(e.offset) +
                                " not " +
                                std::to_string(kBundleSectionAlign) +
                                "-aligned");
    }
    if (e.offset < table_end || e.offset > file_size ||
        e.size > file_size - e.offset) {
      return Status::Corruption(tag + ": extent [" + std::to_string(e.offset) +
                                ", +" + std::to_string(e.size) +
                                ") outside the file");
    }
    const uint64_t expect =
        BundleExpectedSectionSize(e.id, header.num_pages, header.num_sites);
    if (e.size != expect) {
      return Status::Corruption(tag + ": size " + std::to_string(e.size) +
                                ", expected " + std::to_string(expect));
    }
    for (uint32_t j = 0; j < i; ++j) {
      const BundleSectionEntry& o = entries[j];
      if (e.offset < o.offset + o.size && o.offset < e.offset + e.size &&
          e.size != 0 && o.size != 0) {
        return Status::Corruption(tag + ": overlaps section[" +
                                  std::to_string(j) + "]");
      }
    }
  }
  for (const uint32_t id :
       {kBundleQuality, kBundlePageRank, kBundlePageIds, kBundleSiteIds,
        kBundleOrderByQuality, kBundleOrderByPageRank, kBundleSiteOffsets,
        kBundleSitePages}) {
    if (!(seen_mask & (1u << id))) {
      return Status::Corruption("required section id " + std::to_string(id) +
                                " missing");
    }
  }
  return Status::OK();
}

}  // namespace qrank

#endif  // QRANK_SERVE_BUNDLE_FORMAT_H_
