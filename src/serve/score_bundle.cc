#include "serve/score_bundle.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <numeric>
#include <utility>

#include "common/parallel_sort.h"

namespace qrank {

namespace {

// Fixed chunking for the export-side parallel passes. Like every grain
// in the parallel substrate, these shape the block boundaries and hence
// the partial results — but the combined output (sorted order, postings
// layout, CRC value) is identical to the serial computation for every
// thread count.
constexpr size_t kRowGrain = size_t{1} << 14;   // rows per sort/scan block
constexpr size_t kCrcChunk = size_t{1} << 20;   // bytes per CRC chunk

// Sort rows by (score desc, row asc): the deterministic serving order.
// The comparator is a strict total order (ties broken by row id), so
// ParallelSort's output is bit-identical to std::sort at any width.
void SortRowsByScoreDescending(const std::vector<double>& score,
                               std::vector<NodeId>* rows,
                               ParallelOptions parallel) {
  parallel.grain = kRowGrain;
  ParallelSort(
      rows,
      [&score](NodeId a, NodeId b) {
        if (score[a] != score[b]) return score[a] > score[b];
        return a < b;
      },
      parallel);
}

// CRC-32 of [data, data + len), split into fixed kCrcChunk chunks
// computed in parallel and folded left-to-right with BundleCrc32Combine
// — exactly the serial BundleCrc32 value.
uint32_t ParallelBundleCrc32(const uint8_t* data, size_t len,
                             ParallelOptions parallel) {
  const size_t chunks = NumBlocks(len, kCrcChunk);
  if (ResolveThreads(parallel.num_threads) <= 1 || chunks <= 1) {
    return BundleCrc32(data, len);
  }
  parallel.grain = kCrcChunk;
  std::vector<uint32_t> crcs(chunks, 0);
  ParallelForBlocks(
      len,
      [&](size_t lo, size_t hi) {
        crcs[lo / kCrcChunk] = BundleCrc32(data + lo, hi - lo);
      },
      parallel);
  uint32_t crc = crcs[0];
  for (size_t c = 1; c < chunks; ++c) {
    const size_t lo = c * kCrcChunk;
    const size_t hi = lo + kCrcChunk < len ? lo + kCrcChunk : len;
    crc = BundleCrc32Combine(crc, crcs[c], hi - lo);
  }
  return crc;
}

// Per-site postings: a blocked two-pass counting sort over the global
// quality order. Pass 1 histograms sites per fixed row block; a serial
// exclusive scan then assigns each (block, site) pair its disjoint
// write window inside the site's posting range; pass 2 scatters rows
// into those windows. Concatenating the blocks in order reproduces the
// global quality order within each site — byte-identical to the serial
// single-cursor walk.
void BuildSitePostings(const std::vector<SiteId>& site_ids, SiteId num_sites,
                       const std::vector<NodeId>& order_by_quality,
                       std::vector<uint32_t>* site_offsets,
                       std::vector<NodeId>* site_pages,
                       ParallelOptions parallel) {
  const size_t n = order_by_quality.size();
  site_offsets->assign(static_cast<size_t>(num_sites) + 1, 0);
  for (SiteId s : site_ids) ++(*site_offsets)[s + 1];
  for (size_t s = 1; s < site_offsets->size(); ++s) {
    (*site_offsets)[s] += (*site_offsets)[s - 1];
  }
  site_pages->resize(n);

  const size_t blocks = NumBlocks(n, kRowGrain);
  // The scan is O(blocks * num_sites); fall back to the serial walk
  // when the histogram would dwarf the rows themselves. The decision
  // depends only on (n, num_sites), never on the thread count.
  if (ResolveThreads(parallel.num_threads) <= 1 || blocks <= 1 ||
      blocks * static_cast<size_t>(num_sites) > n) {
    std::vector<uint32_t> cursor(site_offsets->begin(),
                                 site_offsets->end() - 1);
    for (NodeId row : order_by_quality) {
      (*site_pages)[cursor[site_ids[row]]++] = row;
    }
    return;
  }
  parallel.grain = kRowGrain;
  std::vector<uint32_t> cursors(blocks * num_sites, 0);
  ParallelForBlocks(
      n,
      [&](size_t lo, size_t hi) {
        uint32_t* mine = cursors.data() + (lo / kRowGrain) * num_sites;
        for (size_t i = lo; i < hi; ++i) ++mine[site_ids[order_by_quality[i]]];
      },
      parallel);
  for (SiteId s = 0; s < num_sites; ++s) {
    uint32_t acc = (*site_offsets)[s];
    for (size_t b = 0; b < blocks; ++b) {
      uint32_t& slot = cursors[b * num_sites + s];
      const uint32_t count = slot;
      slot = acc;
      acc += count;
    }
  }
  ParallelForBlocks(
      n,
      [&](size_t lo, size_t hi) {
        uint32_t* mine = cursors.data() + (lo / kRowGrain) * num_sites;
        for (size_t i = lo; i < hi; ++i) {
          const NodeId row = order_by_quality[i];
          (*site_pages)[mine[site_ids[row]]++] = row;
        }
      },
      parallel);
}

}  // namespace

// ---------------------------------------------------------------------------
// ScoreBundleWriter
// ---------------------------------------------------------------------------

Result<ScoreBundleWriter> ScoreBundleWriter::Create(ScoreBundleSource source,
                                                    ParallelOptions parallel) {
  const size_t n = source.quality.size();
  if (n == 0) {
    return Status::InvalidArgument("score bundle needs at least one page");
  }
  if (n > static_cast<size_t>(kInvalidNode)) {
    return Status::InvalidArgument("too many pages for 32-bit rows");
  }
  if (source.pagerank.size() != n) {
    return Status::InvalidArgument(
        "quality and pagerank sizes disagree: " + std::to_string(n) + " vs " +
        std::to_string(source.pagerank.size()));
  }
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(source.quality[i]) || source.quality[i] < 0.0) {
      return Status::InvalidArgument("quality[" + std::to_string(i) +
                                     "] is not finite and non-negative");
    }
    if (!std::isfinite(source.pagerank[i]) || source.pagerank[i] < 0.0) {
      return Status::InvalidArgument("pagerank[" + std::to_string(i) +
                                     "] is not finite and non-negative");
    }
  }
  if (source.page_ids.empty()) {
    source.page_ids.resize(n);
    std::iota(source.page_ids.begin(), source.page_ids.end(), NodeId{0});
  } else if (source.page_ids.size() != n) {
    return Status::InvalidArgument("page_ids size disagrees with pages");
  }
  if (source.site_ids.empty()) {
    source.site_ids.assign(n, SiteId{0});
    if (source.num_sites == 0) source.num_sites = 1;
  } else if (source.site_ids.size() != n) {
    return Status::InvalidArgument("site_ids size disagrees with pages");
  }
  if (source.num_sites == 0) {
    source.num_sites =
        *std::max_element(source.site_ids.begin(), source.site_ids.end()) + 1;
  }
  for (size_t i = 0; i < n; ++i) {
    if (source.site_ids[i] >= source.num_sites) {
      return Status::InvalidArgument(
          "site_ids[" + std::to_string(i) + "] = " +
          std::to_string(source.site_ids[i]) + " >= num_sites " +
          std::to_string(source.num_sites));
    }
  }
  if (source.expected_mass <= 0.0) {
    source.expected_mass = std::accumulate(source.pagerank.begin(),
                                           source.pagerank.end(), 0.0);
  }
  if (!std::isfinite(source.expected_mass)) {
    return Status::InvalidArgument("expected_mass is not finite");
  }

  ScoreBundleWriter w;
  w.source_ = std::move(source);
  w.parallel_ = parallel;
  w.order_by_quality_.resize(n);
  std::iota(w.order_by_quality_.begin(), w.order_by_quality_.end(),
            NodeId{0});
  w.order_by_pagerank_ = w.order_by_quality_;
  SortRowsByScoreDescending(w.source_.quality, &w.order_by_quality_, parallel);
  SortRowsByScoreDescending(w.source_.pagerank, &w.order_by_pagerank_,
                            parallel);
  BuildSitePostings(w.source_.site_ids, w.source_.num_sites,
                    w.order_by_quality_, &w.site_offsets_, &w.site_pages_,
                    parallel);
  return w;
}

std::vector<uint8_t> ScoreBundleWriter::Serialize() const {
  struct Section {
    uint32_t id;
    const void* data;
    uint64_t size;
  };
  const uint64_t n = num_pages();
  const Section sections[] = {
      {kBundleQuality, source_.quality.data(), n * 8},
      {kBundlePageRank, source_.pagerank.data(), n * 8},
      {kBundlePageIds, source_.page_ids.data(), n * 4},
      {kBundleSiteIds, source_.site_ids.data(), n * 4},
      {kBundleOrderByQuality, order_by_quality_.data(), n * 4},
      {kBundleOrderByPageRank, order_by_pagerank_.data(), n * 4},
      {kBundleSiteOffsets, site_offsets_.data(),
       (uint64_t{num_sites()} + 1) * 4},
      {kBundleSitePages, site_pages_.data(), n * 4},
  };

  BundleHeader header = {};
  std::memcpy(header.magic, kBundleMagic, sizeof(kBundleMagic));
  header.version = kBundleVersion;
  header.header_bytes = sizeof(BundleHeader);
  header.section_count = kBundleSectionCount;
  header.num_pages = num_pages();
  header.num_sites = num_sites();
  header.expected_mass = source_.expected_mass;
  header.creator_tag = source_.creator_tag;

  // Lay out the section table, then 64-aligned payloads.
  BundleSectionEntry table[kBundleSectionCount] = {};
  uint64_t cursor = BundleTableEnd(header);
  for (size_t i = 0; i < kBundleSectionCount; ++i) {
    cursor = (cursor + kBundleSectionAlign - 1) / kBundleSectionAlign *
             kBundleSectionAlign;
    table[i].id = sections[i].id;
    table[i].offset = cursor;
    table[i].size = sections[i].size;
    cursor += sections[i].size;
  }

  // Zero-initializing the full image up front keeps the alignment
  // padding zeroed (as the incremental append did) and lets the
  // section payloads land via disjoint parallel memcpys.
  std::vector<uint8_t> image(cursor, 0);
  std::memcpy(image.data() + sizeof(BundleHeader), table, sizeof(table));
  ParallelOptions section_opts = parallel_;
  section_opts.grain = 1;  // one section per block
  ParallelForBlocks(
      kBundleSectionCount,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          std::memcpy(image.data() + table[i].offset, sections[i].data,
                      static_cast<size_t>(sections[i].size));
        }
      },
      section_opts);

  header.payload_crc32 =
      ParallelBundleCrc32(image.data() + BundleTableEnd(header),
                          image.size() - BundleTableEnd(header), parallel_);
  header.header_crc32 =
      BundleCrc32(reinterpret_cast<const uint8_t*>(&header),
                  offsetof(BundleHeader, header_crc32));
  std::memcpy(image.data(), &header, sizeof(header));
  return image;
}

Status ScoreBundleWriter::WriteFile(const std::string& path) const {
  const std::vector<uint8_t> image = Serialize();
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open for write: " + path);
  f.write(reinterpret_cast<const char*>(image.data()),
          static_cast<std::streamsize>(image.size()));
  f.flush();
  if (!f) return Status::IOError("write failed: " + path);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// LoadedBundle
// ---------------------------------------------------------------------------

LoadedBundle::LoadedBundle(LoadedBundle&& other) noexcept {
  *this = std::move(other);
}

LoadedBundle& LoadedBundle::operator=(LoadedBundle&& other) noexcept {
  if (this == &other) return *this;
  if (map_base_ != nullptr) ::munmap(map_base_, map_length_);
  data_ = other.data_;
  size_ = other.size_;
  backing_ = other.backing_;
  heap_ = std::move(other.heap_);
  map_base_ = other.map_base_;
  map_length_ = other.map_length_;
  header_ = other.header_;
  std::memcpy(sections_, other.sections_, sizeof(sections_));
  other.map_base_ = nullptr;
  other.map_length_ = 0;
  other.data_ = nullptr;
  other.size_ = 0;
  // The moved-from heap_ is already empty; data_ (if it pointed into
  // heap_) moved with the vector's storage, so the spans stay valid.
  return *this;
}

LoadedBundle::~LoadedBundle() {
  if (map_base_ != nullptr) ::munmap(map_base_, map_length_);
}

Status LoadedBundle::ValidateAndIndex(const ParallelOptions& parallel) {
  QRANK_RETURN_NOT_OK(ValidateBundleHeader(header_, size_));
  // The table is bounds-safe to read now: ValidateBundleHeader proved
  // table_end (plus the minimal payload) fits in size_.
  const BundleSectionEntry* table =
      reinterpret_cast<const BundleSectionEntry*>(data_ +
                                                  sizeof(BundleHeader));
  QRANK_RETURN_NOT_OK(ValidateBundleSections(header_, table, size_));
  const uint64_t table_end = BundleTableEnd(header_);
  const uint32_t crc =
      ParallelBundleCrc32(data_ + table_end, size_ - table_end, parallel);
  if (crc != header_.payload_crc32) {
    return Status::Corruption("bundle payload CRC mismatch");
  }
  for (uint32_t i = 0; i < header_.section_count; ++i) {
    sections_[table[i].id] = data_ + table[i].offset;
  }

  // Range-check the index sections once, so the query hot path can
  // index quality()/pagerank()/site groups without per-access bounds
  // checks even on an adversarially crafted (but CRC-fixed) image.
  // The scans run as parallel violation counts (a pure reduction, so
  // the accept/reject outcome is thread-count independent); the serial
  // rescan naming the first bad entry only runs on corrupt images.
  ParallelOptions check = parallel;
  check.grain = kRowGrain;
  const NodeId n = header_.num_pages;
  for (const auto& [name, order] :
       {std::pair<const char*, std::span<const NodeId>>{"order_by_quality",
                                                        order_by_quality()},
        {"order_by_pagerank", order_by_pagerank()},
        {"site_pages", site_pages()}}) {
    const double bad = ParallelReduce(
        order.size(),
        [&order, n](size_t lo, size_t hi) {
          size_t count = 0;
          for (size_t i = lo; i < hi; ++i) count += order[i] >= n;
          return static_cast<double>(count);
        },
        check);
    if (bad != 0.0) {
      for (size_t i = 0; i < order.size(); ++i) {
        if (order[i] >= n) {
          return Status::Corruption(std::string(name) + "[" +
                                    std::to_string(i) + "] = " +
                                    std::to_string(order[i]) +
                                    " out of row range");
        }
      }
    }
  }
  const std::span<const uint32_t> offsets = site_offsets();
  if (offsets.front() != 0 || offsets.back() != n) {
    return Status::Corruption("site_offsets do not span [0, num_pages]");
  }
  for (size_t s = 1; s < offsets.size(); ++s) {
    if (offsets[s] < offsets[s - 1]) {
      return Status::Corruption("site_offsets not monotone at site " +
                                std::to_string(s - 1));
    }
  }
  ParallelOptions site_check = parallel;
  site_check.grain = 64;  // sites per block
  const double bad_postings = ParallelReduce(
      header_.num_sites,
      [&](size_t lo, size_t hi) {
        size_t count = 0;
        for (size_t s = lo; s < hi; ++s) {
          for (uint32_t i = offsets[s]; i < offsets[s + 1]; ++i) {
            count += site_ids()[site_pages()[i]] != s;
          }
        }
        return static_cast<double>(count);
      },
      site_check);
  if (bad_postings != 0.0) {
    for (SiteId s = 0; s < header_.num_sites; ++s) {
      for (uint32_t i = offsets[s]; i < offsets[s + 1]; ++i) {
        if (site_ids()[site_pages()[i]] != s) {
          return Status::Corruption("site_pages row " + std::to_string(i) +
                                    " not in site " + std::to_string(s));
        }
      }
    }
  }
  return Status::OK();
}

Result<LoadedBundle> LoadedBundle::FromBuffer(std::vector<uint8_t> image,
                                              ParallelOptions parallel) {
  LoadedBundle b;
  b.heap_ = std::move(image);
  b.data_ = b.heap_.data();
  b.size_ = b.heap_.size();
  b.backing_ = Backing::kHeap;
  if (b.size_ < sizeof(BundleHeader)) {
    return Status::Corruption("bundle image smaller than its header");
  }
  std::memcpy(&b.header_, b.data_, sizeof(BundleHeader));
  QRANK_RETURN_NOT_OK(b.ValidateAndIndex(parallel));
  return b;
}

Result<LoadedBundle> LoadedBundle::Load(const std::string& path,
                                        bool prefer_mmap) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};

  struct stat st = {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    return Status::IOError("cannot stat " + path);
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);

  // Read JUST the fixed header into the stack and validate it against
  // the true file size before allocating or mapping anything: a header
  // promising 2^31 pages in a 1 KB file must die here, not in mmap or
  // operator new (mirrors graph_io's binary-reader hardening).
  BundleHeader header = {};
  if (file_size < sizeof(header)) {
    return Status::Corruption(path + ": smaller than a bundle header");
  }
  ssize_t got = ::pread(fd, &header, sizeof(header), 0);
  if (got != static_cast<ssize_t>(sizeof(header))) {
    return Status::IOError("cannot read header of " + path);
  }
  {
    Status st_header = ValidateBundleHeader(header, file_size);
    if (!st_header.ok()) {
      return Status(st_header.code(), path + ": " + st_header.message());
    }
  }

  LoadedBundle b;
  if (prefer_mmap) {
    void* base = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base != MAP_FAILED) {
      b.map_base_ = base;
      b.map_length_ = file_size;
      b.data_ = static_cast<const uint8_t*>(base);
      b.size_ = file_size;
      b.backing_ = Backing::kMmap;
    }
  }
  if (b.data_ == nullptr) {
    // read() fallback (or prefer_mmap = false). The allocation is safe:
    // the validated header proved file_size is the real on-disk size.
    b.heap_.resize(file_size);
    size_t off = 0;
    while (off < file_size) {
      got = ::pread(fd, b.heap_.data() + off, file_size - off, off);
      if (got <= 0) return Status::IOError("short read of " + path);
      off += static_cast<size_t>(got);
    }
    b.data_ = b.heap_.data();
    b.size_ = file_size;
    b.backing_ = Backing::kHeap;
  }
  b.header_ = header;
  Status st_all = b.ValidateAndIndex(ParallelOptions{});
  if (!st_all.ok()) {
    return Status(st_all.code(), path + ": " + st_all.message());
  }
  return b;
}

}  // namespace qrank
