#include "serve/query_engine.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/annotations.h"

namespace qrank {

namespace {

// Strict weak order "a is a worse result than b": lower blended score,
// ties broken toward the higher row so the (score desc, row asc) oracle
// order is reproduced exactly.
inline bool Worse(const TopKEntry& a, const TopKEntry& b) {
  if (a.score != b.score) return a.score < b.score;
  return a.row > b.row;
}

// Bounded min-heap over heap[0..size): the root is the worst retained
// result, so a full heap admits a candidate iff it beats the root.
inline void SiftUp(TopKEntry* heap, size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!Worse(heap[i], heap[parent])) break;
    std::swap(heap[i], heap[parent]);
    i = parent;
  }
}

inline void SiftDown(TopKEntry* heap, size_t size, size_t i) {
  for (;;) {
    size_t worst = i;
    const size_t l = 2 * i + 1;
    const size_t r = 2 * i + 2;
    if (l < size && Worse(heap[l], heap[worst])) worst = l;
    if (r < size && Worse(heap[r], heap[worst])) worst = r;
    if (worst == i) return;
    std::swap(heap[i], heap[worst]);
    i = worst;
  }
}

}  // namespace

void TopKScratch::Reserve(NodeId n, uint32_t k) {
  if (heap_.size() < k) {
    heap_.resize(k);
    out_.resize(k);
  }
  if (stamp_.size() < n) stamp_.resize(n, 0);
}

bool TopKScratch::MarkVisited(NodeId row) {
  if (stamp_[row] == epoch_) return false;
  stamp_[row] = epoch_;
  return true;
}

QRANK_HOT Status QueryEngine::TopK(const TopKQuery& query,
                                   TopKScratch* scratch) const {
  // Generation-cached fast path: one atomic load per query; the store
  // mutex is touched only when a publish moved the generation since
  // this scratch last pinned.
  const uint64_t gen = store_->generation();
  if (gen == 0) {
    return Status::FailedPrecondition(
        "SnapshotStore has no published generation yet");
  }
  if (scratch->pinned_generation_ != gen || scratch->pinned_ == nullptr) {
    store_->Pin(&scratch->pinned_, &scratch->pinned_generation_);
  }
  return TopKOnBundle(*scratch->pinned_, query, scratch);
}

QRANK_HOT Status QueryEngine::TopKOnBundle(const LoadedBundle& bundle,
                                           const TopKQuery& query,
                                           TopKScratch* scratch) {
  const double alpha = query.blend_alpha;
  if (!(alpha >= 0.0 && alpha <= 1.0)) {
    return Status::InvalidArgument("blend_alpha must be in [0, 1]");
  }
  const double eps = query.exploration_epsilon;
  if (!(eps >= 0.0 && eps <= 1.0)) {
    return Status::InvalidArgument("exploration_epsilon must be in [0, 1]");
  }
  if (query.site != kAllSites && query.site >= bundle.num_sites()) {
    return Status::InvalidArgument("site filter out of range");
  }

  const NodeId n = bundle.num_pages();
  const std::span<const double> qv = bundle.quality();
  const std::span<const double> pv = bundle.pagerank();
  const std::span<const NodeId> ids = bundle.page_ids();
  const double wq = alpha;
  const double wp = 1.0 - alpha;
  const auto blend = [&qv, &pv, wq, wp](NodeId row) {
    return wq * qv[row] + wp * pv[row];
  };
  const auto entry = [&ids, &blend](NodeId row) {
    return TopKEntry{row, ids[row], blend(row), false};
  };

  // Eligible rows: one site's posting group (quality-descending) or the
  // whole bundle.
  std::span<const NodeId> group;
  if (query.site != kAllSites) {
    const std::span<const uint32_t> offsets = bundle.site_offsets();
    group = bundle.site_pages().subspan(
        offsets[query.site], offsets[query.site + 1] - offsets[query.site]);
  }
  const size_t eligible =
      query.site != kAllSites ? group.size() : static_cast<size_t>(n);
  const size_t k = std::min<size_t>(query.k, eligible);

  // qrank-lint: allow(hot-alloc) amortized warm-up: grows only when a
  // new generation has more pages than this scratch has ever seen.
  scratch->Reserve(n, query.k);
  scratch->heap_size_ = 0;
  scratch->out_size_ = 0;
  if (++scratch->epoch_ == 0) {  // u32 wrap: reset all stamps once per 2^32
    std::memset(scratch->stamp_.data(), 0,
                scratch->stamp_.size() * sizeof(uint32_t));
    scratch->epoch_ = 1;
  }
  if (k == 0) return Status::OK();

  TopKEntry* const heap = scratch->heap_.data();
  TopKEntry* const out = scratch->out_.data();
  size_t& heap_size = scratch->heap_size_;
  const auto push = [heap, &heap_size, k](const TopKEntry& e) {
    if (heap_size < k) {
      heap[heap_size] = e;
      SiftUp(heap, heap_size++);
    } else if (Worse(heap[0], e)) {
      heap[0] = e;
      SiftDown(heap, heap_size, 0);
    }
  };

  if (query.site != kAllSites) {
    if (wp == 0.0) {
      // Pure quality: the posting group is already in oracle order.
      for (size_t i = 0; i < k; ++i) out[i] = entry(group[i]);
      scratch->out_size_ = k;
    } else {
      // Blended site scan with an upper-bound cutoff: the group is
      // quality-descending and no page beats the global pagerank max,
      // so once wq*q(group[i]) + wp*pr_max falls below the retained
      // worst, the tail cannot contribute.
      const double pr_max = pv[bundle.order_by_pagerank()[0]];
      for (size_t i = 0; i < group.size(); ++i) {
        if (heap_size == k &&
            wq * qv[group[i]] + wp * pr_max < heap[0].score) {
          break;
        }
        push(entry(group[i]));
      }
    }
  } else if (wp == 0.0 || wq == 0.0) {
    // Pure quality / pure pagerank: a prefix of the precomputed order.
    const std::span<const NodeId> order =
        wp == 0.0 ? bundle.order_by_quality() : bundle.order_by_pagerank();
    for (size_t i = 0; i < k; ++i) out[i] = entry(order[i]);
    scratch->out_size_ = k;
  } else {
    // Fagin's threshold algorithm over the two order sections. After
    // consuming depth d of both lists, every unseen row r satisfies
    // q(r) <= q(A[d]) and pr(r) <= pr(B[d]), hence
    // blend(r) <= tau = wq*q(A[d]) + wp*pr(B[d]) (rounding is monotone,
    // so the bound survives floating point). Stopping only when the
    // retained worst strictly beats tau keeps the (score, row)
    // tie-break exact against the full-scan oracle.
    const std::span<const NodeId> by_q = bundle.order_by_quality();
    const std::span<const NodeId> by_p = bundle.order_by_pagerank();
    for (size_t d = 0; d < n; ++d) {
      const NodeId qa = by_q[d];
      const NodeId pb = by_p[d];
      if (scratch->MarkVisited(qa)) push(entry(qa));
      if (scratch->MarkVisited(pb)) push(entry(pb));
      const double tau = wq * qv[qa] + wp * pv[pb];
      if (heap_size == k && heap[0].score > tau) break;
    }
  }

  if (scratch->out_size_ == 0) {
    // Drain the heap back-to-front into descending order.
    scratch->out_size_ = heap_size;
    while (heap_size > 0) {
      out[heap_size - 1] = heap[0];
      heap[0] = heap[--heap_size];
      SiftDown(heap, heap_size, 0);
    }
  }

  if (eps > 0.0) {
    // Pandey-style randomized promotion: each slot independently
    // flips to a uniformly random eligible page (first-come slots keep
    // their position — the promoted page inherits the impression).
    Rng rng(query.exploration_seed);
    const size_t out_size = scratch->out_size_;
    for (size_t j = 0; j < out_size; ++j) {
      if (!rng.Bernoulli(eps)) continue;
      for (int attempt = 0; attempt < 8; ++attempt) {
        const NodeId row =
            query.site != kAllSites
                ? group[rng.UniformUint64(group.size())]
                : static_cast<NodeId>(rng.UniformUint64(n));
        bool duplicate = false;
        for (size_t i = 0; i < out_size; ++i) {
          if (out[i].row == row) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        out[j] = TopKEntry{row, ids[row], blend(row), true};
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace qrank
