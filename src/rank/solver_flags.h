// Shared command-line surface for the solver knobs.
//
// Every binary that runs a PageRank solve (examples, tools, benches)
// ends up wanting the same four flags; before this header each one
// hand-rolled a different subset with slightly different spellings.
// Parse them here instead:
//
//   --partition=node|edge                row partition of the sweep
//   --kernel=scalar|simd|avx2|avx512     pull-sweep instruction set
//   --compressed[=BOOL]                  pull from the delta-gap
//                                        compressed transpose
//   --order=identity|degree|bfs          cache-aware node relabeling
//
// --order is deliberately a separate call: it is only safe in binaries
// whose node ids are pure labels. A binary that derives structure from
// ids (e.g. qrank_ingest's site_of = id arithmetic) must NOT accept it,
// because relabeling would silently change which site every page
// belongs to.

#ifndef QRANK_RANK_SOLVER_FLAGS_H_
#define QRANK_RANK_SOLVER_FLAGS_H_

#include "common/flags.h"
#include "common/status.h"
#include "graph/reorder.h"
#include "rank/pagerank.h"

namespace qrank {

/// Usage-string fragments matching the two helpers below.
inline constexpr const char kSolverFlagsUsage[] =
    "[--partition=node|edge] [--kernel=scalar|simd|avx2|avx512] "
    "[--compressed=BOOL]";
inline constexpr const char kOrderFlagUsage[] =
    "[--order=identity|degree|bfs]";

/// Reads --partition/--kernel/--compressed into `options`, leaving
/// absent flags at the caller's defaults. InvalidArgument (naming the
/// flag and the accepted values) on an unknown spelling.
Status ApplySolverFlags(FlagParser& flags, PageRankOptions* options);

/// Reads --order (default: kIdentity). InvalidArgument on an unknown
/// name. See the header comment before adding this to a binary.
Result<NodeOrdering> OrderingFlag(FlagParser& flags);

}  // namespace qrank

#endif  // QRANK_RANK_SOLVER_FLAGS_H_
