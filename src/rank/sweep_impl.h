// Shared implementation templates behind sweep_ops.h. Included ONLY by
// the per-ISA translation units (pagerank_kernel.cc and the
// pagerank_kernel_avx2/_avx512.cc files) — each instantiates the
// templates with its lane accumulator under its own -m flags. Keeping
// the instantiations TU-local is what lets one header serve three ISAs
// without ODR trouble.
//
// An accumulator type Acc models the scalar 4-accumulator fold:
//   Acc acc;                                  // all partials zero
//   acc.Accumulate(src, count, out_share);    // stream a source run
//   double pull = acc.Fold();                 // fixed fold order
// The raw path instantiates the row loop with the TU's Acc; the
// compressed (decode-on-the-fly) path is the same for every ISA — a
// fused decode+accumulate under the scalar oracle fold, because varint
// decode dominates a compressed row and gathering from a just-decoded
// buffer store-forward-stalls wide loads. Compressed scores are
// therefore bit-exact against the scalar raw path for EVERY variant.

#ifndef QRANK_RANK_SWEEP_IMPL_H_
#define QRANK_RANK_SWEEP_IMPL_H_

#include <cmath>
#include <cstring>

#include "common/annotations.h"
#include "graph/compressed_csr.h"
#include "rank/sweep_ops.h"

namespace qrank {
namespace rank_internal {

template <class Acc>
QRANK_HOT double PullRow(const NodeId* src, size_t count, const double* out_share) {
  Acc acc;
  acc.Accumulate(src, count, out_share);
  return acc.Fold();
}

/// Fused decode + accumulate over one compressed row, reproducing the
/// scalar oracle bit-for-bit: values stream through a 4-slot group —
/// full groups land on p0..p3, the final partial group (< 4) folds into
/// p0 — exactly ScalarAcc's assignment. Inline (not a template): every
/// ISA variant shares this one definition, which is what makes
/// compressed output identical across variants.
QRANK_HOT inline double CompressedScalarPullRow(const uint8_t* p, const uint8_t* end,
                                      const double* out_share) {
  if (p >= end) return 0.0;  // empty row
  double p0 = 0.0, p1 = 0.0, p2 = 0.0, p3 = 0.0;
  uint32_t prev;
  p = DecodeU32VarintUnchecked(p, &prev);  // first value is absolute
  uint32_t pending[4];
  pending[0] = prev;
  size_t npend = 1;
  for (;;) {
    if (npend == 4) {
      p0 += out_share[pending[0]];
      p1 += out_share[pending[1]];
      p2 += out_share[pending[2]];
      p3 += out_share[pending[3]];
      npend = 0;
    }
    // Fast path: in a locality-friendly ordering most gaps fit one
    // byte, so whole words of the stream carry four gaps with no
    // continuation bit — decode with shifts and accumulate the group
    // directly, skipping four branchy varint loops.
    while (npend == 0 && p + 4 <= end) {
      uint32_t w;
      std::memcpy(&w, p, 4);
      if ((w & 0x80808080u) != 0) break;
      prev += w & 0xffu;
      p0 += out_share[prev];
      prev += (w >> 8) & 0xffu;
      p1 += out_share[prev];
      prev += (w >> 16) & 0xffu;
      p2 += out_share[prev];
      prev += (w >> 24) & 0xffu;
      p3 += out_share[prev];
      p += 4;
    }
    if (p >= end) break;
    uint32_t delta;
    p = DecodeU32VarintUnchecked(p, &delta);
    prev += delta;
    pending[npend++] = prev;
  }
  if (npend == 4) {
    p0 += out_share[pending[0]];
    p1 += out_share[pending[1]];
    p2 += out_share[pending[2]];
    p3 += out_share[pending[3]];
  } else {
    for (size_t i = 0; i < npend; ++i) p0 += out_share[pending[i]];
  }
  return (p0 + p1) + (p2 + p3);
}

// The fused row loop of PageRankKernel::Sweep (see pagerank_kernel.h
// for the full story): next scores + L1 residual + carried dangling
// mass + next out-shares in one pass over rows [lo, hi).
template <class Acc, bool kCompressed>
QRANK_HOT std::array<double, 2> BlockSweep(const SweepArgs& a, size_t lo, size_t hi) {
  // Hoist every field into restrict-qualified locals: the stores to
  // next/next_out_share would otherwise force the compiler to reload
  // the argument block (and re-derive the row pointers) each row.
  const size_t* __restrict in_off = a.in_off;
  const NodeId* __restrict in_src = a.in_src;
  const uint64_t* __restrict byte_off = a.byte_off;
  const uint8_t* __restrict bytes = a.bytes;
  const double* __restrict x = a.x;
  const double* __restrict v = a.v;
  const double* __restrict out_share = a.out_share;
  const double* __restrict inv_outdeg = a.inv_outdeg;
  double* __restrict next = a.next;
  double* __restrict next_out_share = a.next_out_share;
  const double alpha = a.alpha;
  const double base_weight = a.base_weight;
  double residual = 0.0;
  double next_dangling = 0.0;
  for (size_t i = lo; i < hi; ++i) {
    double pull;
    if constexpr (kCompressed) {
      pull = CompressedScalarPullRow(bytes + byte_off[i],
                                     bytes + byte_off[i + 1], out_share);
    } else {
      const size_t begin = in_off[i];
      pull = PullRow<Acc>(in_src + begin, in_off[i + 1] - begin, out_share);
    }
    const double fresh = base_weight * v[i] + alpha * pull;
    residual += std::fabs(fresh - x[i]);
    if (inv_outdeg[i] == 0.0) next_dangling += fresh;
    next[i] = fresh;
    next_out_share[i] = fresh * inv_outdeg[i];
  }
  return {residual, next_dangling};
}

template <class Acc>
SweepFuncs MakeSweepFuncs(SimdLevel level) {
  SweepFuncs funcs;
  funcs.level = level;
  funcs.raw_block = &BlockSweep<Acc, /*kCompressed=*/false>;
  // NOT a per-TU instantiation: the compressed sweep must come from the
  // scalar TU so no ISA TU's implied FMA can re-round its row update
  // (see the declaration in sweep_ops.h).
  funcs.compressed_block = &ScalarCompressedBlockSweep;
  funcs.row_pull = &PullRow<Acc>;
  funcs.compressed_row_pull = &CompressedScalarPullRow;
  return funcs;
}

}  // namespace rank_internal
}  // namespace qrank

#endif  // QRANK_RANK_SWEEP_IMPL_H_
